// Package repro is a from-scratch Go reproduction of Lindemann & Thümmler,
// "Performance analysis of the general packet radio service": a
// continuous-time Markov chain model of the radio interface of an integrated
// GSM/GPRS cell, the substrates it relies on (Erlang loss systems, the 3GPP
// packet-session traffic model, the radio interface abstraction, a sparse
// CTMC solver), the detailed network-level discrete-event simulator with
// TCP flow control used to validate the model, and a parallel replication
// engine (internal/runner) that merges independent simulator runs into
// cross-replication confidence intervals.
//
// The implementation lives under internal/; the runnable entry points are the
// commands under cmd/ and the examples under examples/. The benchmark harness
// in bench_test.go regenerates every table and figure of the paper's
// evaluation at a reduced "quick" fidelity; the command
// cmd/gprs-experiments regenerates them at the paper's parameter setting.
package repro
