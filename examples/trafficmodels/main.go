// Traffic models: inspect the three 3GPP traffic models of Table 3 — their
// session structure, the derived IPP (on/off) parameters, and the load each
// one puts on a cell — and solve the Markov model once per traffic model to
// compare the resulting performance measures side by side.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ctmc"
	"repro/internal/traffic"
)

func main() {
	fmt.Println("3GPP traffic model parameters (Table 3):")
	for _, model := range traffic.AllModels() {
		spec := model.Spec()
		ipp := spec.Session.IPP()
		fmt.Printf("\n%s\n", spec.Name)
		fmt.Printf("  session duration:        %.1f s\n", spec.Session.MeanSessionDurationSec())
		fmt.Printf("  packets per session:     %.0f\n", spec.Session.PacketsPerSession())
		fmt.Printf("  on-state bit rate:       %.1f kbit/s\n", spec.Session.MeanOnRateBitsPerSec()/1000)
		fmt.Printf("  mean on / off time:      %.1f s / %.1f s\n", 1/ipp.Alpha, 1/ipp.Beta)
		fmt.Printf("  long-run rate per user:  %.2f kbit/s (burstiness %.1fx)\n",
			ipp.MeanBitRate()/1000, ipp.BurstinessRatio())
		fmt.Printf("  session limit M:         %d\n", spec.MaxSessions)
	}

	fmt.Println("\nMarkov-model measures at 0.5 calls/s, 1 reserved PDCH (scaled-down cell):")
	fmt.Printf("%-22s %10s %12s %10s %14s\n", "traffic model", "CDT", "PLP", "QD (s)", "ATU (bit/s)")
	for _, model := range traffic.AllModels() {
		cfg := core.BaseConfig(model, 0.5)
		cfg.Channels.TotalChannels = 10
		cfg.BufferSize = 30
		if cfg.MaxSessions > 10 {
			cfg.MaxSessions = 10
		}
		m, err := core.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Solve(ctmc.SolveOptions{Tolerance: 1e-6})
		if err != nil {
			log.Fatal(err)
		}
		meas := res.Measures
		fmt.Printf("%-22s %10.3f %12.5f %10.2f %14.0f\n",
			fmt.Sprintf("model %d", model), meas.CarriedDataTraffic,
			meas.PacketLossProbability, meas.QueueingDelay, meas.ThroughputPerUserBits)
	}
}
