// Hotspot: a heterogeneous-load simulation the analytical model cannot
// express — a 19-cell wrap-around hex ring whose mid cell carries a radial
// traffic hotspot, run end to end on the sharded parallel engine. The example
// loads the "evening-rush" scenario from the JSON file next to this program
// (a normalized hotspot riding a periodic busy-hour ramp; falling back to the
// built-in hotspot preset when the file is not found), runs the same
// configuration on the serial and the sharded engine, verifies the two are
// bit-identical, and prints the per-cell response by hex distance from the
// hotspot center. It then replays the identical workload under each handover
// admission policy (internal/policy) and compares how guard channels, queued
// handovers, and directed retry trade fresh-call blocking against handover
// failures.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"reflect"

	"repro/internal/cluster"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/traffic"
)

func main() {
	topo, err := cluster.Preset(19)
	if err != nil {
		log.Fatal(err)
	}

	// A scaled-down cell and a short run keep the example under a minute;
	// cmd/gprs-sim -scenario hotspot runs the full-size version.
	cfg := sim.DefaultConfig(traffic.Model3, 0.5)
	cfg.Topology = topo
	cfg.Channels.TotalChannels = 10
	cfg.BufferSize = 30
	cfg.MaxSessions = 10
	cfg.WarmupSec = 500
	cfg.MeasurementSec = 3000
	cfg.Batches = 5
	cfg.Seed = 42

	spec := loadScenario()
	prof, err := scenario.Apply(&cfg, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %q on %d cells: per-cell weights %v\n\n",
		spec.Name, topo.NumCells(), round3(prof.Weights()))

	serial, err := sim.RunOnce(cfg, sim.ShardedOptions{Shards: 1})
	if err != nil {
		log.Fatal(err)
	}
	sharded, err := sim.RunOnce(cfg, sim.ShardedOptions{Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(serial, sharded) {
		log.Fatal("serial and sharded engines diverged — the determinism contract is broken")
	}
	fmt.Printf("serial engine:  %d events\n", serial.Events)
	fmt.Printf("sharded engine: %d events, bit-identical results: true\n\n", sharded.Events)

	// The spatial response: cells at equal hex distance from the hotspot
	// center are statistically identical, so group them.
	center := spec.Spatial.Center
	dist := topo.Distances(center)
	fmt.Printf("%-14s %6s %8s %8s %12s %12s\n",
		"distance", "cells", "CVT", "AGS", "GSM block", "tput (bit/s)")
	for d := 0; d <= topo.Eccentricity(center); d++ {
		var cvt, ags, blk, tput float64
		n := 0
		for _, m := range serial.PerCell {
			if dist[m.Cell] != d {
				continue
			}
			cvt += m.CarriedVoiceTraffic
			ags += m.AverageSessions
			blk += m.GSMBlocking
			tput += m.ThroughputBits
			n++
		}
		f := float64(n)
		fmt.Printf("%-14d %6d %8.3f %8.3f %12.4f %12.0f\n",
			d, n, cvt/f, ags/f, blk/f, tput/f)
	}

	// The policy comparison: the identical workload (same seed, same
	// scenario) under each handover admission policy. Guard channels trade
	// fresh-call blocking for handover protection, queued handovers convert
	// hard failures into short waits bounded by the deadline, and directed
	// retry spills failed handovers to the next neighbour.
	fmt.Printf("\nadmission-policy comparison (same workload, same seed):\n")
	fmt.Printf("%-22s %10s %8s %9s %22s %7s\n",
		"policy", "GSM block", "HO fail", "guard blk", "HO queued/served/expd", "retries")
	policies := []struct {
		label string
		p     *policy.Config
	}{
		{"default (paper)", nil},
		{"guard (2 reserved)", &policy.Config{Kind: policy.GuardChannels, Guard: 2}},
		{"queue (cap 4, 5s)", &policy.Config{Kind: policy.QueuedHandovers, QueueCapacity: 4, QueueDeadlineSec: 5}},
		{"retry (one forward)", &policy.Config{Kind: policy.DirectedRetry}},
	}
	for _, pc := range policies {
		pcfg := cfg
		pcfg.Policy = pc.p
		res, err := sim.RunOnce(pcfg, sim.ShardedOptions{Shards: 4})
		if err != nil {
			log.Fatal(err)
		}
		var blk float64
		var hoFail, guardBlk, qd, srv, exp, rty int64
		for _, m := range res.PerCell {
			blk += m.GSMBlocking
			hoFail += m.HandoverFailures
			guardBlk += m.GuardBlockedCalls
			qd += m.HandoversQueued
			srv += m.HandoverQueueServed
			exp += m.HandoverQueueExpired
			rty += m.HandoverRetries
		}
		fmt.Printf("%-22s %10.4f %8d %9d %12d/%4d/%4d %7d\n",
			pc.label, blk/float64(len(res.PerCell)), hoFail, guardBlk, qd, srv, exp, rty)
	}
}

// loadScenario reads the scenario file shipped with the example, falling back
// to the built-in hotspot preset when the example runs from another directory.
func loadScenario() scenario.Spec {
	for _, path := range []string{"scenario.json", "examples/hotspot/scenario.json"} {
		if _, err := os.Stat(path); err == nil {
			spec, err := scenario.Load(path)
			if err != nil {
				log.Fatal(err)
			}
			return spec
		}
	}
	spec, err := scenario.Preset(scenario.Hotspot)
	if err != nil {
		log.Fatal(err)
	}
	return spec
}

func round3(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Round(x*1000) / 1000
	}
	return out
}
