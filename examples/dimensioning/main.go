// Dimensioning: the network-designer scenario of Section 5.3. For GPRS users
// with a QoS profile tolerating at most 50% per-user throughput degradation,
// determine up to which call arrival rate each number of reserved PDCHs keeps
// the profile, for 2%, 5%, and 10% GPRS users — the conclusion the paper
// draws from Figs. 11-13.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ctmc"
	"repro/internal/traffic"
)

const maxDegradation = 0.5

func main() {
	rates := []float64{0.1, 0.3, 0.5, 0.7, 1.0}
	fractions := []float64{0.02, 0.05, 0.10}
	pdchs := []int{1, 2, 4}

	for _, fraction := range fractions {
		fmt.Printf("=== %.0f%% GPRS users (traffic model 3) ===\n", fraction*100)
		for _, pdch := range pdchs {
			reference := throughput(fraction, pdch, 0.01)
			supported := 0.0
			for _, rate := range rates {
				atu := throughput(fraction, pdch, rate)
				degradation := 1 - atu/reference
				if degradation <= maxDegradation {
					supported = rate
				}
			}
			if supported > 0 {
				fmt.Printf("  %d reserved PDCH: QoS profile holds up to %.1f calls/s\n", pdch, supported)
			} else {
				fmt.Printf("  %d reserved PDCH: QoS profile violated even at %.1f calls/s\n", pdch, rates[0])
			}
		}
	}
}

// throughput solves the model at a scaled-down cell (so the example finishes
// in seconds) and returns the throughput per user in bit/s.
func throughput(gprsFraction float64, reservedPDCH int, rate float64) float64 {
	cfg := core.BaseConfig(traffic.Model3, rate)
	cfg.Channels.TotalChannels = 10
	cfg.BufferSize = 30
	cfg.MaxSessions = 10
	cfg.GPRSFraction = gprsFraction
	cfg.Channels.ReservedPDCH = reservedPDCH

	model, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := model.Solve(ctmc.SolveOptions{Tolerance: 1e-6})
	if err != nil {
		log.Fatal(err)
	}
	return res.Measures.ThroughputPerUserBits
}
