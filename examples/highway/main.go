// Highway: a mobility-gradient simulation the analytical model cannot
// express — a 19-cell wrap-around hex ring crossed by a highway corridor
// whose cells carry three times the baseline load moving at four times the
// baseline speed (dwell-time multiplier 0.25). The example runs the built-in
// "highway" preset on the serial and the sharded engine, verifies the two
// are bit-identical, and prints the per-cell response grouped by distance
// from the corridor axis. To isolate the mobility effect it then repeats the
// run with the same load shape but the paper's uniform dwell times: the
// corridor's outbound handover flow collapses while its carried load barely
// moves — dwell shaping skews the handover flow itself, not the load.
package main

import (
	"fmt"
	"log"
	"reflect"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/traffic"
)

func main() {
	topo, err := cluster.Preset(19)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := scenario.Preset("highway")
	if err != nil {
		log.Fatal(err)
	}

	withMobility := configure(topo)
	if _, err := scenario.Apply(&withMobility, spec); err != nil {
		log.Fatal(err)
	}

	serial, err := sim.RunOnce(withMobility, sim.ShardedOptions{Shards: 1})
	if err != nil {
		log.Fatal(err)
	}
	sharded, err := sim.RunOnce(withMobility, sim.ShardedOptions{Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(serial, sharded) {
		log.Fatal("serial and sharded engines diverged — the determinism contract is broken")
	}
	fmt.Printf("scenario %q on %d cells: serial %d events, sharded %d events, bit-identical: true\n\n",
		spec.Name, topo.NumCells(), serial.Events, sharded.Events)

	// The control run: identical corridor load, uniform dwell times.
	loadOnly := spec
	loadOnly.Mobility = nil
	uniform := configure(topo)
	if _, err := scenario.Apply(&uniform, loadOnly); err != nil {
		log.Fatal(err)
	}
	baseline, err := sim.RunOnce(uniform, sim.ShardedOptions{Shards: 4})
	if err != nil {
		log.Fatal(err)
	}

	dist := topo.AxisDistances(spec.Spatial.Center, spec.Spatial.Axis)
	fmt.Printf("per-axis-distance response (corridor = distance 0):\n")
	fmt.Printf("%-10s %6s %10s %10s %12s %12s %12s\n",
		"distance", "cells", "CVT", "AGS", "HO out/s", "HO out/s", "HO fail")
	fmt.Printf("%-10s %6s %10s %10s %12s %12s %12s\n",
		"", "", "", "", "(highway)", "(uniform)", "(highway)")
	maxDist := 0
	for _, d := range dist {
		if d > maxDist {
			maxDist = d
		}
	}
	for d := 0; d <= maxDist; d++ {
		var cvt, ags, hoOut, hoOutBase, fail float64
		n := 0
		for i, m := range serial.PerCell {
			if dist[i] != d {
				continue
			}
			cvt += m.CarriedVoiceTraffic
			ags += m.AverageSessions
			hoOut += float64(m.HandoversOut)
			hoOutBase += float64(baseline.PerCell[i].HandoversOut)
			fail += float64(m.HandoverFailures)
			n++
		}
		f := float64(n)
		sec := withMobility.MeasurementSec
		fmt.Printf("%-10d %6d %10.3f %10.3f %12.4f %12.4f %12.1f\n",
			d, n, cvt/f, ags/f, hoOut/f/sec, hoOutBase/f/sec, fail/f)
	}
	fmt.Printf("\nfast corridor users hand over several times as often as under uniform\n")
	fmt.Printf("dwell times; off-corridor cells are nearly unchanged — mobility skews\n")
	fmt.Printf("the handover flow, not the load.\n")
}

// configure returns the scaled-down 19-cell setup shared by both runs; the
// full-size version is `gprs-sim -cells 19 -scenario highway -percell`.
func configure(topo *cluster.Topology) sim.Config {
	cfg := sim.DefaultConfig(traffic.Model3, 0.5)
	cfg.Topology = topo
	cfg.Channels.TotalChannels = 10
	cfg.BufferSize = 30
	cfg.MaxSessions = 10
	cfg.WarmupSec = 500
	cfg.MeasurementSec = 3000
	cfg.Batches = 5
	cfg.Seed = 42
	return cfg
}
