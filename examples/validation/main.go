// Validation: compare the analytical Markov model against the detailed
// seven-cell simulator with TCP flow control, in the style of Fig. 6 of the
// paper. The example uses a scaled-down cell and a short simulation so it
// finishes in well under a minute; cmd/gprs-experiments -full runs the
// paper-resolution validation.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ctmc"
	"repro/internal/sim"
	"repro/internal/traffic"
)

func main() {
	rates := []float64{0.2, 0.6, 1.0}

	fmt.Println("carried data traffic (PDCHs): Markov model vs detailed simulator (95% CI)")
	fmt.Printf("%-12s %-12s %-24s %s\n", "call rate", "model", "simulator", "model inside CI?")
	for _, rate := range rates {
		model := solveModel(rate)
		simRes := runSimulator(rate)

		iv := simRes.CarriedDataTraffic
		inside := iv.Contains(model.CarriedDataTraffic)
		fmt.Printf("%-12.2f %-12.3f %-24s %v\n",
			rate, model.CarriedDataTraffic, iv.String(), inside)
	}

	fmt.Println()
	fmt.Println("throughput per user (bit/s):")
	fmt.Printf("%-12s %-12s %-24s\n", "call rate", "model", "simulator")
	for _, rate := range rates {
		model := solveModel(rate)
		simRes := runSimulator(rate)
		fmt.Printf("%-12.2f %-12.0f %-24s\n",
			rate, model.ThroughputPerUserBits, simRes.ThroughputPerUserBits.String())
	}
}

func scaledModelConfig(rate float64) core.Config {
	cfg := core.BaseConfig(traffic.Model3, rate)
	cfg.Channels.TotalChannels = 10
	cfg.BufferSize = 30
	cfg.MaxSessions = 10
	return cfg
}

func solveModel(rate float64) core.Measures {
	model, err := core.New(scaledModelConfig(rate))
	if err != nil {
		log.Fatal(err)
	}
	res, err := model.Solve(ctmc.SolveOptions{Tolerance: 1e-6})
	if err != nil {
		log.Fatal(err)
	}
	return res.Measures
}

func runSimulator(rate float64) sim.Results {
	cfg := sim.DefaultConfig(traffic.Model3, rate)
	cfg.Channels.TotalChannels = 10
	cfg.BufferSize = 30
	cfg.MaxSessions = 10
	cfg.WarmupSec = 500
	cfg.MeasurementSec = 4000
	cfg.Batches = 5
	cfg.Seed = 42
	// RunOnce is the engine-selection entry point: Shards > 1 advances cell
	// groups in parallel conservative time windows, bit-identical to the
	// serial engine, so the choice only affects wall-clock time.
	res, err := sim.RunOnce(cfg, sim.ShardedOptions{Shards: 2})
	if err != nil {
		log.Fatal(err)
	}
	return res
}
