// Quickstart: build the GPRS Markov model with the paper's base parameter
// setting (Table 2, traffic model 3), solve it, and print the headline
// performance measures. This is the smallest complete use of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ctmc"
	"repro/internal/traffic"
)

func main() {
	// One cell with 20 physical channels, 1 PDCH reserved for GPRS, traffic
	// model 3 (heavy WWW browsing load), 0.3 GSM+GPRS calls per second.
	cfg := core.BaseConfig(traffic.Model3, 0.3)

	model, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("state space: %d states\n", model.StateSpace().NumStates())
	fmt.Printf("balanced handover rates: GSM %.4f/s, GPRS %.4f/s\n",
		model.GSMHandover().HandoverRate, model.GPRSHandover().HandoverRate)

	res, err := model.Solve(ctmc.SolveOptions{Tolerance: 1e-6})
	if err != nil {
		log.Fatal(err)
	}

	m := res.Measures
	fmt.Printf("carried data traffic:     %.3f PDCHs\n", m.CarriedDataTraffic)
	fmt.Printf("packet loss probability:  %.5f\n", m.PacketLossProbability)
	fmt.Printf("queueing delay:           %.2f s\n", m.QueueingDelay)
	fmt.Printf("throughput per user:      %.0f bit/s\n", m.ThroughputPerUserBits)
	fmt.Printf("active GPRS sessions:     %.2f\n", m.AverageSessions)
	fmt.Printf("carried voice traffic:    %.2f channels\n", m.CarriedVoiceTraffic)
	fmt.Printf("GSM / GPRS blocking:      %.4g / %.4g\n",
		m.GSMBlockingProbability, m.GPRSBlockingProbability)
	fmt.Printf("solver: %v, %d iterations, converged=%v\n",
		res.Solver.Method, res.Solver.Iterations, res.Solver.Converged)
}
