// Trace: replaying a measured arrival series — empirical traffic the paper's
// stationary-load models cannot express. The example loads the committed
// sample trace (trace.csv next to this program: per-window arrival rates and
// mean payload sizes measured over a half-hour busy cycle), compiles it into
// the normalized piecewise-constant temporal profile of internal/scenario,
// and wraps it periodically so the busy cycle repeats for the whole run. It
// verifies the replay is bit-identical between the serial and the sharded
// engine, then runs replicated experiments of the trace replay and the
// uniform (constant-rate) baseline from the same seeds and prints the
// per-cell comparison with cross-replication confidence intervals: same mean
// load by construction — the trace is normalized to mean rate 1 — so any
// difference between the two columns is the burstiness of the arrival
// pattern. With -series the cross-replication merge of the probe
// time series (mean ± CI half-width per probe window) is written as CSV, so
// the within-cycle response is visible window by window.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"reflect"

	"repro/internal/cluster"
	"repro/internal/probe"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/traffic"
)

func main() {
	reps := flag.Int("replications", 4, "independent replications per configuration")
	seriesPath := flag.String("series", "", "write the trace replay's merged probe series (mean ± CI per window and cell) to this CSV file")
	flag.Parse()

	topo, err := cluster.Preset(7)
	if err != nil {
		log.Fatal(err)
	}

	// A scaled-down cell and a short run keep the example fast;
	// cmd/gprs-sim -trace runs the full-size version on any CSV.
	cfg := sim.DefaultConfig(traffic.Model3, 0.5)
	cfg.Topology = topo
	cfg.Channels.TotalChannels = 10
	cfg.BufferSize = 30
	cfg.MaxSessions = 10
	cfg.WarmupSec = 500
	cfg.MeasurementSec = 3600
	cfg.Batches = 5
	cfg.Seed = 42
	cfg.Probe = &probe.Spec{IntervalSec: 100}

	rows := loadTrace()
	spec := scenario.Spec{
		Name: "measured-trace",
		Temporal: scenario.Temporal{
			Kind:      scenario.Trace,
			Rows:      rows,
			PeriodSec: 1800,
		},
	}
	traceCfg := cfg
	prof, err := scenario.Apply(&traceCfg, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d windows over a %gs cycle, mean payload %.0f bytes (reporting only; the paper's 480-byte packet model is unchanged)\n",
		len(rows), spec.Temporal.PeriodSec, prof.MeanPayloadBytes())
	fmt.Printf("normalized per-window scale: %v\n\n", windowScales(spec, topo))

	// The determinism contract holds under empirical traffic too: the trace
	// replay is bit-identical between the serial and the sharded engine.
	serial, err := sim.RunOnce(traceCfg, sim.ShardedOptions{Shards: 1})
	if err != nil {
		log.Fatal(err)
	}
	sharded, err := sim.RunOnce(traceCfg, sim.ShardedOptions{Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(serial, sharded) {
		log.Fatal("serial and sharded engines diverged — the determinism contract is broken")
	}
	fmt.Printf("serial engine:  %d events\n", serial.Events)
	fmt.Printf("sharded engine: %d events, bit-identical results: true\n\n", sharded.Events)

	// Replicated comparison from the same seed substreams: the trace replay
	// against the uniform baseline. The trace is normalized to mean rate 1,
	// so both configurations carry the same offered load; any difference is
	// the burstiness of the arrival pattern.
	traceSum := replicate(traceCfg, *reps)
	baseSum := replicate(cfg, *reps)

	fmt.Printf("per-cell comparison, %d replications (± cross-replication CI half-width):\n", *reps)
	fmt.Printf("  %4s %22s %22s %24s %24s\n", "cell", "CVT uniform", "CVT trace", "GSM block uniform", "GSM block trace")
	for i, bm := range baseSum.Merged.PerCell {
		tm := traceSum.Merged.PerCell[i]
		bi, ti := baseSum.Merged.PerCellCI[i], traceSum.Merged.PerCellCI[i]
		fmt.Printf("  %4d %15.3f ±%.3f %15.3f ±%.3f %16.4f ±%.4f %16.4f ±%.4f\n",
			bm.Cell,
			bm.CarriedVoiceTraffic, bi.CarriedVoiceTraffic.HalfWidth,
			tm.CarriedVoiceTraffic, ti.CarriedVoiceTraffic.HalfWidth,
			bm.GSMBlocking, bi.GSMBlocking.HalfWidth,
			tm.GSMBlocking, ti.GSMBlocking.HalfWidth)
	}
	fmt.Printf("\ncluster means: GSM blocking %.4f (uniform) vs %.4f (trace), throughput %.0f vs %.0f bit/s\n",
		baseSum.Merged.GSMBlockingProbability.Mean, traceSum.Merged.GSMBlockingProbability.Mean,
		baseSum.Merged.ThroughputBits.Mean, traceSum.Merged.ThroughputBits.Mean)

	if *seriesPath != "" {
		if traceSum.Series == nil {
			log.Fatal("series: replications produced no mergeable time series")
		}
		f, err := os.Create(*seriesPath)
		if err != nil {
			log.Fatal(err)
		}
		err = runner.WriteSeriesCSV(f, traceSum.Series)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("merged series written to %s (%d windows of %gs, %d replications)\n",
			*seriesPath, len(traceSum.Series.Times), traceSum.Series.IntervalSec, traceSum.Series.Replications)
	}
}

// replicate runs reps independent replications of cfg on the sharded engine
// and merges them into cross-replication confidence intervals.
func replicate(cfg sim.Config, reps int) runner.Summary {
	sum, err := runner.Run(cfg, runner.Options{
		Replications: reps,
		BaseSeed:     cfg.Seed,
		Shards:       4,
	})
	if err != nil {
		log.Fatal(err)
	}
	return sum
}

// loadTrace reads the sample CSV shipped with the example, falling back to
// the repo-relative path when the example runs from the module root.
func loadTrace() []scenario.TraceRow {
	var lastErr error
	for _, path := range []string{"trace.csv", "examples/trace/trace.csv"} {
		if _, err := os.Stat(path); err != nil {
			continue
		}
		rows, err := scenario.LoadTraceCSV(path)
		if err != nil {
			lastErr = err
			continue
		}
		return rows
	}
	if lastErr != nil {
		log.Fatal(lastErr)
	}
	log.Fatal("trace.csv not found (run from examples/trace/ or the module root)")
	return nil
}

// windowScales compiles the spec against unit base rates and samples the
// profile once per trace window in cell 0, so the reported values are the
// normalized rate multipliers themselves.
func windowScales(spec scenario.Spec, topo *cluster.Topology) []float64 {
	prof, err := spec.Compile(topo, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	var out []float64
	at := 0.0
	for range 6 {
		v, _ := prof.Rates(0, at)
		out = append(out, math.Round(v*1000)/1000)
		at = prof.NextChange(at)
	}
	return out
}
