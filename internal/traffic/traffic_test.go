package traffic

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSessionDurationMatchesTable3(t *testing.T) {
	// Table 3 of the paper lists the mean GPRS session durations.
	cases := []struct {
		model Model
		want  float64
	}{
		{Model1, 2122.5},
		{Model2, 2075.625},
		{Model3, 312.5},
	}
	for _, c := range cases {
		got := c.model.Spec().Session.MeanSessionDurationSec()
		if !almostEqual(got, c.want, 0.5) {
			t.Errorf("%v: session duration = %v, want %v", c.model, got, c.want)
		}
	}
}

func TestOnRatesMatchTable3(t *testing.T) {
	// Traffic model 1 is the 8 kbit/s model, models 2 and 3 are 32 kbit/s.
	if r := Model1.Spec().Session.MeanOnRateBitsPerSec(); !almostEqual(r, 7680, 1) {
		t.Errorf("model 1 on rate = %v, want 7680 (approx 8 kbit/s)", r)
	}
	if r := Model2.Spec().Session.MeanOnRateBitsPerSec(); !almostEqual(r, 30720, 1) {
		t.Errorf("model 2 on rate = %v, want 30720 (approx 32 kbit/s)", r)
	}
	if r := Model3.Spec().Session.MeanOnRateBitsPerSec(); !almostEqual(r, 30720, 1) {
		t.Errorf("model 3 on rate = %v, want 30720 (approx 32 kbit/s)", r)
	}
}

func TestPacketCallDurations(t *testing.T) {
	// Table 3: 1/alpha = 12.5 s for model 1 and 3.1(25) s for models 2 and 3.
	if d := Model1.Spec().Session.MeanPacketCallDurationSec(); !almostEqual(d, 12.5, 1e-9) {
		t.Errorf("model 1 packet call duration = %v, want 12.5", d)
	}
	if d := Model2.Spec().Session.MeanPacketCallDurationSec(); !almostEqual(d, 3.125, 1e-9) {
		t.Errorf("model 2 packet call duration = %v, want 3.125", d)
	}
	if d := Model3.Spec().Session.MeanPacketCallDurationSec(); !almostEqual(d, 3.125, 1e-9) {
		t.Errorf("model 3 packet call duration = %v, want 3.125", d)
	}
}

func TestModel3OnOffSymmetry(t *testing.T) {
	// Model 3 is defined by setting the off duration equal to the on duration.
	spec := Model3.Spec()
	ipp := spec.Session.IPP()
	if !almostEqual(1/ipp.Alpha, 1/ipp.Beta, 1e-9) {
		t.Errorf("model 3 should have equal on (%v) and off (%v) durations", 1/ipp.Alpha, 1/ipp.Beta)
	}
	if !almostEqual(ipp.OnProbability(), 0.5, 1e-12) {
		t.Errorf("model 3 on probability = %v, want 0.5", ipp.OnProbability())
	}
	if spec.MaxSessions != 20 {
		t.Errorf("model 3 M = %d, want 20", spec.MaxSessions)
	}
}

func TestModelMaxSessions(t *testing.T) {
	if Model1.Spec().MaxSessions != 50 || Model2.Spec().MaxSessions != 50 {
		t.Error("models 1 and 2 should allow 50 concurrent sessions")
	}
}

func TestIPPDerivation(t *testing.T) {
	p := Model1.Spec().Session
	ipp := p.IPP()
	if !almostEqual(ipp.Lambda, 2.0, 1e-12) {
		t.Errorf("lambda_packet = %v, want 2 (one packet per 0.5 s)", ipp.Lambda)
	}
	if !almostEqual(1/ipp.Alpha, 12.5, 1e-9) {
		t.Errorf("mean on time = %v, want 12.5", 1/ipp.Alpha)
	}
	if !almostEqual(1/ipp.Beta, 412, 1e-9) {
		t.Errorf("mean off time = %v, want 412", 1/ipp.Beta)
	}
	if err := ipp.Validate(); err != nil {
		t.Errorf("valid IPP rejected: %v", err)
	}
}

func TestIPPMeanRateConsistency(t *testing.T) {
	// The long-run packet rate must equal packets-per-session / session
	// duration.
	for _, m := range AllModels() {
		p := m.Spec().Session
		ipp := p.IPP()
		byIPP := ipp.MeanRate()
		byCounting := p.PacketsPerSession() / p.MeanSessionDurationSec()
		if math.Abs(byIPP-byCounting)/byCounting > 1e-9 {
			t.Errorf("%v: IPP mean rate %v != packets/duration %v", m, byIPP, byCounting)
		}
		if ipp.MeanBitRate() <= 0 {
			t.Errorf("%v: non-positive mean bit rate", m)
		}
	}
}

func TestBurstinessOrdering(t *testing.T) {
	// Model 2 has shorter packet calls than model 1 with the same reading
	// time, so it is burstier; model 3 (50% duty cycle) is the least bursty.
	b1 := Model1.Spec().Session.IPP().BurstinessRatio()
	b2 := Model2.Spec().Session.IPP().BurstinessRatio()
	b3 := Model3.Spec().Session.IPP().BurstinessRatio()
	if !(b2 > b1 && b1 > b3) {
		t.Errorf("burstiness ordering violated: b1=%v b2=%v b3=%v", b1, b2, b3)
	}
	if !almostEqual(b3, 2, 1e-9) {
		t.Errorf("model 3 burstiness = %v, want 2", b3)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []SessionParams{
		{NumPacketCalls: 0, ReadingTimeSec: 1, PacketsPerCall: 1, PacketInterarrivalSec: 1},
		{NumPacketCalls: 1, ReadingTimeSec: -1, PacketsPerCall: 1, PacketInterarrivalSec: 1},
		{NumPacketCalls: 1, ReadingTimeSec: 1, PacketsPerCall: math.NaN(), PacketInterarrivalSec: 1},
		{NumPacketCalls: 1, ReadingTimeSec: 1, PacketsPerCall: 1, PacketInterarrivalSec: math.Inf(1)},
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrInvalidParameter) {
			t.Errorf("case %d: expected ErrInvalidParameter, got %v", i, err)
		}
	}
	if err := (IPP{Lambda: 0, Alpha: 1, Beta: 1}).Validate(); !errors.Is(err, ErrInvalidParameter) {
		t.Error("IPP with zero lambda should be invalid")
	}
	if err := (IPP{Lambda: 1, Alpha: 0, Beta: 1}).Validate(); !errors.Is(err, ErrInvalidParameter) {
		t.Error("IPP with zero alpha should be invalid")
	}
	if err := (IPP{Lambda: 1, Alpha: 1, Beta: 0}).Validate(); !errors.Is(err, ErrInvalidParameter) {
		t.Error("IPP with zero beta should be invalid")
	}
}

func TestAllModelsValid(t *testing.T) {
	models := AllModels()
	if len(models) != 3 {
		t.Fatalf("AllModels returned %d models, want 3", len(models))
	}
	for _, m := range models {
		spec := m.Spec()
		if err := spec.Session.Validate(); err != nil {
			t.Errorf("%v: invalid session params: %v", m, err)
		}
		if spec.MaxSessions <= 0 {
			t.Errorf("%v: non-positive MaxSessions", m)
		}
		if m.String() == "unknown traffic model" {
			t.Errorf("missing name for %d", m)
		}
	}
	if Model(99).String() != "unknown traffic model" {
		t.Error("unknown model should say so")
	}
	if Model(99).Spec().MaxSessions != 0 {
		t.Error("unknown model spec should be zero-valued")
	}
}

func TestAggregateMMPPRates(t *testing.T) {
	ipp := Model3.Spec().Session.IPP()
	agg := AggregateMMPP{Source: ipp, M: 4}
	if agg.NumStates() != 5 {
		t.Fatalf("NumStates = %d, want 5", agg.NumStates())
	}
	if !almostEqual(agg.ArrivalRate(0), 4*ipp.Lambda, 1e-12) {
		t.Errorf("all-on arrival rate = %v, want %v", agg.ArrivalRate(0), 4*ipp.Lambda)
	}
	if agg.ArrivalRate(4) != 0 {
		t.Errorf("all-off arrival rate = %v, want 0", agg.ArrivalRate(4))
	}
	if agg.ArrivalRate(-1) != 0 || agg.ArrivalRate(5) != 0 {
		t.Error("out-of-range states should have zero arrival rate")
	}
	if !almostEqual(agg.RateToMoreOff(1), 3*ipp.Alpha, 1e-12) {
		t.Errorf("RateToMoreOff(1) = %v, want %v", agg.RateToMoreOff(1), 3*ipp.Alpha)
	}
	if agg.RateToMoreOff(4) != 0 {
		t.Error("cannot go beyond all-off")
	}
	if !almostEqual(agg.RateToMoreOn(3), 3*ipp.Beta, 1e-12) {
		t.Errorf("RateToMoreOn(3) = %v, want %v", agg.RateToMoreOn(3), 3*ipp.Beta)
	}
	if agg.RateToMoreOn(0) != 0 {
		t.Error("cannot go below all-on")
	}
}

func TestAggregateMMPPStationaryDistribution(t *testing.T) {
	ipp := Model3.Spec().Session.IPP() // p(on) = 0.5
	agg := AggregateMMPP{Source: ipp, M: 10}
	dist := agg.StationaryDistribution()
	var sum, mean float64
	for r, p := range dist {
		if p < 0 {
			t.Fatalf("negative probability at %d", r)
		}
		sum += p
		mean += float64(r) * p
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Errorf("stationary distribution sums to %v", sum)
	}
	// With p(off) = 0.5 the mean number of off sources is M/2.
	if !almostEqual(mean, 5, 1e-9) {
		t.Errorf("mean off sources = %v, want 5", mean)
	}
	// Detailed balance of the birth-death MMPP chain.
	for r := 0; r < agg.M; r++ {
		lhs := dist[r] * agg.RateToMoreOff(r)
		rhs := dist[r+1] * agg.RateToMoreOn(r+1)
		if math.Abs(lhs-rhs) > 1e-12 {
			t.Errorf("detailed balance violated at r=%d: %v vs %v", r, lhs, rhs)
		}
	}
}

func TestAggregateMMPPZeroSessions(t *testing.T) {
	agg := AggregateMMPP{Source: Model1.Spec().Session.IPP(), M: 0}
	dist := agg.StationaryDistribution()
	if len(dist) != 1 || dist[0] != 1 {
		t.Errorf("M=0 distribution = %v, want [1]", dist)
	}
	if agg.MeanAggregateRate() != 0 {
		t.Error("M=0 should have zero aggregate rate")
	}
}

// Property: for any m and any valid IPP, the binomial stationary distribution
// satisfies detailed balance and its mean aggregate arrival rate weighted by
// the distribution equals m * lambda * P(on).
func TestAggregateMMPPRateProperty(t *testing.T) {
	prop := func(mSeed uint8, lamSeed, aSeed, bSeed uint16) bool {
		m := int(mSeed%30) + 1
		ipp := IPP{
			Lambda: 0.01 + float64(lamSeed%1000)/100,
			Alpha:  0.01 + float64(aSeed%1000)/100,
			Beta:   0.01 + float64(bSeed%1000)/100,
		}
		agg := AggregateMMPP{Source: ipp, M: m}
		dist := agg.StationaryDistribution()
		var weighted float64
		for r, p := range dist {
			weighted += p * agg.ArrivalRate(r)
		}
		want := agg.MeanAggregateRate()
		return math.Abs(weighted-want) <= 1e-9*(1+want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIPPOffProbabilityComplement(t *testing.T) {
	ipp := Model2.Spec().Session.IPP()
	if !almostEqual(ipp.OnProbability()+ipp.OffProbability(), 1, 1e-12) {
		t.Error("on and off probabilities should sum to 1")
	}
}
