package traffic

// Model identifies one of the three traffic models of Table 3 in the paper.
type Model int

const (
	// Model1 is the 8 kbit/s WWW browsing model (Table 3, column 1).
	Model1 Model = iota + 1
	// Model2 is the 32 kbit/s WWW browsing model (Table 3, column 2).
	Model2
	// Model3 is the heavy-load model derived from Model2 by setting the off
	// duration equal to the on duration and using 50 packet calls per session
	// (Table 3, column 3).
	Model3
)

// String returns the name used in the paper for the traffic model.
func (m Model) String() string {
	switch m {
	case Model1:
		return "traffic model 1 (8 kbit/s WWW)"
	case Model2:
		return "traffic model 2 (32 kbit/s WWW)"
	case Model3:
		return "traffic model 3 (heavy load)"
	default:
		return "unknown traffic model"
	}
}

// ModelSpec bundles the session-level parameters of a traffic model with the
// admission limit M used for it in the paper's experiments.
type ModelSpec struct {
	// Name is the paper's label for the model.
	Name string
	// Session holds the 3GPP session parameters.
	Session SessionParams
	// MaxSessions is the admission limit M on concurrently active GPRS
	// sessions used with this model (Table 3).
	MaxSessions int
}

// Spec returns the Table 3 parameters for the traffic model.
func (m Model) Spec() ModelSpec {
	switch m {
	case Model1:
		return ModelSpec{
			Name: m.String(),
			Session: SessionParams{
				NumPacketCalls:        5,
				ReadingTimeSec:        412,
				PacketsPerCall:        25,
				PacketInterarrivalSec: 0.5,
			},
			MaxSessions: 50,
		}
	case Model2:
		return ModelSpec{
			Name: m.String(),
			Session: SessionParams{
				NumPacketCalls:        5,
				ReadingTimeSec:        412,
				PacketsPerCall:        25,
				PacketInterarrivalSec: 0.125,
			},
			MaxSessions: 50,
		}
	case Model3:
		// Derived from model 2: off duration equals the on duration
		// (N_d * D_d = 3.125 s) and 50 packet calls per session.
		return ModelSpec{
			Name: m.String(),
			Session: SessionParams{
				NumPacketCalls:        50,
				ReadingTimeSec:        3.125,
				PacketsPerCall:        25,
				PacketInterarrivalSec: 0.125,
			},
			MaxSessions: 20,
		}
	default:
		return ModelSpec{Name: m.String()}
	}
}

// AllModels lists the three traffic models of Table 3.
func AllModels() []Model {
	return []Model{Model1, Model2, Model3}
}
