package des

import (
	"math"
	"testing"
)

func TestDefaultKindMatchesHistoricStream(t *testing.T) {
	// NewStreamKind(seed, StreamDefault) must be draw-identical to
	// NewStream(seed): the zero kind is the historic behaviour existing
	// seeds rely on.
	a := NewStream(99)
	b := NewStreamKind(99, StreamDefault)
	for i := 0; i < 1000; i++ {
		switch i % 5 {
		case 0:
			if x, y := a.Uniform(), b.Uniform(); x != y {
				t.Fatalf("draw %d: Uniform %v != %v", i, x, y)
			}
		case 1:
			if x, y := a.Exponential(3), b.Exponential(3); x != y {
				t.Fatalf("draw %d: Exponential %v != %v", i, x, y)
			}
		case 2:
			if x, y := a.Geometric(4), b.Geometric(4); x != y {
				t.Fatalf("draw %d: Geometric %v != %v", i, x, y)
			}
		case 3:
			if x, y := a.Bernoulli(0.3), b.Bernoulli(0.3); x != y {
				t.Fatalf("draw %d: Bernoulli %v != %v", i, x, y)
			}
		case 4:
			if x, y := a.Intn(17), b.Intn(17); x != y {
				t.Fatalf("draw %d: Intn %v != %v", i, x, y)
			}
		}
	}
}

func TestAntitheticPairComplementsEveryDraw(t *testing.T) {
	// The pair members consume complementary uniforms draw for draw, even
	// when the variate types are interleaved — every inversion-mode variate
	// consumes exactly one underlying draw.
	p := NewStreamKind(7, StreamPaired)
	a := NewStreamKind(7, StreamAntithetic)
	if p.Kind() != StreamPaired || a.Kind() != StreamAntithetic {
		t.Fatalf("Kind() = %v, %v", p.Kind(), a.Kind())
	}
	for i := 0; i < 2000; i++ {
		switch i % 4 {
		case 0:
			u, v := p.Uniform(), a.Uniform()
			if math.Abs((1-u)-v) > 1e-15 {
				t.Fatalf("draw %d: uniforms %v and %v are not complements", i, u, v)
			}
		case 1:
			// Exponentials from complementary uniforms satisfy
			// exp(-x/m) + exp(-y/m) = (1-u) + u = 1.
			x, y := p.Exponential(2), a.Exponential(2)
			if s := math.Exp(-x/2) + math.Exp(-y/2); math.Abs(s-1) > 1e-12 {
				t.Fatalf("draw %d: exponential pair survival sum = %v, want 1", i, s)
			}
		case 2:
			// Complementary draws keep the pair synchronized through integer
			// variates too: both must consume exactly one draw.
			p.Intn(5)
			a.Intn(5)
		case 3:
			p.Geometric(3)
			a.Geometric(3)
		}
	}
}

func TestAntitheticExponentialsAreNegativelyCorrelated(t *testing.T) {
	p := NewStreamKind(11, StreamPaired)
	a := NewStreamKind(11, StreamAntithetic)
	const n = 10000
	var sx, sy, sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		x, y := p.Exponential(1), a.Exponential(1)
		sx += x
		sy += y
		sxy += x * y
		sxx += x * x
		syy += y * y
	}
	mx, my := sx/n, sy/n
	cov := sxy/n - mx*my
	rho := cov / math.Sqrt((sxx/n-mx*mx)*(syy/n-my*my))
	// The theoretical antithetic correlation of unit exponentials is
	// 1 - pi^2/6 ≈ -0.645; allow generous sampling slack.
	if rho > -0.5 {
		t.Errorf("antithetic exponential correlation = %v, want strongly negative", rho)
	}
}

func TestInversionVariatesStayInRange(t *testing.T) {
	for _, kind := range []StreamKind{StreamPaired, StreamAntithetic} {
		s := NewStreamKind(5, kind)
		for i := 0; i < 5000; i++ {
			if u := s.Uniform(); u < 0 || u >= 1 {
				t.Fatalf("kind %v: Uniform out of [0,1): %v", kind, u)
			}
			if x := s.Exponential(2); x < 0 || math.IsInf(x, 0) || math.IsNaN(x) {
				t.Fatalf("kind %v: Exponential out of range: %v", kind, x)
			}
			if g := s.Geometric(4); g < 1 {
				t.Fatalf("kind %v: Geometric below 1: %d", kind, g)
			}
			if k := s.Intn(9); k < 0 || k >= 9 {
				t.Fatalf("kind %v: Intn out of [0,9): %d", kind, k)
			}
			if k := s.Pick(9, 4); k == 4 || k < 0 || k >= 9 {
				t.Fatalf("kind %v: Pick returned %d", kind, k)
			}
		}
	}
}

func TestInversionMomentsMatchDistributions(t *testing.T) {
	// The inversion samplers must still produce the right distributions:
	// check means of the paired kind against the targets.
	s := NewStreamKind(3, StreamPaired)
	const n = 200000
	var sumExp, sumGeo, sumU float64
	for i := 0; i < n; i++ {
		sumExp += s.Exponential(2.5)
		sumGeo += float64(s.Geometric(4))
		sumU += s.Uniform()
	}
	if m := sumExp / n; math.Abs(m-2.5) > 0.05 {
		t.Errorf("inversion exponential mean = %v, want 2.5", m)
	}
	if m := sumGeo / n; math.Abs(m-4) > 0.1 {
		t.Errorf("inversion geometric mean = %v, want 4", m)
	}
	if m := sumU / n; math.Abs(m-0.5) > 0.01 {
		t.Errorf("inversion uniform mean = %v, want 0.5", m)
	}
}
