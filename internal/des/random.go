package des

import (
	"math"
	"math/rand"
)

// SubstreamSeed derives the seed of substream k of a base seed. The
// derivation is a SplitMix64 finalization step: the base seed is advanced by
// k+1 increments of the golden-ratio constant and the result is mixed through
// the SplitMix64 output permutation. Consecutive substream indices therefore
// land in well-separated regions of the underlying generator's state space,
// and the map (base, k) -> seed is free of the systematic collisions of
// affine schemes such as base*4+k (where nearby bases alias each other's
// substreams as the index range grows with the cell count).
func SubstreamSeed(base int64, k uint64) int64 {
	z := uint64(base) + (k+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Stream is a reproducible random variate stream for simulation input
// modelling. Distinct model components should use distinct streams (obtained
// from distinct seeds) so that changing one input process does not perturb
// the others — the common random numbers technique.
type Stream struct {
	rng *rand.Rand
}

// NewStream returns a stream seeded deterministically.
func NewStream(seed int64) *Stream {
	return &Stream{rng: rand.New(rand.NewSource(seed))}
}

// Uniform returns a variate uniformly distributed on [0, 1).
func (s *Stream) Uniform() float64 { return s.rng.Float64() }

// UniformRange returns a variate uniformly distributed on [lo, hi).
func (s *Stream) UniformRange(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Exponential returns an exponentially distributed variate with the given
// mean. A non-positive mean yields 0.
func (s *Stream) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.rng.ExpFloat64() * mean
}

// Geometric returns a geometrically distributed variate on {1, 2, ...} with
// the given mean (>= 1): the number of Bernoulli trials up to and including
// the first success with success probability 1/mean. The 3GPP traffic model
// uses geometric counts for packet calls per session and packets per packet
// call.
func (s *Stream) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	// Inversion: ceil(ln(U) / ln(1-p)).
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	n := int(math.Ceil(math.Log(u) / math.Log(1-p)))
	if n < 1 {
		n = 1
	}
	return n
}

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool { return s.rng.Float64() < p }

// Intn returns a uniformly distributed integer in [0, n). It returns 0 for
// n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return s.rng.Intn(n)
}

// Pick returns a uniformly chosen element index of a slice of length n,
// excluding the index skip (useful for choosing a handover target other than
// the current cell). It returns -1 if no valid choice exists.
func (s *Stream) Pick(n, skip int) int {
	if n <= 0 || (n == 1 && skip == 0) {
		return -1
	}
	if skip < 0 || skip >= n {
		return s.Intn(n)
	}
	idx := s.Intn(n - 1)
	if idx >= skip {
		idx++
	}
	return idx
}
