package des

import (
	"math"
	"math/rand"
)

// SubstreamSeed derives the seed of substream k of a base seed. The
// derivation is a SplitMix64 finalization step: the base seed is advanced by
// k+1 increments of the golden-ratio constant and the result is mixed through
// the SplitMix64 output permutation. Consecutive substream indices therefore
// land in well-separated regions of the underlying generator's state space,
// and the map (base, k) -> seed is free of the systematic collisions of
// affine schemes such as base*4+k (where nearby bases alias each other's
// substreams as the index range grows with the cell count).
func SubstreamSeed(base int64, k uint64) int64 {
	z := uint64(base) + (k+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// StreamKind selects how a Stream turns its underlying uniform draws into
// variates. It exists for the antithetic-variates technique of the
// replication runner: an antithetic pair is two simulation runs whose
// variate streams consume the same underlying uniform sequence, one as U and
// one as 1-U, so that an unluckily long service time in one run pairs with a
// luckily short one in the other and the pair mean has lower variance than
// two independent runs.
type StreamKind int

const (
	// StreamDefault is the historic behaviour: variates use the generator's
	// native algorithms (ziggurat exponentials, rejection-sampled integers).
	// It is the zero value, so existing seeds reproduce bit-identically.
	StreamDefault StreamKind = iota
	// StreamPaired derives every variate by inversion from exactly one
	// uniform draw. It is the primary member of an antithetic pair: draw j
	// of a StreamPaired stream and draw j of a StreamAntithetic stream with
	// the same seed use the complementary uniforms u_j and 1-u_j.
	StreamPaired
	// StreamAntithetic is the antithetic member of a pair: like
	// StreamPaired, but every uniform draw is complemented to 1-u before
	// inversion.
	StreamAntithetic
)

// Stream is a reproducible random variate stream for simulation input
// modelling. Distinct model components should use distinct streams (obtained
// from distinct seeds) so that changing one input process does not perturb
// the others — the common random numbers technique.
//
// A StreamPaired/StreamAntithetic stream additionally guarantees that every
// variate consumes exactly one underlying uniform draw (all distributions
// are sampled by inversion), so the draw sequences of the two members of an
// antithetic pair stay complement-synchronized per stream even when the two
// simulation trajectories diverge.
type Stream struct {
	rng  *rand.Rand
	kind StreamKind

	// Unit-exponential batch buffer (see BatchExponentials). expBuf[expPos:]
	// holds pre-drawn unit exponentials; a nil buffer means unbatched draws.
	expBuf []float64
	expPos int
}

// NewStream returns a stream seeded deterministically, with the historic
// default draw behaviour (StreamDefault).
func NewStream(seed int64) *Stream { return NewStreamKind(seed, StreamDefault) }

// NewStreamKind returns a stream seeded deterministically with the given
// draw behaviour. Two streams created with the same seed and the kinds
// StreamPaired and StreamAntithetic form an antithetic pair: their j-th
// uniform draws are u_j and 1-u_j.
func NewStreamKind(seed int64, kind StreamKind) *Stream {
	return &Stream{rng: rand.New(rand.NewSource(seed)), kind: kind}
}

// Kind returns the stream's draw behaviour.
func (s *Stream) Kind() StreamKind { return s.kind }

// u01 returns the next underlying uniform draw: u on [0,1) for default and
// paired streams, the complement 1-u on (0,1] for antithetic streams.
func (s *Stream) u01() float64 {
	u := s.rng.Float64()
	if s.kind == StreamAntithetic {
		u = 1 - u
	}
	return u
}

// tiny is the smallest uniform used by the inversion samplers; clamping the
// measure-zero endpoint draws to it keeps logarithms finite without
// consuming a second draw (which would desynchronize an antithetic pair).
const tiny = 0x1p-53

// Uniform returns a variate uniformly distributed on [0, 1). On antithetic
// streams the raw complement 1-u lies on (0, 1]; the endpoint 1 (a
// probability-2^-53 event) is nudged to the largest float below 1 to keep
// the documented half-open range.
func (s *Stream) Uniform() float64 {
	u := s.u01()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return u
}

// UniformRange returns a variate uniformly distributed on [lo, hi).
func (s *Stream) UniformRange(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Uniform()
}

// BatchExponentials pre-draws unit exponential variates in blocks of n
// (clamped to at least 2), amortizing the per-variate generator dispatch on
// exponential-only streams. Because the mean is applied at consumption time,
// batching is exact even when the mean changes between draws (time-varying
// rate profiles): the j-th Exponential call returns bit-identically the same
// value as on an unbatched stream.
//
// Batching is only valid for streams whose every variate is drawn through
// Exponential (in internal/sim, the arrival and call-duration streams).
// Enabling it on a stream that also serves Uniform, Geometric, Intn, or
// Bernoulli reorders the underlying uniform draws and breaks reproducibility
// against unbatched runs. n <= 0 disables batching; any buffered draws are
// consumed first, preserving the sequence.
func (s *Stream) BatchExponentials(n int) {
	if n <= 0 {
		return
	}
	if n < 2 {
		n = 2
	}
	if cap(s.expBuf) < n {
		buf := make([]float64, 0, n)
		buf = append(buf, s.expBuf[s.expPos:]...)
		s.expBuf = buf
		s.expPos = 0
	}
}

// unitExp draws one unit-mean exponential variate: the generator's ziggurat
// on default streams, single-draw inversion on paired/antithetic streams.
func (s *Stream) unitExp() float64 {
	if s.kind == StreamDefault {
		return s.rng.ExpFloat64()
	}
	v := 1 - s.u01()
	if v <= 0 {
		v = tiny
	}
	return -math.Log(v)
}

// Exponential returns an exponentially distributed variate with the given
// mean. A non-positive mean yields 0. Default streams use the generator's
// ziggurat algorithm; paired/antithetic streams invert the distribution
// function of a single uniform draw (-mean * ln(1-u)), which is monotone in
// the draw — the property antithetic pairing relies on. On a batched stream
// (BatchExponentials) the unit variate comes from the pre-drawn block; the
// value sequence is identical either way.
func (s *Stream) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	if s.expBuf == nil {
		return s.unitExp() * mean
	}
	if s.expPos == len(s.expBuf) {
		s.expBuf = s.expBuf[:cap(s.expBuf)]
		for i := range s.expBuf {
			s.expBuf[i] = s.unitExp()
		}
		s.expPos = 0
	}
	v := s.expBuf[s.expPos]
	s.expPos++
	return v * mean
}

// Geometric returns a geometrically distributed variate on {1, 2, ...} with
// the given mean (>= 1): the number of Bernoulli trials up to and including
// the first success with success probability 1/mean. The 3GPP traffic model
// uses geometric counts for packet calls per session and packets per packet
// call. Paired/antithetic streams consume exactly one uniform draw (endpoint
// draws are clamped instead of redrawn).
func (s *Stream) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	var u float64
	if s.kind == StreamDefault {
		u = s.rng.Float64()
		for u == 0 {
			u = s.rng.Float64()
		}
	} else {
		u = s.u01()
		if u <= 0 {
			u = tiny
		}
	}
	// Inversion: ceil(ln(U) / ln(1-p)).
	n := int(math.Ceil(math.Log(u) / math.Log(1-p)))
	if n < 1 {
		n = 1
	}
	return n
}

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool { return s.u01() < p }

// Intn returns a uniformly distributed integer in [0, n). It returns 0 for
// n <= 0. Paired/antithetic streams scale a single uniform draw instead of
// using the generator's rejection sampler, so the pair stays draw-for-draw
// synchronized.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	if s.kind == StreamDefault {
		return s.rng.Intn(n)
	}
	i := int(s.u01() * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// Pick returns a uniformly chosen element index of a slice of length n,
// excluding the index skip (useful for choosing a handover target other than
// the current cell). It returns -1 if no valid choice exists.
func (s *Stream) Pick(n, skip int) int {
	if n <= 0 || (n == 1 && skip == 0) {
		return -1
	}
	if skip < 0 || skip >= n {
		return s.Intn(n)
	}
	idx := s.Intn(n - 1)
	if idx >= skip {
		idx++
	}
	return idx
}
