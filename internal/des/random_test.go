package des

import "testing"

func TestSubstreamSeedIsDeterministic(t *testing.T) {
	if SubstreamSeed(1, 0) != SubstreamSeed(1, 0) {
		t.Error("SubstreamSeed must be a pure function")
	}
	if SubstreamSeed(1, 0) == SubstreamSeed(1, 1) {
		t.Error("distinct substream indices must yield distinct seeds")
	}
	if SubstreamSeed(1, 0) == SubstreamSeed(2, 0) {
		t.Error("distinct base seeds must yield distinct substreams")
	}
}

// TestSubstreamSeedCollisionFree checks the property that motivated replacing
// the affine base*4+k derivation: under the affine scheme nearby base seeds
// alias each other's substreams (base 1 substream 4 == base 2 substream 0),
// so growing the index range with the cell count silently correlated
// replications. The SplitMix64 derivation must keep all (base, k) pairs of a
// realistic range distinct.
func TestSubstreamSeedCollisionFree(t *testing.T) {
	const bases, subs = 64, 256 // e.g. 64 replications of a 37-cell cluster with 4 streams/cell
	seen := make(map[int64][2]uint64, bases*subs)
	for b := int64(1); b <= bases; b++ {
		for k := uint64(0); k < subs; k++ {
			s := SubstreamSeed(b, k)
			if prev, dup := seen[s]; dup {
				t.Fatalf("collision: (%d,%d) and (%d,%d) both derive seed %d", prev[0], prev[1], b, k, s)
			}
			seen[s] = [2]uint64{uint64(b), k}
		}
	}
}

// TestSubstreamSeedsDecorrelateStreams spot-checks that adjacent substreams
// drive visibly different variate sequences.
func TestSubstreamSeedsDecorrelateStreams(t *testing.T) {
	a := NewStream(SubstreamSeed(1, 0))
	b := NewStream(SubstreamSeed(1, 1))
	equal := 0
	for i := 0; i < 100; i++ {
		if a.Exponential(1) == b.Exponential(1) {
			equal++
		}
	}
	if equal > 0 {
		t.Errorf("adjacent substreams produced %d identical variates out of 100", equal)
	}
}
