package des

import "math"

// calQueue is a Brown calendar queue: events hash into buckets by their
// "year" floor(Time/width), bucket index year mod Nb, each bucket kept
// sorted by (Time, seq). Dequeue scans bucket slots in year order starting
// from the year of the last dequeued event; a whole fruitless year falls
// back to a direct search (sparse queue). Under smooth event-time
// distributions enqueue and dequeue are O(1) on average. The bucket count
// only grows (doubling when the live count exceeds twice the bucket count):
// like the event freelist, the calendar's footprint is bounded by the peak
// population, and never shrinking keeps the steady-state path off the
// allocator even when the pending count oscillates.
//
// The scan matches buckets by exact year equality (years are integral
// float64 values, compared exactly) rather than by accumulated float
// thresholds, so the pop order is exactly the (Time, seq) total order: a
// calendar-backed Simulation is bit-identical to a heap-backed one, pinned
// by the differential tests in this package and the engine-equivalence
// tests in internal/sim.
type calQueue struct {
	buckets [][]*Event
	width   float64
	count   int

	// lastYear is the year slot of the last dequeued event. Invariant:
	// every queued event has year >= lastYear (push rewinds the cursor when
	// an earlier event arrives), which makes the first year-matching bucket
	// head the global minimum.
	lastYear float64
}

func newCalQueue() *calQueue {
	return &calQueue{buckets: make([][]*Event, 2), width: 1}
}

func (q *calQueue) size() int { return q.count }

// yearOf returns the year slot of time t: floor(t/width), an integral
// float64. Float division by a positive width is monotone, so for events in
// different years the year order is exactly the time order.
func (q *calQueue) yearOf(t float64) float64 { return math.Floor(t / q.width) }

// bucketOf returns the bucket index of year y.
func (q *calQueue) bucketOf(y float64) int {
	i := int(math.Mod(y, float64(len(q.buckets))))
	if i < 0 {
		i += len(q.buckets)
	}
	return i
}

func (q *calQueue) push(ev *Event) {
	y := q.yearOf(ev.Time)
	if y < q.lastYear {
		// The event lands behind the dequeue cursor; rewind the cursor so
		// the scan cannot miss it.
		q.lastYear = y
	}
	i := q.bucketOf(y)
	q.buckets[i] = insertSorted(q.buckets[i], ev)
	q.count++
	if q.count > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

func (q *calQueue) peek() *Event {
	i, _, ok := q.findMin()
	if !ok {
		return nil
	}
	return q.buckets[i][0]
}

func (q *calQueue) pop() *Event {
	i, year, ok := q.findMin()
	if !ok {
		return nil
	}
	b := q.buckets[i]
	ev := b[0]
	copy(b, b[1:])
	b[len(b)-1] = nil
	q.buckets[i] = b[:len(b)-1]
	q.count--
	q.lastYear = year
	return ev
}

// findMin locates the earliest event and returns its bucket index and year.
// It scans one year's worth of buckets from the cursor, matching each
// bucket's head by exact year equality (a head in a later year waits for a
// later scan of the same bucket); a fruitless year means the next event is
// more than a year ahead, and a direct search over all bucket heads takes
// over, rewinding the cursor to the minimum's year.
func (q *calQueue) findMin() (int, float64, bool) {
	if q.count == 0 {
		return 0, 0, false
	}
	n := len(q.buckets)
	i := q.bucketOf(q.lastYear)
	for k := 0; k < n; k++ {
		if b := q.buckets[i]; len(b) > 0 && q.yearOf(b[0].Time) == q.lastYear+float64(k) {
			return i, q.lastYear + float64(k), true
		}
		i++
		if i == n {
			i = 0
		}
	}
	min := -1
	for j, b := range q.buckets {
		if len(b) == 0 {
			continue
		}
		if min < 0 || eventBefore(b[0], q.buckets[min][0]) {
			min = j
		}
	}
	year := q.yearOf(q.buckets[min][0].Time)
	q.lastYear = year
	return min, year, true
}

// resize redistributes all events over nb buckets with a width estimated
// from the current time span, then rewinds the cursor to the earliest
// event's year.
func (q *calQueue) resize(nb int) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range q.buckets {
		for _, ev := range b {
			lo = math.Min(lo, ev.Time)
			hi = math.Max(hi, ev.Time)
		}
	}
	width := 1.0
	if q.count > 1 && hi > lo {
		// Three average separations per bucket slot (Brown's rule of thumb
		// applied to the whole span).
		width = 3 * (hi - lo) / float64(q.count-1)
	}
	old := q.buckets
	q.buckets = make([][]*Event, nb)
	q.width = width
	for _, b := range old {
		for _, ev := range b {
			i := q.bucketOf(q.yearOf(ev.Time))
			q.buckets[i] = insertSorted(q.buckets[i], ev)
		}
	}
	if q.count > 0 {
		q.lastYear = q.yearOf(lo)
	} else {
		q.lastYear = 0
	}
}

// insertSorted inserts ev into the (Time, seq)-sorted slice b.
func insertSorted(b []*Event, ev *Event) []*Event {
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventBefore(b[mid], ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b = append(b, nil)
	copy(b[lo+1:], b[lo:])
	b[lo] = ev
	return b
}
