package des

import "testing"

// TestBatchExponentialsIdentity pins the batching contract: for every stream
// kind, a batched stream returns bit-identically the same exponential variate
// sequence as an unbatched stream with the same seed — including when the
// mean changes between draws (time-varying rate profiles) and when batching
// is enabled mid-stream or re-enabled with a different block size.
func TestBatchExponentialsIdentity(t *testing.T) {
	means := []float64{1, 0.25, 120, 1e-3, 60, 2}
	for _, kind := range []StreamKind{StreamDefault, StreamPaired, StreamAntithetic} {
		plain := NewStreamKind(11, kind)
		batched := NewStreamKind(11, kind)
		batched.BatchExponentials(7)
		for i := 0; i < 500; i++ {
			mean := means[i%len(means)]
			a, b := plain.Exponential(mean), batched.Exponential(mean)
			if a != b {
				t.Fatalf("kind %d draw %d: unbatched %v, batched %v", kind, i, a, b)
			}
		}

		// Enabling batching mid-stream must not skip or reorder draws.
		mid := NewStreamKind(11, kind)
		ref := NewStreamKind(11, kind)
		for i := 0; i < 10; i++ {
			if mid.Exponential(3) != ref.Exponential(3) {
				t.Fatalf("kind %d: prefix diverged", kind)
			}
		}
		mid.BatchExponentials(16)
		for i := 0; i < 100; i++ {
			if a, b := mid.Exponential(5), ref.Exponential(5); a != b {
				t.Fatalf("kind %d mid-enable draw %d: %v != %v", kind, i, a, b)
			}
		}
		// Re-enabling with a larger block preserves buffered draws.
		mid.BatchExponentials(64)
		for i := 0; i < 100; i++ {
			if a, b := mid.Exponential(0.5), ref.Exponential(0.5); a != b {
				t.Fatalf("kind %d re-enable draw %d: %v != %v", kind, i, a, b)
			}
		}
	}
}

// TestBatchExponentialsAllocFree pins that steady-state batched draws do not
// allocate (the buffer is refilled in place).
func TestBatchExponentialsAllocFree(t *testing.T) {
	s := NewStream(5)
	s.BatchExponentials(32)
	for i := 0; i < 64; i++ {
		s.Exponential(1) // warm up: buffer allocated and refilled once
	}
	if avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 33; i++ { // crosses at least one refill boundary
			s.Exponential(2)
		}
	}); avg > 0 {
		t.Errorf("batched Exponential allocated %.2f per 33 draws, want 0", avg)
	}
}
