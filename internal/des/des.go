// Package des is a discrete-event simulation kernel: an event calendar with a
// simulation clock, deterministic tie-breaking, and reproducible random
// variate streams. It substitutes for the CSIM library used by the paper's
// authors to implement the detailed network-level GPRS simulator.
//
// The kernel is event-oriented rather than process-oriented: model code
// schedules callbacks at future simulation times. Determinism is guaranteed
// for a fixed seed because ties in event time are broken by scheduling order.
package des

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// ErrInvalidTime is returned when an event is scheduled in the past or at a
// non-finite time.
var ErrInvalidTime = errors.New("des: invalid event time")

// Event is a scheduled callback.
type Event struct {
	// Time is the simulation time at which the event fires.
	Time float64
	// Action is invoked when the event fires.
	Action func()

	seq      uint64
	canceled bool
	index    int
}

// Cancel prevents the event from firing. Cancelling an already fired or
// already cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Canceled reports whether the event was cancelled.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

// eventQueue is a binary heap ordered by (time, sequence number).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].Time != q[j].Time {
		return q[i].Time < q[j].Time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Simulation owns the event calendar and the simulation clock. It is not safe
// for concurrent use; a simulation run is single-threaded (replications can
// run in parallel, each with its own Simulation).
type Simulation struct {
	now    float64
	queue  eventQueue
	seq    uint64
	events uint64
}

// NewSimulation returns an empty simulation with the clock at time 0.
func NewSimulation() *Simulation {
	return &Simulation{}
}

// Now returns the current simulation time in seconds.
func (s *Simulation) Now() float64 { return s.now }

// ProcessedEvents returns the number of events executed so far.
func (s *Simulation) ProcessedEvents() uint64 { return s.events }

// Pending returns the number of events currently scheduled (including
// cancelled events that have not yet been discarded).
func (s *Simulation) Pending() int { return len(s.queue) }

// Schedule registers action to run at absolute simulation time t and returns
// a handle that can be used to cancel it.
func (s *Simulation) Schedule(t float64, action func()) (*Event, error) {
	if math.IsNaN(t) || math.IsInf(t, 0) || t < s.now {
		return nil, fmt.Errorf("%w: t = %v (now %v)", ErrInvalidTime, t, s.now)
	}
	if action == nil {
		return nil, fmt.Errorf("%w: nil action", ErrInvalidTime)
	}
	ev := &Event{Time: t, Action: action, seq: s.seq}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev, nil
}

// ScheduleAfter registers action to run delay seconds after the current
// simulation time.
func (s *Simulation) ScheduleAfter(delay float64, action func()) (*Event, error) {
	return s.Schedule(s.now+delay, action)
}

// Step executes the next pending event. It returns false when the calendar is
// empty.
func (s *Simulation) Step() bool {
	for len(s.queue) > 0 {
		ev, ok := heap.Pop(&s.queue).(*Event)
		if !ok {
			continue
		}
		if ev.canceled {
			continue
		}
		s.now = ev.Time
		s.events++
		ev.Action()
		return true
	}
	return false
}

// RunUntil executes events until the simulation clock reaches endTime or the
// calendar becomes empty. Events scheduled exactly at endTime are executed.
// It returns the number of events executed.
func (s *Simulation) RunUntil(endTime float64) uint64 {
	var executed uint64
	for len(s.queue) > 0 {
		next := s.peekTime()
		if next > endTime {
			break
		}
		if s.Step() {
			executed++
		}
	}
	if s.now < endTime {
		s.now = endTime
	}
	return executed
}

// Run executes events until the calendar is empty and returns the number of
// events executed.
func (s *Simulation) Run() uint64 {
	var executed uint64
	for s.Step() {
		executed++
	}
	return executed
}

// peekTime returns the time of the earliest non-cancelled event, discarding
// cancelled events it encounters, or +Inf when none remain.
func (s *Simulation) peekTime() float64 {
	for len(s.queue) > 0 {
		if s.queue[0].canceled {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0].Time
	}
	return math.Inf(1)
}
