// Package des is a discrete-event simulation kernel: an event calendar with a
// simulation clock, deterministic tie-breaking, and reproducible random
// variate streams. It substitutes for the CSIM library used by the paper's
// authors to implement the detailed network-level GPRS simulator.
//
// The kernel is event-oriented rather than process-oriented: model code
// schedules callbacks at future simulation times. Determinism is guaranteed
// for a fixed seed because ties in event time are broken by scheduling order.
//
// # Allocation discipline
//
// The steady-state event path is allocation-free: fired and discarded events
// are recycled through a per-Simulation freelist, so a long run allocates
// only while the calendar grows towards its peak size. Because event records
// are recycled, Schedule hands out value-type Handles carrying a generation
// number instead of raw event pointers: a Handle of an event that already
// fired (and whose record may since have been reused for an unrelated event)
// turns Cancel into a no-op instead of cancelling a stranger.
//
// # Event list selection
//
// Two event-list implementations sit behind one scheduler interface: a binary
// heap (the reference, and the default) and a Brown calendar queue
// (NewSimulationQueue(CalendarQueue)). Both order events by (time, sequence
// number) — a strict total order, because sequence numbers are unique within
// a Simulation — so the pop order, and therefore every simulation result, is
// bit-identical between the two. The heap remains the default: profiles of
// the GPRS workloads show the calendar's O(1) average enqueue does not beat
// the heap's cache-friendly sift at the calendar sizes the model produces
// (hundreds to a few thousand pending events); the calendar queue is kept
// selectable for larger topologies where it may win.
package des

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidTime is returned when an event is scheduled in the past or at a
// non-finite time.
var ErrInvalidTime = errors.New("des: invalid event time")

// Event is a scheduled callback record. Model code never holds an Event
// directly — Schedule returns a Handle — because records are recycled through
// the simulation's freelist once they fire or their cancellation is
// collected.
type Event struct {
	// Time is the simulation time at which the event fires.
	Time float64
	// Action is invoked when the event fires.
	Action func()

	seq      uint64
	gen      uint64
	canceled bool
	index    int
}

// Handle is a cancellable reference to a scheduled event. The zero Handle is
// valid and refers to no event (Cancel is a no-op). A Handle expires when its
// event fires or its cancellation is collected: the underlying record is
// recycled for a future event, and the generation number the Handle carries
// stops matching, so Cancel and Canceled on an expired Handle are safe
// no-ops.
type Handle struct {
	ev  *Event
	gen uint64
}

// Cancel prevents the event from firing. Cancelling the zero Handle, an
// already fired, or an already cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil && h.ev.gen == h.gen {
		h.ev.canceled = true
	}
}

// Canceled reports whether the event is still pending and has been cancelled.
// It reports false for the zero Handle and for expired Handles (the event
// fired or its cancellation was collected).
func (h Handle) Canceled() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.canceled
}

// Pending reports whether the event is still scheduled (not yet fired,
// cancelled or collected).
func (h Handle) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen && !h.ev.canceled
}

// Time returns the absolute fire time of a pending event, or NaN for the
// zero Handle and for expired Handles.
func (h Handle) Time() float64 {
	if h.ev == nil || h.ev.gen != h.gen {
		return math.NaN()
	}
	return h.ev.Time
}

// eventList is the scheduler interface both event-list implementations
// (binary heap and calendar queue) satisfy. Implementations order events by
// (Time, seq) ascending; seq is unique per Simulation, so the order is a
// strict total order and pop sequences are implementation-independent.
type eventList interface {
	push(*Event)
	// pop removes and returns the earliest event, or nil when empty.
	pop() *Event
	// peek returns the earliest event without removing it, or nil when empty.
	peek() *Event
	size() int
}

// QueueKind selects the event-list implementation of a Simulation.
type QueueKind int

const (
	// HeapQueue is the binary-heap event list: the reference implementation
	// and the default (zero value).
	HeapQueue QueueKind = iota
	// CalendarQueue is the Brown calendar-queue event list: O(1) average
	// enqueue/dequeue under smooth event-time distributions. Pop order is
	// bit-identical to HeapQueue.
	CalendarQueue
)

// eventBefore is the scheduling order shared by every event list: earlier
// time first, scheduling order (seq) breaking ties.
func eventBefore(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.seq < b.seq
}

// binHeap is a hand-rolled binary heap over (Time, seq). It avoids the
// interface boxing and indirect calls of container/heap on the hottest loop
// of the simulator.
type binHeap struct {
	a []*Event
}

func (h *binHeap) size() int { return len(h.a) }

func (h *binHeap) peek() *Event {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0]
}

func (h *binHeap) push(ev *Event) {
	ev.index = len(h.a)
	h.a = append(h.a, ev)
	h.siftUp(ev.index)
}

func (h *binHeap) pop() *Event {
	n := len(h.a)
	if n == 0 {
		return nil
	}
	root := h.a[0]
	last := h.a[n-1]
	h.a[n-1] = nil
	h.a = h.a[:n-1]
	if n > 1 {
		h.a[0] = last
		last.index = 0
		h.siftDown(0)
	}
	return root
}

func (h *binHeap) siftUp(i int) {
	ev := h.a[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !eventBefore(ev, h.a[parent]) {
			break
		}
		h.a[i] = h.a[parent]
		h.a[i].index = i
		i = parent
	}
	h.a[i] = ev
	ev.index = i
}

func (h *binHeap) siftDown(i int) {
	n := len(h.a)
	ev := h.a[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && eventBefore(h.a[r], h.a[child]) {
			child = r
		}
		if !eventBefore(h.a[child], ev) {
			break
		}
		h.a[i] = h.a[child]
		h.a[i].index = i
		i = child
	}
	h.a[i] = ev
	ev.index = i
}

// Simulation owns the event calendar and the simulation clock. It is not safe
// for concurrent use; a simulation run is single-threaded (replications can
// run in parallel, each with its own Simulation).
type Simulation struct {
	now    float64
	list   eventList
	seq    uint64
	events uint64

	// free is the event-record freelist: fired and collected events are
	// recycled here, making the steady-state event path allocation-free.
	free []*Event

	// poolHits and poolMisses count freelist reuse versus fresh allocations;
	// they feed the runtime telemetry's pool-hit-rate metric. Plain counters:
	// a Simulation is single-goroutine by contract.
	poolHits, poolMisses uint64
}

// NewSimulation returns an empty simulation with the clock at time 0, using
// the binary-heap event list.
func NewSimulation() *Simulation {
	return NewSimulationQueue(HeapQueue)
}

// NewSimulationQueue returns an empty simulation using the given event-list
// implementation. Every QueueKind produces bit-identical event orderings; the
// choice affects performance only.
func NewSimulationQueue(kind QueueKind) *Simulation {
	s := &Simulation{}
	switch kind {
	case CalendarQueue:
		s.list = newCalQueue()
	default:
		s.list = &binHeap{}
	}
	return s
}

// Now returns the current simulation time in seconds.
func (s *Simulation) Now() float64 { return s.now }

// ProcessedEvents returns the number of events executed so far.
func (s *Simulation) ProcessedEvents() uint64 { return s.events }

// Pending returns the number of events currently scheduled (including
// cancelled events that have not yet been discarded).
func (s *Simulation) Pending() int { return s.list.size() }

// FreeEvents returns the current size of the event freelist (recycled
// records awaiting reuse). It exists for allocation-budget tests.
func (s *Simulation) FreeEvents() int { return len(s.free) }

// acquire takes an event record off the freelist, or allocates one.
func (s *Simulation) acquire() *Event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		s.poolHits++
		return ev
	}
	s.poolMisses++
	return &Event{}
}

// PoolStats returns the event-record freelist's reuse counters: hits are
// Schedule calls served from recycled records, misses are fresh allocations.
func (s *Simulation) PoolStats() (hits, misses uint64) {
	return s.poolHits, s.poolMisses
}

// release recycles an event record. Bumping the generation expires every
// Handle pointing at the record; dropping the Action lets the closure (and
// whatever it captures) go as soon as the model does.
func (s *Simulation) release(ev *Event) {
	ev.gen++
	ev.Action = nil
	ev.canceled = false
	s.free = append(s.free, ev)
}

// Schedule registers action to run at absolute simulation time t and returns
// a handle that can be used to cancel it.
func (s *Simulation) Schedule(t float64, action func()) (Handle, error) {
	if math.IsNaN(t) || math.IsInf(t, 0) || t < s.now {
		return Handle{}, fmt.Errorf("%w: t = %v (now %v)", ErrInvalidTime, t, s.now)
	}
	if action == nil {
		return Handle{}, fmt.Errorf("%w: nil action", ErrInvalidTime)
	}
	ev := s.acquire()
	ev.Time = t
	ev.Action = action
	ev.seq = s.seq
	s.seq++
	s.list.push(ev)
	return Handle{ev: ev, gen: ev.gen}, nil
}

// ScheduleAfter registers action to run delay seconds after the current
// simulation time.
func (s *Simulation) ScheduleAfter(delay float64, action func()) (Handle, error) {
	return s.Schedule(s.now+delay, action)
}

// Step executes the next pending event. It returns false when the calendar is
// empty.
func (s *Simulation) Step() bool {
	for {
		ev := s.list.pop()
		if ev == nil {
			return false
		}
		if ev.canceled {
			s.release(ev)
			continue
		}
		s.now = ev.Time
		s.events++
		action := ev.Action
		// Release before firing: the handle of a firing event expires the
		// moment it leaves the calendar, so a Cancel from within its own
		// action (or any later stale Cancel) cannot touch the recycled
		// record.
		s.release(ev)
		action()
		return true
	}
}

// RunUntil executes events until the simulation clock reaches endTime or the
// calendar becomes empty. Events scheduled exactly at endTime are executed.
// It returns the number of events executed.
func (s *Simulation) RunUntil(endTime float64) uint64 {
	var executed uint64
	for s.list.size() > 0 {
		next := s.peekTime()
		if next > endTime {
			break
		}
		if s.Step() {
			executed++
		}
	}
	if s.now < endTime {
		s.now = endTime
	}
	return executed
}

// Run executes events until the calendar is empty and returns the number of
// events executed.
func (s *Simulation) Run() uint64 {
	var executed uint64
	for s.Step() {
		executed++
	}
	return executed
}

// peekTime returns the time of the earliest non-cancelled event, collecting
// cancelled events it encounters, or +Inf when none remain.
func (s *Simulation) peekTime() float64 {
	for {
		ev := s.list.peek()
		if ev == nil {
			return math.Inf(1)
		}
		if ev.canceled {
			s.list.pop()
			s.release(ev)
			continue
		}
		return ev.Time
	}
}
