package des

import (
	"math"
	"math/rand"
	"testing"
)

// TestEventPoolRecycling pins the freelist contract: a fired event's record
// returns to the pool, is handed out again by the next Schedule, and carries
// no stale state into its next life.
func TestEventPoolRecycling(t *testing.T) {
	sim := NewSimulation()
	h1, err := sim.Schedule(1, func() {})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.Step() {
		t.Fatal("Step should fire the event")
	}
	if sim.FreeEvents() != 1 {
		t.Fatalf("free events = %d, want 1 (fired record recycled)", sim.FreeEvents())
	}
	if h1.Pending() || h1.Canceled() {
		t.Error("handle of a fired event must be expired")
	}
	if !math.IsNaN(h1.Time()) {
		t.Error("expired handle should report NaN time")
	}

	// A cancelled-then-recycled record must not leak its cancellation.
	fired := false
	h2, err := sim.Schedule(2, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if sim.FreeEvents() != 0 {
		t.Fatalf("free events = %d, want 0 (record reused)", sim.FreeEvents())
	}
	// The stale handle must not be able to cancel the reused record.
	h1.Cancel()
	if h2.Canceled() {
		t.Fatal("stale handle cancelled an unrelated reused event")
	}
	sim.Run()
	if !fired {
		t.Fatal("reused event did not fire")
	}

	// And a genuinely cancelled event is collected, recycled, and its reuse
	// starts uncancelled.
	h3, _ := sim.Schedule(3, func() {})
	h3.Cancel()
	sim.Run()
	h4, _ := sim.Schedule(4, func() {})
	if h4.Canceled() {
		t.Error("recycled record carried a stale cancellation")
	}
	if !h4.Pending() {
		t.Error("fresh event should be pending")
	}
	h3.Cancel() // stale: must be a no-op
	if h4.Canceled() {
		t.Error("stale cancel after recycling reached the new event")
	}
}

// TestSelfCancelDuringAction pins the release-before-fire rule: an action
// cancelling its own (already fired) event is a no-op and cannot corrupt the
// record the freelist may immediately hand to a nested Schedule.
func TestSelfCancelDuringAction(t *testing.T) {
	sim := NewSimulation()
	var self Handle
	nestedFired := false
	self, _ = sim.Schedule(1, func() {
		self.Cancel() // our own record: already released, must be a no-op
		if _, err := sim.ScheduleAfter(1, func() { nestedFired = true }); err != nil {
			t.Errorf("nested schedule: %v", err)
		}
	})
	sim.Run()
	if !nestedFired {
		t.Fatal("self-cancel leaked into the recycled record of the nested event")
	}
}

// TestScheduleFireSteadyStateAllocs pins the kernel's allocation-free
// steady-state contract for both event-list implementations: once the
// freelist has warmed up, a schedule/fire cycle performs zero allocations.
func TestScheduleFireSteadyStateAllocs(t *testing.T) {
	for _, kind := range []QueueKind{HeapQueue, CalendarQueue} {
		sim := NewSimulationQueue(kind)
		action := func() {}
		cycle := func() {
			for i := 0; i < 64; i++ {
				if _, err := sim.ScheduleAfter(float64(i%7), action); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 64; i++ {
				sim.Step()
			}
		}
		// Warm the freelist and the event-list capacities (the calendar's
		// bucket slices converge to their peak occupancy over several cycles
		// as the advancing clock shifts events across bucket slots).
		for i := 0; i < 64; i++ {
			cycle()
		}
		if avg := testing.AllocsPerRun(10, cycle); avg > 0 {
			t.Errorf("queue kind %d: %.2f allocs per 64-event cycle, want 0", kind, avg)
		}
	}
}

// TestCalendarHeapDifferential is the differential property test of the two
// event-list implementations: for randomized schedules — clustered and
// dispersed times, exact ties, nested scheduling, cancellations — the
// calendar queue must pop the exact (Time, seq) sequence the binary heap
// pops.
func TestCalendarHeapDifferential(t *testing.T) {
	type popped struct {
		at  float64
		tag int
	}
	run := func(kind QueueKind, seed int64) []popped {
		rng := rand.New(rand.NewSource(seed))
		sim := NewSimulationQueue(kind)
		var got []popped
		tag := 0
		var handles []Handle
		var schedule func(at float64)
		schedule = func(at float64) {
			id := tag
			tag++
			h, err := sim.Schedule(at, func() {
				got = append(got, popped{sim.Now(), id})
				// Nested scheduling from inside actions, deterministic in the
				// pop order (which is what the test verifies).
				if id%5 == 0 {
					schedule(sim.Now() + 0.25)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
		for i := 0; i < 400; i++ {
			switch rng.Intn(4) {
			case 0: // clustered times with frequent exact ties
				schedule(float64(rng.Intn(8)))
			case 1: // dispersed times spanning many calendar years
				schedule(rng.Float64() * 1e4)
			case 2: // fine-grained fractional times within one year
				schedule(rng.Float64())
			default: // negative-free mixture around the origin
				schedule(float64(rng.Intn(100)) / 16)
			}
		}
		// Cancel a deterministic subset of the top-level events (the cancel
		// loop runs before any event fires, so handles holds exactly the 400
		// initial schedules).
		for i, h := range handles {
			if i%7 == 0 {
				h.Cancel()
			}
		}
		sim.Run()
		return got
	}
	for seed := int64(1); seed <= 10; seed++ {
		heapSeq := run(HeapQueue, seed)
		calSeq := run(CalendarQueue, seed)
		if len(heapSeq) != len(calSeq) {
			t.Fatalf("seed %d: heap popped %d events, calendar %d", seed, len(heapSeq), len(calSeq))
		}
		for i := range heapSeq {
			if heapSeq[i] != calSeq[i] {
				t.Fatalf("seed %d: pop %d differs: heap %+v, calendar %+v", seed, i, heapSeq[i], calSeq[i])
			}
		}
	}
}

// TestCalendarResizeKeepsOrder drives the calendar through growth and
// shrinkage (bucket doubling/halving) and checks against a heap reference.
func TestCalendarResizeKeepsOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cal := newCalQueue()
	ref := &binHeap{}
	seq := uint64(0)
	push := func(at float64) {
		a := &Event{Time: at, seq: seq}
		b := &Event{Time: at, seq: seq}
		seq++
		cal.push(a)
		ref.push(b)
	}
	popBoth := func() {
		a, b := cal.pop(), ref.pop()
		switch {
		case a == nil && b == nil:
		case a == nil || b == nil:
			t.Fatalf("size mismatch: cal %v, heap %v", a, b)
		case a.Time != b.Time || a.seq != b.seq:
			t.Fatalf("order mismatch: cal (%v,%d), heap (%v,%d)", a.Time, a.seq, b.Time, b.seq)
		}
	}
	// Grow to a few hundred events, drain to near-empty, regrow, drain fully.
	for i := 0; i < 500; i++ {
		push(rng.Float64() * 1e3)
	}
	for i := 0; i < 490; i++ {
		popBoth()
	}
	for i := 0; i < 200; i++ {
		push(1e3 + rng.Float64()*10) // behind and ahead of the cursor's year
		if i%3 == 0 {
			push(rng.Float64()) // rewind the cursor
		}
	}
	for cal.size() > 0 {
		popBoth()
	}
	popBoth() // both empty
}
