package des

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrder(t *testing.T) {
	sim := NewSimulation()
	var order []int
	if _, err := sim.Schedule(3, func() { order = append(order, 3) }); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Schedule(1, func() { order = append(order, 1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Schedule(2, func() { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	n := sim.Run()
	if n != 3 {
		t.Fatalf("executed %d events, want 3", n)
	}
	if !sort.IntsAreSorted(order) {
		t.Errorf("events executed out of order: %v", order)
	}
	if sim.Now() != 3 {
		t.Errorf("clock = %v, want 3", sim.Now())
	}
	if sim.ProcessedEvents() != 3 {
		t.Errorf("processed = %d", sim.ProcessedEvents())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	sim := NewSimulation()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := sim.Schedule(5, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	for i, v := range order {
		if i != v {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestScheduleAfterAndNestedScheduling(t *testing.T) {
	sim := NewSimulation()
	var times []float64
	var recurse func()
	count := 0
	recurse = func() {
		times = append(times, sim.Now())
		count++
		if count < 5 {
			if _, err := sim.ScheduleAfter(2, recurse); err != nil {
				t.Errorf("nested schedule: %v", err)
			}
		}
	}
	if _, err := sim.ScheduleAfter(1, recurse); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	want := []float64{1, 3, 5, 7, 9}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times[%d] = %v, want %v", i, times[i], want[i])
		}
	}
}

func TestCancel(t *testing.T) {
	sim := NewSimulation()
	fired := false
	ev, err := sim.Schedule(1, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	ev.Cancel()
	if !ev.Canceled() {
		t.Error("Canceled() should report true")
	}
	sim.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	// Cancelling the zero Handle or an already-cancelled event must not panic.
	var zero Handle
	zero.Cancel()
	if zero.Canceled() {
		t.Error("zero handle reports cancelled")
	}
	if !math.IsNaN(zero.Time()) {
		t.Error("zero handle should have NaN time")
	}
	ev.Cancel()
}

func TestRunUntil(t *testing.T) {
	sim := NewSimulation()
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		tm := tm
		if _, err := sim.Schedule(tm, func() { fired = append(fired, tm) }); err != nil {
			t.Fatal(err)
		}
	}
	n := sim.RunUntil(3)
	if n != 3 {
		t.Errorf("executed %d events, want 3 (inclusive boundary)", n)
	}
	if sim.Now() != 3 {
		t.Errorf("clock = %v, want 3", sim.Now())
	}
	if sim.Pending() != 2 {
		t.Errorf("pending = %d, want 2", sim.Pending())
	}
	// Advancing beyond the last event leaves the clock at the horizon.
	sim.RunUntil(10)
	if sim.Now() != 10 {
		t.Errorf("clock = %v, want 10", sim.Now())
	}
}

func TestScheduleErrors(t *testing.T) {
	sim := NewSimulation()
	if _, err := sim.Schedule(1, func() {}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if _, err := sim.Schedule(0.5, func() {}); !errors.Is(err, ErrInvalidTime) {
		t.Error("scheduling in the past should fail")
	}
	if _, err := sim.Schedule(math.NaN(), func() {}); !errors.Is(err, ErrInvalidTime) {
		t.Error("NaN time should fail")
	}
	if _, err := sim.Schedule(math.Inf(1), func() {}); !errors.Is(err, ErrInvalidTime) {
		t.Error("infinite time should fail")
	}
	if _, err := sim.Schedule(5, nil); !errors.Is(err, ErrInvalidTime) {
		t.Error("nil action should fail")
	}
}

func TestStepOnEmptyCalendar(t *testing.T) {
	sim := NewSimulation()
	if sim.Step() {
		t.Error("Step on empty calendar should return false")
	}
	if sim.Run() != 0 {
		t.Error("Run on empty calendar should execute nothing")
	}
}

func TestStreamExponentialMean(t *testing.T) {
	s := NewStream(1)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exponential(5)
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.1 {
		t.Errorf("exponential mean = %v, want 5", mean)
	}
	if s.Exponential(0) != 0 || s.Exponential(-1) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}

func TestStreamGeometricMean(t *testing.T) {
	s := NewStream(2)
	const n = 200000
	var sum float64
	minSeen := math.MaxInt64
	for i := 0; i < n; i++ {
		v := s.Geometric(25)
		if v < minSeen {
			minSeen = v
		}
		sum += float64(v)
	}
	mean := sum / n
	if math.Abs(mean-25) > 0.5 {
		t.Errorf("geometric mean = %v, want 25", mean)
	}
	if minSeen < 1 {
		t.Errorf("geometric variates must be >= 1, got %d", minSeen)
	}
	if s.Geometric(1) != 1 || s.Geometric(0.5) != 1 {
		t.Error("mean <= 1 should yield the constant 1")
	}
}

func TestStreamUniformAndBernoulli(t *testing.T) {
	s := NewStream(3)
	const n = 100000
	var sum float64
	trueCount := 0
	for i := 0; i < n; i++ {
		u := s.UniformRange(2, 4)
		if u < 2 || u >= 4 {
			t.Fatalf("UniformRange out of range: %v", u)
		}
		sum += u
		if s.Bernoulli(0.3) {
			trueCount++
		}
	}
	if math.Abs(sum/n-3) > 0.02 {
		t.Errorf("uniform mean = %v, want 3", sum/n)
	}
	frac := float64(trueCount) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) fraction = %v", frac)
	}
}

func TestStreamReproducible(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	for i := 0; i < 100; i++ {
		if a.Uniform() != b.Uniform() {
			t.Fatal("same seed must yield the same sequence")
		}
	}
	c := NewStream(43)
	same := true
	a = NewStream(42)
	for i := 0; i < 10; i++ {
		if a.Uniform() != c.Uniform() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different sequences")
	}
}

func TestStreamIntnAndPick(t *testing.T) {
	s := NewStream(7)
	if s.Intn(0) != 0 || s.Intn(-3) != 0 {
		t.Error("Intn with n <= 0 should return 0")
	}
	for i := 0; i < 1000; i++ {
		v := s.Intn(6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	// Pick excludes the skipped index.
	counts := make(map[int]int)
	for i := 0; i < 6000; i++ {
		v := s.Pick(7, 3)
		if v == 3 || v < 0 || v >= 7 {
			t.Fatalf("Pick returned invalid index %d", v)
		}
		counts[v]++
	}
	if len(counts) != 6 {
		t.Errorf("Pick should cover all 6 other indices, got %v", counts)
	}
	if s.Pick(1, 0) != -1 {
		t.Error("Pick with a single excluded element should return -1")
	}
	if s.Pick(0, 0) != -1 {
		t.Error("Pick on empty range should return -1")
	}
	if v := s.Pick(5, 9); v < 0 || v >= 5 {
		t.Error("Pick with out-of-range skip behaves like Intn")
	}
}

// Property: RunUntil never executes events scheduled after the horizon and
// never leaves the clock before the horizon.
func TestRunUntilProperty(t *testing.T) {
	prop := func(times []uint16, horizonSeed uint16) bool {
		sim := NewSimulation()
		horizon := float64(horizonSeed % 1000)
		executed := 0
		expected := 0
		for _, tv := range times {
			at := float64(tv % 2000)
			if at <= horizon {
				expected++
			}
			if _, err := sim.Schedule(at, func() { executed++ }); err != nil {
				return false
			}
		}
		sim.RunUntil(horizon)
		return executed == expected && sim.Now() >= horizon
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
