package stats

import "math"

// MeanInterval returns the Student-t confidence interval of the mean of the
// given independent samples at the given confidence level (e.g. 0.95). It is
// the estimator behind cross-replication intervals: each sample is the point
// estimate of one independent simulation replication, so — unlike batch means
// within a single run — no independence approximation is needed. With fewer
// than two samples the half-width is +Inf; the interval's Batches field
// reports the sample count.
func MeanInterval(xs []float64, level float64) Interval {
	iv := Interval{Level: level, Batches: len(xs)}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	iv.Mean = w.Mean()
	if w.Count() < 2 {
		iv.HalfWidth = math.Inf(1)
		return iv
	}
	t := TQuantile(int(w.Count())-1, 1-level)
	iv.HalfWidth = t * w.StdDev() / math.Sqrt(float64(w.Count()))
	return iv
}
