package stats

// TimeWeighted accumulates a piecewise-constant state variable (for example a
// queue length or the number of busy channels) and reports its time average.
//
// Call Update(t, v) whenever the variable changes value; the variable is
// assumed to hold its previous value on [lastT, t). The zero value is ready
// to use and starts measuring at time 0 with value 0; use Start to begin at a
// different origin (e.g. after a warm-up period).
type TimeWeighted struct {
	started  bool
	startT   float64
	lastT    float64
	lastV    float64
	integral float64
	maxV     float64
}

// Start begins the measurement interval at time t with current value v,
// discarding anything accumulated so far.
func (tw *TimeWeighted) Start(t, v float64) {
	*tw = TimeWeighted{started: true, startT: t, lastT: t, lastV: v, maxV: v}
}

// Update advances the clock to time t and records that the variable now holds
// value v. Calls with t earlier than the previous update are ignored except
// for recording the new value.
func (tw *TimeWeighted) Update(t, v float64) {
	if !tw.started {
		tw.Start(0, 0)
	}
	if t > tw.lastT {
		tw.integral += tw.lastV * (t - tw.lastT)
		tw.lastT = t
	}
	tw.lastV = v
	if v > tw.maxV {
		tw.maxV = v
	}
}

// Mean returns the time average of the variable over [start, t], advancing the
// accumulated integral to time t first.
func (tw *TimeWeighted) Mean(t float64) float64 {
	if !tw.started {
		return 0
	}
	if t > tw.lastT {
		tw.integral += tw.lastV * (t - tw.lastT)
		tw.lastT = t
	}
	elapsed := tw.lastT - tw.startT
	if elapsed <= 0 {
		return tw.lastV
	}
	return tw.integral / elapsed
}

// MeanAt returns the time average of the variable over [start, t] without
// advancing the accumulator: unlike Mean, the internal integral and clock are
// left untouched, so a later Mean(t') performs exactly the same float
// accumulation steps it would have performed had MeanAt never been called.
// Mid-run observers (the probe samplers of internal/sim) rely on this to read
// running averages without perturbing the bit-exact terminal statistics. The
// arithmetic mirrors Mean exactly, so MeanAt(t) equals a hypothetical final
// Mean(t) bit for bit.
func (tw *TimeWeighted) MeanAt(t float64) float64 {
	if !tw.started {
		return 0
	}
	integral, lastT := tw.integral, tw.lastT
	if t > lastT {
		integral += tw.lastV * (t - lastT)
		lastT = t
	}
	elapsed := lastT - tw.startT
	if elapsed <= 0 {
		return tw.lastV
	}
	return integral / elapsed
}

// IntegralAt returns the accumulated time-integral of the variable over
// [start, t] without advancing the accumulator, mirroring MeanAt: the
// internal integral and clock are left untouched, and the arithmetic performs
// exactly the float operations a terminal read at t would perform. The
// batch-means loop of internal/sim differences IntegralAt values at batch
// boundaries, so a gauge can serve per-batch means without ever being reset —
// which keeps its terminal Mean bit-identical to an untouched accumulator's.
func (tw *TimeWeighted) IntegralAt(t float64) float64 {
	if !tw.started {
		return 0
	}
	integral := tw.integral
	if t > tw.lastT {
		integral += tw.lastV * (t - tw.lastT)
	}
	return integral
}

// Current returns the value recorded by the most recent update.
func (tw *TimeWeighted) Current() float64 { return tw.lastV }

// Max returns the largest value observed since Start.
func (tw *TimeWeighted) Max() float64 { return tw.maxV }
