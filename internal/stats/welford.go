// Package stats provides the statistical estimators used by the detailed
// GPRS simulator and the experiment harness: online moment estimation
// (Welford), time-weighted averages for state variables such as queue lengths
// and channel occupancy, batch-means confidence intervals for steady-state
// simulation output, Student-t quantiles, and simple histograms.
//
// The package corresponds to the statistics facilities of the CSIM library
// used by the paper's authors; it is a from-scratch, stdlib-only substitute.
package stats

import "math"

// Welford accumulates observations and maintains running mean and variance
// using Welford's numerically stable online algorithm. The zero value is
// ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min = x
		w.max = x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of recorded observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean. It returns 0 if no observations were added.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance. It returns 0 for fewer than
// two observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest recorded observation (0 if none).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest recorded observation (0 if none).
func (w *Welford) Max() float64 { return w.max }

// Sum returns the sum of all observations.
func (w *Welford) Sum() float64 { return w.mean * float64(w.n) }

// Merge combines the statistics of other into w, as if all observations of
// other had been added to w directly (Chan et al. parallel variance formula).
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	delta := other.mean - w.mean
	mean := w.mean + delta*float64(other.n)/float64(n)
	m2 := w.m2 + other.m2 + delta*delta*float64(w.n)*float64(other.n)/float64(n)
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
	w.n = n
	w.mean = mean
	w.m2 = m2
}

// Reset discards all recorded observations.
func (w *Welford) Reset() { *w = Welford{} }
