package stats

import "math"

// Histogram is a fixed-width bin histogram over [min, max). Observations
// outside the range are counted in underflow/overflow buckets.
type Histogram struct {
	min, max float64
	width    float64
	bins     []int64
	under    int64
	over     int64
	total    int64
	sum      float64
}

// NewHistogram returns a histogram with the given number of equal-width bins
// covering [min, max). It returns nil if the parameters are invalid.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 || max <= min {
		return nil
	}
	return &Histogram{
		min:   min,
		max:   max,
		width: (max - min) / float64(bins),
		bins:  make([]int64, bins),
	}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	h.sum += x
	switch {
	case x < h.min:
		h.under++
	case x >= h.max:
		h.over++
	default:
		idx := int((x - h.min) / h.width)
		if idx >= len(h.bins) {
			idx = len(h.bins) - 1
		}
		h.bins[idx]++
	}
}

// Count returns the total number of observations, including out-of-range ones.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the mean of all observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int64 {
	if i < 0 || i >= len(h.bins) {
		return 0
	}
	return h.bins[i]
}

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.min + (float64(i)+0.5)*h.width
}

// Underflow returns the count of observations below the histogram range.
func (h *Histogram) Underflow() int64 { return h.under }

// Overflow returns the count of observations at or above the histogram range.
func (h *Histogram) Overflow() int64 { return h.over }

// Quantile returns an approximation of the q-quantile (0 < q < 1) assuming
// observations are uniformly distributed within each bin. Out-of-range
// observations are attributed to the range boundaries.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 || q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.total)
	cum := float64(h.under)
	if cum >= target {
		return h.min
	}
	for i, c := range h.bins {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.min + (float64(i)+frac)*h.width
		}
		cum = next
	}
	return h.max
}

// RelativeFrequency returns the fraction of in-range observations in bin i.
func (h *Histogram) RelativeFrequency(i int) float64 {
	inRange := h.total - h.under - h.over
	if inRange == 0 {
		return 0
	}
	return float64(h.Bin(i)) / float64(inRange)
}

// MeanAbsoluteError returns the mean absolute difference between two series;
// it is a convenience helper for validation comparisons and returns NaN when
// the series lengths differ or are empty.
func MeanAbsoluteError(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(len(a))
}

// MaxRelativeError returns max_i |a_i-b_i| / max(|b_i|, eps); it is used to
// compare analytical and simulated performance curves.
func MaxRelativeError(a, b []float64, eps float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	var worst float64
	for i := range a {
		den := math.Abs(b[i])
		if den < eps {
			den = eps
		}
		rel := math.Abs(a[i]-b[i]) / den
		if rel > worst {
			worst = rel
		}
	}
	return worst
}
