package stats

import "math"

// TQuantile returns the two-sided Student-t critical value t_{df, 1-alpha/2},
// i.e. the value q such that P(|T_df| <= q) = 1 - alpha. It is used to build
// confidence intervals from batch means.
//
// The implementation inverts the regularized incomplete beta function via
// bisection on the t CDF; accuracy is far better than needed for confidence
// intervals (absolute error < 1e-8).
func TQuantile(df int, alpha float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if alpha <= 0 {
		return math.Inf(1)
	}
	if alpha >= 1 {
		return 0
	}
	target := 1 - alpha/2
	// The t CDF is monotonically increasing; bracket the quantile and bisect.
	lo, hi := 0.0, 1.0
	for tCDF(hi, df) < target {
		hi *= 2
		if hi > 1e8 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if tCDF(mid, df) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// tCDF returns P(T_df <= x) for the Student-t distribution with df degrees of
// freedom.
func tCDF(x float64, df int) float64 {
	if x == 0 {
		return 0.5
	}
	v := float64(df)
	ib := regIncBeta(v/2, 0.5, v/(v+x*x))
	if x > 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes style).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x)
	}
	// Use the symmetry relation for better convergence.
	frontSym := math.Exp(math.Log(1-x)*b+math.Log(x)*a+lbeta) / b
	return 1 - frontSym*betaCF(b, a, 1-x)
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
