package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestWelfordBasic(t *testing.T) {
	var w Welford
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range data {
		w.Add(x)
	}
	if w.Count() != int64(len(data)) {
		t.Fatalf("count = %d, want %d", w.Count(), len(data))
	}
	if !almostEqual(w.Mean(), 5.0, 1e-12) {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	// Population variance of this classic data set is 4; sample variance is
	// 32/7.
	if !almostEqual(w.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", w.Min(), w.Max())
	}
	if !almostEqual(w.Sum(), 40, 1e-12) {
		t.Errorf("sum = %v, want 40", w.Sum())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Count() != 0 {
		t.Errorf("zero-value Welford should report zeros")
	}
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 {
		t.Errorf("single observation: mean=%v var=%v", w.Mean(), w.Variance())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var all, a, b Welford
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), all.Count())
	}
	if !almostEqual(a.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged mean = %v, want %v", a.Mean(), all.Mean())
	}
	if !almostEqual(a.Variance(), all.Variance(), 1e-9) {
		t.Errorf("merged variance = %v, want %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merged min/max mismatch")
	}
}

func TestWelfordMergeIntoEmpty(t *testing.T) {
	var a, b Welford
	b.Add(1)
	b.Add(2)
	a.Merge(&b)
	if a.Count() != 2 || !almostEqual(a.Mean(), 1.5, 1e-12) {
		t.Errorf("merge into empty: count=%d mean=%v", a.Count(), a.Mean())
	}
	var empty Welford
	a.Merge(&empty)
	if a.Count() != 2 {
		t.Errorf("merging empty changed count to %d", a.Count())
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Add(5)
	w.Reset()
	if w.Count() != 0 || w.Mean() != 0 {
		t.Errorf("reset did not clear state")
	}
}

// Property: mean always lies between min and max, and variance is never
// negative, for arbitrary input slices.
func TestWelfordProperties(t *testing.T) {
	prop := func(xs []float64) bool {
		var w Welford
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				continue
			}
			w.Add(x)
		}
		if w.Count() == 0 {
			return true
		}
		if w.Variance() < -1e-9 {
			ok = false
		}
		if w.Mean() < w.Min()-1e-9 || w.Mean() > w.Max()+1e-9 {
			ok = false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var tw TimeWeighted
	tw.Start(0, 0)
	tw.Update(2, 4)  // value 0 on [0,2)
	tw.Update(6, 1)  // value 4 on [2,6)
	tw.Update(10, 0) // value 1 on [6,10)
	// Integral = 0*2 + 4*4 + 1*4 = 20 over 10 time units.
	if got := tw.Mean(10); !almostEqual(got, 2.0, 1e-12) {
		t.Errorf("time-weighted mean = %v, want 2", got)
	}
	if tw.Max() != 4 {
		t.Errorf("max = %v, want 4", tw.Max())
	}
	if tw.Current() != 0 {
		t.Errorf("current = %v, want 0", tw.Current())
	}
}

func TestTimeWeightedLateStart(t *testing.T) {
	var tw TimeWeighted
	tw.Start(100, 5)
	tw.Update(110, 0)
	if got := tw.Mean(120); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("mean = %v, want 2.5", got)
	}
}

func TestTimeWeightedZeroValueAutoStart(t *testing.T) {
	var tw TimeWeighted
	tw.Update(5, 2)
	if got := tw.Mean(10); !almostEqual(got, 1.0, 1e-12) {
		t.Errorf("mean = %v, want 1.0", got)
	}
}

func TestTimeWeightedNoElapsedTime(t *testing.T) {
	var tw TimeWeighted
	tw.Start(3, 7)
	if got := tw.Mean(3); got != 7 {
		t.Errorf("mean with zero elapsed = %v, want current value 7", got)
	}
}
