package stats

import (
	"math"
	"testing"
)

func TestMeanInterval(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	iv := MeanInterval(xs, 0.95)
	if iv.Mean != 3 {
		t.Errorf("mean = %v, want 3", iv.Mean)
	}
	if iv.Batches != 5 || iv.Level != 0.95 {
		t.Errorf("metadata wrong: %+v", iv)
	}
	// s = sqrt(2.5), t_{4, 0.975} = 2.7764: half-width = t * s / sqrt(5).
	want := 2.7764 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(iv.HalfWidth-want) > 1e-3 {
		t.Errorf("half-width = %v, want %v", iv.HalfWidth, want)
	}

	// MeanInterval over the same samples must agree with BatchMeans fed the
	// same values as batch means — both are t intervals over the sample mean.
	bm := NewBatchMeans(1)
	for _, x := range xs {
		bm.Add(x)
	}
	ref := bm.ConfidenceInterval(0.95)
	if math.Abs(iv.Mean-ref.Mean) > 1e-12 || math.Abs(iv.HalfWidth-ref.HalfWidth) > 1e-12 {
		t.Errorf("MeanInterval %+v disagrees with BatchMeans %+v", iv, ref)
	}
}

func TestMeanIntervalDegenerate(t *testing.T) {
	if iv := MeanInterval(nil, 0.95); iv.Mean != 0 || !math.IsInf(iv.HalfWidth, 1) {
		t.Errorf("empty samples: %+v", iv)
	}
	if iv := MeanInterval([]float64{7}, 0.95); iv.Mean != 7 || !math.IsInf(iv.HalfWidth, 1) {
		t.Errorf("single sample: %+v", iv)
	}
}
