package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if h == nil {
		t.Fatal("NewHistogram returned nil for valid parameters")
	}
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1) // underflow
	h.Add(11) // overflow
	if h.Count() != 12 {
		t.Errorf("count = %d, want 12", h.Count())
	}
	if h.Underflow() != 1 || h.Overflow() != 1 {
		t.Errorf("under/over = %d/%d, want 1/1", h.Underflow(), h.Overflow())
	}
	for i := 0; i < 10; i++ {
		if h.Bin(i) != 1 {
			t.Errorf("bin %d = %d, want 1", i, h.Bin(i))
		}
	}
	if h.NumBins() != 10 {
		t.Errorf("NumBins = %d, want 10", h.NumBins())
	}
	if !almostEqual(h.BinCenter(0), 0.5, 1e-12) {
		t.Errorf("BinCenter(0) = %v, want 0.5", h.BinCenter(0))
	}
	if !almostEqual(h.RelativeFrequency(3), 0.1, 1e-12) {
		t.Errorf("RelativeFrequency(3) = %v, want 0.1", h.RelativeFrequency(3))
	}
}

func TestHistogramInvalid(t *testing.T) {
	if NewHistogram(5, 5, 10) != nil {
		t.Error("expected nil for max <= min")
	}
	if NewHistogram(0, 1, 0) != nil {
		t.Error("expected nil for zero bins")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	med := h.Quantile(0.5)
	if math.Abs(med-50) > 2 {
		t.Errorf("median = %v, want approx 50", med)
	}
	if h.Quantile(0) != 0 {
		t.Errorf("Quantile(0) = %v, want range min", h.Quantile(0))
	}
	if h.Quantile(1) != 100 {
		t.Errorf("Quantile(1) = %v, want range max", h.Quantile(1))
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		h := NewHistogram(0, 1, 20)
		x := float64(seed%997) / 997
		for i := 0; i < 50; i++ {
			x = math.Mod(x*1103515245+12345, 1)
			if x < 0 {
				x = -x
			}
			h.Add(x)
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			v := h.Quantile(q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMeanAbsoluteError(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 3, 5}
	if got := MeanAbsoluteError(a, b); !almostEqual(got, 1.0, 1e-12) {
		t.Errorf("MAE = %v, want 1", got)
	}
	if !math.IsNaN(MeanAbsoluteError(a, []float64{1})) {
		t.Error("length mismatch should return NaN")
	}
	if !math.IsNaN(MeanAbsoluteError(nil, nil)) {
		t.Error("empty input should return NaN")
	}
}

func TestMaxRelativeError(t *testing.T) {
	a := []float64{1.1, 2.0}
	b := []float64{1.0, 2.0}
	got := MaxRelativeError(a, b, 1e-9)
	if !almostEqual(got, 0.1, 1e-9) {
		t.Errorf("max rel err = %v, want 0.1", got)
	}
	// Near-zero reference uses eps floor.
	got = MaxRelativeError([]float64{0.01}, []float64{0}, 0.1)
	if !almostEqual(got, 0.1, 1e-9) {
		t.Errorf("eps-floored rel err = %v, want 0.1", got)
	}
}
