package stats

import (
	"fmt"
	"math"
)

// BatchMeans implements the batch-means method for steady-state simulation
// output analysis with a fixed batch size: consecutive observations are
// grouped into batches, the batch averages are treated as (approximately)
// independent samples, and a Student-t confidence interval is computed over
// them. The paper's simulator reports 95% confidence intervals computed this
// way.
type BatchMeans struct {
	batchSize int
	current   Welford
	batches   []float64
}

// NewBatchMeans returns an estimator that groups observations into batches of
// the given size. A batch size below 1 is treated as 1.
func NewBatchMeans(batchSize int) *BatchMeans {
	if batchSize < 1 {
		batchSize = 1
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add records one observation.
func (b *BatchMeans) Add(x float64) {
	b.current.Add(x)
	if b.current.Count() >= int64(b.batchSize) {
		b.batches = append(b.batches, b.current.Mean())
		b.current.Reset()
	}
}

// AddBatchMean records an externally computed batch mean directly. This is
// used when the simulator partitions its run into fixed-length time batches
// and computes time-weighted averages per batch.
func (b *BatchMeans) AddBatchMean(mean float64) {
	b.batches = append(b.batches, mean)
}

// NumBatches returns the number of completed batches.
func (b *BatchMeans) NumBatches() int { return len(b.batches) }

// Mean returns the grand mean over all completed batches.
func (b *BatchMeans) Mean() float64 {
	if len(b.batches) == 0 {
		return 0
	}
	var sum float64
	for _, v := range b.batches {
		sum += v
	}
	return sum / float64(len(b.batches))
}

// Interval is a symmetric confidence interval around a point estimate.
type Interval struct {
	Mean      float64
	HalfWidth float64
	Level     float64
	Batches   int
}

// Lower returns the lower bound of the interval.
func (iv Interval) Lower() float64 { return iv.Mean - iv.HalfWidth }

// Upper returns the upper bound of the interval.
func (iv Interval) Upper() float64 { return iv.Mean + iv.HalfWidth }

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool {
	return x >= iv.Lower() && x <= iv.Upper()
}

// String formats the interval as "mean ± halfwidth".
func (iv Interval) String() string {
	return fmt.Sprintf("%.6g ± %.3g", iv.Mean, iv.HalfWidth)
}

// ConfidenceInterval returns the confidence interval over the completed batch
// means at the given confidence level (e.g. 0.95). With fewer than two
// batches the half-width is reported as +Inf.
func (b *BatchMeans) ConfidenceInterval(level float64) Interval {
	n := len(b.batches)
	iv := Interval{Mean: b.Mean(), Level: level, Batches: n}
	if n < 2 {
		iv.HalfWidth = math.Inf(1)
		return iv
	}
	var w Welford
	for _, v := range b.batches {
		w.Add(v)
	}
	t := TQuantile(n-1, 1-level)
	iv.HalfWidth = t * w.StdDev() / math.Sqrt(float64(n))
	return iv
}
