package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestTQuantileKnownValues(t *testing.T) {
	// Reference values from standard t tables (two-sided, alpha = 0.05).
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706},
		{2, 4.303},
		{5, 2.571},
		{10, 2.228},
		{30, 2.042},
		{100, 1.984},
	}
	for _, c := range cases {
		got := TQuantile(c.df, 0.05)
		if math.Abs(got-c.want) > 0.005 {
			t.Errorf("TQuantile(%d, 0.05) = %v, want %v", c.df, got, c.want)
		}
	}
}

func TestTQuantileLargeDFApproachesNormal(t *testing.T) {
	got := TQuantile(10000, 0.05)
	if math.Abs(got-1.96) > 0.01 {
		t.Errorf("TQuantile(10000, 0.05) = %v, want approx 1.96", got)
	}
}

func TestTQuantileEdgeCases(t *testing.T) {
	if !math.IsNaN(TQuantile(0, 0.05)) {
		t.Error("df=0 should return NaN")
	}
	if !math.IsInf(TQuantile(5, 0), 1) {
		t.Error("alpha=0 should return +Inf")
	}
	if TQuantile(5, 1) != 0 {
		t.Error("alpha=1 should return 0")
	}
}

func TestTCDFSymmetry(t *testing.T) {
	for _, x := range []float64{0.5, 1, 2, 5} {
		for _, df := range []int{1, 3, 10, 50} {
			lo := tCDF(-x, df)
			hi := tCDF(x, df)
			if math.Abs(lo+hi-1) > 1e-9 {
				t.Errorf("tCDF symmetry broken at x=%v df=%d: %v + %v != 1", x, df, lo, hi)
			}
		}
	}
	if math.Abs(tCDF(0, 7)-0.5) > 1e-12 {
		t.Error("tCDF(0) should be 0.5")
	}
}

func TestBatchMeansMean(t *testing.T) {
	bm := NewBatchMeans(10)
	for i := 0; i < 100; i++ {
		bm.Add(float64(i % 10))
	}
	if bm.NumBatches() != 10 {
		t.Fatalf("batches = %d, want 10", bm.NumBatches())
	}
	if !almostEqual(bm.Mean(), 4.5, 1e-12) {
		t.Errorf("mean = %v, want 4.5", bm.Mean())
	}
}

func TestBatchMeansConfidenceIntervalCoversTrueMean(t *testing.T) {
	// For i.i.d. observations the 95% CI should contain the true mean in
	// roughly 95% of replications; check a comfortable majority to keep the
	// test deterministic and fast.
	rng := rand.New(rand.NewSource(42))
	const (
		replications = 200
		trueMean     = 3.0
	)
	covered := 0
	for r := 0; r < replications; r++ {
		bm := NewBatchMeans(50)
		for i := 0; i < 2000; i++ {
			bm.Add(rng.ExpFloat64() * trueMean)
		}
		iv := bm.ConfidenceInterval(0.95)
		if iv.Contains(trueMean) {
			covered++
		}
	}
	if covered < int(0.85*replications) {
		t.Errorf("95%% CI covered true mean only %d/%d times", covered, replications)
	}
}

func TestBatchMeansFewBatches(t *testing.T) {
	bm := NewBatchMeans(5)
	for i := 0; i < 4; i++ {
		bm.Add(1)
	}
	iv := bm.ConfidenceInterval(0.95)
	if !math.IsInf(iv.HalfWidth, 1) {
		t.Errorf("expected infinite half-width with < 2 batches, got %v", iv.HalfWidth)
	}
}

func TestBatchMeansAddBatchMean(t *testing.T) {
	bm := NewBatchMeans(1)
	bm.AddBatchMean(1)
	bm.AddBatchMean(3)
	bm.AddBatchMean(5)
	if bm.NumBatches() != 3 {
		t.Fatalf("batches = %d, want 3", bm.NumBatches())
	}
	if !almostEqual(bm.Mean(), 3, 1e-12) {
		t.Errorf("mean = %v, want 3", bm.Mean())
	}
	iv := bm.ConfidenceInterval(0.95)
	if iv.HalfWidth <= 0 || math.IsInf(iv.HalfWidth, 1) {
		t.Errorf("half-width = %v, want finite positive", iv.HalfWidth)
	}
}

func TestIntervalBoundsAndString(t *testing.T) {
	iv := Interval{Mean: 10, HalfWidth: 2, Level: 0.95, Batches: 5}
	if iv.Lower() != 8 || iv.Upper() != 12 {
		t.Errorf("bounds = [%v, %v], want [8, 12]", iv.Lower(), iv.Upper())
	}
	if !iv.Contains(9) || iv.Contains(13) {
		t.Error("Contains misbehaves")
	}
	if iv.String() == "" {
		t.Error("String should not be empty")
	}
}

func TestBatchMeansInvalidBatchSize(t *testing.T) {
	bm := NewBatchMeans(0)
	bm.Add(2)
	if bm.NumBatches() != 1 {
		t.Errorf("batch size clamped to 1: batches = %d, want 1", bm.NumBatches())
	}
}
