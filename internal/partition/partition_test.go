package partition

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func mustTopo(t *testing.T, cells int) *cluster.Topology {
	t.Helper()
	topo, err := cluster.Preset(cells)
	if err != nil {
		t.Fatalf("Preset(%d): %v", cells, err)
	}
	return topo
}

// checkValid asserts the assignment is a proper partition of numCells cells
// into k non-empty groups.
func checkValid(t *testing.T, a *Assignment, numCells, k int) {
	t.Helper()
	if a.NumCells() != numCells {
		t.Fatalf("NumCells = %d, want %d", a.NumCells(), numCells)
	}
	if a.NumGroups() != k {
		t.Fatalf("NumGroups = %d, want %d (assignment %v)", a.NumGroups(), k, a)
	}
	seen := make([]bool, numCells)
	for g := 0; g < a.NumGroups(); g++ {
		members := a.Group(g)
		if len(members) == 0 {
			t.Fatalf("group %d empty in %v", g, a)
		}
		for _, c := range members {
			if seen[c] {
				t.Fatalf("cell %d in two groups: %v", c, a)
			}
			seen[c] = true
			if a.Of(c) != g {
				t.Fatalf("Of(%d) = %d, want %d", c, a.Of(c), g)
			}
		}
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("cell %d unassigned: %v", c, a)
		}
	}
}

func TestFromGroups(t *testing.T) {
	a, err := FromGroups(7, [][]int{{6, 0, 1}, {2, 3}, {4, 5}})
	if err != nil {
		t.Fatalf("FromGroups: %v", err)
	}
	checkValid(t, a, 7, 3)
	if got := a.Group(0); got[0] != 0 || got[1] != 1 || got[2] != 6 {
		t.Fatalf("group 0 not sorted: %v", got)
	}
	if a.Of(-1) != -1 || a.Of(7) != -1 {
		t.Fatal("Of out of range should return -1")
	}

	bad := []struct {
		name   string
		cells  int
		groups [][]int
	}{
		{"no groups", 7, nil},
		{"empty group", 7, [][]int{{0, 1, 2, 3, 4, 5, 6}, {}}},
		{"out of range", 7, [][]int{{0, 1, 2, 3, 4, 5, 7}}},
		{"negative cell", 7, [][]int{{-1, 0, 1, 2, 3, 4, 5, 6}}},
		{"duplicate", 7, [][]int{{0, 1, 2}, {2, 3, 4, 5, 6}}},
		{"uncovered", 7, [][]int{{0, 1, 2}, {4, 5, 6}}},
		{"zero cells", 0, [][]int{{0}}},
	}
	for _, tc := range bad {
		if _, err := FromGroups(tc.cells, tc.groups); !errors.Is(err, ErrInvalidPartition) {
			t.Errorf("%s: err = %v, want ErrInvalidPartition", tc.name, err)
		}
	}
}

func TestIndexRange(t *testing.T) {
	for _, tc := range []struct{ cells, k int }{
		{7, 1}, {7, 3}, {7, 7}, {19, 4}, {37, 8}, {61, 13},
	} {
		a, err := IndexRange(tc.cells, tc.k)
		if err != nil {
			t.Fatalf("IndexRange(%d,%d): %v", tc.cells, tc.k, err)
		}
		checkValid(t, a, tc.cells, tc.k)
		// Contiguity and the historic i*k/n block formula.
		for c := 0; c < tc.cells; c++ {
			if want := c * tc.k / tc.cells; a.Of(c) != want {
				t.Fatalf("IndexRange(%d,%d): Of(%d) = %d, want %d", tc.cells, tc.k, c, a.Of(c), want)
			}
		}
	}
	// Clamping.
	a, err := IndexRange(5, 99)
	if err != nil {
		t.Fatalf("IndexRange clamp: %v", err)
	}
	checkValid(t, a, 5, 5)
	a, err = IndexRange(5, 0)
	if err != nil {
		t.Fatalf("IndexRange clamp: %v", err)
	}
	checkValid(t, a, 5, 1)
	if _, err := IndexRange(0, 2); !errors.Is(err, ErrInvalidPartition) {
		t.Fatalf("IndexRange(0,2) err = %v", err)
	}
}

func TestLocalityValidAndDeterministic(t *testing.T) {
	for _, cells := range []int{7, 19, 37, 61} {
		topo := mustTopo(t, cells)
		for _, k := range []int{1, 2, 4, 7, cells} {
			a, err := Locality(topo, nil, k)
			if err != nil {
				t.Fatalf("Locality(%d,%d): %v", cells, k, err)
			}
			checkValid(t, a, cells, k)
			b, err := Locality(topo, nil, k)
			if err != nil {
				t.Fatalf("Locality(%d,%d) rerun: %v", cells, k, err)
			}
			if a.String() != b.String() {
				t.Fatalf("Locality(%d,%d) not deterministic:\n%v\n%v", cells, k, a, b)
			}
		}
	}
}

func TestGrowPatchesAreContiguous(t *testing.T) {
	// On connected hex lattices the BFS growth only ever claims frontier
	// cells, so every patch is a connected subgraph. (Locality itself may
	// return the refined index-range candidate instead when that cuts less.)
	for _, cells := range []int{19, 37, 61} {
		topo := mustTopo(t, cells)
		w := normalizeWeights(nil, cells)
		for _, k := range []int{2, 4, 6} {
			of := growPatches(topo, w, k)
			a, err := FromGroups(cells, groupsOf(of, k))
			if err != nil {
				t.Fatalf("growPatches(%d,%d) invalid: %v", cells, k, err)
			}
			for g := 0; g < a.NumGroups(); g++ {
				members := a.Group(g)
				inGroup := make(map[int]bool, len(members))
				for _, c := range members {
					inGroup[c] = true
				}
				// BFS inside the group from its first member.
				seen := map[int]bool{members[0]: true}
				queue := []int{members[0]}
				for len(queue) > 0 {
					c := queue[0]
					queue = queue[1:]
					for i, deg := 0, topo.Degree(c); i < deg; i++ {
						nb := topo.NeighborAt(c, i)
						if inGroup[nb] && !seen[nb] {
							seen[nb] = true
							queue = append(queue, nb)
						}
					}
				}
				if len(seen) != len(members) {
					t.Errorf("cells=%d k=%d: group %d disconnected (%d of %d reachable): %v",
						cells, k, g, len(seen), len(members), members)
				}
			}
		}
	}
}

// groupsOf converts a raw cell→group slice to group member lists.
func groupsOf(of []int, k int) [][]int {
	groups := make([][]int, k)
	for c, g := range of {
		groups[g] = append(groups[g], c)
	}
	return groups
}

func TestLocalityBeatsIndexRangeOnCut(t *testing.T) {
	// The whole point of locality-aware grouping: fewer traffic-weighted
	// cross-group edges than the index-range baseline. Locality is never
	// worse (it considers the refined baseline as a candidate) and strictly
	// better at the parallel-relevant group counts.
	for _, cells := range []int{19, 37, 61} {
		topo := mustTopo(t, cells)
		for _, k := range []int{2, 4, 6} {
			loc, err := Locality(topo, nil, k)
			if err != nil {
				t.Fatalf("Locality: %v", err)
			}
			base, err := IndexRange(cells, k)
			if err != nil {
				t.Fatalf("IndexRange: %v", err)
			}
			lc, bc := CutWeight(topo, nil, loc), CutWeight(topo, nil, base)
			if lc > bc {
				t.Errorf("cells=%d k=%d: locality cut %.4f above index-range cut %.4f",
					cells, k, lc, bc)
			}
			if k >= 4 && lc >= bc {
				t.Errorf("cells=%d k=%d: locality cut %.4f not strictly below index-range cut %.4f",
					cells, k, lc, bc)
			}
		}
	}
}

func TestLocalityBalancesHotspotLoad(t *testing.T) {
	// A steep hotspot at cell 0 of a 19-cell ring: index-range puts the
	// whole hot centre in group 0, locality should spread load better.
	topo := mustTopo(t, 19)
	weights := make([]float64, 19)
	for c := range weights {
		weights[c] = 1
	}
	weights[0] = 20
	k := 4
	loc, err := Locality(topo, weights, k)
	if err != nil {
		t.Fatalf("Locality: %v", err)
	}
	base, err := IndexRange(19, k)
	if err != nil {
		t.Fatalf("IndexRange: %v", err)
	}
	ls, bs := MaxShare(weights, loc), MaxShare(weights, base)
	if ls >= bs {
		t.Errorf("locality max share %.4f not below index-range %.4f", ls, bs)
	}
}

func TestCutWeightAndMaxShareEdges(t *testing.T) {
	topo := mustTopo(t, 7)
	one, err := IndexRange(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cw := CutWeight(topo, nil, one); cw != 0 {
		t.Errorf("1-group cut = %v, want 0", cw)
	}
	if ms := MaxShare(nil, one); ms != 1 {
		t.Errorf("1-group max share = %v, want 1", ms)
	}
	all, err := IndexRange(7, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Every edge cut; paper cluster has 4 outer cells of degree 4 but the
	// foreign fraction is 1 for every cell, so cut = sum of weights = 7.
	if cw := CutWeight(topo, nil, all); cw < 6.999 || cw > 7.001 {
		t.Errorf("n-group cut = %v, want 7", cw)
	}
}

func TestLocalityWeightFallbacks(t *testing.T) {
	topo := mustTopo(t, 19)
	for _, weights := range [][]float64{
		nil,
		make([]float64, 19),             // all zero
		{1, 2, 3},                       // wrong length
		append(make([]float64, 18), -1), // negative entry
	} {
		a, err := Locality(topo, weights, 4)
		if err != nil {
			t.Fatalf("Locality(%v): %v", weights, err)
		}
		checkValid(t, a, 19, 4)
	}
}

func TestParseSpec(t *testing.T) {
	good := []struct {
		in     string
		kind   string
		groups int
	}{
		{"locality", KindLocality, 0},
		{"locality:4", KindLocality, 4},
		{"index-range", KindIndexRange, 0},
		{"index-range:2", KindIndexRange, 2},
		{` {"kind":"locality","groups":3}`, KindLocality, 3},
		{`{"kind":"index-range"}`, KindIndexRange, 0},
	}
	for _, tc := range good {
		spec, err := ParseSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.in, err)
		}
		if spec.Kind != tc.kind || spec.Groups != tc.groups {
			t.Errorf("ParseSpec(%q) = %+v, want kind=%s groups=%d", tc.in, spec, tc.kind, tc.groups)
		}
	}

	expl, err := ParseSpec(`{"kind":"explicit","explicit":[[0,1,2],[3,4,5,6]]}`)
	if err != nil {
		t.Fatalf("ParseSpec explicit: %v", err)
	}
	if expl.Kind != KindExplicit || len(expl.Explicit) != 2 {
		t.Fatalf("explicit spec = %+v", expl)
	}

	bad := []string{
		"", "   ", "bogus", "locality:", "locality:0", "locality:-3",
		"locality:x", "index-range:2:3",
		`{"kind":"locality","typo":1}`,
		`{"kind":"explicit"}`,
		`{"kind":"explicit","explicit":[[0]],"groups":2}`,
		`{"kind":"locality"} trailing`,
		`{"kind":`,
	}
	for _, in := range bad {
		if _, err := ParseSpec(in); !errors.Is(err, ErrInvalidPartition) {
			t.Errorf("ParseSpec(%q) err = %v, want ErrInvalidPartition", in, err)
		}
	}

	// Unknown-kind error enumerates the supported kinds.
	_, err = ParseSpec("bogus")
	if err == nil || !strings.Contains(err.Error(), strings.Join(Kinds(), ", ")) {
		t.Errorf("unknown-kind error %q should list kinds %v", err, Kinds())
	}
}

func TestSpecBuild(t *testing.T) {
	topo := mustTopo(t, 19)
	for _, tc := range []struct {
		spec    Spec
		workers int
		wantK   int
	}{
		{Spec{Kind: KindLocality}, 4, 4},
		{Spec{Kind: KindLocality, Groups: 3}, 8, 3},
		{Spec{Kind: KindIndexRange}, 1, 1},
		{Spec{Kind: KindIndexRange, Groups: 64}, 4, 19}, // clamped
		{Spec{Kind: KindLocality}, 0, 1},                // no workers -> 1 group
	} {
		a, err := tc.spec.Build(topo, nil, tc.workers)
		if err != nil {
			t.Fatalf("Build(%+v, workers=%d): %v", tc.spec, tc.workers, err)
		}
		checkValid(t, a, 19, tc.wantK)
	}

	expl := Spec{Kind: KindExplicit, Explicit: [][]int{{0, 1, 2}, {3, 4, 5, 6}}}
	a, err := expl.Build(mustTopo(t, 7), nil, 4)
	if err != nil {
		t.Fatalf("Build explicit: %v", err)
	}
	checkValid(t, a, 7, 2)
	// Explicit groups that do not cover the topology fail in Build.
	if _, err := expl.Build(topo, nil, 4); !errors.Is(err, ErrInvalidPartition) {
		t.Errorf("explicit 7-cell grouping on 19 cells: err = %v", err)
	}

	if _, err := (&Spec{Kind: "bogus"}).Build(topo, nil, 1); !errors.Is(err, ErrInvalidPartition) {
		t.Errorf("bogus kind Build err = %v", err)
	}
	if _, err := (&Spec{Kind: KindLocality}).Build(nil, nil, 1); !errors.Is(err, ErrInvalidPartition) {
		t.Errorf("nil topology Build err = %v", err)
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	for _, spec := range []*Spec{
		{Kind: KindLocality},
		{Kind: KindLocality, Groups: 4},
		{Kind: KindIndexRange, Groups: 2},
		{Kind: KindExplicit, Explicit: [][]int{{0, 1}, {2, 3, 4, 5, 6}}},
	} {
		got, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("round trip %q: %v", spec.String(), err)
		}
		if got.String() != spec.String() {
			t.Errorf("round trip %q -> %q", spec.String(), got.String())
		}
	}
}

func TestCityGridLocality(t *testing.T) {
	topo, err := cluster.NewCityGrid(8, 6)
	if err != nil {
		t.Fatalf("NewCityGrid: %v", err)
	}
	for _, k := range []int{1, 3, 6} {
		a, err := Locality(topo, nil, k)
		if err != nil {
			t.Fatalf("Locality(city,%d): %v", k, err)
		}
		checkValid(t, a, 48, k)
	}
	loc, _ := Locality(topo, nil, 4)
	base, _ := IndexRange(48, 4)
	if lc, bc := CutWeight(topo, nil, loc), CutWeight(topo, nil, base); lc > bc {
		t.Errorf("city grid: locality cut %.4f above index-range cut %.4f", lc, bc)
	}
}

func ExampleParseSpec() {
	spec, _ := ParseSpec("locality:4")
	fmt.Println(spec.Kind, spec.Groups)
	// Output: locality 4
}
