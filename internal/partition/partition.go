// Package partition assigns the cells of a cluster topology to shard groups
// for the group-calendar parallel engine (internal/sim on internal/shard):
// every group owns one event calendar, cells of one group interact directly on
// it, and only cross-group handovers travel as window-barrier messages. The
// package provides the contiguous index-range baseline, a locality-aware
// partitioner (BFS-grown hexagonal patches balanced by per-cell load, plus a
// greedy boundary-refinement pass that minimises the expected cross-group
// handover traffic), and a small spec language (ParseSpec) the CLIs and
// sim.Config.Partition plug into.
//
// # Determinism contract
//
// A partitioning never affects simulation results — only which calendar a
// cell's events execute on and how much traffic crosses the window barrier.
// The engines are bit-identical for every valid Assignment and worker count
// (pinned by the randomized partition-equivalence suite in internal/sim), so
// partition quality is purely a performance concern: a good assignment
// balances per-group load and keeps chatty neighbours together. All
// partitioners in this package are deterministic pure functions of their
// inputs; no randomness is consumed.
package partition

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cluster"
)

// ErrInvalidPartition is returned for malformed assignments or specs.
var ErrInvalidPartition = errors.New("partition: invalid partition")

// Assignment is a validated cell-to-group mapping: every cell of the topology
// belongs to exactly one group and every group is non-empty. Group and cell
// order is canonical (groups keep their construction order, member lists are
// sorted ascending), so an Assignment renders and compares deterministically.
type Assignment struct {
	groups [][]int
	of     []int
}

// FromGroups validates an explicit grouping over numCells cells and returns
// it as an Assignment. Member lists are copied and sorted; empty groups,
// out-of-range cells, duplicates, and uncovered cells are rejected.
func FromGroups(numCells int, groups [][]int) (*Assignment, error) {
	if numCells < 1 {
		return nil, fmt.Errorf("%w: %d cells", ErrInvalidPartition, numCells)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("%w: no groups", ErrInvalidPartition)
	}
	of := make([]int, numCells)
	for i := range of {
		of[i] = -1
	}
	out := make([][]int, len(groups))
	for g, members := range groups {
		if len(members) == 0 {
			return nil, fmt.Errorf("%w: group %d is empty", ErrInvalidPartition, g)
		}
		out[g] = append([]int(nil), members...)
		sort.Ints(out[g])
		for _, c := range out[g] {
			if c < 0 || c >= numCells {
				return nil, fmt.Errorf("%w: group %d lists out-of-range cell %d", ErrInvalidPartition, g, c)
			}
			if of[c] != -1 {
				return nil, fmt.Errorf("%w: cell %d assigned twice", ErrInvalidPartition, c)
			}
			of[c] = g
		}
	}
	for c, g := range of {
		if g == -1 {
			return nil, fmt.Errorf("%w: cell %d not assigned to any group", ErrInvalidPartition, c)
		}
	}
	return &Assignment{groups: out, of: of}, nil
}

// NumCells returns the number of cells the assignment covers.
func (a *Assignment) NumCells() int { return len(a.of) }

// NumGroups returns the number of groups.
func (a *Assignment) NumGroups() int { return len(a.groups) }

// Of returns the group index of a cell. It returns -1 for out-of-range cells.
func (a *Assignment) Of(cell int) int {
	if cell < 0 || cell >= len(a.of) {
		return -1
	}
	return a.of[cell]
}

// Group returns a copy of the sorted member list of one group, or nil out of
// range.
func (a *Assignment) Group(g int) []int {
	if g < 0 || g >= len(a.groups) {
		return nil
	}
	return append([]int(nil), a.groups[g]...)
}

// Groups returns a deep copy of all group member lists.
func (a *Assignment) Groups() [][]int {
	out := make([][]int, len(a.groups))
	for g := range a.groups {
		out[g] = append([]int(nil), a.groups[g]...)
	}
	return out
}

// String renders the assignment compactly for logs and test failures.
func (a *Assignment) String() string { return fmt.Sprintf("%v", a.groups) }

// clampGroups bounds a requested group count to [1, numCells].
func clampGroups(k, numCells int) int {
	if k < 1 {
		k = 1
	}
	if k > numCells {
		k = numCells
	}
	return k
}

// IndexRange returns the contiguous index-range baseline over numCells cells:
// k near-equal blocks of consecutive cell indices (cell i joins group
// i*k/numCells — the historic split of the per-cell shard engine). On hex-ring
// layouts, whose indices advance ring by ring, index blocks mix cells from
// different lattice regions, so the baseline is deliberately
// locality-oblivious: it is the control the locality-aware partitioner is
// measured against. A requested k outside [1, numCells] is clamped.
func IndexRange(numCells, k int) (*Assignment, error) {
	if numCells < 1 {
		return nil, fmt.Errorf("%w: %d cells", ErrInvalidPartition, numCells)
	}
	k = clampGroups(k, numCells)
	groups := make([][]int, k)
	of := make([]int, numCells)
	for i := 0; i < numCells; i++ {
		g := i * k / numCells
		groups[g] = append(groups[g], i)
		of[i] = g
	}
	return &Assignment{groups: groups, of: of}, nil
}

// normalizeWeights returns a positive per-cell load vector of length numCells:
// a copy of weights when it is usable (correct length, finite, non-negative,
// positive total), uniform weight 1 otherwise. Zero-weight cells still carry
// a small epsilon of the mean so silent cells spread across groups instead of
// piling onto one.
func normalizeWeights(weights []float64, numCells int) []float64 {
	out := make([]float64, numCells)
	var total float64
	usable := len(weights) == numCells
	if usable {
		for _, w := range weights {
			if w < 0 || w != w || w > 1e300 {
				usable = false
				break
			}
			total += w
		}
	}
	if !usable || total <= 0 {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	eps := total / float64(numCells) * 1e-6
	for i, w := range weights {
		out[i] = w + eps
	}
	return out
}

// Locality returns a locality-aware partitioning of the topology into k
// groups: contiguous hexagonal patches grown by breadth-first search from k
// seeds spread across the lattice (farthest-point seeding), balanced by the
// given per-cell load weights (the lightest group claims the next frontier
// cell), then improved by a greedy boundary-refinement pass that moves
// boundary cells between adjacent groups whenever the move strictly lowers
// the expected cross-group handover traffic (CutWeight) without unbalancing
// the groups. The refined index-range baseline is evaluated as a second
// candidate and the lower-cut layout wins (ties go to the BFS patches), so a
// locality assignment never cuts more traffic-weighted edges than the
// contiguous index-range split of the same topology. weights is the expected
// per-cell event load — typically the scenario's compiled fresh-arrival
// rates — or nil for uniform load. The result is a deterministic pure
// function of (topology, weights, k).
func Locality(topo *cluster.Topology, weights []float64, k int) (*Assignment, error) {
	if topo == nil {
		return nil, fmt.Errorf("%w: nil topology", ErrInvalidPartition)
	}
	n := topo.NumCells()
	if n < 1 {
		return nil, fmt.Errorf("%w: empty topology", ErrInvalidPartition)
	}
	k = clampGroups(k, n)
	w := normalizeWeights(weights, n)

	of := growPatches(topo, w, k)
	refineBoundaries(topo, w, of, k)

	// Candidate two: the contiguous index-range split, refined the same way.
	// Refinement only ever lowers the cut, so taking the cheaper candidate
	// keeps Locality from losing to the IndexRange baseline on cut — but
	// only when the candidate does not blow the balance budget the BFS
	// growth achieved (a lower cut is no good if one group hoards the load).
	alt := make([]int, n)
	for i := range alt {
		alt[i] = i * k / n
	}
	refineBoundaries(topo, w, alt, k)
	balanceBudget := (1 + balanceSlack) / float64(k)
	if ms := maxShareOf(w, of); ms > balanceBudget {
		balanceBudget = ms
	}
	if cutOf(topo, w, alt) < cutOf(topo, w, of) && maxShareOf(w, alt) <= balanceBudget {
		of = alt
	}

	groups := make([][]int, k)
	for c, g := range of {
		groups[g] = append(groups[g], c)
	}
	return &Assignment{groups: groups, of: of}, nil
}

// growPatches seeds k groups by farthest-point sampling over hop distance
// (seed 0 is the heaviest cell, ties to the lowest index) and grows them into
// contiguous patches: at every step the group with the smallest claimed load
// takes the lowest-index unclaimed cell adjacent to it, or — if its frontier
// is exhausted — the lowest-index unclaimed cell anywhere, so the growth
// terminates on any topology.
func growPatches(topo *cluster.Topology, w []float64, k int) []int {
	n := topo.NumCells()
	of := make([]int, n)
	for i := range of {
		of[i] = -1
	}

	// Farthest-point seeds.
	seeds := make([]int, 0, k)
	best := 0
	for c := 1; c < n; c++ {
		if w[c] > w[best] {
			best = c
		}
	}
	seeds = append(seeds, best)
	minDist := topo.Distances(seeds[0])
	for len(seeds) < k {
		far := -1
		for c := 0; c < n; c++ {
			if of[c] == -1 && c != seeds[0] && !contains(seeds, c) {
				if far == -1 || minDist[c] > minDist[far] {
					far = c
				}
			}
		}
		if far == -1 {
			break
		}
		seeds = append(seeds, far)
		for c, d := range topo.Distances(far) {
			if d >= 0 && (minDist[c] < 0 || d < minDist[c]) {
				minDist[c] = d
			}
		}
	}

	load := make([]float64, k)
	assigned := 0
	for g, s := range seeds {
		of[s] = g
		load[g] += w[s]
		assigned++
	}

	for assigned < len(of) {
		// The lightest group with a live frontier claims next (ties to the
		// lowest group id), so patches stay contiguous on connected graphs.
		g, claim := -1, -1
		for h := 0; h < len(load); h++ {
			if g != -1 && load[h] >= load[g] {
				continue
			}
			if c := frontierCell(topo, of, h); c != -1 {
				g, claim = h, c
			}
		}
		if g == -1 {
			// Every frontier is exhausted but cells remain: the topology is
			// disconnected. The lightest group absorbs the lowest unclaimed
			// cell so the growth still terminates.
			g = 0
			for h := 1; h < len(load); h++ {
				if load[h] < load[g] {
					g = h
				}
			}
			for c, og := range of {
				if og == -1 {
					claim = c
					break
				}
			}
		}
		of[claim] = g
		load[g] += w[claim]
		assigned++
	}
	return of
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// frontierCell returns the lowest-index unassigned cell adjacent to group g,
// or -1 when none exists.
func frontierCell(topo *cluster.Topology, of []int, g int) int {
	best := -1
	for c, og := range of {
		if og != g {
			continue
		}
		for i, deg := 0, topo.Degree(c); i < deg; i++ {
			nb := topo.NeighborAt(c, i)
			if of[nb] == -1 && (best == -1 || nb < best) {
				best = nb
			}
		}
	}
	return best
}

// refinePasses bounds the greedy boundary-refinement loop; each pass sweeps
// every cell once, and the loop stops early when a sweep makes no move.
const refinePasses = 8

// balanceSlack is the headroom the refinement allows over the ideal per-group
// load: a move may not push the destination group beyond (1+slack) * ideal
// unless it still leaves the destination lighter than the source was.
const balanceSlack = 0.10

// refineBoundaries greedily moves boundary cells between adjacent groups when
// the move strictly reduces the cut weight and respects the balance
// constraint, never emptying a group. The sweep order (ascending cell index,
// candidate groups in ascending id) is deterministic.
func refineBoundaries(topo *cluster.Topology, w []float64, of []int, k int) {
	if k < 2 {
		return
	}
	var total float64
	load := make([]float64, k)
	size := make([]int, k)
	for c, g := range of {
		load[g] += w[c]
		size[g]++
		total += w[c]
	}
	ideal := total / float64(k)

	// cutDelta is the change in cut weight if cell c moves from src to dst:
	// c's own outbound cut becomes w[c] * fracForeign', and every neighbour
	// nb's contribution w[nb]/deg(nb) flips for edges touching c.
	cutDelta := func(c, dst int) float64 {
		src := of[c]
		var d float64
		deg := topo.Degree(c)
		for i := 0; i < deg; i++ {
			nb := topo.NeighborAt(c, i)
			// c's outbound edge to nb.
			before, after := 0.0, 0.0
			if of[nb] != src {
				before = w[c] / float64(deg)
			}
			if of[nb] != dst {
				after = w[c] / float64(deg)
			}
			d += after - before
			// nb's outbound edge to c.
			nbShare := w[nb] / float64(topo.Degree(nb))
			if of[nb] != src {
				d -= nbShare // was cut
			}
			if of[nb] != dst {
				d += nbShare // is cut
			}
		}
		return d
	}

	for pass := 0; pass < refinePasses; pass++ {
		moved := false
		for c := 0; c < len(of); c++ {
			src := of[c]
			if size[src] <= 1 {
				continue
			}
			bestDst, bestDelta := -1, 0.0
			deg := topo.Degree(c)
			for i := 0; i < deg; i++ {
				dst := of[topo.NeighborAt(c, i)]
				if dst == src || (bestDst != -1 && dst == bestDst) {
					continue
				}
				newDst := load[dst] + w[c]
				if newDst > ideal*(1+balanceSlack) && newDst > load[src] {
					continue // would unbalance
				}
				if d := cutDelta(c, dst); d < bestDelta-1e-15 {
					bestDst, bestDelta = dst, d
				}
			}
			if bestDst != -1 {
				load[src] -= w[c]
				size[src]--
				load[bestDst] += w[c]
				size[bestDst]++
				of[c] = bestDst
				moved = true
			}
		}
		if !moved {
			break
		}
	}
}

// CutWeight is the expected cross-group handover traffic of an assignment:
// the sum over cells of the cell's load weight times the fraction of its
// neighbours living in other groups — the handover target is uniform over the
// neighbours, so this is proportional to the rate of barrier messages the
// grouping incurs. weights follows the Locality convention (nil = uniform).
func CutWeight(topo *cluster.Topology, weights []float64, a *Assignment) float64 {
	return cutOf(topo, normalizeWeights(weights, topo.NumCells()), a.of)
}

// cutOf is CutWeight on a raw cell→group slice with pre-normalized weights.
func cutOf(topo *cluster.Topology, w []float64, of []int) float64 {
	var cut float64
	for c := 0; c < topo.NumCells(); c++ {
		deg := topo.Degree(c)
		if deg == 0 {
			continue
		}
		foreign := 0
		for i := 0; i < deg; i++ {
			if of[topo.NeighborAt(c, i)] != of[c] {
				foreign++
			}
		}
		cut += w[c] * float64(foreign) / float64(deg)
	}
	return cut
}

// MaxShare is the load share of the heaviest group: the maximum over groups
// of the group's summed weight divided by the total weight. 1/NumGroups is a
// perfect balance; 1 means one group carries everything. weights follows the
// Locality convention (nil = uniform).
func MaxShare(weights []float64, a *Assignment) float64 {
	return maxShareOf(normalizeWeights(weights, a.NumCells()), a.of)
}

// maxShareOf is MaxShare on a raw cell→group slice with pre-normalized
// weights.
func maxShareOf(w []float64, of []int) float64 {
	numGroups := 0
	for _, g := range of {
		if g+1 > numGroups {
			numGroups = g + 1
		}
	}
	load := make([]float64, numGroups)
	var total float64
	for c, g := range of {
		load[g] += w[c]
		total += w[c]
	}
	var max float64
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	if total <= 0 {
		return 0
	}
	return max / total
}
