package partition

import (
	"testing"

	"repro/internal/cluster"
)

// FuzzParsePartitionSpec checks the spec parser never panics and that every
// spec it accepts validates and builds a proper Assignment on a small
// topology. Run continuously with:
//
//	go test -run '^$' -fuzz FuzzParsePartitionSpec ./internal/partition -fuzztime 30s
func FuzzParsePartitionSpec(f *testing.F) {
	seeds := []string{
		"locality", "locality:4", "index-range", "index-range:2",
		"locality:1", "index-range:19",
		`{"kind":"locality","groups":3}`,
		`{"kind":"index-range"}`,
		`{"kind":"explicit","explicit":[[0,1,2],[3,4,5,6]]}`,
		`{"kind":"explicit","explicit":[[0],[1],[2],[3],[4],[5],[6]]}`,
		"", "bogus", "locality:", "locality:0", "locality:-1",
		`{"kind":"locality","typo":1}`, `{"kind":`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	topo := cluster.NewHexCluster()
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			if spec != nil {
				t.Fatalf("ParseSpec(%q) returned spec and error %v", s, err)
			}
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseSpec(%q) accepted spec failing Validate: %v", s, err)
		}
		a, err := spec.Build(topo, nil, 4)
		if err != nil {
			// Explicit groupings may reference cells beyond the 7-cell
			// topology; that is a Build-time error, not a parser bug.
			return
		}
		if a.NumCells() != topo.NumCells() {
			t.Fatalf("ParseSpec(%q): built assignment covers %d cells, want %d", s, a.NumCells(), topo.NumCells())
		}
		seen := make([]bool, a.NumCells())
		for g := 0; g < a.NumGroups(); g++ {
			for _, c := range a.Group(g) {
				if c < 0 || c >= len(seen) || seen[c] {
					t.Fatalf("ParseSpec(%q): invalid assignment %v", s, a)
				}
				seen[c] = true
			}
		}
		for c, ok := range seen {
			if !ok {
				t.Fatalf("ParseSpec(%q): cell %d unassigned in %v", s, c, a)
			}
		}
	})
}
