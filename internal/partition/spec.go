package partition

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cluster"
)

// Partitioner kinds accepted by Spec and ParseSpec.
const (
	KindIndexRange = "index-range"
	KindLocality   = "locality"
	KindExplicit   = "explicit"
)

// Kinds returns the supported partitioner kinds in canonical order.
func Kinds() []string { return []string{KindIndexRange, KindLocality, KindExplicit} }

// Spec selects and parameterises a partitioner. It is the JSON shape of
// sim.Config.Partition and of the CLIs' -partition flag. Groups <= 0 means
// "use the engine's worker count"; Explicit is only valid (and required) for
// kind "explicit".
type Spec struct {
	// Kind names the partitioner: "index-range", "locality", or "explicit".
	Kind string `json:"kind"`
	// Groups is the requested group count; 0 defers to the worker count.
	Groups int `json:"groups,omitempty"`
	// Explicit lists the member cells of every group (kind "explicit" only).
	Explicit [][]int `json:"explicit,omitempty"`
}

// Validate checks the spec's internal consistency. Explicit group contents
// are validated against the topology later, in Build.
func (s *Spec) Validate() error {
	switch s.Kind {
	case KindIndexRange, KindLocality:
		if len(s.Explicit) > 0 {
			return fmt.Errorf("%w: kind %q does not take explicit groups", ErrInvalidPartition, s.Kind)
		}
	case KindExplicit:
		if len(s.Explicit) == 0 {
			return fmt.Errorf("%w: kind %q requires explicit groups", ErrInvalidPartition, s.Kind)
		}
		if s.Groups != 0 && s.Groups != len(s.Explicit) {
			return fmt.Errorf("%w: groups=%d contradicts %d explicit groups", ErrInvalidPartition, s.Groups, len(s.Explicit))
		}
	default:
		return fmt.Errorf("%w: unknown kind %q (supported: %s)", ErrInvalidPartition, s.Kind, strings.Join(Kinds(), ", "))
	}
	if s.Groups < 0 {
		return fmt.Errorf("%w: negative group count %d", ErrInvalidPartition, s.Groups)
	}
	return nil
}

// Build resolves the spec against a topology into a concrete Assignment.
// weights is the expected per-cell load (nil = uniform; only the locality
// partitioner uses it) and workers is the engine's resolved worker count,
// used as the group count when the spec does not pin one. The group count is
// clamped to [1, NumCells].
func (s *Spec) Build(topo *cluster.Topology, weights []float64, workers int) (*Assignment, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if topo == nil {
		return nil, fmt.Errorf("%w: nil topology", ErrInvalidPartition)
	}
	k := s.Groups
	if k <= 0 {
		k = workers
	}
	k = clampGroups(k, topo.NumCells())
	switch s.Kind {
	case KindIndexRange:
		return IndexRange(topo.NumCells(), k)
	case KindLocality:
		return Locality(topo, weights, k)
	default: // KindExplicit, already validated
		return FromGroups(topo.NumCells(), s.Explicit)
	}
}

// String renders the spec in the compact form ParseSpec accepts, falling back
// to JSON for explicit groupings.
func (s *Spec) String() string {
	if s.Kind == KindExplicit {
		b, err := json.Marshal(s)
		if err != nil {
			return fmt.Sprintf("explicit:%v", s.Explicit)
		}
		return string(b)
	}
	if s.Groups > 0 {
		return fmt.Sprintf("%s:%d", s.Kind, s.Groups)
	}
	return s.Kind
}

// ParseSpec parses a partition spec from its flag/JSON syntax. The compact
// form is "kind" or "kind:groups" (e.g. "locality", "index-range:4"); a
// string starting with '{' is parsed as the JSON form of Spec with unknown
// fields rejected, e.g. {"kind":"explicit","explicit":[[0,1],[2,3,4,5,6]]}.
// The returned spec is Validated.
func ParseSpec(s string) (*Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("%w: empty spec", ErrInvalidPartition)
	}
	var spec Spec
	if s[0] == '{' {
		dec := json.NewDecoder(bytes.NewReader([]byte(s)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidPartition, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("%w: trailing data after JSON spec", ErrInvalidPartition)
		}
	} else {
		kind, groups, found := strings.Cut(s, ":")
		spec.Kind = kind
		if found {
			n, err := strconv.Atoi(groups)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("%w: bad group count %q in spec %q", ErrInvalidPartition, groups, s)
			}
			spec.Groups = n
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}
