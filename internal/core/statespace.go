package core

import (
	"fmt"
	"math"
)

// State is one state of the aggregated Markov model (Section 4.1).
type State struct {
	// GSMCalls is n, the number of active GSM voice calls (0..N_GSM).
	GSMCalls int
	// Packets is k, the number of data packets queued at the BSC (0..K).
	Packets int
	// Sessions is m, the number of active GPRS sessions (0..M).
	Sessions int
	// OffSessions is r, the number of GPRS sessions whose IPP source is in
	// the off state (0..m); the remaining m-r sessions are generating
	// packets.
	OffSessions int
}

// String renders the state as (n, k, m, r).
func (s State) String() string {
	return fmt.Sprintf("(n=%d, k=%d, m=%d, r=%d)", s.GSMCalls, s.Packets, s.Sessions, s.OffSessions)
}

// StateSpace maps between State tuples and dense integer indices. The layout
// iterates n (outermost), then k, then the triangular (m, r) block, so that
// states that differ only in the queue length or MMPP phase are close
// together, which benefits the locality of the Gauss–Seidel sweeps.
type StateSpace struct {
	gsmChannels int // N_GSM
	bufferSize  int // K
	maxSessions int // M
	triSize     int // (M+1)(M+2)/2
	numStates   int
}

// NewStateSpace builds the state space for N_GSM channels usable by GSM, a
// BSC buffer of K packets and at most M concurrent GPRS sessions.
func NewStateSpace(gsmChannels, bufferSize, maxSessions int) StateSpace {
	tri := (maxSessions + 1) * (maxSessions + 2) / 2
	return StateSpace{
		gsmChannels: gsmChannels,
		bufferSize:  bufferSize,
		maxSessions: maxSessions,
		triSize:     tri,
		numStates:   (gsmChannels + 1) * (bufferSize + 1) * tri,
	}
}

// NumStates returns the total number of states.
func (sp StateSpace) NumStates() int { return sp.numStates }

// GSMChannels returns N_GSM.
func (sp StateSpace) GSMChannels() int { return sp.gsmChannels }

// BufferSize returns K.
func (sp StateSpace) BufferSize() int { return sp.bufferSize }

// MaxSessions returns M.
func (sp StateSpace) MaxSessions() int { return sp.maxSessions }

// Contains reports whether the state lies inside the state space.
func (sp StateSpace) Contains(s State) bool {
	return s.GSMCalls >= 0 && s.GSMCalls <= sp.gsmChannels &&
		s.Packets >= 0 && s.Packets <= sp.bufferSize &&
		s.Sessions >= 0 && s.Sessions <= sp.maxSessions &&
		s.OffSessions >= 0 && s.OffSessions <= s.Sessions
}

// Index returns the dense index of a state. The caller must pass a state for
// which Contains is true; out-of-range states yield an undefined index.
func (sp StateSpace) Index(s State) int {
	tri := s.Sessions*(s.Sessions+1)/2 + s.OffSessions
	return (s.GSMCalls*(sp.bufferSize+1)+s.Packets)*sp.triSize + tri
}

// State returns the state tuple for a dense index.
func (sp StateSpace) State(index int) State {
	tri := index % sp.triSize
	rest := index / sp.triSize
	k := rest % (sp.bufferSize + 1)
	n := rest / (sp.bufferSize + 1)
	// Invert the triangular index: find the largest m with m(m+1)/2 <= tri.
	m := triangularRow(tri)
	r := tri - m*(m+1)/2
	return State{GSMCalls: n, Packets: k, Sessions: m, OffSessions: r}
}

// triangularRow returns the largest m such that m(m+1)/2 <= tri.
func triangularRow(tri int) int {
	// Solve m^2 + m - 2 tri = 0 and correct for floating-point rounding.
	m := int((math.Sqrt(8*float64(tri)+1) - 1) / 2)
	for (m+1)*(m+2)/2 <= tri {
		m++
	}
	for m > 0 && m*(m+1)/2 > tri {
		m--
	}
	return m
}
