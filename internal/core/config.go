// Package core implements the paper's primary contribution: the
// continuous-time Markov chain model of the radio interface of an integrated
// GSM/GPRS cell (Sections 3 and 4). A state (n, k, m, r) captures the number
// of active GSM voice calls, the number of data packets queued at the BSC,
// the number of active GPRS sessions, and the number of sessions whose IPP
// traffic source is currently in the off state (the aggregated MMPP of
// Section 4.1). The model yields the performance measures of Section 4.2:
// carried data traffic (CDT), packet loss probability (PLP), queueing delay
// (QD), throughput per user (ATU), carried voice traffic (CVT), the average
// number of GPRS sessions (AGS), and GSM/GPRS blocking probabilities.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/radio"
	"repro/internal/traffic"
)

// ErrInvalidConfig is returned when a model configuration is inconsistent.
var ErrInvalidConfig = errors.New("core: invalid configuration")

// Config specifies one cell of the integrated GSM/GPRS network together with
// its workload. The zero value is not usable; start from BaseConfig (Table 2
// of the paper) and adjust fields.
type Config struct {
	// Channels describes the physical channels of the cell and the number of
	// PDCHs permanently reserved for GPRS (N and N_GPRS of the paper).
	Channels radio.ChannelPlan

	// BufferSize is the capacity K of the BSC FIFO buffer in data packets.
	BufferSize int

	// MaxSessions is the admission limit M on concurrently active GPRS
	// sessions in the cell.
	MaxSessions int

	// Session holds the 3GPP traffic parameters of one GPRS packet-service
	// session (Table 3).
	Session traffic.SessionParams

	// TotalCallRate is the total arrival rate of new GSM calls plus new GPRS
	// session requests (calls per second); it is the x-axis of every figure
	// in the paper.
	TotalCallRate float64

	// GPRSFraction is the fraction of arriving calls that are GPRS session
	// requests (0.05 in the base setting; 0.02/0.05/0.10 in Section 5.3).
	GPRSFraction float64

	// GSMCallDurationSec is the mean GSM voice call duration 1/mu_GSM.
	GSMCallDurationSec float64

	// GSMDwellTimeSec is the mean GSM call dwell time 1/mu_h,GSM.
	GSMDwellTimeSec float64

	// GPRSDwellTimeSec is the mean GPRS session dwell time 1/mu_h,GPRS.
	GPRSDwellTimeSec float64

	// FlowControlThreshold is the TCP flow-control threshold eta: when the
	// BSC queue exceeds eta*K packets, the packet arrival rate is limited to
	// the current service rate (Section 3). The calibrated value is 0.7;
	// 1.0 disables flow control.
	FlowControlThreshold float64

	// HandoverTolerance is the convergence tolerance of the handover-flow
	// balancing fixed point; the zero value means 1e-12.
	HandoverTolerance float64

	// HandoverMaxIterations bounds the balancing iteration; the zero value
	// means 10000.
	HandoverMaxIterations int
}

// BaseConfig returns the base parameter setting of Table 2 combined with the
// session parameters and admission limit of the given traffic model
// (Table 3), at the given total call arrival rate.
func BaseConfig(model traffic.Model, totalCallRate float64) Config {
	spec := model.Spec()
	return Config{
		Channels: radio.ChannelPlan{
			TotalChannels: 20,
			ReservedPDCH:  1,
			Coding:        radio.CS2,
		},
		BufferSize:           100,
		MaxSessions:          spec.MaxSessions,
		Session:              spec.Session,
		TotalCallRate:        totalCallRate,
		GPRSFraction:         0.05,
		GSMCallDurationSec:   120,
		GSMDwellTimeSec:      60,
		GPRSDwellTimeSec:     120,
		FlowControlThreshold: 0.7,
	}
}

// Validate reports whether the configuration is well formed.
func (c Config) Validate() error {
	if err := c.Channels.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	if c.BufferSize < 1 {
		return fmt.Errorf("%w: buffer size %d", ErrInvalidConfig, c.BufferSize)
	}
	if c.MaxSessions < 1 {
		return fmt.Errorf("%w: max sessions %d", ErrInvalidConfig, c.MaxSessions)
	}
	if err := c.Session.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	if c.TotalCallRate < 0 || math.IsNaN(c.TotalCallRate) || math.IsInf(c.TotalCallRate, 0) {
		return fmt.Errorf("%w: total call rate %v", ErrInvalidConfig, c.TotalCallRate)
	}
	if c.GPRSFraction < 0 || c.GPRSFraction > 1 || math.IsNaN(c.GPRSFraction) {
		return fmt.Errorf("%w: GPRS fraction %v", ErrInvalidConfig, c.GPRSFraction)
	}
	for name, v := range map[string]float64{
		"GSM call duration": c.GSMCallDurationSec,
		"GSM dwell time":    c.GSMDwellTimeSec,
		"GPRS dwell time":   c.GPRSDwellTimeSec,
	} {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: %s = %v", ErrInvalidConfig, name, v)
		}
	}
	if c.FlowControlThreshold <= 0 || c.FlowControlThreshold > 1 {
		return fmt.Errorf("%w: flow control threshold %v", ErrInvalidConfig, c.FlowControlThreshold)
	}
	return nil
}

// Rates bundles the primitive transition rates derived from a configuration
// (before handover balancing).
type Rates struct {
	// NewGSMCallRate is lambda_GSM, the arrival rate of fresh GSM calls.
	NewGSMCallRate float64
	// NewGPRSSessionRate is lambda_GPRS, the arrival rate of fresh GPRS
	// session requests.
	NewGPRSSessionRate float64
	// GSMServiceRate is mu_GSM = 1 / call duration.
	GSMServiceRate float64
	// GSMHandoverRate is mu_h,GSM = 1 / dwell time.
	GSMHandoverRate float64
	// GPRSServiceRate is mu_GPRS = 1 / session duration.
	GPRSServiceRate float64
	// GPRSHandoverRate is mu_h,GPRS = 1 / session dwell time.
	GPRSHandoverRate float64
	// PacketServiceRate is mu_service, the per-PDCH packet service rate.
	PacketServiceRate float64
	// IPP is the per-session traffic source.
	IPP traffic.IPP
}

// DeriveRates computes the primitive rates of the Markov model from the
// configuration (Section 3 of the paper).
func (c Config) DeriveRates() Rates {
	return Rates{
		NewGSMCallRate:     (1 - c.GPRSFraction) * c.TotalCallRate,
		NewGPRSSessionRate: c.GPRSFraction * c.TotalCallRate,
		GSMServiceRate:     1 / c.GSMCallDurationSec,
		GSMHandoverRate:    1 / c.GSMDwellTimeSec,
		GPRSServiceRate:    1 / c.Session.MeanSessionDurationSec(),
		GPRSHandoverRate:   1 / c.GPRSDwellTimeSec,
		PacketServiceRate:  c.Channels.Coding.PacketServiceRatePerPDCH(),
		IPP:                c.Session.IPP(),
	}
}

// NumStates returns the size of the aggregated state space,
// (N_GSM+1)(K+1)(M+1)(M+2)/2 (Section 4.1).
func (c Config) NumStates() int {
	nGSM := c.Channels.GSMChannels()
	tri := (c.MaxSessions + 1) * (c.MaxSessions + 2) / 2
	return (nGSM + 1) * (c.BufferSize + 1) * tri
}
