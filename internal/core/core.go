package core
