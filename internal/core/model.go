package core

import (
	"fmt"

	"repro/internal/ctmc"
	"repro/internal/erlang"
)

// Model is the GPRS Markov model of one cell, ready to be solved. A Model is
// immutable after construction and safe for concurrent use by multiple
// goroutines (Solve does not mutate it).
type Model struct {
	cfg   Config
	rates Rates
	space StateSpace

	// Balanced handover flows (Eqs. 4-5).
	gsmBalance  erlang.HandoverBalance
	gprsBalance erlang.HandoverBalance

	// Effective arrival and departure rates including handover traffic.
	gsmArrival    float64 // lambda_GSM + lambda_h,GSM
	gsmDeparture  float64 // mu_GSM + mu_h,GSM (per call)
	gprsArrival   float64 // lambda_GPRS + lambda_h,GPRS
	gprsDeparture float64 // mu_GPRS + mu_h,GPRS (per session)

	// Threshold eta*K above which the packet arrival rate is limited to the
	// service rate (TCP flow-control approximation).
	flowControlLimit float64
}

// New validates the configuration, balances the handover flows and returns a
// model ready for steady-state solution.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rates := cfg.DeriveRates()

	tol := cfg.HandoverTolerance
	maxIter := cfg.HandoverMaxIterations
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 10000
	}

	gsmBalance, err := erlang.BalanceHandover(
		rates.NewGSMCallRate, rates.GSMServiceRate, rates.GSMHandoverRate,
		cfg.Channels.GSMChannels(), tol, maxIter)
	if err != nil {
		return nil, fmt.Errorf("balance GSM handover flow: %w", err)
	}
	gprsBalance, err := erlang.BalanceHandover(
		rates.NewGPRSSessionRate, rates.GPRSServiceRate, rates.GPRSHandoverRate,
		cfg.MaxSessions, tol, maxIter)
	if err != nil {
		return nil, fmt.Errorf("balance GPRS handover flow: %w", err)
	}

	m := &Model{
		cfg:              cfg,
		rates:            rates,
		space:            NewStateSpace(cfg.Channels.GSMChannels(), cfg.BufferSize, cfg.MaxSessions),
		gsmBalance:       gsmBalance,
		gprsBalance:      gprsBalance,
		gsmArrival:       rates.NewGSMCallRate + gsmBalance.HandoverRate,
		gsmDeparture:     rates.GSMServiceRate + rates.GSMHandoverRate,
		gprsArrival:      rates.NewGPRSSessionRate + gprsBalance.HandoverRate,
		gprsDeparture:    rates.GPRSServiceRate + rates.GPRSHandoverRate,
		flowControlLimit: cfg.FlowControlThreshold * float64(cfg.BufferSize),
	}
	return m, nil
}

// Config returns the configuration the model was built from.
func (m *Model) Config() Config { return m.cfg }

// Rates returns the primitive rates derived from the configuration.
func (m *Model) Rates() Rates { return m.rates }

// StateSpace returns the aggregated state space of the model.
func (m *Model) StateSpace() StateSpace { return m.space }

// GSMHandover returns the balanced GSM handover flow (Eq. 4).
func (m *Model) GSMHandover() erlang.HandoverBalance { return m.gsmBalance }

// GPRSHandover returns the balanced GPRS handover flow (Eq. 5).
func (m *Model) GPRSHandover() erlang.HandoverBalance { return m.gprsBalance }

// UsablePDCH returns the number of PDCHs usable for data transfer in the
// given state, min(N - n, 8k).
func (m *Model) UsablePDCH(s State) int {
	return m.cfg.Channels.UsablePDCH(s.GSMCalls, s.Packets)
}

// OfferedPacketRate returns the packet arrival rate offered to the BSC buffer
// in the given state, including arrivals that will be lost because the buffer
// is full. Below the flow-control threshold the rate is (m-r)*lambda_packet;
// above it the TCP approximation limits the rate to the current service rate
// (Table 1 of the paper).
func (m *Model) OfferedPacketRate(s State) float64 {
	onSessions := s.Sessions - s.OffSessions
	if onSessions <= 0 {
		return 0
	}
	rate := float64(onSessions) * m.rates.IPP.Lambda
	if float64(s.Packets) <= m.flowControlLimit {
		return rate
	}
	serviceRate := float64(m.UsablePDCH(s)) * m.rates.PacketServiceRate
	if serviceRate < rate {
		return serviceRate
	}
	return rate
}

// ServiceRate returns the aggregate packet service rate of the given state,
// min(N-n, 8k) * mu_service.
func (m *Model) ServiceRate(s State) float64 {
	return float64(m.UsablePDCH(s)) * m.rates.PacketServiceRate
}

// Transitions returns the transition enumeration function of the model
// (Table 1 of the paper), suitable for ctmc.NewGenerator. It is exported so
// tests can inspect individual transition rates.
func (m *Model) Transitions() ctmc.TransitionFunc {
	var (
		space   = m.space
		nGSM    = space.GSMChannels()
		maxK    = space.BufferSize()
		maxM    = space.MaxSessions()
		ipp     = m.rates.IPP
		pOn     = ipp.OnProbability()
		pOff    = ipp.OffProbability()
		gsmArr  = m.gsmArrival
		gsmDep  = m.gsmDeparture
		gprsArr = m.gprsArrival
		gprsDep = m.gprsDeparture
	)
	return func(index int, emit func(to int, rate float64)) {
		s := space.State(index)
		n, k, mm, r := s.GSMCalls, s.Packets, s.Sessions, s.OffSessions

		// (i) Incoming GSM calls and handovers: admitted while on-demand
		// channels remain.
		if n < nGSM && gsmArr > 0 {
			emit(space.Index(State{n + 1, k, mm, r}), gsmArr)
		}

		// (ii) Incoming GPRS sessions and handovers: admitted below the
		// session limit M; the new session starts in IPP steady state.
		if mm < maxM && gprsArr > 0 {
			emit(space.Index(State{n, k, mm + 1, r}), pOn*gprsArr)
			emit(space.Index(State{n, k, mm + 1, r + 1}), pOff*gprsArr)
		}

		// (iii) GSM calls leaving the cell (completion or outgoing handover).
		if n > 0 {
			emit(space.Index(State{n - 1, k, mm, r}), float64(n)*gsmDep)
		}

		// (iv) GPRS sessions leaving the cell. The leaving session is in the
		// off state with probability r/m and in the on state otherwise.
		if mm > 0 {
			total := float64(mm) * gprsDep
			switch {
			case r == 0:
				emit(space.Index(State{n, k, mm - 1, 0}), total)
			case r == mm:
				emit(space.Index(State{n, k, mm - 1, r - 1}), total)
			default:
				frac := float64(r) / float64(mm)
				emit(space.Index(State{n, k, mm - 1, r - 1}), frac*total)
				emit(space.Index(State{n, k, mm - 1, r}), (1-frac)*total)
			}
		}

		// (v) Data packet arrivals (only while the buffer is not full; the
		// offered rate in full-buffer states contributes to the loss
		// probability but causes no state change).
		if k < maxK {
			if rate := m.OfferedPacketRate(s); rate > 0 {
				emit(space.Index(State{n, k + 1, mm, r}), rate)
			}
		}

		// (vi) Data packet service over min(N-n, 8k) PDCHs.
		if k > 0 {
			if rate := m.ServiceRate(s); rate > 0 {
				emit(space.Index(State{n, k - 1, mm, r}), rate)
			}
		}

		// (vii) MMPP phase changes of the aggregated arrival process.
		if r < mm {
			emit(space.Index(State{n, k, mm, r + 1}), float64(mm-r)*ipp.Alpha)
		}
		if r > 0 {
			emit(space.Index(State{n, k, mm, r - 1}), float64(r)*ipp.Beta)
		}
	}
}

// BuildGenerator constructs the sparse infinitesimal generator of the model.
func (m *Model) BuildGenerator() (*ctmc.Generator, error) {
	return ctmc.NewGenerator(m.space.NumStates(), m.Transitions())
}

// Result bundles the steady-state solution of the model with the derived
// performance measures.
type Result struct {
	// Measures holds the performance measures of Section 4.2.
	Measures Measures
	// Pi is the steady-state probability vector over the aggregated state
	// space (indexed via the model's StateSpace).
	Pi []float64
	// Solver reports diagnostics of the numerical solution.
	Solver SolverInfo
}

// SolverInfo records diagnostics of the steady-state computation.
type SolverInfo struct {
	Method      ctmc.Method
	Iterations  int
	Residual    float64
	Converged   bool
	NumStates   int
	Transitions int64
}

// Solve builds the generator matrix, computes the steady-state distribution
// with the given solver options (zero value: Gauss–Seidel with defaults) and
// derives all performance measures.
func (m *Model) Solve(opts ctmc.SolveOptions) (*Result, error) {
	gen, err := m.BuildGenerator()
	if err != nil {
		return nil, fmt.Errorf("build generator: %w", err)
	}
	if opts.Initial == nil {
		opts.Initial = m.initialGuess()
	}
	sol, err := gen.SteadyState(opts)
	if err != nil {
		return nil, fmt.Errorf("steady state: %w", err)
	}
	measures, err := m.MeasuresFrom(sol.Pi)
	if err != nil {
		return nil, err
	}
	return &Result{
		Measures: measures,
		Pi:       sol.Pi,
		Solver: SolverInfo{
			Method:      sol.Method,
			Iterations:  sol.Iterations,
			Residual:    sol.Residual,
			Converged:   sol.Converged,
			NumStates:   gen.NumStates(),
			Transitions: gen.NumTransitions(),
		},
	}, nil
}

// initialGuess seeds the solver with the product of the known closed-form
// marginals (GSM Erlang distribution, GPRS Erlang distribution, binomial MMPP
// phase distribution) and an empty buffer. Starting close to the solution
// reduces the number of sweeps substantially on large state spaces.
func (m *Model) initialGuess() []float64 {
	guess := make([]float64, m.space.NumStates())
	gsmDist, errGSM := m.gsmBalance.System.Distribution()
	gprsDist, errGPRS := m.gprsBalance.System.Distribution()
	if errGSM != nil || errGPRS != nil {
		for i := range guess {
			guess[i] = 1
		}
		return guess
	}
	pOff := m.rates.IPP.OffProbability()
	for n := 0; n <= m.space.GSMChannels(); n++ {
		for mm := 0; mm <= m.space.MaxSessions(); mm++ {
			phase := binomialPMF(mm, pOff)
			for r := 0; r <= mm; r++ {
				idx := m.space.Index(State{GSMCalls: n, Packets: 0, Sessions: mm, OffSessions: r})
				guess[idx] = gsmDist[n] * gprsDist[mm] * phase[r]
			}
		}
	}
	// Give non-empty buffer states a small uniform mass so no reachable state
	// starts at exactly zero.
	eps := 1e-6 / float64(len(guess))
	for i := range guess {
		guess[i] += eps
	}
	return guess
}

// binomialPMF returns the probabilities of 0..n successes with success
// probability p.
func binomialPMF(n int, p float64) []float64 {
	pmf := make([]float64, n+1)
	pmf[0] = 1
	for i := 0; i < n; i++ {
		// Multiply the distribution by one more Bernoulli trial.
		next := make([]float64, n+1)
		for k := 0; k <= i; k++ {
			next[k] += pmf[k] * (1 - p)
			next[k+1] += pmf[k] * p
		}
		copy(pmf, next)
	}
	return pmf
}
