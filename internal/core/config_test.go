package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/radio"
	"repro/internal/traffic"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBaseConfigMatchesTable2(t *testing.T) {
	cfg := BaseConfig(traffic.Model3, 0.5)
	if cfg.Channels.TotalChannels != 20 {
		t.Errorf("N = %d, want 20", cfg.Channels.TotalChannels)
	}
	if cfg.Channels.ReservedPDCH != 1 {
		t.Errorf("N_GPRS = %d, want 1", cfg.Channels.ReservedPDCH)
	}
	if cfg.BufferSize != 100 {
		t.Errorf("K = %d, want 100", cfg.BufferSize)
	}
	if cfg.Channels.Coding != radio.CS2 {
		t.Errorf("coding = %v, want CS-2", cfg.Channels.Coding)
	}
	if cfg.GSMCallDurationSec != 120 || cfg.GSMDwellTimeSec != 60 || cfg.GPRSDwellTimeSec != 120 {
		t.Error("GSM/GPRS durations do not match Table 2")
	}
	if cfg.GPRSFraction != 0.05 {
		t.Errorf("GPRS fraction = %v, want 0.05", cfg.GPRSFraction)
	}
	if cfg.MaxSessions != 20 {
		t.Errorf("M = %d, want 20 for traffic model 3", cfg.MaxSessions)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("base config invalid: %v", err)
	}
}

func TestBaseConfigTrafficModel1(t *testing.T) {
	cfg := BaseConfig(traffic.Model1, 1.0)
	if cfg.MaxSessions != 50 {
		t.Errorf("M = %d, want 50 for traffic model 1", cfg.MaxSessions)
	}
	rates := cfg.DeriveRates()
	if !almostEqual(1/rates.GPRSServiceRate, 2122.5, 0.1) {
		t.Errorf("session duration = %v, want 2122.5", 1/rates.GPRSServiceRate)
	}
}

func TestDeriveRates(t *testing.T) {
	cfg := BaseConfig(traffic.Model1, 1.0)
	r := cfg.DeriveRates()
	if !almostEqual(r.NewGSMCallRate, 0.95, 1e-12) {
		t.Errorf("lambda_GSM = %v, want 0.95", r.NewGSMCallRate)
	}
	if !almostEqual(r.NewGPRSSessionRate, 0.05, 1e-12) {
		t.Errorf("lambda_GPRS = %v, want 0.05", r.NewGPRSSessionRate)
	}
	if !almostEqual(r.GSMServiceRate, 1.0/120, 1e-15) {
		t.Errorf("mu_GSM = %v", r.GSMServiceRate)
	}
	if !almostEqual(r.GSMHandoverRate, 1.0/60, 1e-15) {
		t.Errorf("mu_h,GSM = %v", r.GSMHandoverRate)
	}
	if !almostEqual(r.GPRSHandoverRate, 1.0/120, 1e-15) {
		t.Errorf("mu_h,GPRS = %v", r.GPRSHandoverRate)
	}
	// mu_service = 13.4 kbit/s over 480-byte packets.
	if !almostEqual(r.PacketServiceRate, 13400.0/3840.0, 1e-9) {
		t.Errorf("mu_service = %v", r.PacketServiceRate)
	}
	// lambda_packet = 1/D_d = 2 packets/s for model 1.
	if !almostEqual(r.IPP.Lambda, 2, 1e-12) {
		t.Errorf("lambda_packet = %v, want 2", r.IPP.Lambda)
	}
}

func TestConfigNumStates(t *testing.T) {
	cfg := BaseConfig(traffic.Model1, 1.0)
	// N_GSM = 19, K = 100, M = 50.
	want := 20 * 101 * (51 * 52 / 2)
	if cfg.NumStates() != want {
		t.Errorf("NumStates = %d, want %d", cfg.NumStates(), want)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	base := BaseConfig(traffic.Model3, 0.5)

	mutate := []struct {
		name string
		mod  func(*Config)
	}{
		{"bad channels", func(c *Config) { c.Channels.TotalChannels = 0 }},
		{"bad buffer", func(c *Config) { c.BufferSize = 0 }},
		{"bad sessions", func(c *Config) { c.MaxSessions = 0 }},
		{"bad session params", func(c *Config) { c.Session.NumPacketCalls = 0 }},
		{"negative rate", func(c *Config) { c.TotalCallRate = -1 }},
		{"NaN rate", func(c *Config) { c.TotalCallRate = math.NaN() }},
		{"bad fraction", func(c *Config) { c.GPRSFraction = 1.5 }},
		{"bad call duration", func(c *Config) { c.GSMCallDurationSec = 0 }},
		{"bad dwell", func(c *Config) { c.GSMDwellTimeSec = -2 }},
		{"bad gprs dwell", func(c *Config) { c.GPRSDwellTimeSec = math.Inf(1) }},
		{"bad threshold", func(c *Config) { c.FlowControlThreshold = 0 }},
		{"threshold above one", func(c *Config) { c.FlowControlThreshold = 1.2 }},
	}
	for _, tc := range mutate {
		cfg := base
		tc.mod(&cfg)
		if err := cfg.Validate(); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: expected ErrInvalidConfig, got %v", tc.name, err)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New should reject the configuration", tc.name)
		}
	}
}

func TestValidConfigVariants(t *testing.T) {
	// Zero reserved PDCHs and zero GPRS users are both legal corner cases
	// used in the paper's figures.
	cfg := BaseConfig(traffic.Model3, 0.2)
	cfg.Channels.ReservedPDCH = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("0 reserved PDCHs should be valid: %v", err)
	}
	cfg = BaseConfig(traffic.Model3, 0.2)
	cfg.GPRSFraction = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("0%% GPRS users should be valid: %v", err)
	}
	cfg = BaseConfig(traffic.Model3, 0)
	if err := cfg.Validate(); err != nil {
		t.Errorf("zero call arrival rate should be valid: %v", err)
	}
}
