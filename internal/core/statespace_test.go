package core

import (
	"testing"
	"testing/quick"
)

func TestStateSpaceSize(t *testing.T) {
	// N_GSM = 19, K = 100, M = 50 gives the state-space size quoted in
	// Section 4.1: (M+1)(M+2)/2 * (N_GSM+1) * (K+1).
	sp := NewStateSpace(19, 100, 50)
	want := 51 * 52 / 2 * 20 * 101
	if sp.NumStates() != want {
		t.Errorf("NumStates = %d, want %d", sp.NumStates(), want)
	}
	if sp.GSMChannels() != 19 || sp.BufferSize() != 100 || sp.MaxSessions() != 50 {
		t.Error("accessors do not round-trip the constructor arguments")
	}
}

func TestStateSpaceRoundTripExhaustive(t *testing.T) {
	sp := NewStateSpace(3, 4, 5)
	seen := make(map[int]bool, sp.NumStates())
	count := 0
	for n := 0; n <= 3; n++ {
		for k := 0; k <= 4; k++ {
			for m := 0; m <= 5; m++ {
				for r := 0; r <= m; r++ {
					s := State{GSMCalls: n, Packets: k, Sessions: m, OffSessions: r}
					if !sp.Contains(s) {
						t.Fatalf("state %v should be contained", s)
					}
					idx := sp.Index(s)
					if idx < 0 || idx >= sp.NumStates() {
						t.Fatalf("index %d out of range for %v", idx, s)
					}
					if seen[idx] {
						t.Fatalf("duplicate index %d for %v", idx, s)
					}
					seen[idx] = true
					back := sp.State(idx)
					if back != s {
						t.Fatalf("round trip %v -> %d -> %v", s, idx, back)
					}
					count++
				}
			}
		}
	}
	if count != sp.NumStates() {
		t.Errorf("enumerated %d states, space reports %d", count, sp.NumStates())
	}
}

func TestStateSpaceContainsRejectsInvalid(t *testing.T) {
	sp := NewStateSpace(2, 2, 2)
	invalid := []State{
		{GSMCalls: -1},
		{GSMCalls: 3},
		{Packets: -1},
		{Packets: 3},
		{Sessions: 3},
		{Sessions: 1, OffSessions: 2}, // r > m
		{OffSessions: -1},
	}
	for _, s := range invalid {
		if sp.Contains(s) {
			t.Errorf("state %v should not be contained", s)
		}
	}
}

func TestStateString(t *testing.T) {
	s := State{GSMCalls: 1, Packets: 2, Sessions: 3, OffSessions: 1}
	if s.String() != "(n=1, k=2, m=3, r=1)" {
		t.Errorf("String() = %q", s.String())
	}
}

func TestTriangularRow(t *testing.T) {
	// tri indices 0,1,2,3,4,5,... map to rows 0,1,1,2,2,2,...
	wantRows := []int{0, 1, 1, 2, 2, 2, 3, 3, 3, 3, 4}
	for tri, want := range wantRows {
		if got := triangularRow(tri); got != want {
			t.Errorf("triangularRow(%d) = %d, want %d", tri, got, want)
		}
	}
}

// Property: Index and State are inverse bijections for random spaces.
func TestStateSpaceRoundTripProperty(t *testing.T) {
	prop := func(nSeed, kSeed, mSeed uint8, pick uint16) bool {
		sp := NewStateSpace(int(nSeed%6)+1, int(kSeed%10)+1, int(mSeed%8)+1)
		idx := int(pick) % sp.NumStates()
		s := sp.State(idx)
		if !sp.Contains(s) {
			return false
		}
		return sp.Index(s) == idx
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
