package core

import (
	"fmt"
	"math"

	"repro/internal/traffic"
)

// Measures holds the performance measures of Section 4.2 of the paper.
type Measures struct {
	// CarriedDataTraffic (CDT, Eq. 8) is the average number of PDCHs in use
	// for data transfer.
	CarriedDataTraffic float64
	// ThroughputPackets is the overall data throughput CDT * mu_service in
	// packets per second.
	ThroughputPackets float64
	// ThroughputBits is the overall data throughput in bits per second.
	ThroughputBits float64
	// OfferedPacketRate is the average packet arrival rate lambda_avg,
	// including packets lost at a full buffer.
	OfferedPacketRate float64
	// PacketLossProbability (PLP, Eq. 9) is the probability that an arriving
	// packet finds the BSC buffer full.
	PacketLossProbability float64
	// MeanQueueLength is the average number of packets in the BSC buffer.
	MeanQueueLength float64
	// QueueingDelay (QD, Eq. 10) is the mean waiting time of a packet in the
	// BSC buffer in seconds.
	QueueingDelay float64
	// AverageSessions (AGS, Eq. 7) is the average number of active GPRS
	// sessions in the cell.
	AverageSessions float64
	// ThroughputPerUserBits (ATU, Eq. 11) is the average throughput per GPRS
	// user in bits per second.
	ThroughputPerUserBits float64
	// CarriedVoiceTraffic (CVT, Eq. 6) is the average number of channels
	// occupied by GSM voice calls.
	CarriedVoiceTraffic float64
	// GSMBlockingProbability is the Erlang blocking probability of GSM voice
	// calls, p_{GSM, N_GSM}.
	GSMBlockingProbability float64
	// GPRSBlockingProbability is the blocking probability of GPRS session
	// requests, p_{GPRS, M}.
	GPRSBlockingProbability float64
	// GSMHandoverRate is the balanced incoming GSM handover rate (Eq. 4).
	GSMHandoverRate float64
	// GPRSHandoverRate is the balanced incoming GPRS handover rate (Eq. 5).
	GPRSHandoverRate float64
}

// MeasuresFrom derives all performance measures from a steady-state vector
// over the model's state space.
func (m *Model) MeasuresFrom(pi []float64) (Measures, error) {
	if len(pi) != m.space.NumStates() {
		return Measures{}, fmt.Errorf("%w: steady-state vector has %d entries, want %d",
			ErrInvalidConfig, len(pi), m.space.NumStates())
	}

	var (
		cdt      float64 // average PDCHs in use
		offered  float64 // average offered packet arrival rate
		queueLen float64 // mean queue length
	)
	for idx, p := range pi {
		if p == 0 {
			continue
		}
		s := m.space.State(idx)
		cdt += p * float64(m.UsablePDCH(s))
		offered += p * m.OfferedPacketRate(s)
		queueLen += p * float64(s.Packets)
	}

	throughputPackets := cdt * m.rates.PacketServiceRate

	var plp float64
	if offered > 0 {
		plp = 1 - throughputPackets/offered
		if plp < 0 {
			plp = 0
		}
		if plp > 1 {
			plp = 1
		}
	}

	var qd float64
	if throughputPackets > 0 {
		qd = queueLen / throughputPackets
	}

	// Voice-side and session-count measures follow from the M/M/c/c closed
	// forms with the balanced handover flows (Eqs. 2-7).
	gsmMean, err := m.gsmBalance.System.MeanBusyServers()
	if err != nil {
		return Measures{}, fmt.Errorf("GSM marginal: %w", err)
	}
	gsmBlock, err := m.gsmBalance.System.BlockingProbability()
	if err != nil {
		return Measures{}, fmt.Errorf("GSM blocking: %w", err)
	}
	gprsMean, err := m.gprsBalance.System.MeanBusyServers()
	if err != nil {
		return Measures{}, fmt.Errorf("GPRS marginal: %w", err)
	}
	gprsBlock, err := m.gprsBalance.System.BlockingProbability()
	if err != nil {
		return Measures{}, fmt.Errorf("GPRS blocking: %w", err)
	}

	var atu float64
	if gprsMean > 0 {
		atu = throughputPackets * float64(traffic.PacketSizeBits) / gprsMean
	}

	return Measures{
		CarriedDataTraffic:      cdt,
		ThroughputPackets:       throughputPackets,
		ThroughputBits:          throughputPackets * float64(traffic.PacketSizeBits),
		OfferedPacketRate:       offered,
		PacketLossProbability:   plp,
		MeanQueueLength:         queueLen,
		QueueingDelay:           qd,
		AverageSessions:         gprsMean,
		ThroughputPerUserBits:   atu,
		CarriedVoiceTraffic:     gsmMean,
		GSMBlockingProbability:  gsmBlock,
		GPRSBlockingProbability: gprsBlock,
		GSMHandoverRate:         m.gsmBalance.HandoverRate,
		GPRSHandoverRate:        m.gprsBalance.HandoverRate,
	}, nil
}

// MarginalGSM returns the marginal distribution of the number of active GSM
// calls computed from a steady-state vector; it should coincide with the
// Erlang closed form (Eq. 2) and is used for validation.
func (m *Model) MarginalGSM(pi []float64) []float64 {
	dist := make([]float64, m.space.GSMChannels()+1)
	for idx, p := range pi {
		if p == 0 {
			continue
		}
		dist[m.space.State(idx).GSMCalls] += p
	}
	return dist
}

// MarginalSessions returns the marginal distribution of the number of active
// GPRS sessions computed from a steady-state vector; it should coincide with
// the Erlang closed form (Eq. 3).
func (m *Model) MarginalSessions(pi []float64) []float64 {
	dist := make([]float64, m.space.MaxSessions()+1)
	for idx, p := range pi {
		if p == 0 {
			continue
		}
		dist[m.space.State(idx).Sessions] += p
	}
	return dist
}

// MarginalQueue returns the marginal distribution of the BSC buffer
// occupancy.
func (m *Model) MarginalQueue(pi []float64) []float64 {
	dist := make([]float64, m.space.BufferSize()+1)
	for idx, p := range pi {
		if p == 0 {
			continue
		}
		dist[m.space.State(idx).Packets] += p
	}
	return dist
}

// ValidateDistribution checks that a vector is a probability distribution
// over the state space (non-negative, sums to 1 within tolerance).
func (m *Model) ValidateDistribution(pi []float64, tol float64) error {
	if len(pi) != m.space.NumStates() {
		return fmt.Errorf("%w: length %d, want %d", ErrInvalidConfig, len(pi), m.space.NumStates())
	}
	var sum float64
	for i, p := range pi {
		if p < -tol || math.IsNaN(p) {
			return fmt.Errorf("%w: probability %v at state %d", ErrInvalidConfig, p, i)
		}
		sum += p
	}
	if math.Abs(sum-1) > tol {
		return fmt.Errorf("%w: probability mass %v", ErrInvalidConfig, sum)
	}
	return nil
}
