package core

import (
	"math"
	"testing"

	"repro/internal/ctmc"
	"repro/internal/traffic"
)

// smallConfig returns a configuration with a deliberately small state space
// (a few hundred states) that still exercises every transition type.
func smallConfig() Config {
	cfg := BaseConfig(traffic.Model3, 0.5)
	cfg.Channels.TotalChannels = 5
	cfg.Channels.ReservedPDCH = 1
	cfg.BufferSize = 8
	cfg.MaxSessions = 3
	cfg.GPRSFraction = 0.2
	return cfg
}

func solveSmall(t *testing.T, cfg Config) (*Model, *Result) {
	t.Helper()
	model, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.Solve(ctmc.SolveOptions{Tolerance: 1e-12, MaxIterations: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solver.Converged {
		t.Fatalf("solver did not converge: %+v", res.Solver)
	}
	return model, res
}

func TestModelSolveSmallConfig(t *testing.T) {
	model, res := solveSmall(t, smallConfig())
	if err := model.ValidateDistribution(res.Pi, 1e-9); err != nil {
		t.Fatalf("invalid steady-state vector: %v", err)
	}
	meas := res.Measures

	if meas.CarriedDataTraffic < 0 || meas.CarriedDataTraffic > float64(model.Config().Channels.TotalChannels) {
		t.Errorf("CDT = %v out of range", meas.CarriedDataTraffic)
	}
	if meas.PacketLossProbability < 0 || meas.PacketLossProbability > 1 {
		t.Errorf("PLP = %v out of range", meas.PacketLossProbability)
	}
	if meas.QueueingDelay < 0 {
		t.Errorf("QD = %v negative", meas.QueueingDelay)
	}
	if meas.MeanQueueLength < 0 || meas.MeanQueueLength > float64(model.Config().BufferSize) {
		t.Errorf("MQL = %v out of range", meas.MeanQueueLength)
	}
	if meas.AverageSessions <= 0 || meas.AverageSessions > float64(model.Config().MaxSessions) {
		t.Errorf("AGS = %v out of range", meas.AverageSessions)
	}
	if meas.CarriedVoiceTraffic <= 0 || meas.CarriedVoiceTraffic > float64(model.Config().Channels.GSMChannels()) {
		t.Errorf("CVT = %v out of range", meas.CarriedVoiceTraffic)
	}
	if meas.GSMBlockingProbability < 0 || meas.GSMBlockingProbability > 1 {
		t.Errorf("GSM blocking = %v", meas.GSMBlockingProbability)
	}
	if meas.GPRSBlockingProbability < 0 || meas.GPRSBlockingProbability > 1 {
		t.Errorf("GPRS blocking = %v", meas.GPRSBlockingProbability)
	}
	if meas.ThroughputPackets < 0 || meas.ThroughputPerUserBits < 0 {
		t.Error("negative throughput")
	}
	// Throughput cannot exceed the offered load.
	if meas.ThroughputPackets > meas.OfferedPacketRate*(1+1e-9) {
		t.Errorf("throughput %v exceeds offered rate %v", meas.ThroughputPackets, meas.OfferedPacketRate)
	}
}

func TestGSMMarginalMatchesErlang(t *testing.T) {
	// GSM voice calls have priority over GPRS and are unaffected by the data
	// traffic, so the marginal distribution of n must coincide with the
	// M/M/c/c closed form (Eq. 2).
	model, res := solveSmall(t, smallConfig())
	want, err := model.GSMHandover().System.Distribution()
	if err != nil {
		t.Fatal(err)
	}
	got := model.MarginalGSM(res.Pi)
	for n := range want {
		if math.Abs(got[n]-want[n]) > 1e-6 {
			t.Errorf("GSM marginal p[%d] = %v, want %v", n, got[n], want[n])
		}
	}
}

func TestSessionMarginalMatchesErlang(t *testing.T) {
	// The number of active GPRS sessions evolves independently of the buffer
	// and of GSM voice, so its marginal must match the M/M/M/M closed form
	// (Eq. 3).
	model, res := solveSmall(t, smallConfig())
	want, err := model.GPRSHandover().System.Distribution()
	if err != nil {
		t.Fatal(err)
	}
	got := model.MarginalSessions(res.Pi)
	for mm := range want {
		if math.Abs(got[mm]-want[mm]) > 1e-6 {
			t.Errorf("session marginal p[%d] = %v, want %v", mm, got[mm], want[mm])
		}
	}
	// The AGS measure (closed form) must agree with the marginal mean.
	var mean float64
	for mm, p := range got {
		mean += float64(mm) * p
	}
	if math.Abs(mean-res.Measures.AverageSessions) > 1e-6 {
		t.Errorf("AGS closed form %v vs marginal mean %v", res.Measures.AverageSessions, mean)
	}
}

func TestQueueMarginalSumsToOne(t *testing.T) {
	model, res := solveSmall(t, smallConfig())
	dist := model.MarginalQueue(res.Pi)
	var sum float64
	for _, p := range dist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("queue marginal sums to %v", sum)
	}
}

func TestNoGPRSTrafficMeansNoDataMeasures(t *testing.T) {
	cfg := smallConfig()
	cfg.GPRSFraction = 0
	model, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.Solve(ctmc.SolveOptions{Tolerance: 1e-12, MaxIterations: 50000})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Measures
	if m.CarriedDataTraffic > 1e-9 {
		t.Errorf("CDT = %v with no GPRS users", m.CarriedDataTraffic)
	}
	if m.OfferedPacketRate > 1e-9 || m.ThroughputPackets > 1e-9 {
		t.Errorf("data traffic measures should vanish, got offered=%v throughput=%v",
			m.OfferedPacketRate, m.ThroughputPackets)
	}
	if m.AverageSessions > 1e-12 || m.GPRSHandoverRate > 1e-12 {
		t.Errorf("no sessions expected, got AGS=%v handover=%v", m.AverageSessions, m.GPRSHandoverRate)
	}
	if m.CarriedVoiceTraffic <= 0 {
		t.Error("voice traffic should still be carried")
	}
}

func TestFlowControlReducesLoss(t *testing.T) {
	// Heavier traffic on a tiny buffer: with flow control (eta = 0.7) the
	// loss probability must not exceed the one without flow control
	// (eta = 1.0), mirroring Fig. 5.
	base := smallConfig()
	base.TotalCallRate = 2.0
	base.GPRSFraction = 0.5
	base.BufferSize = 6

	withFC := base
	withFC.FlowControlThreshold = 0.7
	_, resFC := solveSmall(t, withFC)

	withoutFC := base
	withoutFC.FlowControlThreshold = 1.0
	_, resNoFC := solveSmall(t, withoutFC)

	if resFC.Measures.PacketLossProbability > resNoFC.Measures.PacketLossProbability+1e-9 {
		t.Errorf("flow control increased loss: %v vs %v",
			resFC.Measures.PacketLossProbability, resNoFC.Measures.PacketLossProbability)
	}
	if resNoFC.Measures.PacketLossProbability <= 0 {
		t.Error("expected positive loss probability without flow control under heavy load")
	}
}

func TestMoreReservedPDCHsReduceDelay(t *testing.T) {
	// Reserving more PDCHs decreases the queueing delay (Fig. 9).
	base := smallConfig()
	base.TotalCallRate = 1.5
	base.GPRSFraction = 0.4

	one := base
	one.Channels.ReservedPDCH = 1
	_, resOne := solveSmall(t, one)

	three := base
	three.Channels.ReservedPDCH = 3
	_, resThree := solveSmall(t, three)

	if resThree.Measures.QueueingDelay > resOne.Measures.QueueingDelay+1e-9 {
		t.Errorf("more reserved PDCHs should not increase delay: %v vs %v",
			resThree.Measures.QueueingDelay, resOne.Measures.QueueingDelay)
	}
	if resThree.Measures.PacketLossProbability > resOne.Measures.PacketLossProbability+1e-9 {
		t.Errorf("more reserved PDCHs should not increase loss: %v vs %v",
			resThree.Measures.PacketLossProbability, resOne.Measures.PacketLossProbability)
	}
}

func TestTransitionRatesMatchTable1(t *testing.T) {
	cfg := smallConfig()
	model, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := model.StateSpace()
	rates := model.Rates()
	tf := model.Transitions()

	collect := func(s State) map[State]float64 {
		out := make(map[State]float64)
		tf(sp.Index(s), func(to int, rate float64) {
			out[sp.State(to)] += rate
		})
		return out
	}

	// From the empty state, only arrivals can happen.
	empty := State{}
	out := collect(empty)
	gsmArr := rates.NewGSMCallRate + model.GSMHandover().HandoverRate
	gprsArr := rates.NewGPRSSessionRate + model.GPRSHandover().HandoverRate
	pOn := rates.IPP.OnProbability()
	if got := out[State{GSMCalls: 1}]; math.Abs(got-gsmArr) > 1e-12 {
		t.Errorf("GSM arrival rate = %v, want %v", got, gsmArr)
	}
	if got := out[State{Sessions: 1}]; math.Abs(got-pOn*gprsArr) > 1e-12 {
		t.Errorf("GPRS arrival (on) = %v, want %v", got, pOn*gprsArr)
	}
	if got := out[State{Sessions: 1, OffSessions: 1}]; math.Abs(got-(1-pOn)*gprsArr) > 1e-12 {
		t.Errorf("GPRS arrival (off) = %v, want %v", got, (1-pOn)*gprsArr)
	}
	if len(out) != 3 {
		t.Errorf("empty state should have exactly 3 outgoing transitions, got %d: %v", len(out), out)
	}

	// A state with full GSM occupancy cannot admit another GSM call.
	full := State{GSMCalls: sp.GSMChannels()}
	if _, ok := collect(full)[State{GSMCalls: sp.GSMChannels() + 1}]; ok {
		t.Error("GSM call admitted beyond N_GSM")
	}

	// Packet service uses min(N-n, 8k) PDCHs.
	s := State{GSMCalls: 2, Packets: 1, Sessions: 2, OffSessions: 1}
	out = collect(s)
	wantService := float64(model.UsablePDCH(s)) * rates.PacketServiceRate
	if got := out[State{GSMCalls: 2, Packets: 0, Sessions: 2, OffSessions: 1}]; math.Abs(got-wantService) > 1e-12 {
		t.Errorf("service rate = %v, want %v", got, wantService)
	}
	// Packet arrivals occur at (m-r) * lambda_packet below the threshold.
	wantArrival := float64(s.Sessions-s.OffSessions) * rates.IPP.Lambda
	if got := out[State{GSMCalls: 2, Packets: 2, Sessions: 2, OffSessions: 1}]; math.Abs(got-wantArrival) > 1e-12 {
		t.Errorf("packet arrival rate = %v, want %v", got, wantArrival)
	}
	// MMPP phase changes.
	if got := out[State{GSMCalls: 2, Packets: 1, Sessions: 2, OffSessions: 2}]; math.Abs(got-float64(1)*rates.IPP.Alpha) > 1e-12 {
		t.Errorf("on->off rate = %v, want %v", got, rates.IPP.Alpha)
	}
	if got := out[State{GSMCalls: 2, Packets: 1, Sessions: 2, OffSessions: 0}]; math.Abs(got-float64(1)*rates.IPP.Beta) > 1e-12 {
		t.Errorf("off->on rate = %v, want %v", got, rates.IPP.Beta)
	}

	// GPRS departure from a mixed state splits r/m vs (m-r)/m.
	dep := State{Sessions: 2, OffSessions: 1}
	out = collect(dep)
	gprsDep := rates.GPRSServiceRate + rates.GPRSHandoverRate
	wantOffLeave := 0.5 * 2 * gprsDep
	if got := out[State{Sessions: 1, OffSessions: 0}]; math.Abs(got-wantOffLeave) > 1e-12 {
		t.Errorf("departure (off leaves) = %v, want %v", got, wantOffLeave)
	}
	if got := out[State{Sessions: 1, OffSessions: 1}]; math.Abs(got-wantOffLeave) > 1e-12 {
		t.Errorf("departure (on leaves) = %v, want %v", got, wantOffLeave)
	}
}

func TestOfferedRateAboveThresholdIsLimited(t *testing.T) {
	cfg := smallConfig()
	cfg.FlowControlThreshold = 0.5
	model, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rates := model.Rates()
	// Above the threshold (k > 0.5*8 = 4) the offered rate is capped at the
	// service rate of the state.
	s := State{GSMCalls: 4, Packets: 7, Sessions: 3, OffSessions: 0}
	capRate := model.ServiceRate(s)
	uncapped := 3 * rates.IPP.Lambda
	want := math.Min(capRate, uncapped)
	if got := model.OfferedPacketRate(s); math.Abs(got-want) > 1e-12 {
		t.Errorf("offered rate above threshold = %v, want %v", got, want)
	}
	// Below the threshold the full MMPP rate is offered.
	s = State{GSMCalls: 4, Packets: 2, Sessions: 3, OffSessions: 0}
	if got := model.OfferedPacketRate(s); math.Abs(got-uncapped) > 1e-12 {
		t.Errorf("offered rate below threshold = %v, want %v", got, uncapped)
	}
	// All sessions off: no arrivals.
	s = State{Sessions: 2, OffSessions: 2}
	if model.OfferedPacketRate(s) != 0 {
		t.Error("offered rate should be zero when all sessions are off")
	}
}

func TestSolverMethodsAgreeOnMeasures(t *testing.T) {
	cfg := smallConfig()
	model, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reference *Result
	for _, method := range []ctmc.Method{ctmc.GaussSeidel, ctmc.Jacobi, ctmc.Power} {
		res, err := model.Solve(ctmc.SolveOptions{Method: method, Tolerance: 1e-12, MaxIterations: 200000})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if reference == nil {
			reference = res
			continue
		}
		if math.Abs(res.Measures.CarriedDataTraffic-reference.Measures.CarriedDataTraffic) > 1e-5 {
			t.Errorf("%v: CDT %v differs from reference %v", method,
				res.Measures.CarriedDataTraffic, reference.Measures.CarriedDataTraffic)
		}
		if math.Abs(res.Measures.PacketLossProbability-reference.Measures.PacketLossProbability) > 1e-5 {
			t.Errorf("%v: PLP %v differs from reference %v", method,
				res.Measures.PacketLossProbability, reference.Measures.PacketLossProbability)
		}
	}
}

func TestGeneratorResidualSmall(t *testing.T) {
	model, res := solveSmall(t, smallConfig())
	gen, err := model.BuildGenerator()
	if err != nil {
		t.Fatal(err)
	}
	if gen.NumStates() != model.StateSpace().NumStates() {
		t.Errorf("generator states %d != space %d", gen.NumStates(), model.StateSpace().NumStates())
	}
	resid, err := gen.Residual(res.Pi)
	if err != nil {
		t.Fatal(err)
	}
	if resid > 1e-8 {
		t.Errorf("residual = %v", resid)
	}
}

func TestMeasuresFromRejectsWrongLength(t *testing.T) {
	model, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.MeasuresFrom([]float64{1}); err == nil {
		t.Error("expected error for wrong-length vector")
	}
	if err := model.ValidateDistribution([]float64{1}, 1e-9); err == nil {
		t.Error("expected error for wrong-length distribution")
	}
}

func TestBinomialPMF(t *testing.T) {
	pmf := binomialPMF(4, 0.5)
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for i := range want {
		if math.Abs(pmf[i]-want[i]) > 1e-12 {
			t.Errorf("pmf[%d] = %v, want %v", i, pmf[i], want[i])
		}
	}
	if pmf := binomialPMF(0, 0.3); len(pmf) != 1 || pmf[0] != 1 {
		t.Errorf("binomialPMF(0, .) = %v", pmf)
	}
}

func TestHigherLoadIncreasesVoiceBlocking(t *testing.T) {
	low := smallConfig()
	low.TotalCallRate = 0.05
	_, resLow := solveSmall(t, low)

	high := smallConfig()
	high.TotalCallRate = 2.0
	_, resHigh := solveSmall(t, high)

	if resHigh.Measures.GSMBlockingProbability <= resLow.Measures.GSMBlockingProbability {
		t.Errorf("blocking should grow with load: %v vs %v",
			resHigh.Measures.GSMBlockingProbability, resLow.Measures.GSMBlockingProbability)
	}
	if resHigh.Measures.CarriedVoiceTraffic <= resLow.Measures.CarriedVoiceTraffic {
		t.Errorf("carried voice traffic should grow with load: %v vs %v",
			resHigh.Measures.CarriedVoiceTraffic, resLow.Measures.CarriedVoiceTraffic)
	}
}
