package ctmc

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Method selects the steady-state iteration scheme.
type Method int

const (
	// GaussSeidel updates states in place using the newest available values.
	// It is the default because it typically converges in far fewer sweeps
	// than the other methods on the quasi-birth-death structure of the GPRS
	// model.
	GaussSeidel Method = iota + 1
	// Jacobi updates all states from the previous iterate with a damping
	// factor of 1/2 (undamped Jacobi oscillates with period two on
	// birth-death structures); it is provided as a reference method and for
	// the solver ablation benchmark.
	Jacobi
	// Power applies uniformized power iteration pi <- pi (I + Q/Lambda).
	// It is embarrassingly parallel and used for very large state spaces.
	Power
)

// String returns the solver name.
func (m Method) String() string {
	switch m {
	case GaussSeidel:
		return "gauss-seidel"
	case Jacobi:
		return "jacobi"
	case Power:
		return "power"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// SolveOptions controls the steady-state computation.
type SolveOptions struct {
	// Method selects the iteration scheme; the zero value means GaussSeidel.
	Method Method
	// Tolerance is the convergence threshold on the relative L1 change of the
	// iterate between convergence checks; the zero value means 1e-10.
	Tolerance float64
	// MaxIterations bounds the number of sweeps; the zero value means 20000.
	MaxIterations int
	// CheckEvery is the number of sweeps between convergence checks; the zero
	// value means 10.
	CheckEvery int
	// Relaxation is the successive over-relaxation factor applied to the
	// Gauss–Seidel update (pi_j <- (1-w) pi_j + w inflow_j/d_j). The zero
	// value means 1 (plain Gauss–Seidel); values in (1, 2) accelerate
	// convergence on the stiff GPRS chain, values above 2 are rejected.
	Relaxation float64
	// Parallel enables multi-goroutine sweeps for the Jacobi and Power
	// methods (Gauss–Seidel is inherently sequential). The zero value uses a
	// single goroutine.
	Parallel bool
	// Workers is the number of goroutines used when Parallel is set; the zero
	// value means runtime.NumCPU().
	Workers int
	// Initial optionally provides a starting distribution of length
	// NumStates; it does not need to be normalized. If nil, the uniform
	// distribution is used.
	Initial []float64
}

func (o SolveOptions) withDefaults() SolveOptions {
	if o.Method == 0 {
		o.Method = GaussSeidel
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-10
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 20000
	}
	if o.CheckEvery <= 0 {
		o.CheckEvery = 10
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.Relaxation == 0 {
		o.Relaxation = 1
	}
	return o
}

// Solution holds the result of a steady-state computation.
type Solution struct {
	// Pi is the steady-state probability vector (sums to 1).
	Pi []float64
	// Iterations is the number of sweeps performed.
	Iterations int
	// Delta is the relative L1 change of the iterate at the last convergence
	// check.
	Delta float64
	// Residual is the infinity norm of pi*Q for the returned vector.
	Residual float64
	// Converged reports whether Delta fell below the tolerance before
	// MaxIterations was reached.
	Converged bool
	// Method is the iteration scheme that produced the solution.
	Method Method
}

// SteadyState computes the stationary distribution pi of the chain, i.e. the
// solution of pi*Q = 0 with sum(pi) = 1.
func (g *Generator) SteadyState(opts SolveOptions) (*Solution, error) {
	o := opts.withDefaults()
	if g.n == 1 {
		return &Solution{Pi: []float64{1}, Converged: true, Method: o.Method}, nil
	}

	pi := make([]float64, g.n)
	if o.Initial != nil {
		if len(o.Initial) != g.n {
			return nil, fmt.Errorf("%w: initial vector length %d, want %d", ErrInvalidArgument, len(o.Initial), g.n)
		}
		copy(pi, o.Initial)
		if err := normalize(pi); err != nil {
			return nil, err
		}
	} else {
		for i := range pi {
			pi[i] = 1 / float64(g.n)
		}
	}

	if o.Relaxation < 0 || o.Relaxation >= 2 {
		return nil, fmt.Errorf("%w: relaxation factor %v outside (0, 2)", ErrInvalidArgument, o.Relaxation)
	}

	var (
		sol *Solution
		err error
	)
	switch o.Method {
	case GaussSeidel:
		sol, err = g.solveGaussSeidel(pi, o)
	case Jacobi:
		sol, err = g.solveJacobiOrPower(pi, o, false)
	case Power:
		sol, err = g.solveJacobiOrPower(pi, o, true)
	default:
		return nil, fmt.Errorf("%w: unknown method %v", ErrInvalidArgument, o.Method)
	}
	if err != nil {
		return nil, err
	}
	sol.Method = o.Method
	sol.Residual, _ = g.Residual(sol.Pi)
	return sol, nil
}

// solveGaussSeidel iterates pi_j <- (1-w) pi_j + w inflow_j / d_j in place
// (plain Gauss–Seidel for w = 1, SOR otherwise).
func (g *Generator) solveGaussSeidel(pi []float64, o SolveOptions) (*Solution, error) {
	prev := make([]float64, g.n)
	sol := &Solution{Pi: pi}
	w := o.Relaxation
	for iter := 1; iter <= o.MaxIterations; iter++ {
		if w == 1 {
			for j := 0; j < g.n; j++ {
				start, end := g.inPtr[j], g.inPtr[j+1]
				var sum float64
				for p := start; p < end; p++ {
					sum += pi[g.inSrc[p]] * g.inRate[p]
				}
				pi[j] = sum / g.outRate[j]
			}
		} else {
			for j := 0; j < g.n; j++ {
				start, end := g.inPtr[j], g.inPtr[j+1]
				var sum float64
				for p := start; p < end; p++ {
					sum += pi[g.inSrc[p]] * g.inRate[p]
				}
				v := (1-w)*pi[j] + w*sum/g.outRate[j]
				if v < 0 {
					v = 0
				}
				pi[j] = v
			}
		}
		if err := normalize(pi); err != nil {
			return nil, err
		}
		sol.Iterations = iter
		if iter%o.CheckEvery == 0 || iter == o.MaxIterations {
			delta := relativeL1Change(prev, pi)
			sol.Delta = delta
			copy(prev, pi)
			if delta <= o.Tolerance && iter > o.CheckEvery {
				sol.Converged = true
				return sol, nil
			}
		}
	}
	return sol, nil
}

// solveJacobiOrPower iterates with a separate old/new vector. With power=true
// the update is the uniformized power step
// pi_j <- pi_j + (inflow_j - pi_j d_j)/Lambda; otherwise the Jacobi step
// pi_j <- inflow_j / d_j is used.
func (g *Generator) solveJacobiOrPower(pi []float64, o SolveOptions, power bool) (*Solution, error) {
	next := make([]float64, g.n)
	prev := make([]float64, g.n)
	sol := &Solution{}
	// Uniformization constant slightly above the maximum outflow rate keeps
	// the DTMC aperiodic.
	lambda := g.maxOutRate * 1.02
	if lambda <= 0 {
		lambda = 1
	}

	sweep := func(lo, hi int, src, dst []float64) {
		for j := lo; j < hi; j++ {
			start, end := g.inPtr[j], g.inPtr[j+1]
			var sum float64
			for p := start; p < end; p++ {
				sum += src[g.inSrc[p]] * g.inRate[p]
			}
			if power {
				dst[j] = src[j] + (sum-src[j]*g.outRate[j])/lambda
			} else {
				// Damped Jacobi: average the fixed-point update with the
				// previous iterate to suppress period-2 oscillation.
				dst[j] = 0.5*src[j] + 0.5*sum/g.outRate[j]
			}
		}
	}

	workers := 1
	if o.Parallel && o.Workers > 1 {
		workers = o.Workers
		if workers > g.n {
			workers = g.n
		}
	}

	for iter := 1; iter <= o.MaxIterations; iter++ {
		if workers == 1 {
			sweep(0, g.n, pi, next)
		} else {
			var wg sync.WaitGroup
			chunk := (g.n + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo := w * chunk
				hi := lo + chunk
				if hi > g.n {
					hi = g.n
				}
				if lo >= hi {
					break
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					sweep(lo, hi, pi, next)
				}(lo, hi)
			}
			wg.Wait()
		}
		if err := normalize(next); err != nil {
			return nil, err
		}
		pi, next = next, pi
		sol.Iterations = iter
		if iter%o.CheckEvery == 0 || iter == o.MaxIterations {
			delta := relativeL1Change(prev, pi)
			sol.Delta = delta
			copy(prev, pi)
			if delta <= o.Tolerance && iter > o.CheckEvery {
				sol.Converged = true
				break
			}
		}
	}
	sol.Pi = pi
	return sol, nil
}

// normalize scales the vector to sum to 1 and clamps tiny negative rounding
// artefacts to zero. It returns ErrNotIrreducible if the vector sums to zero.
func normalize(v []float64) error {
	var sum float64
	for i, x := range v {
		if x < 0 {
			if x < -1e-12 {
				return fmt.Errorf("%w: negative probability %v at state %d", ErrNotIrreducible, x, i)
			}
			v[i] = 0
			continue
		}
		sum += x
	}
	if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		return fmt.Errorf("%w: probability mass %v", ErrNotIrreducible, sum)
	}
	inv := 1 / sum
	for i := range v {
		v[i] *= inv
	}
	return nil
}

// relativeL1Change returns |new - old|_1 / |new|_1.
func relativeL1Change(old, cur []float64) float64 {
	var diff, norm float64
	for i := range cur {
		diff += math.Abs(cur[i] - old[i])
		norm += math.Abs(cur[i])
	}
	if norm == 0 {
		return math.Inf(1)
	}
	return diff / norm
}

// Expectation returns sum_s pi[s] * value(s), a convenience for computing
// performance measures from a steady-state vector.
func Expectation(pi []float64, value func(state int) float64) float64 {
	var sum float64
	for s, p := range pi {
		if p == 0 {
			continue
		}
		sum += p * value(s)
	}
	return sum
}
