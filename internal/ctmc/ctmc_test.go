package ctmc

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// twoStateChain builds the generator of a simple on/off chain with rates
// a (0->1) and b (1->0); its stationary distribution is (b, a)/(a+b).
func twoStateChain(t *testing.T, a, b float64) *Generator {
	t.Helper()
	g, err := NewGenerator(2, func(s int, emit func(int, float64)) {
		if s == 0 {
			emit(1, a)
		} else {
			emit(0, b)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// mmckTransitions returns the transition function of an M/M/c/K queue with
// arrival rate lambda and service rate mu; state = number in system.
func mmckTransitions(lambda, mu float64, c, capacity int) TransitionFunc {
	return func(s int, emit func(int, float64)) {
		if s < capacity {
			emit(s+1, lambda)
		}
		if s > 0 {
			busy := s
			if busy > c {
				busy = c
			}
			emit(s-1, float64(busy)*mu)
		}
	}
}

// mmckExact returns the closed-form distribution of an M/M/c/K queue.
func mmckExact(lambda, mu float64, c, capacity int) []float64 {
	p := make([]float64, capacity+1)
	p[0] = 1
	for s := 1; s <= capacity; s++ {
		busy := s
		if busy > c {
			busy = c
		}
		p[s] = p[s-1] * lambda / (float64(busy) * mu)
	}
	var sum float64
	for _, v := range p {
		sum += v
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

func TestTwoStateChainAllMethods(t *testing.T) {
	const a, b = 0.3, 0.7
	g := twoStateChain(t, a, b)
	for _, m := range []Method{GaussSeidel, Jacobi, Power} {
		sol, err := g.SteadyState(SolveOptions{Method: m, Tolerance: 1e-12})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !sol.Converged {
			t.Errorf("%v: did not converge", m)
		}
		if !almostEqual(sol.Pi[0], b/(a+b), 1e-8) || !almostEqual(sol.Pi[1], a/(a+b), 1e-8) {
			t.Errorf("%v: pi = %v, want [%v %v]", m, sol.Pi, b/(a+b), a/(a+b))
		}
		if sol.Residual > 1e-8 {
			t.Errorf("%v: residual = %v", m, sol.Residual)
		}
	}
}

func TestMMcKMatchesClosedForm(t *testing.T) {
	const (
		lambda   = 2.5
		mu       = 1.0
		c        = 3
		capacity = 15
	)
	g, err := NewGenerator(capacity+1, mmckTransitions(lambda, mu, c, capacity))
	if err != nil {
		t.Fatal(err)
	}
	want := mmckExact(lambda, mu, c, capacity)
	for _, m := range []Method{GaussSeidel, Jacobi, Power} {
		sol, err := g.SteadyState(SolveOptions{Method: m, Tolerance: 1e-13, MaxIterations: 200000})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for s := range want {
			if !almostEqual(sol.Pi[s], want[s], 1e-7) {
				t.Errorf("%v: pi[%d] = %v, want %v", m, s, sol.Pi[s], want[s])
			}
		}
	}
}

func TestGeneratorCountsAndRates(t *testing.T) {
	g := twoStateChain(t, 2, 5)
	if g.NumStates() != 2 {
		t.Errorf("NumStates = %d", g.NumStates())
	}
	if g.NumTransitions() != 2 {
		t.Errorf("NumTransitions = %d", g.NumTransitions())
	}
	if g.OutRate(0) != 2 || g.OutRate(1) != 5 {
		t.Errorf("out rates = %v, %v", g.OutRate(0), g.OutRate(1))
	}
	if g.OutRate(-1) != 0 || g.OutRate(2) != 0 {
		t.Error("out-of-range OutRate should be 0")
	}
	if g.MaxOutRate() != 5 {
		t.Errorf("MaxOutRate = %v, want 5", g.MaxOutRate())
	}
}

func TestGeneratorRejectsInvalidInput(t *testing.T) {
	if _, err := NewGenerator(0, func(int, func(int, float64)) {}); !errors.Is(err, ErrInvalidArgument) {
		t.Error("zero states should be rejected")
	}
	if _, err := NewGenerator(2, nil); !errors.Is(err, ErrInvalidArgument) {
		t.Error("nil transition function should be rejected")
	}
	_, err := NewGenerator(2, func(s int, emit func(int, float64)) { emit(5, 1) })
	if !errors.Is(err, ErrInvalidTransition) {
		t.Errorf("out-of-range target: got %v", err)
	}
	_, err = NewGenerator(2, func(s int, emit func(int, float64)) { emit(1-s, -1) })
	if !errors.Is(err, ErrInvalidTransition) {
		t.Errorf("negative rate: got %v", err)
	}
	_, err = NewGenerator(2, func(s int, emit func(int, float64)) { emit(1-s, math.NaN()) })
	if !errors.Is(err, ErrInvalidTransition) {
		t.Errorf("NaN rate: got %v", err)
	}
	// A state with no outgoing transitions cannot belong to an irreducible
	// chain.
	_, err = NewGenerator(2, func(s int, emit func(int, float64)) {
		if s == 0 {
			emit(1, 1)
		}
	})
	if !errors.Is(err, ErrNotIrreducible) {
		t.Errorf("dangling state: got %v", err)
	}
}

func TestGeneratorIgnoresSelfLoopsAndZeroRates(t *testing.T) {
	g, err := NewGenerator(2, func(s int, emit func(int, float64)) {
		emit(s, 100) // self loop must be ignored
		emit(1-s, 0) // zero rate must be ignored
		emit(1-s, 1) // the real transition
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTransitions() != 2 {
		t.Errorf("NumTransitions = %d, want 2", g.NumTransitions())
	}
	if g.OutRate(0) != 1 {
		t.Errorf("self loops must not contribute to the outflow rate, got %v", g.OutRate(0))
	}
}

func TestSingleStateChain(t *testing.T) {
	g, err := NewGenerator(1, func(int, func(int, float64)) {})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := g.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Pi) != 1 || sol.Pi[0] != 1 || !sol.Converged {
		t.Errorf("single state solution = %+v", sol)
	}
}

func TestInitialVectorAndValidation(t *testing.T) {
	g := twoStateChain(t, 1, 1)
	sol, err := g.SteadyState(SolveOptions{Initial: []float64{0.9, 0.1}, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Pi[0], 0.5, 1e-8) {
		t.Errorf("pi[0] = %v, want 0.5", sol.Pi[0])
	}
	if _, err := g.SteadyState(SolveOptions{Initial: []float64{1}}); !errors.Is(err, ErrInvalidArgument) {
		t.Error("wrong-length initial vector should be rejected")
	}
	if _, err := g.SteadyState(SolveOptions{Method: Method(42)}); !errors.Is(err, ErrInvalidArgument) {
		t.Error("unknown method should be rejected")
	}
}

func TestParallelPowerMatchesSequential(t *testing.T) {
	const n = 500
	// Random-ish birth-death chain with position-dependent rates.
	tf := func(s int, emit func(int, float64)) {
		if s < n-1 {
			emit(s+1, 1.0+float64(s%7))
		}
		if s > 0 {
			emit(s-1, 2.0+float64(s%5))
		}
	}
	g, err := NewGenerator(n, tf)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := g.SteadyState(SolveOptions{Method: Power, Tolerance: 1e-12, MaxIterations: 500000})
	if err != nil {
		t.Fatal(err)
	}
	par, err := g.SteadyState(SolveOptions{Method: Power, Tolerance: 1e-12, MaxIterations: 500000, Parallel: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < n; s++ {
		if !almostEqual(seq.Pi[s], par.Pi[s], 1e-9) {
			t.Fatalf("parallel mismatch at state %d: %v vs %v", s, seq.Pi[s], par.Pi[s])
		}
	}
}

func TestResidualAndInflow(t *testing.T) {
	g := twoStateChain(t, 0.3, 0.7)
	pi := []float64{0.7, 0.3}
	res, err := g.Residual(pi)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-12 {
		t.Errorf("residual of exact solution = %v", res)
	}
	dst := make([]float64, 2)
	if err := g.Inflow(pi, dst); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(dst[0], 0.3*0.7, 1e-12) || !almostEqual(dst[1], 0.7*0.3, 1e-12) {
		t.Errorf("inflow = %v", dst)
	}
	if _, err := g.Residual([]float64{1}); !errors.Is(err, ErrInvalidArgument) {
		t.Error("wrong-length residual vector should be rejected")
	}
	if err := g.Inflow([]float64{1}, dst); !errors.Is(err, ErrInvalidArgument) {
		t.Error("wrong-length inflow vector should be rejected")
	}
}

func TestExpectation(t *testing.T) {
	pi := []float64{0.25, 0.25, 0.5, 0}
	got := Expectation(pi, func(s int) float64 { return float64(s) })
	if !almostEqual(got, 1.25, 1e-12) {
		t.Errorf("expectation = %v, want 1.25", got)
	}
}

func TestMethodString(t *testing.T) {
	if GaussSeidel.String() != "gauss-seidel" || Jacobi.String() != "jacobi" || Power.String() != "power" {
		t.Error("method names wrong")
	}
	if Method(9).String() == "" {
		t.Error("unknown method should render something")
	}
}

// Property: for random ergodic birth-death chains, the Gauss-Seidel solution
// satisfies detailed balance (birth-death chains are reversible) and matches
// the closed-form product solution.
func TestBirthDeathDetailedBalanceProperty(t *testing.T) {
	prop := func(nSeed uint8, birthSeed, deathSeed uint16) bool {
		n := int(nSeed%20) + 2
		birth := 0.1 + float64(birthSeed%100)/20
		death := 0.1 + float64(deathSeed%100)/20
		tf := func(s int, emit func(int, float64)) {
			if s < n-1 {
				emit(s+1, birth)
			}
			if s > 0 {
				emit(s-1, death*float64(s))
			}
		}
		g, err := NewGenerator(n, tf)
		if err != nil {
			return false
		}
		sol, err := g.SteadyState(SolveOptions{Tolerance: 1e-13, MaxIterations: 100000})
		if err != nil || !sol.Converged {
			return false
		}
		for s := 0; s < n-1; s++ {
			lhs := sol.Pi[s] * birth
			rhs := sol.Pi[s+1] * death * float64(s+1)
			if math.Abs(lhs-rhs) > 1e-6*(1+lhs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSolutionProbabilityVectorProperties(t *testing.T) {
	g, err := NewGenerator(50, mmckTransitions(3, 0.5, 4, 49))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := g.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range sol.Pi {
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
		sum += p
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("probabilities sum to %v", sum)
	}
}
