// Package ctmc provides infrastructure for finite continuous-time Markov
// chains: sparse infinitesimal generator matrices built from a transition
// enumeration callback, and iterative steady-state solvers (Gauss–Seidel,
// Jacobi, and uniformized power iteration). The GPRS Markov model of the
// paper is solved through this package.
//
// The generator is stored column-oriented (incoming transitions per state)
// because every provided solver needs, for a state j, the inflow
// sum_i pi_i * q_ij and the total outflow rate d_j. This single representation
// supports all three iteration schemes without duplicating the matrix.
package ctmc

import (
	"errors"
	"fmt"
	"math"
)

// Common errors returned by the package.
var (
	// ErrInvalidTransition is returned when a transition callback emits an
	// out-of-range target state or a non-finite or negative rate.
	ErrInvalidTransition = errors.New("ctmc: invalid transition")
	// ErrNotIrreducible is returned when the chain has a state with no
	// outgoing transitions (and therefore cannot be irreducible) or when a
	// solver detects a zero steady-state vector.
	ErrNotIrreducible = errors.New("ctmc: chain is not irreducible")
	// ErrInvalidArgument is returned for out-of-range solver or builder
	// arguments.
	ErrInvalidArgument = errors.New("ctmc: invalid argument")
)

// TransitionFunc enumerates the outgoing transitions of a state. The
// implementation must call emit(to, rate) once per outgoing transition with a
// strictly positive rate; self-loops (to == state) are ignored. The function
// must be deterministic: it is called twice per state while building the
// generator (a counting pass and a fill pass).
type TransitionFunc func(state int, emit func(to int, rate float64))

// Generator is the sparse infinitesimal generator matrix Q of a finite CTMC,
// stored as incoming transitions per state plus the diagonal (total outflow
// rate per state).
type Generator struct {
	n int

	// Incoming transitions in compressed sparse column layout: for state j,
	// the sources are inSrc[inPtr[j]:inPtr[j+1]] with rates inRate[...].
	inPtr  []int64
	inSrc  []int32
	inRate []float64

	// outRate[i] is the total outgoing rate of state i (the negated diagonal
	// entry of Q).
	outRate []float64

	maxOutRate float64
	nnz        int64
}

// NewGenerator builds the generator matrix of a CTMC with numStates states
// from the transition enumeration callback. It returns an error if a
// transition is invalid or if some state has no outgoing transition (which
// would make the chain reducible).
func NewGenerator(numStates int, transitions TransitionFunc) (*Generator, error) {
	if numStates <= 0 {
		return nil, fmt.Errorf("%w: numStates = %d", ErrInvalidArgument, numStates)
	}
	if numStates > math.MaxInt32 {
		return nil, fmt.Errorf("%w: numStates = %d exceeds int32 indexing", ErrInvalidArgument, numStates)
	}
	if transitions == nil {
		return nil, fmt.Errorf("%w: nil transition function", ErrInvalidArgument)
	}

	g := &Generator{
		n:       numStates,
		inPtr:   make([]int64, numStates+1),
		outRate: make([]float64, numStates),
	}

	// Pass 1: count incoming transitions per target state and accumulate
	// outgoing rates.
	var emitErr error
	counts := make([]int64, numStates)
	for s := 0; s < numStates; s++ {
		state := s
		transitions(state, func(to int, rate float64) {
			if emitErr != nil {
				return
			}
			if to < 0 || to >= numStates {
				emitErr = fmt.Errorf("%w: state %d -> %d out of range", ErrInvalidTransition, state, to)
				return
			}
			if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
				emitErr = fmt.Errorf("%w: state %d -> %d rate %v", ErrInvalidTransition, state, to, rate)
				return
			}
			if rate == 0 || to == state {
				return
			}
			counts[to]++
			g.outRate[state] += rate
		})
		if emitErr != nil {
			return nil, emitErr
		}
	}

	for s := 0; s < numStates; s++ {
		if g.outRate[s] <= 0 && numStates > 1 {
			return nil, fmt.Errorf("%w: state %d has no outgoing transitions", ErrNotIrreducible, s)
		}
		if g.outRate[s] > g.maxOutRate {
			g.maxOutRate = g.outRate[s]
		}
	}

	// Prefix sums give the column pointers.
	var total int64
	for j := 0; j < numStates; j++ {
		g.inPtr[j] = total
		total += counts[j]
	}
	g.inPtr[numStates] = total
	g.nnz = total
	g.inSrc = make([]int32, total)
	g.inRate = make([]float64, total)

	// Pass 2: fill. Reuse counts as per-column fill cursors.
	for j := range counts {
		counts[j] = 0
	}
	for s := 0; s < numStates; s++ {
		state := s
		transitions(state, func(to int, rate float64) {
			if to < 0 || to >= numStates || rate <= 0 || to == state {
				return
			}
			pos := g.inPtr[to] + counts[to]
			g.inSrc[pos] = int32(state)
			g.inRate[pos] = rate
			counts[to]++
		})
	}
	return g, nil
}

// NumStates returns the number of states of the chain.
func (g *Generator) NumStates() int { return g.n }

// NumTransitions returns the number of stored (off-diagonal, positive-rate)
// transitions.
func (g *Generator) NumTransitions() int64 { return g.nnz }

// OutRate returns the total outgoing rate of a state (the negated diagonal of
// the generator matrix). It returns 0 for out-of-range states.
func (g *Generator) OutRate(state int) float64 {
	if state < 0 || state >= g.n {
		return 0
	}
	return g.outRate[state]
}

// MaxOutRate returns the largest total outgoing rate over all states; it is
// the uniformization constant used by the power-iteration solver.
func (g *Generator) MaxOutRate() float64 { return g.maxOutRate }

// Inflow computes, for every state j, the total probability inflow
// sum_i pi_i q_ij of the probability vector pi, writing the result into dst
// (which must have length NumStates). It is exported for residual
// computations and tests.
func (g *Generator) Inflow(pi, dst []float64) error {
	if len(pi) != g.n || len(dst) != g.n {
		return fmt.Errorf("%w: vector length %d/%d, want %d", ErrInvalidArgument, len(pi), len(dst), g.n)
	}
	for j := 0; j < g.n; j++ {
		start, end := g.inPtr[j], g.inPtr[j+1]
		var sum float64
		for p := start; p < end; p++ {
			sum += pi[g.inSrc[p]] * g.inRate[p]
		}
		dst[j] = sum
	}
	return nil
}

// Residual returns the infinity norm of pi*Q, i.e. max_j |inflow_j - pi_j d_j|.
// A steady-state vector has residual 0.
func (g *Generator) Residual(pi []float64) (float64, error) {
	if len(pi) != g.n {
		return 0, fmt.Errorf("%w: vector length %d, want %d", ErrInvalidArgument, len(pi), g.n)
	}
	var worst float64
	for j := 0; j < g.n; j++ {
		start, end := g.inPtr[j], g.inPtr[j+1]
		var sum float64
		for p := start; p < end; p++ {
			sum += pi[g.inSrc[p]] * g.inRate[p]
		}
		r := math.Abs(sum - pi[j]*g.outRate[j])
		if r > worst {
			worst = r
		}
	}
	return worst, nil
}
