package radio

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestCodingSchemeRates(t *testing.T) {
	if CS2.DataRateBitsPerSec() != 13_400 {
		t.Errorf("CS-2 rate = %v, want 13400 (paper, Section 3)", CS2.DataRateBitsPerSec())
	}
	if !(CS1.DataRateBitsPerSec() < CS2.DataRateBitsPerSec() &&
		CS2.DataRateBitsPerSec() < CS3.DataRateBitsPerSec() &&
		CS3.DataRateBitsPerSec() < CS4.DataRateBitsPerSec()) {
		t.Error("coding scheme rates should be strictly increasing CS-1..CS-4")
	}
	if CS1.CodeRate() != 0.5 || CS4.CodeRate() != 1.0 {
		t.Error("CS-1 is rate 1/2 and CS-4 is uncoded")
	}
	if CodingScheme(0).DataRateBitsPerSec() != 0 || CodingScheme(9).CodeRate() != 0 {
		t.Error("invalid schemes should have zero rate")
	}
}

func TestCodingSchemeStrings(t *testing.T) {
	names := map[CodingScheme]string{CS1: "CS-1", CS2: "CS-2", CS3: "CS-3", CS4: "CS-4"}
	for cs, want := range names {
		if cs.String() != want {
			t.Errorf("String() = %q, want %q", cs.String(), want)
		}
		if !cs.Valid() {
			t.Errorf("%v should be valid", cs)
		}
	}
	if CodingScheme(0).Valid() || CodingScheme(5).Valid() {
		t.Error("out-of-range schemes should be invalid")
	}
	if CodingScheme(7).String() == "" {
		t.Error("unknown scheme should still render")
	}
}

func TestPacketServiceRateCS2(t *testing.T) {
	// 13.4 kbit/s over 480-byte packets = about 3.49 packets/s per PDCH.
	got := CS2.PacketServiceRatePerPDCH()
	want := 13400.0 / 3840.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("mu_service = %v, want %v", got, want)
	}
}

func TestPacketTransmissionTime(t *testing.T) {
	// A 480-byte packet on one CS-2 PDCH takes 3840/13400 s.
	one := CS2.PacketTransmissionTime(480, 1)
	if math.Abs(one-3840.0/13400.0) > 1e-9 {
		t.Errorf("single-slot time = %v", one)
	}
	// Using 4 PDCHs is four times faster.
	four := CS2.PacketTransmissionTime(480, 4)
	if math.Abs(four*4-one) > 1e-9 {
		t.Errorf("multislot speedup incorrect: %v vs %v", four, one)
	}
	// The multislot limit caps at 8 slots and the floor is one slot.
	if CS2.PacketTransmissionTime(480, 99) != CS2.PacketTransmissionTime(480, 8) {
		t.Error("multislot limit of 8 not enforced")
	}
	if CS2.PacketTransmissionTime(480, 0) != one {
		t.Error("non-positive slot count should be clamped to 1")
	}
}

func TestRadioBlocksPerPacket(t *testing.T) {
	// CS-2 carries 268 bits per 20 ms block; a 480-byte packet needs
	// ceil(3840/268) = 15 blocks.
	if got := CS2.RadioBlocksPerPacket(480); got != 15 {
		t.Errorf("CS-2 blocks per 480-byte packet = %d, want 15", got)
	}
	if got := CS4.RadioBlocksPerPacket(480); got != 9 {
		t.Errorf("CS-4 blocks per 480-byte packet = %d, want 9", got)
	}
	if CodingScheme(0).RadioBlocksPerPacket(480) != 0 {
		t.Error("invalid scheme should produce zero blocks")
	}
}

func TestFrameTiming(t *testing.T) {
	if math.Abs(FrameDurationSec-0.004616) > 1e-6 {
		t.Errorf("TDMA frame duration = %v, want about 4.615 ms", FrameDurationSec)
	}
	if SlotsPerFrame != 8 || BitsPerSlot != 114 {
		t.Error("GSM slot constants do not match the paper")
	}
}

func TestChannelPlanValidate(t *testing.T) {
	good := ChannelPlan{TotalChannels: 20, ReservedPDCH: 1, Coding: CS2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	bad := []ChannelPlan{
		{TotalChannels: 0, ReservedPDCH: 0, Coding: CS2},
		{TotalChannels: 20, ReservedPDCH: -1, Coding: CS2},
		{TotalChannels: 20, ReservedPDCH: 21, Coding: CS2},
		{TotalChannels: 20, ReservedPDCH: 1, Coding: CodingScheme(0)},
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("case %d: expected ErrInvalidConfig, got %v", i, err)
		}
	}
}

func TestChannelPlanPartitioning(t *testing.T) {
	p := ChannelPlan{TotalChannels: 20, ReservedPDCH: 4, Coding: CS2}
	if p.GSMChannels() != 16 {
		t.Errorf("GSM channels = %d, want 16", p.GSMChannels())
	}
	if !p.CanAdmitGSMCall(15) {
		t.Error("call 16 should be admitted")
	}
	if p.CanAdmitGSMCall(16) {
		t.Error("GSM must not take reserved PDCHs")
	}
}

func TestAvailableAndUsablePDCH(t *testing.T) {
	p := ChannelPlan{TotalChannels: 20, ReservedPDCH: 1, Coding: CS2}
	// No voice calls: all 20 channels can serve data.
	if got := p.AvailablePDCH(0); got != 20 {
		t.Errorf("available with 0 calls = %d, want 20", got)
	}
	// Full voice load (19 calls): only the reserved PDCH remains.
	if got := p.AvailablePDCH(19); got != 1 {
		t.Errorf("available with 19 calls = %d, want 1", got)
	}
	// Usable is limited by 8 PDCHs per packet.
	if got := p.UsablePDCH(0, 1); got != 8 {
		t.Errorf("usable with 1 packet = %d, want 8", got)
	}
	if got := p.UsablePDCH(0, 3); got != 20 {
		t.Errorf("usable with 3 packets = %d, want 20 (channel limited)", got)
	}
	if got := p.UsablePDCH(0, 0); got != 0 {
		t.Errorf("usable with empty buffer = %d, want 0", got)
	}
	if got := p.UsablePDCH(19, 10); got != 1 {
		t.Errorf("usable under full voice load = %d, want 1", got)
	}
}

func TestServiceRatePackets(t *testing.T) {
	p := ChannelPlan{TotalChannels: 20, ReservedPDCH: 1, Coding: CS2}
	got := p.ServiceRatePackets(10, 2)
	want := 10 * CS2.PacketServiceRatePerPDCH()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("service rate = %v, want %v", got, want)
	}
}

// Property: usable PDCHs never exceed available channels, never exceed 8k,
// and are monotone in the number of queued packets.
func TestUsablePDCHProperties(t *testing.T) {
	prop := func(nSeed, kSeed uint8, reservedSeed uint8) bool {
		plan := ChannelPlan{TotalChannels: 20, ReservedPDCH: int(reservedSeed % 5), Coding: CS2}
		n := int(nSeed) % (plan.GSMChannels() + 1)
		k := int(kSeed) % 101
		u := plan.UsablePDCH(n, k)
		if u > plan.AvailablePDCH(n) || u > MaxSlotsPerMobile*k || u < 0 {
			return false
		}
		return plan.UsablePDCH(n, k+1) >= u
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
