// Package radio models the GSM/GPRS radio interface abstractions used by the
// paper (Section 2): physical channels obtained from FDMA/TDMA, the
// partitioning of channels into GSM traffic channels (TCH) and GPRS packet
// data channels (PDCH) with fixed and on-demand PDCHs, the GPRS coding
// schemes CS-1..CS-4, and the timing of TDMA frames used by the detailed
// simulator to segment network-layer packets into radio blocks.
package radio

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/traffic"
)

// ErrInvalidConfig is returned for inconsistent radio configurations.
var ErrInvalidConfig = errors.New("radio: invalid configuration")

// Physical-layer constants of GSM (Section 2 of the paper).
const (
	// SlotsPerFrame is the number of time slots per TDMA frame.
	SlotsPerFrame = 8
	// SlotDurationSec is the duration of one time slot (0.577 ms).
	SlotDurationSec = 0.000577
	// FrameDurationSec is the duration of one TDMA frame (8 slots).
	FrameDurationSec = SlotsPerFrame * SlotDurationSec
	// BitsPerSlot is the payload of one time slot (114 bits of information).
	BitsPerSlot = 114
	// CarrierBandwidthHz is the width of one GSM carrier (200 kHz).
	CarrierBandwidthHz = 200_000
	// CarriersPerBand is the number of single-carrier channels per GSM band.
	CarriersPerBand = 124
	// MaxSlotsPerMobile is the multislot limit: a mobile station can be
	// assigned at most 8 time slots of a TDMA frame.
	MaxSlotsPerMobile = 8
	// MaxMobilesPerSlot is the sharing limit: up to 8 mobile stations can
	// share one PDCH.
	MaxMobilesPerSlot = 8
)

// CodingScheme enumerates the GPRS channel coding schemes CS-1 .. CS-4.
type CodingScheme int

const (
	// CS1 is the most robust coding scheme (code rate 1/2).
	CS1 CodingScheme = iota + 1
	// CS2 is the coding scheme assumed throughout the paper (13.4 kbit/s).
	CS2
	// CS3 offers a higher rate with less protection.
	CS3
	// CS4 applies no coding (code rate 1).
	CS4
)

// String returns the conventional name of the coding scheme.
func (cs CodingScheme) String() string {
	switch cs {
	case CS1:
		return "CS-1"
	case CS2:
		return "CS-2"
	case CS3:
		return "CS-3"
	case CS4:
		return "CS-4"
	default:
		return fmt.Sprintf("CS-?(%d)", int(cs))
	}
}

// DataRateBitsPerSec returns the net RLC data rate of one PDCH under the
// coding scheme. CS-2 yields the 13.4 kbit/s used throughout the paper; the
// other values follow the GPRS specification (GSM 03.60 / 05.03).
func (cs CodingScheme) DataRateBitsPerSec() float64 {
	switch cs {
	case CS1:
		return 9_050
	case CS2:
		return 13_400
	case CS3:
		return 15_600
	case CS4:
		return 21_400
	default:
		return 0
	}
}

// CodeRate returns the approximate convolutional code rate of the scheme.
func (cs CodingScheme) CodeRate() float64 {
	switch cs {
	case CS1:
		return 0.5
	case CS2:
		return 2.0 / 3.0
	case CS3:
		return 3.0 / 4.0
	case CS4:
		return 1.0
	default:
		return 0
	}
}

// Valid reports whether cs is one of CS-1..CS-4.
func (cs CodingScheme) Valid() bool { return cs >= CS1 && cs <= CS4 }

// PacketServiceRatePerPDCH returns the packet service rate mu_service of one
// PDCH in packets per second for the paper's 480-byte network-layer packets:
// data rate / packet size.
func (cs CodingScheme) PacketServiceRatePerPDCH() float64 {
	return cs.DataRateBitsPerSec() / float64(traffic.PacketSizeBits)
}

// PacketTransmissionTime returns the time to transmit one packet of the given
// size over nPDCH parallel PDCHs (multislot operation), bounded by the
// multislot limit.
func (cs CodingScheme) PacketTransmissionTime(packetBytes, nPDCH int) float64 {
	if nPDCH < 1 {
		nPDCH = 1
	}
	if nPDCH > MaxSlotsPerMobile {
		nPDCH = MaxSlotsPerMobile
	}
	return float64(packetBytes*8) / (cs.DataRateBitsPerSec() * float64(nPDCH))
}

// RadioBlocksPerPacket returns the number of RLC radio blocks needed to carry
// a packet of the given size under the coding scheme. A radio block occupies
// four TDMA frames on one PDCH; its payload is derived from the net data rate
// and the block transmission time (20 ms).
func (cs CodingScheme) RadioBlocksPerPacket(packetBytes int) int {
	const blockDurationSec = 0.02 // 4 TDMA frames of ~4.615 ms
	payloadBits := cs.DataRateBitsPerSec() * blockDurationSec
	if payloadBits <= 0 {
		return 0
	}
	return int(math.Ceil(float64(packetBytes*8) / payloadBits))
}

// ChannelPlan describes the partitioning of the physical channels of one cell
// into GSM traffic channels and GPRS packet data channels (Fig. 2).
type ChannelPlan struct {
	// TotalChannels is the overall number of physical channels N in the cell.
	TotalChannels int
	// ReservedPDCH is the number of channels permanently reserved for GPRS
	// (N_GPRS).
	ReservedPDCH int
	// Coding is the channel coding scheme in use (CS-2 in the paper).
	Coding CodingScheme
}

// Validate reports whether the plan is consistent.
func (p ChannelPlan) Validate() error {
	if p.TotalChannels <= 0 {
		return fmt.Errorf("%w: total channels = %d", ErrInvalidConfig, p.TotalChannels)
	}
	if p.ReservedPDCH < 0 || p.ReservedPDCH > p.TotalChannels {
		return fmt.Errorf("%w: reserved PDCH = %d with %d channels",
			ErrInvalidConfig, p.ReservedPDCH, p.TotalChannels)
	}
	if !p.Coding.Valid() {
		return fmt.Errorf("%w: coding scheme %v", ErrInvalidConfig, p.Coding)
	}
	return nil
}

// GSMChannels returns the number of channels usable by GSM voice calls,
// N_GSM = N - N_GPRS. On-demand channels are shared with GPRS but GSM has
// priority on them.
func (p ChannelPlan) GSMChannels() int { return p.TotalChannels - p.ReservedPDCH }

// AvailablePDCH returns the number of channels available for packet transfer
// when n GSM calls are active: all channels not used by voice, i.e. N - n
// (the reserved PDCHs plus every idle on-demand channel), clamped at zero.
func (p ChannelPlan) AvailablePDCH(activeGSMCalls int) int {
	avail := p.TotalChannels - activeGSMCalls
	if avail < p.ReservedPDCH {
		avail = p.ReservedPDCH
	}
	if avail < 0 {
		avail = 0
	}
	return avail
}

// UsablePDCH returns the number of PDCHs actually usable for data transfer in
// a state with n active GSM calls and k queued packets: min(N - n, 8k), the
// quantity the paper denotes by the channel utilization of state (k,n,m,r).
func (p ChannelPlan) UsablePDCH(activeGSMCalls, queuedPackets int) int {
	avail := p.AvailablePDCH(activeGSMCalls)
	byPackets := MaxSlotsPerMobile * queuedPackets
	if byPackets < avail {
		return byPackets
	}
	return avail
}

// ServiceRatePackets returns the aggregate packet service rate (packets/s)
// in a state with the given number of active GSM calls and queued packets.
func (p ChannelPlan) ServiceRatePackets(activeGSMCalls, queuedPackets int) float64 {
	return float64(p.UsablePDCH(activeGSMCalls, queuedPackets)) * p.Coding.PacketServiceRatePerPDCH()
}

// CanAdmitGSMCall reports whether an arriving GSM call can be accepted when n
// calls are already active: GSM calls may use every channel except the
// permanently reserved PDCHs.
func (p ChannelPlan) CanAdmitGSMCall(activeGSMCalls int) bool {
	return activeGSMCalls < p.GSMChannels()
}
