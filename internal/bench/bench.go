// Package bench defines the schema-versioned benchmark trajectory of the
// repository: every performance run of cmd/gprs-bench emits one
// BENCH_<date>.json report (events/sec, ns/event, allocs/event, B/event per
// pinned workload, plus host metadata), and the committed reports under
// benchdata/ form the trajectory future runs are gated against. The package
// holds the report types, the encoding, and the tolerance-gated comparison;
// the harness that produces the numbers lives in cmd/gprs-bench.
package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// SchemaVersion is the current report schema: version 2 adds the per-workload
// GC pause total and peak heap plus the report-level harness wall time.
// Encode writes the current version only; Decode additionally accepts every
// version back to minSupportedSchema — older reports carry a subset of the
// fields, all additive, so the committed trajectory keeps loading across the
// bump. Anything outside that range is rejected, forcing an explicit
// migration instead of silently misreading old points.
const SchemaVersion = 2

// minSupportedSchema is the oldest report version Decode still accepts.
// Every schema change since then has been purely additive.
const minSupportedSchema = 1

// ErrSchema is returned for reports that do not match the current schema.
var ErrSchema = errors.New("bench: incompatible report schema")

// Host identifies the machine a report was produced on. Comparisons gate
// only against baselines from an equal Host — numbers from a different
// machine class are advisory, never a CI failure.
type Host struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
}

// CurrentHost describes the running machine.
func CurrentHost() Host {
	return Host{
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
}

// Result is the measurement of one pinned workload.
type Result struct {
	// Name identifies the workload (e.g. "serial/base-7cell").
	Name string `json:"name"`
	// Events is the number of simulation events the measured runs executed.
	Events uint64 `json:"events"`
	// WallSec is the wall-clock time of the measured runs.
	WallSec float64 `json:"wall_sec"`
	// EventsPerSec is the primary throughput metric the trajectory gates on.
	EventsPerSec float64 `json:"events_per_sec"`
	// NsPerEvent is the inverse view: wall nanoseconds per event.
	NsPerEvent float64 `json:"ns_per_event"`
	// AllocsPerEvent and BytesPerEvent are heap allocation counts and bytes
	// per event over the measured runs (runtime.MemStats deltas).
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	// GCPauseTotalSec is the total stop-the-world GC pause time accumulated
	// during the measured runs (runtime.MemStats.PauseTotalNs delta). Schema
	// v2; zero in v1 reports.
	GCPauseTotalSec float64 `json:"gc_pause_total_sec,omitempty"`
	// PeakHeapBytes is the heap footprint after the measured runs
	// (runtime.MemStats.HeapSys). Schema v2; zero in v1 reports.
	PeakHeapBytes uint64 `json:"peak_heap_bytes,omitempty"`
}

// Report is one point of the benchmark trajectory.
type Report struct {
	SchemaVersion int `json:"schema_version"`
	// Date is the ISO day (YYYY-MM-DD) the report was produced.
	Date string `json:"date"`
	// Quick marks reduced-fidelity runs (cmd/gprs-bench -quick, the CI
	// setting). Quick and full reports are never compared against each
	// other.
	Quick   bool     `json:"quick,omitempty"`
	Host    Host     `json:"host"`
	Results []Result `json:"results"`
	// WallSec is the total wall-clock time of the harness run that produced
	// the report, across all workloads. Schema v2; zero in v1 reports.
	WallSec float64 `json:"wall_sec,omitempty"`
}

// Filename returns the canonical trajectory filename of the report. Quick
// reports carry a fidelity suffix so a full and a quick point from the same
// day coexist in one trajectory directory.
func (r Report) Filename() string {
	if r.Quick {
		return "BENCH_" + r.Date + "-quick.json"
	}
	return "BENCH_" + r.Date + ".json"
}

// Encode renders the report as indented JSON.
func Encode(r Report) ([]byte, error) {
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrSchema, r.SchemaVersion, SchemaVersion)
	}
	if r.Date == "" {
		return nil, fmt.Errorf("%w: missing date", ErrSchema)
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses a report and validates its schema version.
func Decode(data []byte) (Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("bench: malformed report: %w", err)
	}
	if r.SchemaVersion < minSupportedSchema || r.SchemaVersion > SchemaVersion {
		return Report{}, fmt.Errorf("%w: version %d, want %d..%d", ErrSchema, r.SchemaVersion, minSupportedSchema, SchemaVersion)
	}
	return r, nil
}

// WriteFile writes the report into dir under its canonical filename,
// creating dir if needed, and returns the full path.
func WriteFile(dir string, r Report) (string, error) {
	data, err := Encode(r)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, r.Filename())
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadDir reads every BENCH_*.json report in dir, sorted by filename (the
// date-stamped names make that chronological order). A missing directory is
// an empty trajectory, not an error.
func LoadDir(dir string) ([]Report, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); !e.IsDir() && strings.HasPrefix(n, "BENCH_") && strings.HasSuffix(n, ".json") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	reports := make([]Report, 0, len(names))
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		r, err := Decode(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", n, err)
		}
		reports = append(reports, r)
	}
	return reports, nil
}

// LatestBaseline picks the newest report of the trajectory to compare a
// fresh run against, preferring the newest report from an equal host (and
// the same quick/full fidelity). The boolean reports whether the returned
// baseline is host-matched — only then may a comparison gate (fail CI); a
// cross-host baseline is advisory. It returns nil when the trajectory has no
// report of the right fidelity at all.
func LatestBaseline(reports []Report, host Host, quick bool) (*Report, bool) {
	var fallback *Report
	for i := len(reports) - 1; i >= 0; i-- {
		r := reports[i]
		if r.Quick != quick {
			continue
		}
		if r.Host == host {
			return &reports[i], true
		}
		if fallback == nil {
			fallback = &reports[i]
		}
	}
	return fallback, false
}

// Status classifies one benchmark's movement against the baseline.
type Status string

const (
	// StatusNew marks a benchmark with no baseline measurement.
	StatusNew Status = "new"
	// StatusOK marks a benchmark within tolerance of its baseline (or
	// improved).
	StatusOK Status = "ok"
	// StatusRegression marks a gated throughput regression beyond the
	// tolerance: the comparison fails.
	StatusRegression Status = "regression"
	// StatusAdvisory marks a beyond-tolerance slowdown against a baseline
	// from a different host: reported, never failing.
	StatusAdvisory Status = "advisory"
)

// Delta is the comparison of one benchmark against the baseline.
type Delta struct {
	Name     string
	Baseline float64 // baseline events/sec (0 when StatusNew)
	Current  float64 // current events/sec
	// Change is the relative throughput change: (current-baseline)/baseline.
	// Negative is a slowdown. 0 when StatusNew.
	Change float64
	Status Status
}

// String renders the delta as one aligned report line.
func (d Delta) String() string {
	if d.Status == StatusNew {
		return fmt.Sprintf("%-28s %12.0f ev/s  (new benchmark, no baseline)", d.Name, d.Current)
	}
	return fmt.Sprintf("%-28s %12.0f ev/s  %+6.1f%% vs %.0f  [%s]",
		d.Name, d.Current, 100*d.Change, d.Baseline, d.Status)
}

// Comparison is the outcome of gating a report against a baseline.
type Comparison struct {
	// Gated reports whether the baseline was host-matched (regressions fail)
	// or cross-host (everything is advisory).
	Gated  bool
	Deltas []Delta
}

// Failed reports whether any benchmark regressed beyond the tolerance on a
// gated comparison.
func (c Comparison) Failed() bool {
	for _, d := range c.Deltas {
		if d.Status == StatusRegression {
			return true
		}
	}
	return false
}

// Compare gates the current report against the baseline with the given
// relative events/sec tolerance (e.g. 0.15 fails a >15% throughput drop). A
// nil baseline marks every benchmark StatusNew. gated selects whether
// beyond-tolerance slowdowns fail (host-matched baseline) or stay advisory
// (cross-host baseline) — pass the boolean LatestBaseline returned.
func Compare(baseline *Report, current Report, tolerance float64, gated bool) Comparison {
	cmp := Comparison{Gated: gated && baseline != nil}
	base := map[string]Result{}
	if baseline != nil {
		for _, r := range baseline.Results {
			base[r.Name] = r
		}
	}
	for _, cur := range current.Results {
		d := Delta{Name: cur.Name, Current: cur.EventsPerSec, Status: StatusNew}
		if b, ok := base[cur.Name]; ok && b.EventsPerSec > 0 {
			d.Baseline = b.EventsPerSec
			d.Change = (cur.EventsPerSec - b.EventsPerSec) / b.EventsPerSec
			switch {
			case d.Change >= -tolerance:
				d.Status = StatusOK
			case cmp.Gated:
				d.Status = StatusRegression
			default:
				d.Status = StatusAdvisory
			}
		}
		cmp.Deltas = append(cmp.Deltas, d)
	}
	return cmp
}
