package bench

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleReport(date string, eps float64) Report {
	return Report{
		SchemaVersion: SchemaVersion,
		Date:          date,
		Host:          Host{OS: "linux", Arch: "amd64", CPUs: 8, GoVersion: "go1.24"},
		Results: []Result{
			{Name: "serial/base-7cell", Events: 1000000, WallSec: 1.25,
				EventsPerSec: eps, NsPerEvent: 1e9 / eps, AllocsPerEvent: 0.0001, BytesPerEvent: 0.01},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleReport("2026-08-08", 800000)
	want.Quick = true
	data, err := Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestEncodeDecodeRejections(t *testing.T) {
	cases := []struct {
		name string
		run  func() error
	}{
		{"encode wrong version", func() error {
			r := sampleReport("2026-08-08", 1)
			r.SchemaVersion = 99
			_, err := Encode(r)
			return err
		}},
		{"encode missing date", func() error {
			r := sampleReport("", 1)
			_, err := Encode(r)
			return err
		}},
		{"decode future version", func() error {
			_, err := Decode([]byte(`{"schema_version": 3, "date": "2026-01-01"}`))
			return err
		}},
		{"decode zero version", func() error {
			_, err := Decode([]byte(`{"date": "2026-01-01"}`))
			return err
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.run(); !errors.Is(err, ErrSchema) {
				t.Errorf("want ErrSchema, got %v", err)
			}
		})
	}
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Error("malformed JSON should fail")
	}
}

// TestDecodeSchemaV1Compat pins backward compatibility of the v2 schema bump:
// a committed v1 trajectory point (no GC pause, peak heap, or harness wall
// fields) must keep decoding, with the v2-only fields zero, while Encode
// refuses to write anything but the current version.
func TestDecodeSchemaV1Compat(t *testing.T) {
	v1 := []byte(`{
  "schema_version": 1,
  "date": "2026-08-01",
  "host": {"os": "linux", "arch": "amd64", "cpus": 8, "go_version": "go1.24"},
  "results": [
    {"name": "serial/base-7cell", "events": 1000000, "wall_sec": 1.25,
     "events_per_sec": 800000, "ns_per_event": 1250,
     "allocs_per_event": 0.0001, "bytes_per_event": 0.01}
  ]
}`)
	r, err := Decode(v1)
	if err != nil {
		t.Fatalf("v1 report must still decode: %v", err)
	}
	if r.SchemaVersion != 1 || r.WallSec != 0 {
		t.Errorf("v1 decode: got version %d, wall %v", r.SchemaVersion, r.WallSec)
	}
	if len(r.Results) != 1 || r.Results[0].GCPauseTotalSec != 0 || r.Results[0].PeakHeapBytes != 0 {
		t.Errorf("v1 results must decode with zero v2 fields: %+v", r.Results)
	}
	if _, err := Encode(r); !errors.Is(err, ErrSchema) {
		t.Errorf("Encode must refuse the stale version, got %v", err)
	}
	// The old point still participates in gating against a v2 run.
	cur := sampleReport("2026-08-08", 790000)
	cmp := Compare(&r, cur, 0.15, true)
	if len(cmp.Deltas) != 1 || cmp.Deltas[0].Status != StatusOK {
		t.Errorf("v1 baseline must gate a v2 run: %+v", cmp.Deltas)
	}
}

func TestWriteLoadDir(t *testing.T) {
	dir := t.TempDir()
	// Empty or missing directories are empty trajectories.
	if rs, err := LoadDir(filepath.Join(dir, "missing")); err != nil || len(rs) != 0 {
		t.Fatalf("missing dir: %v, %v", rs, err)
	}
	r1 := sampleReport("2026-08-01", 700000)
	r2 := sampleReport("2026-08-08", 750000)
	// A quick report from the same day gets a fidelity-suffixed filename, so
	// both points coexist in the trajectory.
	r3 := sampleReport("2026-08-08", 650000)
	r3.Quick = true
	if r3.Filename() == r2.Filename() {
		t.Fatal("quick and full reports from the same day must not collide")
	}
	// Write out of order; LoadDir must return chronological order.
	for _, r := range []Report{r2, r1, r3} {
		if _, err := WriteFile(dir, r); err != nil {
			t.Fatal(err)
		}
	}
	// Unrelated files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Date != "2026-08-01" || !got[1].Quick || got[2].Quick {
		t.Fatalf("trajectory order wrong: %+v", got)
	}
	// A corrupt trajectory point is an error, not a silent skip.
	if err := os.WriteFile(filepath.Join(dir, "BENCH_2026-08-09.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Error("corrupt report should fail LoadDir")
	}
}

func TestLatestBaseline(t *testing.T) {
	host := Host{OS: "linux", Arch: "amd64", CPUs: 8, GoVersion: "go1.24"}
	other := Host{OS: "linux", Arch: "arm64", CPUs: 4, GoVersion: "go1.24"}
	mk := func(date string, h Host, quick bool) Report {
		r := sampleReport(date, 1)
		r.Host = h
		r.Quick = quick
		return r
	}
	cases := []struct {
		name       string
		trajectory []Report
		quick      bool
		wantDate   string
		wantGated  bool
	}{
		{"empty trajectory", nil, false, "", false},
		{"host match picks newest matching", []Report{
			mk("2026-01-01", host, false), mk("2026-02-01", other, false), mk("2026-01-15", host, false),
		}, false, "2026-01-15", true},
		{"no host match falls back to newest, ungated", []Report{
			mk("2026-01-01", other, false), mk("2026-02-01", other, false),
		}, false, "2026-02-01", false},
		{"fidelity never mixes", []Report{
			mk("2026-01-01", host, false),
		}, true, "", false},
		{"quick matches quick", []Report{
			mk("2026-01-01", host, false), mk("2026-01-02", host, true),
		}, true, "2026-01-02", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			base, gated := LatestBaseline(c.trajectory, host, c.quick)
			if c.wantDate == "" {
				if base != nil {
					t.Fatalf("want no baseline, got %+v", base)
				}
				return
			}
			if base == nil || base.Date != c.wantDate || gated != c.wantGated {
				t.Errorf("got (%+v, %v), want date %s gated %v", base, gated, c.wantDate, c.wantGated)
			}
		})
	}
}

func TestCompareToleranceGate(t *testing.T) {
	base := sampleReport("2026-08-01", 1000000)
	mkCur := func(eps float64, extra ...Result) Report {
		r := sampleReport("2026-08-08", eps)
		r.Results = append(r.Results, extra...)
		return r
	}
	cases := []struct {
		name       string
		baseline   *Report
		current    Report
		gated      bool
		wantStatus []Status
		wantFailed bool
	}{
		{"missing baseline: everything new, no gate",
			nil, mkCur(10), true, []Status{StatusNew}, false},
		{"new benchmark alongside known one",
			&base, mkCur(990000, Result{Name: "sharded4/hotspot-19cell", EventsPerSec: 5}),
			true, []Status{StatusOK, StatusNew}, false},
		{"within tolerance",
			&base, mkCur(900000), true, []Status{StatusOK}, false},
		{"improvement",
			&base, mkCur(1500000), true, []Status{StatusOK}, false},
		{"regression beyond tolerance fails",
			&base, mkCur(800000), true, []Status{StatusRegression}, true},
		{"exactly at tolerance passes",
			&base, mkCur(850000), true, []Status{StatusOK}, false},
		{"cross-host regression is advisory",
			&base, mkCur(500000), false, []Status{StatusAdvisory}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cmp := Compare(c.baseline, c.current, 0.15, c.gated)
			if len(cmp.Deltas) != len(c.wantStatus) {
				t.Fatalf("got %d deltas, want %d", len(cmp.Deltas), len(c.wantStatus))
			}
			for i, want := range c.wantStatus {
				if cmp.Deltas[i].Status != want {
					t.Errorf("delta %d (%s): status %s, want %s",
						i, cmp.Deltas[i].Name, cmp.Deltas[i].Status, want)
				}
			}
			if cmp.Failed() != c.wantFailed {
				t.Errorf("Failed() = %v, want %v", cmp.Failed(), c.wantFailed)
			}
		})
	}
}
