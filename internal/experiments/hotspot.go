package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// hotspotMeasure is one per-cell measure reported by the hotspot figures.
type hotspotMeasure struct {
	id     string
	title  string
	ylabel string
	get    func(sim.CellMeasures) float64
}

// HotspotFigures sweeps the call arrival rate under a heterogeneous-load
// scenario and reports the spatial response of the cluster: one figure per
// measure, the per-cell values grouped by hex distance from the scenario's
// center cell (cells at equal distance are statistically identical under a
// radial scenario and are averaged; corridor scenarios group by distance
// from the corridor axis instead), one series per arrival rate. The set
// includes the handover-flow figure (hsp05), the signature measure of
// mobility scenarios: dwell-time multipliers skew it independently of the
// carried load. This is the first workload the analytical model cannot
// express — the simulator series are the reference, so no model curves
// appear. Options.Scenario selects the scenario (default: the built-in
// hotspot preset) and Options.Cells the cluster (default: the 19-cell hex
// ring, the smallest cluster with three distinct distance groups).
func HotspotFigures(o Options) ([]Figure, error) {
	o = o.withDefaults()
	if o.Cells == 0 {
		o.Cells = 19
	}
	spec := o.Scenario
	if spec == nil {
		s, err := scenario.Preset(scenario.Hotspot)
		if err != nil {
			return nil, err
		}
		spec = &s
	}
	o.Scenario = spec

	topo, err := cluster.Preset(o.Cells)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidOptions, err)
	}
	// Validate up front so a malformed spec (an out-of-range corridor axis,
	// say) is named precisely instead of surfacing as a nil distance vector
	// misdiagnosed below as a center/cluster mismatch.
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidOptions, err)
	}
	center := spec.Spatial.Center
	// Cells are grouped by the distance the scenario's shape is a function
	// of: perpendicular distance from the corridor axis for corridor shapes
	// (where cells at equal radial distance are not statistically identical),
	// radial hex distance from the center otherwise.
	xlabel := fmt.Sprintf("hex distance from scenario center (cell %d)", center)
	dist := topo.Distances(center)
	if spec.Spatial.Kind == scenario.Corridor {
		xlabel = fmt.Sprintf("hex distance from the corridor axis (axis %d through cell %d)", spec.Spatial.Axis, center)
		dist = topo.AxisDistances(center, spec.Spatial.Axis)
	}
	if dist == nil {
		return nil, fmt.Errorf("%w: scenario center %d outside the %d-cell cluster", ErrInvalidOptions, center, o.Cells)
	}
	groups := make(map[int][]int) // hex distance -> cell ids
	maxDist := 0
	for cell, d := range dist {
		groups[d] = append(groups[d], cell)
		if d > maxDist {
			maxDist = d
		}
	}
	distances := make([]float64, maxDist+1)
	for d := range distances {
		distances[d] = float64(d)
	}

	rates := callRates(o.Fidelity)
	name := spec.Name
	if name == "" {
		name = "scenario"
	}
	sums, err := simulateSweep(o, "hotspot sweep ("+name+")", traffic.Model3, rates, nil)
	if err != nil {
		return nil, err
	}

	measures := []hotspotMeasure{
		{"hsp01_cdt_percell", "carried data traffic per cell under the %q scenario (%d cells)",
			"carried data traffic (PDCHs)", func(m sim.CellMeasures) float64 { return m.CarriedDataTraffic }},
		{"hsp02_cvt_percell", "carried voice traffic per cell under the %q scenario (%d cells)",
			"carried voice traffic (channels)", func(m sim.CellMeasures) float64 { return m.CarriedVoiceTraffic }},
		{"hsp03_gsmblock_percell", "GSM blocking per cell under the %q scenario (%d cells)",
			"GSM blocking probability", func(m sim.CellMeasures) float64 { return m.GSMBlocking }},
		{"hsp04_ags_percell", "active GPRS sessions per cell under the %q scenario (%d cells)",
			"active GPRS sessions", func(m sim.CellMeasures) float64 { return m.AverageSessions }},
		// The mobility figure: outbound handover intensity per cell. Under a
		// pure rate scenario this follows the carried load; under a mobility
		// profile (highway, hotspot-pedestrian) the dwell-time multipliers
		// skew it independently of the load — the spatial signature the
		// paper's single dwell time cannot produce.
		{"hsp05_hoflow_percell", "outbound handover flow per cell under the %q scenario (%d cells)",
			"outbound handovers (1/s)",
			func(m sim.CellMeasures) float64 { return float64(m.HandoversOut) / o.SimMeasurementSec }},
		// The admission-policy figure: how often the configured policy steps
		// in, per cell — fresh calls turned away by a guard reservation,
		// handovers parked in the queue, and directed-retry forwards. Under
		// the paper's default policy the curve is identically zero; under the
		// policy presets (hotspot-guard, hotspot-hoqueue, highway-retry) it
		// shows where in the cluster the admission rule actually bites.
		{"hsp06_policy_percell", "handover-policy interventions per cell under the %q scenario (%d cells)",
			"policy interventions (1/s)",
			func(m sim.CellMeasures) float64 {
				return float64(m.GuardBlockedCalls+m.HandoversQueued+m.HandoverRetries) / o.SimMeasurementSec
			}},
	}

	figs := make([]Figure, 0, len(measures))
	for _, hm := range measures {
		fig := Figure{
			ID:     hm.id,
			Title:  fmt.Sprintf(hm.title, name, o.Cells),
			XLabel: xlabel,
			YLabel: hm.ylabel,
		}
		for ri, rate := range rates {
			fig.Series = append(fig.Series, distanceSeries(
				fmt.Sprintf("rate %.2g /s", rate), distances, groups, sums[ri], hm.get))
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// distanceSeries reduces one sweep point's per-cell report to a curve over
// hex distance: within each replication the cells of one distance group are
// averaged, and the cross-replication mean and confidence half-width of that
// group average form the point. The group averages pass through the
// summary's variance-reduction treatment (runner.Summary.EffectiveSamples),
// so antithetic pairs and control-variate adjustment shrink these error bars
// exactly like the mid-cell ones. With a single replication the half-width
// is +Inf, mirroring runner.Merge.
func distanceSeries(label string, distances []float64, groups map[int][]int,
	sum runner.Summary, get func(sim.CellMeasures) float64) Series {
	s := newSeries(label, distances)
	s.YErr = make([]float64, len(distances))
	// The simulator configurations of this package always run at the default
	// 0.95 confidence level; keep the error bars consistent with
	// seriesFromSummaries.
	const level = 0.95
	for d := range distances {
		cells := groups[d]
		samples := sum.EffectiveSamples(func(rep sim.Results) float64 {
			if len(rep.PerCell) == 0 {
				return 0
			}
			var groupMean float64
			for _, cell := range cells {
				groupMean += get(rep.PerCell[cell])
			}
			return groupMean / float64(len(cells))
		})
		iv := runner.SampleInterval(samples, level, sum.VR)
		s.Y[d] = iv.Mean
		s.YErr[d] = iv.HalfWidth
	}
	return s
}
