package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestHotspotFiguresShape runs the heterogeneous-load sweep on the seven-cell
// cluster at quick fidelity and checks the spatial response: the hotspot
// center must carry more voice traffic and block more GSM calls than the
// cells away from it.
func TestHotspotFiguresShape(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	o := testOptions()
	o.Cells = 7
	o.Replications = 2
	o.SimMeasurementSec = 600
	figs, err := HotspotFigures(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 6 {
		t.Fatalf("expected 6 hotspot figures, got %d", len(figs))
	}
	byID := map[string]Figure{}
	for _, fig := range figs {
		checkFigure(t, fig, len(callRates(Quick)))
		byID[fig.ID] = fig
		for _, s := range fig.Series {
			if len(s.X) != 2 { // seven-cell cluster: distances 0 and 1
				t.Errorf("%s %q: expected 2 distance groups, got %d", fig.ID, s.Label, len(s.X))
			}
			if s.YErr == nil {
				t.Errorf("%s %q: missing confidence half-widths", fig.ID, s.Label)
			}
		}
	}
	cvt := byID["hsp02_cvt_percell"]
	// At the highest arrival rate the overloaded center must stand out.
	last := cvt.Series[len(cvt.Series)-1]
	if !(last.Y[0] > last.Y[1]) {
		t.Errorf("hotspot center should carry more voice traffic than the ring: %v", last.Y)
	}
	block := byID["hsp03_gsmblock_percell"]
	lastB := block.Series[len(block.Series)-1]
	if !(lastB.Y[0] > lastB.Y[1]) {
		t.Errorf("hotspot center should block more GSM calls than the ring: %v", lastB.Y)
	}
	for _, y := range append(append([]float64{}, last.Y...), lastB.Y...) {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			t.Errorf("non-finite figure value %v", y)
		}
	}
	// The plain hotspot preset declares no admission policy, so the policy
	// intervention figure must be identically zero — non-zero values here
	// would mean the default rule consults the policy counters.
	for _, s := range byID["hsp06_policy_percell"].Series {
		for i, y := range s.Y {
			if y != 0 {
				t.Errorf("hsp06 %q point %d = %v, want 0 under the default admission policy", s.Label, i, y)
			}
		}
	}
}

// TestHotspotFiguresHighwayGroupsByAxis checks the mobility figure under a
// corridor scenario: cells group by distance from the corridor axis (not by
// radial distance), and the corridor cells' outbound handover flow (hsp05)
// exceeds the off-corridor cells' — the dwell-time skew the figure exists to
// show.
func TestHotspotFiguresHighwayGroupsByAxis(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	o := testOptions()
	o.Cells = 7
	o.Replications = 2
	o.SimMeasurementSec = 600
	spec, err := scenario.Preset("highway")
	if err != nil {
		t.Fatal(err)
	}
	o.Scenario = &spec
	figs, err := HotspotFigures(o)
	if err != nil {
		t.Fatal(err)
	}
	var flow Figure
	for _, fig := range figs {
		if fig.ID == "hsp05_hoflow_percell" {
			flow = fig
		}
	}
	if flow.ID == "" {
		t.Fatal("handover-flow figure missing")
	}
	if !strings.Contains(flow.XLabel, "corridor axis") {
		t.Errorf("corridor scenarios should group by axis distance, x label %q", flow.XLabel)
	}
	last := flow.Series[len(flow.Series)-1]
	if len(last.X) != 2 { // seven-cell cluster: axis distances 0 and 1
		t.Fatalf("expected 2 axis-distance groups, got %d", len(last.X))
	}
	if !(last.Y[0] > last.Y[1]) {
		t.Errorf("corridor cells should hand over more often than off-corridor cells: %v", last.Y)
	}
}

// TestHotspotFiguresHonorScenarioOption checks that an explicit scenario
// (here the gradient, centered on the mid cell) replaces the default hotspot
// preset.
func TestHotspotFiguresHonorScenarioOption(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	o := testOptions()
	o.Cells = 7
	o.Replications = 1
	o.SimMeasurementSec = 300
	spec, err := scenario.Preset(scenario.Gradient)
	if err != nil {
		t.Fatal(err)
	}
	o.Scenario = &spec
	figs, err := HotspotFigures(o)
	if err != nil {
		t.Fatal(err)
	}
	cvt := figs[1]
	last := cvt.Series[len(cvt.Series)-1]
	// The gradient preset underloads the center (weight 0.5) relative to the
	// edge (weight 1.5): the spatial response must flip.
	if !(last.Y[0] < last.Y[1]) {
		t.Errorf("gradient center should carry less voice traffic than the ring: %v", last.Y)
	}
}
