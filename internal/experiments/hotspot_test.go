package experiments

import (
	"math"
	"testing"

	"repro/internal/scenario"
)

// TestHotspotFiguresShape runs the heterogeneous-load sweep on the seven-cell
// cluster at quick fidelity and checks the spatial response: the hotspot
// center must carry more voice traffic and block more GSM calls than the
// cells away from it.
func TestHotspotFiguresShape(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	o := testOptions()
	o.Cells = 7
	o.Replications = 2
	o.SimMeasurementSec = 600
	figs, err := HotspotFigures(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("expected 4 hotspot figures, got %d", len(figs))
	}
	byID := map[string]Figure{}
	for _, fig := range figs {
		checkFigure(t, fig, len(callRates(Quick)))
		byID[fig.ID] = fig
		for _, s := range fig.Series {
			if len(s.X) != 2 { // seven-cell cluster: distances 0 and 1
				t.Errorf("%s %q: expected 2 distance groups, got %d", fig.ID, s.Label, len(s.X))
			}
			if s.YErr == nil {
				t.Errorf("%s %q: missing confidence half-widths", fig.ID, s.Label)
			}
		}
	}
	cvt := byID["hsp02_cvt_percell"]
	// At the highest arrival rate the overloaded center must stand out.
	last := cvt.Series[len(cvt.Series)-1]
	if !(last.Y[0] > last.Y[1]) {
		t.Errorf("hotspot center should carry more voice traffic than the ring: %v", last.Y)
	}
	block := byID["hsp03_gsmblock_percell"]
	lastB := block.Series[len(block.Series)-1]
	if !(lastB.Y[0] > lastB.Y[1]) {
		t.Errorf("hotspot center should block more GSM calls than the ring: %v", lastB.Y)
	}
	for _, y := range append(append([]float64{}, last.Y...), lastB.Y...) {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			t.Errorf("non-finite figure value %v", y)
		}
	}
}

// TestHotspotFiguresHonorScenarioOption checks that an explicit scenario
// (here the gradient, centered on the mid cell) replaces the default hotspot
// preset.
func TestHotspotFiguresHonorScenarioOption(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	o := testOptions()
	o.Cells = 7
	o.Replications = 1
	o.SimMeasurementSec = 300
	spec, err := scenario.Preset(scenario.Gradient)
	if err != nil {
		t.Fatal(err)
	}
	o.Scenario = &spec
	figs, err := HotspotFigures(o)
	if err != nil {
		t.Fatal(err)
	}
	cvt := figs[1]
	last := cvt.Series[len(cvt.Series)-1]
	// The gradient preset underloads the center (weight 0.5) relative to the
	// edge (weight 1.5): the spatial response must flip.
	if !(last.Y[0] < last.Y[1]) {
		t.Errorf("gradient center should carry less voice traffic than the ring: %v", last.Y)
	}
}
