// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5). Each generator returns one or more Figures — named
// series of a performance measure versus the GSM/GPRS call arrival rate — by
// sweeping the analytical model (and, for the validation figures, the
// detailed simulator) over the paper's parameter grid.
//
// All levels of the reproduction parallelize under one worker bound: figures
// run concurrently inside AllFigures, the model solutions of each figure's
// sweep run concurrently, and every simulator point runs Options.Replications
// independent replications concurrently through the runner package. A shared
// runner.Limiter keeps the total number of in-flight CPU-bound tasks at
// Options.Workers, and every fan-out writes results into pre-indexed slots,
// so the produced figures are identical regardless of the worker count.
//
// Two fidelity levels are supported. Full reproduces the paper's parameter
// setting (Table 2: 20 channels, K = 100, the Table 3 session limits) and is
// meant for the command-line harness, where a figure takes minutes to hours
// of CPU. Quick scales the cell down (10 channels, smaller buffer, smaller
// session limit, fewer sweep points, shorter simulation runs) so that the
// complete set of figures regenerates in a few minutes inside `go test
// -bench`; the qualitative shape of every curve (orderings, crossovers,
// saturation behaviour) is preserved. EXPERIMENTS.md records both.
//
// # Determinism contract
//
// Every produced figure is a pure function of its Options value — the worker
// count, the shard count, and the scheduling of figures, sweep points, and
// replications onto workers change only wall-clock time. The contract
// composes from the layers below, matching internal/shard and
// internal/runner:
//
//   - Model series: a steady-state solution depends only on (configuration,
//     tolerance, iteration bound). The shared cache is single-flight
//     memoization keyed by exactly that triple, so cache hits return the
//     same solution the solver would have produced.
//
//   - Simulator series: every sweep point calls runner.Run, whose summary is
//     bit-identical for a given (SimSeed, replication options) regardless of
//     how work is scheduled onto the pool. Adaptive precision mode
//     (Options.Precision) preserves this per pool width: the stopping
//     decision is a pure function of the merged results after each batch,
//     and the batch boundaries are quantized to the worker bound (the
//     runner's pool-sized growth), so the realized replication count of
//     every point — and with it every plotted value and error bar — is
//     reproducible for a given (options, Workers) pair; pin Workers
//     explicitly to reproduce adaptive sweeps across machines.
//
//   - Assembly: every fan-out writes into a slot pre-indexed by (series,
//     point), errors propagate from the lowest failing index, and series
//     built concurrently are appended in a fixed order afterwards, so figure
//     layout never depends on completion order.
package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ctmc"
	"repro/internal/partition"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// ErrInvalidOptions is returned for malformed experiment options.
var ErrInvalidOptions = errors.New("experiments: invalid options")

// Fidelity selects the parameter scale of an experiment run.
type Fidelity int

const (
	// Quick runs a scaled-down cell with a coarse sweep (default).
	Quick Fidelity = iota + 1
	// Full runs the paper's parameter setting.
	Full
)

// String returns the fidelity name.
func (f Fidelity) String() string {
	switch f {
	case Quick:
		return "quick"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("fidelity(%d)", int(f))
	}
}

// Options controls an experiment run.
type Options struct {
	// Fidelity selects Quick (default) or Full parameters.
	Fidelity Fidelity
	// Workers bounds the number of model solutions computed concurrently;
	// the zero value means runtime.NumCPU().
	Workers int
	// Tolerance is the steady-state solver tolerance; the zero value means
	// 1e-7 for Quick and 1e-8 for Full.
	Tolerance float64
	// MaxIterations bounds the solver sweeps; the zero value means 20000.
	MaxIterations int
	// WithSimulation adds detailed-simulator series to the validation figures
	// (Fig. 5 and Fig. 6). It is implied for those figures; setting it false
	// skips the simulator to keep benchmark runs fast.
	WithSimulation bool
	// SimSeed is the base seed of the simulator replications; replication i
	// of every point runs with runner.SeedFor(SimSeed, i).
	SimSeed int64
	// SimMeasurementSec overrides the simulated measurement time per point;
	// the zero value means 4000 s for Quick and 20000 s for Full.
	SimMeasurementSec float64
	// Replications is the number of independent simulator replications per
	// validation point; the confidence half-widths of simulator series come
	// from across the replications. The zero value means 3 for Quick and 5
	// for Full. Ignored when Precision > 0.
	Replications int
	// Precision, when > 0, replaces the fixed replication count with the
	// runner's adaptive stopping rule: every simulator point replicates
	// until the relative confidence half-width of Target reaches Precision,
	// within [MinReplications, MaxReplications]. Cheap sweep points then
	// stop early while saturated ones keep refining.
	Precision float64
	// Target is the measure the stopping rule watches (default: the GPRS
	// throughput). Ignored when Precision is 0.
	Target runner.Measure
	// MinReplications and MaxReplications bound the adaptive replication
	// count; zero values use the runner defaults (4 and 64).
	MinReplications int
	MaxReplications int
	// VR selects a variance-reduction scheme for every simulator point:
	// antithetic replication pairs or the Erlang-B control-variate
	// estimator (which requires the uniform baseline load — combining it
	// with Scenario is an error).
	VR runner.VarianceReduction
	// Cells selects the simulated cluster size of the validation figures:
	// 0 or 7 is the paper's seven-cell cluster; 19 and 37 select the
	// generated wrap-around hex-ring clusters (cluster.Preset).
	Cells int
	// Shards, when > 1, runs every simulator replication on the sharded
	// multi-cell engine with that many cell groups advanced in parallel,
	// still bounded — together with all other work — by the shared limiter.
	// Results are identical to the serial engine.
	Shards int
	// Partition, when non-nil, pins the cell→group assignment of the sharded
	// engine (internal/partition) on every simulator run; nil keeps the
	// default locality-aware grouping with one group per worker. Like Shards
	// it never affects results, only how the run is scheduled.
	Partition *partition.Spec
	// Scenario, when non-nil, installs the heterogeneous-load workload
	// scenario (hotspot cells, load gradients, busy-hour ramps — see
	// internal/scenario) on every simulator run. The analytical model knows
	// only the symmetric load, so under a non-uniform scenario the simulator
	// series are the reference and the model series keep their symmetric
	// meaning. Nil means the uniform load of the paper.
	Scenario *scenario.Spec
	// Policy, when non-nil, installs the handover admission policy (guard
	// channels, queued handovers, directed retry — see internal/policy) on
	// every simulator run, overriding any policy the Scenario declares. Nil
	// keeps the scenario's policy, or the paper's default admission rule
	// when the scenario declares none.
	Policy *policy.Config
	// Progress, when non-nil, receives one human-readable line per completed
	// unit of work (a finished figure, a simulated point). Calls are
	// serialized but may arrive in any order.
	Progress func(msg string)
	// ProgressRecord, when non-nil, receives the same completion events as
	// Progress in structured form (figure id, point counts, replication
	// counts, convergence state), for machine-readable progress streams.
	// Calls are serialized with Progress calls but may arrive in any order.
	ProgressRecord func(ev ProgressEvent)

	// limiter is the shared semaphore bounding the number of concurrently
	// active model solutions and simulator runs across every level of
	// parallelism (figures, points, replications). withDefaults installs one
	// sized Workers; AllFigures hands the same limiter to all figures.
	limiter *runner.Limiter
	// admission bounds how many simulators are live at once when Shards > 1
	// (the CPU bound then moves to the shard workers, which draw from
	// limiter; see runner.Options.Admission). Installed by withDefaults and
	// shared across all figures and sweep points of one run.
	admission *runner.Limiter
	// cache memoizes steady-state solutions across all figures sharing this
	// Options value; installed by withDefaults, shared by AllFigures.
	cache *solveCache
	// progressMu serializes Progress calls across all levels of parallelism
	// that share this Options value; installed by withDefaults.
	progressMu *sync.Mutex
}

func (o Options) withDefaults() Options {
	if o.Fidelity == 0 {
		o.Fidelity = Quick
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.Tolerance <= 0 {
		// A calibration run against a 1e-9 reference solution showed that
		// 1e-6 already reproduces CDT, PLP, QD and ATU to 4-5 significant
		// digits on the full Table 2 state space at roughly half the sweeps.
		o.Tolerance = 1e-6
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 20000
	}
	if o.SimSeed == 0 {
		o.SimSeed = 1
	}
	if o.SimMeasurementSec <= 0 {
		if o.Fidelity == Full {
			o.SimMeasurementSec = 20000
		} else {
			o.SimMeasurementSec = 4000
		}
	}
	if o.Replications <= 0 {
		if o.Fidelity == Full {
			o.Replications = 5
		} else {
			o.Replications = 3
		}
	}
	if o.limiter == nil {
		o.limiter = runner.NewLimiter(o.Workers)
	}
	if o.admission == nil && o.Shards > 1 {
		o.admission = runner.NewLimiter(o.Workers)
	}
	if o.cache == nil {
		o.cache = newSolveCache()
	}
	if o.progressMu == nil {
		o.progressMu = &sync.Mutex{}
	}
	return o
}

// progress emits one progress line if a callback is installed. Calls are
// serialized across every fan-out sharing this Options value.
func (o Options) progress(format string, args ...any) {
	if o.Progress == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	o.progressMu.Lock()
	defer o.progressMu.Unlock()
	o.Progress(msg)
}

// ProgressEvent is one structured completion event of an experiment run,
// delivered through Options.ProgressRecord.
type ProgressEvent struct {
	// Kind discriminates the event: "point" for a completed sweep point,
	// "group" for a completed figure group.
	Kind string `json:"kind"`
	// Figure identifies the figure (point events) or figure group (group
	// events) the unit of work belongs to.
	Figure string `json:"figure"`
	// Done counts completed units of the event's kind: sweep points of the
	// figure, or figure groups of the run.
	Done int `json:"done"`
	// Total counts the planned units of the event's kind.
	Total int `json:"total"`
	// Replications is the realized replication count of a completed point
	// (zero for group events).
	Replications int `json:"replications,omitempty"`
	// Adaptive marks a completed point whose replication count came from the
	// precision-targeted stopping rule rather than a fixed setting.
	Adaptive bool `json:"adaptive,omitempty"`
	// Converged reports whether an adaptive point met its precision target
	// before hitting the replication cap.
	Converged bool `json:"converged,omitempty"`
	// RelativeHalfWidth is the realized relative confidence half-width of
	// the adaptive target measure at a completed point.
	RelativeHalfWidth float64 `json:"relative_half_width,omitempty"`
}

// record emits one structured progress event if a recorder is installed,
// serialized with the human-readable progress stream.
func (o Options) record(ev ProgressEvent) {
	if o.ProgressRecord == nil {
		return
	}
	o.progressMu.Lock()
	defer o.progressMu.Unlock()
	o.ProgressRecord(ev)
}

// Series is one curve of a figure: a performance measure versus the total
// call arrival rate.
type Series struct {
	// Label identifies the curve (e.g. "1 PDCH", "eta = 0.7", "simulation").
	Label string
	// X holds the call arrival rates (calls/s).
	X []float64
	// Y holds the measure values.
	Y []float64
	// YErr optionally holds confidence half-widths (simulator series only).
	YErr []float64
}

// Figure is a reproduced figure: a set of series over a common x axis.
type Figure struct {
	// ID is the figure identifier used for file names (e.g. "fig08_plp_tm1").
	ID string
	// Title describes the figure.
	Title string
	// XLabel and YLabel name the axes.
	XLabel string
	YLabel string
	// Series holds the curves.
	Series []Series
}

// callRates returns the arrival-rate sweep of the experiments.
func callRates(f Fidelity) []float64 {
	if f == Full {
		return []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	return []float64{0.1, 0.3, 0.6, 1.0}
}

// baseConfig returns the analytical-model configuration for the experiment
// fidelity: the paper's Table 2 setting for Full, a proportionally
// scaled-down cell for Quick.
func baseConfig(f Fidelity, model traffic.Model, rate float64) core.Config {
	cfg := core.BaseConfig(model, rate)
	if f == Full {
		return cfg
	}
	// Quick: half the channels, a smaller BSC buffer and session limit. The
	// offered load per channel stays comparable, so the curves keep their
	// shape while the state space shrinks by roughly two orders of magnitude.
	cfg.Channels.TotalChannels = 10
	cfg.BufferSize = 30
	if cfg.MaxSessions > 10 {
		cfg.MaxSessions = 10
	}
	return cfg
}

// simConfig mirrors baseConfig for the detailed simulator.
func simConfig(o Options, model traffic.Model, rate float64) sim.Config {
	cfg := sim.DefaultConfig(model, rate)
	if o.Fidelity != Full {
		cfg.Channels.TotalChannels = 10
		cfg.BufferSize = 30
		if cfg.MaxSessions > 10 {
			cfg.MaxSessions = 10
		}
		cfg.WarmupSec = 500
		cfg.Batches = 5
	}
	cfg.MeasurementSec = o.SimMeasurementSec
	cfg.Seed = o.SimSeed
	return cfg
}

// solvePoint builds and solves the analytical model for one configuration,
// memoizing (configuration, tolerance) pairs in the run's shared cache so
// figures sweeping overlapping parameter grids — and the second panel of
// every two-panel figure — reuse solutions instead of re-solving.
func solvePoint(cfg core.Config, o Options) (core.Measures, error) {
	key := solveKey{cfg: cfg, tolerance: o.Tolerance, maxIterations: o.MaxIterations}
	return o.cache.solve(key, func() (core.Measures, error) {
		model, err := core.New(cfg)
		if err != nil {
			return core.Measures{}, err
		}
		res, err := model.Solve(ctmc.SolveOptions{
			Tolerance:     o.Tolerance,
			MaxIterations: o.MaxIterations,
		})
		if err != nil {
			return core.Measures{}, err
		}
		return res.Measures, nil
	})
}

// sweepJob is one model solution in a sweep: a configuration plus the slot
// its result lands in.
type sweepJob struct {
	cfg    core.Config
	series int
	point  int
}

// sweep solves a grid of configurations concurrently — bounded by the shared
// limiter so nested figure-level parallelism cannot oversubscribe the CPU —
// and fills the target figure series through the extract callback. Each job
// writes to its own (series, point) slot, so the filled series do not depend
// on the schedule.
func sweep(jobs []sweepJob, o Options, extract func(core.Measures) float64, series []Series) error {
	return runner.ForEach(o.limiter, len(jobs), func(k int) error {
		job := jobs[k]
		meas, err := solvePoint(job.cfg, o)
		if err != nil {
			return err
		}
		series[job.series].Y[job.point] = extract(meas)
		return nil
	})
}

// simulateSweep runs the replicated detailed simulator over the rate grid and
// returns one merged summary per point. Points run concurrently and each
// point's replications run concurrently, all bounded by the shared limiter;
// the outer fan-outs hold no limiter tokens themselves, so nesting cannot
// deadlock. mutate, when non-nil, adjusts the per-point configuration (e.g.
// the GPRS fraction). The summaries are bit-identical for a given (SimSeed,
// Replications) regardless of the worker count.
func simulateSweep(o Options, figID string, model traffic.Model, rates []float64, mutate func(*sim.Config)) ([]runner.Summary, error) {
	var topo *cluster.Topology
	if o.Cells != 0 {
		var err error
		if topo, err = cluster.Preset(o.Cells); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidOptions, err)
		}
	}
	sums := make([]runner.Summary, len(rates))
	var mu sync.Mutex
	done := 0
	err := runner.ForEach(nil, len(rates), func(i int) error {
		cfg := simConfig(o, model, rates[i])
		cfg.Topology = topo
		cfg.Partition = o.Partition
		if mutate != nil {
			mutate(&cfg)
		}
		if o.Scenario != nil {
			// Compiled after mutate so the profile picks up per-figure rate
			// splits (e.g. a mutated GPRS fraction) through BaseRates.
			if _, err := scenario.Apply(&cfg, *o.Scenario); err != nil {
				return fmt.Errorf("%w: %v", ErrInvalidOptions, err)
			}
		}
		if o.Policy != nil {
			// Installed after the scenario so an explicit policy option
			// overrides the spec's declaration; the None kind explicitly
			// restores the paper's default admission rule.
			cfg.Policy = nil
			if o.Policy.Kind != policy.None {
				cfg.Policy = o.Policy
			}
		}
		sum, err := runner.Run(cfg, runner.Options{
			Replications:    o.Replications,
			BaseSeed:        o.SimSeed,
			ConfidenceLevel: cfg.ConfidenceLevel,
			Limiter:         o.limiter,
			Shards:          o.Shards,
			Admission:       o.admission,
			Precision:       o.Precision,
			Target:          o.Target,
			MinReplications: o.MinReplications,
			MaxReplications: o.MaxReplications,
			VR:              o.VR,
		})
		if err != nil {
			return fmt.Errorf("simulation at rate %g: %w", rates[i], err)
		}
		sums[i] = sum
		note := ""
		if sum.Adaptive {
			note = ", hit replication cap"
			if sum.Converged {
				note = fmt.Sprintf(", converged at %.2g relative half-width", sum.RelativeHalfWidth)
			}
		}
		mu.Lock()
		done++
		o.progress("%s: simulated point %d/%d (%d replications%s)", figID, done, len(rates), sum.Replications, note)
		o.record(ProgressEvent{
			Kind:              "point",
			Figure:            figID,
			Done:              done,
			Total:             len(rates),
			Replications:      sum.Replications,
			Adaptive:          sum.Adaptive,
			Converged:         sum.Converged,
			RelativeHalfWidth: sum.RelativeHalfWidth,
		})
		mu.Unlock()
		return nil
	})
	return sums, err
}

// seriesFromSummaries builds a simulator series from per-point summaries: the
// point estimate is the cross-replication mean and YErr its confidence
// half-width.
func seriesFromSummaries(label string, rates []float64, sums []runner.Summary,
	get func(sim.Results) stats.Interval) Series {
	s := newSeries(label, rates)
	s.YErr = make([]float64, len(rates))
	for i, sum := range sums {
		iv := get(sum.Merged)
		s.Y[i] = iv.Mean
		s.YErr[i] = iv.HalfWidth
	}
	return s
}

// newSeries allocates a series with the given label over the x grid.
func newSeries(label string, x []float64) Series {
	return Series{
		Label: label,
		X:     append([]float64(nil), x...),
		Y:     make([]float64, len(x)),
	}
}

// sortSeries orders the series of a figure by label for deterministic output.
func sortSeries(fig *Figure) {
	sort.SliceStable(fig.Series, func(i, j int) bool {
		return fig.Series[i].Label < fig.Series[j].Label
	})
}
