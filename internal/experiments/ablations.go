package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ctmc"
	"repro/internal/traffic"
)

// SolverComparison is the result of solving the same model with one iteration
// scheme (the solver ablation of DESIGN.md).
type SolverComparison struct {
	Method     ctmc.Method
	Iterations int
	Residual   float64
	Converged  bool
	CDT        float64
	PLP        float64
}

// SolverAblation solves a quick-fidelity traffic-model-3 configuration with
// every available steady-state method and reports iteration counts and the
// resulting headline measures. All methods must agree on the measures; the
// iteration counts quantify why Gauss–Seidel is the default.
func SolverAblation(o Options) ([]SolverComparison, error) {
	o = o.withDefaults()
	cfg := baseConfig(Quick, traffic.Model3, 0.6)
	model, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	methods := []ctmc.Method{ctmc.GaussSeidel, ctmc.Jacobi, ctmc.Power}
	out := make([]SolverComparison, 0, len(methods))
	for _, method := range methods {
		res, err := model.Solve(ctmc.SolveOptions{
			Method:        method,
			Tolerance:     o.Tolerance,
			MaxIterations: 200000,
			Parallel:      method != ctmc.GaussSeidel,
		})
		if err != nil {
			return out, fmt.Errorf("%v: %w", method, err)
		}
		out = append(out, SolverComparison{
			Method:     method,
			Iterations: res.Solver.Iterations,
			Residual:   res.Solver.Residual,
			Converged:  res.Solver.Converged,
			CDT:        res.Measures.CarriedDataTraffic,
			PLP:        res.Measures.PacketLossProbability,
		})
	}
	return out, nil
}

// HandoverAblation compares the balanced handover fixed point (Eqs. 4-5)
// against the naive initialization (incoming handover rate = fresh arrival
// rate), quantifying how much the balancing procedure matters for the
// reported measures.
type HandoverAblation struct {
	// BalancedHandoverRate is the fixed-point incoming GPRS handover rate.
	BalancedHandoverRate float64
	// NaiveHandoverRate is the initialization lambda_h = lambda.
	NaiveHandoverRate float64
	// BalancedAGS and NaiveAGS are the resulting average session counts.
	BalancedAGS float64
	NaiveAGS    float64
	// Iterations is the number of fixed-point iterations needed.
	Iterations int
}

// HandoverBalancingAblation runs the ablation for the given traffic model and
// call arrival rate at quick fidelity.
func HandoverBalancingAblation(model traffic.Model, rate float64) (HandoverAblation, error) {
	cfg := baseConfig(Quick, model, rate)
	m, err := core.New(cfg)
	if err != nil {
		return HandoverAblation{}, err
	}
	balance := m.GPRSHandover()
	rates := cfg.DeriveRates()

	// Naive: treat the fresh session arrival rate as the incoming handover
	// rate without iterating.
	naiveSystem := balance.System
	naiveSystem.Lambda = rates.NewGPRSSessionRate * 2
	naiveAGS, err := naiveSystem.MeanBusyServers()
	if err != nil {
		return HandoverAblation{}, err
	}
	balancedAGS, err := balance.System.MeanBusyServers()
	if err != nil {
		return HandoverAblation{}, err
	}
	return HandoverAblation{
		BalancedHandoverRate: balance.HandoverRate,
		NaiveHandoverRate:    rates.NewGPRSSessionRate,
		BalancedAGS:          balancedAGS,
		NaiveAGS:             naiveAGS,
		Iterations:           balance.Iterations,
	}, nil
}

// AggregationCheck verifies the MMPP aggregation of Section 4.1 numerically:
// the average aggregate packet arrival rate of the (m+1)-state MMPP weighted
// by its binomial stationary distribution must equal m times the per-session
// IPP mean rate. It returns the maximum relative error over m = 1..limit.
func AggregationCheck(model traffic.Model, limit int) float64 {
	ipp := model.Spec().Session.IPP()
	var worst float64
	for m := 1; m <= limit; m++ {
		agg := traffic.AggregateMMPP{Source: ipp, M: m}
		dist := agg.StationaryDistribution()
		var mean float64
		for r, p := range dist {
			mean += p * agg.ArrivalRate(r)
		}
		want := agg.MeanAggregateRate()
		if want == 0 {
			continue
		}
		rel := mean/want - 1
		if rel < 0 {
			rel = -rel
		}
		if rel > worst {
			worst = rel
		}
	}
	return worst
}
