package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// Fig5ThresholdCalibration reproduces Fig. 5: the packet loss probability
// versus the call arrival rate for different TCP flow-control thresholds eta,
// compared against the detailed simulator (traffic model 3, 1 reserved PDCH).
func Fig5ThresholdCalibration(o Options) (Figure, error) {
	o = o.withDefaults()
	rates := callRates(o.Fidelity)
	etas := []float64{0.5, 0.7, 0.9, 1.0}

	fig := Figure{
		ID:     "fig05_plp_vs_eta",
		Title:  "Calibrating the threshold eta to represent TCP flow control (traffic model 3)",
		XLabel: "GSM/GPRS call arrival rate (1/s)",
		YLabel: "packet loss probability",
	}
	var jobs []sweepJob
	for si, eta := range etas {
		fig.Series = append(fig.Series, newSeries(fmt.Sprintf("eta = %.1f", eta), rates))
		for pi, rate := range rates {
			cfg := baseConfig(o.Fidelity, traffic.Model3, rate)
			cfg.FlowControlThreshold = eta
			jobs = append(jobs, sweepJob{cfg: cfg, series: si, point: pi})
		}
	}
	err := sweep(jobs, o, func(m core.Measures) float64 { return m.PacketLossProbability }, fig.Series)
	if err != nil {
		return fig, err
	}
	if o.WithSimulation {
		sums, err := simulateSweep(o, fig.ID, traffic.Model3, rates, nil)
		if err != nil {
			return fig, err
		}
		fig.Series = append(fig.Series, seriesFromSummaries("simulation (TCP)", rates, sums,
			func(r sim.Results) stats.Interval { return r.PacketLossProbability }))
	}
	return fig, nil
}

// Fig6Validation reproduces Fig. 6: carried data traffic and throughput per
// user versus the call arrival rate for different percentages of GPRS users,
// Markov model against the detailed simulator (traffic model 3, 1 reserved
// PDCH).
func Fig6Validation(o Options) ([]Figure, error) {
	o = o.withDefaults()
	rates := callRates(o.Fidelity)
	fractions := []float64{0.02, 0.05, 0.10}

	cdt := Figure{
		ID:     "fig06_cdt_validation",
		Title:  "Validation of the Markov model: carried data traffic (traffic model 3, 1 PDCH)",
		XLabel: "GSM/GPRS call arrival rate (1/s)",
		YLabel: "carried data traffic (PDCHs)",
	}
	atu := Figure{
		ID:     "fig06_atu_validation",
		Title:  "Validation of the Markov model: throughput per user (traffic model 3, 1 PDCH)",
		XLabel: "GSM/GPRS call arrival rate (1/s)",
		YLabel: "throughput per user (bit/s)",
	}

	var jobs []sweepJob
	for si, f := range fractions {
		label := fmt.Sprintf("model, %d%% GPRS users", int(f*100))
		cdt.Series = append(cdt.Series, newSeries(label, rates))
		atu.Series = append(atu.Series, newSeries(label, rates))
		for pi, rate := range rates {
			cfg := baseConfig(o.Fidelity, traffic.Model3, rate)
			cfg.GPRSFraction = f
			jobs = append(jobs, sweepJob{cfg: cfg, series: si, point: pi})
		}
	}
	if err := sweep(jobs, o, func(m core.Measures) float64 { return m.CarriedDataTraffic }, cdt.Series); err != nil {
		return nil, err
	}
	if err := sweep(jobs, o, func(m core.Measures) float64 { return m.ThroughputPerUserBits }, atu.Series); err != nil {
		return nil, err
	}

	if o.WithSimulation {
		// The fractions fan out concurrently on top of the per-point and
		// per-replication parallelism inside simulateSweep; the shared limiter
		// keeps the number of active simulator runs bounded. Series are
		// appended in fraction order afterwards, so the figure layout does not
		// depend on completion order.
		perFraction := make([][]runner.Summary, len(fractions))
		err := runner.ForEach(nil, len(fractions), func(fi int) error {
			tag := fmt.Sprintf("%s (%d%% GPRS)", cdt.ID, int(fractions[fi]*100))
			sums, err := simulateSweep(o, tag, traffic.Model3, rates, func(cfg *sim.Config) {
				cfg.GPRSFraction = fractions[fi]
			})
			perFraction[fi] = sums
			return err
		})
		if err != nil {
			return nil, err
		}
		for fi, f := range fractions {
			label := fmt.Sprintf("simulation, %d%% GPRS users", int(f*100))
			cdt.Series = append(cdt.Series, seriesFromSummaries(label, rates, perFraction[fi],
				func(r sim.Results) stats.Interval { return r.CarriedDataTraffic }))
			atu.Series = append(atu.Series, seriesFromSummaries(label, rates, perFraction[fi],
				func(r sim.Results) stats.Interval { return r.ThroughputPerUserBits }))
		}
	}
	return []Figure{cdt, atu}, nil
}

// figPerPDCH sweeps a measure over the reserved-PDCH grid for one traffic
// model (the template of Figs. 7-9).
func figPerPDCH(o Options, id, title, ylabel string, model traffic.Model, pdchs []int,
	extract func(core.Measures) float64) (Figure, error) {
	rates := callRates(o.Fidelity)
	fig := Figure{
		ID:     id,
		Title:  title,
		XLabel: "GSM/GPRS call arrival rate (1/s)",
		YLabel: ylabel,
	}
	var jobs []sweepJob
	for si, pdch := range pdchs {
		fig.Series = append(fig.Series, newSeries(fmt.Sprintf("%d reserved PDCH", pdch), rates))
		for pi, rate := range rates {
			cfg := baseConfig(o.Fidelity, model, rate)
			cfg.Channels.ReservedPDCH = pdch
			jobs = append(jobs, sweepJob{cfg: cfg, series: si, point: pi})
		}
	}
	err := sweep(jobs, o, extract, fig.Series)
	return fig, err
}

// Fig7CDT reproduces Fig. 7: carried data traffic for traffic models 1 and 2
// with 1, 2, and 4 reserved PDCHs.
func Fig7CDT(o Options) ([]Figure, error) {
	o = o.withDefaults()
	var figs []Figure
	for _, model := range []traffic.Model{traffic.Model1, traffic.Model2} {
		fig, err := figPerPDCH(o,
			fmt.Sprintf("fig07_cdt_tm%d", model),
			fmt.Sprintf("Carried data traffic, %v", model),
			"carried data traffic (PDCHs)",
			model, []int{1, 2, 4},
			func(m core.Measures) float64 { return m.CarriedDataTraffic })
		if err != nil {
			return figs, err
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Fig8PLP reproduces Fig. 8: packet loss probability for traffic models 1 and
// 2 with 1, 2, and 4 reserved PDCHs.
func Fig8PLP(o Options) ([]Figure, error) {
	o = o.withDefaults()
	var figs []Figure
	for _, model := range []traffic.Model{traffic.Model1, traffic.Model2} {
		fig, err := figPerPDCH(o,
			fmt.Sprintf("fig08_plp_tm%d", model),
			fmt.Sprintf("Packet loss probability, %v", model),
			"packet loss probability",
			model, []int{1, 2, 4},
			func(m core.Measures) float64 { return m.PacketLossProbability })
		if err != nil {
			return figs, err
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Fig9QD reproduces Fig. 9: queueing delay for traffic models 1 and 2 with 1,
// 2, and 4 reserved PDCHs.
func Fig9QD(o Options) ([]Figure, error) {
	o = o.withDefaults()
	var figs []Figure
	for _, model := range []traffic.Model{traffic.Model1, traffic.Model2} {
		fig, err := figPerPDCH(o,
			fmt.Sprintf("fig09_qd_tm%d", model),
			fmt.Sprintf("Queueing delay, %v", model),
			"queueing delay (s)",
			model, []int{1, 2, 4},
			func(m core.Measures) float64 { return m.QueueingDelay })
		if err != nil {
			return figs, err
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Fig10SessionLimit reproduces Fig. 10: carried data traffic and GPRS session
// blocking probability for traffic model 1 with session limits M = 50, 100,
// 150 (scaled to 10/20/30 in quick mode).
func Fig10SessionLimit(o Options) ([]Figure, error) {
	o = o.withDefaults()
	rates := callRates(o.Fidelity)
	limits := []int{50, 100, 150}
	if o.Fidelity != Full {
		limits = []int{10, 20, 30}
	}

	cdt := Figure{
		ID:     "fig10_cdt_session_limit",
		Title:  "Carried data traffic for different session limits M (traffic model 1, 2 PDCHs)",
		XLabel: "GSM/GPRS call arrival rate (1/s)",
		YLabel: "carried data traffic (PDCHs)",
	}
	blocking := Figure{
		ID:     "fig10_blocking_session_limit",
		Title:  "GPRS session blocking probability for different session limits M (traffic model 1)",
		XLabel: "GSM/GPRS call arrival rate (1/s)",
		YLabel: "GPRS session blocking probability",
	}

	var jobs []sweepJob
	for si, limit := range limits {
		label := fmt.Sprintf("M = %d", limit)
		cdt.Series = append(cdt.Series, newSeries(label, rates))
		blocking.Series = append(blocking.Series, newSeries(label, rates))
		for pi, rate := range rates {
			cfg := baseConfig(o.Fidelity, traffic.Model1, rate)
			cfg.Channels.ReservedPDCH = 2
			cfg.MaxSessions = limit
			jobs = append(jobs, sweepJob{cfg: cfg, series: si, point: pi})
		}
	}
	if err := sweep(jobs, o, func(m core.Measures) float64 { return m.CarriedDataTraffic }, cdt.Series); err != nil {
		return nil, err
	}
	if err := sweep(jobs, o, func(m core.Measures) float64 { return m.GPRSBlockingProbability }, blocking.Series); err != nil {
		return nil, err
	}
	return []Figure{cdt, blocking}, nil
}

// FigCDTandATU reproduces the template of Figs. 11-13: carried data traffic
// and throughput per user versus the call arrival rate for 0, 1, 2, and 4
// reserved PDCHs at the given fraction of GPRS users (traffic model 3).
func FigCDTandATU(gprsFraction float64, o Options) ([]Figure, error) {
	o = o.withDefaults()
	rates := callRates(o.Fidelity)
	pdchs := []int{0, 1, 2, 4}
	pct := int(gprsFraction * 100)

	cdt := Figure{
		ID:     fmt.Sprintf("fig_cdt_%02dpct", pct),
		Title:  fmt.Sprintf("Carried data traffic for %d%% GPRS users (traffic model 3)", pct),
		XLabel: "GSM/GPRS call arrival rate (1/s)",
		YLabel: "carried data traffic (PDCHs)",
	}
	atu := Figure{
		ID:     fmt.Sprintf("fig_atu_%02dpct", pct),
		Title:  fmt.Sprintf("Throughput per user for %d%% GPRS users (traffic model 3)", pct),
		XLabel: "GSM/GPRS call arrival rate (1/s)",
		YLabel: "throughput per user (bit/s)",
	}

	var jobs []sweepJob
	for si, pdch := range pdchs {
		label := fmt.Sprintf("%d reserved PDCH", pdch)
		cdt.Series = append(cdt.Series, newSeries(label, rates))
		atu.Series = append(atu.Series, newSeries(label, rates))
		for pi, rate := range rates {
			cfg := baseConfig(o.Fidelity, traffic.Model3, rate)
			cfg.GPRSFraction = gprsFraction
			cfg.Channels.ReservedPDCH = pdch
			jobs = append(jobs, sweepJob{cfg: cfg, series: si, point: pi})
		}
	}
	if err := sweep(jobs, o, func(m core.Measures) float64 { return m.CarriedDataTraffic }, cdt.Series); err != nil {
		return nil, err
	}
	if err := sweep(jobs, o, func(m core.Measures) float64 { return m.ThroughputPerUserBits }, atu.Series); err != nil {
		return nil, err
	}
	return []Figure{cdt, atu}, nil
}

// Fig11TwoPercent reproduces Fig. 11 (2% GPRS users).
func Fig11TwoPercent(o Options) ([]Figure, error) { return FigCDTandATU(0.02, o) }

// Fig12FivePercent reproduces Fig. 12 (5% GPRS users).
func Fig12FivePercent(o Options) ([]Figure, error) { return FigCDTandATU(0.05, o) }

// Fig13TenPercent reproduces Fig. 13 (10% GPRS users).
func Fig13TenPercent(o Options) ([]Figure, error) { return FigCDTandATU(0.10, o) }

// Fig14VoiceImpact reproduces Fig. 14: carried voice traffic and GSM voice
// blocking probability for different numbers of reserved PDCHs (95% GSM
// users, traffic model 3).
func Fig14VoiceImpact(o Options) ([]Figure, error) {
	o = o.withDefaults()
	rates := callRates(o.Fidelity)
	pdchs := []int{0, 1, 2, 4}

	cvt := Figure{
		ID:     "fig14_cvt",
		Title:  "Influence of GPRS on the GSM voice service: carried voice traffic (95% GSM calls)",
		XLabel: "GSM/GPRS call arrival rate (1/s)",
		YLabel: "carried voice traffic (channels)",
	}
	blocking := Figure{
		ID:     "fig14_voice_blocking",
		Title:  "Influence of GPRS on the GSM voice service: voice blocking probability (95% GSM calls)",
		XLabel: "GSM/GPRS call arrival rate (1/s)",
		YLabel: "GSM voice blocking probability",
	}

	var jobs []sweepJob
	for si, pdch := range pdchs {
		label := fmt.Sprintf("%d reserved PDCH", pdch)
		cvt.Series = append(cvt.Series, newSeries(label, rates))
		blocking.Series = append(blocking.Series, newSeries(label, rates))
		for pi, rate := range rates {
			cfg := baseConfig(o.Fidelity, traffic.Model3, rate)
			cfg.Channels.ReservedPDCH = pdch
			jobs = append(jobs, sweepJob{cfg: cfg, series: si, point: pi})
		}
	}
	if err := sweep(jobs, o, func(m core.Measures) float64 { return m.CarriedVoiceTraffic }, cvt.Series); err != nil {
		return nil, err
	}
	if err := sweep(jobs, o, func(m core.Measures) float64 { return m.GSMBlockingProbability }, blocking.Series); err != nil {
		return nil, err
	}
	return []Figure{cvt, blocking}, nil
}

// Fig15GPRSPopulation reproduces Fig. 15: average number of GPRS users in the
// cell and GPRS session blocking probability for 2%, 5%, and 10% GPRS users
// (traffic model 3).
func Fig15GPRSPopulation(o Options) ([]Figure, error) {
	o = o.withDefaults()
	rates := callRates(o.Fidelity)
	fractions := []float64{0.02, 0.05, 0.10}

	ags := Figure{
		ID:     "fig15_avg_gprs_users",
		Title:  "Average number of GPRS users in the cell (traffic model 3)",
		XLabel: "GSM/GPRS call arrival rate (1/s)",
		YLabel: "average number of active GPRS sessions",
	}
	blocking := Figure{
		ID:     "fig15_gprs_blocking",
		Title:  "GPRS session blocking probability (traffic model 3)",
		XLabel: "GSM/GPRS call arrival rate (1/s)",
		YLabel: "GPRS session blocking probability",
	}

	var jobs []sweepJob
	for si, f := range fractions {
		label := fmt.Sprintf("%d%% GPRS users", int(f*100))
		ags.Series = append(ags.Series, newSeries(label, rates))
		blocking.Series = append(blocking.Series, newSeries(label, rates))
		for pi, rate := range rates {
			cfg := baseConfig(o.Fidelity, traffic.Model3, rate)
			cfg.GPRSFraction = f
			jobs = append(jobs, sweepJob{cfg: cfg, series: si, point: pi})
		}
	}
	if err := sweep(jobs, o, func(m core.Measures) float64 { return m.AverageSessions }, ags.Series); err != nil {
		return nil, err
	}
	if err := sweep(jobs, o, func(m core.Measures) float64 { return m.GPRSBlockingProbability }, blocking.Series); err != nil {
		return nil, err
	}
	return []Figure{ags, blocking}, nil
}

// AllFigures regenerates every figure of the evaluation section. The figure
// generators run concurrently — on top of the point- and replication-level
// parallelism inside each — while the shared limiter keeps the number of
// active model solutions and simulator runs at the configured worker bound.
// The returned figures are collected in the paper's order and the reported
// error is that of the earliest failing figure, so neither depends on the
// schedule.
func AllFigures(o Options) ([]Figure, error) {
	o = o.withDefaults()

	single := func(f func(Options) (Figure, error)) func(Options) ([]Figure, error) {
		return func(o Options) ([]Figure, error) {
			fig, err := f(o)
			if err != nil {
				return nil, err
			}
			return []Figure{fig}, nil
		}
	}
	steps := []struct {
		name string
		fn   func(Options) ([]Figure, error)
	}{
		{"fig 5", single(Fig5ThresholdCalibration)},
		{"fig 6", Fig6Validation},
		{"fig 7", Fig7CDT},
		{"fig 8", Fig8PLP},
		{"fig 9", Fig9QD},
		{"fig 10", Fig10SessionLimit},
		{"fig 11", Fig11TwoPercent},
		{"fig 12", Fig12FivePercent},
		{"fig 13", Fig13TenPercent},
		{"fig 14", Fig14VoiceImpact},
		{"fig 15", Fig15GPRSPopulation},
	}

	perStep := make([][]Figure, len(steps))
	var mu sync.Mutex
	done := 0
	err := runner.ForEach(nil, len(steps), func(i int) error {
		got, err := steps[i].fn(o)
		if err != nil {
			return fmt.Errorf("%s: %w", steps[i].name, err)
		}
		perStep[i] = got
		mu.Lock()
		done++
		o.progress("%s done (%d/%d figure groups)", steps[i].name, done, len(steps))
		o.record(ProgressEvent{Kind: "group", Figure: steps[i].name, Done: done, Total: len(steps)})
		mu.Unlock()
		return nil
	})

	var figs []Figure
	for _, got := range perStep {
		figs = append(figs, got...)
	}
	return figs, err
}
