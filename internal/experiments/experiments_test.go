package experiments

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// testOptions returns the cheapest possible options: quick fidelity, loose
// tolerance, no simulator series.
func testOptions() Options {
	return Options{
		Fidelity:       Quick,
		Tolerance:      1e-5,
		WithSimulation: false,
	}
}

func checkFigure(t *testing.T, fig Figure, wantSeries int) {
	t.Helper()
	if fig.ID == "" || fig.Title == "" || fig.XLabel == "" || fig.YLabel == "" {
		t.Errorf("figure %q has empty metadata", fig.ID)
	}
	if len(fig.Series) != wantSeries {
		t.Fatalf("figure %s has %d series, want %d", fig.ID, len(fig.Series), wantSeries)
	}
	for _, s := range fig.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			t.Fatalf("figure %s series %q has inconsistent lengths", fig.ID, s.Label)
		}
		for i, y := range s.Y {
			if math.IsNaN(y) || math.IsInf(y, 0) || y < 0 {
				t.Errorf("figure %s series %q point %d = %v", fig.ID, s.Label, i, y)
			}
		}
	}
}

func TestFidelityAndOptionDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Fidelity != Quick || o.Workers <= 0 || o.Tolerance <= 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
	if o.Replications != 3 || o.limiter == nil {
		t.Errorf("replication defaults not applied: %+v", o)
	}
	if full := (Options{Fidelity: Full}).withDefaults(); full.Replications != 5 {
		t.Errorf("full fidelity should default to 5 replications, got %d", full.Replications)
	}
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("fidelity names wrong")
	}
	if Fidelity(9).String() == "" {
		t.Error("unknown fidelity should render")
	}
	if len(callRates(Full)) <= len(callRates(Quick)) {
		t.Error("full fidelity should sweep more rate points")
	}
}

func TestBaseConfigScaling(t *testing.T) {
	full := baseConfig(Full, traffic.Model1, 0.5)
	quick := baseConfig(Quick, traffic.Model1, 0.5)
	if full.Channels.TotalChannels != 20 || full.BufferSize != 100 || full.MaxSessions != 50 {
		t.Errorf("full config should match Table 2/3: %+v", full)
	}
	if quick.NumStates() >= full.NumStates()/50 {
		t.Errorf("quick config should shrink the state space dramatically: %d vs %d",
			quick.NumStates(), full.NumStates())
	}
	if err := quick.Validate(); err != nil {
		t.Errorf("quick config invalid: %v", err)
	}
}

func TestFig5ThresholdCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("model sweep too slow for -short mode")
	}
	fig, err := Fig5ThresholdCalibration(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 4)
	// No flow control (eta = 1.0) must not lose fewer packets than eta = 0.5
	// at the highest load point.
	var lowEta, noFC Series
	for _, s := range fig.Series {
		switch s.Label {
		case "eta = 0.5":
			lowEta = s
		case "eta = 1.0":
			noFC = s
		}
	}
	last := len(noFC.Y) - 1
	if noFC.Y[last] < lowEta.Y[last]-1e-9 {
		t.Errorf("PLP without flow control (%v) should be at least PLP with eta=0.5 (%v)",
			noFC.Y[last], lowEta.Y[last])
	}
}

func TestFig6ValidationWithSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed validation skipped in -short mode")
	}
	o := testOptions()
	o.WithSimulation = true
	o.SimMeasurementSec = 1500
	figs, err := Fig6Validation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("Fig6Validation returned %d figures, want 2", len(figs))
	}
	// 3 model series + 3 simulation series each.
	checkFigure(t, figs[0], 6)
	checkFigure(t, figs[1], 6)

	// The simulation and the model should agree on the ordering of carried
	// data traffic across GPRS fractions at the lowest load point: more GPRS
	// users carry more data traffic.
	cdt := figs[0]
	bySeries := make(map[string][]float64)
	for _, s := range cdt.Series {
		bySeries[s.Label] = s.Y
	}
	if bySeries["model, 10% GPRS users"][0] <= bySeries["model, 2% GPRS users"][0] {
		t.Error("model: 10% GPRS users should carry more data traffic than 2% at low load")
	}
	if bySeries["simulation, 10% GPRS users"][0] <= bySeries["simulation, 2% GPRS users"][0] {
		t.Error("simulation: 10% GPRS users should carry more data traffic than 2% at low load")
	}
}

func TestFig7CDTShape(t *testing.T) {
	figs, err := Fig7CDT(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("want one figure per traffic model, got %d", len(figs))
	}
	for _, fig := range figs {
		checkFigure(t, fig, 3)
		// The paper's observation: for traffic models 1 and 2 the carried
		// data traffic barely depends on the number of reserved PDCHs.
		for i := range fig.Series[0].X {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, s := range fig.Series {
				lo = math.Min(lo, s.Y[i])
				hi = math.Max(hi, s.Y[i])
			}
			if hi-lo > 0.35*math.Max(hi, 0.1) {
				t.Errorf("%s: CDT spread across PDCH settings too large at point %d: [%v, %v]",
					fig.ID, i, lo, hi)
			}
		}
	}
}

func TestFig8And9MorePDCHsHelp(t *testing.T) {
	if testing.Short() {
		t.Skip("model sweeps too slow for -short mode")
	}
	o := testOptions()
	plpFigs, err := Fig8PLP(o)
	if err != nil {
		t.Fatal(err)
	}
	qdFigs, err := Fig9QD(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, figs := range [][]Figure{plpFigs, qdFigs} {
		for _, fig := range figs {
			checkFigure(t, fig, 3)
			series := make(map[string][]float64)
			for _, s := range fig.Series {
				series[s.Label] = s.Y
			}
			one, four := series["1 reserved PDCH"], series["4 reserved PDCH"]
			last := len(one) - 1
			if four[last] > one[last]+1e-9 {
				t.Errorf("%s: 4 PDCHs should not be worse than 1 PDCH at the highest load (%v vs %v)",
					fig.ID, four[last], one[last])
			}
		}
	}
}

func TestFig10SessionLimit(t *testing.T) {
	if testing.Short() {
		t.Skip("model sweeps too slow for -short mode")
	}
	figs, err := Fig10SessionLimit(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("want 2 figures, got %d", len(figs))
	}
	checkFigure(t, figs[0], 3)
	checkFigure(t, figs[1], 3)
	// A larger session limit admits more sessions, so its blocking
	// probability is lower (Fig. 10 of the paper).
	blocking := figs[1]
	series := make(map[string][]float64)
	for _, s := range blocking.Series {
		series[s.Label] = s.Y
	}
	small, large := series["M = 10"], series["M = 30"]
	last := len(small) - 1
	if large[last] > small[last]+1e-12 {
		t.Errorf("blocking with M=30 (%v) should not exceed blocking with M=10 (%v)",
			large[last], small[last])
	}
}

func TestFigCDTandATUAcrossFractions(t *testing.T) {
	if testing.Short() {
		t.Skip("model sweeps too slow for -short mode")
	}
	o := testOptions()
	figs11, err := Fig11TwoPercent(o)
	if err != nil {
		t.Fatal(err)
	}
	figs13, err := Fig13TenPercent(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, figs := range [][]Figure{figs11, figs13} {
		if len(figs) != 2 {
			t.Fatalf("want CDT and ATU figures, got %d", len(figs))
		}
		checkFigure(t, figs[0], 4)
		checkFigure(t, figs[1], 4)
	}
	// The paper's headline comparison: with 4 reserved PDCHs the throughput
	// per user degrades much less at high load than with 0 reserved PDCHs.
	atu := figs13[1]
	series := make(map[string][]float64)
	for _, s := range atu.Series {
		series[s.Label] = s.Y
	}
	zero, four := series["0 reserved PDCH"], series["4 reserved PDCH"]
	last := len(zero) - 1
	if four[last] <= zero[last] {
		t.Errorf("ATU with 4 PDCHs (%v) should exceed ATU with 0 PDCHs (%v) at the highest load",
			four[last], zero[last])
	}
}

func TestFig14VoiceImpact(t *testing.T) {
	if testing.Short() {
		t.Skip("model sweeps too slow for -short mode")
	}
	figs, err := Fig14VoiceImpact(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("want 2 figures, got %d", len(figs))
	}
	checkFigure(t, figs[0], 4)
	checkFigure(t, figs[1], 4)
	// Reserving more PDCHs leaves fewer voice channels, so voice blocking is
	// higher with 4 reserved PDCHs than with 0.
	blocking := figs[1]
	series := make(map[string][]float64)
	for _, s := range blocking.Series {
		series[s.Label] = s.Y
	}
	zero, four := series["0 reserved PDCH"], series["4 reserved PDCH"]
	last := len(zero) - 1
	if four[last] < zero[last] {
		t.Errorf("voice blocking with 4 reserved PDCHs (%v) should be at least that with 0 (%v)",
			four[last], zero[last])
	}
}

func TestFig15GPRSPopulation(t *testing.T) {
	if testing.Short() {
		t.Skip("model sweeps too slow for -short mode")
	}
	figs, err := Fig15GPRSPopulation(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, figs[0], 3)
	checkFigure(t, figs[1], 3)
	// More GPRS users mean more active sessions.
	ags := figs[0]
	series := make(map[string][]float64)
	for _, s := range ags.Series {
		series[s.Label] = s.Y
	}
	last := len(series["2% GPRS users"]) - 1
	if series["10% GPRS users"][last] <= series["2% GPRS users"][last] {
		t.Error("10% GPRS users should yield more active sessions than 2%")
	}
}

func TestSimulateSweepReplicatedAndDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	o := testOptions()
	o.Replications = 2
	o.SimMeasurementSec = 300
	rates := []float64{0.3, 0.6}

	var mu sync.Mutex
	var progress []string
	run := func(workers int, record bool) []Series {
		opts := o
		opts.Workers = workers
		if record {
			opts.Progress = func(msg string) {
				mu.Lock()
				defer mu.Unlock()
				progress = append(progress, msg)
			}
		}
		opts = opts.withDefaults()
		sums, err := simulateSweep(opts, "test", traffic.Model3, rates, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		series := []Series{
			seriesFromSummaries("plp", rates, sums,
				func(r sim.Results) stats.Interval { return r.PacketLossProbability }),
			seriesFromSummaries("cdt", rates, sums,
				func(r sim.Results) stats.Interval { return r.CarriedDataTraffic }),
		}
		if got := sums[0].Merged.CarriedDataTraffic.Batches; got != 2 {
			t.Fatalf("interval should span the 2 replications, got %d", got)
		}
		return series
	}

	one := run(1, true)
	for _, workers := range []int{4, 8} {
		if got := run(workers, false); !reflect.DeepEqual(got, one) {
			t.Errorf("workers=%d produced different series than workers=1:\n%+v\nvs\n%+v",
				workers, got, one)
		}
	}
	if len(progress) != len(rates) {
		t.Errorf("expected one progress line per point, got %v", progress)
	}
}

// TestSimulateSweepAdaptivePrecision exercises the precision-targeted path
// through the sweep harness: a loose target on a stable measure converges
// below the replication cap (the CPU-saving claim), the realized counts are
// deterministic for a fixed worker bound (batch boundaries are quantized to
// the pool, so the bound is part of the reproducibility key), and the
// clamped bounds reproduce the fixed-R sweep bit for bit.
func TestSimulateSweepAdaptivePrecision(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	o := testOptions()
	o.SimMeasurementSec = 300
	o.Precision = 0.05
	o.Target = runner.MeasureCVT
	o.MinReplications = 4
	o.MaxReplications = 12
	rates := []float64{0.3, 0.6}

	run := func(workers int) []runner.Summary {
		opts := o
		opts.Workers = workers
		opts = opts.withDefaults()
		sums, err := simulateSweep(opts, "adaptive", traffic.Model3, rates, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return sums
	}

	one := run(1)
	for i, sum := range one {
		if !sum.Adaptive {
			t.Fatalf("point %d: sweep did not run adaptively", i)
		}
		if !sum.Converged || sum.Replications >= o.MaxReplications {
			t.Errorf("point %d: %d replications (converged=%v, rel hw %v) — expected convergence below the cap of %d",
				i, sum.Replications, sum.Converged, sum.RelativeHalfWidth, o.MaxReplications)
		}
	}
	if again := run(1); !reflect.DeepEqual(again, one) {
		t.Error("adaptive sweep is not deterministic for a fixed worker bound")
	}
	// A wider pool may move the batch boundaries (pool-sized growth), but
	// every realized replication is the same seeded run: points that
	// converged within the shared first batch must match bit for bit, and
	// every point must still converge at or below the cap.
	four := run(4)
	for i, sum := range four {
		if !sum.Converged || sum.Replications > o.MaxReplications {
			t.Errorf("point %d (workers=4): %d replications (converged=%v)", i, sum.Replications, sum.Converged)
		}
		if one[i].Replications == o.MinReplications && !reflect.DeepEqual(four[i], one[i]) {
			t.Errorf("point %d: first-batch convergence must not depend on the pool width", i)
		}
	}

	// Clamped bounds == fixed-R: the stopping rule disabled by construction.
	clamped := o
	clamped.MinReplications = 2
	clamped.MaxReplications = 2
	clamped = clamped.withDefaults()
	fixed := o
	fixed.Precision = 0
	fixed.Replications = 2
	fixed = fixed.withDefaults()
	cs, err := simulateSweep(clamped, "clamped", traffic.Model3, rates, nil)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := simulateSweep(fixed, "fixed", traffic.Model3, rates, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cs {
		if !reflect.DeepEqual(cs[i].Merged, fx[i].Merged) {
			t.Errorf("point %d: clamped adaptive merge differs from fixed-R merge", i)
		}
	}
}

func TestSolveCacheDeduplicatesOverlappingSweeps(t *testing.T) {
	o := testOptions().withDefaults()
	// Fig. 15 sweeps one (fraction, rate) grid for two panels: the second
	// panel must be served entirely from the cache.
	figs, err := Fig15GPRSPopulation(o)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, figs[0], 3)
	hits, misses := o.cache.stats()
	grid := int64(3 * len(callRates(o.Fidelity)))
	if misses != grid {
		t.Errorf("unique solutions = %d, want %d", misses, grid)
	}
	if hits != grid {
		t.Errorf("cache hits = %d, want %d (one full panel)", hits, grid)
	}
	// Fig. 6 sweeps the same fractions over the same rates at the same
	// reserved-PDCH setting, so a shared Options value re-solves nothing.
	if _, err := Fig6Validation(o); err != nil {
		t.Fatal(err)
	}
	_, misses2 := o.cache.stats()
	if misses2 != misses {
		t.Errorf("figure 6 re-solved %d points the cache already held", misses2-misses)
	}
}

func TestSolveCacheSingleFlight(t *testing.T) {
	c := newSolveCache()
	var computed int64
	var wg sync.WaitGroup
	key := solveKey{tolerance: 1e-6}
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.solve(key, func() (core.Measures, error) {
				atomic.AddInt64(&computed, 1)
				return core.Measures{}, nil
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if computed != 1 {
		t.Errorf("concurrent identical requests computed %d times, want 1", computed)
	}
	if hits, misses := c.stats(); hits != 15 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 15/1", hits, misses)
	}
}

func TestSimulateSweepRejectsUnsupportedCells(t *testing.T) {
	o := testOptions()
	o.Cells = 12
	o = o.withDefaults()
	if _, err := simulateSweep(o, "test", traffic.Model3, []float64{0.1}, nil); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("unsupported cluster size should fail with ErrInvalidOptions, got %v", err)
	}
}

func TestSimulateSweepLargeClusterSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	o := testOptions()
	o.Cells = 19
	o.Shards = 2
	o.Replications = 2
	o.SimMeasurementSec = 300
	o = o.withDefaults()
	sums, err := simulateSweep(o, "test", traffic.Model3, []float64{0.3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 || sums[0].Replications != 2 {
		t.Fatalf("unexpected summaries: %+v", sums)
	}
	if sums[0].Merged.Events == 0 || sums[0].Merged.PacketsDelivered == 0 {
		t.Error("19-cell sharded sweep simulated no traffic")
	}
}

func TestTables(t *testing.T) {
	t2 := TableBaseParameters()
	if t2.ID != "table2" || len(t2.Rows) < 8 {
		t.Errorf("table 2 incomplete: %+v", t2)
	}
	if !strings.Contains(t2.String(), "13.4 kbit/s") {
		t.Error("table 2 should report the CS-2 rate")
	}
	t3 := TableTrafficModels()
	if t3.ID != "table3" || len(t3.Columns) != 3 {
		t.Errorf("table 3 incomplete: %+v", t3)
	}
	rendered := t3.String()
	// The "8 kbit/s" and "32 kbit/s" labels of the paper correspond to the
	// exact 480-byte-packet rates 7.7 and 30.7 kbit/s.
	for _, want := range []string{"2122.5 s", "312.5 s", "7.7 kbit/s", "30.7 kbit/s"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("table 3 should contain %q:\n%s", want, rendered)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	fig := Figure{
		ID:     "test_fig",
		Title:  "test",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Label: "a series", X: []float64{1, 2}, Y: []float64{3, 4}},
			{Label: "sim", X: []float64{1, 2}, Y: []float64{5, 6}, YErr: []float64{0.1, 0.2}},
		},
	}
	path, err := WriteCSV(fig, dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	content := string(data)
	if !strings.Contains(content, "a_series") || !strings.Contains(content, "sim_ci_halfwidth") {
		t.Errorf("unexpected CSV header: %s", content)
	}
	lines := strings.Split(strings.TrimSpace(content), "\n")
	if len(lines) != 3 {
		t.Errorf("CSV should have header + 2 rows, got %d lines", len(lines))
	}
	paths, err := WriteAllCSV([]Figure{fig}, filepath.Join(dir, "all"))
	if err != nil || len(paths) != 1 {
		t.Errorf("WriteAllCSV: %v, %v", paths, err)
	}
	if FormatFigure(fig) == "" {
		t.Error("FormatFigure should render")
	}
}

func TestSolverAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("solver comparison too slow for -short mode")
	}
	got, err := SolverAblation(Options{Tolerance: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("want 3 methods, got %d", len(got))
	}
	for _, c := range got {
		if !c.Converged {
			t.Errorf("%v did not converge", c.Method)
		}
	}
	// All methods agree on the measures; Gauss–Seidel needs the fewest
	// sweeps.
	for _, c := range got[1:] {
		if math.Abs(c.CDT-got[0].CDT) > 1e-3 {
			t.Errorf("%v CDT %v differs from Gauss-Seidel %v", c.Method, c.CDT, got[0].CDT)
		}
		if c.Iterations < got[0].Iterations {
			t.Errorf("%v used fewer iterations (%d) than Gauss-Seidel (%d)",
				c.Method, c.Iterations, got[0].Iterations)
		}
	}
}

func TestHandoverBalancingAblation(t *testing.T) {
	res, err := HandoverBalancingAblation(traffic.Model1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Traffic model 1 sessions live much longer than the dwell time, so the
	// balanced handover rate greatly exceeds the fresh arrival rate.
	if res.BalancedHandoverRate <= res.NaiveHandoverRate {
		t.Errorf("balanced handover rate %v should exceed the fresh rate %v",
			res.BalancedHandoverRate, res.NaiveHandoverRate)
	}
	if res.Iterations <= 1 {
		t.Errorf("balancing should iterate, got %d iterations", res.Iterations)
	}
	if res.BalancedAGS <= 0 || res.NaiveAGS <= 0 {
		t.Error("session counts should be positive")
	}
}

func TestAggregationCheck(t *testing.T) {
	for _, m := range traffic.AllModels() {
		if err := AggregationCheck(m, 30); err > 1e-9 {
			t.Errorf("%v: aggregation error %v", m, err)
		}
	}
}
