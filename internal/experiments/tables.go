package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/traffic"
)

// TableRow is one parameter/value pair of a reproduced table.
type TableRow struct {
	Parameter string
	Values    []string
}

// Table is a reproduced parameter table of the paper.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    []TableRow
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "  %-45s", "parameter")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %18s", c)
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "  %-45s", row.Parameter)
		for _, v := range row.Values {
			fmt.Fprintf(&b, " %18s", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TableBaseParameters reproduces Table 2: the base parameter setting of the
// Markov model, including the derived per-PDCH packet service rate.
func TableBaseParameters() Table {
	cfg := core.BaseConfig(traffic.Model3, 1.0)
	rates := cfg.DeriveRates()
	return Table{
		ID:      "table2",
		Title:   "Base parameter setting of the Markov model of GPRS",
		Columns: []string{"base value"},
		Rows: []TableRow{
			{"number of physical channels N", []string{fmt.Sprintf("%d", cfg.Channels.TotalChannels)}},
			{"number of fixed PDCHs N_GPRS", []string{fmt.Sprintf("%d", cfg.Channels.ReservedPDCH)}},
			{"BSC buffer size K (data packets)", []string{fmt.Sprintf("%d", cfg.BufferSize)}},
			{"transfer rate for one PDCH (CS-2)", []string{fmt.Sprintf("%.1f kbit/s", cfg.Channels.Coding.DataRateBitsPerSec()/1000)}},
			{"packet service rate per PDCH", []string{fmt.Sprintf("%.3f packets/s", rates.PacketServiceRate)}},
			{"average GSM voice call duration", []string{fmt.Sprintf("%.0f s", cfg.GSMCallDurationSec)}},
			{"average GSM voice call dwell time", []string{fmt.Sprintf("%.0f s", cfg.GSMDwellTimeSec)}},
			{"average GPRS session dwell time", []string{fmt.Sprintf("%.0f s", cfg.GPRSDwellTimeSec)}},
			{"percentage of GSM users", []string{fmt.Sprintf("%.0f%%", (1-cfg.GPRSFraction)*100)}},
			{"percentage of GPRS users", []string{fmt.Sprintf("%.0f%%", cfg.GPRSFraction*100)}},
			{"TCP flow-control threshold eta", []string{fmt.Sprintf("%.1f", cfg.FlowControlThreshold)}},
		},
	}
}

// TableTrafficModels reproduces Table 3: the parameter setting of the three
// traffic models, including the derived session durations and IPP rates.
func TableTrafficModels() Table {
	models := traffic.AllModels()
	columns := make([]string, len(models))
	for i := range models {
		columns[i] = fmt.Sprintf("traffic model %d", i+1)
	}
	value := func(f func(spec traffic.ModelSpec) string) []string {
		out := make([]string, len(models))
		for i, model := range models {
			out[i] = f(model.Spec())
		}
		return out
	}
	return Table{
		ID:      "table3",
		Title:   "Parameter setting of the different traffic models",
		Columns: columns,
		Rows: []TableRow{
			{"maximum number of active GPRS sessions M", value(func(s traffic.ModelSpec) string {
				return fmt.Sprintf("%d", s.MaxSessions)
			})},
			{"average GPRS session duration 1/mu_GPRS", value(func(s traffic.ModelSpec) string {
				return fmt.Sprintf("%.1f s", s.Session.MeanSessionDurationSec())
			})},
			{"average arrival rate of data packets", value(func(s traffic.ModelSpec) string {
				return fmt.Sprintf("%.1f kbit/s", s.Session.MeanOnRateBitsPerSec()/1000)
			})},
			{"average duration of a packet call 1/alpha", value(func(s traffic.ModelSpec) string {
				return fmt.Sprintf("%.1f s", s.Session.MeanPacketCallDurationSec())
			})},
			{"average reading time between packet calls 1/beta", value(func(s traffic.ModelSpec) string {
				return fmt.Sprintf("%.1f s", s.Session.ReadingTimeSec)
			})},
			{"packets per packet call N_d", value(func(s traffic.ModelSpec) string {
				return fmt.Sprintf("%.0f", s.Session.PacketsPerCall)
			})},
			{"packet calls per session N_pc", value(func(s traffic.ModelSpec) string {
				return fmt.Sprintf("%.0f", s.Session.NumPacketCalls)
			})},
		},
	}
}
