package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// WriteCSV writes one figure as a CSV file named <dir>/<figure-id>.csv with
// one row per x value and one column per series (plus optional confidence
// half-width columns for simulator series). It returns the written path.
func WriteCSV(fig Figure, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("create results directory: %w", err)
	}
	path := filepath.Join(dir, fig.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()

	w := csv.NewWriter(f)
	// The x column is named after the figure's x axis (most figures sweep
	// the call arrival rate, the hotspot figures sweep hex distance), so the
	// files stay self-describing.
	xcol := sanitizeColumn(fig.XLabel)
	if xcol == "" {
		xcol = "x"
	}
	header := []string{xcol}
	for _, s := range fig.Series {
		header = append(header, sanitizeColumn(s.Label))
		if s.YErr != nil {
			header = append(header, sanitizeColumn(s.Label)+"_ci_halfwidth")
		}
	}
	if err := w.Write(header); err != nil {
		return "", err
	}

	if len(fig.Series) > 0 {
		for i := range fig.Series[0].X {
			row := []string{formatFloat(fig.Series[0].X[i])}
			for _, s := range fig.Series {
				if i < len(s.Y) {
					row = append(row, formatFloat(s.Y[i]))
				} else {
					row = append(row, "")
				}
				if s.YErr != nil {
					if i < len(s.YErr) {
						row = append(row, formatFloat(s.YErr[i]))
					} else {
						row = append(row, "")
					}
				}
			}
			if err := w.Write(row); err != nil {
				return "", err
			}
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return "", err
	}
	return path, nil
}

// WriteAllCSV writes every figure into dir and returns the written paths.
func WriteAllCSV(figs []Figure, dir string) ([]string, error) {
	paths := make([]string, 0, len(figs))
	for _, fig := range figs {
		p, err := WriteCSV(fig, dir)
		if err != nil {
			return paths, fmt.Errorf("figure %s: %w", fig.ID, err)
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// FormatFigure renders a figure as an aligned text table for terminal output.
func FormatFigure(fig Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", fig.ID, fig.Title)
	fmt.Fprintf(&b, "  %-12s", fig.XLabel)
	for _, s := range fig.Series {
		fmt.Fprintf(&b, " %22s", s.Label)
	}
	b.WriteString("\n")
	if len(fig.Series) == 0 {
		return b.String()
	}
	for i := range fig.Series[0].X {
		fmt.Fprintf(&b, "  %-12.3g", fig.Series[0].X[i])
		for _, s := range fig.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %22.6g", s.Y[i])
			} else {
				fmt.Fprintf(&b, " %22s", "")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func sanitizeColumn(label string) string {
	out := strings.ToLower(label)
	for _, r := range []string{" ", ",", "=", "%", "(", ")", "/"} {
		out = strings.ReplaceAll(out, r, "_")
	}
	for strings.Contains(out, "__") {
		out = strings.ReplaceAll(out, "__", "_")
	}
	return strings.Trim(out, "_")
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 8, 64)
}
