package experiments

import (
	"sync"

	"repro/internal/core"
)

// solveKey identifies one steady-state solution: the full analytical
// configuration plus the solver setting. core.Config is a flat comparable
// value (no pointers or slices), so it can key a map directly.
type solveKey struct {
	cfg           core.Config
	tolerance     float64
	maxIterations int
}

// solveEntry is a single-flight cache slot: the first caller computes the
// solution inside the once, later callers (including concurrent ones) wait on
// it and share the result.
type solveEntry struct {
	once sync.Once
	meas core.Measures
	err  error
}

// solveCache memoizes solved (configuration, tolerance) pairs across the
// figures of one experiment run. The figures sweep heavily overlapping
// parameter grids — figure 6 shares its (fraction, rate) grid with figures
// 11-13 and 15, and every two-panel figure used to solve its grid once per
// panel — so the cache removes roughly half of all model solutions in a full
// regeneration. Entries are never evicted: a full paper-resolution run is a
// few thousand solutions, each a few KB of measures.
type solveCache struct {
	mu      sync.Mutex
	entries map[solveKey]*solveEntry
	hits    int64
	misses  int64
}

func newSolveCache() *solveCache {
	return &solveCache{entries: make(map[solveKey]*solveEntry)}
}

// solve returns the memoized solution for the key, computing it with fn on
// the first request. Concurrent requests for the same key block on the first
// computation rather than duplicating it; the waiting task's limiter token
// stays held, which slightly under-uses the pool but cannot deadlock (the
// computing task never needs a second token).
func (c *solveCache) solve(key solveKey, fn func() (core.Measures, error)) (core.Measures, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &solveEntry{}
		c.entries[key] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()
	e.once.Do(func() { e.meas, e.err = fn() })
	return e.meas, e.err
}

// stats returns the hit and miss counters.
func (c *solveCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
