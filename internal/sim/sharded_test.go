package sim

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
)

// shardedQuickConfig returns a short run of the scaled-down cell on the given
// preset cluster size.
func shardedQuickConfig(t *testing.T, cells int) Config {
	t.Helper()
	topo, err := cluster.Preset(cells)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(true)
	cfg.Topology = topo
	cfg.MeasurementSec = 600
	return cfg
}

func runSharded(t *testing.T, cfg Config, opt ShardedOptions) Results {
	t.Helper()
	s, err := NewSharded(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardedDeterministicAcrossShardCounts is the determinism contract of
// the sharded engine: for a fixed (seed, configuration) the results are
// bit-identical for shards=1 and any shards=N, because per-cell substreams
// decouple the cells' sample paths and window-barrier messages merge in a
// deterministic order.
func TestShardedDeterministicAcrossShardCounts(t *testing.T) {
	cfg := shardedQuickConfig(t, 7)
	base := runSharded(t, cfg, ShardedOptions{Shards: 1})
	if base.Events == 0 || base.PacketsDelivered == 0 {
		t.Fatalf("degenerate baseline run: %+v", base)
	}
	for _, shards := range []int{2, 4, 7} {
		got := runSharded(t, cfg, ShardedOptions{Shards: shards})
		if !reflect.DeepEqual(got, base) {
			t.Errorf("shards=%d produced different results than shards=1:\n%+v\nvs\n%+v", shards, got, base)
		}
	}
}

// TestShardedMatchesSerialEngine checks the stronger property that the
// sharded engine reproduces the serial single-calendar engine bit for bit —
// both deliver handovers at the same absolute times and both drive every cell
// from the same substreams, so the engines are interchangeable.
func TestShardedMatchesSerialEngine(t *testing.T) {
	cfg := shardedQuickConfig(t, 7)
	serial := runQuick(t, cfg)
	got := runSharded(t, cfg, ShardedOptions{Shards: 3})
	if !reflect.DeepEqual(got, serial) {
		t.Errorf("sharded engine differs from serial engine:\n%+v\nvs\n%+v", got, serial)
	}

	if testing.Short() {
		return
	}
	cfg19 := shardedQuickConfig(t, 19)
	serial19 := runQuick(t, cfg19)
	got19 := runSharded(t, cfg19, ShardedOptions{Shards: 4})
	if !reflect.DeepEqual(got19, serial19) {
		t.Error("sharded engine differs from serial engine on the 19-cell cluster")
	}
}

func TestShardedLargeTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("large-cluster simulations skipped in -short mode")
	}
	for _, cells := range []int{19, 37} {
		cfg := shardedQuickConfig(t, cells)
		res := runSharded(t, cfg, ShardedOptions{Shards: 4})
		if res.Events == 0 || res.PacketsDelivered == 0 {
			t.Fatalf("%d cells: no traffic simulated: %+v", cells, res)
		}
		if res.HandoversIn == 0 || res.HandoversOut == 0 {
			t.Errorf("%d cells: expected handover flow through the mid cell, got in=%d out=%d",
				cells, res.HandoversIn, res.HandoversOut)
		}
		ratio := float64(res.HandoversIn) / float64(res.HandoversOut)
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%d cells: handover flows badly unbalanced: in=%d out=%d",
				cells, res.HandoversIn, res.HandoversOut)
		}
		if res.CarriedVoiceTraffic.Mean <= 0 || res.AverageSessions.Mean <= 0 {
			t.Errorf("%d cells: implausible occupancies: %+v", cells, res)
		}
	}
}

// countingLimiter counts concurrent holders so the test can verify that the
// shard workers respect a shared bound.
type countingLimiter struct {
	tokens chan struct{}
	active atomic.Int32
	peak   atomic.Int32
}

func (l *countingLimiter) Acquire() {
	l.tokens <- struct{}{}
	n := l.active.Add(1)
	for {
		p := l.peak.Load()
		if n <= p || l.peak.CompareAndSwap(p, n) {
			break
		}
	}
}

func (l *countingLimiter) Release() {
	l.active.Add(-1)
	<-l.tokens
}

func TestShardedComposesWithSharedLimiter(t *testing.T) {
	cfg := shardedQuickConfig(t, 7)
	want := runSharded(t, cfg, ShardedOptions{Shards: 1})
	lim := &countingLimiter{tokens: make(chan struct{}, 2)}
	got := runSharded(t, cfg, ShardedOptions{Shards: 4, Limiter: lim})
	if !reflect.DeepEqual(got, want) {
		t.Error("limited sharded run produced different results")
	}
	if p := lim.peak.Load(); p > 2 {
		t.Errorf("observed %d concurrent shard workers, limiter cap is 2", p)
	}
}

func TestNewShardedValidation(t *testing.T) {
	cfg := quickConfig(true)
	cfg.BufferSize = 0
	if _, err := NewSharded(cfg, ShardedOptions{}); err == nil {
		t.Error("invalid configuration should be rejected")
	}
	good := quickConfig(true)
	s, err := NewSharded(good, ShardedOptions{Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 7 {
		t.Errorf("shards should be capped at the cell count, got %d", s.Shards())
	}
	if s.MidCell() != cluster.MidCell {
		t.Error("mid cell index mismatch")
	}
	if s.Config().HandoverLatencySec <= 0 {
		t.Error("defaulted configuration should carry a positive handover latency")
	}
}

// TestHandoverLatencyIsSmallPerturbation guards the modelling assumption
// behind the message-based handovers: the default 100 ms in-transit
// interruption is negligible against the 60-120 s dwell times, so mid-cell
// occupancies must stay in a sane range compared with an (almost)
// instantaneous handover.
func TestHandoverLatencyIsSmallPerturbation(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison runs skipped in -short mode")
	}
	cfg := quickConfig(true)
	cfg.MeasurementSec = 3000
	base := runQuick(t, cfg)
	tiny := cfg
	tiny.HandoverLatencySec = 1e-4
	got := runQuick(t, tiny)
	if math.Abs(got.CarriedVoiceTraffic.Mean-base.CarriedVoiceTraffic.Mean) > 0.35*math.Max(base.CarriedVoiceTraffic.Mean, 0.1) {
		t.Errorf("CVT too sensitive to handover latency: %v vs %v",
			got.CarriedVoiceTraffic.Mean, base.CarriedVoiceTraffic.Mean)
	}
	if math.Abs(got.AverageSessions.Mean-base.AverageSessions.Mean) > 0.35*math.Max(base.AverageSessions.Mean, 0.1) {
		t.Errorf("AGS too sensitive to handover latency: %v vs %v",
			got.AverageSessions.Mean, base.AverageSessions.Mean)
	}
}

func TestSubstreamSeedingDecouplesCells(t *testing.T) {
	// Two different seeds must change every cell's sample path; the old
	// affine seed*4+k derivation made nearby seeds share streams.
	a := runQuick(t, quickConfig(true))
	cfg := quickConfig(true)
	cfg.Seed = cfg.Seed + 1
	b := runQuick(t, cfg)
	if a.Events == b.Events && a.PacketsOffered == b.PacketsOffered {
		t.Error("adjacent seeds should produce different sample paths")
	}
}
