package sim

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Results reports the mid-cell measurements of one simulation run as
// batch-means confidence intervals, mirroring the performance measures of the
// analytical model (Section 4.2 of the paper).
type Results struct {
	// CarriedDataTraffic is the time-average number of PDCHs transmitting
	// data (CDT).
	CarriedDataTraffic stats.Interval
	// PacketLossProbability is the fraction of packets arriving at the BSC
	// that are dropped because the buffer is full (PLP).
	PacketLossProbability stats.Interval
	// QueueingDelay is the mean time a delivered packet spends in the BSC
	// buffer, in seconds (QD).
	QueueingDelay stats.Interval
	// ThroughputBits is the delivered data rate in bit/s.
	ThroughputBits stats.Interval
	// ThroughputPerUserBits is the delivered data rate per active GPRS
	// session in bit/s (ATU).
	ThroughputPerUserBits stats.Interval
	// AverageSessions is the time-average number of active GPRS sessions
	// (AGS).
	AverageSessions stats.Interval
	// CarriedVoiceTraffic is the time-average number of busy voice channels
	// (CVT).
	CarriedVoiceTraffic stats.Interval
	// GSMBlockingProbability is the fraction of fresh GSM calls blocked in
	// the mid cell.
	GSMBlockingProbability stats.Interval
	// GPRSBlockingProbability is the fraction of fresh GPRS session requests
	// blocked in the mid cell.
	GPRSBlockingProbability stats.Interval
	// MeanQueueLength is the time-average BSC buffer occupancy in packets.
	MeanQueueLength stats.Interval

	// Totals over the whole measurement period (mid cell).
	PacketsOffered   int64
	PacketsLost      int64
	PacketsDelivered int64
	HandoversIn      int64
	HandoversOut     int64
	TCPTimeouts      int64
	TCPFastRecovers  int64
	SimulatedSec     float64
	Events           uint64

	// PerCell reports every cell of the cluster over the measurement period,
	// indexed by cell id. Under the paper's symmetric load all cells are
	// statistically identical and only the mid cell is of interest; under
	// heterogeneous scenarios (hotspot cells, load gradients — see
	// internal/scenario) the spatial shape of the response is the result.
	PerCell []CellMeasures

	// PerCellCI carries cross-replication confidence intervals over every
	// per-cell measure, indexed by cell id like PerCell. A single simulation
	// run cannot produce them (PerCell holds point estimates only), so this
	// field is nil on the Results of one run and is populated by the
	// replication runner's merge: each interval is a Student-t interval over
	// the per-replication values of one cell's measure (over antithetic pair
	// means or control-variate-adjusted values when the runner's variance
	// reduction is enabled).
	PerCellCI []CellIntervals
}

// CellMeasures summarizes one cell of the cluster over the whole measurement
// period. Unlike the mid-cell intervals of Results these are point estimates
// (time averages and ratios of totals); cross-replication confidence
// intervals over them come from the runner package.
type CellMeasures struct {
	// Cell is the cell id (cluster.MidCell is the measured mid cell).
	Cell int
	// CarriedDataTraffic is the time-average number of PDCHs transmitting
	// data in this cell.
	CarriedDataTraffic float64
	// MeanQueueLength is the time-average BSC buffer occupancy in packets.
	MeanQueueLength float64
	// CarriedVoiceTraffic is the time-average number of busy voice channels.
	CarriedVoiceTraffic float64
	// AverageSessions is the time-average number of active GPRS sessions.
	AverageSessions float64
	// PacketLossProbability is the fraction of packets offered to this cell's
	// BSC buffer that were dropped.
	PacketLossProbability float64
	// QueueingDelaySec is the mean buffer time of the packets this cell
	// delivered.
	QueueingDelaySec float64
	// ThroughputBits is the data rate this cell delivered in bit/s.
	ThroughputBits float64
	// GSMBlocking and GPRSBlocking are the fresh-arrival blocking fractions.
	GSMBlocking  float64
	GPRSBlocking float64

	// Counter totals over the measurement period.
	PacketsOffered   int64
	PacketsLost      int64
	PacketsDelivered int64
	HandoversIn      int64
	HandoversOut     int64

	// Handover-flow detail, the signature measures of mobility scenarios
	// (skewed dwell times skew these even when the load is uniform).
	// HandoversOut splits by service into VoiceHandoversOut and
	// SessionHandoversOut. HandoverArrivals counts every handover message
	// reaching this cell — admitted (HandoversIn), dropped for lack of
	// capacity (HandoverFailures), or carrying a voice call that completed
	// in transit — so summed over all cells, arrivals balance departures
	// exactly (wrap-around flow conservation) up to messages in flight
	// across the measurement boundaries.
	VoiceHandoversOut   int64
	SessionHandoversOut int64
	HandoverArrivals    int64
	HandoverFailures    int64

	// Admission-policy detail (see internal/policy and Config.Policy).
	// GuardBlockedCalls counts fresh calls blocked by the guard reservation
	// alone (a channel was free but reserved for handovers).
	// HandoversQueued, HandoverQueueServed, and HandoverQueueExpired are the
	// queued-handovers ledger: on a drained run, queued = served + expired
	// exactly, and expired failures are included in HandoverFailures.
	// HandoverRetries counts directed-retry forwards issued by this cell
	// (also included in HandoversOut). HandoverTransitEnds counts voice
	// handovers whose call completed during the handover interruption — this
	// happens under a nil policy too; it simply was not reported before.
	GuardBlockedCalls    int64
	HandoversQueued      int64
	HandoverQueueServed  int64
	HandoverQueueExpired int64
	HandoverRetries      int64
	HandoverTransitEnds  int64
}

// CellIntervals carries cross-replication confidence intervals for the
// point-estimate measures of one cell's CellMeasures. It is produced by the
// replication runner's merge (see Results.PerCellCI); the counter totals of
// CellMeasures have no interval form and are summed instead.
type CellIntervals struct {
	// Cell is the cell id (cluster.MidCell is the measured mid cell).
	Cell int
	// CarriedDataTraffic is the interval over the per-replication
	// time-average PDCHs transmitting data in this cell.
	CarriedDataTraffic stats.Interval
	// MeanQueueLength is the interval over the time-average BSC buffer
	// occupancy in packets.
	MeanQueueLength stats.Interval
	// CarriedVoiceTraffic is the interval over the time-average busy voice
	// channels.
	CarriedVoiceTraffic stats.Interval
	// AverageSessions is the interval over the time-average active GPRS
	// sessions.
	AverageSessions stats.Interval
	// PacketLossProbability is the interval over the per-replication packet
	// loss fractions.
	PacketLossProbability stats.Interval
	// QueueingDelaySec is the interval over the per-replication mean buffer
	// times in seconds.
	QueueingDelaySec stats.Interval
	// ThroughputBits is the interval over the per-replication delivered data
	// rates in bit/s.
	ThroughputBits stats.Interval
	// GSMBlocking and GPRSBlocking are the intervals over the fresh-arrival
	// blocking fractions.
	GSMBlocking  stats.Interval
	GPRSBlocking stats.Interval
}

// String renders the results as a small table.
func (r Results) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mid-cell results over %.0f s (%d events)\n", r.SimulatedSec, r.Events)
	rows := []struct {
		name string
		iv   stats.Interval
	}{
		{"CDT (PDCHs)", r.CarriedDataTraffic},
		{"PLP", r.PacketLossProbability},
		{"QD (s)", r.QueueingDelay},
		{"throughput (bit/s)", r.ThroughputBits},
		{"ATU (bit/s)", r.ThroughputPerUserBits},
		{"AGS (sessions)", r.AverageSessions},
		{"CVT (channels)", r.CarriedVoiceTraffic},
		{"GSM blocking", r.GSMBlockingProbability},
		{"GPRS blocking", r.GPRSBlockingProbability},
		{"mean queue length", r.MeanQueueLength},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "  %-20s %s\n", row.name, row.iv.String())
	}
	fmt.Fprintf(&b, "  offered=%d lost=%d delivered=%d handovers in/out=%d/%d tcp timeouts=%d fast recoveries=%d\n",
		r.PacketsOffered, r.PacketsLost, r.PacketsDelivered, r.HandoversIn, r.HandoversOut,
		r.TCPTimeouts, r.TCPFastRecovers)
	return b.String()
}

// batchAccumulator collects the per-batch observations of the mid cell and
// produces the batch-means intervals.
type batchAccumulator struct {
	level float64

	cdt        *stats.BatchMeans
	plp        *stats.BatchMeans
	qd         *stats.BatchMeans
	throughput *stats.BatchMeans
	atu        *stats.BatchMeans
	ags        *stats.BatchMeans
	cvt        *stats.BatchMeans
	gsmBlock   *stats.BatchMeans
	gprsBlock  *stats.BatchMeans
	queueLen   *stats.BatchMeans
}

func newBatchAccumulator(level float64) *batchAccumulator {
	mk := func() *stats.BatchMeans { return stats.NewBatchMeans(1) }
	return &batchAccumulator{
		level:      level,
		cdt:        mk(),
		plp:        mk(),
		qd:         mk(),
		throughput: mk(),
		atu:        mk(),
		ags:        mk(),
		cvt:        mk(),
		gsmBlock:   mk(),
		gprsBlock:  mk(),
		queueLen:   mk(),
	}
}

func (a *batchAccumulator) results() Results {
	return Results{
		CarriedDataTraffic:      a.cdt.ConfidenceInterval(a.level),
		PacketLossProbability:   a.plp.ConfidenceInterval(a.level),
		QueueingDelay:           a.qd.ConfidenceInterval(a.level),
		ThroughputBits:          a.throughput.ConfidenceInterval(a.level),
		ThroughputPerUserBits:   a.atu.ConfidenceInterval(a.level),
		AverageSessions:         a.ags.ConfidenceInterval(a.level),
		CarriedVoiceTraffic:     a.cvt.ConfidenceInterval(a.level),
		GSMBlockingProbability:  a.gsmBlock.ConfidenceInterval(a.level),
		GPRSBlockingProbability: a.gprsBlock.ConfidenceInterval(a.level),
		MeanQueueLength:         a.queueLen.ConfidenceInterval(a.level),
	}
}
