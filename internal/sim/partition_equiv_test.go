// Partition-equivalence suite: the cell→group partitioning of the sharded
// engine must never affect results. Any valid assignment — contiguous
// index blocks, locality-grown patches, or arbitrary random groupings — and
// any worker count must reproduce the serial engine bit for bit, under
// heterogeneous load, corridor mobility, and admission policies alike. The
// randomized matrix here plus the pinned 61-cell golden column are the
// enforcement of the determinism contract documented in internal/partition.
package sim_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/partition"
	"repro/internal/probe"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// equivQuickConfig is scenarioQuickConfig with a shorter horizon, so the
// randomized matrix stays affordable across ~50 partitions.
func equivQuickConfig(t *testing.T, cells int) sim.Config {
	t.Helper()
	cfg := scenarioQuickConfig(t, cells)
	cfg.WarmupSec = 100
	cfg.MeasurementSec = 300
	cfg.Batches = 3
	return cfg
}

// randomGroups draws a uniformly random valid partition of n cells into k
// non-empty groups: the first k cells of a random permutation seed the
// groups, the rest scatter uniformly.
func randomGroups(r *rand.Rand, n, k int) [][]int {
	groups := make([][]int, k)
	for i, c := range r.Perm(n) {
		g := i
		if i >= k {
			g = r.Intn(k)
		}
		groups[g] = append(groups[g], c)
	}
	return groups
}

// TestRandomizedPartitionEquivalence is the property test of the partition
// determinism contract: ~50 random valid partitions of the {19,37,61}-cell
// topologies — group counts from the degenerate single group to one group
// per cell, worker counts {1,2,4} — all reproduce the serial engine's
// Results (and their canonical digests) bit for bit, under a hotspot load,
// a highway mobility corridor, and a guard-channel admission policy.
func TestRandomizedPartitionEquivalence(t *testing.T) {
	cases := []struct {
		cells  int
		preset string
		count  int
	}{
		{19, "hotspot", 20},
		{37, "highway", 16},
		{61, "hotspot-guard", 14},
	}
	rng := rand.New(rand.NewSource(20260808))
	for _, tc := range cases {
		count := tc.count
		if testing.Short() {
			if tc.cells != 19 {
				continue
			}
			count = 6
		}
		t.Run(fmt.Sprintf("%s/%dcells", tc.preset, tc.cells), func(t *testing.T) {
			spec, err := scenario.Preset(tc.preset)
			if err != nil {
				t.Fatal(err)
			}
			cfg := equivQuickConfig(t, tc.cells)
			if _, err := scenario.Apply(&cfg, spec); err != nil {
				t.Fatal(err)
			}
			serial := mustRun(t, cfg, 1)
			if serial.Events == 0 {
				t.Fatal("degenerate run: no events")
			}
			serialDigest := policyDigest(serial)
			n := tc.cells
			for i := 0; i < count; i++ {
				var pspec *partition.Spec
				switch i {
				case 0: // degenerate: everything in one group
					pspec = &partition.Spec{Kind: partition.KindIndexRange, Groups: 1}
				case 1: // degenerate: one group per cell (historic per-cell shards)
					pspec = &partition.Spec{Kind: partition.KindIndexRange, Groups: n}
				case 2: // the default locality grouping, group count from workers
					pspec = &partition.Spec{Kind: partition.KindLocality}
				case 3:
					pspec = &partition.Spec{Kind: partition.KindLocality, Groups: 1 + rng.Intn(n)}
				default:
					k := 1 + rng.Intn(n)
					pspec = &partition.Spec{Kind: partition.KindExplicit, Explicit: randomGroups(rng, n, k)}
				}
				workers := []int{1, 2, 4}[i%3]
				pcfg := cfg
				pcfg.Partition = pspec
				e, err := sim.NewSharded(pcfg, sim.ShardedOptions{Shards: workers})
				if err != nil {
					t.Fatalf("partition %d (%v, %d workers): %v", i, pspec, workers, err)
				}
				res, err := e.Run()
				if err != nil {
					t.Fatalf("partition %d (%v, %d workers): %v", i, pspec, workers, err)
				}
				if !reflect.DeepEqual(res, serial) {
					t.Errorf("partition %d (%v, %d workers, %d groups): results differ from serial engine",
						i, pspec, workers, e.Partition().NumGroups())
				}
				if got := policyDigest(res); got != serialDigest {
					t.Errorf("partition %d (%v, %d workers): digest %s, want serial %s",
						i, pspec, workers, got, serialDigest)
				}
			}
		})
	}
}

// goldenPartitionDigests extends the golden-digest suite with a partitioned
// 61-cell column: the pinned digests are the serial engine's, and both
// partitioners at both worker counts must keep reproducing them bit for bit.
var goldenPartitionDigests = []struct {
	name  string
	cells int
	want  string
}{
	{"baseline", 61, "085eba53739aacae"},
	{"hotspot", 61, "0d8a6b44304ee461"},
}

// TestGoldenPartitionedDigests pins the 61-cell partitioned column: the
// serial run must reproduce the golden digest, and so must the sharded
// engine under two partitioners (locality, index-range) × {1,4} workers.
// The whole column is skipped in -short mode (it is part of the full suite
// the race CI job runs).
func TestGoldenPartitionedDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("61-cell partitioned golden column skipped in -short mode")
	}
	specs := []*partition.Spec{
		{Kind: partition.KindLocality, Groups: 4},
		{Kind: partition.KindIndexRange, Groups: 4},
	}
	for _, g := range goldenPartitionDigests {
		t.Run(fmt.Sprintf("%s/%dcells", g.name, g.cells), func(t *testing.T) {
			cfg := goldenConfig(t, g.name, g.cells)
			serial := mustRun(t, cfg, 1)
			if got := seedDigest(serial); got != g.want {
				t.Errorf("serial digest %s, want %s", got, g.want)
			}
			for _, spec := range specs {
				for _, workers := range []int{1, 4} {
					pcfg := cfg
					pcfg.Partition = spec
					e, err := sim.NewSharded(pcfg, sim.ShardedOptions{Shards: workers})
					if err != nil {
						t.Fatal(err)
					}
					res, err := e.Run()
					if err != nil {
						t.Fatal(err)
					}
					if got := seedDigest(res); got != g.want {
						t.Errorf("%v x %d workers: digest %s, want %s", spec, workers, got, g.want)
					}
				}
			}
		})
	}
}

// TestLocalityPartitionBalancesHotspotEvents is the load-imbalance
// regression test: on the hotspot-19cell workload the locality-aware
// partitioner must spread the event load strictly better than the
// contiguous index-range baseline, whose first group hoards the hot centre.
// The per-group event counts come out through Sharded.GroupEvents and must
// match what the run published to the telemetry registry (probe.Default),
// which is what the telemetry-smoke CI job scrapes.
func TestLocalityPartitionBalancesHotspotEvents(t *testing.T) {
	spec, err := scenario.Preset(scenario.Hotspot)
	if err != nil {
		t.Fatal(err)
	}
	cfg := equivQuickConfig(t, 19)
	if _, err := scenario.Apply(&cfg, spec); err != nil {
		t.Fatal(err)
	}
	maxShare := func(pspec *partition.Spec) float64 {
		t.Helper()
		pcfg := cfg
		pcfg.Partition = pspec
		e, err := sim.NewSharded(pcfg, sim.ShardedOptions{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		groups := e.GroupEvents()
		if len(groups) != 4 {
			t.Fatalf("%v: %d group event counts, want 4", pspec, len(groups))
		}
		if published := probe.Default.GroupEvents(); !reflect.DeepEqual(published, groups) {
			t.Errorf("%v: telemetry registry has %v, engine reports %v", pspec, published, groups)
		}
		var total, max uint64
		for _, n := range groups {
			total += n
			if n > max {
				max = n
			}
		}
		if total != res.Events {
			t.Errorf("%v: group events sum to %d, run processed %d", pspec, total, res.Events)
		}
		if total == 0 {
			t.Fatalf("%v: no events", pspec)
		}
		return float64(max) / float64(total)
	}
	loc := maxShare(&partition.Spec{Kind: partition.KindLocality, Groups: 4})
	base := maxShare(&partition.Spec{Kind: partition.KindIndexRange, Groups: 4})
	if loc >= base {
		t.Errorf("locality max-group event share %.4f not strictly below index-range baseline %.4f", loc, base)
	}
}
