package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/radio"
	"repro/internal/traffic"
)

// quickConfig returns a short simulation of the scaled-down cell used in unit
// tests: it runs in well under a second but exercises voice calls, sessions,
// packet calls, radio transmission, handovers and (optionally) TCP.
func quickConfig(enableTCP bool) Config {
	cfg := DefaultConfig(traffic.Model3, 0.5)
	cfg.EnableTCP = enableTCP
	cfg.WarmupSec = 200
	cfg.MeasurementSec = 1500
	cfg.Batches = 5
	cfg.Seed = 7
	return cfg
}

func runQuick(t *testing.T, cfg Config) Results {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	good := quickConfig(true)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []struct {
		name string
		mod  func(*Config)
	}{
		{"channels", func(c *Config) { c.Channels.TotalChannels = 0 }},
		{"buffer", func(c *Config) { c.BufferSize = 0 }},
		{"sessions", func(c *Config) { c.MaxSessions = 0 }},
		{"session params", func(c *Config) { c.Session.PacketsPerCall = 0 }},
		{"rate", func(c *Config) { c.TotalCallRate = math.NaN() }},
		{"fraction", func(c *Config) { c.GPRSFraction = 2 }},
		{"call duration", func(c *Config) { c.GSMCallDurationSec = 0 }},
		{"dwell", func(c *Config) { c.GSMDwellTimeSec = -1 }},
		{"gprs dwell", func(c *Config) { c.GPRSDwellTimeSec = 0 }},
	}
	for _, m := range mutations {
		cfg := quickConfig(true)
		m.mod(&cfg)
		if err := cfg.Validate(); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: expected ErrInvalidConfig, got %v", m.name, err)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New should reject the configuration", m.name)
		}
	}
}

func TestDefaultConfigMatchesPaperBaseSetting(t *testing.T) {
	cfg := DefaultConfig(traffic.Model3, 1.0)
	if cfg.Channels.TotalChannels != 20 || cfg.Channels.ReservedPDCH != 1 {
		t.Error("channel plan does not match Table 2")
	}
	if cfg.BufferSize != 100 || cfg.MaxSessions != 20 {
		t.Error("buffer or session limit does not match the paper")
	}
	if cfg.Channels.Coding != radio.CS2 {
		t.Error("coding scheme should be CS-2")
	}
	if !cfg.EnableTCP {
		t.Error("the validation simulator uses TCP flow control")
	}
}

func TestRunProducesPlausibleMeasures(t *testing.T) {
	res := runQuick(t, quickConfig(true))

	if res.Events == 0 {
		t.Fatal("no events were processed")
	}
	if res.PacketsOffered == 0 || res.PacketsDelivered == 0 {
		t.Fatalf("no packet traffic simulated: %+v", res)
	}
	cfg := quickConfig(true)
	if res.CarriedDataTraffic.Mean < 0 || res.CarriedDataTraffic.Mean > float64(cfg.Channels.TotalChannels) {
		t.Errorf("CDT = %v out of range", res.CarriedDataTraffic.Mean)
	}
	if res.CarriedVoiceTraffic.Mean <= 0 || res.CarriedVoiceTraffic.Mean > float64(cfg.Channels.GSMChannels()) {
		t.Errorf("CVT = %v out of range", res.CarriedVoiceTraffic.Mean)
	}
	if res.PacketLossProbability.Mean < 0 || res.PacketLossProbability.Mean > 1 {
		t.Errorf("PLP = %v out of range", res.PacketLossProbability.Mean)
	}
	if res.QueueingDelay.Mean < 0 {
		t.Errorf("QD = %v negative", res.QueueingDelay.Mean)
	}
	if res.AverageSessions.Mean <= 0 || res.AverageSessions.Mean > float64(cfg.MaxSessions) {
		t.Errorf("AGS = %v out of range", res.AverageSessions.Mean)
	}
	if res.ThroughputPerUserBits.Mean <= 0 {
		t.Errorf("ATU = %v, want positive", res.ThroughputPerUserBits.Mean)
	}
	if res.GSMBlockingProbability.Mean < 0 || res.GSMBlockingProbability.Mean > 1 {
		t.Errorf("GSM blocking = %v", res.GSMBlockingProbability.Mean)
	}
	if res.PacketsDelivered > res.PacketsOffered {
		t.Errorf("delivered %d exceeds offered %d", res.PacketsDelivered, res.PacketsOffered)
	}
	if res.String() == "" {
		t.Error("String() should render the results")
	}
}

func TestOpenLoopModeRuns(t *testing.T) {
	res := runQuick(t, quickConfig(false))
	if res.PacketsDelivered == 0 {
		t.Fatal("open-loop simulation delivered no packets")
	}
	if res.TCPTimeouts != 0 || res.TCPFastRecovers != 0 {
		t.Error("open-loop mode should not report TCP events")
	}
}

func TestReproducibleWithSameSeed(t *testing.T) {
	cfg := quickConfig(true)
	a := runQuick(t, cfg)
	b := runQuick(t, cfg)
	if a.PacketsOffered != b.PacketsOffered || a.PacketsDelivered != b.PacketsDelivered {
		t.Errorf("same seed produced different packet counts: %d/%d vs %d/%d",
			a.PacketsOffered, a.PacketsDelivered, b.PacketsOffered, b.PacketsDelivered)
	}
	if math.Abs(a.CarriedDataTraffic.Mean-b.CarriedDataTraffic.Mean) > 1e-12 {
		t.Error("same seed produced different CDT")
	}
	cfg.Seed = 99
	c := runQuick(t, cfg)
	if a.PacketsOffered == c.PacketsOffered && a.Events == c.Events {
		t.Error("different seeds should produce different sample paths")
	}
}

func TestNoGPRSTraffic(t *testing.T) {
	cfg := quickConfig(true)
	cfg.GPRSFraction = 0
	res := runQuick(t, cfg)
	if res.PacketsOffered != 0 || res.CarriedDataTraffic.Mean != 0 {
		t.Errorf("no GPRS users should mean no data traffic, got offered=%d CDT=%v",
			res.PacketsOffered, res.CarriedDataTraffic.Mean)
	}
	if res.CarriedVoiceTraffic.Mean <= 0 {
		t.Error("voice should still be carried")
	}
}

func TestNoVoiceTraffic(t *testing.T) {
	cfg := quickConfig(true)
	cfg.GPRSFraction = 1
	cfg.TotalCallRate = 0.1
	res := runQuick(t, cfg)
	if res.CarriedVoiceTraffic.Mean != 0 {
		t.Errorf("CVT = %v with no voice users", res.CarriedVoiceTraffic.Mean)
	}
	if res.PacketsDelivered == 0 {
		t.Error("data should flow with 100% GPRS users")
	}
}

func TestHigherLoadIncreasesVoiceOccupancy(t *testing.T) {
	low := quickConfig(true)
	low.TotalCallRate = 0.1
	high := quickConfig(true)
	high.TotalCallRate = 1.0
	resLow := runQuick(t, low)
	resHigh := runQuick(t, high)
	if resHigh.CarriedVoiceTraffic.Mean <= resLow.CarriedVoiceTraffic.Mean {
		t.Errorf("CVT should grow with load: %v vs %v",
			resHigh.CarriedVoiceTraffic.Mean, resLow.CarriedVoiceTraffic.Mean)
	}
	if resHigh.AverageSessions.Mean <= resLow.AverageSessions.Mean {
		t.Errorf("AGS should grow with load: %v vs %v",
			resHigh.AverageSessions.Mean, resLow.AverageSessions.Mean)
	}
}

func TestSmallBufferCausesLoss(t *testing.T) {
	cfg := quickConfig(false)
	cfg.BufferSize = 3
	cfg.TotalCallRate = 1.5
	cfg.GPRSFraction = 0.3
	res := runQuick(t, cfg)
	if res.PacketsLost == 0 {
		t.Error("a 3-packet buffer under heavy load should drop packets")
	}
	if res.PacketLossProbability.Mean <= 0 {
		t.Error("PLP should be positive")
	}
}

func TestTCPReactsToCongestion(t *testing.T) {
	cfg := quickConfig(true)
	cfg.BufferSize = 5
	cfg.TotalCallRate = 1.5
	cfg.GPRSFraction = 0.3
	res := runQuick(t, cfg)
	if res.TCPTimeouts+res.TCPFastRecovers == 0 {
		t.Error("congestion losses should trigger TCP recovery events")
	}
}

func TestHandoversHappen(t *testing.T) {
	res := runQuick(t, quickConfig(true))
	if res.HandoversIn == 0 || res.HandoversOut == 0 {
		t.Errorf("expected handover flow through the mid cell, got in=%d out=%d",
			res.HandoversIn, res.HandoversOut)
	}
	// In steady state the incoming and outgoing flows should be of the same
	// order of magnitude (they balance exactly only in expectation).
	ratio := float64(res.HandoversIn) / float64(res.HandoversOut)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("handover flows badly unbalanced: in=%d out=%d", res.HandoversIn, res.HandoversOut)
	}
}

func TestRingTopologyRuns(t *testing.T) {
	ring, err := cluster.NewRing(3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(true)
	cfg.Topology = ring
	res := runQuick(t, cfg)
	if res.Events == 0 {
		t.Error("ring topology simulation did not run")
	}
}

func TestMoreReservedPDCHsImproveDataService(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation runs skipped in -short mode")
	}
	// Under heavy voice load, reserving more PDCHs must not increase the
	// packet queueing delay (Fig. 9 of the paper).
	base := quickConfig(false)
	base.TotalCallRate = 1.5
	base.MeasurementSec = 3000

	one := base
	one.Channels.ReservedPDCH = 1
	resOne := runQuick(t, one)

	four := base
	four.Channels.ReservedPDCH = 4
	resFour := runQuick(t, four)

	if resFour.QueueingDelay.Mean > resOne.QueueingDelay.Mean*1.5+0.5 {
		t.Errorf("4 reserved PDCHs should not have much higher delay: %v vs %v",
			resFour.QueueingDelay.Mean, resOne.QueueingDelay.Mean)
	}
}

func TestConfidenceIntervalsAreFinite(t *testing.T) {
	res := runQuick(t, quickConfig(true))
	for name, iv := range map[string]float64{
		"CDT": res.CarriedDataTraffic.HalfWidth,
		"CVT": res.CarriedVoiceTraffic.HalfWidth,
		"AGS": res.AverageSessions.HalfWidth,
	} {
		if math.IsInf(iv, 0) || math.IsNaN(iv) {
			t.Errorf("%s confidence half-width = %v, want finite", name, iv)
		}
	}
}
