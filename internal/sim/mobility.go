package sim

import (
	"fmt"
	"math"
)

// MobilityProfile supplies per-cell, time-dependent dwell-time multipliers to
// the simulator, generalizing the paper's single exponential dwell time per
// service to spatially and temporally skewed mobility: slow pedestrians in a
// hotspot (multipliers above 1), fast vehicles on a highway corridor
// (multipliers below 1). The multiplier scales the mean of the exponential
// dwell of both services in the session's current cell; handover latency and
// target selection are unaffected, so the sharded engine's conservative
// lookahead (HandoverLatencySec) stays valid under every profile.
//
// Profiles are piecewise constant in time — the multiplier returned for time
// t holds on [t, NextChange(t)) — which the simulator's boundary-re-arming
// dwell sampler relies on for exactness, exactly like the arrival generator
// relies on the RateProfile contract. Implementations must be pure functions
// of (cell, t), strictly positive, and safe for concurrent read-only use:
// the sharded engine queries one profile from several shard workers at once,
// and each cell draws its dwell times from its own random variate stream, so
// the serial and the sharded engine stay bit-identical under every profile.
//
// internal/scenario compiles declarative mobility shapes (hotspot, gradient,
// highway corridors crossed with temporal profiles) into MobilityProfile
// values.
type MobilityProfile interface {
	// Multiplier returns the dwell-time multiplier of the given cell at
	// simulation time t, constant on [t, NextChange(t)). Multiplier 1 is the
	// paper's baseline dwell time; values must be strictly positive and
	// finite.
	Multiplier(cell int, t float64) float64
	// NextChange returns the earliest time strictly after t at which any
	// cell's multiplier changes, or +Inf when the multipliers stay constant
	// forever.
	NextChange(t float64) float64
}

// validateMobility spot-checks a configured mobility profile: a profile that
// knows its cell count (scenario.DwellProfile does) must match the topology,
// and every cell's multiplier at time 0 must be finite and strictly positive
// — a zero multiplier would mean a zero mean dwell time, an infinite
// handover rate.
func validateMobility(p MobilityProfile, cells int) error {
	if sized, ok := p.(interface{ NumCells() int }); ok {
		if got := sized.NumCells(); got != cells {
			return fmt.Errorf("%w: mobility profile compiled for %d cells, topology has %d", ErrInvalidConfig, got, cells)
		}
	}
	for i := 0; i < cells; i++ {
		m := p.Multiplier(i, 0)
		if m <= 0 || math.IsNaN(m) || math.IsInf(m, 0) {
			return fmt.Errorf("%w: dwell multiplier %v in cell %d", ErrInvalidConfig, m, i)
		}
	}
	return nil
}
