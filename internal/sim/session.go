package sim

import (
	"repro/internal/des"
	"repro/internal/tcp"
)

// packet is one 480-byte network-layer data packet travelling through the BSC
// buffer of a cell. Packets are recycled through the cell's freelist when they
// are delivered or dropped. connGen snapshots the owning connection record's
// generation at enqueue time: connection records are pooled too, so a packet
// still draining after its transfer ended must not wake the record's next
// occupant (cell.deliver checks the generation).
type packet struct {
	conn       *connection
	connGen    uint64
	seq        int
	enqueuedAt float64
	blocksLeft int
}

// voiceCall is one circuit-switched GSM call. It is anchored to its current
// cell; a handover serializes the call into a voiceState message and
// recreates it in the target cell after the handover latency. Records are
// recycled through the cell's freelist when the call departs or hands over;
// the prebound closures (departFn, handoverFn, setHandoverEv) are created once
// at first allocation and survive reuse.
type voiceCall struct {
	cell       *cell
	departAt   float64
	departEv   des.Handle
	handoverEv des.Handle

	departFn      func()
	handoverFn    func()
	setHandoverEv func(des.Handle)
}

// depart completes the voice call and recycles its record.
func (v *voiceCall) depart() {
	v.cell.removeVoice()
	v.handoverEv.Cancel()
	v.cell.putVoice(v)
}

// scheduleHandover arms the dwell-time timer of the call in its current cell,
// scaled by the cell's mobility profile (see cell.armDwell).
func (v *voiceCall) scheduleHandover() {
	c := v.cell
	c.armDwell(c.env.conf().GSMDwellTimeSec, v.handoverFn, v.setHandoverEv)
}

// handover moves the call towards a neighbouring cell: the call leaves this
// cell immediately and arrives — or is dropped, if the target has no free
// traffic channel — after the handover latency. The record is recycled; the
// serialized voiceState carries everything the target cell needs.
func (v *voiceCall) handover() {
	c := v.cell
	target := c.env.conf().Topology.HandoverTarget(c.id, c.streams.handover.Intn)
	if target < 0 {
		v.scheduleHandover()
		return
	}
	c.handoversOut++
	c.voiceHandoversOut++
	c.removeVoice()
	v.departEv.Cancel()
	departAt := v.departAt
	c.putVoice(v)
	c.env.dispatch(c, target, handoverMsg{kind: hoVoice, voice: voiceState{departAt: departAt}, src: c.id})
}

// session is one GPRS packet-service session: an alternating sequence of
// packet calls (document downloads) and reading times, following the 3GPP
// traffic model of the paper. Like voiceCall it is anchored to its current
// cell; a handover serializes the session's phase into a sessionState message
// and resumes it in the target cell. Records are recycled through the cell's
// freelist when the session ends; the prebound closures are created once at
// first allocation and survive reuse.
type session struct {
	cell *cell

	active          bool
	packetCallsLeft int

	// Closed-loop (TCP) state.
	conn *connection

	// Open-loop (IPP) state.
	packetsLeftInCall int
	genEv             des.Handle

	handoverEv des.Handle

	startPacketCallFn func()
	generatePacketFn  func()
	handoverFn        func()
	setHandoverEv     func(des.Handle)
}

func (s *session) cfg() *Config { return s.cell.env.conf() }

// start begins the first packet call.
func (s *session) start() {
	s.active = true
	s.packetCallsLeft = s.cell.streams.traffic.Geometric(s.cfg().Session.NumPacketCalls)
	s.startPacketCall()
}

// startPacketCall begins the download of one document.
func (s *session) startPacketCall() {
	if !s.active {
		return
	}
	packets := s.cell.streams.traffic.Geometric(s.cfg().Session.PacketsPerCall)
	if s.cfg().EnableTCP {
		s.startTransfer(packets)
		return
	}
	s.packetsLeftInCall = packets
	s.scheduleNextGeneration()
}

// startTransfer opens the TCP connection carrying the given number of
// segments of the current packet call.
func (s *session) startTransfer(segments int) {
	conn, err := newConnection(s, segments)
	if err != nil {
		// The TCP configuration was validated up front; a failure here means
		// the session cannot transfer data, so terminate it.
		s.end()
		return
	}
	s.conn = conn
	conn.pump()
}

// scheduleNextGeneration schedules the next open-loop packet of the current
// packet call after an exponential inter-arrival time.
func (s *session) scheduleNextGeneration() {
	gap := s.cell.streams.traffic.Exponential(s.cfg().Session.PacketInterarrivalSec)
	s.genEv = s.cell.schedule(gap, s.generatePacketFn)
}

// generatePacket emits one open-loop packet into the BSC buffer of the
// session's current cell.
func (s *session) generatePacket() {
	if !s.active {
		return
	}
	s.cell.enqueue(s.cell.getPacket())
	s.packetsLeftInCall--
	if s.packetsLeftInCall > 0 {
		s.scheduleNextGeneration()
		return
	}
	s.packetCallComplete()
}

// packetCallComplete finishes the current packet call: either the session
// ends (no packet calls left) or a reading time starts before the next one.
func (s *session) packetCallComplete() {
	if !s.active {
		return
	}
	s.conn = nil
	s.packetCallsLeft--
	if s.packetCallsLeft <= 0 {
		s.end()
		return
	}
	reading := s.cell.streams.traffic.Exponential(s.cfg().Session.ReadingTimeSec)
	s.genEv = s.cell.schedule(reading, s.startPacketCallFn)
}

// end terminates the session, releases its slot in the current cell, and
// recycles the record. Callers must not touch the session afterwards.
func (s *session) end() {
	if !s.active {
		return
	}
	s.active = false
	s.cell.removeSession()
	s.handoverEv.Cancel()
	s.genEv.Cancel()
	if s.conn != nil {
		s.conn.abort()
		s.conn = nil
	}
	s.cell.putSession(s)
}

// handover moves the session towards a neighbouring cell. The session leaves
// this cell immediately: pending timers are carried as absolute times, and an
// active TCP transfer is interrupted — its unreceived segments restart in the
// target cell, while segments already queued at this cell's BSC drain without
// acknowledgement effect (the service interruption of a GPRS cell change).
// If the target has reached its session limit when the session arrives, the
// session is dropped (handover failure).
func (s *session) handover() {
	if !s.active {
		return
	}
	c := s.cell
	target := s.cfg().Topology.HandoverTarget(c.id, c.streams.handover.Intn)
	if target < 0 {
		s.scheduleHandover()
		return
	}
	c.handoversOut++
	c.sessionHandoversOut++
	st := s.captureState()
	s.end()
	c.env.dispatch(c, target, handoverMsg{kind: hoSession, sess: st, src: c.id})
}

// captureState serializes the session's activity phase for handover transit.
func (s *session) captureState() sessionState {
	st := sessionState{packetCallsLeft: s.packetCallsLeft}
	switch {
	case s.conn != nil:
		st.phase = phaseTCP
		st.packetsLeft = s.conn.total - s.conn.recvNext
	case s.packetsLeftInCall > 0:
		st.phase = phaseOpenLoop
		st.packetsLeft = s.packetsLeftInCall
		st.resumeAt = s.genEv.Time()
	default:
		st.phase = phaseReading
		st.resumeAt = s.genEv.Time()
	}
	return st
}

// scheduleHandover arms the dwell-time timer in the current cell, scaled by
// the cell's mobility profile (see cell.armDwell).
func (s *session) scheduleHandover() {
	c := s.cell
	c.armDwell(s.cfg().GPRSDwellTimeSec, s.handoverFn, s.setHandoverEv)
}

// connection is the TCP transfer of one packet call: a fixed-network sender
// paced by Reno congestion control, the BSC buffer as the bottleneck, and the
// mobile station as receiver returning cumulative acknowledgements. A
// connection lives and dies within one cell: the session's handover aborts it
// and restarts the outstanding segments in the target cell, so all of its
// events stay on the calendar of the cell that opened it.
//
// Connection records are pooled on the cell's freelist like every other model
// record, so the TCP path honours the allocation-free contract too: the
// per-segment bookkeeping lives in grow-only slices cleared on reuse, the
// segment/ACK transit hops are pooled connTransit records with closures bound
// once, and the tcp.Sender is allocated once per record and Reset on reuse.
// gen increments at every acquisition and is never reset, so packets and
// transit records stamped with an old generation can recognise that the
// record has moved on to a new transfer (the ABA guard of the pool).
type connection struct {
	sess   *session
	cell   *cell
	sender *tcp.Sender
	gen    uint64

	total    int
	recvNext int
	// Per-segment bookkeeping, indexed by sequence number: delivered marks
	// segments received by the mobile, sent/retrans and sendTime drive
	// Karn-sampled RTT measurements. The slices start at total entries but
	// extend on demand (ensureSeq): a fast retransmit issued after a timeout
	// resent everything can carry a sequence one past the document, which the
	// receiver acknowledges like any other segment.
	delivered []bool
	sent      []bool
	retrans   []bool
	sendTime  []float64

	rtoEv des.Handle
	done  bool

	onTimeoutFn func()
}

// newConnection acquires a pooled connection record of the session's cell for
// a transfer of totalSegments segments. The record returns fully reset: a
// recycled sender restarts in slow start, the per-segment slices are cleared
// (growing only when this transfer exceeds the record's historical maximum),
// and the generation advances so stale packets and transits stand down.
func newConnection(s *session, totalSegments int) (*connection, error) {
	c := s.cell.getConn()
	if c.sender == nil {
		sender, err := tcp.NewSender(s.cfg().TCP)
		if err != nil {
			s.cell.putConn(c)
			return nil, err
		}
		c.sender = sender
	} else {
		c.sender.Reset()
	}
	c.gen++
	c.sess = s
	c.done = false
	c.total = totalSegments
	c.recvNext = 0
	c.delivered = growBools(c.delivered, totalSegments)
	c.sent = growBools(c.sent, totalSegments)
	c.retrans = growBools(c.retrans, totalSegments)
	c.sendTime = growFloats(c.sendTime, totalSegments)
	return c, nil
}

// growBools returns b resized to n cleared entries, reusing its backing array
// when it is large enough and rounding growth to powers of two so a record's
// slices stop allocating once it has seen its largest transfer.
func growBools(b []bool, n int) []bool {
	if cap(b) < n {
		c := 1
		for c < n {
			c <<= 1
		}
		return make([]bool, n, c)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// growFloats is the float64 counterpart of growBools.
func growFloats(f []float64, n int) []float64 {
	if cap(f) < n {
		c := 1
		for c < n {
			c <<= 1
		}
		return make([]float64, n, c)
	}
	f = f[:n]
	for i := range f {
		f[i] = 0
	}
	return f
}

// ensureSeq extends the per-segment bookkeeping to cover sequence seq,
// zero-filling the new tail. Growth past total happens only in the rare
// phantom-retransmit case, so amortized this never allocates at steady state.
func (c *connection) ensureSeq(seq int) {
	for len(c.delivered) <= seq {
		c.delivered = append(c.delivered, false)
		c.sent = append(c.sent, false)
		c.retrans = append(c.retrans, false)
		c.sendTime = append(c.sendTime, 0)
	}
}

// pump transmits new segments while the congestion window allows it.
func (c *connection) pump() {
	for !c.done && c.sender.CanSend() && c.sender.NextSequence() < c.total {
		seq := c.sender.OnSend()
		c.send(seq)
	}
}

// send ships one segment towards the BSC after the core-network delay.
func (c *connection) send(seq int) {
	if c.done {
		return
	}
	c.ensureSeq(seq)
	if c.sent[seq] {
		c.retrans[seq] = true
	}
	c.sent[seq] = true
	c.sendTime[seq] = c.cell.now()
	t := c.cell.getCT()
	t.conn = c
	t.gen = c.gen
	t.kind = ctSegment
	t.seq = seq
	c.cell.schedule(c.sess.cfg().CoreNetworkDelaySec, t.fn)
	c.restartRTO()
}

// onDelivered is called when a segment reaches the mobile station; the
// receiver advances its cumulative ACK and returns it over the uplink.
func (c *connection) onDelivered(seq int) {
	if c.done {
		return
	}
	c.ensureSeq(seq)
	if !c.delivered[seq] {
		c.delivered[seq] = true
		for c.recvNext < len(c.delivered) && c.delivered[c.recvNext] {
			c.recvNext++
		}
	}
	t := c.cell.getCT()
	t.conn = c
	t.gen = c.gen
	t.kind = ctAck
	t.seq = seq
	t.ack = c.recvNext
	c.cell.schedule(c.sess.cfg().UplinkDelaySec+c.sess.cfg().CoreNetworkDelaySec, t.fn)
}

// onAck processes a cumulative acknowledgement arriving at the sender.
func (c *connection) onAck(ackVal, sampleSeq int) {
	if c.done {
		return
	}
	var sample float64
	if c.sent[sampleSeq] && !c.retrans[sampleSeq] {
		sample = c.cell.now() - c.sendTime[sampleSeq]
	}
	res := c.sender.OnAck(ackVal, sample)
	if res.FastRetransmit {
		seq := c.sender.OnRetransmit()
		c.send(seq)
	}
	if c.recvNext >= c.total && c.sender.InFlight() == 0 {
		c.complete()
		return
	}
	if c.sender.InFlight() > 0 {
		c.restartRTO()
	} else {
		c.rtoEv.Cancel()
	}
	c.pump()
}

// onTimeout reacts to a retransmission timeout: collapse the window and
// resend go-back-N style from the last cumulative acknowledgement.
func (c *connection) onTimeout() {
	if c.done {
		return
	}
	c.sender.OnTimeout()
	c.restartRTO()
	c.pump()
}

// restartRTO re-arms the retransmission timer.
func (c *connection) restartRTO() {
	c.rtoEv.Cancel()
	c.rtoEv = c.cell.schedule(c.sender.RTO(), c.onTimeoutFn)
}

// complete finishes the transfer, recycles the record, and hands control back
// to the session. Recycling before the session callback is safe on the
// single-goroutine calendar: packetCallComplete detaches the session from the
// connection as its first action, and any transfer it starts next acquires a
// record (possibly this one) only after the detach.
func (c *connection) complete() {
	if c.done {
		return
	}
	c.done = true
	c.rtoEv.Cancel()
	c.cell.tcpTimeouts += int64(c.sender.Timeouts())
	c.cell.tcpFastRecovers += int64(c.sender.FastRecoveries())
	sess := c.sess
	c.cell.putConn(c)
	sess.packetCallComplete()
}

// abort terminates the transfer without notifying the session (used when the
// session itself ends or leaves the cell) and recycles the record. The
// sender's congestion events are credited to the cell the transfer ran in;
// callers must capture any transfer state they need before aborting.
func (c *connection) abort() {
	if c.done {
		return
	}
	c.done = true
	c.rtoEv.Cancel()
	c.cell.tcpTimeouts += int64(c.sender.Timeouts())
	c.cell.tcpFastRecovers += int64(c.sender.FastRecoveries())
	c.cell.putConn(c)
}
