package sim

import (
	"repro/internal/des"
	"repro/internal/tcp"
)

// voiceCall is one circuit-switched GSM call moving through the cluster.
type voiceCall struct {
	cellID     int
	departEv   *des.Event
	handoverEv *des.Event
}

// session is one GPRS packet-service session: an alternating sequence of
// packet calls (document downloads) and reading times, following the 3GPP
// traffic model of the paper.
type session struct {
	id     int
	cellID int
	sim    *Simulator

	active          bool
	packetCallsLeft int

	// Closed-loop (TCP) state.
	conn *connection

	// Open-loop (IPP) state.
	packetsLeftInCall int
	genEv             *des.Event

	handoverEv *des.Event
	seqCounter int
}

// start begins the first packet call.
func (s *session) start() {
	s.active = true
	s.packetCallsLeft = s.sim.streams.traffic.Geometric(s.sim.cfg.Session.NumPacketCalls)
	s.startPacketCall()
}

// startPacketCall begins the download of one document.
func (s *session) startPacketCall() {
	if !s.active {
		return
	}
	packets := s.sim.streams.traffic.Geometric(s.sim.cfg.Session.PacketsPerCall)
	if s.sim.cfg.EnableTCP {
		conn, err := newConnection(s, packets)
		if err != nil {
			// The TCP configuration was validated up front; a failure here
			// means the session cannot transfer data, so terminate it.
			s.end()
			return
		}
		s.conn = conn
		conn.pump()
		return
	}
	s.packetsLeftInCall = packets
	s.scheduleNextGeneration()
}

// scheduleNextGeneration schedules the next open-loop packet of the current
// packet call after an exponential inter-arrival time.
func (s *session) scheduleNextGeneration() {
	gap := s.sim.streams.traffic.Exponential(s.sim.cfg.Session.PacketInterarrivalSec)
	s.genEv = s.sim.schedule(gap, s.generatePacket)
}

// generatePacket emits one open-loop packet into the BSC buffer of the
// session's current cell.
func (s *session) generatePacket() {
	if !s.active {
		return
	}
	p := &packet{owner: s, seq: s.seqCounter}
	s.seqCounter++
	s.sim.cells[s.cellID].enqueue(p)
	s.packetsLeftInCall--
	if s.packetsLeftInCall > 0 {
		s.scheduleNextGeneration()
		return
	}
	s.packetCallComplete()
}

// packetCallComplete finishes the current packet call: either the session
// ends (no packet calls left) or a reading time starts before the next one.
func (s *session) packetCallComplete() {
	if !s.active {
		return
	}
	s.conn = nil
	s.packetCallsLeft--
	if s.packetCallsLeft <= 0 {
		s.end()
		return
	}
	reading := s.sim.streams.traffic.Exponential(s.sim.cfg.Session.ReadingTimeSec)
	s.genEv = s.sim.schedule(reading, s.startPacketCall)
}

// end terminates the session and releases its slot in the current cell.
func (s *session) end() {
	if !s.active {
		return
	}
	s.active = false
	s.sim.cells[s.cellID].removeSession()
	s.handoverEv.Cancel()
	s.genEv.Cancel()
	if s.conn != nil {
		s.conn.abort()
		s.conn = nil
	}
}

// handover moves the session to a neighbouring cell, or drops it if the
// target cell has reached its session limit.
func (s *session) handover() {
	if !s.active {
		return
	}
	old := s.sim.cells[s.cellID]
	targetID := s.sim.cfg.Topology.HandoverTarget(s.cellID, s.sim.streams.handover.Intn)
	if targetID < 0 {
		s.scheduleHandover()
		return
	}
	target := s.sim.cells[targetID]
	old.handoversOut++
	if !target.canAdmitSession() {
		// Handover failure: the session is forced to terminate.
		s.end()
		return
	}
	old.removeSession()
	target.addSession()
	target.handoversIn++
	s.cellID = targetID
	s.scheduleHandover()
}

// scheduleHandover arms the dwell-time timer in the current cell.
func (s *session) scheduleHandover() {
	dwell := s.sim.streams.handover.Exponential(s.sim.cfg.GPRSDwellTimeSec)
	s.handoverEv = s.sim.schedule(dwell, s.handover)
}

// connection is the TCP transfer of one packet call: a fixed-network sender
// paced by Reno congestion control, the BSC buffer as the bottleneck, and the
// mobile station as receiver returning cumulative acknowledgements.
type connection struct {
	sess   *session
	sim    *Simulator
	sender *tcp.Sender

	total         int
	recvNext      int
	deliveredSeqs map[int]bool
	sendTimes     map[int]float64
	retransmitted map[int]bool

	rtoEv *des.Event
	done  bool
}

func newConnection(s *session, totalSegments int) (*connection, error) {
	sender, err := tcp.NewSender(s.sim.cfg.TCP)
	if err != nil {
		return nil, err
	}
	return &connection{
		sess:          s,
		sim:           s.sim,
		sender:        sender,
		total:         totalSegments,
		deliveredSeqs: make(map[int]bool, totalSegments),
		sendTimes:     make(map[int]float64, totalSegments),
		retransmitted: make(map[int]bool),
	}, nil
}

// pump transmits new segments while the congestion window allows it.
func (c *connection) pump() {
	for !c.done && c.sender.CanSend() && c.sender.NextSequence() < c.total {
		seq := c.sender.OnSend()
		c.send(seq)
	}
}

// send ships one segment towards the BSC after the core-network delay.
func (c *connection) send(seq int) {
	if c.done {
		return
	}
	if _, seen := c.sendTimes[seq]; seen {
		c.retransmitted[seq] = true
	}
	c.sendTimes[seq] = c.sim.now()
	c.sim.schedule(c.sim.cfg.CoreNetworkDelaySec, func() {
		if c.done || !c.sess.active {
			return
		}
		p := &packet{owner: c.sess, conn: c, seq: seq}
		c.sim.cells[c.sess.cellID].enqueue(p)
	})
	c.restartRTO()
}

// onDelivered is called when a segment reaches the mobile station; the
// receiver advances its cumulative ACK and returns it over the uplink.
func (c *connection) onDelivered(seq int, at float64) {
	if c.done {
		return
	}
	if !c.deliveredSeqs[seq] {
		c.deliveredSeqs[seq] = true
		for c.deliveredSeqs[c.recvNext] {
			c.recvNext++
		}
	}
	ackVal := c.recvNext
	delay := c.sim.cfg.UplinkDelaySec + c.sim.cfg.CoreNetworkDelaySec
	c.sim.schedule(delay+(at-c.sim.now()), func() { c.onAck(ackVal, seq) })
}

// onAck processes a cumulative acknowledgement arriving at the sender.
func (c *connection) onAck(ackVal, sampleSeq int) {
	if c.done {
		return
	}
	var sample float64
	if !c.retransmitted[sampleSeq] {
		if sent, ok := c.sendTimes[sampleSeq]; ok {
			sample = c.sim.now() - sent
		}
	}
	res := c.sender.OnAck(ackVal, sample)
	if res.FastRetransmit {
		seq := c.sender.OnRetransmit()
		c.send(seq)
	}
	if c.recvNext >= c.total && c.sender.InFlight() == 0 {
		c.complete()
		return
	}
	if c.sender.InFlight() > 0 {
		c.restartRTO()
	} else {
		c.rtoEv.Cancel()
	}
	c.pump()
}

// onTimeout reacts to a retransmission timeout: collapse the window and
// resend go-back-N style from the last cumulative acknowledgement.
func (c *connection) onTimeout() {
	if c.done {
		return
	}
	c.sender.OnTimeout()
	c.restartRTO()
	c.pump()
}

// restartRTO re-arms the retransmission timer.
func (c *connection) restartRTO() {
	c.rtoEv.Cancel()
	c.rtoEv = c.sim.schedule(c.sender.RTO(), c.onTimeout)
}

// complete finishes the transfer and hands control back to the session.
func (c *connection) complete() {
	if c.done {
		return
	}
	c.done = true
	c.rtoEv.Cancel()
	c.sim.totalTimeouts += int64(c.sender.Timeouts())
	c.sim.totalFastRecovers += int64(c.sender.FastRecoveries())
	c.sess.packetCallComplete()
}

// abort terminates the transfer without notifying the session (used when the
// session itself ends or is dropped at a handover).
func (c *connection) abort() {
	if c.done {
		return
	}
	c.done = true
	c.rtoEv.Cancel()
	c.sim.totalTimeouts += int64(c.sender.Timeouts())
	c.sim.totalFastRecovers += int64(c.sender.FastRecoveries())
}
