// Package sim implements the detailed network-level GPRS simulator the paper
// uses to validate the Markov model (Section 5.2): a cluster of seven
// hexagonal cells serving GSM voice calls and GPRS data sessions, explicit
// handover procedures, TDMA-block-level transmission of data packets over
// dynamically allocated PDCHs with GSM pre-emption priority, a finite FIFO
// buffer at the BSC, and TCP flow control (slow start, congestion avoidance,
// fast retransmit, retransmission timeouts) for the packet calls of the 3GPP
// traffic model. Measurements are collected in the mid cell and reported with
// batch-means 95% confidence intervals.
package sim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/partition"
	"repro/internal/policy"
	"repro/internal/probe"
	"repro/internal/radio"
	"repro/internal/tcp"
	"repro/internal/traffic"
)

// ErrInvalidConfig is returned for inconsistent simulator configurations.
var ErrInvalidConfig = errors.New("sim: invalid configuration")

// Config parameterizes one simulation run.
type Config struct {
	// Topology is the cell cluster; nil means the seven-cell hexagonal
	// cluster of the paper.
	Topology *cluster.Topology

	// Channels, BufferSize, MaxSessions, Session, TotalCallRate,
	// GPRSFraction and the duration fields have the same meaning as in the
	// analytical model (core.Config); TotalCallRate is per cell.
	Channels      radio.ChannelPlan
	BufferSize    int
	MaxSessions   int
	Session       traffic.SessionParams
	TotalCallRate float64
	GPRSFraction  float64

	GSMCallDurationSec float64
	GSMDwellTimeSec    float64
	GPRSDwellTimeSec   float64

	// Rates, when non-nil, overrides the homogeneous fresh-arrival load
	// derived from TotalCallRate and GPRSFraction with per-cell,
	// time-dependent arrival rates (hotspot cells, load gradients, busy-hour
	// ramps — see internal/scenario). A nil value means the uniform constant
	// profile BaseRates(), the symmetric load of the paper. Handover, dwell,
	// and service parameters are unaffected. Implementations must satisfy the
	// RateProfile contract (piecewise constant, concurrency-safe, pure).
	Rates RateProfile

	// Mobility, when non-nil, scales the mean GSM/GPRS dwell times per cell
	// and time (slow users in a hotspot, fast users on a highway corridor —
	// see internal/scenario), skewing the handover flow itself. A nil value
	// means multiplier 1 everywhere, the paper's single dwell time per
	// service. Arrival, service, and handover-latency parameters are
	// unaffected. Implementations must satisfy the MobilityProfile contract
	// (piecewise constant, strictly positive, concurrency-safe, pure).
	Mobility MobilityProfile

	// Policy, when non-nil, selects the admission/handover policy of every
	// cell — guard channels, queued handovers, or directed retry (see
	// internal/policy). A nil value is the paper's default admission: fresh
	// calls and handovers share the voice channels, and a handover finding
	// the target cell full is dropped. Policies are pure admission rules and
	// consume no random draws, so a nil policy reproduces the historic
	// engines bit for bit (pinned by the golden-digest suite) and every
	// policy behaves identically in the serial and the sharded engine.
	Policy *policy.Config

	// HandoverLatencySec is the service interruption of a handover: the time
	// a user is in transit between the source and the target cell, occupying
	// resources in neither (default 100 ms, the classic GSM handover
	// interruption). It doubles as the synchronization lookahead of the
	// sharded engine: cross-cell handovers are the only inter-cell
	// interaction, so shards can safely advance in windows of this length.
	HandoverLatencySec float64

	// EnableTCP selects closed-loop packet calls (each packet call is a TCP
	// transfer reacting to BSC buffer overflow). When false, packets are
	// generated open loop by the IPP of the 3GPP traffic model.
	EnableTCP bool
	// TCP configures the per-connection congestion control when EnableTCP is
	// set; the zero value uses the package defaults.
	TCP tcp.Config
	// CoreNetworkDelaySec is the one-way delay between the fixed-network TCP
	// sender and the BSC (default 50 ms).
	CoreNetworkDelaySec float64
	// UplinkDelaySec is the delay for acknowledgements travelling back from
	// the mobile station to the sender (default 100 ms).
	UplinkDelaySec float64

	// WarmupSec is the initial transient discarded before measurements start
	// (default 2000 s).
	WarmupSec float64
	// MeasurementSec is the measured simulation time after the warm-up
	// (default 20000 s).
	MeasurementSec float64
	// Batches is the number of batch-means batches the measurement period is
	// divided into (default 10).
	Batches int
	// ConfidenceLevel is the confidence level of the reported intervals
	// (default 0.95).
	ConfidenceLevel float64
	// Seed makes the run reproducible.
	Seed int64
	// Streams selects the draw behaviour of every random variate stream of
	// the run. The zero value (des.StreamDefault) reproduces the historic
	// draws bit-identically; des.StreamPaired and des.StreamAntithetic derive
	// every variate by inversion from a single uniform draw so two runs with
	// the same Seed and the two kinds form an antithetic pair — the
	// variance-reduction mode of the replication runner sets this field.
	Streams des.StreamKind

	// Partition selects how the sharded engine groups cells into shard
	// calendars (see internal/partition): each group shares one event
	// calendar and only cross-group handovers travel as window-barrier
	// messages. A nil value means the locality-aware partitioner with one
	// group per worker. Like the shard layout itself, the partitioning never
	// affects results — every valid assignment is bit-identical to the
	// serial engine (pinned by the partition-equivalence suite) — it only
	// shifts load balance and barrier traffic. The serial engine ignores it.
	Partition *partition.Spec

	// EventQueue selects the event-list implementation of the engine's
	// calendars. The zero value (des.HeapQueue) is the binary-heap reference;
	// des.CalendarQueue selects the Brown calendar queue. Every kind produces
	// bit-identical results — the choice affects performance only.
	EventQueue des.QueueKind

	// Probe, when non-nil, arms the deterministic sim-time series probe: the
	// run records every cell's counters and time-averaged gauges at fixed
	// window boundaries of Probe.IntervalSec across the measurement period.
	// Arming never changes a single bit of the Results (see the determinism
	// contract of package probe); the recorded series travels out of band,
	// via Simulator.Series, Sharded.Series, or RunOnceSeries.
	Probe *probe.Spec
}

// DefaultConfig returns the simulator configuration matching the base
// parameter setting of Table 2 with the given traffic model and per-cell call
// arrival rate, with TCP flow control enabled.
func DefaultConfig(model traffic.Model, totalCallRate float64) Config {
	spec := model.Spec()
	return Config{
		Channels: radio.ChannelPlan{
			TotalChannels: 20,
			ReservedPDCH:  1,
			Coding:        radio.CS2,
		},
		BufferSize:          100,
		MaxSessions:         spec.MaxSessions,
		Session:             spec.Session,
		TotalCallRate:       totalCallRate,
		GPRSFraction:        0.05,
		GSMCallDurationSec:  120,
		GSMDwellTimeSec:     60,
		GPRSDwellTimeSec:    120,
		EnableTCP:           true,
		CoreNetworkDelaySec: 0.05,
		UplinkDelaySec:      0.1,
		WarmupSec:           2000,
		MeasurementSec:      20000,
		Batches:             10,
		ConfidenceLevel:     0.95,
		Seed:                1,
	}
}

func (c Config) withDefaults() Config {
	if c.Topology == nil {
		c.Topology = cluster.NewHexCluster()
	}
	if c.HandoverLatencySec <= 0 {
		c.HandoverLatencySec = 0.1
	}
	if c.CoreNetworkDelaySec <= 0 {
		c.CoreNetworkDelaySec = 0.05
	}
	if c.UplinkDelaySec <= 0 {
		c.UplinkDelaySec = 0.1
	}
	if c.Rates == nil {
		voice, data := c.BaseRates()
		c.Rates = uniformRates{voice: voice, data: data}
	}
	if c.WarmupSec < 0 {
		c.WarmupSec = 0
	}
	if c.MeasurementSec <= 0 {
		c.MeasurementSec = 20000
	}
	if c.Batches <= 0 {
		c.Batches = 10
	}
	if c.ConfidenceLevel <= 0 || c.ConfidenceLevel >= 1 {
		c.ConfidenceLevel = 0.95
	}
	return c
}

// Validate reports whether the configuration is well formed.
func (c Config) Validate() error {
	if err := c.Channels.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	if c.Policy != nil {
		if err := c.Policy.Validate(c.Channels.GSMChannels()); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
	}
	if c.BufferSize < 1 {
		return fmt.Errorf("%w: buffer size %d", ErrInvalidConfig, c.BufferSize)
	}
	if c.MaxSessions < 1 {
		return fmt.Errorf("%w: max sessions %d", ErrInvalidConfig, c.MaxSessions)
	}
	if err := c.Session.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	if c.TotalCallRate < 0 || math.IsNaN(c.TotalCallRate) || math.IsInf(c.TotalCallRate, 0) {
		return fmt.Errorf("%w: total call rate %v", ErrInvalidConfig, c.TotalCallRate)
	}
	if c.GPRSFraction < 0 || c.GPRSFraction > 1 || math.IsNaN(c.GPRSFraction) {
		return fmt.Errorf("%w: GPRS fraction %v", ErrInvalidConfig, c.GPRSFraction)
	}
	for name, v := range map[string]float64{
		"GSM call duration": c.GSMCallDurationSec,
		"GSM dwell time":    c.GSMDwellTimeSec,
		"GPRS dwell time":   c.GPRSDwellTimeSec,
	} {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: %s = %v", ErrInvalidConfig, name, v)
		}
	}
	if c.HandoverLatencySec < 0 || math.IsNaN(c.HandoverLatencySec) || math.IsInf(c.HandoverLatencySec, 0) {
		return fmt.Errorf("%w: handover latency = %v", ErrInvalidConfig, c.HandoverLatencySec)
	}
	if c.Streams < des.StreamDefault || c.Streams > des.StreamAntithetic {
		return fmt.Errorf("%w: stream kind %d", ErrInvalidConfig, c.Streams)
	}
	if c.EventQueue < des.HeapQueue || c.EventQueue > des.CalendarQueue {
		return fmt.Errorf("%w: event queue kind %d", ErrInvalidConfig, c.EventQueue)
	}
	if c.EnableTCP {
		if err := c.TCP.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
	}
	if c.Partition != nil {
		if err := c.Partition.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
	}
	if c.Probe != nil {
		measurement := c.MeasurementSec
		if measurement <= 0 {
			measurement = 20000 // withDefaults applies the same fallback
		}
		if err := c.Probe.Validate(measurement); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
	}
	if c.Topology != nil {
		if err := c.Topology.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
	}
	if c.Rates != nil || c.Mobility != nil {
		cells := cluster.NewHexCluster().NumCells()
		if c.Topology != nil {
			cells = c.Topology.NumCells()
		}
		if c.Rates != nil {
			if err := validateRates(c.Rates, cells); err != nil {
				return err
			}
		}
		if c.Mobility != nil {
			if err := validateMobility(c.Mobility, cells); err != nil {
				return err
			}
		}
	}
	return nil
}
