package sim

import (
	"fmt"
	"runtime"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/partition"
	"repro/internal/probe"
	"repro/internal/shard"
)

// ShardedOptions configures the shard-parallel engine.
type ShardedOptions struct {
	// Shards is the number of workers advancing cell groups in parallel; the
	// zero value means min(NumCPU, number of groups). It also sets the
	// default group count when Config.Partition does not pin one. Neither
	// the worker count nor the grouping ever affects results — a given
	// (seed, configuration) is bit-identical for every partitioning and
	// worker count, and identical to the serial engine.
	Shards int
	// Limiter, when non-nil, bounds the shard workers together with outer
	// fan-outs (typically the replication pool's shared runner.Limiter), so
	// shard-level and replication-level parallelism compose under one global
	// worker bound.
	Limiter shard.Limiter
}

// Sharded runs the detailed network-level model with one event calendar per
// cell group, advanced in conservative time windows by the shard engine. The
// cell→group assignment comes from Config.Partition (internal/partition;
// locality-aware grouping by default), cells of one group interact directly
// on their shared calendar exactly like the serial engine, and only
// cross-group handovers travel as barrier messages. The window length
// (synchronization lookahead) is the handover latency: handovers are the only
// cross-cell interaction, and a handover decided at time t takes effect at
// t + HandoverLatencySec, so no message can arrive inside the window that
// produced it. Cross-group handovers are merged deterministically by
// (timestamp, source group, sequence number), which makes the results
// reproducible regardless of the partitioning, worker count, or shard layout.
type Sharded struct {
	config Config
	bpp    int
	cells  []*cell
	groups []*groupProc
	part   *partition.Assignment
	engine *shard.Engine
	pstate *probeState
}

// groupProc adapts one cell group (with its shared calendar) to the shard
// engine's Process interface, buffering outbound cross-group handovers until
// the window barrier.
type groupProc struct {
	id     int
	eng    *des.Simulation
	outbox []shard.Message
	seq    uint64

	// free recycles handover transit records. A record is acquired from the
	// source group's pool at dispatch and released into the destination
	// group's pool when its delivery fires — each pool is only ever touched
	// by the goroutine currently advancing its group (or by the barrier), so
	// no locking is needed. Intra-group handovers acquire and release on the
	// same pool, like the serial engine's freelist.
	free []*groupTransit
}

// groupTransit is one handover message in flight between cells of the sharded
// engine. It rides as the message Payload (a pointer, so boxing into the
// interface does not allocate); fn is bound to the record once, at first
// allocation, so dispatch and delivery allocate nothing in steady state.
type groupTransit struct {
	grp  *groupProc // pool that receives the record back after delivery
	cell *cell      // destination cell
	msg  handoverMsg
	fn   func()
}

func (p *groupProc) getTransit() *groupTransit {
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return t
	}
	t := &groupTransit{}
	t.fn = func() {
		g := t.grp
		t.cell.receive(t.msg)
		t.msg = handoverMsg{}
		t.cell = nil
		t.grp = nil
		g.free = append(g.free, t)
	}
	return t
}

// Advance resets the outbox of the previous window (its messages were merged
// at the barrier), runs the group's calendar, and returns the buffered
// messages without copying — the shard engine consumes the slice before this
// group's next Advance call.
func (p *groupProc) Advance(t float64) []shard.Message {
	p.outbox = p.outbox[:0]
	p.eng.RunUntil(t)
	if len(p.outbox) == 0 {
		return nil
	}
	return p.outbox
}

func (p *groupProc) Deliver(m shard.Message) {
	t := m.Payload.(*groupTransit)
	t.grp = p
	if _, err := p.eng.Schedule(m.At, t.fn); err != nil {
		// The shard engine guarantees m.At is at or beyond this group's
		// clock, and Schedule accepts the current time.
		panic(err)
	}
}

// RunOnce builds and runs one simulator to completion: on the serial
// single-calendar engine, or on the sharded engine when opt.Shards > 1. The
// two engines are bit-identical for a given configuration, so opt affects
// only how the run is scheduled. It is the single engine-selection point
// shared by cmd/gprs-sim and the replication runner.
func RunOnce(cfg Config, opt ShardedOptions) (Results, error) {
	if opt.Shards > 1 {
		e, err := NewSharded(cfg, opt)
		if err != nil {
			return Results{}, err
		}
		return e.Run()
	}
	s, err := New(cfg)
	if err != nil {
		return Results{}, err
	}
	return s.Run()
}

// RunOnceSeries is RunOnce with the recorded sim-time series returned
// alongside the results. The series is nil when cfg.Probe is unset; the
// Results are bit-identical to RunOnce's either way (the probe's determinism
// contract). Like RunOnce it is single-use per call: it builds a fresh engine.
func RunOnceSeries(cfg Config, opt ShardedOptions) (Results, *probe.Series, error) {
	if opt.Shards > 1 {
		e, err := NewSharded(cfg, opt)
		if err != nil {
			return Results{}, nil, err
		}
		res, err := e.Run()
		if err != nil {
			return Results{}, nil, err
		}
		return res, e.Series(), nil
	}
	s, err := New(cfg)
	if err != nil {
		return Results{}, nil, err
	}
	res, err := s.Run()
	if err != nil {
		return Results{}, nil, err
	}
	return res, s.Series(), nil
}

// NewSharded validates the configuration, resolves the cell→group partition,
// and builds a sharded simulator. Like a Simulator it is single-use; Run may
// use up to Shards goroutines. When Config.Partition is nil the cells are
// grouped by the locality-aware partitioner into one group per worker, using
// the rate profile's integrated per-cell load as weights.
func NewSharded(cfg Config, opt ShardedOptions) (*Sharded, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Resolve the partition against the defaulted configuration: group
	// calendars are created per group and shared by the member cells, so the
	// assignment must exist before the cells do. buildCells re-applies the
	// same validation and defaulting, which is idempotent.
	dcfg := cfg.withDefaults()
	workers := opt.Shards
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if n := dcfg.Topology.NumCells(); workers > n {
		workers = n
	}
	spec := dcfg.Partition
	if spec == nil {
		spec = &partition.Spec{Kind: partition.KindLocality}
	}
	assign, err := spec.Build(dcfg.Topology, cellLoadWeights(dcfg), workers)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}

	s := &Sharded{part: assign}
	calendars := make([]*des.Simulation, assign.NumGroups())
	for g := range calendars {
		calendars[g] = des.NewSimulationQueue(cfg.EventQueue)
	}
	s.config, s.bpp, s.cells, err = buildCells(cfg, s, func(i int) *des.Simulation { return calendars[assign.Of(i)] })
	if err != nil {
		return nil, err
	}
	s.groups = make([]*groupProc, assign.NumGroups())
	procs := make([]shard.Process, assign.NumGroups())
	for g := range s.groups {
		s.groups[g] = &groupProc{id: g, eng: calendars[g]}
		procs[g] = s.groups[g]
	}
	engine, err := shard.New(procs, shard.Options{
		Lookahead: s.config.HandoverLatencySec,
		Shards:    opt.Shards,
		Limiter:   opt.Limiter,
		Metrics:   probe.Default,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	s.engine = engine
	if s.config.Probe != nil {
		s.pstate = newProbeState(*s.config.Probe, s.cells)
	}
	return s, nil
}

// Config returns the (defaulted) configuration of the simulator.
func (s *Sharded) Config() Config { return s.config }

// MidCell returns the index of the measured cell.
func (s *Sharded) MidCell() int { return cluster.MidCell }

// Shards returns the number of workers advancing cell groups in parallel.
func (s *Sharded) Shards() int { return s.engine.Shards() }

// Partition returns the resolved cell→group assignment of this simulator.
func (s *Sharded) Partition() *partition.Assignment { return s.part }

// GroupEvents returns the events processed so far on every group's calendar,
// indexed by partition group — the per-group load breakdown the telemetry
// registry publishes at run end.
func (s *Sharded) GroupEvents() []uint64 {
	out := make([]uint64, len(s.groups))
	for g, p := range s.groups {
		out[g] = p.eng.ProcessedEvents()
	}
	return out
}

// Run executes warm-up plus the measurement period and returns the mid-cell
// results. On success the per-group event counts are published to the
// process-wide telemetry registry (probe.Default).
func (s *Sharded) Run() (Results, error) {
	res, err := collectRun(s)
	if err != nil {
		return res, err
	}
	probe.Default.SetGroupEvents(s.GroupEvents())
	return res, nil
}

// Series returns the sim-time series recorded by the run, or nil when
// Config.Probe was unset (or Run has not executed yet).
func (s *Sharded) Series() *probe.Series {
	if s.pstate == nil {
		return nil
	}
	return s.pstate.series
}

// ShardStats returns the shard engine's cumulative synchronization counters:
// windows advanced and handover messages merged at window barriers. Only
// cross-group handovers travel as barrier messages (intra-group handovers are
// scheduled directly on the group calendar), so MergedMessages equals the
// cells' summed cross-group handover departures — with a one-cell-per-group
// partition that is every handover departure, the historic per-cell-shard
// accounting.
func (s *Sharded) ShardStats() shard.Stats { return s.engine.Stats() }

func (s *Sharded) conf() *Config             { return &s.config }
func (s *Sharded) radioBlocksPerPacket() int { return s.bpp }
func (s *Sharded) cellList() []*cell         { return s.cells }
func (s *Sharded) probes() *probeState       { return s.pstate }

func (s *Sharded) advanceTo(t float64) error { return s.engine.AdvanceTo(t) }

func (s *Sharded) processedEvents() uint64 {
	var total uint64
	for _, p := range s.groups {
		total += p.eng.ProcessedEvents()
	}
	return total
}

func (s *Sharded) poolStats() (hits, misses, free uint64) {
	for _, p := range s.groups {
		h, m := p.eng.PoolStats()
		hits += h
		misses += m
		free += uint64(p.eng.FreeEvents())
	}
	return hits, misses, free
}

// dispatch implements cellEnv. An intra-group handover is scheduled directly
// on the shared group calendar, exactly like the serial engine's dispatch; a
// cross-group handover is queued on the source group's outbox and merged and
// delivered by the shard engine at the next window barrier. Either way the
// message fires at src.now() + HandoverLatencySec, so the split is invisible
// to the model.
func (s *Sharded) dispatch(src *cell, dst int, m handoverMsg) {
	sg := s.groups[s.part.Of(src.id)]
	t := sg.getTransit()
	t.cell = s.cells[dst]
	t.msg = m
	at := src.now() + s.config.HandoverLatencySec
	dg := s.part.Of(dst)
	if dg == sg.id {
		t.grp = sg
		if _, err := sg.eng.Schedule(at, t.fn); err != nil {
			// Delays are non-negative and finite by construction; an error
			// here would be a programming bug, not a model condition.
			panic(err)
		}
		return
	}
	sg.seq++
	sg.outbox = append(sg.outbox, shard.Message{
		At:      at,
		Src:     sg.id,
		Dst:     dg,
		Seq:     sg.seq,
		Payload: t,
	})
}
