package sim

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/probe"
	"repro/internal/shard"
)

// ShardedOptions configures the shard-parallel engine.
type ShardedOptions struct {
	// Shards is the number of cell groups advanced in parallel; the zero
	// value means min(NumCPU, cells). The grouping never affects results —
	// a given (seed, configuration) is bit-identical for every shard and
	// worker count, and identical to the serial engine.
	Shards int
	// Limiter, when non-nil, bounds the shard workers together with outer
	// fan-outs (typically the replication pool's shared runner.Limiter), so
	// shard-level and replication-level parallelism compose under one global
	// worker bound.
	Limiter shard.Limiter
}

// Sharded runs the detailed network-level model with one event calendar per
// cell, advanced in conservative time windows by the shard engine. The window
// length (synchronization lookahead) is the handover latency: handovers are
// the only cross-cell interaction, and a handover decided at time t takes
// effect at t + HandoverLatencySec, so no message can arrive inside the
// window that produced it. Cross-shard handovers are merged deterministically
// by (timestamp, source cell, sequence number), which makes the results
// reproducible regardless of the worker count or shard layout.
type Sharded struct {
	config Config
	bpp    int
	cells  []*cell
	procs  []*cellProc
	engine *shard.Engine
	pstate *probeState
}

// cellProc adapts one cell (with its private calendar) to the shard engine's
// Process interface, buffering outbound handovers until the window barrier.
type cellProc struct {
	cell   *cell
	outbox []shard.Message
	seq    uint64

	// free recycles handover transit records. A record is acquired from the
	// source proc's pool at dispatch and released into the destination proc's
	// pool when its delivery fires — each pool is only ever touched by the
	// goroutine currently advancing its proc (or by the barrier), so no
	// locking is needed.
	free []*shardTransit
}

// shardTransit is one handover message in flight between cells of the sharded
// engine. It rides as the message Payload (a pointer, so boxing into the
// interface does not allocate); fn is bound to the record once, at first
// allocation, so dispatch and delivery allocate nothing in steady state.
type shardTransit struct {
	dst *cellProc
	msg handoverMsg
	fn  func()
}

func (p *cellProc) getTransit() *shardTransit {
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return t
	}
	t := &shardTransit{}
	t.fn = func() {
		d := t.dst
		d.cell.receive(t.msg)
		t.msg = handoverMsg{}
		t.dst = nil
		d.free = append(d.free, t)
	}
	return t
}

// Advance resets the outbox of the previous window (its messages were merged
// at the barrier), runs the cell's calendar, and returns the buffered
// messages without copying — the shard engine consumes the slice before this
// proc's next Advance call.
func (p *cellProc) Advance(t float64) []shard.Message {
	p.outbox = p.outbox[:0]
	p.cell.eng.RunUntil(t)
	if len(p.outbox) == 0 {
		return nil
	}
	return p.outbox
}

func (p *cellProc) Deliver(m shard.Message) {
	t := m.Payload.(*shardTransit)
	t.dst = p
	if _, err := p.cell.eng.Schedule(m.At, t.fn); err != nil {
		// The shard engine guarantees m.At is at or beyond this cell's
		// clock, and Schedule accepts the current time.
		panic(err)
	}
}

// RunOnce builds and runs one simulator to completion: on the serial
// single-calendar engine, or on the sharded engine when opt.Shards > 1. The
// two engines are bit-identical for a given configuration, so opt affects
// only how the run is scheduled. It is the single engine-selection point
// shared by cmd/gprs-sim and the replication runner.
func RunOnce(cfg Config, opt ShardedOptions) (Results, error) {
	if opt.Shards > 1 {
		e, err := NewSharded(cfg, opt)
		if err != nil {
			return Results{}, err
		}
		return e.Run()
	}
	s, err := New(cfg)
	if err != nil {
		return Results{}, err
	}
	return s.Run()
}

// RunOnceSeries is RunOnce with the recorded sim-time series returned
// alongside the results. The series is nil when cfg.Probe is unset; the
// Results are bit-identical to RunOnce's either way (the probe's determinism
// contract). Like RunOnce it is single-use per call: it builds a fresh engine.
func RunOnceSeries(cfg Config, opt ShardedOptions) (Results, *probe.Series, error) {
	if opt.Shards > 1 {
		e, err := NewSharded(cfg, opt)
		if err != nil {
			return Results{}, nil, err
		}
		res, err := e.Run()
		if err != nil {
			return Results{}, nil, err
		}
		return res, e.Series(), nil
	}
	s, err := New(cfg)
	if err != nil {
		return Results{}, nil, err
	}
	res, err := s.Run()
	if err != nil {
		return Results{}, nil, err
	}
	return res, s.Series(), nil
}

// NewSharded validates the configuration and builds a sharded simulator. Like
// a Simulator it is single-use; Run may use up to Shards goroutines.
func NewSharded(cfg Config, opt ShardedOptions) (*Sharded, error) {
	s := &Sharded{}
	var err error
	s.config, s.bpp, s.cells, err = buildCells(cfg, s, func(int) *des.Simulation { return des.NewSimulationQueue(cfg.EventQueue) })
	if err != nil {
		return nil, err
	}
	s.procs = make([]*cellProc, len(s.cells))
	procs := make([]shard.Process, len(s.cells))
	for i, c := range s.cells {
		s.procs[i] = &cellProc{cell: c}
		procs[i] = s.procs[i]
	}
	engine, err := shard.New(procs, shard.Options{
		Lookahead: s.config.HandoverLatencySec,
		Shards:    opt.Shards,
		Limiter:   opt.Limiter,
		Metrics:   probe.Default,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	s.engine = engine
	if s.config.Probe != nil {
		s.pstate = newProbeState(*s.config.Probe, s.cells)
	}
	return s, nil
}

// Config returns the (defaulted) configuration of the simulator.
func (s *Sharded) Config() Config { return s.config }

// MidCell returns the index of the measured cell.
func (s *Sharded) MidCell() int { return cluster.MidCell }

// Shards returns the number of cell groups advanced in parallel.
func (s *Sharded) Shards() int { return s.engine.Shards() }

// Run executes warm-up plus the measurement period and returns the mid-cell
// results.
func (s *Sharded) Run() (Results, error) { return collectRun(s) }

// Series returns the sim-time series recorded by the run, or nil when
// Config.Probe was unset (or Run has not executed yet).
func (s *Sharded) Series() *probe.Series {
	if s.pstate == nil {
		return nil
	}
	return s.pstate.series
}

// ShardStats returns the shard engine's cumulative synchronization counters:
// windows advanced and handover messages merged at window barriers. Every
// cross-cell handover travels as exactly one barrier message, so
// MergedMessages equals the cells' summed handover departures.
func (s *Sharded) ShardStats() shard.Stats { return s.engine.Stats() }

func (s *Sharded) conf() *Config             { return &s.config }
func (s *Sharded) radioBlocksPerPacket() int { return s.bpp }
func (s *Sharded) cellList() []*cell         { return s.cells }
func (s *Sharded) probes() *probeState       { return s.pstate }

func (s *Sharded) advanceTo(t float64) error { return s.engine.AdvanceTo(t) }

func (s *Sharded) processedEvents() uint64 {
	var total uint64
	for _, c := range s.cells {
		total += c.eng.ProcessedEvents()
	}
	return total
}

func (s *Sharded) poolStats() (hits, misses, free uint64) {
	for _, c := range s.cells {
		h, m := c.eng.PoolStats()
		hits += h
		misses += m
		free += uint64(c.eng.FreeEvents())
	}
	return hits, misses, free
}

// dispatch implements cellEnv by queueing the handover on the source cell's
// outbox; the shard engine merges and delivers it at the next window barrier.
func (s *Sharded) dispatch(src *cell, dst int, m handoverMsg) {
	p := s.procs[src.id]
	p.seq++
	t := p.getTransit()
	t.msg = m
	p.outbox = append(p.outbox, shard.Message{
		At:      src.now() + s.config.HandoverLatencySec,
		Src:     src.id,
		Dst:     dst,
		Seq:     p.seq,
		Payload: t,
	})
}
