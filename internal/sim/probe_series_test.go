// Determinism and exactness contracts of the in-run probe layer (package
// probe wired through Config.Probe): arming the time-series probes must not
// change a single bit of the results on either engine, the recorded series
// must reproduce the terminal per-cell aggregates exactly when integrated
// over the run, and the shard engine's barrier counters must balance against
// the handover-flow ledger.
package sim_test

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/des"
	"repro/internal/partition"
	"repro/internal/probe"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// mustRunSeries runs a probe-armed configuration and returns results plus the
// recorded series.
func mustRunSeries(t *testing.T, cfg sim.Config, shards int) (sim.Results, *probe.Series) {
	t.Helper()
	res, ser, err := sim.RunOnceSeries(cfg, sim.ShardedOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if ser == nil {
		t.Fatal("probe armed but no series recorded")
	}
	return res, ser
}

// TestGoldenResultDigestsProbesArmed is the probes-enabled column of the
// golden digest table: with Config.Probe set — and its windows deliberately
// misaligned with the batch boundaries, so the measurement loop's advance
// targets are repartitioned — every preset on both engines and both event
// queues must still reproduce the exact seed digests of the probes-off runs.
// This pins the probe determinism contract (no model events, no extra draws,
// shadow-only accumulators) bit for bit. -short restricts the table to the
// seven-cell cluster on the default heap queue, mirroring the probes-off
// test.
func TestGoldenResultDigestsProbesArmed(t *testing.T) {
	queues := []des.QueueKind{des.HeapQueue, des.CalendarQueue}
	if testing.Short() {
		queues = queues[:1]
	}
	for _, g := range goldenDigests {
		if g.cells != 7 && testing.Short() {
			continue
		}
		t.Run(fmt.Sprintf("%s/%dcells", g.name, g.cells), func(t *testing.T) {
			for _, queue := range queues {
				for _, shards := range []int{1, 4} {
					cfg := goldenConfig(t, g.name, g.cells)
					cfg.EventQueue = queue
					// 37.5 s does not divide the 120 s batch length: probe
					// boundaries interleave with batch ends.
					cfg.Probe = &probe.Spec{IntervalSec: 37.5}
					res, ser := mustRunSeries(t, cfg, shards)
					if got := seedDigest(res); got != g.want {
						t.Errorf("queue %d, %d shard(s): probes-armed digest %s, want seed digest %s",
							queue, shards, got, g.want)
					}
					if ser.Windows() != 16 {
						t.Errorf("queue %d, %d shard(s): %d windows recorded, want 16",
							queue, shards, ser.Windows())
					}
					if last := ser.Times[ser.Windows()-1]; last != cfg.WarmupSec+cfg.MeasurementSec {
						t.Errorf("queue %d, %d shard(s): last window at %v, want %v",
							queue, shards, last, cfg.WarmupSec+cfg.MeasurementSec)
					}
				}
			}
		})
	}
}

// TestSeriesMatchesPerCellAggregates is the exactness contract of the series:
// the final (clamped) window's cumulative counters equal the terminal PerCell
// totals bit for bit, the derived ratios (blocking, loss, delay, throughput)
// reproduce the report's formulas exactly, and the shadow-gauge means match
// the terminal time averages bit for bit in every cell — the mid cell
// included, since the batch-means loop differences running integrals instead
// of restarting the mid cell's gauges, and radio-block deliveries are
// processed at their true timestamps so no gauge update ever lands past a
// window boundary. The recorded series itself must be bit-identical across
// engines.
func TestSeriesMatchesPerCellAggregates(t *testing.T) {
	cfg := scenarioQuickConfig(t, 7)
	// 70 s does not divide the 600 s measurement: the final window is clamped
	// short, the hardest case of the aggregation.
	cfg.Probe = &probe.Spec{IntervalSec: 70}
	res, ser := mustRunSeries(t, cfg, 1)

	_, serSharded := mustRunSeries(t, cfg, 4)
	if !reflect.DeepEqual(ser, serSharded) {
		t.Error("recorded series differs between serial and sharded engines")
	}

	k := ser.Windows() - 1
	if k < 1 || ser.Times[k] != cfg.WarmupSec+cfg.MeasurementSec {
		t.Fatalf("degenerate series: %d windows, last at %v", ser.Windows(), ser.Times[k])
	}
	for i, m := range res.PerCell {
		cs := &ser.Cells[i]
		ints := []struct {
			name      string
			got, want int64
		}{
			{"offered", cs.PacketsOffered[k], m.PacketsOffered},
			{"lost", cs.PacketsLost[k], m.PacketsLost},
			{"delivered", cs.PacketsDelivered[k], m.PacketsDelivered},
			{"ho in", cs.HandoversIn[k], m.HandoversIn},
			{"ho out", cs.HandoversOut[k], m.HandoversOut},
			{"ho arrivals", cs.HandoverArrivals[k], m.HandoverArrivals},
			{"ho failures", cs.HandoverFailures[k], m.HandoverFailures},
		}
		for _, c := range ints {
			if c.got != c.want {
				t.Errorf("cell %d: final cumulative %s %d, want terminal total %d", i, c.name, c.got, c.want)
			}
		}
		// Derived ratios: same operands, same expressions as perCellMeasures.
		if cs.PacketsOffered[k] > 0 {
			if plp := float64(cs.PacketsLost[k]) / float64(cs.PacketsOffered[k]); plp != m.PacketLossProbability {
				t.Errorf("cell %d: series PLP %v, want %v", i, plp, m.PacketLossProbability)
			}
		}
		if cs.PacketsDelivered[k] > 0 {
			if d := cs.DelaySumSec[k] / float64(cs.PacketsDelivered[k]); d != m.QueueingDelaySec {
				t.Errorf("cell %d: series delay %v, want %v", i, d, m.QueueingDelaySec)
			}
		}
		if tput := float64(cs.PacketsDelivered[k]) * float64(traffic.PacketSizeBits) / cfg.MeasurementSec; tput != m.ThroughputBits {
			t.Errorf("cell %d: series throughput %v, want %v", i, tput, m.ThroughputBits)
		}
		if cs.GSMArrivals[k] > 0 {
			if b := float64(cs.GSMBlocked[k]) / float64(cs.GSMArrivals[k]); b != m.GSMBlocking {
				t.Errorf("cell %d: series GSM blocking %v, want %v", i, b, m.GSMBlocking)
			}
		}
		gauges := []struct {
			name      string
			got, want float64
		}{
			{"CDT", cs.CarriedData[k], m.CarriedDataTraffic},
			{"queue", cs.MeanQueueLen[k], m.MeanQueueLength},
			{"CVT", cs.CarriedVoice[k], m.CarriedVoiceTraffic},
			{"AGS", cs.AvgSessions[k], m.AverageSessions},
		}
		// Every cell keeps one gauge window for the whole measurement (batch
		// boundaries only read running integrals), so shadow and model
		// accumulators hold identical state and the means must agree bit for
		// bit — no boundary tolerance, mid cell included.
		for _, g := range gauges {
			if g.got != g.want {
				t.Errorf("cell %d: series %s mean %v, want terminal %v bit-identically", i, g.name, g.got, g.want)
			}
		}
		// Cumulative counters never decrease across windows.
		for w := 1; w <= k; w++ {
			if cs.PacketsOffered[w] < cs.PacketsOffered[w-1] || cs.HandoversOut[w] < cs.HandoversOut[w-1] {
				t.Fatalf("cell %d: cumulative counters decreased at window %d", i, w)
			}
		}
	}

	checkSeriesCSVRoundTrip(t, ser, res, cfg.MeasurementSec)
}

// checkSeriesCSVRoundTrip pins the CSV exporter against the same terminal
// aggregates: the written file's final rows must parse back to the exact
// per-cell totals (floats are written in shortest round-trip form).
func checkSeriesCSVRoundTrip(t *testing.T, ser *probe.Series, res sim.Results, measurementSec float64) {
	t.Helper()
	var buf bytes.Buffer
	if err := probe.WriteCSV(&buf, ser); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 1 + ser.Windows()*len(ser.Cells)
	if len(rows) != wantRows {
		t.Fatalf("CSV has %d rows, want %d", len(rows), wantRows)
	}
	col := map[string]int{}
	for j, name := range rows[0] {
		col[name] = j
	}
	mustInt := func(row []string, name string) int64 {
		v, err := strconv.ParseInt(row[col[name]], 10, 64)
		if err != nil {
			t.Fatalf("column %s: %v", name, err)
		}
		return v
	}
	mustFloat := func(row []string, name string) float64 {
		v, err := strconv.ParseFloat(row[col[name]], 64)
		if err != nil {
			t.Fatalf("column %s: %v", name, err)
		}
		return v
	}
	// The final Windows()th block holds one row per cell.
	for i, m := range res.PerCell {
		row := rows[1+(ser.Windows()-1)*len(ser.Cells)+i]
		if got := mustInt(row, "cell"); got != int64(m.Cell) {
			t.Fatalf("final block row %d is cell %d, want %d", i, got, m.Cell)
		}
		if got := mustInt(row, "offered_cum"); got != m.PacketsOffered {
			t.Errorf("cell %d: CSV offered_cum %d, want %d", i, got, m.PacketsOffered)
		}
		if got := mustInt(row, "ho_arrivals_cum"); got != m.HandoverArrivals {
			t.Errorf("cell %d: CSV ho_arrivals_cum %d, want %d", i, got, m.HandoverArrivals)
		}
		if got := mustFloat(row, "carried_voice_cum"); got != ser.Cells[i].CarriedVoice[ser.Windows()-1] {
			t.Errorf("cell %d: CSV carried_voice_cum did not round-trip: %v", i, got)
		}
		wantTput := float64(m.PacketsDelivered) * float64(traffic.PacketSizeBits) / measurementSec
		if got := mustFloat(row, "window_throughput_bits"); ser.Windows() == 1 && got != wantTput {
			t.Errorf("cell %d: CSV window throughput %v, want %v", i, got, wantTput)
		}
	}
}

// TestShardBarrierMessageConservation ties the shard engine's barrier
// counters to the handover-flow ledger: on a drained, gated run (the
// handover-conservation workload) every cross-group handover is merged at
// exactly one window barrier. Under a one-cell-per-group partition every
// handover is cross-group, so Stats().MergedMessages equals the cells'
// summed handover departures — which the conservation suite already proves
// equal to the summed arrivals. Under the default locality grouping the
// intra-group handovers bypass the barrier, so the merged count falls
// strictly below the departures while the results stay bit-identical (the
// partition-equivalence suite pins that part).
func TestShardBarrierMessageConservation(t *testing.T) {
	preset, err := scenario.Preset("hotspot-pedestrian")
	if err != nil {
		t.Fatal(err)
	}
	cfg := conservationConfig(t, 7)
	if _, err := scenario.Apply(&cfg, gated(preset)); err != nil {
		t.Fatal(err)
	}
	perCell := cfg
	perCell.Partition = &partition.Spec{Kind: partition.KindIndexRange, Groups: 7}
	for _, shards := range []int{2, 4} {
		e, err := sim.NewSharded(perCell, sim.ShardedOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		var out, arrivals int64
		for _, m := range res.PerCell {
			out += m.HandoversOut
			arrivals += m.HandoverArrivals
		}
		if out == 0 {
			t.Fatal("degenerate run: no handovers at all")
		}
		if out != arrivals {
			t.Fatalf("%d shards: ledger unbalanced before the barrier check: %d out, %d arrivals",
				shards, out, arrivals)
		}
		st := e.ShardStats()
		if st.Windows == 0 {
			t.Errorf("%d shards: no windows counted", shards)
		}
		if st.MergedMessages != uint64(out) {
			t.Errorf("%d shards: %d messages merged at barriers, want the %d handover departures",
				shards, st.MergedMessages, out)
		}

		// Same run under the locality grouping: the groups absorb part of the
		// handover flow, so the barrier must see strictly less than all
		// departures (and the per-group event counts must cover every event).
		g, err := sim.NewSharded(cfg, sim.ShardedOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		gres, err := g.Run()
		if err != nil {
			t.Fatal(err)
		}
		if g.Partition().NumGroups() != shards {
			t.Errorf("%d shards: default partition has %d groups", shards, g.Partition().NumGroups())
		}
		gst := g.ShardStats()
		if gst.MergedMessages >= uint64(out) {
			t.Errorf("%d shards: locality grouping merged %d messages, want strictly below the %d departures",
				shards, gst.MergedMessages, out)
		}
		var groupTotal uint64
		for _, n := range g.GroupEvents() {
			groupTotal += n
		}
		if groupTotal != gres.Events {
			t.Errorf("%d shards: group event counts sum to %d, run processed %d",
				shards, groupTotal, gres.Events)
		}
	}
}
