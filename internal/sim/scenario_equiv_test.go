// Cross-engine equivalence of the workload-scenario layer: for every
// built-in scenario generator the serial single-calendar engine and the
// sharded engine must produce bit-identical results (the determinism contract
// of internal/shard extends to heterogeneous, time-varying load), and the
// uniform scenario must reproduce the profile-less simulator exactly. The
// tests live in an external test package because internal/scenario imports
// internal/sim.
package sim_test

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// scenarioQuickConfig returns a short heterogeneous-load run on the given
// preset cluster size.
func scenarioQuickConfig(t *testing.T, cells int) sim.Config {
	t.Helper()
	topo, err := cluster.Preset(cells)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(traffic.Model3, 0.5)
	cfg.Topology = topo
	cfg.Channels.TotalChannels = 10
	cfg.BufferSize = 30
	cfg.MaxSessions = 10
	cfg.WarmupSec = 200
	cfg.MeasurementSec = 600
	cfg.Batches = 5
	cfg.Seed = 7
	return cfg
}

func mustRun(t *testing.T, cfg sim.Config, shards int) sim.Results {
	t.Helper()
	res, err := sim.RunOnce(cfg, sim.ShardedOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestScenariosSerialShardedBitIdentical is the acceptance contract of the
// scenario layer: for every built-in scenario, serial and sharded runs of the
// same configuration are bit-identical — per-cell measures included. -short
// checks the seven-cell cluster; the full run adds the 19-cell hex ring with
// several shard layouts.
func TestScenariosSerialShardedBitIdentical(t *testing.T) {
	sizes := []int{7}
	shardCounts := []int{3}
	if !testing.Short() {
		sizes = append(sizes, 19)
		shardCounts = append(shardCounts, 2, 4)
	}
	for _, name := range scenario.Names() {
		spec, err := scenario.Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, cells := range sizes {
			cfg := scenarioQuickConfig(t, cells)
			if _, err := scenario.Apply(&cfg, spec); err != nil {
				t.Fatal(err)
			}
			serial := mustRun(t, cfg, 1)
			if serial.Events == 0 {
				t.Fatalf("%s on %d cells: degenerate run", name, cells)
			}
			if got := len(serial.PerCell); got != cells {
				t.Fatalf("%s on %d cells: %d per-cell reports", name, cells, got)
			}
			for _, shards := range shardCounts {
				sharded := mustRun(t, cfg, shards)
				if !reflect.DeepEqual(sharded, serial) {
					t.Errorf("%s on %d cells: sharded (%d shards) differs from serial engine", name, cells, shards)
				}
			}
		}
	}
}

// TestUniformScenarioReproducesBaseline pins the regression contract: the
// uniform scenario is the paper's symmetric load, so installing it must not
// change a single bit of the results relative to a profile-less run (the
// exact numbers of the pre-scenario simulator).
func TestUniformScenarioReproducesBaseline(t *testing.T) {
	for _, cells := range []int{7, 19} {
		if cells != 7 && testing.Short() {
			continue
		}
		base := scenarioQuickConfig(t, cells)
		baseline := mustRun(t, base, 1)

		withScenario := scenarioQuickConfig(t, cells)
		spec, err := scenario.Preset(scenario.Uniform)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := scenario.Apply(&withScenario, spec); err != nil {
			t.Fatal(err)
		}
		got := mustRun(t, withScenario, 1)
		if !reflect.DeepEqual(got, baseline) {
			t.Errorf("%d cells: uniform scenario perturbed the baseline results", cells)
		}
		gotSharded := mustRun(t, withScenario, 3)
		if !reflect.DeepEqual(gotSharded, baseline) {
			t.Errorf("%d cells: sharded uniform scenario perturbed the baseline results", cells)
		}
	}
}

// TestHotspotShapesPerCellLoad checks that the hotspot scenario actually
// shows up in the per-cell report: the peak cell carries more voice and data
// load than the cells farthest from it.
func TestHotspotShapesPerCellLoad(t *testing.T) {
	cfg := scenarioQuickConfig(t, 7)
	cfg.MeasurementSec = 1500
	spec, err := scenario.Preset(scenario.Hotspot)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := scenario.Apply(&cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, cfg, 1)
	center := spec.Spatial.Center
	if w := prof.Weights(); w[center] <= 1 {
		t.Fatalf("hotspot preset should overload the center, weights %v", w)
	}
	edge := cfg.Topology.Distances(center)
	var centerCVT, edgeCVT float64
	var edgeCells int
	for i, m := range res.PerCell {
		if i == center {
			centerCVT = m.CarriedVoiceTraffic
			continue
		}
		if edge[i] == cfg.Topology.Eccentricity(center) {
			edgeCVT += m.CarriedVoiceTraffic
			edgeCells++
		}
	}
	if edgeCells == 0 {
		t.Fatal("no edge cells found")
	}
	edgeCVT /= float64(edgeCells)
	if centerCVT <= edgeCVT {
		t.Errorf("hotspot center should carry more voice traffic: center %.3f, edge mean %.3f", centerCVT, edgeCVT)
	}
}

// TestTimeVaryingProfileGatesArrivals drives the zero-rate and rate-change
// paths of the arrival generator: with scale 0 until deep into the run, no
// fresh arrivals may happen before the step, and the busy-hour ramp must
// change the sample path relative to the constant profile.
func TestTimeVaryingProfileGatesArrivals(t *testing.T) {
	// Scale 0 for the whole warm-up plus measurement: the run stays silent.
	cfg := scenarioQuickConfig(t, 7)
	silent := scenario.Spec{Temporal: scenario.Temporal{Kind: scenario.Steps,
		Steps: []scenario.Step{{AtSec: 0, Scale: 0}}}}
	if _, err := scenario.Apply(&cfg, silent); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, cfg, 1)
	if res.PacketsOffered != 0 || res.CarriedVoiceTraffic.Mean != 0 {
		t.Errorf("zero-rate profile should produce no traffic, got %+v", res)
	}

	// Scale 0 until mid-run, then 1: traffic appears, and the run differs
	// from the always-on baseline.
	lateStart := scenario.Spec{Temporal: scenario.Temporal{Kind: scenario.Steps,
		Steps: []scenario.Step{{AtSec: 0, Scale: 0}, {AtSec: 400, Scale: 1}}}}
	cfgLate := scenarioQuickConfig(t, 7)
	if _, err := scenario.Apply(&cfgLate, lateStart); err != nil {
		t.Fatal(err)
	}
	late := mustRun(t, cfgLate, 1)
	if late.PacketsOffered == 0 {
		t.Error("arrivals should resume once the scale steps to 1")
	}
	baseline := mustRun(t, scenarioQuickConfig(t, 7), 1)
	if reflect.DeepEqual(late, baseline) {
		t.Error("a gated profile should change the sample path")
	}
	if sharded := mustRun(t, cfgLate, 3); !reflect.DeepEqual(sharded, late) {
		t.Error("time-varying profile must stay engine-independent")
	}
}

// TestMismatchedProfileRejected guards the validation hole a sized profile
// closes: a profile compiled for a smaller cluster than the configured
// topology would silently zero the extra cells' traffic, so the simulator
// must refuse to build.
func TestMismatchedProfileRejected(t *testing.T) {
	spec, err := scenario.Preset(scenario.Hotspot)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := spec.Compile(cluster.NewHexCluster(), 0.475, 0.025)
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenarioQuickConfig(t, 19)
	cfg.Rates = prof
	if _, err := sim.New(cfg); err == nil {
		t.Error("a 7-cell profile on a 19-cell topology should be rejected")
	}
	if _, err := sim.NewSharded(cfg, sim.ShardedOptions{Shards: 2}); err == nil {
		t.Error("the sharded engine should reject the mismatch too")
	}
}

// TestPerCellReportIsConsistent cross-checks the per-cell report against the
// established mid-cell measures on a symmetric run.
func TestPerCellReportIsConsistent(t *testing.T) {
	cfg := scenarioQuickConfig(t, 7)
	res := mustRun(t, cfg, 1)
	if len(res.PerCell) != 7 {
		t.Fatalf("expected 7 per-cell reports, got %d", len(res.PerCell))
	}
	mid := res.PerCell[cluster.MidCell]
	if mid.Cell != cluster.MidCell {
		t.Errorf("per-cell report misindexed: %+v", mid)
	}
	if mid.PacketsOffered != res.PacketsOffered || mid.PacketsLost != res.PacketsLost ||
		mid.PacketsDelivered != res.PacketsDelivered {
		t.Errorf("mid-cell packet totals disagree: %+v vs %+v", mid, res)
	}
	if mid.HandoversIn != res.HandoversIn || mid.HandoversOut != res.HandoversOut {
		t.Errorf("mid-cell handover totals disagree: %+v vs %+v", mid, res)
	}
	if math.Abs(mid.CarriedVoiceTraffic-res.CarriedVoiceTraffic.Mean) > 1e-9 {
		t.Errorf("mid-cell CVT %.6f disagrees with batch-means %.6f",
			mid.CarriedVoiceTraffic, res.CarriedVoiceTraffic.Mean)
	}
	for _, m := range res.PerCell {
		if m.CarriedVoiceTraffic <= 0 || m.ThroughputBits <= 0 {
			t.Errorf("cell %d: implausible symmetric-load measures %+v", m.Cell, m)
		}
	}
}
