// Cross-engine equivalence of the workload-scenario layer: for every
// built-in scenario generator the serial single-calendar engine and the
// sharded engine must produce bit-identical results (the determinism contract
// of internal/shard extends to heterogeneous, time-varying load), and the
// uniform scenario must reproduce the profile-less simulator exactly. The
// tests live in an external test package because internal/scenario imports
// internal/sim.
package sim_test

import (
	"crypto/sha256"
	"fmt"
	"math"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// scenarioQuickConfig returns a short heterogeneous-load run on the given
// preset cluster size.
func scenarioQuickConfig(t *testing.T, cells int) sim.Config {
	t.Helper()
	topo, err := cluster.Preset(cells)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(traffic.Model3, 0.5)
	cfg.Topology = topo
	cfg.Channels.TotalChannels = 10
	cfg.BufferSize = 30
	cfg.MaxSessions = 10
	cfg.WarmupSec = 200
	cfg.MeasurementSec = 600
	cfg.Batches = 5
	cfg.Seed = 7
	return cfg
}

func mustRun(t *testing.T, cfg sim.Config, shards int) sim.Results {
	t.Helper()
	res, err := sim.RunOnce(cfg, sim.ShardedOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestScenariosSerialShardedBitIdentical is the acceptance contract of the
// scenario layer: for every built-in scenario — the pure rate presets and the
// mobility presets (highway, hotspot-pedestrian) alike — serial and sharded
// runs of the same configuration are bit-identical, per-cell measures and
// handover-flow counters included. The table crosses every preset with the
// {7, 19}-cell clusters and the {1, 4} engine layouts (1 is the serial
// single-calendar engine, the reference the sharded runs are compared
// against); the full run adds a 2-shard layout so uneven cell groupings stay
// covered. -short restricts the table to the seven-cell cluster.
func TestScenariosSerialShardedBitIdentical(t *testing.T) {
	sizes := []int{7}
	shardCounts := []int{4}
	if !testing.Short() {
		sizes = append(sizes, 19)
		shardCounts = append(shardCounts, 2)
	}
	for _, name := range scenario.Names() {
		spec, err := scenario.Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, cells := range sizes {
			t.Run(fmt.Sprintf("%s/%dcells", name, cells), func(t *testing.T) {
				cfg := scenarioQuickConfig(t, cells)
				if _, err := scenario.Apply(&cfg, spec); err != nil {
					t.Fatal(err)
				}
				if spec.Mobility != nil && cfg.Mobility == nil {
					t.Fatalf("%s: Apply did not install the mobility profile", name)
				}
				serial := mustRun(t, cfg, 1)
				if serial.Events == 0 {
					t.Fatalf("%s on %d cells: degenerate run", name, cells)
				}
				if got := len(serial.PerCell); got != cells {
					t.Fatalf("%s on %d cells: %d per-cell reports", name, cells, got)
				}
				for _, shards := range shardCounts {
					sharded := mustRun(t, cfg, shards)
					if !reflect.DeepEqual(sharded, serial) {
						t.Errorf("%s on %d cells: sharded (%d shards) differs from serial engine", name, cells, shards)
					}
				}
			})
		}
	}
}

// digestFloat renders a float through its shortest representation that parses
// back to exactly the same bits, so a digest over it pins the value bit for
// bit.
func digestFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func digestInterval(b *strings.Builder, iv stats.Interval) {
	b.WriteString(digestFloat(iv.Mean))
	b.WriteByte('|')
	b.WriteString(digestFloat(iv.HalfWidth))
	b.WriteByte('|')
	b.WriteString(digestFloat(iv.Level))
	b.WriteByte('|')
	fmt.Fprintf(b, "%d;", iv.Batches)
}

// seedDigest condenses the seed-era fields of a Results value into a short
// hex digest: every measure and counter the pre-policy engines reported,
// serialized canonically field by field (floats through their shortest exact
// representation). Unlike a %#v digest, the canonical form is stable under
// pure schema growth — adding new CellMeasures fields does not move these
// digests, so a nil-policy run must keep reproducing the pre-policy values.
// The policy counters are pinned separately by policyDigest.
func seedDigest(r sim.Results) string {
	var b strings.Builder
	for _, iv := range []stats.Interval{
		r.CarriedDataTraffic, r.PacketLossProbability, r.QueueingDelay,
		r.ThroughputBits, r.ThroughputPerUserBits, r.AverageSessions,
		r.CarriedVoiceTraffic, r.GSMBlockingProbability, r.GPRSBlockingProbability,
		r.MeanQueueLength,
	} {
		digestInterval(&b, iv)
	}
	fmt.Fprintf(&b, "%d|%d|%d|%d|%d|%d|%d|", r.PacketsOffered, r.PacketsLost,
		r.PacketsDelivered, r.HandoversIn, r.HandoversOut, r.TCPTimeouts, r.TCPFastRecovers)
	b.WriteString(digestFloat(r.SimulatedSec))
	fmt.Fprintf(&b, "|%d\n", r.Events)
	for _, m := range r.PerCell {
		fmt.Fprintf(&b, "%d|", m.Cell)
		for _, v := range []float64{
			m.CarriedDataTraffic, m.MeanQueueLength, m.CarriedVoiceTraffic,
			m.AverageSessions, m.PacketLossProbability, m.QueueingDelaySec,
			m.ThroughputBits, m.GSMBlocking, m.GPRSBlocking,
		} {
			b.WriteString(digestFloat(v))
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%d|%d|%d|%d|%d|%d|%d|%d|%d\n",
			m.PacketsOffered, m.PacketsLost, m.PacketsDelivered,
			m.HandoversIn, m.HandoversOut, m.VoiceHandoversOut,
			m.SessionHandoversOut, m.HandoverArrivals, m.HandoverFailures)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return fmt.Sprintf("%x", sum[:8])
}

// policyDigest extends seedDigest with the per-cell admission-policy counters,
// pinning policy runs bit for bit (the seed-era fields and the policy ledger
// together).
func policyDigest(r sim.Results) string {
	var b strings.Builder
	b.WriteString(seedDigest(r))
	for _, m := range r.PerCell {
		fmt.Fprintf(&b, "%d|%d|%d|%d|%d|%d|%d\n", m.Cell,
			m.GuardBlockedCalls, m.HandoversQueued, m.HandoverQueueServed,
			m.HandoverQueueExpired, m.HandoverRetries, m.HandoverTransitEnds)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return fmt.Sprintf("%x", sum[:8])
}

// goldenDigests pins the exact seed results of scenarioQuickConfig runs bit
// for bit. The digests were re-baselined when packet delivery moved onto its
// own drain tick (every busy period gained one radio-tick event, so Events —
// a digested field — shifted everywhere); within that baseline they are
// identical across engines, shard counts, event-queue kinds, and probe
// arming, which is the invariant the suites below enforce. The busyhour ramp
// steps after the quick config's horizon and the uniform scenario is the
// identity, so their digests legitimately equal the baseline's — the table
// keeps them as separate rows so a future config change that moves the
// horizon shows up. The trace and mmpp-bursty rows pin the empirical-traffic
// layer: a periodic measured replay and a pre-sampled MMPP burst pattern,
// both crossing several rate changes inside the quick horizon. The table is
// shared by TestGoldenResultDigests (probes off) and
// TestGoldenResultDigestsProbesArmed (probes on): both columns must
// reproduce the same digests.
var goldenDigests = []struct {
	name  string
	cells int
	want  string
}{
	{"baseline", 7, "0646231e09b39bea"},
	{"busyhour", 7, "0646231e09b39bea"},
	{"gradient", 7, "7b1576d22ed88d18"},
	{"highway", 7, "083ab3f1cdad85c4"},
	{"hotspot", 7, "084ee30fa9b655c7"},
	{"hotspot-busyhour", 7, "084ee30fa9b655c7"},
	{"hotspot-pedestrian", 7, "2ad91a04c8462566"},
	{"mmpp-bursty", 7, "3fa6c6d847f0b328"},
	{"trace", 7, "b1947f3946bba178"},
	{"uniform", 7, "0646231e09b39bea"},
	{"baseline", 19, "6728a44cb6d51b4a"},
	{"busyhour", 19, "6728a44cb6d51b4a"},
	{"gradient", 19, "b83cf8bd4debdd68"},
	{"highway", 19, "fac007f898b72ca4"},
	{"hotspot", 19, "8bf4bdcc625bed54"},
	{"hotspot-busyhour", 19, "8bf4bdcc625bed54"},
	{"hotspot-pedestrian", 19, "3f04884a08ee7130"},
	{"mmpp-bursty", 19, "82b353ae86012c3e"},
	{"trace", 19, "6b00dc56f5b013c0"},
	{"uniform", 19, "6728a44cb6d51b4a"},
}

// goldenConfig assembles the pinned run of one goldenDigests row.
func goldenConfig(t *testing.T, name string, cells int) sim.Config {
	t.Helper()
	cfg := scenarioQuickConfig(t, cells)
	if name != "baseline" {
		spec, err := scenario.Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := scenario.Apply(&cfg, spec); err != nil {
			t.Fatal(err)
		}
	}
	return cfg
}

// TestGoldenResultDigests pins the exact seed results bit for bit: any
// refactor that changes a single draw, merge order, or accumulation anywhere
// in the engine stack fails this test. Every scenario preset (plus the
// profile-less baseline) runs on both the serial and the 4-shard engine and
// on both event-list implementations (binary heap and calendar queue) — all
// four paths must reproduce the same golden digest. -short restricts the
// table to the seven-cell cluster and drops the calendar-queue leg.
func TestGoldenResultDigests(t *testing.T) {
	queues := []des.QueueKind{des.HeapQueue, des.CalendarQueue}
	if testing.Short() {
		queues = queues[:1]
	}
	for _, g := range goldenDigests {
		if g.cells != 7 && testing.Short() {
			continue
		}
		t.Run(fmt.Sprintf("%s/%dcells", g.name, g.cells), func(t *testing.T) {
			for _, queue := range queues {
				for _, shards := range []int{1, 4} {
					cfg := goldenConfig(t, g.name, g.cells)
					cfg.EventQueue = queue
					res := mustRun(t, cfg, shards)
					if got := seedDigest(res); got != g.want {
						t.Errorf("queue %d, %d shard(s): digest %s, want seed digest %s",
							queue, shards, got, g.want)
					}
				}
			}
		})
	}
}

// TestUniformScenarioReproducesBaseline pins the regression contract: the
// uniform scenario is the paper's symmetric load, so installing it must not
// change a single bit of the results relative to a profile-less run (the
// exact numbers of the pre-scenario simulator).
func TestUniformScenarioReproducesBaseline(t *testing.T) {
	for _, cells := range []int{7, 19} {
		if cells != 7 && testing.Short() {
			continue
		}
		base := scenarioQuickConfig(t, cells)
		baseline := mustRun(t, base, 1)

		withScenario := scenarioQuickConfig(t, cells)
		spec, err := scenario.Preset(scenario.Uniform)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := scenario.Apply(&withScenario, spec); err != nil {
			t.Fatal(err)
		}
		got := mustRun(t, withScenario, 1)
		if !reflect.DeepEqual(got, baseline) {
			t.Errorf("%d cells: uniform scenario perturbed the baseline results", cells)
		}
		gotSharded := mustRun(t, withScenario, 3)
		if !reflect.DeepEqual(gotSharded, baseline) {
			t.Errorf("%d cells: sharded uniform scenario perturbed the baseline results", cells)
		}
	}
}

// TestConstantTraceReproducesUniform pins the empirical layer's identity
// contract: a trace whose measured rates are all (bitwise) equal normalizes
// to scale exactly 1 and coalesces to the constant schedule, so replaying it
// must reproduce the profile-less baseline — the paper's symmetric load —
// bit for bit, on the serial and the sharded engine alike. The trace's
// absolute rate level is deliberately arbitrary (2.5 of whatever the
// measured unit was): normalization is what makes it the baseline.
func TestConstantTraceReproducesUniform(t *testing.T) {
	for _, cells := range []int{7, 19} {
		if cells != 7 && testing.Short() {
			continue
		}
		baseline := mustRun(t, scenarioQuickConfig(t, cells), 1)

		cfg := scenarioQuickConfig(t, cells)
		flat := scenario.Spec{Temporal: scenario.Temporal{Kind: scenario.Trace,
			Rows: []scenario.TraceRow{
				{AtSec: 0, RatePerSec: 2.5},
				{AtSec: 250, RatePerSec: 2.5},
				{AtSec: 700, RatePerSec: 2.5},
			}}}
		if _, err := scenario.Apply(&cfg, flat); err != nil {
			t.Fatal(err)
		}
		if got := mustRun(t, cfg, 1); !reflect.DeepEqual(got, baseline) {
			t.Errorf("%d cells: constant-rate trace perturbed the baseline results", cells)
		}
		if got := mustRun(t, cfg, 3); !reflect.DeepEqual(got, baseline) {
			t.Errorf("%d cells: sharded constant-rate trace perturbed the baseline results", cells)
		}
	}
}

// TestTraceMMPPShardedBitIdentity is the full-fidelity equivalence matrix of
// the empirical-traffic layer, named so the CI race job can select it: the
// trace replay and the MMPP burst pattern — the presets whose schedules are
// generated rather than hand-written — must stay bit-identical between the
// serial engine and the {1, 4}-shard layouts on both cluster sizes. -short
// keeps the seven-cell column only.
func TestTraceMMPPShardedBitIdentity(t *testing.T) {
	for _, name := range []string{"trace", "mmpp-bursty"} {
		spec, err := scenario.Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, cells := range []int{7, 19} {
			if cells != 7 && testing.Short() {
				continue
			}
			t.Run(fmt.Sprintf("%s/%dcells", name, cells), func(t *testing.T) {
				cfg := scenarioQuickConfig(t, cells)
				if _, err := scenario.Apply(&cfg, spec); err != nil {
					t.Fatal(err)
				}
				serial := mustRun(t, cfg, 1)
				if serial.Events == 0 || serial.PacketsOffered == 0 {
					t.Fatalf("%s on %d cells: degenerate run", name, cells)
				}
				baseline := mustRun(t, scenarioQuickConfig(t, cells), 1)
				if reflect.DeepEqual(serial, baseline) {
					t.Errorf("%s should modulate the sample path away from the baseline", name)
				}
				for _, shards := range []int{1, 4} {
					if sharded := mustRun(t, cfg, shards); !reflect.DeepEqual(sharded, serial) {
						t.Errorf("%s on %d cells: %d-shard run differs from serial engine", name, cells, shards)
					}
				}
			})
		}
	}
}

// TestUniformMobilityReproducesBaseline pins the mobility regression
// contract: a uniform mobility profile with multiplier 1.0 is the paper's
// single dwell time per service, so installing it must not change a single
// bit of the results relative to a run without any mobility profile — the
// dwell sampler draws exactly the same variates (see cell.armDwell). Checked
// on both engines and both cluster sizes.
func TestUniformMobilityReproducesBaseline(t *testing.T) {
	for _, cells := range []int{7, 19} {
		if cells != 7 && testing.Short() {
			continue
		}
		baseline := mustRun(t, scenarioQuickConfig(t, cells), 1)

		withMobility := scenarioQuickConfig(t, cells)
		mob := scenario.Mobility{Spatial: scenario.Spatial{Kind: scenario.Uniform}}
		prof, err := mob.Compile(withMobility.Topology)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range prof.Weights() {
			if w != 1 {
				t.Fatalf("uniform mobility weight in cell %d is %v, want exactly 1", i, w)
			}
		}
		withMobility.Mobility = prof
		if got := mustRun(t, withMobility, 1); !reflect.DeepEqual(got, baseline) {
			t.Errorf("%d cells: uniform mobility profile perturbed the baseline results", cells)
		}
		if got := mustRun(t, withMobility, 4); !reflect.DeepEqual(got, baseline) {
			t.Errorf("%d cells: sharded uniform mobility perturbed the baseline results", cells)
		}
	}
}

// TestMobilityChangesSamplePath is the counterpart sanity check: a non-unit
// mobility profile must actually change the draws (shorter corridor dwells),
// and the changed sample path must still be engine-independent.
func TestMobilityChangesSamplePath(t *testing.T) {
	baseline := mustRun(t, scenarioQuickConfig(t, 7), 1)
	cfg := scenarioQuickConfig(t, 7)
	spec, err := scenario.Preset("highway")
	if err != nil {
		t.Fatal(err)
	}
	mob := *spec.Mobility
	prof, err := mob.Compile(cfg.Topology)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mobility = prof
	fast := mustRun(t, cfg, 1)
	if reflect.DeepEqual(fast, baseline) {
		t.Error("a 0.25x corridor dwell profile should change the sample path")
	}
	if fast.HandoversOut <= baseline.HandoversOut {
		t.Errorf("faster mid-cell users should hand over more: %d vs baseline %d",
			fast.HandoversOut, baseline.HandoversOut)
	}
	if sharded := mustRun(t, cfg, 3); !reflect.DeepEqual(sharded, fast) {
		t.Error("mobility profile must stay engine-independent")
	}
}

// TestHighwaySkewsHandoverFlow checks that the highway preset's mobility
// shape shows up where it should: corridor cells emit outbound handovers at
// a higher per-cell rate than off-corridor cells, against a load-only
// control run (same corridor rates, uniform dwell) whose flow is nearly
// flat by comparison.
func TestHighwaySkewsHandoverFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("19-cell comparison runs skipped in -short mode")
	}
	spec, err := scenario.Preset("highway")
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenarioQuickConfig(t, 19)
	cfg.MeasurementSec = 1500
	if _, err := scenario.Apply(&cfg, spec); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, cfg, 4)

	loadOnly := spec
	loadOnly.Mobility = nil
	ctrl := scenarioQuickConfig(t, 19)
	ctrl.MeasurementSec = 1500
	if _, err := scenario.Apply(&ctrl, loadOnly); err != nil {
		t.Fatal(err)
	}
	base := mustRun(t, ctrl, 4)

	dist := cfg.Topology.AxisDistances(spec.Spatial.Center, spec.Spatial.Axis)
	outPerGroup := func(r sim.Results) (corridor, off float64) {
		var nc, noff int
		for i, m := range r.PerCell {
			if dist[i] == 0 {
				corridor += float64(m.HandoversOut)
				nc++
			} else {
				off += float64(m.HandoversOut)
				noff++
			}
		}
		return corridor / float64(nc), off / float64(noff)
	}
	corridor, off := outPerGroup(res)
	if corridor <= 1.5*off {
		t.Errorf("corridor cells should hand over far more often: corridor %.1f, off-corridor %.1f", corridor, off)
	}
	baseCorridor, baseOff := outPerGroup(base)
	if skew, baseSkew := corridor/off, baseCorridor/baseOff; skew <= baseSkew {
		t.Errorf("mobility should amplify the flow skew beyond the load-only run: %.2f vs %.2f", skew, baseSkew)
	}
	for _, m := range res.PerCell {
		if m.HandoversOut != m.VoiceHandoversOut+m.SessionHandoversOut {
			t.Errorf("cell %d: outbound split %d+%d does not sum to %d",
				m.Cell, m.VoiceHandoversOut, m.SessionHandoversOut, m.HandoversOut)
		}
	}
}

// TestMismatchedMobilityProfileRejected mirrors the rate-profile guard: a
// mobility profile compiled for a smaller cluster than the configured
// topology must be refused by both engines.
func TestMismatchedMobilityProfileRejected(t *testing.T) {
	mob := scenario.Mobility{Spatial: scenario.Spatial{Kind: scenario.Hotspot, Peak: 2, Decay: 1}}
	prof, err := mob.Compile(cluster.NewHexCluster())
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenarioQuickConfig(t, 19)
	cfg.Mobility = prof
	if _, err := sim.New(cfg); err == nil {
		t.Error("a 7-cell mobility profile on a 19-cell topology should be rejected")
	}
	if _, err := sim.NewSharded(cfg, sim.ShardedOptions{Shards: 2}); err == nil {
		t.Error("the sharded engine should reject the mismatch too")
	}
}

// TestHotspotShapesPerCellLoad checks that the hotspot scenario actually
// shows up in the per-cell report: the peak cell carries more voice and data
// load than the cells farthest from it.
func TestHotspotShapesPerCellLoad(t *testing.T) {
	cfg := scenarioQuickConfig(t, 7)
	cfg.MeasurementSec = 1500
	spec, err := scenario.Preset(scenario.Hotspot)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := scenario.Apply(&cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, cfg, 1)
	center := spec.Spatial.Center
	if w := prof.Weights(); w[center] <= 1 {
		t.Fatalf("hotspot preset should overload the center, weights %v", w)
	}
	edge := cfg.Topology.Distances(center)
	var centerCVT, edgeCVT float64
	var edgeCells int
	for i, m := range res.PerCell {
		if i == center {
			centerCVT = m.CarriedVoiceTraffic
			continue
		}
		if edge[i] == cfg.Topology.Eccentricity(center) {
			edgeCVT += m.CarriedVoiceTraffic
			edgeCells++
		}
	}
	if edgeCells == 0 {
		t.Fatal("no edge cells found")
	}
	edgeCVT /= float64(edgeCells)
	if centerCVT <= edgeCVT {
		t.Errorf("hotspot center should carry more voice traffic: center %.3f, edge mean %.3f", centerCVT, edgeCVT)
	}
}

// TestTimeVaryingProfileGatesArrivals drives the zero-rate and rate-change
// paths of the arrival generator: with scale 0 until deep into the run, no
// fresh arrivals may happen before the step, and the busy-hour ramp must
// change the sample path relative to the constant profile.
func TestTimeVaryingProfileGatesArrivals(t *testing.T) {
	// Scale 0 for the whole warm-up plus measurement: the run stays silent.
	cfg := scenarioQuickConfig(t, 7)
	silent := scenario.Spec{Temporal: scenario.Temporal{Kind: scenario.Steps,
		Steps: []scenario.Step{{AtSec: 0, Scale: 0}}}}
	if _, err := scenario.Apply(&cfg, silent); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, cfg, 1)
	if res.PacketsOffered != 0 || res.CarriedVoiceTraffic.Mean != 0 {
		t.Errorf("zero-rate profile should produce no traffic, got %+v", res)
	}

	// Scale 0 until mid-run, then 1: traffic appears, and the run differs
	// from the always-on baseline.
	lateStart := scenario.Spec{Temporal: scenario.Temporal{Kind: scenario.Steps,
		Steps: []scenario.Step{{AtSec: 0, Scale: 0}, {AtSec: 400, Scale: 1}}}}
	cfgLate := scenarioQuickConfig(t, 7)
	if _, err := scenario.Apply(&cfgLate, lateStart); err != nil {
		t.Fatal(err)
	}
	late := mustRun(t, cfgLate, 1)
	if late.PacketsOffered == 0 {
		t.Error("arrivals should resume once the scale steps to 1")
	}
	baseline := mustRun(t, scenarioQuickConfig(t, 7), 1)
	if reflect.DeepEqual(late, baseline) {
		t.Error("a gated profile should change the sample path")
	}
	if sharded := mustRun(t, cfgLate, 3); !reflect.DeepEqual(sharded, late) {
		t.Error("time-varying profile must stay engine-independent")
	}
}

// TestMismatchedProfileRejected guards the validation hole a sized profile
// closes: a profile compiled for a smaller cluster than the configured
// topology would silently zero the extra cells' traffic, so the simulator
// must refuse to build.
func TestMismatchedProfileRejected(t *testing.T) {
	spec, err := scenario.Preset(scenario.Hotspot)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := spec.Compile(cluster.NewHexCluster(), 0.475, 0.025)
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenarioQuickConfig(t, 19)
	cfg.Rates = prof
	if _, err := sim.New(cfg); err == nil {
		t.Error("a 7-cell profile on a 19-cell topology should be rejected")
	}
	if _, err := sim.NewSharded(cfg, sim.ShardedOptions{Shards: 2}); err == nil {
		t.Error("the sharded engine should reject the mismatch too")
	}
}

// TestPerCellReportIsConsistent cross-checks the per-cell report against the
// established mid-cell measures on a symmetric run.
func TestPerCellReportIsConsistent(t *testing.T) {
	cfg := scenarioQuickConfig(t, 7)
	res := mustRun(t, cfg, 1)
	if len(res.PerCell) != 7 {
		t.Fatalf("expected 7 per-cell reports, got %d", len(res.PerCell))
	}
	mid := res.PerCell[cluster.MidCell]
	if mid.Cell != cluster.MidCell {
		t.Errorf("per-cell report misindexed: %+v", mid)
	}
	if mid.PacketsOffered != res.PacketsOffered || mid.PacketsLost != res.PacketsLost ||
		mid.PacketsDelivered != res.PacketsDelivered {
		t.Errorf("mid-cell packet totals disagree: %+v vs %+v", mid, res)
	}
	if mid.HandoversIn != res.HandoversIn || mid.HandoversOut != res.HandoversOut {
		t.Errorf("mid-cell handover totals disagree: %+v vs %+v", mid, res)
	}
	if math.Abs(mid.CarriedVoiceTraffic-res.CarriedVoiceTraffic.Mean) > 1e-9 {
		t.Errorf("mid-cell CVT %.6f disagrees with batch-means %.6f",
			mid.CarriedVoiceTraffic, res.CarriedVoiceTraffic.Mean)
	}
	for _, m := range res.PerCell {
		if m.CarriedVoiceTraffic <= 0 || m.ThroughputBits <= 0 {
			t.Errorf("cell %d: implausible symmetric-load measures %+v", m.Cell, m)
		}
	}
}
