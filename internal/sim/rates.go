package sim

import (
	"fmt"
	"math"
)

// RateProfile supplies per-cell, time-dependent fresh-arrival rates to the
// simulator, generalizing the homogeneous load of the paper (every cell sees
// the same constant TotalCallRate) to heterogeneous scenarios: hotspot cells,
// load gradients, busy-hour ramps. Profiles are piecewise constant in time:
// the rates returned for time t hold on [t, NextChange(t)).
//
// Implementations must be pure functions of (cell, t) and safe for concurrent
// read-only use — the sharded engine queries the profile from several shard
// workers at once, and the replication runner shares one profile across all
// replications. Because each cell draws its arrivals from its own random
// variate stream and the profile is deterministic, the serial and the sharded
// engine stay bit-identical under every profile.
//
// internal/scenario compiles declarative workload scenarios (named spatial
// shapes crossed with temporal profiles) into RateProfile values.
type RateProfile interface {
	// Rates returns the fresh GSM voice-call and GPRS session arrival rates
	// (per second) seen by the given cell at simulation time t. Both rates
	// are constant on [t, NextChange(t)).
	Rates(cell int, t float64) (voiceRate, dataRate float64)
	// NextChange returns the earliest time strictly after t at which any
	// cell's rates change, or +Inf when the rates stay constant forever.
	NextChange(t float64) float64
}

// uniformRates is the default profile: every cell sees the same constant
// voice and data arrival rates — the paper's symmetric load.
type uniformRates struct {
	voice, data float64
}

func (u uniformRates) Rates(int, float64) (float64, float64) { return u.voice, u.data }
func (u uniformRates) NextChange(float64) float64            { return math.Inf(1) }

// BaseRates splits the configured aggregate call arrival rate into the fresh
// voice-call and GPRS-session rates of one cell: (1-GPRSFraction) and
// GPRSFraction of TotalCallRate. It is the single place this split is
// computed, so a uniform RateProfile built from these values reproduces the
// profile-less simulator bit for bit.
func (c Config) BaseRates() (voiceRate, dataRate float64) {
	return (1 - c.GPRSFraction) * c.TotalCallRate, c.GPRSFraction * c.TotalCallRate
}

// validateRates spot-checks a configured profile: a profile that knows its
// cell count (scenario.Profile does) must match the topology — a profile
// compiled for a smaller cluster would silently zero the extra cells'
// traffic — and every cell's rates at time 0 must be finite and
// non-negative.
func validateRates(p RateProfile, cells int) error {
	if sized, ok := p.(interface{ NumCells() int }); ok {
		if got := sized.NumCells(); got != cells {
			return fmt.Errorf("%w: rate profile compiled for %d cells, topology has %d", ErrInvalidConfig, got, cells)
		}
	}
	for i := 0; i < cells; i++ {
		v, d := p.Rates(i, 0)
		for name, r := range map[string]float64{"voice": v, "data": d} {
			if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				return fmt.Errorf("%w: %s rate %v in cell %d", ErrInvalidConfig, name, r, i)
			}
		}
	}
	return nil
}
