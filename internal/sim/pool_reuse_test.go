package sim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/traffic"
)

func poolTestCell(t *testing.T) *cell {
	t.Helper()
	topo, err := cluster.Preset(7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(traffic.Model3, 0.5)
	cfg.Topology = topo
	cfg.EnableTCP = false
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.cells[0]
}

// TestSessionPoolResetOnReuse proves a recycled session record carries no
// stale state into its next life: the freelist hands back the same record,
// fully reset, with its prebound action closures intact.
func TestSessionPoolResetOnReuse(t *testing.T) {
	c := poolTestCell(t)
	s1 := c.getSession()
	if s1.startPacketCallFn == nil || s1.generatePacketFn == nil ||
		s1.handoverFn == nil || s1.setHandoverEv == nil {
		t.Fatal("fresh session record is missing prebound closures")
	}
	// Dirty every field a live session mutates.
	s1.active = true
	s1.packetCallsLeft = 9
	s1.packetsLeftInCall = 4
	s1.conn = &connection{}
	s1.genEv = c.schedule(1, func() {})
	s1.handoverEv = c.schedule(2, func() {})
	s1.genEv.Cancel()
	s1.handoverEv.Cancel()
	c.putSession(s1)

	s2 := c.getSession()
	if s2 != s1 {
		t.Fatal("freelist should recycle the same record")
	}
	if s2.active || s2.packetCallsLeft != 0 || s2.packetsLeftInCall != 0 || s2.conn != nil {
		t.Errorf("recycled session carries stale state: %+v", s2)
	}
	if s2.genEv != (des.Handle{}) || s2.handoverEv != (des.Handle{}) {
		t.Error("recycled session carries stale event handles")
	}
	if s2.startPacketCallFn == nil || s2.generatePacketFn == nil {
		t.Error("recycling dropped the prebound closures")
	}
}

// TestVoiceCallPoolResetOnReuse is the voice-call counterpart.
func TestVoiceCallPoolResetOnReuse(t *testing.T) {
	c := poolTestCell(t)
	v1 := c.getVoice()
	if v1.departFn == nil || v1.handoverFn == nil || v1.setHandoverEv == nil {
		t.Fatal("fresh voice record is missing prebound closures")
	}
	v1.departAt = 123.5
	v1.departEv = c.schedule(1, func() {})
	v1.handoverEv = c.schedule(2, func() {})
	v1.departEv.Cancel()
	v1.handoverEv.Cancel()
	c.putVoice(v1)

	v2 := c.getVoice()
	if v2 != v1 {
		t.Fatal("freelist should recycle the same record")
	}
	if v2.departAt != 0 {
		t.Errorf("recycled voice call carries stale departAt %v", v2.departAt)
	}
	if v2.departEv != (des.Handle{}) || v2.handoverEv != (des.Handle{}) {
		t.Error("recycled voice call carries stale event handles")
	}
	if v2.departFn == nil || v2.handoverFn == nil {
		t.Error("recycling dropped the prebound closures")
	}
}

// TestQueuedHandoverPoolResetOnReuse is the handover-queue-entry counterpart:
// a served or expired entry returns reset, with its prebound expiry closure
// still bound to the same record.
func TestQueuedHandoverPoolResetOnReuse(t *testing.T) {
	c := poolTestCell(t)
	q1 := c.getQHO()
	if q1.expireFn == nil {
		t.Fatal("fresh queue entry is missing the prebound expiry closure")
	}
	if q1.cell != c {
		t.Fatal("fresh queue entry is not anchored to its cell")
	}
	q1.departAt = 321.25
	q1.expireEv = c.schedule(1, func() {})
	q1.expireEv.Cancel()
	c.putQHO(q1)

	q2 := c.getQHO()
	if q2 != q1 {
		t.Fatal("freelist should recycle the same record")
	}
	if q2.departAt != 0 {
		t.Errorf("recycled queue entry carries stale departAt %v", q2.departAt)
	}
	if q2.expireEv != (des.Handle{}) {
		t.Error("recycled queue entry carries a stale event handle")
	}
	if q2.expireFn == nil {
		t.Error("recycling dropped the prebound expiry closure")
	}
}

// TestPacketPoolResetOnReuse is the packet counterpart: delivered and dropped
// packets return reset.
func TestPacketPoolResetOnReuse(t *testing.T) {
	c := poolTestCell(t)
	p1 := c.getPacket()
	p1.conn = &connection{}
	p1.seq = 7
	p1.enqueuedAt = 3.25
	p1.blocksLeft = 5
	c.putPacket(p1)

	p2 := c.getPacket()
	if p2 != p1 {
		t.Fatal("freelist should recycle the same record")
	}
	if p2.conn != nil || p2.seq != 0 || p2.enqueuedAt != 0 || p2.blocksLeft != 0 {
		t.Errorf("recycled packet carries stale state: %+v", p2)
	}
}

// TestConnectionPoolResetOnReuse proves a recycled connection record starts
// its next transfer exactly as a fresh one would: the sender back in slow
// start, the per-segment bookkeeping cleared, the RTO handle zeroed — and the
// generation advanced, so packets and transit hops stamped with the old
// generation stand down instead of waking the new occupant.
func TestConnectionPoolResetOnReuse(t *testing.T) {
	c := poolTestCell(t)
	sess := c.getSession()
	sess.cell = c

	c1, err := newConnection(sess, 5)
	if err != nil {
		t.Fatal(err)
	}
	gen1 := c1.gen
	// Dirty every field a live transfer mutates.
	c1.sender.OnSend()
	c1.delivered[2] = true
	c1.sent[1] = true
	c1.retrans[1] = true
	c1.sendTime[1] = 3.5
	c1.recvNext = 2
	c1.rtoEv = c.schedule(1, func() {})
	c1.abort()

	c2, err := newConnection(sess, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c1 {
		t.Fatal("freelist should recycle the same record")
	}
	if c2.gen <= gen1 {
		t.Errorf("generation did not advance on reuse: %d -> %d", gen1, c2.gen)
	}
	if c2.done || c2.recvNext != 0 || c2.total != 3 {
		t.Errorf("recycled connection carries stale transfer state: done=%v recvNext=%d total=%d",
			c2.done, c2.recvNext, c2.total)
	}
	if len(c2.delivered) != 3 || len(c2.sent) != 3 || len(c2.retrans) != 3 || len(c2.sendTime) != 3 {
		t.Fatalf("per-segment slices not resized: %d/%d/%d/%d",
			len(c2.delivered), len(c2.sent), len(c2.retrans), len(c2.sendTime))
	}
	for i := 0; i < 3; i++ {
		if c2.delivered[i] || c2.sent[i] || c2.retrans[i] || c2.sendTime[i] != 0 {
			t.Errorf("per-segment slot %d carries stale state", i)
		}
	}
	if c2.rtoEv != (des.Handle{}) {
		t.Error("recycled connection carries a stale RTO handle")
	}
	if !c2.sender.InSlowStart() || c2.sender.InFlight() != 0 || c2.sender.NextSequence() != 0 ||
		c2.sender.Retransmits() != 0 {
		t.Error("recycled sender is not back in the initial slow-start state")
	}

	// A transit hop stamped with the old generation must stand down.
	tr := c.getCT()
	tr.conn = c2
	tr.gen = gen1
	tr.kind = ctAck
	tr.ack = 2
	tr.fn()
	if c2.recvNext != 0 {
		t.Error("stale-generation transit mutated the record's new occupant")
	}
	tr2 := c.getCT()
	if tr2 != tr {
		t.Error("dispatched transit record did not return to the freelist")
	}
	c2.abort()
}

// TestSessionLifecycleRecycles drives one real session to completion and
// checks the record lands back on the freelist through the model's own code
// path (session.end), not just the manual put.
func TestSessionLifecycleRecycles(t *testing.T) {
	topo, err := cluster.Preset(7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(traffic.Model3, 0.5)
	cfg.Topology = topo
	cfg.EnableTCP = false
	cfg.GPRSDwellTimeSec = 1e9 // effectively no handovers: session dies at home
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := s.cells[0]
	c.addSession()
	sess := c.getSession()
	sess.scheduleHandover()
	sess.start()
	s.eng.RunUntil(1e6)
	if sess.active {
		t.Fatal("session should have completed")
	}
	found := false
	for _, f := range c.freeSess {
		if f == sess {
			found = true
		}
	}
	if !found {
		t.Error("completed session did not return to the freelist")
	}
}
