// Analytic cross-check of the guard-channel policy: on a symmetric pure-voice
// cluster the per-cell voice dynamics form the guard-channel birth-death
// chain of erlang.GuardB, with the incoming handover rate determined by the
// handover-flow fixed point (erlang.BalanceGuardHandover) — fresh calls
// arrive at rate lambda, every admitted call leaves the cell at the combined
// completion + dwell rate, and handovers leaving a cell re-enter a neighbour
// of the wrap-around cluster. The simulated new-call blocking must match the
// closed form at every guard level, which ties the simulator's policy
// mechanics to an independent correctness oracle the same way the seed model
// is tied to the paper's Erlang-B limit.
//
// The chain is a mean-field model: it treats the handover inflow as a Poisson
// stream independent of the cell's own state. On the seven-cell wrap-around
// cluster every cell neighbours every other, so at the paper's mobility
// (60 s dwell) the cluster-wide load fluctuations are shared — a full cell
// implies full neighbours and a elevated handover inflow exactly when the
// cell cannot take it — and the simulated blocking runs measurably above the
// fixed point (about +0.08 at 18 Erlang offered; verified against the
// zero-mobility limit, where the simulator reproduces plain Erlang-B within
// the confidence half-width). The cross-check therefore runs in a
// weak-coupling regime, dwell time 3000 s (muH/mu = 0.04), where the
// independence assumption holds to well under one blocking percentage point
// and the remaining bias fits inside the tolerance floor.
package sim_test

import (
	"fmt"
	"testing"

	"repro/internal/erlang"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// guardCrossCheckConfig returns a symmetric, pure-voice run of the seven-cell
// cluster in the weak-coupling regime: no GPRS sessions and no TCP, so the
// voice channels form exactly the loss system of the analytic chain, and a
// long dwell time so the handover inflow is a small perturbation of the
// fresh-call stream. The long measurement window keeps the batch-means
// half-width near one blocking percentage point.
func guardCrossCheckConfig(lambda, dwellSec float64) sim.Config {
	cfg := sim.DefaultConfig(traffic.Model3, lambda)
	cfg.GPRSFraction = 0
	cfg.EnableTCP = false
	cfg.GSMDwellTimeSec = dwellSec
	cfg.MeasurementSec = 100000
	cfg.Seed = 5
	return cfg
}

// TestGuardChannelBlockingMatchesErlang compares the simulated new-call
// blocking against the guard-channel fixed point at three guard levels. The
// tolerance is the batch-means confidence half-width plus a floor of 0.015
// covering the residual mean-field bias of the finite cluster; one guard
// channel moves the analytic blocking by about 0.035, so the check still
// resolves adjacent guard levels. Alongside the analytic match the test pins
// the two qualitative properties the policy exists for: blocking grows with
// the reservation, and handover failures stay far below fresh-call blocking.
func TestGuardChannelBlockingMatchesErlang(t *testing.T) {
	const (
		lambda = 0.16      // ~17 Erlang offered on 19 channels: blocking well off zero
		mu     = 1.0 / 120 // call-completion rate (GSMCallDurationSec)
		dwell  = 3000.0    // weak-coupling dwell time; muH = 1/dwell
	)
	servers := guardCrossCheckConfig(lambda, dwell).Channels.GSMChannels()
	guards := []int{1, 2, 3}
	if testing.Short() {
		guards = guards[1:2]
	}
	prevBlocking := -1.0
	for _, g := range guards {
		t.Run(fmt.Sprintf("guard%d", g), func(t *testing.T) {
			hb, err := erlang.BalanceGuardHandover(lambda, mu, 1/dwell, servers, g, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !hb.Converged {
				t.Fatalf("handover balance did not converge: %+v", hb)
			}
			want := hb.Result.NewCallBlocking
			if want < 0.05 {
				t.Fatalf("analytic blocking %v too small for a meaningful comparison", want)
			}
			cfg := guardCrossCheckConfig(lambda, dwell)
			cfg.Policy = &policy.Config{Kind: policy.GuardChannels, Guard: g}
			res, err := sim.RunOnce(cfg, sim.ShardedOptions{Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			got := res.GSMBlockingProbability
			tol := got.HalfWidth + 0.015
			if diff := got.Mean - want; diff > tol || diff < -tol {
				t.Errorf("guard %d: simulated blocking %.4f ± %.4f vs analytic %.4f (diff %+.4f beyond tolerance %.4f)",
					g, got.Mean, got.HalfWidth, want, diff, tol)
			}
			if got.Mean <= prevBlocking {
				t.Errorf("guard %d: blocking %.4f did not grow over guard level below (%.4f)",
					g, got.Mean, prevBlocking)
			}
			prevBlocking = got.Mean

			var failures, arrivals int64
			for _, m := range res.PerCell {
				failures += m.HandoverFailures
				arrivals += m.HandoverArrivals
			}
			if arrivals == 0 {
				t.Fatal("degenerate run: no handovers at all")
			}
			hoBlocking := float64(failures) / float64(arrivals)
			if hoBlocking >= got.Mean/2 {
				t.Errorf("guard %d: handover failure fraction %.4f not well below new-call blocking %.4f",
					g, hoBlocking, got.Mean)
			}
			if diff := hoBlocking - hb.Result.HandoverBlocking; diff > 0.01 || diff < -0.01 {
				t.Errorf("guard %d: handover failure fraction %.4f vs analytic handover blocking %.4f",
					g, hoBlocking, hb.Result.HandoverBlocking)
			}
			t.Logf("guard %d: sim %.4f ± %.4f, analytic %.4f; handover %.4f vs %.4f",
				g, got.Mean, got.HalfWidth, want, hoBlocking, hb.Result.HandoverBlocking)
		})
	}
}
