// Handover flow conservation: the wrap-around clusters are closed, so every
// handover departure must eventually arrive at some cell — admitted, dropped
// for lack of capacity, or carrying a voice call that completed in transit.
// The tests verify the exact ledger sum(HandoversOut) == sum(HandoverArrivals)
// over all cells, for every built-in scenario preset (the mobility presets
// included) and for both engines. Exactness requires that no message is in
// flight across the measurement-window boundaries, so the runs start their
// window at time 0 (no warm-up) and gate the fresh arrivals off mid-run: by
// the end of the drain period every user has left the system — verified
// through the carried-traffic and flow counters themselves — and with them
// every in-flight message.
package sim_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// conservationConfig returns a run whose handover ledger must balance
// exactly: measurement window [0, 2400) s, fresh arrivals gated off at 400 s,
// and short sessions so the 2000 s drain empties the system deterministically
// (mean call duration 120 s, mean session lifetime well under a minute).
func conservationConfig(t *testing.T, cells int) sim.Config {
	t.Helper()
	topo, err := cluster.Preset(cells)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(traffic.Model3, 0.5)
	cfg.Topology = topo
	cfg.Channels.TotalChannels = 10
	cfg.BufferSize = 30
	cfg.MaxSessions = 10
	cfg.Session = traffic.SessionParams{
		NumPacketCalls:        2,
		ReadingTimeSec:        5,
		PacketsPerCall:        10,
		PacketInterarrivalSec: 0.1,
	}
	cfg.WarmupSec = 0
	cfg.MeasurementSec = 2400
	cfg.Batches = 4
	cfg.Seed = 11
	return cfg
}

// gated replaces a preset's temporal profile with an on/off gate (scale 1
// until 400 s, 0 afterwards), keeping its spatial and mobility shapes: the
// shapes are what conservation has to survive, and the gate guarantees the
// system drains before the window closes so the ledger can balance exactly.
func gated(spec scenario.Spec) scenario.Spec {
	spec.Temporal = scenario.Temporal{Kind: scenario.Steps,
		Steps: []scenario.Step{{AtSec: 0, Scale: 1}, {AtSec: 400, Scale: 0}}}
	if spec.Mobility != nil {
		// Mobility temporal gates are not allowed to hit zero (a zero dwell
		// scale is invalid); keep the preset's spatial dwell shape constant.
		mob := *spec.Mobility
		mob.Temporal = scenario.Temporal{}
		spec.Mobility = &mob
	}
	return spec
}

// TestHandoverFlowConservation pins the ledger under every preset, cluster
// size, and engine: total outbound handovers equal total handover arrivals,
// arrivals decompose into admissions, capacity drops, and in-transit
// completions, and the per-service outbound split sums to the total.
func TestHandoverFlowConservation(t *testing.T) {
	sizes := []int{7}
	if !testing.Short() {
		sizes = append(sizes, 19)
	}
	for _, name := range scenario.Names() {
		preset, err := scenario.Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		spec := gated(preset)
		for _, cells := range sizes {
			for _, shards := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/%dcells/%dshards", name, cells, shards), func(t *testing.T) {
					cfg := conservationConfig(t, cells)
					if _, err := scenario.Apply(&cfg, spec); err != nil {
						t.Fatal(err)
					}
					res, err := sim.RunOnce(cfg, sim.ShardedOptions{Shards: shards})
					if err != nil {
						t.Fatal(err)
					}
					checkConservation(t, res, cells)
				})
			}
		}
	}
}

// checkConservation asserts the exact flow ledger over a drained run,
// admission-policy counters included. Per cell, every handover arrival is
// disposed of exactly once on arrival: admitted directly, failed
// immediately, parked in the handover queue, forwarded by directed retry, or
// found its call completed in transit. Queue entries resolve later as served
// (counted into HandoversIn) or expired (counted into HandoverFailures), so
// the direct-arrival ledger subtracts those resolutions:
//
//	arrivals == (in - served) + (failures - expired) + transitEnds + queued + retries
//
// and the queue's own ledger closes exactly on a drained run:
//
//	queued == served + expired
//
// Under a nil policy every policy counter is zero and the ledger reduces to
// the exact arrivals == in + failures + transitEnds.
func checkConservation(t *testing.T, res sim.Results, cells int) {
	t.Helper()
	if len(res.PerCell) != cells {
		t.Fatalf("%d per-cell reports, want %d", len(res.PerCell), cells)
	}
	var out, in, arrivals, failures int64
	for _, m := range res.PerCell {
		if m.HandoversOut != m.VoiceHandoversOut+m.SessionHandoversOut {
			t.Errorf("cell %d: outbound split %d+%d does not sum to %d",
				m.Cell, m.VoiceHandoversOut, m.SessionHandoversOut, m.HandoversOut)
		}
		direct := (m.HandoversIn - m.HandoverQueueServed) +
			(m.HandoverFailures - m.HandoverQueueExpired) +
			m.HandoverTransitEnds + m.HandoversQueued + m.HandoverRetries
		if m.HandoverArrivals != direct {
			t.Errorf("cell %d: arrivals %d != (in %d - served %d) + (failures %d - expired %d) + transit %d + queued %d + retries %d",
				m.Cell, m.HandoverArrivals, m.HandoversIn, m.HandoverQueueServed,
				m.HandoverFailures, m.HandoverQueueExpired, m.HandoverTransitEnds,
				m.HandoversQueued, m.HandoverRetries)
		}
		if m.HandoversQueued != m.HandoverQueueServed+m.HandoverQueueExpired {
			t.Errorf("cell %d: queue ledger open: queued %d != served %d + expired %d",
				m.Cell, m.HandoversQueued, m.HandoverQueueServed, m.HandoverQueueExpired)
		}
		out += m.HandoversOut
		in += m.HandoversIn
		arrivals += m.HandoverArrivals
		failures += m.HandoverFailures
	}
	if out == 0 {
		t.Fatal("degenerate run: no handovers at all")
	}
	if out != arrivals {
		t.Errorf("flow not conserved: %d departures, %d arrivals (%d in flight at a window boundary?)",
			out, arrivals, out-arrivals)
	}
	if in > arrivals {
		t.Errorf("admissions %d exceed arrivals %d", in, arrivals)
	}
	if failures > arrivals-in {
		t.Errorf("failures %d exceed non-admitted arrivals %d", failures, arrivals-in)
	}
}

// TestHandoverFlowConservationPolicies pins the extended ledger for every
// explicit admission policy on the gated hotspot workload (the hotspot shape
// keeps the mid cell saturated so every policy path actually fires), on both
// engines and both cluster sizes. The scenario presets carrying policies ride
// TestHandoverFlowConservation through scenario.Names(); this table covers
// the policy kinds directly so the ledger holds even if preset defaults
// change.
func TestHandoverFlowConservationPolicies(t *testing.T) {
	sizes := []int{7}
	if !testing.Short() {
		sizes = append(sizes, 19)
	}
	preset, err := scenario.Preset("hotspot")
	if err != nil {
		t.Fatal(err)
	}
	spec := gated(preset)
	for name, p := range policyConfigs() {
		for _, cells := range sizes {
			for _, shards := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/%dcells/%dshards", name, cells, shards), func(t *testing.T) {
					cfg := conservationConfig(t, cells)
					if _, err := scenario.Apply(&cfg, spec); err != nil {
						t.Fatal(err)
					}
					cfg.Policy = p
					res, err := sim.RunOnce(cfg, sim.ShardedOptions{Shards: shards})
					if err != nil {
						t.Fatal(err)
					}
					checkConservation(t, res, cells)
				})
			}
		}
	}
}

// TestHandoverConservationEngineEquality double-checks that the drained
// conservation workload — warm-up-free, gated, with a mobility preset — is
// itself bit-identical across engines, so the ledger above pins the same
// numbers for every shard count.
func TestHandoverConservationEngineEquality(t *testing.T) {
	preset, err := scenario.Preset("hotspot-pedestrian")
	if err != nil {
		t.Fatal(err)
	}
	cfg := conservationConfig(t, 7)
	if _, err := scenario.Apply(&cfg, gated(preset)); err != nil {
		t.Fatal(err)
	}
	serial, err := sim.RunOnce(cfg, sim.ShardedOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := sim.RunOnce(cfg, sim.ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, sharded) {
		t.Error("conservation workload differs between engines")
	}
}
