// Allocation-budget pins for the steady-state event hot path. The tests are
// excluded from race builds: race instrumentation inserts allocations of its
// own, which would fail the budgets spuriously.
//
//go:build !race

package sim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/policy"
	"repro/internal/probe"
	"repro/internal/traffic"
)

// allocPinConfig is the steady-state workload of the allocation pins:
// uniform constant load, no time-varying profiles. tcpPath selects between
// the open-loop traffic model and the closed-loop TCP transfers — both are
// under the allocation-free contract: connection records, their per-segment
// bookkeeping slices, and the segment/ACK transit hops are pooled per cell
// like every other model record.
func allocPinConfig(cells int, tcpPath bool) Config {
	topo, err := cluster.Preset(cells)
	if err != nil {
		panic(err)
	}
	cfg := DefaultConfig(traffic.Model3, 0.5)
	cfg.Topology = topo
	cfg.Channels.TotalChannels = 10
	cfg.BufferSize = 30
	cfg.MaxSessions = 10
	cfg.EnableTCP = tcpPath
	cfg.Seed = 7
	return cfg
}

// measureAllocsPerEvent advances the engine repeatedly by the given window
// and reports (allocations per event, events per window). The first advance
// inside AllocsPerRun is a warm-up run, which tops the freelists up to the
// steady-state population before measurement starts.
func measureAllocsPerEvent(t *testing.T, advance func(to float64), processed func() uint64,
	start, window float64) (float64, float64) {
	t.Helper()
	const runs = 5
	now := start
	before := processed()
	perRun := testing.AllocsPerRun(runs, func() {
		now += window
		advance(now)
	})
	events := processed() - before
	if events == 0 {
		t.Fatal("degenerate steady state: no events processed")
	}
	eventsPerRun := float64(events) / (runs + 1) // AllocsPerRun adds one warm-up run
	return perRun / eventsPerRun, eventsPerRun
}

// TestSerialSteadyStateAllocs pins the tentpole contract on the serial
// engine: after warm-up, the event hot path performs (essentially) zero
// allocations per event — on the open-loop path and on the TCP path, which
// pools connection and transit records per cell. The epsilon tolerates
// freelist growth at new concurrent-population peaks (including a connection
// record's per-segment slices growing to a new largest transfer) — O(peak),
// not O(events).
func TestSerialSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name    string
		tcpPath bool
	}{{"openloop", false}, {"tcp", true}} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := New(allocPinConfig(7, tc.tcpPath))
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range s.cells {
				c.start()
			}
			s.eng.RunUntil(2000) // reach steady state, grow every pool to its peak
			perEvent, eventsPerRun := measureAllocsPerEvent(t,
				func(to float64) { s.eng.RunUntil(to) },
				s.eng.ProcessedEvents, 2000, 500)
			if eventsPerRun < 1000 {
				t.Fatalf("only %.0f events per window; the pin would be vacuous", eventsPerRun)
			}
			if perEvent > 0.001 {
				t.Errorf("serial hot path allocates %.5f allocs/event (%.0f events/window), want 0",
					perEvent, eventsPerRun)
			}
		})
	}
}

// TestProbeArmedSteadyStateAllocs pins the observability contract of the
// probe layer: with the time-series probes armed — shadow gauges live on
// every cell, the sampler recording a window every 25 s — the steady-state
// hot path must stay within the same (essentially zero) allocation budget as
// the unprobed engines. All series buffers are preallocated at arm time, so
// sampling appends within capacity and the shadow gauge updates are plain
// field writes. Checked on the serial engine and on the 1-shard sharded
// engine (the full window/barrier machinery on the calling goroutine, where
// the budget is exact).
func TestProbeArmedSteadyStateAllocs(t *testing.T) {
	const start, window = 2000.0, 500.0
	const final = start + 6*window // one warm-up run plus 5 measured runs
	type engine struct {
		name     string
		advance  func(to float64) error
		events   func() uint64
		ps       *probeState
		perCells func() []*cell
	}
	build := func(name string, shards int) engine {
		cfg := allocPinConfig(7, false)
		cfg.Probe = &probe.Spec{IntervalSec: 25}
		if shards == 0 {
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return engine{name: name,
				advance: func(to float64) error { return advanceProbed(s, s.pstate, to) },
				events:  s.eng.ProcessedEvents, ps: s.pstate,
				perCells: func() []*cell { return s.cells }}
		}
		s, err := NewSharded(cfg, ShardedOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		return engine{name: name,
			advance: func(to float64) error { return advanceProbed(s, s.pstate, to) },
			events:  s.processedEvents, ps: s.pstate,
			perCells: func() []*cell { return s.cells }}
	}
	for _, e := range []engine{build("serial", 0), build("sharded1", 1)} {
		for _, c := range e.perCells() {
			c.start()
		}
		if err := e.advance(start); err != nil {
			t.Fatal(err)
		}
		e.ps.arm(start, final)
		perEvent, eventsPerRun := measureAllocsPerEvent(t,
			func(to float64) {
				if err := e.advance(to); err != nil {
					t.Fatal(err)
				}
			},
			e.events, start, window)
		if eventsPerRun < 1000 {
			t.Fatalf("%s: only %.0f events per window; the pin would be vacuous", e.name, eventsPerRun)
		}
		if perEvent > 0.001 {
			t.Errorf("%s: probe-armed hot path allocates %.5f allocs/event (%.0f events/window), want 0",
				e.name, perEvent, eventsPerRun)
		}
		if got, want := e.ps.series.Windows(), int(final-start)/25; got != want {
			t.Fatalf("%s: %d windows sampled, want %d", e.name, got, want)
		}
	}
}

// TestQueuedHandoverSteadyStateAllocs pins the allocation contract on the
// queued-handover policy path: the overloaded pin workload keeps every cell
// saturated, so handovers are parked, served, and expired continuously, and
// the queue entries must flow through the per-cell freelist (getQHO/putQHO)
// without per-event allocations — on the serial engine and on both sharded
// layouts. The warm-up advance grows each cell's queue backing array and
// entry pool to its bounded peak (QueueCapacity) before measurement starts.
func TestQueuedHandoverSteadyStateAllocs(t *testing.T) {
	queuePolicy := &policy.Config{Kind: policy.QueuedHandovers, QueueCapacity: 4, QueueDeadlineSec: 5}
	type engine struct {
		name     string
		advance  func(to float64)
		events   func() uint64
		perCells func() []*cell
	}
	build := func(name string, shards int) engine {
		cfg := allocPinConfig(7, false)
		cfg.Policy = queuePolicy
		if shards == 0 {
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return engine{name: name,
				advance:  func(to float64) { s.eng.RunUntil(to) },
				events:   s.eng.ProcessedEvents,
				perCells: func() []*cell { return s.cells }}
		}
		s, err := NewSharded(cfg, ShardedOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		return engine{name: name,
			advance: func(to float64) {
				if err := s.engine.AdvanceTo(to); err != nil {
					t.Fatal(err)
				}
			},
			events:   s.processedEvents,
			perCells: func() []*cell { return s.cells }}
	}
	for _, e := range []engine{build("serial", 0), build("sharded1", 1), build("sharded4", 4)} {
		for _, c := range e.perCells() {
			c.start()
		}
		e.advance(2000)
		perEvent, eventsPerRun := measureAllocsPerEvent(t, e.advance, e.events, 2000, 500)
		if eventsPerRun < 1000 {
			t.Fatalf("%s: only %.0f events per window; the pin would be vacuous", e.name, eventsPerRun)
		}
		if perEvent > 0.001 {
			t.Errorf("%s: queued-handover hot path allocates %.5f allocs/event (%.0f events/window), want 0",
				e.name, perEvent, eventsPerRun)
		}
		var queued, served, expired int64
		for _, c := range e.perCells() {
			queued += c.hoQueued
			served += c.hoQueueServed
			expired += c.hoQueueExpired
		}
		if queued == 0 || served == 0 || expired == 0 {
			t.Errorf("%s: queue path idle during the pin (queued %d, served %d, expired %d); the pin would be vacuous",
				e.name, queued, served, expired)
		}
	}
}

// TestShardedSteadyStateAllocs pins the same contract on the sharded engine.
// Shards=1 exercises the full sharded machinery — conservative windows,
// outbox buffering, barrier merge, pooled transit records — on the calling
// goroutine, where the budget is exact; the 4-shard layout adds the worker
// fan-out, whose per-AdvanceTo setup (channels, goroutines) is amortized over
// the thousands of events each advance processes.
func TestShardedSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name    string
		tcpPath bool
	}{{"openloop", false}, {"tcp", true}} {
		t.Run(tc.name, func(t *testing.T) {
			for _, shards := range []int{1, 4} {
				s, err := NewSharded(allocPinConfig(7, tc.tcpPath), ShardedOptions{Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				for _, c := range s.cells {
					c.start()
				}
				if err := s.engine.AdvanceTo(2000); err != nil {
					t.Fatal(err)
				}
				perEvent, eventsPerRun := measureAllocsPerEvent(t,
					func(to float64) {
						if err := s.engine.AdvanceTo(to); err != nil {
							t.Fatal(err)
						}
					},
					s.processedEvents, 2000, 500)
				if eventsPerRun < 1000 {
					t.Fatalf("%d shards: only %.0f events per window; the pin would be vacuous", shards, eventsPerRun)
				}
				if perEvent > 0.001 {
					t.Errorf("%d shards: sharded hot path allocates %.5f allocs/event (%.0f events/window), want 0",
						shards, perEvent, eventsPerRun)
				}
			}
		})
	}
}
