package sim

// weightSteps bounds the change-point walk of cellLoadWeights; profiles with
// more change points than this are extrapolated from their last observed
// rates, which only degrades partition quality, never correctness.
const weightSteps = 4096

// cellLoadWeights integrates every cell's fresh-arrival rate (voice + data
// sessions) over the whole run horizon [0, WarmupSec + MeasurementSec] by
// stepping the piecewise-constant rate profile's change points. The result is
// the expected fresh-arrival count per cell — the load weight the
// locality-aware partitioner balances groups by and the cut weight it
// minimises cross-group handover traffic against. cfg must already be
// defaulted (non-nil Topology and Rates).
func cellLoadWeights(cfg Config) []float64 {
	n := cfg.Topology.NumCells()
	w := make([]float64, n)
	horizon := cfg.WarmupSec + cfg.MeasurementSec
	t := 0.0
	for step := 0; t < horizon; step++ {
		next := cfg.Rates.NextChange(t)
		if !(next > t) || step >= weightSteps {
			next = horizon // defensive: profile stalled or pathological
		}
		if next > horizon {
			next = horizon
		}
		dt := next - t
		for c := 0; c < n; c++ {
			voice, data := cfg.Rates.Rates(c, t)
			w[c] += (voice + data) * dt
		}
		t = next
	}
	return w
}
