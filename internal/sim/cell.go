package sim

import (
	"repro/internal/stats"
	"repro/internal/traffic"
)

// blockPeriodSec is the duration of one RLC radio block (four TDMA frames).
const blockPeriodSec = 0.02

// packet is one 480-byte network-layer data packet travelling through the BSC
// buffer of a cell.
type packet struct {
	owner      *session
	conn       *connection
	seq        int
	enqueuedAt float64
	blocksLeft int
}

// cell is one cell of the cluster: voice-channel occupancy, the BSC FIFO
// buffer for data packets, the set of active GPRS sessions, and (for the mid
// cell) the measurement state.
type cell struct {
	id  int
	sim *Simulator

	voiceCalls int
	sessions   int
	buffer     []*packet

	tickScheduled bool

	// Mid-cell measurement state (allocated for every cell, but only the mid
	// cell's numbers are reported).
	pdchUsage stats.TimeWeighted
	queueLen  stats.TimeWeighted
	voiceOcc  stats.TimeWeighted
	sessOcc   stats.TimeWeighted

	packetsOffered   int64
	packetsLost      int64
	packetsDelivered int64
	delaySum         float64

	gsmArrivals  int64
	gsmBlocked   int64
	gprsArrivals int64
	gprsBlocked  int64
	handoversIn  int64
	handoversOut int64
}

// canAdmitVoice reports whether a new GSM call can be accepted.
func (c *cell) canAdmitVoice() bool {
	return c.sim.cfg.Channels.CanAdmitGSMCall(c.voiceCalls)
}

// canAdmitSession reports whether a new GPRS session can be accepted.
func (c *cell) canAdmitSession() bool {
	return c.sessions < c.sim.cfg.MaxSessions
}

func (c *cell) addVoice() {
	c.voiceCalls++
	c.voiceOcc.Update(c.sim.now(), float64(c.voiceCalls))
}

func (c *cell) removeVoice() {
	c.voiceCalls--
	c.voiceOcc.Update(c.sim.now(), float64(c.voiceCalls))
}

func (c *cell) addSession() {
	c.sessions++
	c.sessOcc.Update(c.sim.now(), float64(c.sessions))
}

func (c *cell) removeSession() {
	c.sessions--
	c.sessOcc.Update(c.sim.now(), float64(c.sessions))
}

// enqueue offers a packet to the BSC buffer. It returns false when the buffer
// is full and the packet is dropped.
func (c *cell) enqueue(p *packet) bool {
	c.packetsOffered++
	if len(c.buffer) >= c.sim.cfg.BufferSize {
		c.packetsLost++
		return false
	}
	p.enqueuedAt = c.sim.now()
	p.blocksLeft = c.sim.blocksPerPacket
	c.buffer = append(c.buffer, p)
	c.queueLen.Update(c.sim.now(), float64(len(c.buffer)))
	c.ensureTick()
	return true
}

// ensureTick schedules the next radio-block tick if transmissions are pending
// and no tick is scheduled yet.
func (c *cell) ensureTick() {
	if c.tickScheduled || len(c.buffer) == 0 {
		return
	}
	c.tickScheduled = true
	c.sim.schedule(0, c.radioTick)
}

// radioTick transmits one radio-block period worth of data: every available
// PDCH carries one RLC block, packets are served head-of-line first with at
// most eight PDCHs per packet (multislot limit).
func (c *cell) radioTick() {
	c.tickScheduled = false
	if len(c.buffer) == 0 {
		c.pdchUsage.Update(c.sim.now(), 0)
		return
	}

	available := c.sim.cfg.Channels.AvailablePDCH(c.voiceCalls)
	blocks := available
	used := 0
	for _, p := range c.buffer {
		if blocks == 0 {
			break
		}
		alloc := p.blocksLeft
		if alloc > c.sim.maxSlotsPerPacket {
			alloc = c.sim.maxSlotsPerPacket
		}
		if alloc > blocks {
			alloc = blocks
		}
		p.blocksLeft -= alloc
		blocks -= alloc
		used += alloc
	}
	c.pdchUsage.Update(c.sim.now(), float64(used))

	// Deliver packets whose last block has just been transmitted. Service is
	// head-of-line first, so finished packets form a prefix of the buffer.
	now := c.sim.now() + blockPeriodSec
	remaining := c.buffer[:0]
	for _, p := range c.buffer {
		if p.blocksLeft <= 0 {
			c.deliver(p, now)
			continue
		}
		remaining = append(remaining, p)
	}
	// Clear the tail so delivered packets do not linger in the backing array.
	for i := len(remaining); i < len(c.buffer); i++ {
		c.buffer[i] = nil
	}
	c.buffer = remaining
	c.queueLen.Update(now, float64(len(c.buffer)))

	if len(c.buffer) > 0 {
		c.tickScheduled = true
		c.sim.schedule(blockPeriodSec, c.radioTick)
	} else {
		c.pdchUsage.Update(now, 0)
	}
}

// deliver records the delivery of a packet to the mobile station and notifies
// the owning TCP connection, if any.
func (c *cell) deliver(p *packet, at float64) {
	c.packetsDelivered++
	c.delaySum += at - p.enqueuedAt
	if p.conn != nil {
		c.sim.onPacketDelivered(p, at)
	}
}

// resetBatchWindow restarts the time-weighted statistics and returns a
// snapshot of the cumulative counters, used at batch boundaries.
func (c *cell) resetBatchWindow(now float64) cellSnapshot {
	snap := c.snapshot()
	c.pdchUsage.Start(now, c.pdchUsage.Current())
	c.queueLen.Start(now, float64(len(c.buffer)))
	c.voiceOcc.Start(now, float64(c.voiceCalls))
	c.sessOcc.Start(now, float64(c.sessions))
	return snap
}

// cellSnapshot is a copy of the cumulative mid-cell counters at a batch
// boundary.
type cellSnapshot struct {
	offered   int64
	lost      int64
	delivered int64
	delaySum  float64

	gsmArrivals  int64
	gsmBlocked   int64
	gprsArrivals int64
	gprsBlocked  int64
}

func (c *cell) snapshot() cellSnapshot {
	return cellSnapshot{
		offered:      c.packetsOffered,
		lost:         c.packetsLost,
		delivered:    c.packetsDelivered,
		delaySum:     c.delaySum,
		gsmArrivals:  c.gsmArrivals,
		gsmBlocked:   c.gsmBlocked,
		gprsArrivals: c.gprsArrivals,
		gprsBlocked:  c.gprsBlocked,
	}
}

// finishBatch computes the per-batch observations between the previous
// snapshot and now and feeds them into the accumulator.
func (c *cell) finishBatch(acc *batchAccumulator, prev cellSnapshot, now, batchDur float64) {
	cur := c.snapshot()

	acc.cdt.AddBatchMean(c.pdchUsage.Mean(now))
	acc.queueLen.AddBatchMean(c.queueLen.Mean(now))
	ags := c.sessOcc.Mean(now)
	acc.ags.AddBatchMean(ags)
	acc.cvt.AddBatchMean(c.voiceOcc.Mean(now))

	offered := cur.offered - prev.offered
	lost := cur.lost - prev.lost
	delivered := cur.delivered - prev.delivered
	delay := cur.delaySum - prev.delaySum

	if offered > 0 {
		acc.plp.AddBatchMean(float64(lost) / float64(offered))
	} else {
		acc.plp.AddBatchMean(0)
	}
	if delivered > 0 {
		acc.qd.AddBatchMean(delay / float64(delivered))
	} else {
		acc.qd.AddBatchMean(0)
	}
	throughput := float64(delivered) * float64(traffic.PacketSizeBits) / batchDur
	acc.throughput.AddBatchMean(throughput)
	if ags > 0 {
		acc.atu.AddBatchMean(throughput / ags)
	} else {
		acc.atu.AddBatchMean(0)
	}

	gsmArr := cur.gsmArrivals - prev.gsmArrivals
	if gsmArr > 0 {
		acc.gsmBlock.AddBatchMean(float64(cur.gsmBlocked-prev.gsmBlocked) / float64(gsmArr))
	} else {
		acc.gsmBlock.AddBatchMean(0)
	}
	gprsArr := cur.gprsArrivals - prev.gprsArrivals
	if gprsArr > 0 {
		acc.gprsBlock.AddBatchMean(float64(cur.gprsBlocked-prev.gprsBlocked) / float64(gprsArr))
	} else {
		acc.gprsBlock.AddBatchMean(0)
	}
}
