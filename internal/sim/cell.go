package sim

import (
	"math"

	"repro/internal/des"
	"repro/internal/policy"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// blockPeriodSec is the duration of one RLC radio block (four TDMA frames).
const blockPeriodSec = 0.02

// streamsPerCell is the number of random variate streams each cell derives
// from the base seed (arrival, duration, traffic, handover).
const streamsPerCell = 4

// expBatch is the block size of the pre-drawn unit-exponential buffers on the
// exponential-only streams (arrival gaps, call durations). See
// des.Stream.BatchExponentials: batching amortizes generator dispatch without
// changing a single variate.
const expBatch = 64

// cellStreams groups the per-cell random variate streams. Every cell draws
// its arrivals, call durations, traffic variates, and handover decisions from
// its own streams, so a cell's sample path does not depend on how events of
// other cells interleave with its own — the property that makes the sharded
// engine bit-identical to the serial one.
type cellStreams struct {
	arrival  *des.Stream
	duration *des.Stream
	traffic  *des.Stream
	handover *des.Stream
}

// newCellStreams derives the streams of one cell from the base seed via
// SplitMix64 substreams (des.SubstreamSeed), which stays collision-free as
// the cell count grows — unlike the previous affine seed*4+k scheme, under
// which nearby base seeds aliased each other's streams. kind selects the draw
// behaviour of every stream: des.StreamDefault for the historic variates, or
// the paired/antithetic inversion modes the replication runner uses for
// antithetic-variate pairs (see Config.Streams). The arrival and duration
// streams serve exponential variates exclusively, so they run batched; the
// traffic and handover streams interleave distributions and must not.
func newCellStreams(seed int64, cellID int, kind des.StreamKind) cellStreams {
	sub := func(k uint64) *des.Stream {
		return des.NewStreamKind(des.SubstreamSeed(seed, uint64(cellID)*streamsPerCell+k), kind)
	}
	s := cellStreams{arrival: sub(0), duration: sub(1), traffic: sub(2), handover: sub(3)}
	s.arrival.BatchExponentials(expBatch)
	s.duration.BatchExponentials(expBatch)
	return s
}

// cellEnv is the engine-side contract of a cell: the shared configuration and
// the transport that carries handover messages between cells. The serial
// engine schedules deliveries directly on its single shared calendar; the
// sharded engine buffers them as timestamped messages merged deterministically
// at the next synchronization window barrier.
type cellEnv interface {
	conf() *Config
	radioBlocksPerPacket() int
	// dispatch sends a handover message from src to cell dst, taking effect
	// at src.now() + HandoverLatencySec.
	dispatch(src *cell, dst int, m handoverMsg)
}

// hoKind discriminates handover message payloads.
type hoKind uint8

const (
	hoVoice hoKind = iota
	hoSession
)

// voiceState is the serialized state of a voice call in handover transit.
type voiceState struct {
	// departAt is the absolute completion time of the call.
	departAt float64
}

// sessionPhase is the activity phase of a GPRS session at handover time.
type sessionPhase uint8

const (
	phaseReading sessionPhase = iota
	phaseOpenLoop
	phaseTCP
)

// sessionState is the serialized state of a GPRS session in handover transit.
// It is deliberately small: pending timers are carried as absolute times, and
// a TCP transfer is carried as its count of outstanding segments — the
// transfer restarts in the target cell, modelling the service interruption of
// a GPRS cell change (packets already queued in the source cell drain there
// without acknowledgement effect).
type sessionState struct {
	phase           sessionPhase
	packetCallsLeft int
	// packetsLeft is the number of open-loop packets still to generate in the
	// current packet call (phaseOpenLoop), or the number of TCP segments not
	// yet received by the mobile (phaseTCP).
	packetsLeft int
	// resumeAt is the absolute time of the pending traffic timer (end of the
	// reading period, or the next open-loop packet generation).
	resumeAt float64
}

// handoverMsg is the payload of one cross-cell handover.
type handoverMsg struct {
	kind  hoKind
	voice voiceState
	sess  sessionState
	// src is the cell the user handed over from. The directed-retry policy
	// uses it to pick the source's next-best neighbour; it is preserved
	// across the retry forward so the retry target is relative to the
	// original source, not the refusing cell.
	src int
	// retried marks a directed-retry forward: a handover may be retried at
	// most once, so a retried message that fails again drops the user.
	retried bool
}

// cell is one cell of the cluster: voice-channel occupancy, the BSC FIFO
// buffer for data packets, the set of active GPRS sessions, the measurement
// state, and — shard-locally — its own event calendar and random variate
// streams. In the serial engine all cells share one calendar; in the sharded
// engine each cell owns one, and cells interact only through handover
// messages.
//
// The steady-state event path of a cell is allocation-free: completed voice
// calls, sessions, and packets are recycled through per-cell freelists
// (reset on reuse), and every closure the hot path schedules is bound once —
// at cell construction or at record first-allocation — never per event.
// Allocation happens only while a freelist grows towards the cell's peak
// concurrent population, and at rate/mobility profile boundaries (O(number
// of boundaries), not O(events)).
type cell struct {
	id      int
	env     cellEnv
	eng     *des.Simulation
	streams cellStreams

	voiceCalls int
	sessions   int
	buffer     []*packet

	// deliverPending is the number of leading buffer packets whose last radio
	// block was allocated by the previous tick: their transmission completes —
	// and they are delivered — at the next tick, one block period later. Until
	// then they still occupy the buffer (the gauge counts them), but they no
	// longer count against the BSC admission limit (queuedPackets).
	deliverPending int

	tickScheduled bool

	// Prebound hot-path closures (one allocation each, at construction).
	radioTickFn func()
	armVoiceFn  func() // re-arm the voice arrival process
	armDataFn   func() // re-arm the data arrival process
	fireVoiceFn func() // handle a voice arrival, then re-arm
	fireDataFn  func() // handle a data arrival, then re-arm

	// Freelists recycling the model records of this cell. Records carry
	// their own prebound action closures, created once when the record is
	// first allocated and kept across reuses.
	freeVoice []*voiceCall
	freeSess  []*session
	freePkt   []*packet
	freeConn  []*connection
	freeCT    []*connTransit

	// hoQueue is the bounded FIFO of voice handovers parked by the
	// queued-handovers policy (head at index 0), allocated lazily on the
	// first refusal; freeQHO recycles its entries, reset on reuse, so the
	// queue discipline stays on the allocation-free hot path.
	hoQueue []*queuedHO
	freeQHO []*queuedHO

	// Mid-cell measurement state (allocated for every cell, but only the mid
	// cell's numbers are reported).
	pdchUsage stats.TimeWeighted
	queueLen  stats.TimeWeighted
	voiceOcc  stats.TimeWeighted
	sessOcc   stats.TimeWeighted

	// pr, when non-nil, is the armed probe's shadow gauge set for this cell:
	// every time-weighted update below is mirrored into it with the same
	// (time, value) pair, so the probe can read windowed means without ever
	// touching the model accumulators (see probeGauges).
	pr *probeGauges

	packetsOffered   int64
	packetsLost      int64
	packetsDelivered int64
	delaySum         float64

	gsmArrivals  int64
	gsmBlocked   int64
	gprsArrivals int64
	gprsBlocked  int64
	handoversIn  int64
	handoversOut int64

	// Handover-flow detail: outbound departures split by service, plus the
	// receiving-side ledger — every handover message reaching this cell
	// counts as an arrival, whether it is admitted (handoversIn), dropped
	// for lack of capacity (handoverFailures), or found its voice call
	// already completed in transit. Summed over all cells, arrivals balance
	// departures exactly (wrap-around flow conservation) up to messages in
	// flight across the measurement boundaries.
	voiceHandoversOut   int64
	sessionHandoversOut int64
	handoverArrivals    int64
	handoverFailures    int64

	// Admission-policy detail (see internal/policy). guardBlockedCalls counts
	// fresh calls blocked by the guard reservation alone (a free channel
	// existed but was reserved for handovers); hoQueued/hoQueueServed/
	// hoQueueExpired are the queued-handovers ledger (queued = served +
	// expired on a drained run); hoRetries counts directed-retry forwards
	// issued by this cell; hoTransitEnds counts voice handovers whose call
	// completed during the handover interruption (no admission attempted —
	// this fires under a nil policy too, it was just never counted before).
	guardBlockedCalls int64
	hoQueued          int64
	hoQueueServed     int64
	hoQueueExpired    int64
	hoRetries         int64
	hoTransitEnds     int64

	tcpTimeouts     int64
	tcpFastRecovers int64
}

// queuedHO is one voice handover parked in the cell's bounded handover queue:
// the call's absolute completion time and the cancellable deadline timer.
// Entries are pooled through getQHO/putQHO with the expiry closure bound once
// at first allocation, keeping the queue discipline allocation-free at steady
// state.
type queuedHO struct {
	cell     *cell
	departAt float64
	expireEv des.Handle
	expireFn func()
}

// getQHO takes a queue entry off the cell's freelist, or allocates one with
// its expiry closure bound. Entries come back from putQHO fully reset.
func (c *cell) getQHO() *queuedHO {
	if n := len(c.freeQHO); n > 0 {
		q := c.freeQHO[n-1]
		c.freeQHO[n-1] = nil
		c.freeQHO = c.freeQHO[:n-1]
		return q
	}
	q := &queuedHO{cell: c}
	q.expireFn = func() { q.cell.expireQueued(q) }
	return q
}

// putQHO resets a served or expired queue entry and recycles it. The deadline
// timer must already be fired or cancelled.
func (c *cell) putQHO(q *queuedHO) {
	q.departAt = 0
	q.expireEv = des.Handle{}
	c.freeQHO = append(c.freeQHO, q)
}

func newCell(id int, env cellEnv, eng *des.Simulation, seed int64, kind des.StreamKind) *cell {
	c := &cell{id: id, env: env, eng: eng, streams: newCellStreams(seed, id, kind)}
	c.radioTickFn = c.radioTick
	c.armVoiceFn = func() { c.armArrival(true) }
	c.armDataFn = func() { c.armArrival(false) }
	c.fireVoiceFn = func() { c.gsmArrival(); c.armArrival(true) }
	c.fireDataFn = func() { c.gprsArrival(); c.armArrival(false) }
	return c
}

// getVoice takes a voice-call record off the cell's freelist, or allocates
// one with its action closures bound. Records come back from putVoice fully
// reset.
func (c *cell) getVoice() *voiceCall {
	if n := len(c.freeVoice); n > 0 {
		v := c.freeVoice[n-1]
		c.freeVoice[n-1] = nil
		c.freeVoice = c.freeVoice[:n-1]
		return v
	}
	v := &voiceCall{cell: c}
	v.departFn = v.depart
	v.handoverFn = v.handover
	v.setHandoverEv = func(ev des.Handle) { v.handoverEv = ev }
	return v
}

// putVoice resets a finished voice-call record and recycles it. Both event
// handles must already be fired or cancelled.
func (c *cell) putVoice(v *voiceCall) {
	v.departAt = 0
	v.departEv = des.Handle{}
	v.handoverEv = des.Handle{}
	c.freeVoice = append(c.freeVoice, v)
}

// getSession takes a session record off the cell's freelist, or allocates
// one with its action closures bound. Records come back from putSession
// fully reset.
func (c *cell) getSession() *session {
	if n := len(c.freeSess); n > 0 {
		s := c.freeSess[n-1]
		c.freeSess[n-1] = nil
		c.freeSess = c.freeSess[:n-1]
		return s
	}
	s := &session{cell: c}
	s.startPacketCallFn = s.startPacketCall
	s.generatePacketFn = s.generatePacket
	s.handoverFn = s.handover
	s.setHandoverEv = func(ev des.Handle) { s.handoverEv = ev }
	return s
}

// putSession resets a terminated session record and recycles it. The
// session's pending events must already be cancelled and its TCP connection
// aborted (session.end does both).
func (c *cell) putSession(s *session) {
	s.active = false
	s.packetCallsLeft = 0
	s.conn = nil
	s.packetsLeftInCall = 0
	s.genEv = des.Handle{}
	s.handoverEv = des.Handle{}
	c.freeSess = append(c.freeSess, s)
}

// getPacket takes a packet record off the cell's freelist, or allocates one.
// Records come back from putPacket fully reset.
func (c *cell) getPacket() *packet {
	if n := len(c.freePkt); n > 0 {
		p := c.freePkt[n-1]
		c.freePkt[n-1] = nil
		c.freePkt = c.freePkt[:n-1]
		return p
	}
	return &packet{}
}

// putPacket resets a delivered or dropped packet record and recycles it.
func (c *cell) putPacket(p *packet) {
	p.conn = nil
	p.connGen = 0
	p.seq = 0
	p.enqueuedAt = 0
	p.blocksLeft = 0
	c.freePkt = append(c.freePkt, p)
}

// getConn takes a connection record off the cell's freelist, or allocates a
// bare one (newConnection binds the sender and the timeout closure and resets
// the transfer state). The record's generation counter survives recycling —
// it is the pool's ABA guard, advanced at every acquisition.
func (c *cell) getConn() *connection {
	if n := len(c.freeConn); n > 0 {
		cc := c.freeConn[n-1]
		c.freeConn[n-1] = nil
		c.freeConn = c.freeConn[:n-1]
		return cc
	}
	cc := &connection{cell: c}
	cc.onTimeoutFn = cc.onTimeout
	return cc
}

// putConn recycles a completed or aborted connection record. The RTO timer
// must already be cancelled; gen is deliberately left alone (see getConn).
func (c *cell) putConn(cc *connection) {
	cc.sess = nil
	cc.rtoEv = des.Handle{}
	c.freeConn = append(c.freeConn, cc)
}

// connTransit kind discriminators: a data segment crossing the core network
// towards the BSC, or a cumulative acknowledgement returning to the sender.
const (
	ctSegment = iota
	ctAck
)

// connTransit is one TCP segment or acknowledgement in flight between the
// fixed-network sender and the cell, pooled so per-segment scheduling stays
// off the allocator. fn is bound once, at first allocation; it recycles the
// record before dispatching (the dispatch may itself acquire a transit), and
// the generation check drops hops whose connection ended — or was recycled
// into a new transfer — while they travelled.
type connTransit struct {
	cell *cell
	conn *connection
	gen  uint64
	kind int
	seq  int
	ack  int
	fn   func()
}

// getCT takes a transit record off the cell's freelist, or allocates one with
// its dispatch closure bound.
func (c *cell) getCT() *connTransit {
	if n := len(c.freeCT); n > 0 {
		t := c.freeCT[n-1]
		c.freeCT[n-1] = nil
		c.freeCT = c.freeCT[:n-1]
		return t
	}
	t := &connTransit{cell: c}
	t.fn = func() {
		conn, gen, kind, seq, ack := t.conn, t.gen, t.kind, t.seq, t.ack
		t.conn = nil
		t.cell.freeCT = append(t.cell.freeCT, t)
		if conn.done || conn.gen != gen {
			return
		}
		if kind == ctSegment {
			p := conn.cell.getPacket()
			p.conn = conn
			p.connGen = gen
			p.seq = seq
			conn.cell.enqueue(p)
			return
		}
		conn.onAck(ack, seq)
	}
	return t
}

func (c *cell) now() float64 { return c.eng.Now() }

// schedule registers an action after the given delay on the cell's calendar
// and returns its event handle. Delays are always non-negative in this
// package, so scheduling cannot fail; a zero handle is returned only for a
// nil action.
func (c *cell) schedule(delay float64, action func()) des.Handle {
	if delay < 0 {
		delay = 0
	}
	ev, err := c.eng.ScheduleAfter(delay, action)
	if err != nil {
		return des.Handle{}
	}
	return ev
}

// start arms the fresh-arrival Poisson processes of the cell under its rate
// profile.
func (c *cell) start() {
	c.armArrival(true)
	c.armArrival(false)
}

// armArrival schedules the next fresh arrival of one class (GSM voice calls
// or GPRS session requests) under the cell's piecewise-constant rate profile.
// Within a constant-rate segment the next arrival is one exponential gap
// away; a gap that crosses the next rate-change boundary is discarded and the
// process re-arms at the boundary with the new rate — exact for
// piecewise-constant rates by the memorylessness of the exponential. Under a
// constant profile the boundary is +Inf, so the code draws exactly one
// variate per arrival, reproducing the fixed-rate arrival stream bit for bit.
// All decisions depend only on the cell's own stream and the (pure) profile,
// which keeps the serial and sharded engines bit-identical. The scheduled
// actions are the cell's prebound closures, so arming allocates nothing.
func (c *cell) armArrival(voice bool) {
	prof := c.env.conf().Rates
	now := c.now()
	rate, dataRate := prof.Rates(c.id, now)
	rearm, fire := c.armVoiceFn, c.fireVoiceFn
	if !voice {
		rate = dataRate
		rearm, fire = c.armDataFn, c.fireDataFn
	}
	if rate <= 0 {
		// No arrivals in this segment; wake up when the rates next change.
		if bound := prof.NextChange(now); !math.IsInf(bound, 1) {
			c.schedule(bound-now, rearm)
		}
		return
	}
	gap := c.streams.arrival.Exponential(1 / rate)
	if bound := prof.NextChange(now); now+gap >= bound {
		c.schedule(bound-now, rearm)
		return
	}
	c.schedule(gap, fire)
}

// armDwell schedules fire after an exponential dwell time whose mean is the
// given base dwell time scaled by the cell's mobility profile, re-arming at
// profile boundaries for time-varying multipliers: a draw that crosses the
// next multiplier-change boundary is discarded and the timer redrawn at the
// boundary with the new mean — exact for piecewise-constant multipliers by
// the memorylessness of the exponential, mirroring armArrival. Under a nil
// profile (and under any constant profile) the boundary is +Inf, so exactly
// one variate is drawn per dwell; with multiplier 1 that variate equals the
// profile-less draw, reproducing the symmetric handover flow bit for bit.
// set receives every scheduled event handle (the dwell timer or a boundary
// re-arm), so the owner's cancellable handle always tracks the pending
// event. All decisions depend only on the cell's own stream and the (pure)
// profile, which keeps the serial and sharded engines bit-identical. fire
// and set are the owning record's prebound closures; the boundary re-arm
// closure is the one allocation left on this path, costing O(profile
// boundaries), not O(events) — under constant profiles it never runs.
func (c *cell) armDwell(base float64, fire func(), set func(des.Handle)) {
	mean := base
	bound := math.Inf(1)
	if prof := c.env.conf().Mobility; prof != nil {
		now := c.now()
		mean = base * prof.Multiplier(c.id, now)
		bound = prof.NextChange(now)
	}
	dwell := c.streams.handover.Exponential(mean)
	if now := c.now(); now+dwell >= bound {
		set(c.schedule(bound-now, func() { c.armDwell(base, fire, set) }))
		return
	}
	set(c.schedule(dwell, fire))
}

// gsmArrival handles a fresh GSM voice call.
func (c *cell) gsmArrival() {
	c.gsmArrivals++
	if !c.canAdmitNewVoice() {
		c.gsmBlocked++
		if c.canAdmitVoice() {
			// A channel was free but reserved for handovers: the block is
			// attributable to the guard policy alone.
			c.guardBlockedCalls++
		}
		return
	}
	c.addVoice()
	duration := c.streams.duration.Exponential(c.env.conf().GSMCallDurationSec)
	call := c.getVoice()
	call.departAt = c.now() + duration
	call.departEv = c.schedule(duration, call.departFn)
	call.scheduleHandover()
}

// gprsArrival handles a fresh GPRS session request.
func (c *cell) gprsArrival() {
	c.gprsArrivals++
	if !c.canAdmitSession() {
		c.gprsBlocked++
		return
	}
	c.addSession()
	s := c.getSession()
	s.scheduleHandover()
	s.start()
}

// receive handles a handover message arriving from another cell: the user is
// admitted or dropped (handover failure) under the same admission rules as in
// the source-cell-resident model. Every message counts as a handover arrival
// regardless of the outcome, so flow-conservation accounting balances.
func (c *cell) receive(m handoverMsg) {
	c.handoverArrivals++
	switch m.kind {
	case hoVoice:
		c.receiveVoice(m)
	case hoSession:
		c.receiveSession(m)
	}
}

// receiveVoice admits a voice call arriving by handover. A call refused for
// lack of a free channel is offered to the configured policy — parked in the
// handover queue or forwarded once by directed retry — before it counts as a
// handover failure.
func (c *cell) receiveVoice(m handoverMsg) {
	st := m.voice
	if st.departAt <= c.now() {
		c.hoTransitEnds++
		return // the call ended during the handover interruption
	}
	if !c.canAdmitVoice() {
		if c.refuseVoiceHandover(m) {
			return
		}
		c.handoverFailures++
		return // handover failure: the call is dropped
	}
	c.addVoice()
	c.handoversIn++
	call := c.getVoice()
	call.departAt = st.departAt
	call.departEv = c.schedule(st.departAt-c.now(), call.departFn)
	call.scheduleHandover()
}

// refuseVoiceHandover applies the configured policy to a voice handover that
// found no free channel. It returns true when the policy disposed of the
// user (queued, or forwarded by directed retry) and false when the handover
// must count as an immediate failure — no policy, a full queue, or a forward
// that already failed once.
func (c *cell) refuseVoiceHandover(m handoverMsg) bool {
	p := c.env.conf().Policy
	if p == nil {
		return false
	}
	switch p.Kind {
	case policy.QueuedHandovers:
		if len(c.hoQueue) >= p.QueueCapacity {
			return false // queue full: immediate failure
		}
		if c.hoQueue == nil {
			c.hoQueue = make([]*queuedHO, 0, p.QueueCapacity)
		}
		q := c.getQHO()
		q.departAt = m.voice.departAt
		// The entry expires at the policy deadline, or when the waiting call
		// would have completed anyway, whichever comes first.
		wait := p.QueueDeadlineSec
		if rem := m.voice.departAt - c.now(); rem < wait {
			wait = rem
		}
		q.expireEv = c.schedule(wait, q.expireFn)
		c.hoQueue = append(c.hoQueue, q)
		c.hoQueued++
		return true
	case policy.DirectedRetry:
		if m.retried {
			return false
		}
		c.forwardRetry(m)
		return true
	}
	return false
}

// expireQueued handles the deadline timer of a queued handover: the entry
// leaves the queue and the handover fails.
func (c *cell) expireQueued(q *queuedHO) {
	for i, e := range c.hoQueue {
		if e == q {
			copy(c.hoQueue[i:], c.hoQueue[i+1:])
			c.hoQueue[len(c.hoQueue)-1] = nil
			c.hoQueue = c.hoQueue[:len(c.hoQueue)-1]
			break
		}
	}
	c.hoQueueExpired++
	c.handoverFailures++
	c.putQHO(q)
}

// serveQueuedHandover admits the head of the handover queue into the channel
// a departing call just freed (called from removeVoice whenever the queue is
// non-empty). A head whose call completed at exactly this instant — its
// deadline timer is pending at the same timestamp — expires instead.
func (c *cell) serveQueuedHandover() {
	if !c.canAdmitVoice() {
		return
	}
	q := c.hoQueue[0]
	copy(c.hoQueue, c.hoQueue[1:])
	c.hoQueue[len(c.hoQueue)-1] = nil
	c.hoQueue = c.hoQueue[:len(c.hoQueue)-1]
	q.expireEv.Cancel()
	departAt := q.departAt
	c.putQHO(q)
	if departAt <= c.now() {
		c.hoQueueExpired++
		c.handoverFailures++
		return
	}
	c.hoQueueServed++
	c.addVoice()
	c.handoversIn++
	call := c.getVoice()
	call.departAt = departAt
	call.departEv = c.schedule(departAt-c.now(), call.departFn)
	call.scheduleHandover()
}

// forwardRetry forwards a refused handover once towards the source cell's
// next-best neighbour: the neighbour following this cell in the source's
// deterministic neighbour order. No random draw is consumed, and the forward
// travels as an ordinary handover message under the same
// HandoverLatencySec, so the sharded engine's conservative-window lookahead
// covers it unchanged. The forward counts as a handover departure of this
// cell, keeping the cluster-wide flow ledger (arrivals balance departures)
// exact.
func (c *cell) forwardRetry(m handoverMsg) {
	topo := c.env.conf().Topology
	deg := topo.Degree(m.src)
	idx := 0
	for i := 0; i < deg; i++ {
		if topo.NeighborAt(m.src, i) == c.id {
			idx = i
			break
		}
	}
	target := topo.NeighborAt(m.src, (idx+1)%deg)
	c.hoRetries++
	c.handoversOut++
	if m.kind == hoVoice {
		c.voiceHandoversOut++
	} else {
		c.sessionHandoversOut++
	}
	m.retried = true
	c.env.dispatch(c, target, m)
}

// receiveSession admits a GPRS session arriving by handover and resumes its
// activity phase. Under the directed-retry policy a refused session is
// forwarded once, like a refused voice handover.
func (c *cell) receiveSession(m handoverMsg) {
	st := m.sess
	if !c.canAdmitSession() {
		if p := c.env.conf().Policy; p != nil && p.Kind == policy.DirectedRetry && !m.retried {
			c.forwardRetry(m)
			return
		}
		c.handoverFailures++
		return // handover failure: the session is forced to terminate
	}
	c.addSession()
	c.handoversIn++
	s := c.getSession()
	s.active = true
	s.packetCallsLeft = st.packetCallsLeft
	s.scheduleHandover()
	switch st.phase {
	case phaseReading:
		s.genEv = c.schedule(max(0, st.resumeAt-c.now()), s.startPacketCallFn)
	case phaseOpenLoop:
		s.packetsLeftInCall = st.packetsLeft
		s.genEv = c.schedule(max(0, st.resumeAt-c.now()), s.generatePacketFn)
	case phaseTCP:
		if st.packetsLeft <= 0 {
			// Every segment had reached the mobile; only the closing
			// acknowledgements were outstanding. The packet call is done.
			s.packetCallComplete()
			return
		}
		s.startTransfer(st.packetsLeft)
	}
}

// canAdmitVoice reports whether a voice call (fresh or handed over) can be
// accepted on the cell's free channels.
func (c *cell) canAdmitVoice() bool {
	return c.env.conf().Channels.CanAdmitGSMCall(c.voiceCalls)
}

// canAdmitNewVoice reports whether a fresh GSM call can be accepted. Under
// the guard-channel policy fresh calls are admitted only while fewer than
// GSMChannels-Guard channels are busy, leaving the reserve to handover
// arrivals; under every other policy fresh calls and handovers share the
// channels.
func (c *cell) canAdmitNewVoice() bool {
	conf := c.env.conf()
	if p := conf.Policy; p != nil && p.Kind == policy.GuardChannels {
		return c.voiceCalls < conf.Channels.GSMChannels()-p.Guard
	}
	return c.canAdmitVoice()
}

// canAdmitSession reports whether a new GPRS session can be accepted.
func (c *cell) canAdmitSession() bool {
	return c.sessions < c.env.conf().MaxSessions
}

func (c *cell) addVoice() {
	c.voiceCalls++
	c.voiceOcc.Update(c.now(), float64(c.voiceCalls))
	if c.pr != nil {
		c.pr.voice.Update(c.now(), float64(c.voiceCalls))
	}
}

func (c *cell) removeVoice() {
	c.voiceCalls--
	c.voiceOcc.Update(c.now(), float64(c.voiceCalls))
	if c.pr != nil {
		c.pr.voice.Update(c.now(), float64(c.voiceCalls))
	}
	if len(c.hoQueue) > 0 {
		// The freed channel goes to the longest-waiting queued handover.
		c.serveQueuedHandover()
	}
}

func (c *cell) addSession() {
	c.sessions++
	c.sessOcc.Update(c.now(), float64(c.sessions))
	if c.pr != nil {
		c.pr.sess.Update(c.now(), float64(c.sessions))
	}
}

func (c *cell) removeSession() {
	c.sessions--
	c.sessOcc.Update(c.now(), float64(c.sessions))
	if c.pr != nil {
		c.pr.sess.Update(c.now(), float64(c.sessions))
	}
}

// queuedPackets is the number of packets awaiting (or under) transmission:
// the buffer contents minus the packets already fully transmitted and merely
// waiting for their delivery tick. Admission and instantaneous queue-length
// reads use this count, matching the paper's finite BSC buffer.
func (c *cell) queuedPackets() int { return len(c.buffer) - c.deliverPending }

// enqueue offers a packet to the BSC buffer. It returns false when the buffer
// is full; the dropped packet is recycled, so callers must not retain it.
func (c *cell) enqueue(p *packet) bool {
	c.packetsOffered++
	if c.queuedPackets() >= c.env.conf().BufferSize {
		c.packetsLost++
		c.putPacket(p)
		return false
	}
	p.enqueuedAt = c.now()
	p.blocksLeft = c.env.radioBlocksPerPacket()
	c.buffer = append(c.buffer, p)
	c.queueLen.Update(c.now(), float64(len(c.buffer)))
	if c.pr != nil {
		c.pr.queue.Update(c.now(), float64(len(c.buffer)))
	}
	c.ensureTick()
	return true
}

// ensureTick schedules the next radio-block tick if transmissions are pending
// and no tick is scheduled yet.
func (c *cell) ensureTick() {
	if c.tickScheduled || len(c.buffer) == 0 {
		return
	}
	c.tickScheduled = true
	c.schedule(0, c.radioTickFn)
}

// radioTick transmits one radio-block period worth of data: every available
// PDCH carries one RLC block, packets are served head-of-line first with at
// most eight PDCHs per packet (multislot limit). Packets whose last block was
// allocated by the previous tick complete transmission now, exactly one block
// period later, so deliveries — and every gauge update they cause — are
// processed at their true timestamps, in time order. Mid-run observers (the
// probe samplers) therefore see gauges whose accumulators never run ahead of
// the engine clock, which is what makes window-boundary sampling exact.
func (c *cell) radioTick() {
	c.tickScheduled = false
	now := c.now()

	// Deliver the head-of-line packets that finished transmitting during the
	// block period that just ended.
	if c.deliverPending > 0 {
		for _, p := range c.buffer[:c.deliverPending] {
			c.deliver(p)
			c.putPacket(p)
		}
		n := copy(c.buffer, c.buffer[c.deliverPending:])
		for i := n; i < len(c.buffer); i++ {
			c.buffer[i] = nil
		}
		c.buffer = c.buffer[:n]
		c.deliverPending = 0
		c.queueLen.Update(now, float64(len(c.buffer)))
		if c.pr != nil {
			c.pr.queue.Update(now, float64(len(c.buffer)))
		}
	}

	if len(c.buffer) == 0 {
		c.pdchUsage.Update(now, 0)
		if c.pr != nil {
			c.pr.pdch.Update(now, 0)
		}
		return
	}

	available := c.env.conf().Channels.AvailablePDCH(c.voiceCalls)
	blocks := available
	used := 0
	for _, p := range c.buffer {
		if blocks == 0 {
			break
		}
		alloc := p.blocksLeft
		if alloc > radio.MaxSlotsPerMobile {
			alloc = radio.MaxSlotsPerMobile
		}
		if alloc > blocks {
			alloc = blocks
		}
		p.blocksLeft -= alloc
		blocks -= alloc
		used += alloc
	}
	c.pdchUsage.Update(now, float64(used))
	if c.pr != nil {
		c.pr.pdch.Update(now, float64(used))
	}

	// Packets whose last block was allocated above form a prefix of the
	// buffer (head-of-line service); they deliver at the next tick.
	for _, p := range c.buffer {
		if p.blocksLeft > 0 {
			break
		}
		c.deliverPending++
	}

	c.tickScheduled = true
	c.schedule(blockPeriodSec, c.radioTickFn)
}

// deliver records the delivery of a packet to the mobile station and notifies
// the owning TCP connection, if any. The caller recycles the packet. The
// generation check keeps a packet from waking a connection record that was
// recycled (and re-acquired) while the packet drained through the buffer.
func (c *cell) deliver(p *packet) {
	c.packetsDelivered++
	c.delaySum += c.now() - p.enqueuedAt
	if p.conn != nil && p.conn.gen == p.connGen {
		p.conn.onDelivered(p.seq)
	}
}

// resetBatchWindow restarts the time-weighted statistics and returns a
// snapshot of the cumulative counters. It runs exactly once per cell, at the
// end of the warm-up: batch boundaries difference the running integrals
// (finishBatch) instead of restarting the gauges, so every gauge measures the
// whole window uninterrupted.
func (c *cell) resetBatchWindow(now float64) cellSnapshot {
	snap := c.snapshot()
	c.pdchUsage.Start(now, c.pdchUsage.Current())
	c.queueLen.Start(now, float64(len(c.buffer)))
	c.voiceOcc.Start(now, float64(c.voiceCalls))
	c.sessOcc.Start(now, float64(c.sessions))
	return snap
}

// cellSnapshot is a copy of the cumulative mid-cell counters at a batch
// boundary.
type cellSnapshot struct {
	offered   int64
	lost      int64
	delivered int64
	delaySum  float64

	gsmArrivals  int64
	gsmBlocked   int64
	gprsArrivals int64
	gprsBlocked  int64
}

// hoSnapshot is a copy of the cumulative handover-flow counters of one cell,
// taken at the measurement-window start so the per-cell report covers the
// measured period only.
type hoSnapshot struct {
	in, out            int64
	voiceOut, sessOut  int64
	arrivals, failures int64

	guardBlocked            int64
	queued, served, expired int64
	retries, transitEnds    int64
}

func (c *cell) handoverSnapshot() hoSnapshot {
	return hoSnapshot{
		in:           c.handoversIn,
		out:          c.handoversOut,
		voiceOut:     c.voiceHandoversOut,
		sessOut:      c.sessionHandoversOut,
		arrivals:     c.handoverArrivals,
		failures:     c.handoverFailures,
		guardBlocked: c.guardBlockedCalls,
		queued:       c.hoQueued,
		served:       c.hoQueueServed,
		expired:      c.hoQueueExpired,
		retries:      c.hoRetries,
		transitEnds:  c.hoTransitEnds,
	}
}

func (c *cell) snapshot() cellSnapshot {
	return cellSnapshot{
		offered:      c.packetsOffered,
		lost:         c.packetsLost,
		delivered:    c.packetsDelivered,
		delaySum:     c.delaySum,
		gsmArrivals:  c.gsmArrivals,
		gsmBlocked:   c.gsmBlocked,
		gprsArrivals: c.gprsArrivals,
		gprsBlocked:  c.gprsBlocked,
	}
}

// gaugeIntegrals is a snapshot of the four time-weighted accumulators'
// integrals at a batch boundary, read with the non-mutating
// stats.TimeWeighted.IntegralAt so taking it never perturbs the accumulators.
type gaugeIntegrals struct {
	pdch, queue, voice, sess float64
}

func (c *cell) gaugeIntegralsAt(t float64) gaugeIntegrals {
	return gaugeIntegrals{
		pdch:  c.pdchUsage.IntegralAt(t),
		queue: c.queueLen.IntegralAt(t),
		voice: c.voiceOcc.IntegralAt(t),
		sess:  c.sessOcc.IntegralAt(t),
	}
}

// finishBatch computes the per-batch observations between the previous
// counter snapshot / integral snapshot and now and feeds them into the
// accumulator, returning the integral snapshot at now for the next batch.
// Differencing integrals (instead of restarting the gauges every batch)
// leaves the accumulators untouched across the whole measurement period, so
// the terminal gauge means — and the armed probe's shadow copies of them —
// are exact window averages, bit-identical between the per-cell report and
// the probe series.
func (c *cell) finishBatch(acc *batchAccumulator, prev cellSnapshot, prevInt gaugeIntegrals, now, batchDur float64) gaugeIntegrals {
	cur := c.snapshot()
	curInt := c.gaugeIntegralsAt(now)

	acc.cdt.AddBatchMean((curInt.pdch - prevInt.pdch) / batchDur)
	acc.queueLen.AddBatchMean((curInt.queue - prevInt.queue) / batchDur)
	ags := (curInt.sess - prevInt.sess) / batchDur
	acc.ags.AddBatchMean(ags)
	acc.cvt.AddBatchMean((curInt.voice - prevInt.voice) / batchDur)

	offered := cur.offered - prev.offered
	lost := cur.lost - prev.lost
	delivered := cur.delivered - prev.delivered
	delay := cur.delaySum - prev.delaySum

	if offered > 0 {
		acc.plp.AddBatchMean(float64(lost) / float64(offered))
	} else {
		acc.plp.AddBatchMean(0)
	}
	if delivered > 0 {
		acc.qd.AddBatchMean(delay / float64(delivered))
	} else {
		acc.qd.AddBatchMean(0)
	}
	throughput := float64(delivered) * float64(traffic.PacketSizeBits) / batchDur
	acc.throughput.AddBatchMean(throughput)
	if ags > 0 {
		acc.atu.AddBatchMean(throughput / ags)
	} else {
		acc.atu.AddBatchMean(0)
	}

	gsmArr := cur.gsmArrivals - prev.gsmArrivals
	if gsmArr > 0 {
		acc.gsmBlock.AddBatchMean(float64(cur.gsmBlocked-prev.gsmBlocked) / float64(gsmArr))
	} else {
		acc.gsmBlock.AddBatchMean(0)
	}
	gprsArr := cur.gprsArrivals - prev.gprsArrivals
	if gprsArr > 0 {
		acc.gprsBlock.AddBatchMean(float64(cur.gprsBlocked-prev.gprsBlocked) / float64(gprsArr))
	} else {
		acc.gprsBlock.AddBatchMean(0)
	}
	return curInt
}
