package sim

import (
	"repro/internal/probe"
	"repro/internal/stats"
)

// probeGauges is the shadow measurement state of one cell while a probe is
// armed: private copies of the four time-weighted statistics, updated
// alongside the model's own accumulators at the same (time, value) points.
// The probe samples these shadows with the non-mutating stats.MeanAt, never
// the model accumulators — reading those mid-run would advance their
// internal integrals and perturb the terminal aggregates by ulps, breaking
// the bit-identity contract (see the determinism contract of package probe).
// Because the shadows receive exactly the model's update sequence and are
// started with the model's measurement-window values, their final MeanAt at
// the measurement end reproduces every cell's terminal PerCell gauges bit
// for bit — the mid cell included, since batch boundaries difference running
// integrals instead of restarting its gauges.
type probeGauges struct {
	pdch, queue, voice, sess stats.TimeWeighted
}

// probeState drives the sim-time series sampling of one run: window
// boundaries, per-cell counter baselines, shadow gauges, and the recorded
// series. It is created at engine construction when Config.Probe is set and
// armed by collectRun at the end of the warm-up.
type probeState struct {
	spec   probe.Spec
	cells  []*cell
	series *probe.Series

	gauges []probeGauges
	counts []cellSnapshot
	hos    []hoSnapshot

	startT, finalT float64
	armed, done    bool
	sampled        int
}

func newProbeState(spec probe.Spec, cells []*cell) *probeState {
	return &probeState{spec: spec, cells: cells}
}

// arm begins recording at the measurement start: it snapshots every cell's
// cumulative counters as baselines, starts the shadow gauges with the same
// (time, value) origins the model's resetBatchWindow just used, and
// preallocates the full series so sampling never allocates. start and final
// must be the measurement-loop's exact warm-up end and final batch end.
func (ps *probeState) arm(start, final float64) {
	ps.startT, ps.finalT = start, final
	capacity := ps.spec.Windows(final - start)
	ps.series = probe.NewSeries(len(ps.cells), ps.spec.IntervalSec, start, capacity)
	ps.gauges = make([]probeGauges, len(ps.cells))
	ps.counts = make([]cellSnapshot, len(ps.cells))
	ps.hos = make([]hoSnapshot, len(ps.cells))
	for i, c := range ps.cells {
		g := &ps.gauges[i]
		g.pdch.Start(start, c.pdchUsage.Current())
		g.queue.Start(start, float64(len(c.buffer)))
		g.voice.Start(start, float64(c.voiceCalls))
		g.sess.Start(start, float64(c.sessions))
		c.pr = g
		ps.counts[i] = c.snapshot()
		ps.hos[i] = c.handoverSnapshot()
	}
	ps.armed = true
}

// nextBoundary returns the next window-end sample time, clamped to the
// measurement end, or ok=false once every window has been sampled (or the
// probe is not armed yet).
func (ps *probeState) nextBoundary() (t float64, ok bool) {
	if !ps.armed || ps.done {
		return 0, false
	}
	t = ps.startT + float64(ps.sampled+1)*ps.spec.IntervalSec
	if t >= ps.finalT {
		t = ps.finalT
	}
	return t, true
}

// sample records one window at time t (every cell's engine clock is at t).
// All appends land in preallocated capacity: the armed sampler path performs
// no allocations.
func (ps *probeState) sample(t float64) {
	s := ps.series
	s.Times = append(s.Times, t)
	for i, c := range ps.cells {
		cs := &s.Cells[i]
		g := &ps.gauges[i]
		base := &ps.counts[i]
		hbase := &ps.hos[i]
		cs.PacketsOffered = append(cs.PacketsOffered, c.packetsOffered-base.offered)
		cs.PacketsLost = append(cs.PacketsLost, c.packetsLost-base.lost)
		cs.PacketsDelivered = append(cs.PacketsDelivered, c.packetsDelivered-base.delivered)
		cs.DelaySumSec = append(cs.DelaySumSec, c.delaySum-base.delaySum)
		cs.GSMArrivals = append(cs.GSMArrivals, c.gsmArrivals-base.gsmArrivals)
		cs.GSMBlocked = append(cs.GSMBlocked, c.gsmBlocked-base.gsmBlocked)
		cs.GPRSArrivals = append(cs.GPRSArrivals, c.gprsArrivals-base.gprsArrivals)
		cs.GPRSBlocked = append(cs.GPRSBlocked, c.gprsBlocked-base.gprsBlocked)
		cs.HandoversIn = append(cs.HandoversIn, c.handoversIn-hbase.in)
		cs.HandoversOut = append(cs.HandoversOut, c.handoversOut-hbase.out)
		cs.HandoverArrivals = append(cs.HandoverArrivals, c.handoverArrivals-hbase.arrivals)
		cs.HandoverFailures = append(cs.HandoverFailures, c.handoverFailures-hbase.failures)
		cs.GuardBlocked = append(cs.GuardBlocked, c.guardBlockedCalls-hbase.guardBlocked)
		cs.Queued = append(cs.Queued, c.hoQueued-hbase.queued)
		cs.QueueServed = append(cs.QueueServed, c.hoQueueServed-hbase.served)
		cs.QueueExpired = append(cs.QueueExpired, c.hoQueueExpired-hbase.expired)
		cs.Retries = append(cs.Retries, c.hoRetries-hbase.retries)
		cs.TransitEnds = append(cs.TransitEnds, c.hoTransitEnds-hbase.transitEnds)
		cs.QueueLen = append(cs.QueueLen, c.queuedPackets())
		cs.VoiceCalls = append(cs.VoiceCalls, c.voiceCalls)
		cs.Sessions = append(cs.Sessions, c.sessions)
		cs.CarriedData = append(cs.CarriedData, g.pdch.MeanAt(t))
		cs.MeanQueueLen = append(cs.MeanQueueLen, g.queue.MeanAt(t))
		cs.CarriedVoice = append(cs.CarriedVoice, g.voice.MeanAt(t))
		cs.AvgSessions = append(cs.AvgSessions, g.sess.MeanAt(t))
	}
	ps.sampled++
	if t == ps.finalT {
		ps.done = true
	}
}

// advanceProbed advances the engine to time `to`, stopping at every pending
// probe window boundary on the way to sample the cells there. With a nil
// probe state this is exactly e.advanceTo(to). The extra intermediate
// advance targets repartition the engine's work without changing it: the
// serial calendar pops the same total event order either way, and the
// sharded engine's conservative windows deliver the same messages in the
// same deterministically merged order (pinned empirically by the
// probes-armed column of TestGoldenResultDigests).
func advanceProbed(e engineCore, ps *probeState, to float64) error {
	if ps == nil {
		return e.advanceTo(to)
	}
	for {
		t, ok := ps.nextBoundary()
		if !ok || t > to {
			break
		}
		if err := e.advanceTo(t); err != nil {
			return err
		}
		ps.sample(t)
	}
	return e.advanceTo(to)
}
