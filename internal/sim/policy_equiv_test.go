// Golden digests and cross-engine equivalence of the admission-policy layer:
// every policy must produce bit-identical results on the serial and the
// sharded engine and on both event-list implementations, pinned by canonical
// digests over the seed-era fields plus the policy counters. The nil-policy
// column is goldenDigests itself (scenario_equiv_test.go): a run without
// Config.Policy must keep reproducing the pre-policy engine bit for bit.
package sim_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/des"
	"repro/internal/policy"
	"repro/internal/sim"
)

// policyConfigs enumerates the pinned policy parameterizations of the golden
// table: one representative configuration per policy kind.
func policyConfigs() map[string]*policy.Config {
	return map[string]*policy.Config{
		"guard": {Kind: policy.GuardChannels, Guard: 2},
		"queue": {Kind: policy.QueuedHandovers, QueueCapacity: 4, QueueDeadlineSec: 5},
		"retry": {Kind: policy.DirectedRetry},
	}
}

// policyGoldenDigests pins the exact results of every policy on the
// scenarioQuickConfig baseline, captured from the serial reference engine at
// the introduction of the policy layer. Each digest covers the seed-era
// fields plus the six per-cell policy counters (policyDigest).
var policyGoldenDigests = []struct {
	policy string
	cells  int
	want   string
}{
	{"guard", 7, "163ee50a5c7791e5"},
	{"queue", 7, "9369931eb7c73d14"},
	{"retry", 7, "74296199c01f2529"},
	{"guard", 19, "fcf6992d4e32f90a"},
	{"queue", 19, "ef807bab8649472a"},
	{"retry", 19, "b4adbd44516f3bdb"},
}

// TestPolicyGoldenDigests pins every policy's exact sample path bit for bit
// across the full engine matrix: serial vs 4-shard, binary heap vs calendar
// queue. All four paths must reproduce the same pinned digest, which is the
// cross-engine bit-identity headline of the policy layer — directed-retry
// forwards travel as ordinary handover messages under the same conservative
// lookahead windows, and guard/queue decisions depend only on cell-local
// state. -short restricts the table to the seven-cell cluster on the heap
// queue.
func TestPolicyGoldenDigests(t *testing.T) {
	queues := []des.QueueKind{des.HeapQueue, des.CalendarQueue}
	if testing.Short() {
		queues = queues[:1]
	}
	for _, g := range policyGoldenDigests {
		if g.cells != 7 && testing.Short() {
			continue
		}
		t.Run(fmt.Sprintf("%s/%dcells", g.policy, g.cells), func(t *testing.T) {
			for _, queue := range queues {
				var serial sim.Results
				for _, shards := range []int{1, 4} {
					cfg := scenarioQuickConfig(t, g.cells)
					cfg.Policy = policyConfigs()[g.policy]
					cfg.EventQueue = queue
					res := mustRun(t, cfg, shards)
					if got := policyDigest(res); got != g.want {
						t.Errorf("queue %d, %d shard(s): digest %s, want pinned digest %s",
							queue, shards, got, g.want)
					}
					if shards == 1 {
						serial = res
					} else if !reflect.DeepEqual(res, serial) {
						t.Errorf("queue %d: sharded (%d shards) differs from serial engine", queue, shards)
					}
				}
			}
		})
	}
}

// TestPolicyChangesSamplePathAndLedger sanity-checks that each policy
// actually engages on the quick baseline (its signature counters are
// non-zero where they must be) and that the policy-specific invariants hold
// on the terminal per-cell report.
func TestPolicyChangesSamplePathAndLedger(t *testing.T) {
	baseline := mustRun(t, scenarioQuickConfig(t, 7), 1)
	for name, p := range policyConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg := scenarioQuickConfig(t, 7)
			cfg.Policy = p
			res := mustRun(t, cfg, 1)
			if reflect.DeepEqual(res, baseline) {
				t.Fatalf("policy %q did not change the sample path", name)
			}
			var guardBlocked, queued, served, expired, retries int64
			for _, m := range res.PerCell {
				guardBlocked += m.GuardBlockedCalls
				queued += m.HandoversQueued
				served += m.HandoverQueueServed
				expired += m.HandoverQueueExpired
				retries += m.HandoverRetries
				// Entries parked before the measurement window can be served or
				// expired inside it, so the windowed ledger carries slack of at
				// most the queue capacity; the exact queued = served + expired
				// identity is pinned on drained runs by the conservation suite.
				if m.HandoverQueueServed+m.HandoverQueueExpired > m.HandoversQueued+int64(p.QueueCapacity) {
					t.Errorf("cell %d: queue ledger overdrawn: queued %d, served %d, expired %d",
						m.Cell, m.HandoversQueued, m.HandoverQueueServed, m.HandoverQueueExpired)
				}
			}
			switch p.Kind {
			case policy.GuardChannels:
				if guardBlocked == 0 {
					t.Error("guard policy never blocked a fresh call on a loaded run")
				}
				if queued != 0 || retries != 0 {
					t.Errorf("guard policy touched foreign counters: queued %d, retries %d", queued, retries)
				}
			case policy.QueuedHandovers:
				if queued == 0 {
					t.Error("queue policy never queued a handover on a loaded run")
				}
				if served == 0 {
					t.Error("queue policy never served a queued handover")
				}
				if guardBlocked != 0 || retries != 0 {
					t.Errorf("queue policy touched foreign counters: guard %d, retries %d", guardBlocked, retries)
				}
			case policy.DirectedRetry:
				if retries == 0 {
					t.Error("retry policy never forwarded a refused handover on a loaded run")
				}
				if guardBlocked != 0 || queued != 0 {
					t.Errorf("retry policy touched foreign counters: guard %d, queued %d", guardBlocked, queued)
				}
			}
		})
	}
}
