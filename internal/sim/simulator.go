package sim

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/radio"
	"repro/internal/traffic"
)

// Simulator runs the detailed network-level model of the GSM/GPRS cluster.
// Create one with New, run it once with Run. A Simulator is single-use and
// single-goroutine; for independent replications merged into
// cross-replication confidence intervals use the runner package, which
// derives one seed substream per replication and fans the runs out across a
// worker pool.
type Simulator struct {
	cfg Config
	eng *des.Simulation

	cells []*cell

	streams struct {
		arrival  *des.Stream
		duration *des.Stream
		traffic  *des.Stream
		handover *des.Stream
	}

	blocksPerPacket   int
	maxSlotsPerPacket int
	sessionCounter    int

	totalTimeouts     int64
	totalFastRecovers int64
}

// New validates the configuration and builds a simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	s := &Simulator{
		cfg:               cfg,
		eng:               des.NewSimulation(),
		blocksPerPacket:   cfg.Channels.Coding.RadioBlocksPerPacket(traffic.PacketSizeBytes),
		maxSlotsPerPacket: radio.MaxSlotsPerMobile,
	}
	if s.blocksPerPacket < 1 {
		return nil, fmt.Errorf("%w: coding scheme %v yields no radio blocks", ErrInvalidConfig, cfg.Channels.Coding)
	}

	s.streams.arrival = des.NewStream(cfg.Seed*4 + 1)
	s.streams.duration = des.NewStream(cfg.Seed*4 + 2)
	s.streams.traffic = des.NewStream(cfg.Seed*4 + 3)
	s.streams.handover = des.NewStream(cfg.Seed*4 + 4)

	s.cells = make([]*cell, cfg.Topology.NumCells())
	for i := range s.cells {
		s.cells[i] = &cell{id: i, sim: s}
	}
	return s, nil
}

// Config returns the (defaulted) configuration of the simulator.
func (s *Simulator) Config() Config { return s.cfg }

// MidCell returns the index of the measured cell.
func (s *Simulator) MidCell() int { return cluster.MidCell }

func (s *Simulator) now() float64 { return s.eng.Now() }

// schedule registers an action after the given delay and returns its event
// handle. Delays are always non-negative in this package, so scheduling
// cannot fail; a nil handle is returned only for a nil action.
func (s *Simulator) schedule(delay float64, action func()) *des.Event {
	if delay < 0 {
		delay = 0
	}
	ev, err := s.eng.ScheduleAfter(delay, action)
	if err != nil {
		return nil
	}
	return ev
}

// Run executes warm-up plus the measurement period and returns the mid-cell
// results.
func (s *Simulator) Run() (Results, error) {
	rates := struct {
		gsm  float64
		gprs float64
	}{
		gsm:  (1 - s.cfg.GPRSFraction) * s.cfg.TotalCallRate,
		gprs: s.cfg.GPRSFraction * s.cfg.TotalCallRate,
	}

	for _, c := range s.cells {
		if rates.gsm > 0 {
			s.scheduleNextGSMArrival(c, rates.gsm)
		}
		if rates.gprs > 0 {
			s.scheduleNextGPRSArrival(c, rates.gprs)
		}
	}

	warmupEnd := s.cfg.WarmupSec
	s.eng.RunUntil(warmupEnd)

	mid := s.cells[cluster.MidCell]
	acc := newBatchAccumulator(s.cfg.ConfidenceLevel)
	snap := mid.resetBatchWindow(s.now())
	warmStart := mid.snapshot()
	handoversInStart := mid.handoversIn
	handoversOutStart := mid.handoversOut

	batchDur := s.cfg.MeasurementSec / float64(s.cfg.Batches)
	for b := 1; b <= s.cfg.Batches; b++ {
		s.eng.RunUntil(warmupEnd + float64(b)*batchDur)
		mid.finishBatch(acc, snap, s.now(), batchDur)
		snap = mid.resetBatchWindow(s.now())
	}

	res := acc.results()
	final := mid.snapshot()
	res.PacketsOffered = final.offered - warmStart.offered
	res.PacketsLost = final.lost - warmStart.lost
	res.PacketsDelivered = final.delivered - warmStart.delivered
	res.HandoversIn = mid.handoversIn - handoversInStart
	res.HandoversOut = mid.handoversOut - handoversOutStart
	res.TCPTimeouts = s.totalTimeouts
	res.TCPFastRecovers = s.totalFastRecovers
	res.SimulatedSec = s.cfg.MeasurementSec
	res.Events = s.eng.ProcessedEvents()
	return res, nil
}

// scheduleNextGSMArrival arms the Poisson arrival process of fresh GSM calls
// in a cell.
func (s *Simulator) scheduleNextGSMArrival(c *cell, rate float64) {
	gap := s.streams.arrival.Exponential(1 / rate)
	s.schedule(gap, func() {
		s.gsmArrival(c)
		s.scheduleNextGSMArrival(c, rate)
	})
}

// scheduleNextGPRSArrival arms the Poisson arrival process of fresh GPRS
// session requests in a cell.
func (s *Simulator) scheduleNextGPRSArrival(c *cell, rate float64) {
	gap := s.streams.arrival.Exponential(1 / rate)
	s.schedule(gap, func() {
		s.gprsArrival(c)
		s.scheduleNextGPRSArrival(c, rate)
	})
}

// gsmArrival handles a fresh GSM voice call in a cell.
func (s *Simulator) gsmArrival(c *cell) {
	c.gsmArrivals++
	if !c.canAdmitVoice() {
		c.gsmBlocked++
		return
	}
	c.addVoice()
	call := &voiceCall{cellID: c.id}
	duration := s.streams.duration.Exponential(s.cfg.GSMCallDurationSec)
	call.departEv = s.schedule(duration, func() { s.voiceDeparture(call) })
	s.scheduleVoiceHandover(call)
}

// voiceDeparture completes a voice call.
func (s *Simulator) voiceDeparture(call *voiceCall) {
	s.cells[call.cellID].removeVoice()
	call.handoverEv.Cancel()
}

// scheduleVoiceHandover arms the dwell-time timer of a voice call.
func (s *Simulator) scheduleVoiceHandover(call *voiceCall) {
	dwell := s.streams.handover.Exponential(s.cfg.GSMDwellTimeSec)
	call.handoverEv = s.schedule(dwell, func() { s.voiceHandover(call) })
}

// voiceHandover moves a voice call to a neighbouring cell; if the target has
// no free traffic channel the call is dropped (handover failure).
func (s *Simulator) voiceHandover(call *voiceCall) {
	old := s.cells[call.cellID]
	targetID := s.cfg.Topology.HandoverTarget(call.cellID, s.streams.handover.Intn)
	if targetID < 0 {
		s.scheduleVoiceHandover(call)
		return
	}
	target := s.cells[targetID]
	old.handoversOut++
	old.removeVoice()
	if !target.canAdmitVoice() {
		call.departEv.Cancel()
		return
	}
	target.addVoice()
	target.handoversIn++
	call.cellID = targetID
	s.scheduleVoiceHandover(call)
}

// gprsArrival handles a fresh GPRS session request in a cell.
func (s *Simulator) gprsArrival(c *cell) {
	c.gprsArrivals++
	if !c.canAdmitSession() {
		c.gprsBlocked++
		return
	}
	c.addSession()
	s.sessionCounter++
	sess := &session{id: s.sessionCounter, cellID: c.id, sim: s}
	sess.scheduleHandover()
	sess.start()
}

// onPacketDelivered forwards a delivered TCP segment to its connection.
func (s *Simulator) onPacketDelivered(p *packet, at float64) {
	p.conn.onDelivered(p.seq, at)
}
