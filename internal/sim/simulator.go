package sim

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/probe"
	"repro/internal/traffic"
)

// engineCore is the common substrate of the serial and the sharded engine:
// a configured set of cells that can be advanced to a simulation time. The
// measurement loop (warm-up, batch windows, totals) is shared between both
// through collectRun.
type engineCore interface {
	conf() *Config
	cellList() []*cell
	advanceTo(t float64) error
	processedEvents() uint64
	// probes returns the engine's probe state, or nil when Config.Probe is
	// unset.
	probes() *probeState
	// poolStats sums the event-record pool counters of the engine's
	// calendars: freelist hits, fresh allocations, and currently pooled
	// records.
	poolStats() (hits, misses, free uint64)
}

// Simulator runs the detailed network-level model of the GSM/GPRS cluster on
// a single event calendar shared by all cells. Create one with New, run it
// once with Run. A Simulator is single-use and single-goroutine; for
// independent replications merged into cross-replication confidence intervals
// use the runner package, and for shard-parallel execution of one replication
// use NewSharded — both engines produce bit-identical results for a given
// configuration, because every cell draws from its own random variate
// substreams and handovers travel as timestamped messages in either engine.
type Simulator struct {
	config Config
	eng    *des.Simulation
	cells  []*cell
	bpp    int
	pstate *probeState

	// freeHO recycles handover-dispatch records, keeping dispatch off the
	// allocator (the scheduled closure is bound to the record once, at first
	// allocation).
	freeHO []*hoTransit
}

// New validates the configuration and builds a serial simulator.
func New(cfg Config) (*Simulator, error) {
	s := &Simulator{eng: des.NewSimulationQueue(cfg.EventQueue)}
	var err error
	s.config, s.bpp, s.cells, err = buildCells(cfg, s, func(int) *des.Simulation { return s.eng })
	if err != nil {
		return nil, err
	}
	if s.config.Probe != nil {
		s.pstate = newProbeState(*s.config.Probe, s.cells)
	}
	return s, nil
}

// buildCells is the construction path shared by the serial and the sharded
// engine: it validates and defaults the configuration, computes the radio
// blocks per packet, and constructs the cells of the cluster. calendarFor
// supplies cell i's event calendar — the serial engine passes one shared
// calendar, the sharded engine a private one per cell.
func buildCells(cfg Config, env cellEnv, calendarFor func(i int) *des.Simulation) (Config, int, []*cell, error) {
	if err := cfg.Validate(); err != nil {
		return Config{}, 0, nil, err
	}
	cfg = cfg.withDefaults()
	bpp := cfg.Channels.Coding.RadioBlocksPerPacket(traffic.PacketSizeBytes)
	if bpp < 1 {
		return Config{}, 0, nil, fmt.Errorf("%w: coding scheme %v yields no radio blocks", ErrInvalidConfig, cfg.Channels.Coding)
	}
	cells := make([]*cell, cfg.Topology.NumCells())
	for i := range cells {
		cells[i] = newCell(i, env, calendarFor(i), cfg.Seed, cfg.Streams)
	}
	return cfg, bpp, cells, nil
}

// Config returns the (defaulted) configuration of the simulator.
func (s *Simulator) Config() Config { return s.config }

// MidCell returns the index of the measured cell.
func (s *Simulator) MidCell() int { return cluster.MidCell }

// Run executes warm-up plus the measurement period and returns the mid-cell
// results.
func (s *Simulator) Run() (Results, error) { return collectRun(s) }

// Series returns the sim-time series recorded by the run, or nil when
// Config.Probe was unset (or Run has not executed yet).
func (s *Simulator) Series() *probe.Series {
	if s.pstate == nil {
		return nil
	}
	return s.pstate.series
}

func (s *Simulator) conf() *Config             { return &s.config }
func (s *Simulator) radioBlocksPerPacket() int { return s.bpp }
func (s *Simulator) cellList() []*cell         { return s.cells }
func (s *Simulator) processedEvents() uint64   { return s.eng.ProcessedEvents() }
func (s *Simulator) probes() *probeState       { return s.pstate }

func (s *Simulator) poolStats() (hits, misses, free uint64) {
	hits, misses = s.eng.PoolStats()
	return hits, misses, uint64(s.eng.FreeEvents())
}

func (s *Simulator) advanceTo(t float64) error {
	s.eng.RunUntil(t)
	return nil
}

// hoTransit is one handover message in flight on the serial engine's shared
// calendar. Records are recycled through the simulator's freelist; fn is
// bound to the record once, at first allocation, so dispatching allocates
// nothing in steady state.
type hoTransit struct {
	sim *Simulator
	dst int
	msg handoverMsg
	fn  func()
}

func (s *Simulator) getHO() *hoTransit {
	if n := len(s.freeHO); n > 0 {
		t := s.freeHO[n-1]
		s.freeHO[n-1] = nil
		s.freeHO = s.freeHO[:n-1]
		return t
	}
	t := &hoTransit{sim: s}
	t.fn = func() {
		t.sim.cells[t.dst].receive(t.msg)
		t.msg = handoverMsg{}
		t.sim.freeHO = append(t.sim.freeHO, t)
	}
	return t
}

// dispatch implements cellEnv on the shared calendar: the handover message is
// simply scheduled for delivery after the handover latency.
func (s *Simulator) dispatch(src *cell, dst int, m handoverMsg) {
	at := src.now() + s.config.HandoverLatencySec
	t := s.getHO()
	t.dst = dst
	t.msg = m
	if _, err := s.eng.Schedule(at, t.fn); err != nil {
		// Delays are non-negative and finite by construction; an error here
		// would be a programming bug, not a model condition.
		panic(err)
	}
}

// collectRun drives an engine through warm-up and the batched measurement
// period and assembles the mid-cell results.
func collectRun(e engineCore) (Results, error) {
	cfg := e.conf()
	cells := e.cellList()
	probe.Default.RunsStarted.Add(1)
	for _, c := range cells {
		c.start()
	}

	warmupEnd := cfg.WarmupSec
	if err := e.advanceTo(warmupEnd); err != nil {
		return Results{}, err
	}

	mid := cells[cluster.MidCell]
	acc := newBatchAccumulator(cfg.ConfidenceLevel)

	// Reset every cell's measurement window at the end of the warm-up and
	// keep its counter snapshot, so each cell — not only the mid cell — can
	// be reported over the measurement period. Resetting touches only the
	// time-weighted statistics, never the event flow, so mid-cell results are
	// unaffected by the extra bookkeeping.
	perStart := make([]cellSnapshot, len(cells))
	hoStart := make([]hoSnapshot, len(cells))
	for i, c := range cells {
		perStart[i] = c.resetBatchWindow(warmupEnd)
		hoStart[i] = c.handoverSnapshot()
	}
	snap := perStart[cluster.MidCell]
	warmStart := snap

	batchDur := cfg.MeasurementSec / float64(cfg.Batches)
	// Arm the probe (when configured) over the exact measurement span the
	// batch loop will cover: the final batch end below computes the same
	// float expression, so the probe's clamped last window coincides with the
	// terminal aggregates bit for bit.
	ps := e.probes()
	if ps != nil {
		ps.arm(warmupEnd, warmupEnd+float64(cfg.Batches)*batchDur)
	}
	// Publish wall-clock progress at coarse boundaries only (warm-up end and
	// batch ends), keeping the event hot path free of atomics.
	lastEvents := e.processedEvents()
	probe.Default.EventsProcessed.Add(lastEvents)
	end := warmupEnd
	snapInt := mid.gaugeIntegralsAt(warmupEnd)
	for b := 1; b <= cfg.Batches; b++ {
		end = warmupEnd + float64(b)*batchDur
		if err := advanceProbed(e, ps, end); err != nil {
			return Results{}, err
		}
		snapInt = mid.finishBatch(acc, snap, snapInt, end, batchDur)
		snap = mid.snapshot()
		cur := e.processedEvents()
		probe.Default.EventsProcessed.Add(cur - lastEvents)
		lastEvents = cur
	}

	res := acc.results()
	final := mid.snapshot()
	res.PacketsOffered = final.offered - warmStart.offered
	res.PacketsLost = final.lost - warmStart.lost
	res.PacketsDelivered = final.delivered - warmStart.delivered
	res.HandoversIn = mid.handoversIn - hoStart[cluster.MidCell].in
	res.HandoversOut = mid.handoversOut - hoStart[cluster.MidCell].out
	for _, c := range cells {
		res.TCPTimeouts += c.tcpTimeouts
		res.TCPFastRecovers += c.tcpFastRecovers
	}
	res.SimulatedSec = cfg.MeasurementSec
	res.Events = e.processedEvents()
	res.PerCell = perCellMeasures(cells, perStart, hoStart, end, cfg.MeasurementSec)

	hits, misses, free := e.poolStats()
	probe.Default.PoolHits.Add(hits)
	probe.Default.PoolMisses.Add(misses)
	probe.Default.FreeEvents.Store(free)
	probe.Default.RunsCompleted.Add(1)
	return res, nil
}

// perCellMeasures assembles the per-cell report at the end of a run. Every
// cell — the mid cell included — reports its time-weighted statistics
// directly over the measurement window: windows are reset once, at the end of
// the warm-up, and batch boundaries only read running integrals. The armed
// probe's shadow gauges receive the identical update sequence from the
// identical start, so the final probe window reproduces these gauge values
// bit for bit (pinned by TestSeriesMatchesPerCellAggregates).
func perCellMeasures(cells []*cell, perStart []cellSnapshot,
	hoStart []hoSnapshot, end, measurementSec float64) []CellMeasures {
	out := make([]CellMeasures, len(cells))
	for i, c := range cells {
		cur := c.snapshot()
		m := CellMeasures{Cell: i}
		m.CarriedDataTraffic = c.pdchUsage.Mean(end)
		m.MeanQueueLength = c.queueLen.Mean(end)
		m.CarriedVoiceTraffic = c.voiceOcc.Mean(end)
		m.AverageSessions = c.sessOcc.Mean(end)
		m.PacketsOffered = cur.offered - perStart[i].offered
		m.PacketsLost = cur.lost - perStart[i].lost
		m.PacketsDelivered = cur.delivered - perStart[i].delivered
		ho := c.handoverSnapshot()
		m.HandoversIn = ho.in - hoStart[i].in
		m.HandoversOut = ho.out - hoStart[i].out
		m.VoiceHandoversOut = ho.voiceOut - hoStart[i].voiceOut
		m.SessionHandoversOut = ho.sessOut - hoStart[i].sessOut
		m.HandoverArrivals = ho.arrivals - hoStart[i].arrivals
		m.HandoverFailures = ho.failures - hoStart[i].failures
		m.GuardBlockedCalls = ho.guardBlocked - hoStart[i].guardBlocked
		m.HandoversQueued = ho.queued - hoStart[i].queued
		m.HandoverQueueServed = ho.served - hoStart[i].served
		m.HandoverQueueExpired = ho.expired - hoStart[i].expired
		m.HandoverRetries = ho.retries - hoStart[i].retries
		m.HandoverTransitEnds = ho.transitEnds - hoStart[i].transitEnds
		if m.PacketsOffered > 0 {
			m.PacketLossProbability = float64(m.PacketsLost) / float64(m.PacketsOffered)
		}
		if m.PacketsDelivered > 0 {
			m.QueueingDelaySec = (cur.delaySum - perStart[i].delaySum) / float64(m.PacketsDelivered)
		}
		m.ThroughputBits = float64(m.PacketsDelivered) * float64(traffic.PacketSizeBits) / measurementSec
		if gsmArr := cur.gsmArrivals - perStart[i].gsmArrivals; gsmArr > 0 {
			m.GSMBlocking = float64(cur.gsmBlocked-perStart[i].gsmBlocked) / float64(gsmArr)
		}
		if gprsArr := cur.gprsArrivals - perStart[i].gprsArrivals; gprsArr > 0 {
			m.GPRSBlocking = float64(cur.gprsBlocked-perStart[i].gprsBlocked) / float64(gprsArr)
		}
		out[i] = m
	}
	return out
}
