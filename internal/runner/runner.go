// Package runner fans independent replications of the detailed GPRS
// simulator out across a bounded worker pool and merges the per-replication
// results into cross-replication confidence intervals.
//
// The replicate-and-aggregate methodology follows standard steady-state
// simulation practice (and the measurement studies the paper's validation
// rests on): R statistically independent runs are produced from R disjoint
// seed substreams derived from one base seed, the point estimate of every
// performance measure is averaged across the runs, and a Student-t confidence
// interval is computed over the R replication means. Unlike batch means
// within a single run, replication means are independent by construction, so
// the intervals need no warm-up-correlation caveats.
//
// Results are bit-identical for a given (base seed, replication count)
// regardless of the worker count: replication i always uses SeedFor(base, i),
// results are collected into a slice indexed by replication, and the merge
// folds them in index order.
//
// The package also exposes the generic concurrency primitives the experiment
// harness shares with the replication engine: Limiter, a counting semaphore
// that bounds the number of truly active tasks across nested fan-outs, and
// ForEach, an index-parallel loop with deterministic error selection.
package runner

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/sim"
	"repro/internal/stats"
)

// SeedFor derives the seed of replication i from the base seed. The
// derivation is a SplitMix64 finalization step, so consecutive replication
// indices land in well-separated regions of the underlying generator's state
// space rather than on nearby seeds.
func SeedFor(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Options controls a replicated simulation run.
type Options struct {
	// Replications is the number of independent replications R; the zero
	// value means 1.
	Replications int
	// Workers bounds the number of replications simulated concurrently; the
	// zero value means runtime.NumCPU(). Ignored when Limiter is set.
	Workers int
	// BaseSeed is the seed the per-replication substreams are derived from;
	// the zero value means 1.
	BaseSeed int64
	// ConfidenceLevel is the level of the merged intervals; the zero value
	// means the simulator configuration's level (0.95 if that is unset too).
	ConfidenceLevel float64
	// Progress, when non-nil, is called after every completed replication
	// with the number of finished replications and the total. Calls are
	// serialized but may arrive in any replication order.
	Progress func(done, total int)
	// Limiter, when non-nil, is the shared semaphore replications acquire a
	// token from instead of a pool-private one. Callers running several
	// replicated simulations concurrently pass one Limiter so the global
	// number of in-flight simulator runs stays bounded.
	Limiter *Limiter
}

func (o Options) withDefaults() Options {
	if o.Replications <= 0 {
		o.Replications = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	return o
}

// Summary is the outcome of a replicated simulation run.
type Summary struct {
	// Merged holds the cross-replication results: every interval is a
	// Student-t confidence interval over the R replication means (its Batches
	// field reports R), and the event and packet totals are summed over all
	// replications. With a single replication Merged is that replication's
	// result verbatim, batch-means intervals included.
	Merged sim.Results
	// Replications is the number of replications merged.
	Replications int
	// BaseSeed is the seed the replication substreams were derived from.
	BaseSeed int64
	// PerReplication holds the individual replication results in replication
	// order.
	PerReplication []sim.Results
}

// String renders the summary as a small table headed by the replication
// count.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d replication(s), base seed %d\n", s.Replications, s.BaseSeed)
	b.WriteString(s.Merged.String())
	return b.String()
}

// measures enumerates the interval-valued fields of sim.Results once, so the
// merge does not hand-copy ten fields.
var measures = []func(*sim.Results) *stats.Interval{
	func(r *sim.Results) *stats.Interval { return &r.CarriedDataTraffic },
	func(r *sim.Results) *stats.Interval { return &r.PacketLossProbability },
	func(r *sim.Results) *stats.Interval { return &r.QueueingDelay },
	func(r *sim.Results) *stats.Interval { return &r.ThroughputBits },
	func(r *sim.Results) *stats.Interval { return &r.ThroughputPerUserBits },
	func(r *sim.Results) *stats.Interval { return &r.AverageSessions },
	func(r *sim.Results) *stats.Interval { return &r.CarriedVoiceTraffic },
	func(r *sim.Results) *stats.Interval { return &r.GSMBlockingProbability },
	func(r *sim.Results) *stats.Interval { return &r.GPRSBlockingProbability },
	func(r *sim.Results) *stats.Interval { return &r.MeanQueueLength },
}

// Merge folds per-replication results into a Summary at the given confidence
// level. Replications are folded in slice order, so the result is independent
// of the schedule that produced them. An empty slice yields a zero Summary;
// a single result is passed through unchanged (batch-means intervals intact).
func Merge(results []sim.Results, level float64) Summary {
	s := Summary{
		Replications:   len(results),
		PerReplication: results,
	}
	if len(results) == 0 {
		return s
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	s.Merged = results[0]
	if len(results) == 1 {
		return s
	}
	for _, get := range measures {
		xs := make([]float64, len(results))
		for i := range results {
			xs[i] = get(&results[i]).Mean
		}
		*get(&s.Merged) = stats.MeanInterval(xs, level)
	}
	s.Merged.PacketsOffered = 0
	s.Merged.PacketsLost = 0
	s.Merged.PacketsDelivered = 0
	s.Merged.HandoversIn = 0
	s.Merged.HandoversOut = 0
	s.Merged.TCPTimeouts = 0
	s.Merged.TCPFastRecovers = 0
	s.Merged.SimulatedSec = 0
	s.Merged.Events = 0
	for i := range results {
		r := &results[i]
		s.Merged.PacketsOffered += r.PacketsOffered
		s.Merged.PacketsLost += r.PacketsLost
		s.Merged.PacketsDelivered += r.PacketsDelivered
		s.Merged.HandoversIn += r.HandoversIn
		s.Merged.HandoversOut += r.HandoversOut
		s.Merged.TCPTimeouts += r.TCPTimeouts
		s.Merged.TCPFastRecovers += r.TCPFastRecovers
		s.Merged.SimulatedSec += r.SimulatedSec
		s.Merged.Events += r.Events
	}
	return s
}

// Run executes R independent replications of the given simulator
// configuration (the configuration's own Seed field is ignored; replication i
// runs with SeedFor(BaseSeed, i)) and merges them. The merged result is
// bit-identical for a given (BaseSeed, Replications) pair regardless of
// worker count.
func Run(cfg sim.Config, o Options) (Summary, error) {
	o = o.withDefaults()
	lim := o.Limiter
	if lim == nil {
		lim = NewLimiter(o.Workers)
	}

	level := o.ConfidenceLevel
	if level <= 0 || level >= 1 {
		level = cfg.ConfidenceLevel
	}

	results := make([]sim.Results, o.Replications)
	var mu sync.Mutex
	done := 0
	err := ForEach(lim, o.Replications, func(i int) error {
		c := cfg
		c.Seed = SeedFor(o.BaseSeed, i)
		s, err := sim.New(c)
		if err != nil {
			return fmt.Errorf("replication %d: %w", i, err)
		}
		res, err := s.Run()
		if err != nil {
			return fmt.Errorf("replication %d: %w", i, err)
		}
		results[i] = res
		if o.Progress != nil {
			mu.Lock()
			done++
			o.Progress(done, o.Replications)
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return Summary{}, err
	}
	sum := Merge(results, level)
	sum.BaseSeed = o.BaseSeed
	return sum, nil
}
