// Package runner fans independent replications of the detailed GPRS
// simulator out across a bounded worker pool and merges the per-replication
// results into cross-replication confidence intervals.
//
// The replicate-and-aggregate methodology follows standard steady-state
// simulation practice (and the measurement studies the paper's validation
// rests on): R statistically independent runs are produced from R disjoint
// seed substreams derived from one base seed, the point estimate of every
// performance measure is averaged across the runs, and a Student-t confidence
// interval is computed over the R replication means. Unlike batch means
// within a single run, replication means are independent by construction, so
// the intervals need no warm-up-correlation caveats.
//
// Beyond the paper's fixed replication count, the package supports
// precision-targeted adaptive replication (Options.Precision): replications
// are added in deterministic batches until the relative confidence half-width
// of a chosen target measure drops below the threshold, so cheap sweep points
// stop early and hard ones keep refining — bounded by Options.MinReplications
// and Options.MaxReplications. Two classic variance-reduction schemes reduce
// the number of replications needed for a given precision (Options.VR):
// antithetic-variate pairing of replications and an Erlang-B control-variate
// estimator; see VarianceReduction for the estimator definitions.
//
// # Determinism contract
//
// Results are bit-identical for a given (base seed, replication count)
// regardless of the worker count, the shard count, and the scheduling of
// replications onto workers:
//
//   - SplitMix64 substream seeding: replication i always runs with
//     SeedFor(base, i) = des.SubstreamSeed(base, i), a SplitMix64
//     finalization of the base seed. The derived seeds depend only on
//     (base, i) — never on which worker picks the replication up — and
//     consecutive indices land in well-separated regions of the generator's
//     state space instead of on nearby seeds. (Under antithetic pairing the
//     unit of seeding is the pair: replications 2p and 2p+1 both run with
//     SeedFor(base, p), one on the paired and one on the antithetic stream
//     kind.)
//
//   - Worker-count invariance: results are collected into a slice indexed
//     by replication and the merge folds them in index order, so Workers
//     (and the Limiter sharing that bound across nested fan-outs) only
//     changes wall-clock time. ForEach reports the error of the lowest
//     failing index for the same reason.
//
//   - Engine invariance: Shards > 1 runs each replication on the sharded
//     engine, which reproduces the serial engine bit for bit (see the
//     determinism contract of internal/shard), so the engine choice is
//     also purely a scheduling decision.
//
//   - Stopping-rule determinism: the adaptive mode grows the replication
//     set along the same substream sequence (replication i exists
//     independently of when the loop decided to run it), and the stopping
//     decision is a pure function of the merged results after each batch.
//     Growth batches are sized to the worker pool gating the replication
//     fan-out — half-again growth rounded up to a multiple of the pool
//     width, so a wide machine never ends a batch with most workers idle
//     behind a straggler. The realized replication count — and therefore
//     every reported number — depends only on (configuration, base seed,
//     precision, bounds, VR, pool width), never on how replications are
//     scheduled onto workers: replication i is the same seeded run under
//     every schedule, and whenever two pool widths evaluate the rule at the
//     same boundary (a first batch that already converges, or a run that
//     hits MaxReplications) their results are bit-identical. With the
//     threshold disabled the fixed-R path is taken unchanged, bit for bit.
//
// The package also exposes the generic concurrency primitives the experiment
// harness shares with the replication engine: Limiter, a counting semaphore
// that bounds the number of truly active tasks across nested fan-outs, and
// ForEach, an index-parallel loop with deterministic error selection.
package runner

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/des"
	"repro/internal/probe"
	"repro/internal/sim"
)

// SeedFor derives the seed of replication i from the base seed. The
// derivation is a SplitMix64 finalization step (des.SubstreamSeed), so
// consecutive replication indices land in well-separated regions of the
// underlying generator's state space rather than on nearby seeds.
func SeedFor(base int64, i int) int64 {
	return des.SubstreamSeed(base, uint64(i))
}

// Options controls a replicated simulation run.
type Options struct {
	// Replications is the number of independent replications R; the zero
	// value means 1. Ignored when Precision > 0 (the stopping rule decides
	// the count); rounded up to an even count under VRAntithetic.
	Replications int
	// Workers bounds the number of replications simulated concurrently; the
	// zero value means runtime.NumCPU(). Ignored when Limiter is set. In
	// adaptive mode the width of the gating pool also sizes the growth
	// batches (rounded up to a pool multiple), so an explicit Workers pins
	// the stopping boundaries across machines; Workers 1 reproduces the
	// plain half-again growth schedule.
	Workers int
	// BaseSeed is the seed the per-replication substreams are derived from;
	// the zero value means 1.
	BaseSeed int64
	// ConfidenceLevel is the level of the merged intervals; the zero value
	// means the simulator configuration's level (0.95 if that is unset too).
	ConfidenceLevel float64
	// Progress, when non-nil, is called after every completed replication
	// with the number of finished replications and the total planned so far
	// (which grows across adaptive batches). Calls are serialized but may
	// arrive in any replication order.
	Progress func(done, total int)
	// Limiter, when non-nil, is the shared semaphore replications acquire a
	// token from instead of a pool-private one. Callers running several
	// replicated simulations concurrently pass one Limiter so the global
	// number of in-flight simulator runs stays bounded.
	Limiter *Limiter
	// Shards, when > 1, runs every replication on the sharded multi-cell
	// engine (sim.NewSharded) with that many cell groups advanced in
	// parallel conservative time windows. Shard-level parallelism composes
	// with replication-level parallelism: the replication fan-out is then
	// gated by Admission (live simulators) while the shard workers of all
	// replications acquire CPU tokens from the shared Limiter, keeping the
	// number of active CPU-bound tasks at the worker bound. Results are
	// bit-identical to the serial engine, so Shards only changes how the
	// work is scheduled.
	Shards int
	// Admission, used only when Shards > 1, bounds how many replications are
	// mid-flight at once — i.e. how many simulators are live, each parked at
	// a window barrier when it holds no Limiter token. It must be a pool
	// distinct from Limiter (a replication may hold an admission token while
	// its shard workers wait for CPU tokens; drawing both from one pool
	// would deadlock). Callers running several replicated simulations
	// concurrently pass one shared Admission so total live simulators stay
	// bounded; when nil, a pool-private limiter of Workers tokens is used.
	Admission *Limiter

	// Precision, when > 0, enables adaptive precision-targeted replication:
	// replications are added in batches until the relative confidence
	// half-width |halfwidth/mean| of the Target measure drops to Precision
	// or below (e.g. 0.05 for a 5% relative half-width), within
	// [MinReplications, MaxReplications]. The zero value disables the
	// stopping rule and runs exactly Replications runs — bit-identical to
	// the fixed-R behaviour.
	Precision float64
	// Target is the measure the stopping rule watches; the zero value is
	// MeasureThroughput. Ignored when Precision is 0.
	Target Measure
	// MinReplications is the replication count of the first adaptive batch;
	// the zero value means 4 (two antithetic pairs). It is floored at 2:
	// the stopping rule compares cross-replication intervals, and a single
	// replication would check its within-run batch-means interval instead —
	// a different, correlated estimator. Ignored when Precision is 0.
	MinReplications int
	// MaxReplications caps the adaptive replication count; the zero value
	// means 64. Ignored when Precision is 0.
	MaxReplications int
	// VR selects a variance-reduction scheme for the merged estimators (see
	// VarianceReduction); the zero value is VRNone. It applies to fixed-R
	// and adaptive runs alike.
	VR VarianceReduction
}

func (o Options) withDefaults() Options {
	if o.Replications <= 0 {
		o.Replications = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if o.MinReplications <= 0 {
		o.MinReplications = 4
	}
	if o.MinReplications < 2 {
		// The stopping rule needs a cross-replication interval; one
		// replication would offer only its batch-means interval.
		o.MinReplications = 2
	}
	if o.MaxReplications <= 0 {
		o.MaxReplications = 64
	}
	if o.MaxReplications < o.MinReplications {
		o.MaxReplications = o.MinReplications
	}
	if o.VR == VRAntithetic {
		// Pairing needs even counts; round every bound up.
		o.Replications += o.Replications % 2
		o.MinReplications += o.MinReplications % 2
		o.MaxReplications += o.MaxReplications % 2
	}
	return o
}

// Summary is the outcome of a replicated simulation run.
type Summary struct {
	// Merged holds the cross-replication results: every interval is a
	// Student-t confidence interval over the effective samples (its Batches
	// field reports their count — R replications, or R/2 antithetic pairs),
	// and the event and packet totals are summed over all replications. With
	// a single replication Merged is that replication's result verbatim,
	// batch-means intervals included.
	Merged sim.Results
	// Replications is the number of replications merged.
	Replications int
	// BaseSeed is the seed the replication substreams were derived from.
	BaseSeed int64
	// PerReplication holds the individual replication results in replication
	// order (under VRAntithetic, pair p occupies indices 2p and 2p+1).
	PerReplication []sim.Results
	// VR is the variance-reduction mode the summary was merged under.
	VR VarianceReduction
	// Adaptive reports whether the precision-targeted stopping rule drove
	// the replication count.
	Adaptive bool
	// Converged reports whether an adaptive run met its precision target
	// before hitting MaxReplications; always false for fixed-R runs.
	Converged bool
	// Target is the measure the stopping rule watched (meaningful for
	// adaptive runs).
	Target Measure
	// RelativeHalfWidth is the realized relative confidence half-width of
	// the target measure in the merged results.
	RelativeHalfWidth float64

	// Series holds the cross-replication merge of the per-replication
	// sim-time series when the simulator configuration armed a probe
	// (sim.Config.Probe); nil otherwise.
	Series *SeriesSummary

	// control-variate state, kept for EffectiveSamples.
	controls    []float64
	controlMean float64
}

// String renders the summary as a small table headed by the replication
// count.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d replication(s), base seed %d", s.Replications, s.BaseSeed)
	if s.VR != VRNone {
		fmt.Fprintf(&b, ", variance reduction %s", s.VR)
	}
	if s.Adaptive {
		state := "hit the replication cap"
		if s.Converged {
			state = "met"
		}
		fmt.Fprintf(&b, ", adaptive target %s (%s at %.3g relative half-width)",
			s.Target, state, s.RelativeHalfWidth)
	}
	b.WriteString("\n")
	b.WriteString(s.Merged.String())
	return b.String()
}

// EffectiveSamples maps the replications to the i.i.d. samples the merged
// intervals are computed over, for an arbitrary derived observable: get is
// evaluated once per replication, and the values are reduced exactly like
// the built-in measures — passed through (VRNone), averaged over antithetic
// pairs (VRAntithetic), or regression-adjusted against the Erlang-B control
// (VRControl). Figure code uses this to put consistent error bars on derived
// quantities such as per-distance-group cell averages.
func (s Summary) EffectiveSamples(get func(sim.Results) float64) []float64 {
	raw := make([]float64, len(s.PerReplication))
	for i := range s.PerReplication {
		raw[i] = get(s.PerReplication[i])
	}
	return effectiveSamples(raw, s.VR, controlInfo{values: s.controls, mean: s.controlMean, ok: len(s.controls) > 0})
}

// Merge folds per-replication results into a Summary at the given confidence
// level, with no variance reduction. Replications are folded in slice order,
// so the result is independent of the schedule that produced them. An empty
// slice yields a zero Summary; a single result is passed through unchanged
// (batch-means intervals intact, no per-cell intervals).
func Merge(results []sim.Results, level float64) Summary {
	return mergeVR(results, level, VRNone, controlInfo{})
}

// mergeVR is the estimator behind Merge and Run: it folds per-replication
// results under the given variance-reduction treatment. Interval-valued
// measures become Student-t intervals over the effective samples, counter
// totals are summed, per-cell point estimates are averaged (mergePerCell) and
// additionally carry cross-replication intervals (perCellIntervals).
func mergeVR(results []sim.Results, level float64, vr VarianceReduction, ci controlInfo) Summary {
	s := Summary{
		Replications:   len(results),
		PerReplication: results,
		VR:             vr,
	}
	if ci.ok {
		s.controls = ci.values
		s.controlMean = ci.mean
	}
	if len(results) == 0 {
		return s
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	s.Merged = results[0]
	if len(results) == 1 {
		return s
	}
	raw := make([]float64, len(results))
	for _, def := range measureDefs {
		for i := range results {
			raw[i] = def.get(&results[i]).Mean
		}
		*def.get(&s.Merged) = SampleInterval(effectiveSamples(raw, vr, ci), level, vr)
	}
	s.Merged.PacketsOffered = 0
	s.Merged.PacketsLost = 0
	s.Merged.PacketsDelivered = 0
	s.Merged.HandoversIn = 0
	s.Merged.HandoversOut = 0
	s.Merged.TCPTimeouts = 0
	s.Merged.TCPFastRecovers = 0
	s.Merged.SimulatedSec = 0
	s.Merged.Events = 0
	for i := range results {
		r := &results[i]
		s.Merged.PacketsOffered += r.PacketsOffered
		s.Merged.PacketsLost += r.PacketsLost
		s.Merged.PacketsDelivered += r.PacketsDelivered
		s.Merged.HandoversIn += r.HandoversIn
		s.Merged.HandoversOut += r.HandoversOut
		s.Merged.TCPTimeouts += r.TCPTimeouts
		s.Merged.TCPFastRecovers += r.TCPFastRecovers
		s.Merged.SimulatedSec += r.SimulatedSec
		s.Merged.Events += r.Events
	}
	s.Merged.PerCell = mergePerCell(results)
	s.Merged.PerCellCI = perCellIntervals(results, level, vr, ci)
	return s
}

// mergePerCell folds the per-cell reports of the replications: point
// estimates (time averages, probabilities) are averaged across replications
// and counter totals are summed, mirroring the treatment of the mid-cell
// measures. Cross-replication intervals over the same measures are computed
// by perCellIntervals into Results.PerCellCI; the replication-resolved values
// stay available in PerReplication.
func mergePerCell(results []sim.Results) []sim.CellMeasures {
	n := len(results[0].PerCell)
	for _, r := range results {
		if len(r.PerCell) != n {
			return nil
		}
	}
	merged := make([]sim.CellMeasures, n)
	inv := 1 / float64(len(results))
	for i := range merged {
		m := sim.CellMeasures{Cell: results[0].PerCell[i].Cell}
		for _, r := range results {
			c := r.PerCell[i]
			m.CarriedDataTraffic += c.CarriedDataTraffic * inv
			m.MeanQueueLength += c.MeanQueueLength * inv
			m.CarriedVoiceTraffic += c.CarriedVoiceTraffic * inv
			m.AverageSessions += c.AverageSessions * inv
			m.PacketLossProbability += c.PacketLossProbability * inv
			m.QueueingDelaySec += c.QueueingDelaySec * inv
			m.ThroughputBits += c.ThroughputBits * inv
			m.GSMBlocking += c.GSMBlocking * inv
			m.GPRSBlocking += c.GPRSBlocking * inv
			m.PacketsOffered += c.PacketsOffered
			m.PacketsLost += c.PacketsLost
			m.PacketsDelivered += c.PacketsDelivered
			m.HandoversIn += c.HandoversIn
			m.HandoversOut += c.HandoversOut
			m.VoiceHandoversOut += c.VoiceHandoversOut
			m.SessionHandoversOut += c.SessionHandoversOut
			m.HandoverArrivals += c.HandoverArrivals
			m.HandoverFailures += c.HandoverFailures
			m.GuardBlockedCalls += c.GuardBlockedCalls
			m.HandoversQueued += c.HandoversQueued
			m.HandoverQueueServed += c.HandoverQueueServed
			m.HandoverQueueExpired += c.HandoverQueueExpired
			m.HandoverRetries += c.HandoverRetries
			m.HandoverTransitEnds += c.HandoverTransitEnds
		}
		merged[i] = m
	}
	return merged
}

// Run executes independent replications of the given simulator configuration
// (the configuration's own Seed field is ignored; replication i runs with
// SeedFor(BaseSeed, i), or SeedFor(BaseSeed, i/2) on paired stream kinds
// under VRAntithetic) and merges them. With Precision 0 exactly Replications
// runs execute, and the merged result is bit-identical for a given
// (BaseSeed, options) regardless of worker count and of the Shards setting
// (the sharded engine reproduces the serial engine exactly). With
// Precision > 0 the adaptive stopping rule grows the count in pool-sized
// batches (growBatch) until the target measure's relative confidence
// half-width reaches the threshold or MaxReplications is hit; the batch
// boundaries — and with them the realized count — depend on the width of
// the gating pool, so pin Workers explicitly to reproduce an adaptive run
// across machines (scheduling within a given pool width never changes any
// result).
func Run(cfg sim.Config, o Options) (Summary, error) {
	o = o.withDefaults()
	lim := o.Limiter
	if lim == nil {
		lim = NewLimiter(o.Workers)
	}

	level := o.ConfidenceLevel
	if level <= 0 || level >= 1 {
		level = cfg.ConfidenceLevel
	}

	var control controlInfo
	if o.VR == VRControl {
		var err error
		if control, err = controlForConfig(cfg); err != nil {
			return Summary{}, err
		}
	}

	// With shard-level parallelism the CPU bound moves to the leaf work —
	// one shard advancing one synchronization window acquires the shared
	// limiter's tokens — so the replication loop must not hold those same
	// tokens across window barriers (a replication holding one while its
	// shard workers wait for more would deadlock a small pool). Instead the
	// fan-out is gated by the Admission limiter: a distinct pool, so a
	// replication parked at a barrier with an admission token blocks no
	// shard worker, while the number of live simulators stays bounded even
	// across many concurrent Run calls sharing one Admission.
	outer := lim
	if o.Shards > 1 {
		if o.Admission != nil && o.Admission == lim {
			// Sharing one pool would deadlock: a replication holds its
			// admission token across window barriers while its shard
			// workers wait on the same pool for CPU tokens.
			return Summary{}, fmt.Errorf("runner: Admission must be a pool distinct from Limiter")
		}
		outer = o.Admission
		if outer == nil {
			outer = NewLimiter(o.Workers)
		}
	}

	// Per-replication series slots, allocated to the maximum replication
	// count the run can reach; nil when no probe is armed. Series travel out
	// of band next to the results so the merged numbers stay bit-identical
	// with probes on or off.
	var seriesByRep []*probe.Series
	if cfg.Probe != nil {
		slots := o.Replications
		if o.Precision > 0 {
			slots = o.MaxReplications
		}
		seriesByRep = make([]*probe.Series, slots)
	}

	var mu sync.Mutex
	done := 0
	// runBatch simulates replications [lo, len(results)) into their slots.
	// Replication i's configuration depends only on (BaseSeed, i, VR), so
	// batching — like scheduling — cannot change any result.
	runBatch := func(results []sim.Results, lo, total int) error {
		probe.Default.ReplicationsPlanned.Add(uint64(len(results) - lo))
		return ForEach(outer, len(results)-lo, func(k int) error {
			i := lo + k
			c := cfg
			if o.VR == VRAntithetic {
				c.Seed = SeedFor(o.BaseSeed, i/2)
				if i%2 == 0 {
					c.Streams = des.StreamPaired
				} else {
					c.Streams = des.StreamAntithetic
				}
			} else {
				c.Seed = SeedFor(o.BaseSeed, i)
			}
			res, series, err := sim.RunOnceSeries(c, sim.ShardedOptions{Shards: o.Shards, Limiter: lim})
			if err != nil {
				return fmt.Errorf("replication %d: %w", i, err)
			}
			results[i] = res
			if seriesByRep != nil {
				seriesByRep[i] = series
			}
			probe.Default.ReplicationsDone.Add(1)
			if o.Progress != nil {
				mu.Lock()
				done++
				o.Progress(done, total)
				mu.Unlock()
			}
			return nil
		})
	}

	finish := func(sum Summary) Summary {
		sum.BaseSeed = o.BaseSeed
		sum.Target = o.Target
		sum.RelativeHalfWidth = relHalfWidth(o.Target.Interval(sum.Merged))
		if seriesByRep != nil {
			sum.Series = MergeSeries(seriesByRep[:sum.Replications], level, o.VR)
		}
		return sum
	}

	if o.Precision <= 0 {
		results := make([]sim.Results, o.Replications)
		if err := runBatch(results, 0, o.Replications); err != nil {
			return Summary{}, err
		}
		if control.ok {
			control.observe(results)
		}
		return finish(mergeVR(results, level, o.VR, control)), nil
	}

	// Adaptive mode: grow the replication set in batches (half-again growth
	// sized to the worker pool, see growBatch) and re-check the stopping
	// rule after each. Replication i is the same run no matter which batch
	// issued it, so the boundaries determine only where the rule is
	// evaluated.
	results := make([]sim.Results, 0, o.MaxReplications)
	n := 0
	next := o.MinReplications
	var sum Summary
	for {
		results = results[:next]
		if err := runBatch(results, n, next); err != nil {
			return Summary{}, err
		}
		n = next
		if control.ok {
			control.observe(results)
		}
		sum = finish(mergeVR(results, level, o.VR, control))
		sum.Adaptive = true
		probe.Default.SetAdaptive(sum.RelativeHalfWidth, sum.RelativeHalfWidth <= o.Precision)
		if sum.RelativeHalfWidth <= o.Precision {
			sum.Converged = true
			return sum, nil
		}
		if n >= o.MaxReplications {
			return sum, nil
		}
		next = n + growBatch(n, outer.Cap(), o.VR)
		if next > o.MaxReplications {
			next = o.MaxReplications
		}
	}
}

// growBatch sizes the next adaptive batch: half-again growth (at least two
// replications), rounded up to a multiple of the width of the worker pool
// gating the replication fan-out — Workers/Limiter for serial replications,
// Admission for sharded ones. A batch that is a pool multiple keeps every
// worker busy until the batch boundary, so wide machines do not straggle on
// a sub-pool-sized growth increment; the final batch may still be partial
// when MaxReplications clamps it. Under VRAntithetic the growth is kept even
// so antithetic pairs stay whole.
func growBatch(n, pool int, vr VarianceReduction) int {
	grow := n / 2
	if grow < 2 {
		grow = 2
	}
	if pool > 1 {
		if rem := grow % pool; rem != 0 {
			grow += pool - rem
		}
	}
	if vr == VRAntithetic {
		grow += grow % 2
	}
	return grow
}
