// Package runner fans independent replications of the detailed GPRS
// simulator out across a bounded worker pool and merges the per-replication
// results into cross-replication confidence intervals.
//
// The replicate-and-aggregate methodology follows standard steady-state
// simulation practice (and the measurement studies the paper's validation
// rests on): R statistically independent runs are produced from R disjoint
// seed substreams derived from one base seed, the point estimate of every
// performance measure is averaged across the runs, and a Student-t confidence
// interval is computed over the R replication means. Unlike batch means
// within a single run, replication means are independent by construction, so
// the intervals need no warm-up-correlation caveats.
//
// # Determinism contract
//
// Results are bit-identical for a given (base seed, replication count)
// regardless of the worker count, the shard count, and the scheduling of
// replications onto workers:
//
//   - SplitMix64 substream seeding: replication i always runs with
//     SeedFor(base, i) = des.SubstreamSeed(base, i), a SplitMix64
//     finalization of the base seed. The derived seeds depend only on
//     (base, i) — never on which worker picks the replication up — and
//     consecutive indices land in well-separated regions of the generator's
//     state space instead of on nearby seeds.
//
//   - Worker-count invariance: results are collected into a slice indexed
//     by replication and the merge folds them in index order, so Workers
//     (and the Limiter sharing that bound across nested fan-outs) only
//     changes wall-clock time. ForEach reports the error of the lowest
//     failing index for the same reason.
//
//   - Engine invariance: Shards > 1 runs each replication on the sharded
//     engine, which reproduces the serial engine bit for bit (see the
//     determinism contract of internal/shard), so the engine choice is
//     also purely a scheduling decision.
//
// The package also exposes the generic concurrency primitives the experiment
// harness shares with the replication engine: Limiter, a counting semaphore
// that bounds the number of truly active tasks across nested fan-outs, and
// ForEach, an index-parallel loop with deterministic error selection.
package runner

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/des"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SeedFor derives the seed of replication i from the base seed. The
// derivation is a SplitMix64 finalization step (des.SubstreamSeed), so
// consecutive replication indices land in well-separated regions of the
// underlying generator's state space rather than on nearby seeds.
func SeedFor(base int64, i int) int64 {
	return des.SubstreamSeed(base, uint64(i))
}

// Options controls a replicated simulation run.
type Options struct {
	// Replications is the number of independent replications R; the zero
	// value means 1.
	Replications int
	// Workers bounds the number of replications simulated concurrently; the
	// zero value means runtime.NumCPU(). Ignored when Limiter is set.
	Workers int
	// BaseSeed is the seed the per-replication substreams are derived from;
	// the zero value means 1.
	BaseSeed int64
	// ConfidenceLevel is the level of the merged intervals; the zero value
	// means the simulator configuration's level (0.95 if that is unset too).
	ConfidenceLevel float64
	// Progress, when non-nil, is called after every completed replication
	// with the number of finished replications and the total. Calls are
	// serialized but may arrive in any replication order.
	Progress func(done, total int)
	// Limiter, when non-nil, is the shared semaphore replications acquire a
	// token from instead of a pool-private one. Callers running several
	// replicated simulations concurrently pass one Limiter so the global
	// number of in-flight simulator runs stays bounded.
	Limiter *Limiter
	// Shards, when > 1, runs every replication on the sharded multi-cell
	// engine (sim.NewSharded) with that many cell groups advanced in
	// parallel conservative time windows. Shard-level parallelism composes
	// with replication-level parallelism: the replication fan-out is then
	// gated by Admission (live simulators) while the shard workers of all
	// replications acquire CPU tokens from the shared Limiter, keeping the
	// number of active CPU-bound tasks at the worker bound. Results are
	// bit-identical to the serial engine, so Shards only changes how the
	// work is scheduled.
	Shards int
	// Admission, used only when Shards > 1, bounds how many replications are
	// mid-flight at once — i.e. how many simulators are live, each parked at
	// a window barrier when it holds no Limiter token. It must be a pool
	// distinct from Limiter (a replication may hold an admission token while
	// its shard workers wait for CPU tokens; drawing both from one pool
	// would deadlock). Callers running several replicated simulations
	// concurrently pass one shared Admission so total live simulators stay
	// bounded; when nil, a pool-private limiter of Workers tokens is used.
	Admission *Limiter
}

func (o Options) withDefaults() Options {
	if o.Replications <= 0 {
		o.Replications = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	return o
}

// Summary is the outcome of a replicated simulation run.
type Summary struct {
	// Merged holds the cross-replication results: every interval is a
	// Student-t confidence interval over the R replication means (its Batches
	// field reports R), and the event and packet totals are summed over all
	// replications. With a single replication Merged is that replication's
	// result verbatim, batch-means intervals included.
	Merged sim.Results
	// Replications is the number of replications merged.
	Replications int
	// BaseSeed is the seed the replication substreams were derived from.
	BaseSeed int64
	// PerReplication holds the individual replication results in replication
	// order.
	PerReplication []sim.Results
}

// String renders the summary as a small table headed by the replication
// count.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d replication(s), base seed %d\n", s.Replications, s.BaseSeed)
	b.WriteString(s.Merged.String())
	return b.String()
}

// measures enumerates the interval-valued fields of sim.Results once, so the
// merge does not hand-copy ten fields.
var measures = []func(*sim.Results) *stats.Interval{
	func(r *sim.Results) *stats.Interval { return &r.CarriedDataTraffic },
	func(r *sim.Results) *stats.Interval { return &r.PacketLossProbability },
	func(r *sim.Results) *stats.Interval { return &r.QueueingDelay },
	func(r *sim.Results) *stats.Interval { return &r.ThroughputBits },
	func(r *sim.Results) *stats.Interval { return &r.ThroughputPerUserBits },
	func(r *sim.Results) *stats.Interval { return &r.AverageSessions },
	func(r *sim.Results) *stats.Interval { return &r.CarriedVoiceTraffic },
	func(r *sim.Results) *stats.Interval { return &r.GSMBlockingProbability },
	func(r *sim.Results) *stats.Interval { return &r.GPRSBlockingProbability },
	func(r *sim.Results) *stats.Interval { return &r.MeanQueueLength },
}

// Merge folds per-replication results into a Summary at the given confidence
// level. Replications are folded in slice order, so the result is independent
// of the schedule that produced them. An empty slice yields a zero Summary;
// a single result is passed through unchanged (batch-means intervals intact).
func Merge(results []sim.Results, level float64) Summary {
	s := Summary{
		Replications:   len(results),
		PerReplication: results,
	}
	if len(results) == 0 {
		return s
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	s.Merged = results[0]
	if len(results) == 1 {
		return s
	}
	for _, get := range measures {
		xs := make([]float64, len(results))
		for i := range results {
			xs[i] = get(&results[i]).Mean
		}
		*get(&s.Merged) = stats.MeanInterval(xs, level)
	}
	s.Merged.PacketsOffered = 0
	s.Merged.PacketsLost = 0
	s.Merged.PacketsDelivered = 0
	s.Merged.HandoversIn = 0
	s.Merged.HandoversOut = 0
	s.Merged.TCPTimeouts = 0
	s.Merged.TCPFastRecovers = 0
	s.Merged.SimulatedSec = 0
	s.Merged.Events = 0
	for i := range results {
		r := &results[i]
		s.Merged.PacketsOffered += r.PacketsOffered
		s.Merged.PacketsLost += r.PacketsLost
		s.Merged.PacketsDelivered += r.PacketsDelivered
		s.Merged.HandoversIn += r.HandoversIn
		s.Merged.HandoversOut += r.HandoversOut
		s.Merged.TCPTimeouts += r.TCPTimeouts
		s.Merged.TCPFastRecovers += r.TCPFastRecovers
		s.Merged.SimulatedSec += r.SimulatedSec
		s.Merged.Events += r.Events
	}
	s.Merged.PerCell = mergePerCell(results)
	return s
}

// mergePerCell folds the per-cell reports of the replications: point
// estimates (time averages, probabilities) are averaged across replications
// and counter totals are summed, mirroring the treatment of the mid-cell
// measures. Replication-resolved values stay available in PerReplication —
// cross-replication intervals over a single cell's measure come from
// stats.MeanInterval over those.
func mergePerCell(results []sim.Results) []sim.CellMeasures {
	n := len(results[0].PerCell)
	for _, r := range results {
		if len(r.PerCell) != n {
			return nil
		}
	}
	merged := make([]sim.CellMeasures, n)
	inv := 1 / float64(len(results))
	for i := range merged {
		m := sim.CellMeasures{Cell: results[0].PerCell[i].Cell}
		for _, r := range results {
			c := r.PerCell[i]
			m.CarriedDataTraffic += c.CarriedDataTraffic * inv
			m.MeanQueueLength += c.MeanQueueLength * inv
			m.CarriedVoiceTraffic += c.CarriedVoiceTraffic * inv
			m.AverageSessions += c.AverageSessions * inv
			m.PacketLossProbability += c.PacketLossProbability * inv
			m.QueueingDelaySec += c.QueueingDelaySec * inv
			m.ThroughputBits += c.ThroughputBits * inv
			m.GSMBlocking += c.GSMBlocking * inv
			m.GPRSBlocking += c.GPRSBlocking * inv
			m.PacketsOffered += c.PacketsOffered
			m.PacketsLost += c.PacketsLost
			m.PacketsDelivered += c.PacketsDelivered
			m.HandoversIn += c.HandoversIn
			m.HandoversOut += c.HandoversOut
		}
		merged[i] = m
	}
	return merged
}

// Run executes R independent replications of the given simulator
// configuration (the configuration's own Seed field is ignored; replication i
// runs with SeedFor(BaseSeed, i)) and merges them. The merged result is
// bit-identical for a given (BaseSeed, Replications) pair regardless of
// worker count and of the Shards setting (the sharded engine reproduces the
// serial engine exactly).
func Run(cfg sim.Config, o Options) (Summary, error) {
	o = o.withDefaults()
	lim := o.Limiter
	if lim == nil {
		lim = NewLimiter(o.Workers)
	}

	level := o.ConfidenceLevel
	if level <= 0 || level >= 1 {
		level = cfg.ConfidenceLevel
	}

	// With shard-level parallelism the CPU bound moves to the leaf work —
	// one shard advancing one synchronization window acquires the shared
	// limiter's tokens — so the replication loop must not hold those same
	// tokens across window barriers (a replication holding one while its
	// shard workers wait for more would deadlock a small pool). Instead the
	// fan-out is gated by the Admission limiter: a distinct pool, so a
	// replication parked at a barrier with an admission token blocks no
	// shard worker, while the number of live simulators stays bounded even
	// across many concurrent Run calls sharing one Admission.
	outer := lim
	if o.Shards > 1 {
		if o.Admission != nil && o.Admission == lim {
			// Sharing one pool would deadlock: a replication holds its
			// admission token across window barriers while its shard
			// workers wait on the same pool for CPU tokens.
			return Summary{}, fmt.Errorf("runner: Admission must be a pool distinct from Limiter")
		}
		outer = o.Admission
		if outer == nil {
			outer = NewLimiter(o.Workers)
		}
	}

	results := make([]sim.Results, o.Replications)
	var mu sync.Mutex
	done := 0
	err := ForEach(outer, o.Replications, func(i int) error {
		c := cfg
		c.Seed = SeedFor(o.BaseSeed, i)
		res, err := sim.RunOnce(c, sim.ShardedOptions{Shards: o.Shards, Limiter: lim})
		if err != nil {
			return fmt.Errorf("replication %d: %w", i, err)
		}
		results[i] = res
		if o.Progress != nil {
			mu.Lock()
			done++
			o.Progress(done, o.Replications)
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return Summary{}, err
	}
	sum := Merge(results, level)
	sum.BaseSeed = o.BaseSeed
	return sum, nil
}
