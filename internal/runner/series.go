package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/probe"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// SeriesSummary is the cross-replication merge of per-replication sim-time
// series: for every probe window and cell, Student-t confidence intervals
// over the replication samples of the windowed measures. Produced by Run when
// the simulator configuration arms a probe (Config.Probe), or directly by
// MergeSeries.
type SeriesSummary struct {
	// IntervalSec and StartSec echo the probe geometry of the underlying
	// series (see probe.Series).
	IntervalSec, StartSec float64
	// Level is the confidence level of the intervals.
	Level float64
	// Replications is the number of per-replication series merged.
	Replications int
	// Times holds the window-end sample times in simulated seconds; probe
	// boundaries are deterministic, so every replication shares them.
	Times []float64
	// Cells holds one interval series per cell, indexed by cell id.
	Cells []CellSeriesCI
}

// CellSeriesCI is the per-cell slice of a SeriesSummary: every field is
// indexed like SeriesSummary.Times.
type CellSeriesCI struct {
	// Cell is the cell id.
	Cell int
	// QueueLen, VoiceCalls and Sessions are intervals over the instantaneous
	// occupancy gauges at each window end.
	QueueLen, VoiceCalls, Sessions []stats.Interval
	// CarriedData is the interval over the cumulative time-weighted mean PDCH
	// usage at each window end.
	CarriedData []stats.Interval
	// WindowPLP and WindowThroughputBits are intervals over the per-window
	// packet loss fraction and delivered bit rate.
	WindowPLP, WindowThroughputBits []stats.Interval
}

// seriesSample extracts one windowed observable of one cell at window k from
// a recorded series.
type seriesSample func(s *probe.Series, c *probe.CellSeries, k int) float64

// seriesDefs enumerates the merged series measures once, pairing each
// extractor with the interval slice it feeds.
var seriesDefs = []struct {
	get seriesSample
	set func(*CellSeriesCI) *[]stats.Interval
}{
	{func(_ *probe.Series, c *probe.CellSeries, k int) float64 { return float64(c.QueueLen[k]) },
		func(ci *CellSeriesCI) *[]stats.Interval { return &ci.QueueLen }},
	{func(_ *probe.Series, c *probe.CellSeries, k int) float64 { return float64(c.VoiceCalls[k]) },
		func(ci *CellSeriesCI) *[]stats.Interval { return &ci.VoiceCalls }},
	{func(_ *probe.Series, c *probe.CellSeries, k int) float64 { return float64(c.Sessions[k]) },
		func(ci *CellSeriesCI) *[]stats.Interval { return &ci.Sessions }},
	{func(_ *probe.Series, c *probe.CellSeries, k int) float64 { return c.CarriedData[k] },
		func(ci *CellSeriesCI) *[]stats.Interval { return &ci.CarriedData }},
	{windowPLP, func(ci *CellSeriesCI) *[]stats.Interval { return &ci.WindowPLP }},
	{windowThroughput, func(ci *CellSeriesCI) *[]stats.Interval { return &ci.WindowThroughputBits }},
}

// windowPLP is the per-window packet loss fraction of cell c at window k,
// derived from the cumulative counters.
func windowPLP(_ *probe.Series, c *probe.CellSeries, k int) float64 {
	offered, lost := c.PacketsOffered[k], c.PacketsLost[k]
	if k > 0 {
		offered -= c.PacketsOffered[k-1]
		lost -= c.PacketsLost[k-1]
	}
	if offered <= 0 {
		return 0
	}
	return float64(lost) / float64(offered)
}

// windowThroughput is the per-window delivered bit rate of cell c at window
// k, derived from the cumulative counters.
func windowThroughput(s *probe.Series, c *probe.CellSeries, k int) float64 {
	delivered := c.PacketsDelivered[k]
	start := s.StartSec
	if k > 0 {
		delivered -= c.PacketsDelivered[k-1]
		start = s.Times[k-1]
	}
	dt := s.Times[k] - start
	if dt <= 0 {
		return 0
	}
	return float64(delivered) * float64(traffic.PacketSizeBits) / dt
}

// MergeSeries folds per-replication series into per-window confidence
// intervals at the given level. Replication series share their window
// boundaries (probe boundaries are deterministic), so samples align by index.
// Under VRAntithetic the samples are antithetic pair means, mirroring the
// scalar merge; VRControl falls back to plain samples — the control-variate
// regression is defined against whole-run measures, not windowed ones. Nil
// entries (replications without a series) and empty input yield nil.
func MergeSeries(series []*probe.Series, level float64, vr VarianceReduction) *SeriesSummary {
	var kept []*probe.Series
	for _, s := range series {
		if s != nil {
			kept = append(kept, s)
		}
	}
	if len(kept) == 0 {
		return nil
	}
	first := kept[0]
	for _, s := range kept[1:] {
		if len(s.Times) != len(first.Times) || len(s.Cells) != len(first.Cells) {
			return nil
		}
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	if vr == VRControl {
		vr = VRNone
	}
	out := &SeriesSummary{
		IntervalSec:  first.IntervalSec,
		StartSec:     first.StartSec,
		Level:        level,
		Replications: len(kept),
		Times:        first.Times,
		Cells:        make([]CellSeriesCI, len(first.Cells)),
	}
	windows := len(first.Times)
	raw := make([]float64, len(kept))
	for cell := range out.Cells {
		ci := &out.Cells[cell]
		ci.Cell = first.Cells[cell].Cell
		for _, def := range seriesDefs {
			ivs := make([]stats.Interval, windows)
			for k := 0; k < windows; k++ {
				for i, s := range kept {
					raw[i] = def.get(s, &s.Cells[cell], k)
				}
				ivs[k] = SampleInterval(effectiveSamples(raw, vr, controlInfo{}), level, vr)
			}
			*def.set(ci) = ivs
		}
	}
	return out
}

// seriesCSVHeader is the column layout of WriteSeriesCSV: one row per
// (window, cell), each merged measure as a (mean, half-width) pair.
const seriesCSVHeader = "time_sec,cell," +
	"queue_len_mean,queue_len_hw,voice_calls_mean,voice_calls_hw," +
	"sessions_mean,sessions_hw,carried_data_mean,carried_data_hw," +
	"window_plp_mean,window_plp_hw,window_throughput_mean,window_throughput_hw"

func fmtSeriesFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteSeriesCSV renders a merged series as CSV: one row per (window, cell),
// windows outermost, every measure as mean plus confidence half-width.
func WriteSeriesCSV(w io.Writer, s *SeriesSummary) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, seriesCSVHeader)
	for k := range s.Times {
		for i := range s.Cells {
			c := &s.Cells[i]
			fmt.Fprintf(bw, "%s,%d,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s\n",
				fmtSeriesFloat(s.Times[k]), c.Cell,
				fmtSeriesFloat(c.QueueLen[k].Mean), fmtSeriesFloat(c.QueueLen[k].HalfWidth),
				fmtSeriesFloat(c.VoiceCalls[k].Mean), fmtSeriesFloat(c.VoiceCalls[k].HalfWidth),
				fmtSeriesFloat(c.Sessions[k].Mean), fmtSeriesFloat(c.Sessions[k].HalfWidth),
				fmtSeriesFloat(c.CarriedData[k].Mean), fmtSeriesFloat(c.CarriedData[k].HalfWidth),
				fmtSeriesFloat(c.WindowPLP[k].Mean), fmtSeriesFloat(c.WindowPLP[k].HalfWidth),
				fmtSeriesFloat(c.WindowThroughputBits[k].Mean), fmtSeriesFloat(c.WindowThroughputBits[k].HalfWidth))
		}
	}
	return bw.Flush()
}

// seriesJSONCell is the per-cell payload of one WriteSeriesJSONL record.
type seriesJSONCell struct {
	Cell         int     `json:"cell"`
	QueueLen     float64 `json:"queue_len_mean"`
	QueueLenHW   float64 `json:"queue_len_hw"`
	VoiceCalls   float64 `json:"voice_calls_mean"`
	VoiceCallsHW float64 `json:"voice_calls_hw"`
	Sessions     float64 `json:"sessions_mean"`
	SessionsHW   float64 `json:"sessions_hw"`
	Carried      float64 `json:"carried_data_mean"`
	CarriedHW    float64 `json:"carried_data_hw"`
	PLP          float64 `json:"window_plp_mean"`
	PLPHW        float64 `json:"window_plp_hw"`
	Throughput   float64 `json:"window_throughput_mean"`
	ThroughputHW float64 `json:"window_throughput_hw"`
}

// seriesJSONWindow is one WriteSeriesJSONL record.
type seriesJSONWindow struct {
	TimeSec      float64          `json:"time_sec"`
	Replications int              `json:"replications"`
	Level        float64          `json:"level"`
	Cells        []seriesJSONCell `json:"cells"`
}

// WriteSeriesJSONL renders a merged series as JSON Lines: one object per
// window carrying every cell's merged measures.
func WriteSeriesJSONL(w io.Writer, s *SeriesSummary) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	cells := make([]seriesJSONCell, len(s.Cells))
	for k := range s.Times {
		for i := range s.Cells {
			c := &s.Cells[i]
			cells[i] = seriesJSONCell{
				Cell:         c.Cell,
				QueueLen:     c.QueueLen[k].Mean,
				QueueLenHW:   c.QueueLen[k].HalfWidth,
				VoiceCalls:   c.VoiceCalls[k].Mean,
				VoiceCallsHW: c.VoiceCalls[k].HalfWidth,
				Sessions:     c.Sessions[k].Mean,
				SessionsHW:   c.Sessions[k].HalfWidth,
				Carried:      c.CarriedData[k].Mean,
				CarriedHW:    c.CarriedData[k].HalfWidth,
				PLP:          c.WindowPLP[k].Mean,
				PLPHW:        c.WindowPLP[k].HalfWidth,
				Throughput:   c.WindowThroughputBits[k].Mean,
				ThroughputHW: c.WindowThroughputBits[k].HalfWidth,
			}
		}
		if err := enc.Encode(seriesJSONWindow{
			TimeSec: s.Times[k], Replications: s.Replications, Level: s.Level, Cells: cells,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}
