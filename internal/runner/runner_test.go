package runner

import (
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// testConfig returns a scaled-down, short simulator configuration so one
// replication completes in well under a second.
func testConfig() sim.Config {
	cfg := sim.DefaultConfig(traffic.Model3, 0.5)
	cfg.Channels.TotalChannels = 10
	cfg.BufferSize = 30
	cfg.MaxSessions = 10
	cfg.WarmupSec = 100
	cfg.MeasurementSec = 400
	cfg.Batches = 5
	return cfg
}

func TestSeedForIsDeterministicAndWellSeparated(t *testing.T) {
	seen := make(map[int64]int)
	for i := 0; i < 1000; i++ {
		s := SeedFor(1, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("SeedFor(1, %d) collides with SeedFor(1, %d)", i, prev)
		}
		seen[s] = i
	}
	if SeedFor(1, 0) != SeedFor(1, 0) {
		t.Error("SeedFor must be deterministic")
	}
	if SeedFor(1, 0) == SeedFor(2, 0) {
		t.Error("different base seeds should derive different substreams")
	}
	// Derived seeds must not collapse onto the small integers users pick as
	// base seeds (the simulator multiplies raw seeds by 4, so nearby small
	// seeds would correlate its internal streams).
	for i := 0; i < 4; i++ {
		if s := SeedFor(1, i); s >= -16 && s <= 16 {
			t.Errorf("SeedFor(1, %d) = %d is a degenerate small seed", i, s)
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	cfg := testConfig()
	var baseline Summary
	for _, workers := range []int{1, 4, 8} {
		got, err := Run(cfg, Options{Replications: 3, Workers: workers, BaseSeed: 42})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if workers == 1 {
			baseline = got
			continue
		}
		if !reflect.DeepEqual(got, baseline) {
			t.Errorf("workers=%d produced different results than workers=1:\n%v\nvs\n%v",
				workers, got, baseline)
		}
	}
	if baseline.Replications != 3 || len(baseline.PerReplication) != 3 {
		t.Fatalf("expected 3 replications, got %+v", baseline)
	}
	if baseline.Merged.CarriedDataTraffic.Batches != 3 {
		t.Errorf("merged interval should span 3 replications, got %d",
			baseline.Merged.CarriedDataTraffic.Batches)
	}
	if baseline.String() == "" {
		t.Error("Summary should render")
	}
}

func TestRunShardedEngineMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	cfg := testConfig()
	serial, err := Run(cfg, Options{Replications: 2, BaseSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Shard-level parallelism under a shared limiter must not change the
	// merged summary: replication i still runs seed SeedFor(42, i) and the
	// sharded engine is bit-identical to the serial one.
	lim := NewLimiter(2)
	sharded, err := Run(cfg, Options{Replications: 2, BaseSeed: 42, Shards: 4, Limiter: lim})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sharded, serial) {
		t.Errorf("sharded replications differ from serial ones:\n%v\nvs\n%v", sharded, serial)
	}
}

func TestRunRejectsAliasedAdmission(t *testing.T) {
	lim := NewLimiter(1)
	_, err := Run(testConfig(), Options{
		Replications: 1, BaseSeed: 1, Shards: 2, Limiter: lim, Admission: lim,
	})
	if err == nil {
		t.Fatal("Admission aliasing Limiter must be rejected (it would deadlock)")
	}
}

func TestRunShardedWithSharedAdmission(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	cfg := testConfig()
	serial, err := Run(cfg, Options{Replications: 3, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// The narrowest possible pools: one CPU token, one live simulator, three
	// replications of two shards each. The admission pool being distinct
	// from the CPU pool is what keeps this free of deadlock; the merged
	// summary must still match the serial run bit for bit.
	lim := NewLimiter(1)
	adm := NewLimiter(1)
	sharded, err := Run(cfg, Options{
		Replications: 3, BaseSeed: 7, Shards: 2, Limiter: lim, Admission: adm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sharded, serial) {
		t.Errorf("admission-bounded sharded run differs from serial run:\n%v\nvs\n%v", sharded, serial)
	}
}

func TestRunReplicationsAreIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	got, err := Run(testConfig(), Options{Replications: 2, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, b := got.PerReplication[0], got.PerReplication[1]
	if a.PacketsOffered == b.PacketsOffered && a.Events == b.Events {
		t.Error("distinct replications should follow distinct sample paths")
	}
	wantOffered := a.PacketsOffered + b.PacketsOffered
	if got.Merged.PacketsOffered != wantOffered {
		t.Errorf("merged offered packets = %d, want sum %d", got.Merged.PacketsOffered, wantOffered)
	}
}

func TestRunSingleReplicationKeepsBatchMeans(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run skipped in -short mode")
	}
	got, err := Run(testConfig(), Options{BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got.Replications != 1 {
		t.Fatalf("default replication count should be 1, got %d", got.Replications)
	}
	if got.Merged.CarriedDataTraffic.Batches != 5 {
		t.Errorf("single replication should report its batch-means interval, got %d batches",
			got.Merged.CarriedDataTraffic.Batches)
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := testConfig()
	cfg.BufferSize = 0
	if _, err := Run(cfg, Options{Replications: 2}); err == nil {
		t.Error("invalid configuration should fail")
	}
}

func TestRunProgressCallback(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs skipped in -short mode")
	}
	cfg := testConfig()
	cfg.MeasurementSec = 100
	var mu sync.Mutex
	var dones []int
	_, err := Run(cfg, Options{
		Replications: 3,
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if total != 3 {
				t.Errorf("total = %d, want 3", total)
			}
			dones = append(dones, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != 3 || dones[len(dones)-1] != 3 {
		t.Errorf("progress calls = %v, want three calls ending at 3", dones)
	}
}

func TestMergeAgainstManualWelford(t *testing.T) {
	mk := func(cdt float64, offered int64) sim.Results {
		return sim.Results{
			CarriedDataTraffic: stats.Interval{Mean: cdt, HalfWidth: 0.5, Level: 0.95, Batches: 10},
			PacketsOffered:     offered,
			SimulatedSec:       100,
			Events:             1000,
		}
	}
	got := Merge([]sim.Results{mk(1, 10), mk(2, 20), mk(4, 30)}, 0.95)
	want := stats.MeanInterval([]float64{1, 2, 4}, 0.95)
	if math.Abs(got.Merged.CarriedDataTraffic.Mean-want.Mean) > 1e-12 ||
		math.Abs(got.Merged.CarriedDataTraffic.HalfWidth-want.HalfWidth) > 1e-12 {
		t.Errorf("merged CDT interval %+v, want %+v", got.Merged.CarriedDataTraffic, want)
	}
	if got.Merged.PacketsOffered != 60 || got.Merged.SimulatedSec != 300 || got.Merged.Events != 3000 {
		t.Errorf("totals not summed: %+v", got.Merged)
	}

	if one := Merge([]sim.Results{mk(1, 10)}, 0.95); one.Merged.CarriedDataTraffic.HalfWidth != 0.5 {
		t.Errorf("single-replication merge should pass the result through, got %+v",
			one.Merged.CarriedDataTraffic)
	}
	if zero := Merge(nil, 0.95); zero.Replications != 0 {
		t.Errorf("empty merge should be zero, got %+v", zero)
	}
}

// TestMergeCoversEveryResultsField guards the hand-maintained field lists in
// Merge: every stats.Interval field of sim.Results must appear in the
// measures accessor table, and every numeric total must be summed. Adding a
// field to sim.Results without extending Merge fails here instead of
// silently producing a wrong merged summary.
func TestMergeCoversEveryResultsField(t *testing.T) {
	var r sim.Results
	covered := make(map[uintptr]bool)
	for _, def := range measureDefs {
		covered[reflect.ValueOf(def.get(&r)).Pointer()] = true
	}

	one := sim.Results{}
	ov := reflect.ValueOf(&one).Elem()
	intervalType := reflect.TypeOf(stats.Interval{})
	rv := reflect.ValueOf(&r).Elem()
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Type().Field(i)
		if f.Type == intervalType {
			if !covered[rv.Field(i).Addr().Pointer()] {
				t.Errorf("interval field %s is missing from the measures table", f.Name)
			}
			continue
		}
		switch fv := ov.Field(i); fv.Kind() {
		case reflect.Int64:
			fv.SetInt(1)
		case reflect.Uint64:
			fv.SetUint(1)
		case reflect.Float64:
			fv.SetFloat(1)
		case reflect.Slice:
			if f.Name != "PerCell" && f.Name != "PerCellCI" {
				t.Errorf("slice field %s has no merge rule — extend Merge and this test", f.Name)
			}
			// PerCell merging is covered below and by TestMergePerCell;
			// PerCellCI by TestPerCellIntervals.
		default:
			t.Errorf("field %s has unhandled kind %v — extend Merge and this test", f.Name, fv.Kind())
		}
	}
	one.PerCell = []sim.CellMeasures{{Cell: 0, CarriedVoiceTraffic: 1, PacketsOffered: 1}}

	merged := Merge([]sim.Results{one, one}, 0.95).Merged
	mv := reflect.ValueOf(merged)
	for i := 0; i < mv.NumField(); i++ {
		f := mv.Type().Field(i)
		if f.Type == intervalType {
			continue
		}
		var got float64
		switch fv := mv.Field(i); fv.Kind() {
		case reflect.Int64:
			got = float64(fv.Int())
		case reflect.Uint64:
			got = float64(fv.Uint())
		case reflect.Float64:
			got = fv.Float()
		case reflect.Slice:
			continue // PerCell, checked below
		}
		if got != 2 {
			t.Errorf("total %s = %v after merging two replications of 1, want 2 — not summed in Merge", f.Name, got)
		}
	}
	if len(merged.PerCell) != 1 {
		t.Fatalf("merged PerCell has %d entries, want 1", len(merged.PerCell))
	}
	if pc := merged.PerCell[0]; pc.CarriedVoiceTraffic != 1 || pc.PacketsOffered != 2 {
		t.Errorf("merged PerCell = %+v: point estimates should average (1) and counters sum (2)", pc)
	}
}

// TestMergePerCell checks the per-cell merge rules across replications:
// point estimates average, counter totals sum, and mismatched cell counts
// drop the merged per-cell report instead of fabricating one.
func TestMergePerCell(t *testing.T) {
	a := sim.Results{PerCell: []sim.CellMeasures{
		{Cell: 0, CarriedDataTraffic: 1, GSMBlocking: 0.2, PacketsDelivered: 10, HandoversIn: 3},
		{Cell: 1, CarriedDataTraffic: 3, GSMBlocking: 0.4, PacketsDelivered: 30, HandoversIn: 5},
	}}
	b := sim.Results{PerCell: []sim.CellMeasures{
		{Cell: 0, CarriedDataTraffic: 2, GSMBlocking: 0.4, PacketsDelivered: 20, HandoversIn: 5},
		{Cell: 1, CarriedDataTraffic: 5, GSMBlocking: 0.2, PacketsDelivered: 50, HandoversIn: 7},
	}}
	merged := Merge([]sim.Results{a, b}, 0.95).Merged
	want := []sim.CellMeasures{
		{Cell: 0, CarriedDataTraffic: 1.5, GSMBlocking: 0.3, PacketsDelivered: 30, HandoversIn: 8},
		{Cell: 1, CarriedDataTraffic: 4, GSMBlocking: 0.3, PacketsDelivered: 80, HandoversIn: 12},
	}
	for i, w := range want {
		got := merged.PerCell[i]
		if math.Abs(got.CarriedDataTraffic-w.CarriedDataTraffic) > 1e-12 ||
			math.Abs(got.GSMBlocking-w.GSMBlocking) > 1e-12 ||
			got.PacketsDelivered != w.PacketsDelivered || got.HandoversIn != w.HandoversIn {
			t.Errorf("cell %d: merged %+v, want %+v", i, got, w)
		}
	}

	short := sim.Results{PerCell: a.PerCell[:1]}
	if got := Merge([]sim.Results{a, short}, 0.95).Merged.PerCell; got != nil {
		t.Errorf("mismatched cell counts should drop the merged per-cell report, got %+v", got)
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	lim := NewLimiter(3)
	if lim.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", lim.Cap())
	}
	var active, peak int32
	err := ForEach(lim, 64, func(i int) error {
		n := atomic.AddInt32(&active, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		atomic.AddInt32(&active, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > 3 {
		t.Errorf("observed %d concurrent tasks, limiter cap is 3", peak)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA := &indexError{5}
	errB := &indexError{2}
	err := ForEach(NewLimiter(4), 8, func(i int) error {
		switch i {
		case 5:
			return errA
		case 2:
			return errB
		}
		return nil
	})
	if err != errB {
		t.Errorf("ForEach returned %v, want the lowest-index error %v", err, errB)
	}
	if err := ForEach(nil, 4, func(int) error { return nil }); err != nil {
		t.Errorf("nil limiter should run unbounded: %v", err)
	}
	if err := ForEach(nil, 0, func(int) error { return errA }); err != nil {
		t.Errorf("empty loop should not invoke fn: %v", err)
	}
}

type indexError struct{ i int }

func (e *indexError) Error() string { return "task failed" }
