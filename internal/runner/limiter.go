package runner

import (
	"runtime"
	"sync"
)

// Limiter is a counting semaphore bounding how many tasks run concurrently.
// One Limiter can be shared across nested fan-outs (figures over points over
// replications) so the global number of in-flight CPU-bound tasks stays at
// the configured bound no matter how the work is structured. Tasks must not
// hold a token while waiting for other tasks to acquire one; outer loops of a
// nested fan-out therefore run unbounded (ForEach with a nil limiter) and
// only the leaf work acquires tokens.
type Limiter struct {
	tokens chan struct{}
}

// NewLimiter returns a limiter admitting at most n concurrent holders; n < 1
// means runtime.NumCPU().
func NewLimiter(n int) *Limiter {
	if n < 1 {
		n = runtime.NumCPU()
	}
	return &Limiter{tokens: make(chan struct{}, n)}
}

// Cap returns the maximum number of concurrent holders.
func (l *Limiter) Cap() int { return cap(l.tokens) }

// Acquire blocks until a token is available.
func (l *Limiter) Acquire() { l.tokens <- struct{}{} }

// Release returns a token acquired with Acquire.
func (l *Limiter) Release() { <-l.tokens }

// ForEach runs fn(i) for every i in [0, n), each call holding one token of
// the limiter; a nil limiter runs all calls unboundedly (used for outer
// levels of a nested fan-out, whose leaf work is bounded by a shared
// limiter). It waits for all calls to finish and returns the error of the
// lowest failing index, so the reported error does not depend on goroutine
// scheduling.
func ForEach(l *Limiter, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if l != nil {
				l.Acquire()
				defer l.Release()
			}
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
