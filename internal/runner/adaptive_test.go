package runner

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestParseMeasureAndVR(t *testing.T) {
	for _, name := range MeasureNames() {
		m, err := ParseMeasure(name)
		if err != nil {
			t.Fatalf("ParseMeasure(%q): %v", name, err)
		}
		if m.String() != name {
			t.Errorf("ParseMeasure(%q).String() = %q", name, m.String())
		}
	}
	if _, err := ParseMeasure("bogus"); err == nil {
		t.Error("ParseMeasure should reject unknown names")
	}
	if m, _ := ParseMeasure("THROUGHPUT"); m != MeasureThroughput {
		t.Error("ParseMeasure should be case-insensitive")
	}
	var r sim.Results
	r.ThroughputBits = stats.Interval{Mean: 5}
	if iv := MeasureThroughput.Interval(r); iv.Mean != 5 {
		t.Errorf("Measure.Interval accessor broken: %+v", iv)
	}

	for _, tc := range []struct {
		in   string
		want VarianceReduction
	}{{"none", VRNone}, {"", VRNone}, {"antithetic", VRAntithetic}, {"av", VRAntithetic}, {"control", VRControl}, {"cv", VRControl}} {
		got, err := ParseVR(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseVR(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseVR("bogus"); err == nil {
		t.Error("ParseVR should reject unknown names")
	}
}

func TestRelHalfWidth(t *testing.T) {
	if got := relHalfWidth(stats.Interval{Mean: 10, HalfWidth: 0.5}); got != 0.05 {
		t.Errorf("relHalfWidth = %v, want 0.05", got)
	}
	if got := relHalfWidth(stats.Interval{Mean: 0, HalfWidth: 0}); got != 0 {
		t.Errorf("zero interval should be converged, got %v", got)
	}
	if got := relHalfWidth(stats.Interval{Mean: 0, HalfWidth: 1}); !math.IsInf(got, 1) {
		t.Errorf("zero mean with spread should be +Inf, got %v", got)
	}
}

// TestSampleIntervalChargesControlDoF pins the degrees-of-freedom charge of
// the control-variate estimator: the regression slope was fit on the same
// samples, so the reported interval must use the t-quantile with n-2 degrees
// of freedom — wider than the naive n-1 interval — and collapse to +Inf when
// nothing is left after estimating slope and mean.
func TestSampleIntervalChargesControlDoF(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5, 6}
	plain := stats.MeanInterval(samples, 0.95)
	cv := SampleInterval(samples, 0.95, VRControl)
	want := plain.HalfWidth * stats.TQuantile(4, 0.05) / stats.TQuantile(5, 0.05)
	if math.Abs(cv.HalfWidth-want) > 1e-12 {
		t.Errorf("control interval half-width = %v, want %v", cv.HalfWidth, want)
	}
	if cv.HalfWidth <= plain.HalfWidth {
		t.Error("charging a degree of freedom must widen the interval")
	}
	if cv.Mean != plain.Mean {
		t.Error("the df charge must not move the point estimate")
	}
	if iv := SampleInterval([]float64{1, 2}, 0.95, VRControl); !math.IsInf(iv.HalfWidth, 1) {
		t.Errorf("two samples cannot support a control-variate interval, got %v", iv.HalfWidth)
	}
	if iv := SampleInterval(samples, 0.95, VRAntithetic); iv != plain {
		t.Errorf("non-control modes must not be charged: %+v vs %+v", iv, plain)
	}
	if iv := SampleInterval([]float64{3, 3, 3, 3}, 0.95, VRControl); iv.HalfWidth != 0 {
		t.Errorf("degenerate zero-width interval should stay zero, got %v", iv.HalfWidth)
	}
}

// TestAdaptiveFloorsFirstBatchAtTwo pins that the stopping rule never
// evaluates a single run's batch-means interval: an explicit MinReplications
// of 1 is floored at 2, so the merged summary always carries
// cross-replication intervals (per-cell ones included).
func TestAdaptiveFloorsFirstBatchAtTwo(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	sum, err := Run(testConfig(), Options{
		Precision: 1e9, MinReplications: 1, MaxReplications: 1, BaseSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Replications != 2 {
		t.Fatalf("adaptive first batch = %d replications, want the floor of 2", sum.Replications)
	}
	if sum.Merged.PerCellCI == nil {
		t.Error("floored adaptive run should carry per-cell intervals")
	}
	if sum.Merged.CarriedVoiceTraffic.Batches != 2 {
		t.Errorf("merged interval should span 2 replications, got %d", sum.Merged.CarriedVoiceTraffic.Batches)
	}
}

// TestAdaptiveDisabledThresholdMatchesFixedR pins the equivalence the
// adaptive engine is built around: with the stopping rule effectively
// disabled — the replication bounds clamped to the fixed count, or an
// unreachable threshold that drives the loop to its cap — the merged numbers
// reproduce the fixed-R run bit for bit, because replication i is the same
// seeded run no matter which batch issued it.
func TestAdaptiveDisabledThresholdMatchesFixedR(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	cfg := testConfig()
	fixed, err := Run(cfg, Options{Replications: 6, BaseSeed: 42})
	if err != nil {
		t.Fatal(err)
	}

	// Bounds clamped to R: one batch of six, then the cap ends the loop.
	clamped, err := Run(cfg, Options{
		Precision: 1e-12, MinReplications: 6, MaxReplications: 6, BaseSeed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !clamped.Adaptive || clamped.Converged {
		t.Errorf("clamped run should be adaptive and uncconverged: %+v", clamped)
	}
	if !reflect.DeepEqual(clamped.Merged, fixed.Merged) {
		t.Errorf("clamped adaptive merge differs from fixed-R:\n%v\nvs\n%v", clamped.Merged, fixed.Merged)
	}
	if !reflect.DeepEqual(clamped.PerReplication, fixed.PerReplication) {
		t.Error("clamped adaptive replications differ from fixed-R replications")
	}

	// Unreachable threshold with batching: the loop grows 4 -> 6 and stops
	// at the cap; the growth schedule must not change any number.
	batched, err := Run(cfg, Options{
		Precision: 1e-12, MinReplications: 4, MaxReplications: 6, BaseSeed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batched.Merged, fixed.Merged) {
		t.Errorf("batched adaptive merge differs from fixed-R:\n%v\nvs\n%v", batched.Merged, fixed.Merged)
	}
}

// TestAdaptiveStopsEarlierAtFivePercent pins the CPU-saving claim: at a 5%
// relative half-width target on the GPRS throughput, the pinned test
// workload converges with fewer replications than the fixed-R baseline.
func TestAdaptiveStopsEarlierAtFivePercent(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	const fixedR = 16
	// Workers 1 pins the plain half-again growth schedule: the pool-sized
	// batch quantization (see growBatch) would otherwise move the stopping
	// boundaries with the machine's core count.
	sum, err := Run(testConfig(), Options{
		Precision: 0.05, Target: MeasureThroughput, Workers: 1,
		MinReplications: 4, MaxReplications: fixedR, BaseSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Converged {
		t.Fatalf("adaptive run did not converge within %d replications (rel hw %v)", fixedR, sum.RelativeHalfWidth)
	}
	if sum.Replications >= fixedR {
		t.Errorf("adaptive run used %d replications, fixed baseline is %d", sum.Replications, fixedR)
	}
	if sum.RelativeHalfWidth > 0.05 {
		t.Errorf("converged above the target: rel hw %v", sum.RelativeHalfWidth)
	}
	if sum.Target != MeasureThroughput {
		t.Errorf("summary target = %v", sum.Target)
	}
}

// TestGrowBatchQuantization pins the adaptive growth schedule: half-again
// growth with a floor of two, rounded up to a multiple of the gating pool
// width, kept even under antithetic pairing.
func TestGrowBatchQuantization(t *testing.T) {
	for _, tc := range []struct {
		n, pool int
		vr      VarianceReduction
		want    int
	}{
		{2, 1, VRNone, 2},        // floor
		{4, 1, VRNone, 2},        // half-again, pool 1 = legacy schedule
		{10, 1, VRNone, 5},       // half-again
		{4, 8, VRNone, 8},        // floor rounded up to the pool
		{10, 8, VRNone, 8},       // 5 rounded up to one pool
		{20, 8, VRNone, 16},      // 10 rounded up to two pools
		{9, 3, VRNone, 6},        // 4 rounded up to 6
		{4, 3, VRAntithetic, 4},  // 2 -> pool 3 -> even 4
		{10, 8, VRAntithetic, 8}, // already even
	} {
		if got := growBatch(tc.n, tc.pool, tc.vr); got != tc.want {
			t.Errorf("growBatch(%d, %d, %v) = %d, want %d", tc.n, tc.pool, tc.vr, got, tc.want)
		}
	}
}

// TestAdaptivePoolSizedBatchesKeepStopPoint runs the same unconverging
// adaptive workload under two pool widths: the batch boundaries differ (the
// narrow pool follows the legacy half-again schedule, the wide pool jumps in
// pool-sized strides — observed through the Progress totals), but both land
// on MaxReplications, so the stop point is unchanged and the merged results
// are bit-identical to each other and to the fixed-R run.
func TestAdaptivePoolSizedBatchesKeepStopPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	cfg := testConfig()
	boundaries := func(workers int) (Summary, []int) {
		var mu sync.Mutex
		var totals []int
		sum, err := Run(cfg, Options{
			Precision: 1e-12, MinReplications: 2, MaxReplications: 12,
			Workers: workers, BaseSeed: 7,
			Progress: func(done, total int) {
				mu.Lock()
				if n := len(totals); n == 0 || totals[n-1] != total {
					totals = append(totals, total)
				}
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum, totals
	}

	narrow, narrowTotals := boundaries(1)
	wide, wideTotals := boundaries(5)
	if want := []int{2, 4, 6, 9, 12}; !reflect.DeepEqual(narrowTotals, want) {
		t.Errorf("pool width 1 batch boundaries = %v, want the legacy schedule %v", narrowTotals, want)
	}
	if want := []int{2, 7, 12}; !reflect.DeepEqual(wideTotals, want) {
		t.Errorf("pool width 5 batch boundaries = %v, want pool-sized strides %v", wideTotals, want)
	}
	if narrow.Replications != 12 || wide.Replications != 12 {
		t.Fatalf("both runs should hit the cap: %d vs %d", narrow.Replications, wide.Replications)
	}
	if !reflect.DeepEqual(narrow.Merged, wide.Merged) {
		t.Error("same stop point, different pool widths: merged results must be bit-identical")
	}
	fixed, err := Run(cfg, Options{Replications: 12, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(narrow.Merged, fixed.Merged) {
		t.Error("capped adaptive run differs from the fixed-R run")
	}
}

// TestAntitheticReducesVariance pins the antithetic estimator on a fixed
// workload: at equal simulated cost (8 replications = 4 antithetic pairs),
// the variance of the mean over pair means must undercut the variance of the
// mean over 8 independent replications for the smooth occupancy measures.
func TestAntitheticReducesVariance(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	cfg := testConfig()
	const reps = 8
	plain, err := Run(cfg, Options{Replications: reps, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	anti, err := Run(cfg, Options{Replications: reps, BaseSeed: 1, VR: VRAntithetic})
	if err != nil {
		t.Fatal(err)
	}
	if anti.Replications != reps || anti.VR != VRAntithetic {
		t.Fatalf("antithetic run: %d replications, VR %v", anti.Replications, anti.VR)
	}
	if anti.Merged.CarriedVoiceTraffic.Batches != reps/2 {
		t.Errorf("antithetic intervals should span %d pairs, got %d", reps/2, anti.Merged.CarriedVoiceTraffic.Batches)
	}

	vom := func(s Summary, get func(sim.Results) float64) float64 {
		samples := s.EffectiveSamples(get)
		var w stats.Welford
		for _, x := range samples {
			w.Add(x)
		}
		return w.Variance() / float64(len(samples))
	}
	reduced := 0
	for _, get := range []func(sim.Results) float64{
		func(r sim.Results) float64 { return r.CarriedVoiceTraffic.Mean },
		func(r sim.Results) float64 { return r.AverageSessions.Mean },
		func(r sim.Results) float64 { return r.ThroughputBits.Mean },
	} {
		if vom(anti, get) < vom(plain, get) {
			reduced++
		}
	}
	if reduced < 2 {
		t.Errorf("antithetic pairing reduced the variance of only %d/3 occupancy measures", reduced)
	}
}

// TestControlVariateReducesVariance pins the in-sample guarantee of the
// regression-adjusted estimator: the adjusted samples can never have a larger
// sample variance than the raw ones, and for measures correlated with the
// GSM blocking control the reduction is strict.
func TestControlVariateReducesVariance(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	cfg := testConfig()
	const reps = 6
	plain, err := Run(cfg, Options{Replications: reps, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cv, err := Run(cfg, Options{Replications: reps, BaseSeed: 1, VR: VRControl})
	if err != nil {
		t.Fatal(err)
	}
	sampleVar := func(samples []float64) float64 {
		var w stats.Welford
		for _, x := range samples {
			w.Add(x)
		}
		return w.Variance()
	}
	for m := Measure(0); m < numMeasures; m++ {
		get := func(r sim.Results) float64 { return m.Interval(r).Mean }
		raw := sampleVar(plain.EffectiveSamples(get))
		adj := sampleVar(cv.EffectiveSamples(get))
		if adj > raw*(1+1e-9) {
			t.Errorf("%s: control variate inflated the sample variance: %v > %v", m, adj, raw)
		}
	}
	// The control is the GSM blocking itself: its adjusted variance must
	// collapse essentially to zero, and the correlated voice occupancy must
	// strictly improve.
	blockRaw := sampleVar(plain.EffectiveSamples(func(r sim.Results) float64 { return r.GSMBlockingProbability.Mean }))
	blockAdj := sampleVar(cv.EffectiveSamples(func(r sim.Results) float64 { return r.GSMBlockingProbability.Mean }))
	if blockAdj > blockRaw*1e-6 {
		t.Errorf("control's own variance should collapse: %v vs raw %v", blockAdj, blockRaw)
	}
	cvtRaw := sampleVar(plain.EffectiveSamples(func(r sim.Results) float64 { return r.CarriedVoiceTraffic.Mean }))
	cvtAdj := sampleVar(cv.EffectiveSamples(func(r sim.Results) float64 { return r.CarriedVoiceTraffic.Mean }))
	if cvtAdj >= cvtRaw {
		t.Errorf("carried voice traffic should strictly improve under the control: %v vs %v", cvtAdj, cvtRaw)
	}
}

func TestControlVariateRejectsScenarioProfile(t *testing.T) {
	cfg := testConfig()
	cfg.Rates = constRates{voice: 0.1, data: 0.01}
	if _, err := Run(cfg, Options{Replications: 2, VR: VRControl}); err == nil {
		t.Error("control variates with a rate profile installed should be rejected")
	}
}

// constRates is a minimal RateProfile for the rejection test.
type constRates struct{ voice, data float64 }

func (c constRates) Rates(int, float64) (float64, float64) { return c.voice, c.data }
func (c constRates) NextChange(float64) float64            { return math.Inf(1) }

// TestPerCellIntervalsSynthetic checks the per-cell interval merge against
// hand-computed Student-t intervals, and the degenerate single-replication
// pass-through (no intervals can exist over one sample).
func TestPerCellIntervalsSynthetic(t *testing.T) {
	mk := func(cvt, cdt float64) sim.Results {
		return sim.Results{PerCell: []sim.CellMeasures{
			{Cell: 0, CarriedVoiceTraffic: cvt, CarriedDataTraffic: cdt},
			{Cell: 1, CarriedVoiceTraffic: cvt * 2, CarriedDataTraffic: cdt * 3},
		}}
	}
	merged := Merge([]sim.Results{mk(1, 0.5), mk(2, 0.7), mk(4, 0.6)}, 0.95).Merged
	if len(merged.PerCellCI) != 2 {
		t.Fatalf("PerCellCI has %d cells, want 2", len(merged.PerCellCI))
	}
	want := stats.MeanInterval([]float64{1, 2, 4}, 0.95)
	got := merged.PerCellCI[0].CarriedVoiceTraffic
	if got != want {
		t.Errorf("cell 0 CVT interval = %+v, want %+v", got, want)
	}
	want = stats.MeanInterval([]float64{1.5, 2.1, 1.8}, 0.95)
	got = merged.PerCellCI[1].CarriedDataTraffic
	if math.Abs(got.Mean-want.Mean) > 1e-12 || math.Abs(got.HalfWidth-want.HalfWidth) > 1e-12 {
		t.Errorf("cell 1 CDT interval = %+v, want %+v", got, want)
	}
	if merged.PerCellCI[1].Cell != 1 {
		t.Errorf("cell id not carried: %+v", merged.PerCellCI[1])
	}

	single := Merge([]sim.Results{mk(1, 0.5)}, 0.95).Merged
	if single.PerCellCI != nil {
		t.Errorf("single-replication merge must not fabricate per-cell intervals: %+v", single.PerCellCI)
	}

	short := sim.Results{PerCell: mk(1, 1).PerCell[:1]}
	if got := Merge([]sim.Results{mk(1, 1), short}, 0.95).Merged.PerCellCI; got != nil {
		t.Errorf("mismatched cell counts should drop the per-cell intervals, got %+v", got)
	}
}

// TestPerCellIntervalsAgreeWithAggregate runs a real uniform workload and
// checks that the mid cell's per-cell interval coincides with the aggregate
// cross-replication interval of the same measure. The two are computed from
// the same underlying sample path through different estimators — the
// aggregate averages the mid cell's equal-length batch means, the per-cell
// report reads the whole-window time average off the gauge — which are
// mathematically identical but associate their floating-point sums
// differently, so the comparison is bit-exact on the interval metadata and
// tolerance-based (1e-9 relative) on the means and half-widths.
func TestPerCellIntervalsAgreeWithAggregate(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	sum, err := Run(testConfig(), Options{Replications: 3, BaseSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Merged.PerCellCI == nil {
		t.Fatal("merged replicated run should carry per-cell intervals")
	}
	mid := sum.Merged.PerCellCI[cluster.MidCell]
	for _, tc := range []struct {
		name      string
		perCell   stats.Interval
		aggregate stats.Interval
	}{
		{"CVT", mid.CarriedVoiceTraffic, sum.Merged.CarriedVoiceTraffic},
		{"CDT", mid.CarriedDataTraffic, sum.Merged.CarriedDataTraffic},
		{"AGS", mid.AverageSessions, sum.Merged.AverageSessions},
		{"queue", mid.MeanQueueLength, sum.Merged.MeanQueueLength},
	} {
		if tc.perCell.Level != tc.aggregate.Level || tc.perCell.Batches != tc.aggregate.Batches {
			t.Errorf("%s: mid-cell interval metadata %+v differs from aggregate %+v", tc.name, tc.perCell, tc.aggregate)
		}
		if !closeRel(tc.perCell.Mean, tc.aggregate.Mean, 1e-9) ||
			!closeRel(tc.perCell.HalfWidth, tc.aggregate.HalfWidth, 1e-9) {
			t.Errorf("%s: mid-cell interval %+v differs from aggregate %+v", tc.name, tc.perCell, tc.aggregate)
		}
	}
	// Non-mid cells must carry finite intervals too.
	other := (cluster.MidCell + 1) % len(sum.Merged.PerCellCI)
	if iv := sum.Merged.PerCellCI[other].CarriedVoiceTraffic; math.IsInf(iv.HalfWidth, 1) || iv.Mean == 0 {
		t.Errorf("cell %d interval looks degenerate: %+v", other, iv)
	}
}

// closeRel reports whether a and b agree to within rel relative error
// (absolute error for values near zero).
func closeRel(a, b, rel float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= rel*scale
}
