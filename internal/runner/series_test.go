package runner

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/probe"
)

// syntheticSeries builds a one-cell, two-window series whose queue gauge is
// the given pair of values.
func syntheticSeries(q0, q1 int) *probe.Series {
	s := probe.NewSeries(1, 10, 100, 4)
	s.Times = append(s.Times, 110, 120)
	c := &s.Cells[0]
	c.PacketsOffered = append(c.PacketsOffered, 4, 10)
	c.PacketsLost = append(c.PacketsLost, 0, 3)
	c.PacketsDelivered = append(c.PacketsDelivered, 2, 6)
	c.DelaySumSec = append(c.DelaySumSec, 0.5, 1.25)
	c.GSMArrivals = append(c.GSMArrivals, 1, 2)
	c.GSMBlocked = append(c.GSMBlocked, 0, 1)
	c.GPRSArrivals = append(c.GPRSArrivals, 1, 1)
	c.GPRSBlocked = append(c.GPRSBlocked, 0, 0)
	c.HandoversIn = append(c.HandoversIn, 0, 2)
	c.HandoversOut = append(c.HandoversOut, 1, 1)
	c.HandoverArrivals = append(c.HandoverArrivals, 0, 2)
	c.HandoverFailures = append(c.HandoverFailures, 0, 0)
	c.QueueLen = append(c.QueueLen, q0, q1)
	c.VoiceCalls = append(c.VoiceCalls, 5, 4)
	c.Sessions = append(c.Sessions, 1, 2)
	c.CarriedData = append(c.CarriedData, 0.5, 0.625)
	c.MeanQueueLen = append(c.MeanQueueLen, 2.5, 2.25)
	c.CarriedVoice = append(c.CarriedVoice, 5.5, 5.125)
	c.AvgSessions = append(c.AvgSessions, 1, 1.5)
	return s
}

func TestMergeSeriesIntervals(t *testing.T) {
	// Three replications with queue gauges 2, 4, 6 in the first window: the
	// merged mean is 4 and the half-width is positive; identical second
	// windows collapse to a zero half-width.
	series := []*probe.Series{syntheticSeries(2, 3), syntheticSeries(4, 3), syntheticSeries(6, 3)}
	sum := MergeSeries(series, 0.95, VRNone)
	if sum == nil {
		t.Fatal("merge of aligned series returned nil")
	}
	if sum.Replications != 3 || sum.Level != 0.95 || len(sum.Times) != 2 || len(sum.Cells) != 1 {
		t.Fatalf("summary geometry wrong: %+v", sum)
	}
	q := sum.Cells[0].QueueLen
	if q[0].Mean != 4 || q[0].HalfWidth <= 0 {
		t.Errorf("first window queue interval %+v, want mean 4 with positive half-width", q[0])
	}
	if q[1].Mean != 3 || q[1].HalfWidth != 0 {
		t.Errorf("identical samples should collapse: %+v", q[1])
	}
	// Window derivations ride along: PLP of window 2 is 3/6 in every
	// replication, throughput 4 packets over 10 s.
	if p := sum.Cells[0].WindowPLP[1]; p.Mean != 0.5 || p.HalfWidth != 0 {
		t.Errorf("window PLP interval %+v, want exact 0.5", p)
	}

	// Nil replications are skipped, not counted.
	withNil := []*probe.Series{nil, syntheticSeries(2, 3), syntheticSeries(6, 3), nil}
	if got := MergeSeries(withNil, 0.95, VRNone); got == nil || got.Replications != 2 {
		t.Fatalf("nil-tolerant merge wrong: %+v", got)
	}
	// All-nil and empty inputs yield no summary.
	if MergeSeries(nil, 0.95, VRNone) != nil || MergeSeries([]*probe.Series{nil}, 0.95, VRNone) != nil {
		t.Error("empty merges must return nil")
	}
	// Misaligned window counts refuse to merge rather than mix windows.
	short := probe.NewSeries(1, 10, 100, 4)
	short.Times = append(short.Times, 110)
	if MergeSeries([]*probe.Series{syntheticSeries(1, 2), short}, 0.95, VRNone) != nil {
		t.Error("misaligned series must not merge")
	}
}

func TestMergeSeriesVarianceReduction(t *testing.T) {
	// Antithetic pairs (1,7) and (3,5): pair means are 4 and 4, so the
	// interval collapses to an exact 4 with two effective samples.
	series := []*probe.Series{
		syntheticSeries(1, 1), syntheticSeries(7, 1),
		syntheticSeries(3, 1), syntheticSeries(5, 1),
	}
	sum := MergeSeries(series, 0.95, VRAntithetic)
	if sum == nil {
		t.Fatal("antithetic merge returned nil")
	}
	if q := sum.Cells[0].QueueLen[0]; q.Mean != 4 || q.HalfWidth != 0 {
		t.Errorf("antithetic pair means should collapse to 4 exactly: %+v", q)
	}
	// The control-variate scheme is whole-run only: series merges fall back
	// to the plain estimator, bit-identically.
	plain := MergeSeries(series, 0.95, VRNone)
	ctrl := MergeSeries(series, 0.95, VRControl)
	if !reflect.DeepEqual(plain, ctrl) {
		t.Error("VRControl series merge must equal the VRNone merge")
	}
}

func TestRunMergesSeriesAcrossReplications(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation runs skipped in -short mode")
	}
	cfg := testConfig()
	cfg.Probe = &probe.Spec{IntervalSec: 50}
	var baseline *SeriesSummary
	for _, workers := range []int{1, 4} {
		sum, err := Run(cfg, Options{Replications: 3, Workers: workers, BaseSeed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if sum.Series == nil {
			t.Fatal("probe armed but Summary.Series is nil")
		}
		s := sum.Series
		if s.Replications != 3 || s.IntervalSec != 50 {
			t.Fatalf("series summary geometry wrong: reps %d interval %v", s.Replications, s.IntervalSec)
		}
		wantWindows := int(math.Ceil(cfg.MeasurementSec / 50))
		if len(s.Times) != wantWindows {
			t.Fatalf("%d windows merged, want %d", len(s.Times), wantWindows)
		}
		if last := s.Times[len(s.Times)-1]; last != cfg.WarmupSec+cfg.MeasurementSec {
			t.Fatalf("last window at %v, want measurement end %v", last, cfg.WarmupSec+cfg.MeasurementSec)
		}
		if len(s.Cells) != 7 {
			t.Fatalf("%d cell series, want 7", len(s.Cells))
		}
		if baseline == nil {
			baseline = s
		} else if !reflect.DeepEqual(baseline, s) {
			t.Error("merged series must be bit-identical across worker counts")
		}
	}
	// Without a probe the summary carries no series.
	plain, err := Run(testConfig(), Options{Replications: 2, BaseSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Series != nil {
		t.Error("unprobed run grew a series")
	}
}

func TestWriteSeriesExports(t *testing.T) {
	sum := MergeSeries([]*probe.Series{syntheticSeries(2, 3), syntheticSeries(6, 3)}, 0.95, VRNone)
	if sum == nil {
		t.Fatal("merge returned nil")
	}
	var csvBuf bytes.Buffer
	if err := WriteSeriesCSV(&csvBuf, sum); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 || lines[0] != seriesCSVHeader {
		t.Fatalf("CSV shape wrong: %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "110,0,4,") {
		t.Errorf("first row should carry the merged queue mean 4: %q", lines[1])
	}

	var jsonBuf bytes.Buffer
	if err := WriteSeriesJSONL(&jsonBuf, sum); err != nil {
		t.Fatal(err)
	}
	var rec seriesJSONWindow
	if err := json.Unmarshal([]byte(strings.SplitN(jsonBuf.String(), "\n", 2)[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.TimeSec != 110 || rec.Replications != 2 || rec.Level != 0.95 || len(rec.Cells) != 1 {
		t.Fatalf("JSONL record wrong: %+v", rec)
	}
	if rec.Cells[0].QueueLen != 4 {
		t.Errorf("JSONL queue mean %v, want 4", rec.Cells[0].QueueLen)
	}
}
