package runner

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/erlang"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Measure identifies one interval-valued performance measure of sim.Results.
// The adaptive stopping rule watches one measure (Options.Target); the zero
// value is MeasureThroughput, the GPRS throughput the paper's dimensioning
// questions revolve around.
type Measure int

// The measures, in the order of the sim.Results fields.
const (
	// MeasureThroughput is the delivered data rate in bit/s (the default
	// stopping target).
	MeasureThroughput Measure = iota
	// MeasureCDT is the carried data traffic in PDCHs.
	MeasureCDT
	// MeasurePLP is the packet loss probability.
	MeasurePLP
	// MeasureQD is the queueing delay in seconds.
	MeasureQD
	// MeasureATU is the throughput per user in bit/s.
	MeasureATU
	// MeasureAGS is the average number of active GPRS sessions.
	MeasureAGS
	// MeasureCVT is the carried voice traffic in channels.
	MeasureCVT
	// MeasureGSMBlocking is the fresh GSM call blocking probability.
	MeasureGSMBlocking
	// MeasureGPRSBlocking is the fresh GPRS session blocking probability.
	MeasureGPRSBlocking
	// MeasureQueueLength is the time-average BSC buffer occupancy.
	MeasureQueueLength

	numMeasures // number of measures; keep last
)

// measureDef couples a measure's CLI name with the accessor of its
// sim.Results field, so the merge, the stopping rule, and flag parsing all
// share one table.
type measureDef struct {
	name string
	get  func(*sim.Results) *stats.Interval
}

// measureDefs enumerates the interval-valued fields of sim.Results once,
// indexed by Measure, so the merge does not hand-copy ten fields.
var measureDefs = [numMeasures]measureDef{
	MeasureThroughput:   {"throughput", func(r *sim.Results) *stats.Interval { return &r.ThroughputBits }},
	MeasureCDT:          {"cdt", func(r *sim.Results) *stats.Interval { return &r.CarriedDataTraffic }},
	MeasurePLP:          {"plp", func(r *sim.Results) *stats.Interval { return &r.PacketLossProbability }},
	MeasureQD:           {"qd", func(r *sim.Results) *stats.Interval { return &r.QueueingDelay }},
	MeasureATU:          {"atu", func(r *sim.Results) *stats.Interval { return &r.ThroughputPerUserBits }},
	MeasureAGS:          {"ags", func(r *sim.Results) *stats.Interval { return &r.AverageSessions }},
	MeasureCVT:          {"cvt", func(r *sim.Results) *stats.Interval { return &r.CarriedVoiceTraffic }},
	MeasureGSMBlocking:  {"gsm-blocking", func(r *sim.Results) *stats.Interval { return &r.GSMBlockingProbability }},
	MeasureGPRSBlocking: {"gprs-blocking", func(r *sim.Results) *stats.Interval { return &r.GPRSBlockingProbability }},
	MeasureQueueLength:  {"queue", func(r *sim.Results) *stats.Interval { return &r.MeanQueueLength }},
}

// Valid reports whether m names a known measure.
func (m Measure) Valid() bool { return m >= 0 && m < numMeasures }

// String returns the measure's flag name (e.g. "throughput", "plp").
func (m Measure) String() string {
	if !m.Valid() {
		return fmt.Sprintf("measure(%d)", int(m))
	}
	return measureDefs[m].name
}

// Interval returns the measure's interval from a results value.
func (m Measure) Interval(r sim.Results) stats.Interval {
	if !m.Valid() {
		return stats.Interval{}
	}
	return *measureDefs[m].get(&r)
}

// MeasureNames lists the flag names of every measure, in table order.
func MeasureNames() []string {
	names := make([]string, numMeasures)
	for m := Measure(0); m < numMeasures; m++ {
		names[m] = m.String()
	}
	return names
}

// ParseMeasure resolves a flag name (case-insensitive) to its Measure.
func ParseMeasure(s string) (Measure, error) {
	want := strings.ToLower(strings.TrimSpace(s))
	for m := Measure(0); m < numMeasures; m++ {
		if measureDefs[m].name == want {
			return m, nil
		}
	}
	return 0, fmt.Errorf("runner: unknown measure %q (known: %s)", s, strings.Join(MeasureNames(), ", "))
}

// VarianceReduction selects how per-replication observations are turned into
// the i.i.d. samples the merged confidence intervals are computed over.
type VarianceReduction int

const (
	// VRNone treats every replication as one independent sample (the
	// classic replicate-and-aggregate estimator).
	VRNone VarianceReduction = iota
	// VRAntithetic runs replications as antithetic pairs: pair p consists
	// of two runs seeded SeedFor(base, p) whose variate streams consume
	// complementary uniforms (des.StreamPaired / des.StreamAntithetic), and
	// the pair mean is one sample. Negatively correlated pairs shrink the
	// sample variance at equal simulated time.
	VRAntithetic
	// VRControl adjusts every replication's measures with a control
	// variate: the replication's observed fresh GSM blocking probability,
	// whose expectation the analytic Erlang-B model with balanced handover
	// flow (internal/erlang, Eqs. 1-5 of the paper) supplies in closed
	// form. The regression-adjusted samples x_i - b*(c_i - E[c]) have
	// in-sample variance (1-rho^2) times the raw variance, where rho is
	// the empirical correlation between the measure and the control. The
	// control mean is a model quantity, so the estimator inherits the
	// model's (validated, small) bias; it requires the paper's uniform
	// constant load — a configured scenario profile is rejected. Reported
	// intervals charge the estimated coefficient one degree of freedom
	// (see SampleInterval), so small-sample half-widths stay honest.
	VRControl
)

// String returns the mode's flag name ("none", "antithetic", "control").
func (v VarianceReduction) String() string {
	switch v {
	case VRNone:
		return "none"
	case VRAntithetic:
		return "antithetic"
	case VRControl:
		return "control"
	default:
		return fmt.Sprintf("vr(%d)", int(v))
	}
}

// ParseVR resolves a flag name (case-insensitive) to its VarianceReduction.
func ParseVR(s string) (VarianceReduction, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none":
		return VRNone, nil
	case "antithetic", "av":
		return VRAntithetic, nil
	case "control", "cv":
		return VRControl, nil
	default:
		return 0, fmt.Errorf("runner: unknown variance-reduction mode %q (known: none, antithetic, control)", s)
	}
}

// controlInfo carries the control-variate state of one merge: the analytic
// expectation of the control and its per-replication observations.
type controlInfo struct {
	// values[i] is replication i's observed control (fresh GSM blocking).
	values []float64
	// mean is the control's analytic expectation (Erlang-B with balanced
	// handover flow).
	mean float64
	// ok marks the info as usable; a zero controlInfo disables adjustment.
	ok bool
}

// controlForConfig computes the control-variate expectation for a simulator
// configuration: the Erlang-B blocking probability of the GSM voice service
// with handover flows balanced by the fixed-point iteration of Eqs. (4)-(5),
// exactly as the analytical model of internal/core sets up its marginal voice
// system. It rejects configurations with a scenario rate profile installed —
// the closed form knows only the uniform constant load.
func controlForConfig(cfg sim.Config) (controlInfo, error) {
	if cfg.Rates != nil {
		return controlInfo{}, fmt.Errorf("runner: control variates require the uniform baseline load, not a scenario rate profile")
	}
	if cfg.Mobility != nil {
		return controlInfo{}, fmt.Errorf("runner: control variates require the paper's symmetric dwell times, not a mobility profile")
	}
	voice, _ := cfg.BaseRates()
	hb, err := erlang.BalanceHandover(voice, 1/cfg.GSMCallDurationSec, 1/cfg.GSMDwellTimeSec,
		cfg.Channels.GSMChannels(), 0, 0)
	if err != nil {
		return controlInfo{}, fmt.Errorf("runner: control variate: %w", err)
	}
	b, err := hb.System.BlockingProbability()
	if err != nil {
		return controlInfo{}, fmt.Errorf("runner: control variate: %w", err)
	}
	return controlInfo{mean: b, ok: true}, nil
}

// observe extracts the per-replication control observations (the fresh GSM
// blocking probability of each run) into the control info.
func (ci *controlInfo) observe(results []sim.Results) {
	ci.values = make([]float64, len(results))
	for i := range results {
		ci.values[i] = results[i].GSMBlockingProbability.Mean
	}
}

// effectiveSamples maps raw per-replication observations of one measure to
// the i.i.d. samples its interval is computed over: the observations
// themselves (VRNone), antithetic pair means (VRAntithetic), or
// control-variate-adjusted observations (VRControl). Inputs that do not fit
// the mode (odd counts, missing control info) fall back to the raw samples.
func effectiveSamples(raw []float64, vr VarianceReduction, ci controlInfo) []float64 {
	switch vr {
	case VRAntithetic:
		if len(raw) < 2 || len(raw)%2 != 0 {
			return raw
		}
		pairs := make([]float64, len(raw)/2)
		for p := range pairs {
			pairs[p] = (raw[2*p] + raw[2*p+1]) / 2
		}
		return pairs
	case VRControl:
		if !ci.ok || len(ci.values) != len(raw) || len(raw) < 2 {
			return raw
		}
		var x, c stats.Welford
		for i := range raw {
			x.Add(raw[i])
			c.Add(ci.values[i])
		}
		varC := c.Variance()
		if varC == 0 {
			return raw
		}
		// Sample covariance via the shifted cross-product sum; the OLS
		// coefficient b = cov(x, c) / var(c) minimizes the adjusted
		// variance in-sample.
		var cov float64
		for i := range raw {
			cov += (raw[i] - x.Mean()) * (ci.values[i] - c.Mean())
		}
		cov /= float64(len(raw) - 1)
		b := cov / varC
		out := make([]float64, len(raw))
		for i := range raw {
			out[i] = raw[i] - b*(ci.values[i]-ci.mean)
		}
		return out
	default:
		return raw
	}
}

// SampleInterval returns the Student-t confidence interval the runner
// reports over effective samples produced under the given variance-reduction
// mode. For VRControl the regression coefficient of the control was
// estimated from the same samples, so one degree of freedom is charged: the
// half-width uses the t-quantile with n-2 degrees of freedom (and is +Inf
// below three samples, where nothing is left after estimating the slope and
// the mean). This keeps small-sample control-variate intervals honest — the
// in-sample variance shrink of the OLS fit would otherwise make the adaptive
// stopping rule converge on optimistic half-widths.
func SampleInterval(samples []float64, level float64, vr VarianceReduction) stats.Interval {
	iv := stats.MeanInterval(samples, level)
	if vr != VRControl || iv.HalfWidth == 0 {
		return iv
	}
	if len(samples) < 3 {
		iv.HalfWidth = math.Inf(1)
		return iv
	}
	iv.HalfWidth *= stats.TQuantile(len(samples)-2, 1-iv.Level) / stats.TQuantile(len(samples)-1, 1-iv.Level)
	return iv
}

// relHalfWidth returns the relative confidence half-width |hw/mean| of an
// interval — the quantity the adaptive stopping rule compares against the
// precision target. A zero half-width is 0 regardless of the mean; a zero
// mean with a non-zero half-width is +Inf (never converged).
func relHalfWidth(iv stats.Interval) float64 {
	if iv.HalfWidth == 0 {
		return 0
	}
	if iv.Mean == 0 {
		return math.Inf(1)
	}
	return math.Abs(iv.HalfWidth / iv.Mean)
}

// cellIntervalDefs pairs every point-estimate field of sim.CellMeasures with
// the interval field of sim.CellIntervals it feeds, so the per-cell interval
// merge iterates one table instead of hand-copying nine fields.
var cellIntervalDefs = []struct {
	get func(*sim.CellMeasures) float64
	set func(*sim.CellIntervals) *stats.Interval
}{
	{func(m *sim.CellMeasures) float64 { return m.CarriedDataTraffic },
		func(iv *sim.CellIntervals) *stats.Interval { return &iv.CarriedDataTraffic }},
	{func(m *sim.CellMeasures) float64 { return m.MeanQueueLength },
		func(iv *sim.CellIntervals) *stats.Interval { return &iv.MeanQueueLength }},
	{func(m *sim.CellMeasures) float64 { return m.CarriedVoiceTraffic },
		func(iv *sim.CellIntervals) *stats.Interval { return &iv.CarriedVoiceTraffic }},
	{func(m *sim.CellMeasures) float64 { return m.AverageSessions },
		func(iv *sim.CellIntervals) *stats.Interval { return &iv.AverageSessions }},
	{func(m *sim.CellMeasures) float64 { return m.PacketLossProbability },
		func(iv *sim.CellIntervals) *stats.Interval { return &iv.PacketLossProbability }},
	{func(m *sim.CellMeasures) float64 { return m.QueueingDelaySec },
		func(iv *sim.CellIntervals) *stats.Interval { return &iv.QueueingDelaySec }},
	{func(m *sim.CellMeasures) float64 { return m.ThroughputBits },
		func(iv *sim.CellIntervals) *stats.Interval { return &iv.ThroughputBits }},
	{func(m *sim.CellMeasures) float64 { return m.GSMBlocking },
		func(iv *sim.CellIntervals) *stats.Interval { return &iv.GSMBlocking }},
	{func(m *sim.CellMeasures) float64 { return m.GPRSBlocking },
		func(iv *sim.CellIntervals) *stats.Interval { return &iv.GPRSBlocking }},
}

// perCellIntervals computes cross-replication confidence intervals for every
// per-cell measure, under the same variance-reduction treatment as the
// mid-cell measures. Replications with mismatched cell counts yield nil,
// mirroring mergePerCell.
func perCellIntervals(results []sim.Results, level float64, vr VarianceReduction, ci controlInfo) []sim.CellIntervals {
	n := len(results[0].PerCell)
	if n == 0 {
		return nil
	}
	for _, r := range results {
		if len(r.PerCell) != n {
			return nil
		}
	}
	out := make([]sim.CellIntervals, n)
	raw := make([]float64, len(results))
	for cell := range out {
		out[cell].Cell = results[0].PerCell[cell].Cell
		for _, def := range cellIntervalDefs {
			for i := range results {
				raw[i] = def.get(&results[i].PerCell[cell])
			}
			*def.set(&out[cell]) = SampleInterval(effectiveSamples(raw, vr, ci), level, vr)
		}
	}
	return out
}
