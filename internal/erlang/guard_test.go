package erlang

import (
	"math"
	"testing"
)

// TestGuardBReducesToErlangB pins the g = 0 boundary: without reserved
// channels the guard chain is the plain M/M/c/c loss system, so both
// blocking probabilities must equal the Erlang-B blocking and the
// distribution must match LossSystem.Distribution.
func TestGuardBReducesToErlangB(t *testing.T) {
	const lambda, mu = 0.45, 1.0 / 120
	const c = 19
	res, err := GuardB(lambda, 0, mu, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := ErlangB(lambda/mu, c)
	if math.Abs(res.NewCallBlocking-want) > 1e-12 {
		t.Errorf("new-call blocking %v, want Erlang-B %v", res.NewCallBlocking, want)
	}
	if math.Abs(res.HandoverBlocking-want) > 1e-12 {
		t.Errorf("handover blocking %v, want Erlang-B %v", res.HandoverBlocking, want)
	}
	dist, err := LossSystem{Lambda: lambda, Mu: mu, C: c}.Distribution()
	if err != nil {
		t.Fatal(err)
	}
	for n := range dist {
		if math.Abs(res.Distribution[n]-dist[n]) > 1e-12 {
			t.Fatalf("p_%d = %v, want %v", n, res.Distribution[n], dist[n])
		}
	}
}

// TestGuardBMonotone checks the defining trade-off of guard channels: as g
// grows, fresh calls are blocked more while handovers are blocked less, the
// distribution stays a probability vector, and detailed balance holds.
func TestGuardBMonotone(t *testing.T) {
	const lambdaNew, lambdaHO, mu = 0.5, 0.3, 1.0 / 60
	const c = 10
	prevNew, prevHO := -1.0, 2.0
	for g := 0; g < c; g++ {
		res, err := GuardB(lambdaNew, lambdaHO, mu, c, g)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for n, p := range res.Distribution {
			if p < 0 || p > 1 {
				t.Fatalf("g=%d: p_%d = %v out of range", g, n, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("g=%d: distribution sums to %v", g, sum)
		}
		// Detailed balance across every cut: birth(n-1) p_{n-1} = n mu p_n.
		for n := 1; n <= c; n++ {
			birth := lambdaHO
			if n-1 < c-g {
				birth = lambdaNew + lambdaHO
			}
			lhs, rhs := birth*res.Distribution[n-1], float64(n)*mu*res.Distribution[n]
			if math.Abs(lhs-rhs) > 1e-12*(1+math.Abs(lhs)) {
				t.Fatalf("g=%d: detailed balance broken at cut %d: %v vs %v", g, n, lhs, rhs)
			}
		}
		if res.NewCallBlocking <= prevNew {
			t.Errorf("g=%d: new-call blocking %v should grow with g (prev %v)", g, res.NewCallBlocking, prevNew)
		}
		if res.HandoverBlocking >= prevHO {
			t.Errorf("g=%d: handover blocking %v should fall with g (prev %v)", g, res.HandoverBlocking, prevHO)
		}
		if res.NewCallBlocking < res.HandoverBlocking {
			t.Errorf("g=%d: new-call blocking %v below handover blocking %v", g, res.NewCallBlocking, res.HandoverBlocking)
		}
		prevNew, prevHO = res.NewCallBlocking, res.HandoverBlocking
	}
}

// TestGuardBErrorPaths sweeps the parameter validation.
func TestGuardBErrorPaths(t *testing.T) {
	cases := []struct {
		name                    string
		lambdaNew, lambdaHO, mu float64
		c, g                    int
	}{
		{"negative lambdaNew", -1, 0, 1, 5, 1},
		{"negative lambdaHO", 1, -1, 1, 5, 1},
		{"zero mu", 1, 1, 0, 5, 1},
		{"NaN mu", 1, 1, math.NaN(), 5, 1},
		{"zero servers", 1, 1, 1, 0, 0},
		{"negative guard", 1, 1, 1, 5, -1},
		{"guard equals servers", 1, 1, 1, 5, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := GuardB(tc.lambdaNew, tc.lambdaHO, tc.mu, tc.c, tc.g); err == nil {
				t.Error("GuardB accepted invalid parameters")
			}
		})
	}
}

// TestBalanceGuardHandoverFixedPoint checks the balanced flow: at the fixed
// point the incoming handover rate equals muH * E[N], and with g = 0 the
// balance must agree with the unreserved BalanceHandover.
func TestBalanceGuardHandoverFixedPoint(t *testing.T) {
	const newCallRate, mu, muH = 0.45, 1.0 / 120, 1.0 / 60
	const servers = 19
	for g := 0; g <= 3; g++ {
		hb, err := BalanceGuardHandover(newCallRate, mu, muH, servers, g, 1e-12, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !hb.Converged {
			t.Fatalf("g=%d: balance did not converge in %d iterations", g, hb.Iterations)
		}
		if out := muH * hb.Result.MeanBusyServers; math.Abs(out-hb.HandoverRate) > 1e-9 {
			t.Errorf("g=%d: fixed point violated: incoming %v, outgoing %v", g, hb.HandoverRate, out)
		}
	}
	guard0, err := BalanceGuardHandover(newCallRate, mu, muH, servers, 0, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := BalanceHandover(newCallRate, mu, muH, servers, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(guard0.HandoverRate-plain.HandoverRate) > 1e-9 {
		t.Errorf("g=0 balance %v disagrees with BalanceHandover %v", guard0.HandoverRate, plain.HandoverRate)
	}

	// No mobility: zero handover flow, plain guarded Erlang blocking.
	still, err := BalanceGuardHandover(newCallRate, mu, 0, servers, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if still.HandoverRate != 0 || !still.Converged {
		t.Errorf("muH=0 should balance at zero flow, got %+v", still)
	}
}
