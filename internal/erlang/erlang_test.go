package erlang

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestErlangBKnownValues(t *testing.T) {
	// Reference values from standard Erlang-B tables.
	cases := []struct {
		rho  float64
		c    int
		want float64
	}{
		{1, 1, 0.5},
		{2, 2, 0.4},
		{10, 10, 0.21458},
		{5, 10, 0.01838},
		{0, 5, 0},
	}
	for _, tc := range cases {
		got := ErlangB(tc.rho, tc.c)
		if math.Abs(got-tc.want) > 1e-4 {
			t.Errorf("ErlangB(%v, %d) = %v, want %v", tc.rho, tc.c, got, tc.want)
		}
	}
}

func TestErlangBEdgeCases(t *testing.T) {
	if ErlangB(5, 0) != 1 {
		t.Error("zero servers should block everything")
	}
	if ErlangB(0, 0) != 1 {
		t.Error("zero servers with zero load blocks by convention")
	}
	if ErlangB(3, -1) != 1 {
		t.Error("negative servers treated as full blocking")
	}
	if ErlangB(1e6, 10) < 0.99 {
		t.Error("enormous load should be almost fully blocked")
	}
}

func TestDistributionMatchesErlangB(t *testing.T) {
	sys := LossSystem{Lambda: 0.5, Mu: 1.0 / 120, C: 19}
	dist, err := sys.Distribution()
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 20 {
		t.Fatalf("distribution length = %d, want 20", len(dist))
	}
	var sum float64
	for _, p := range dist {
		if p < 0 {
			t.Fatalf("negative probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("distribution sums to %v, want 1", sum)
	}
	b, err := sys.BlockingProbability()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist[sys.C]-b) > 1e-12 {
		t.Errorf("p_C = %v but ErlangB = %v", dist[sys.C], b)
	}
}

func TestMeanBusyServersMatchesDistribution(t *testing.T) {
	sys := LossSystem{Lambda: 0.3, Mu: 1.0 / 300, C: 25}
	dist, err := sys.Distribution()
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for n, p := range dist {
		mean += float64(n) * p
	}
	got, err := sys.MeanBusyServers()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-mean) > 1e-9 {
		t.Errorf("MeanBusyServers = %v, distribution mean = %v", got, mean)
	}
}

func TestDistributionLargeLoadNoOverflow(t *testing.T) {
	sys := LossSystem{Lambda: 500, Mu: 1, C: 400}
	dist, err := sys.Distribution()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range dist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("large-load distribution sums to %v", sum)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []LossSystem{
		{Lambda: -1, Mu: 1, C: 1},
		{Lambda: 1, Mu: 0, C: 1},
		{Lambda: 1, Mu: 1, C: -2},
		{Lambda: math.NaN(), Mu: 1, C: 1},
		{Lambda: 1, Mu: math.Inf(1), C: 1},
	}
	for i, sys := range bad {
		if err := sys.Validate(); !errors.Is(err, ErrInvalidParameter) {
			t.Errorf("case %d: expected ErrInvalidParameter, got %v", i, err)
		}
		if _, err := sys.Distribution(); err == nil {
			t.Errorf("case %d: Distribution should fail", i)
		}
		if _, err := sys.BlockingProbability(); err == nil {
			t.Errorf("case %d: BlockingProbability should fail", i)
		}
		if _, err := sys.MeanBusyServers(); err == nil {
			t.Errorf("case %d: MeanBusyServers should fail", i)
		}
	}
}

// Property: Erlang-B is increasing in offered load and decreasing in the
// number of servers, and always lies in [0, 1].
func TestErlangBMonotonicityProperties(t *testing.T) {
	prop := func(loadSeed uint32, cSeed uint8) bool {
		rho := 0.1 + float64(loadSeed%1000)/10 // 0.1 .. 100
		c := int(cSeed%60) + 1
		b := ErlangB(rho, c)
		if b < 0 || b > 1 {
			return false
		}
		if ErlangB(rho+1, c) < b-1e-12 {
			return false
		}
		if ErlangB(rho, c+1) > b+1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBalanceHandoverConverges(t *testing.T) {
	// GSM base setting: 120 s call duration, 60 s dwell time, 19 channels.
	hb, err := BalanceHandover(0.5, 1.0/120, 1.0/60, 19, 1e-12, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !hb.Converged {
		t.Fatalf("handover balancing did not converge after %d iterations", hb.Iterations)
	}
	if hb.HandoverRate <= 0 {
		t.Errorf("handover rate = %v, want > 0", hb.HandoverRate)
	}
	// At the fixed point the outgoing handover flow equals the incoming one.
	mean, err := hb.System.MeanBusyServers()
	if err != nil {
		t.Fatal(err)
	}
	outgoing := (1.0 / 60) * mean
	if math.Abs(outgoing-hb.HandoverRate) > 1e-6 {
		t.Errorf("fixed point violated: incoming %v vs outgoing %v", hb.HandoverRate, outgoing)
	}
}

func TestBalanceHandoverNoMobility(t *testing.T) {
	hb, err := BalanceHandover(0.2, 1.0/100, 0, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hb.HandoverRate != 0 || !hb.Converged {
		t.Errorf("zero mobility should yield zero handover flow, got %v", hb.HandoverRate)
	}
}

func TestBalanceHandoverDwellShorterThanDuration(t *testing.T) {
	// GPRS sessions in traffic models 1-2: session duration ~2100 s but dwell
	// time 120 s, so users hand over many times and the handover flow greatly
	// exceeds the fresh arrival rate (Section 5.3 of the paper).
	hb, err := BalanceHandover(0.05, 1.0/2122.5, 1.0/120, 50, 1e-12, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !hb.Converged {
		t.Fatal("did not converge")
	}
	if hb.HandoverRate < 0.05 {
		t.Errorf("handover rate %v should exceed fresh session rate for long sessions", hb.HandoverRate)
	}
}

func TestOfferedLoad(t *testing.T) {
	sys := LossSystem{Lambda: 2, Mu: 0.5, C: 3}
	if sys.OfferedLoad() != 4 {
		t.Errorf("offered load = %v, want 4", sys.OfferedLoad())
	}
}
