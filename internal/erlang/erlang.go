// Package erlang provides closed-form results for the M/M/c/c loss system
// (Erlang-B), which the paper uses to describe the marginal behaviour of GSM
// voice calls and GPRS sessions in the cell (Section 4.2, Eqs. 1–7) and to
// balance handover flows iteratively (Eqs. 4–5).
package erlang

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidParameter is returned when a queueing parameter is out of range.
var ErrInvalidParameter = errors.New("erlang: invalid parameter")

// LossSystem describes an M/M/c/c queue with Poisson arrivals of rate Lambda,
// exponential service with rate Mu per server, and C servers and no waiting
// room. Arrivals finding all servers busy are blocked and lost.
type LossSystem struct {
	// Lambda is the total arrival rate (per second).
	Lambda float64
	// Mu is the per-customer service rate (per second).
	Mu float64
	// C is the number of servers.
	C int
}

// Validate reports whether the parameters describe a well-formed loss system.
func (s LossSystem) Validate() error {
	if s.Lambda < 0 || math.IsNaN(s.Lambda) || math.IsInf(s.Lambda, 0) {
		return fmt.Errorf("%w: lambda = %v", ErrInvalidParameter, s.Lambda)
	}
	if s.Mu <= 0 || math.IsNaN(s.Mu) || math.IsInf(s.Mu, 0) {
		return fmt.Errorf("%w: mu = %v", ErrInvalidParameter, s.Mu)
	}
	if s.C < 0 {
		return fmt.Errorf("%w: c = %d", ErrInvalidParameter, s.C)
	}
	return nil
}

// OfferedLoad returns the offered traffic intensity rho = Lambda / Mu in
// Erlangs (Eq. 1 of the paper).
func (s LossSystem) OfferedLoad() float64 {
	return s.Lambda / s.Mu
}

// Distribution returns the steady-state probabilities p_0..p_C of the number
// of busy servers (Eqs. 2–3 of the paper). The computation normalizes
// incrementally to avoid overflow for large C or rho.
func (s LossSystem) Distribution() ([]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rho := s.OfferedLoad()
	p := make([]float64, s.C+1)
	// Work with unnormalized terms t_n = rho^n / n!, computed recursively and
	// rescaled when they grow large.
	terms := make([]float64, s.C+1)
	terms[0] = 1
	sum := 1.0
	for n := 1; n <= s.C; n++ {
		terms[n] = terms[n-1] * rho / float64(n)
		sum += terms[n]
		if sum > 1e280 {
			scale := 1e-280
			sum *= scale
			for i := 0; i <= n; i++ {
				terms[i] *= scale
			}
		}
	}
	for n := 0; n <= s.C; n++ {
		p[n] = terms[n] / sum
	}
	return p, nil
}

// BlockingProbability returns the Erlang-B blocking probability p_C, i.e.
// the probability that an arriving customer finds all servers busy. It uses
// the numerically stable Erlang-B recursion.
func (s LossSystem) BlockingProbability() (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	return ErlangB(s.OfferedLoad(), s.C), nil
}

// MeanBusyServers returns the expected number of busy servers
// E[N] = rho * (1 - B(rho, C)); for GSM voice this is the carried voice
// traffic (CVT, Eq. 6) and for GPRS sessions the average number of active
// sessions (AGS, Eq. 7).
func (s LossSystem) MeanBusyServers() (float64, error) {
	b, err := s.BlockingProbability()
	if err != nil {
		return 0, err
	}
	return s.OfferedLoad() * (1 - b), nil
}

// ErlangB computes the Erlang-B blocking probability for offered load rho
// (Erlangs) and c servers using the standard recursion
// B(rho, 0) = 1, B(rho, n) = rho*B(rho,n-1) / (n + rho*B(rho,n-1)).
func ErlangB(rho float64, c int) float64 {
	if c < 0 {
		return 1
	}
	if rho <= 0 {
		if c == 0 {
			return 1
		}
		return 0
	}
	b := 1.0
	for n := 1; n <= c; n++ {
		b = rho * b / (float64(n) + rho*b)
	}
	return b
}

// HandoverBalance holds the result of the iterative handover-flow balancing
// procedure of Eqs. (4)–(5): the fixed-point incoming handover rate and the
// resulting loss-system view of the cell.
type HandoverBalance struct {
	// HandoverRate is the balanced incoming (= outgoing) handover rate.
	HandoverRate float64
	// System is the loss system with total arrival rate NewCallRate +
	// HandoverRate and total departure rate Mu + HandoverMu per customer.
	System LossSystem
	// Iterations is the number of fixed-point iterations performed.
	Iterations int
	// Converged indicates the iteration reached the requested tolerance.
	Converged bool
}

// BalanceHandover runs the fixed-point iteration of Eqs. (4)–(5): starting
// from handoverRate = newCallRate, the incoming handover rate at step i+1 is
// set to the outgoing handover rate mu_h * E[N] computed from the loss-system
// distribution at step i. newCallRate is the arrival rate of fresh calls or
// sessions, mu is the completion rate, muH the handover (dwell-time) rate,
// and servers the admission limit (N_GSM channels or M sessions).
func BalanceHandover(newCallRate, mu, muH float64, servers int, tol float64, maxIter int) (HandoverBalance, error) {
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	hb := HandoverBalance{HandoverRate: newCallRate}
	if muH == 0 {
		// No mobility: the fixed point is zero handover flow.
		hb.HandoverRate = 0
		hb.System = LossSystem{Lambda: newCallRate, Mu: mu, C: servers}
		hb.Converged = true
		return hb, hb.System.Validate()
	}
	for i := 0; i < maxIter; i++ {
		sys := LossSystem{Lambda: newCallRate + hb.HandoverRate, Mu: mu + muH, C: servers}
		mean, err := sys.MeanBusyServers()
		if err != nil {
			return hb, err
		}
		next := muH * mean
		hb.Iterations = i + 1
		hb.System = sys
		if math.Abs(next-hb.HandoverRate) <= tol*(1+math.Abs(next)) {
			hb.HandoverRate = next
			hb.System = LossSystem{Lambda: newCallRate + next, Mu: mu + muH, C: servers}
			hb.Converged = true
			return hb, nil
		}
		hb.HandoverRate = next
	}
	hb.System = LossSystem{Lambda: newCallRate + hb.HandoverRate, Mu: mu + muH, C: servers}
	return hb, nil
}
