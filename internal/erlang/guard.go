package erlang

import (
	"fmt"
	"math"
)

// GuardResult holds the closed-form steady state of a guard-channel cell:
// an M/M/c/c loss system in which fresh calls are admitted only below c-g
// busy servers while handover arrivals may fill the cell completely.
type GuardResult struct {
	// NewCallBlocking is the probability a fresh call finds c-g or more
	// servers busy and is blocked.
	NewCallBlocking float64
	// HandoverBlocking is the probability a handover arrival finds all c
	// servers busy and fails.
	HandoverBlocking float64
	// MeanBusyServers is the expected number of busy servers E[N].
	MeanBusyServers float64
	// Distribution is the steady-state probability vector p_0..p_c.
	Distribution []float64
}

// GuardB solves the guard-channel birth-death chain: fresh calls arrive at
// rate lambdaNew, handovers at rate lambdaHO, every busy server completes at
// rate mu, c servers in total of which g are reserved for handovers. The
// birth rate is lambdaNew+lambdaHO below c-g busy servers and lambdaHO from
// c-g on; the death rate at n busy servers is n*mu. With g = 0 the chain is
// the plain Erlang-B system, so GuardB generalizes LossSystem.Distribution.
// The recursion rescales incrementally like Distribution to stay finite for
// large c or loads.
func GuardB(lambdaNew, lambdaHO, mu float64, c, g int) (GuardResult, error) {
	if lambdaNew < 0 || math.IsNaN(lambdaNew) || math.IsInf(lambdaNew, 0) {
		return GuardResult{}, fmt.Errorf("%w: lambdaNew = %v", ErrInvalidParameter, lambdaNew)
	}
	if lambdaHO < 0 || math.IsNaN(lambdaHO) || math.IsInf(lambdaHO, 0) {
		return GuardResult{}, fmt.Errorf("%w: lambdaHO = %v", ErrInvalidParameter, lambdaHO)
	}
	if mu <= 0 || math.IsNaN(mu) || math.IsInf(mu, 0) {
		return GuardResult{}, fmt.Errorf("%w: mu = %v", ErrInvalidParameter, mu)
	}
	if c < 1 {
		return GuardResult{}, fmt.Errorf("%w: c = %d", ErrInvalidParameter, c)
	}
	if g < 0 || g >= c {
		return GuardResult{}, fmt.Errorf("%w: guard channels g = %d (want 0 <= g < c = %d)", ErrInvalidParameter, g, c)
	}
	// Unnormalized terms t_n = prod_{k<n} birth(k) / ((n)*mu ... ), computed
	// recursively: t_0 = 1, t_n = t_{n-1} * birth(n-1) / (n*mu).
	terms := make([]float64, c+1)
	terms[0] = 1
	sum := 1.0
	for n := 1; n <= c; n++ {
		birth := lambdaHO
		if n-1 < c-g {
			birth = lambdaNew + lambdaHO
		}
		terms[n] = terms[n-1] * birth / (float64(n) * mu)
		sum += terms[n]
		if sum > 1e280 {
			scale := 1e-280
			sum *= scale
			for i := 0; i <= n; i++ {
				terms[i] *= scale
			}
		}
	}
	res := GuardResult{Distribution: make([]float64, c+1)}
	for n := 0; n <= c; n++ {
		p := terms[n] / sum
		res.Distribution[n] = p
		res.MeanBusyServers += float64(n) * p
		if n >= c-g {
			res.NewCallBlocking += p
		}
	}
	res.HandoverBlocking = res.Distribution[c]
	return res, nil
}

// GuardHandoverBalance holds the result of the guard-channel handover-flow
// fixed point: the balanced incoming handover rate and the resulting
// guard-channel steady state, mirroring HandoverBalance for the reserved
// system.
type GuardHandoverBalance struct {
	// HandoverRate is the balanced incoming (= outgoing) handover rate.
	HandoverRate float64
	// Result is the guard-channel steady state at the fixed point.
	Result GuardResult
	// Iterations is the number of fixed-point iterations performed.
	Iterations int
	// Converged indicates the iteration reached the requested tolerance.
	Converged bool
}

// BalanceGuardHandover runs the fixed-point iteration of Eqs. (4)-(5) on the
// guard-channel chain: starting from handoverRate = newCallRate, the
// incoming handover rate at step i+1 is the outgoing rate muH * E[N]
// computed from the guard-channel distribution at step i, with every busy
// server departing at the combined rate mu + muH (call completion or
// outbound handover). newCallRate is the fresh-call arrival rate, mu the
// completion rate, muH the handover (dwell-time) rate, servers the number of
// voice channels, and guard the reserved channel count.
func BalanceGuardHandover(newCallRate, mu, muH float64, servers, guard int, tol float64, maxIter int) (GuardHandoverBalance, error) {
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	hb := GuardHandoverBalance{HandoverRate: newCallRate}
	if muH == 0 {
		// No mobility: the fixed point is zero handover flow.
		hb.HandoverRate = 0
		res, err := GuardB(newCallRate, 0, mu, servers, guard)
		hb.Result = res
		hb.Converged = err == nil
		return hb, err
	}
	for i := 0; i < maxIter; i++ {
		res, err := GuardB(newCallRate, hb.HandoverRate, mu+muH, servers, guard)
		if err != nil {
			return hb, err
		}
		next := muH * res.MeanBusyServers
		hb.Iterations = i + 1
		hb.Result = res
		if math.Abs(next-hb.HandoverRate) <= tol*(1+math.Abs(next)) {
			hb.HandoverRate = next
			res, err = GuardB(newCallRate, next, mu+muH, servers, guard)
			if err != nil {
				return hb, err
			}
			hb.Result = res
			hb.Converged = true
			return hb, nil
		}
		hb.HandoverRate = next
	}
	return hb, nil
}
