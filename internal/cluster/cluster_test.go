package cluster

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestHexClusterShape(t *testing.T) {
	topo := NewHexCluster()
	if topo.NumCells() != 7 {
		t.Fatalf("NumCells = %d, want 7", topo.NumCells())
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("hex cluster invalid: %v", err)
	}
	if topo.Degree(MidCell) != 6 {
		t.Errorf("mid cell degree = %d, want 6", topo.Degree(MidCell))
	}
	for c := 1; c <= 6; c++ {
		if !topo.AreNeighbors(MidCell, c) {
			t.Errorf("mid cell should border cell %d", c)
		}
		if topo.Degree(c) != 4 {
			t.Errorf("outer cell %d degree = %d, want 4", c, topo.Degree(c))
		}
	}
	// Ring adjacency of the outer cells.
	if !topo.AreNeighbors(1, 2) || !topo.AreNeighbors(6, 1) {
		t.Error("outer ring adjacency broken")
	}
}

func TestRingTopology(t *testing.T) {
	topo, err := NewRing(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("ring invalid: %v", err)
	}
	for c := 0; c < 5; c++ {
		if topo.Degree(c) != 2 {
			t.Errorf("cell %d degree = %d, want 2", c, topo.Degree(c))
		}
	}
	if !topo.AreNeighbors(0, 4) || !topo.AreNeighbors(0, 1) {
		t.Error("ring wrap-around missing")
	}
	if topo.AreNeighbors(0, 2) {
		t.Error("non-adjacent ring cells reported as neighbours")
	}
	if _, err := NewRing(1); err == nil {
		t.Error("ring of one cell should be rejected")
	}
}

// inflowSum computes, for one cell, the stationary inflow of the
// uniform-neighbour handover walk when every cell is equally occupied:
// sum over neighbours b of 1/deg(b). A value of 1 for every cell means the
// topology is flow-balanced — inflow matches outflow in every cell.
func inflowSum(topo *Topology, cell int) float64 {
	var sum float64
	for _, nb := range topo.Neighbors(cell) {
		sum += 1 / float64(topo.Degree(nb))
	}
	return sum
}

func TestHexRingTopologies(t *testing.T) {
	sizes := map[int]int{1: 7, 2: 19, 3: 37}
	for r, want := range sizes {
		topo, err := NewHexRing(r)
		if err != nil {
			t.Fatalf("NewHexRing(%d): %v", r, err)
		}
		if topo.NumCells() != want {
			t.Fatalf("NewHexRing(%d) has %d cells, want %d", r, topo.NumCells(), want)
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("NewHexRing(%d) invalid (neighbour symmetry broken): %v", r, err)
		}
		for c := 0; c < topo.NumCells(); c++ {
			// Wrap-around closure: every cell, boundary cells included, has
			// exactly six distinct neighbours, none of them itself.
			if topo.Degree(c) != 6 {
				t.Errorf("r=%d: cell %d degree = %d, want 6", r, c, topo.Degree(c))
			}
			seen := make(map[int]bool)
			for _, nb := range topo.Neighbors(c) {
				if nb == c {
					t.Errorf("r=%d: cell %d is its own neighbour", r, c)
				}
				if seen[nb] {
					t.Errorf("r=%d: cell %d lists neighbour %d twice", r, c, nb)
				}
				seen[nb] = true
			}
			// Flow balance: uniform occupancy is stationary under handovers.
			if sum := inflowSum(topo, c); math.Abs(sum-1) > 1e-12 {
				t.Errorf("r=%d: cell %d inflow sum = %v, want 1", r, c, sum)
			}
		}
		// The first ring must border the mid cell (index layout convention).
		for c := 1; c <= 6; c++ {
			if !topo.AreNeighbors(MidCell, c) {
				t.Errorf("r=%d: ring-1 cell %d should border the mid cell", r, c)
			}
		}
	}
	if _, err := NewHexRing(0); err == nil {
		t.Error("NewHexRing(0) should be rejected")
	}
}

func TestPresetTopologiesAreConnected(t *testing.T) {
	// Handover flow must be able to reach every cell from every cell: a bug
	// in the wrap-around closure (e.g. dropped edges that still keep
	// neighbour lists symmetric) would disconnect the cluster and trap
	// users in a component.
	for _, n := range []int{7, 19, 37} {
		topo, err := Preset(n)
		if err != nil {
			t.Fatal(err)
		}
		visited := make([]bool, topo.NumCells())
		queue := []int{MidCell}
		visited[MidCell] = true
		reached := 1
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			for _, nb := range topo.Neighbors(c) {
				if !visited[nb] {
					visited[nb] = true
					reached++
					queue = append(queue, nb)
				}
			}
		}
		if reached != topo.NumCells() {
			t.Errorf("%d-cell cluster: only %d cells reachable from the mid cell", n, reached)
		}
	}
}

func TestPreset(t *testing.T) {
	for _, n := range PresetSizes() {
		topo, err := Preset(n)
		if err != nil {
			t.Fatalf("Preset(%d): %v", n, err)
		}
		if topo.NumCells() != n {
			t.Errorf("Preset(%d) has %d cells", n, topo.NumCells())
		}
		if err := topo.Validate(); err != nil {
			t.Errorf("Preset(%d) invalid: %v", n, err)
		}
	}
	// The paper's cluster keeps its hand-built shape: degree-4 ring cells.
	topo, err := Preset(7)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Degree(1) != 4 {
		t.Errorf("Preset(7) should be the seed cluster, ring degree = %d", topo.Degree(1))
	}
	for _, n := range []int{0, 1, 8, 40, 332} {
		if _, err := Preset(n); err == nil {
			t.Errorf("Preset(%d) should be rejected", n)
		}
	}
}

// TestPresetSizes pins the derived preset list: the hexagonal ball sizes in
// ascending order, containing the city-scale steps the CLIs advertise.
func TestPresetSizes(t *testing.T) {
	sizes := PresetSizes()
	want := []int{7, 19, 37, 61, 91, 127, 169, 217, 271, 331}
	if !reflect.DeepEqual(sizes, want) {
		t.Fatalf("PresetSizes() = %v, want %v", sizes, want)
	}
}

// TestPresetErrorEnumeratesSizes is the error-path pin for the dynamic size
// list: the rejection message must name every supported size, so it cannot go
// stale as new lattice radii join PresetSizes.
func TestPresetErrorEnumeratesSizes(t *testing.T) {
	_, err := Preset(42)
	if err == nil {
		t.Fatal("Preset(42) should be rejected")
	}
	if !errors.Is(err, ErrInvalidTopology) {
		t.Errorf("Preset error should wrap ErrInvalidTopology, got %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, fmt.Sprintf("%v", PresetSizes())) {
		t.Errorf("Preset error %q should enumerate the supported sizes %v", msg, PresetSizes())
	}
}

// TestCityGrid checks the rectangular wrap-around city lattice: w*h cells,
// every cell with six distinct neighbours, symmetric, flow-balanced,
// connected, and carrying a hex embedding for corridor scenarios.
func TestCityGrid(t *testing.T) {
	for _, dims := range [][2]int{{3, 3}, {4, 6}, {8, 5}} {
		w, h := dims[0], dims[1]
		topo, err := NewCityGrid(w, h)
		if err != nil {
			t.Fatalf("NewCityGrid(%d, %d): %v", w, h, err)
		}
		if topo.NumCells() != w*h {
			t.Fatalf("NewCityGrid(%d, %d) has %d cells", w, h, topo.NumCells())
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("NewCityGrid(%d, %d) invalid: %v", w, h, err)
		}
		for c := 0; c < topo.NumCells(); c++ {
			if topo.Degree(c) != 6 {
				t.Errorf("%dx%d: cell %d degree = %d, want 6", w, h, c, topo.Degree(c))
			}
			seen := make(map[int]bool)
			for _, nb := range topo.Neighbors(c) {
				if seen[nb] {
					t.Errorf("%dx%d: cell %d lists neighbour %d twice", w, h, c, nb)
				}
				seen[nb] = true
			}
			if sum := inflowSum(topo, c); math.Abs(sum-1) > 1e-12 {
				t.Errorf("%dx%d: cell %d inflow sum = %v, want 1", w, h, c, sum)
			}
		}
		if topo.Eccentricity(MidCell) < 0 {
			t.Errorf("%dx%d: grid is disconnected", w, h)
		}
		if topo.AxisDistances(MidCell, 0) == nil {
			t.Errorf("%dx%d: city grid should carry a hex embedding", w, h)
		}
	}
	for _, dims := range [][2]int{{0, 3}, {2, 5}, {5, 2}, {-1, 4}} {
		if _, err := NewCityGrid(dims[0], dims[1]); err == nil {
			t.Errorf("NewCityGrid(%d, %d) should be rejected", dims[0], dims[1])
		}
	}
}

func TestNeighborsReturnsCopy(t *testing.T) {
	topo := NewHexCluster()
	nb := topo.Neighbors(MidCell)
	nb[0] = 99
	if topo.Neighbors(MidCell)[0] == 99 {
		t.Error("Neighbors must return a copy")
	}
	if topo.Neighbors(-1) != nil || topo.Neighbors(7) != nil {
		t.Error("out-of-range cells should return nil")
	}
	if topo.Degree(-1) != 0 || topo.Degree(99) != 0 {
		t.Error("out-of-range degree should be 0")
	}
	if topo.AreNeighbors(-1, 0) || topo.AreNeighbors(0, 99) {
		t.Error("out-of-range AreNeighbors should be false")
	}
}

func TestHandoverTarget(t *testing.T) {
	topo := NewHexCluster()
	// Deterministic picker selecting the i-th neighbour.
	for i := 0; i < topo.Degree(MidCell); i++ {
		i := i
		target := topo.HandoverTarget(MidCell, func(n int) int { return i })
		if !topo.AreNeighbors(MidCell, target) {
			t.Errorf("handover target %d is not a neighbour", target)
		}
	}
	// Out-of-range picker results are clamped.
	if target := topo.HandoverTarget(MidCell, func(n int) int { return 99 }); !topo.AreNeighbors(MidCell, target) {
		t.Errorf("clamped target %d not a neighbour", target)
	}
	if topo.HandoverTarget(-1, func(n int) int { return 0 }) != -1 {
		t.Error("invalid cell should return -1")
	}
}

// Property: every handover target returned for a valid picker is a neighbour
// of the source cell, for both topologies.
func TestHandoverTargetProperty(t *testing.T) {
	hex := NewHexCluster()
	ring, err := NewRing(9)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(cellSeed, pickSeed uint8) bool {
		for _, topo := range []*Topology{hex, ring} {
			cell := int(cellSeed) % topo.NumCells()
			pick := int(pickSeed)
			target := topo.HandoverTarget(cell, func(n int) int { return pick % n })
			if target < 0 || !topo.AreNeighbors(cell, target) || target == cell {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDistances checks the BFS hop distances on the preset clusters: the
// seven-cell cluster has eccentricity 1 from the mid cell, the hex rings have
// eccentricity r from theirs, distances are symmetric, and exactly the
// neighbours sit at distance 1.
func TestDistances(t *testing.T) {
	for _, tc := range []struct {
		cells, ecc int
	}{{7, 1}, {19, 2}, {37, 3}} {
		topo, err := Preset(tc.cells)
		if err != nil {
			t.Fatal(err)
		}
		dist := topo.Distances(MidCell)
		if len(dist) != tc.cells {
			t.Fatalf("%d cells: %d distances", tc.cells, len(dist))
		}
		if dist[MidCell] != 0 {
			t.Errorf("%d cells: distance to self = %d", tc.cells, dist[MidCell])
		}
		if got := topo.Eccentricity(MidCell); got != tc.ecc {
			t.Errorf("%d cells: eccentricity %d, want %d", tc.cells, got, tc.ecc)
		}
		for c, d := range dist {
			if want := topo.Distance(c, MidCell); want != d {
				t.Errorf("%d cells: asymmetric distance %d<->%d: %d vs %d", tc.cells, MidCell, c, d, want)
			}
			if (d == 1) != topo.AreNeighbors(MidCell, c) {
				t.Errorf("%d cells: cell %d at distance %d, neighbour=%v", tc.cells, c, d, topo.AreNeighbors(MidCell, c))
			}
		}
	}
	topo := NewHexCluster()
	if topo.Distances(-1) != nil || topo.Distances(7) != nil {
		t.Error("out-of-range cells should yield nil distances")
	}
	if topo.Distance(0, 99) != -1 || topo.Distance(-1, 0) != -1 {
		t.Error("out-of-range distance should be -1")
	}
	if topo.Eccentricity(42) != -1 {
		t.Error("out-of-range eccentricity should be -1")
	}
}

// TestAxisDistances pins the corridor geometry: the corridor of an axis
// through a cell is a straight row in the hex embedding, distances grow
// perpendicular to it, every hex topology supports all three axes, and
// coordinate-less topologies (plain rings) report none.
func TestAxisDistances(t *testing.T) {
	// Seed cluster, axis 0 through the mid cell: the mid cell and the two
	// ring cells on the axis are the corridor, every other cell is one off.
	topo := NewHexCluster()
	if got, want := topo.AxisDistances(MidCell, 0), []int{0, 0, 1, 1, 0, 1, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("7-cell axis 0 distances = %v, want %v", got, want)
	}

	for _, cells := range []int{7, 19, 37} {
		topo, err := Preset(cells)
		if err != nil {
			t.Fatal(err)
		}
		for axis := 0; axis < NumHexAxes; axis++ {
			dist := topo.AxisDistances(MidCell, axis)
			if len(dist) != cells {
				t.Fatalf("%d cells axis %d: %d distances", cells, axis, len(dist))
			}
			if dist[MidCell] != 0 {
				t.Errorf("%d cells axis %d: the center is not on its own corridor", cells, axis)
			}
			var counts []int
			for _, d := range dist {
				if d < 0 {
					t.Fatalf("%d cells axis %d: negative distance", cells, axis)
				}
				for len(counts) <= d {
					counts = append(counts, 0)
				}
				counts[d]++
			}
			// A hex ball of radius r has 2r+1 cells on any axis through the
			// center and 2r+1-d on each side at perpendicular distance d.
			r := (topo.Eccentricity(MidCell))
			if got, want := counts[0], 2*r+1; cells != 7 && got != want {
				t.Errorf("%d cells axis %d: %d corridor cells, want %d", cells, axis, got, want)
			}
			for d := 1; d < len(counts); d++ {
				if cells != 7 && counts[d] != 2*(2*r+1-d) {
					t.Errorf("%d cells axis %d: %d cells at distance %d, want %d",
						cells, axis, counts[d], d, 2*(2*r+1-d))
				}
			}
		}
		// The three axes are related by lattice symmetry: the multiset of
		// distances must match across axes.
		for axis := 1; axis < NumHexAxes; axis++ {
			a := append([]int(nil), topo.AxisDistances(MidCell, 0)...)
			b := append([]int(nil), topo.AxisDistances(MidCell, axis)...)
			sort.Ints(a)
			sort.Ints(b)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%d cells: axis %d distance multiset differs from axis 0", cells, axis)
			}
		}
	}

	if topo.AxisDistances(-1, 0) != nil || topo.AxisDistances(0, NumHexAxes) != nil || topo.AxisDistances(99, 0) != nil {
		t.Error("out-of-range cell or axis should yield nil")
	}
	ring, err := NewRing(8)
	if err != nil {
		t.Fatal(err)
	}
	if ring.AxisDistances(0, 0) != nil {
		t.Error("plain rings carry no hex embedding and should yield nil")
	}
}

// TestNeighborAt pins the allocation-free neighbour accessor against the
// copying Neighbors: same cells in the same deterministic order, -1 out of
// range, and zero allocations per call.
func TestNeighborAt(t *testing.T) {
	for _, cells := range []int{7, 19, 37} {
		topo, err := Preset(cells)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < topo.NumCells(); c++ {
			nbs := topo.Neighbors(c)
			if got := topo.Degree(c); got != len(nbs) {
				t.Fatalf("%d cells: Degree(%d) = %d, want %d", cells, c, got, len(nbs))
			}
			for i, want := range nbs {
				if got := topo.NeighborAt(c, i); got != want {
					t.Errorf("%d cells: NeighborAt(%d, %d) = %d, want %d", cells, c, i, got, want)
				}
			}
			if topo.NeighborAt(c, -1) != -1 || topo.NeighborAt(c, topo.Degree(c)) != -1 {
				t.Errorf("%d cells: out-of-range neighbour index should yield -1", cells)
			}
		}
	}
	topo := NewHexCluster()
	if topo.NeighborAt(-1, 0) != -1 || topo.NeighborAt(topo.NumCells(), 0) != -1 {
		t.Error("out-of-range cell should yield -1")
	}
	var sink int
	allocs := testing.AllocsPerRun(100, func() {
		sink = topo.NeighborAt(MidCell, sink%topo.Degree(MidCell))
	})
	if allocs != 0 {
		t.Errorf("NeighborAt allocates %.1f per call, want 0", allocs)
	}
}
