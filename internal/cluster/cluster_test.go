package cluster

import (
	"testing"
	"testing/quick"
)

func TestHexClusterShape(t *testing.T) {
	topo := NewHexCluster()
	if topo.NumCells() != 7 {
		t.Fatalf("NumCells = %d, want 7", topo.NumCells())
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("hex cluster invalid: %v", err)
	}
	if topo.Degree(MidCell) != 6 {
		t.Errorf("mid cell degree = %d, want 6", topo.Degree(MidCell))
	}
	for c := 1; c <= 6; c++ {
		if !topo.AreNeighbors(MidCell, c) {
			t.Errorf("mid cell should border cell %d", c)
		}
		if topo.Degree(c) != 4 {
			t.Errorf("outer cell %d degree = %d, want 4", c, topo.Degree(c))
		}
	}
	// Ring adjacency of the outer cells.
	if !topo.AreNeighbors(1, 2) || !topo.AreNeighbors(6, 1) {
		t.Error("outer ring adjacency broken")
	}
}

func TestRingTopology(t *testing.T) {
	topo, err := NewRing(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("ring invalid: %v", err)
	}
	for c := 0; c < 5; c++ {
		if topo.Degree(c) != 2 {
			t.Errorf("cell %d degree = %d, want 2", c, topo.Degree(c))
		}
	}
	if !topo.AreNeighbors(0, 4) || !topo.AreNeighbors(0, 1) {
		t.Error("ring wrap-around missing")
	}
	if topo.AreNeighbors(0, 2) {
		t.Error("non-adjacent ring cells reported as neighbours")
	}
	if _, err := NewRing(1); err == nil {
		t.Error("ring of one cell should be rejected")
	}
}

func TestNeighborsReturnsCopy(t *testing.T) {
	topo := NewHexCluster()
	nb := topo.Neighbors(MidCell)
	nb[0] = 99
	if topo.Neighbors(MidCell)[0] == 99 {
		t.Error("Neighbors must return a copy")
	}
	if topo.Neighbors(-1) != nil || topo.Neighbors(7) != nil {
		t.Error("out-of-range cells should return nil")
	}
	if topo.Degree(-1) != 0 || topo.Degree(99) != 0 {
		t.Error("out-of-range degree should be 0")
	}
	if topo.AreNeighbors(-1, 0) || topo.AreNeighbors(0, 99) {
		t.Error("out-of-range AreNeighbors should be false")
	}
}

func TestHandoverTarget(t *testing.T) {
	topo := NewHexCluster()
	// Deterministic picker selecting the i-th neighbour.
	for i := 0; i < topo.Degree(MidCell); i++ {
		i := i
		target := topo.HandoverTarget(MidCell, func(n int) int { return i })
		if !topo.AreNeighbors(MidCell, target) {
			t.Errorf("handover target %d is not a neighbour", target)
		}
	}
	// Out-of-range picker results are clamped.
	if target := topo.HandoverTarget(MidCell, func(n int) int { return 99 }); !topo.AreNeighbors(MidCell, target) {
		t.Errorf("clamped target %d not a neighbour", target)
	}
	if topo.HandoverTarget(-1, func(n int) int { return 0 }) != -1 {
		t.Error("invalid cell should return -1")
	}
}

// Property: every handover target returned for a valid picker is a neighbour
// of the source cell, for both topologies.
func TestHandoverTargetProperty(t *testing.T) {
	hex := NewHexCluster()
	ring, err := NewRing(9)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(cellSeed, pickSeed uint8) bool {
		for _, topo := range []*Topology{hex, ring} {
			cell := int(cellSeed) % topo.NumCells()
			pick := int(pickSeed)
			target := topo.HandoverTarget(cell, func(n int) int { return pick % n })
			if target < 0 || !topo.AreNeighbors(cell, target) || target == cell {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
