// Package cluster models the cellular layout used by the paper's detailed
// simulator: a cluster of seven hexagonal cells (one mid cell surrounded by
// six neighbours). Handovers move users between neighbouring cells; the
// performance measures are collected in the mid cell (Section 5.2).
package cluster

import (
	"errors"
	"fmt"
)

// ErrInvalidTopology is returned for malformed cluster specifications.
var ErrInvalidTopology = errors.New("cluster: invalid topology")

// MidCell is the index of the central cell of the cluster, the cell whose
// measurements are compared with the analytical model.
const MidCell = 0

// Topology describes a set of cells and their neighbour relations.
type Topology struct {
	numCells  int
	neighbors [][]int
}

// NewHexCluster returns the seven-cell hexagonal cluster used in the paper:
// cell 0 is the mid cell adjacent to all six outer cells; the outer cells
// form a ring, each adjacent to the mid cell and to its two ring neighbours.
// Users leaving an outer cell away from the cluster are wrapped around to the
// opposite ring cell so that the cluster is closed and flows stay balanced.
func NewHexCluster() *Topology {
	const n = 7
	neighbors := make([][]int, n)
	// Mid cell borders every outer cell.
	neighbors[MidCell] = []int{1, 2, 3, 4, 5, 6}
	for i := 1; i <= 6; i++ {
		left := i - 1
		if left == 0 {
			left = 6
		}
		right := i + 1
		if right == 7 {
			right = 1
		}
		opposite := i + 3
		if opposite > 6 {
			opposite -= 6
		}
		// Mid cell, two ring neighbours, and the wrap-around cell standing in
		// for the three outward directions.
		neighbors[i] = []int{MidCell, left, right, opposite}
	}
	return &Topology{numCells: n, neighbors: neighbors}
}

// NewRing returns a ring of n cells (each cell has two neighbours). It is
// used in tests and for experiments with smaller clusters.
func NewRing(n int) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: ring needs at least 2 cells, got %d", ErrInvalidTopology, n)
	}
	neighbors := make([][]int, n)
	for i := 0; i < n; i++ {
		neighbors[i] = []int{(i + n - 1) % n, (i + 1) % n}
	}
	return &Topology{numCells: n, neighbors: neighbors}, nil
}

// NumCells returns the number of cells in the cluster.
func (t *Topology) NumCells() int { return t.numCells }

// Neighbors returns a copy of the neighbour list of a cell. It returns nil
// for out-of-range cells.
func (t *Topology) Neighbors(cell int) []int {
	if cell < 0 || cell >= t.numCells {
		return nil
	}
	out := make([]int, len(t.neighbors[cell]))
	copy(out, t.neighbors[cell])
	return out
}

// Degree returns the number of neighbours of a cell.
func (t *Topology) Degree(cell int) int {
	if cell < 0 || cell >= t.numCells {
		return 0
	}
	return len(t.neighbors[cell])
}

// AreNeighbors reports whether two cells share a border.
func (t *Topology) AreNeighbors(a, b int) bool {
	if a < 0 || a >= t.numCells || b < 0 || b >= t.numCells {
		return false
	}
	for _, nb := range t.neighbors[a] {
		if nb == b {
			return true
		}
	}
	return false
}

// Validate checks that the neighbour relation is symmetric and free of
// self-loops.
func (t *Topology) Validate() error {
	for c := 0; c < t.numCells; c++ {
		for _, nb := range t.neighbors[c] {
			if nb == c {
				return fmt.Errorf("%w: cell %d lists itself as neighbour", ErrInvalidTopology, c)
			}
			if nb < 0 || nb >= t.numCells {
				return fmt.Errorf("%w: cell %d lists out-of-range neighbour %d", ErrInvalidTopology, c, nb)
			}
			if !t.AreNeighbors(nb, c) {
				return fmt.Errorf("%w: neighbour relation %d -> %d is not symmetric", ErrInvalidTopology, c, nb)
			}
		}
	}
	return nil
}

// HandoverTarget returns the cell a user in the given cell hands over to,
// selected by the provided picker function (typically a uniform random index
// in [0, Degree(cell))). It returns -1 for out-of-range cells.
func (t *Topology) HandoverTarget(cell int, pick func(n int) int) int {
	if cell < 0 || cell >= t.numCells || len(t.neighbors[cell]) == 0 {
		return -1
	}
	idx := pick(len(t.neighbors[cell]))
	if idx < 0 || idx >= len(t.neighbors[cell]) {
		idx = 0
	}
	return t.neighbors[cell][idx]
}
