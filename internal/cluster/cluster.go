// Package cluster models the cellular layout used by the paper's detailed
// simulator: a cluster of seven hexagonal cells (one mid cell surrounded by
// six neighbours). Handovers move users between neighbouring cells; the
// performance measures are collected in the mid cell (Section 5.2). Beyond
// the paper's cluster the package generates city-scale wrap-around lattices —
// hexagonal balls of arbitrary radius (NewHexRing, up to 331 cells through
// Preset) and rectangular city grids (NewCityGrid) — all closed toroidally so
// handover flows stay balanced in every cell.
package cluster

import (
	"errors"
	"fmt"
)

// ErrInvalidTopology is returned for malformed cluster specifications.
var ErrInvalidTopology = errors.New("cluster: invalid topology")

// MidCell is the index of the central cell of the cluster, the cell whose
// measurements are compared with the analytical model.
const MidCell = 0

// NumHexAxes is the number of distinct lattice axes of a hexagonal layout.
// A corridor (highway) scenario runs along one of them; see AxisDistances.
const NumHexAxes = 3

// axial is a cell position in axial hex coordinates (q, r); the third cube
// coordinate is implied as -(q+r).
type axial struct{ q, r int }

// Topology describes a set of cells and their neighbour relations. Hexagonal
// topologies (NewHexCluster, NewHexRing) additionally carry the axial lattice
// coordinates of every cell, which corridor-shaped scenarios use to measure
// distances from a lattice axis; plain rings carry none.
type Topology struct {
	numCells  int
	neighbors [][]int
	coords    []axial // nil when the topology has no hex embedding
}

// NewHexCluster returns the seven-cell hexagonal cluster used in the paper:
// cell 0 is the mid cell adjacent to all six outer cells; the outer cells
// form a ring, each adjacent to the mid cell and to its two ring neighbours.
// Users leaving an outer cell away from the cluster are wrapped around to the
// opposite ring cell so that the cluster is closed and flows stay balanced.
func NewHexCluster() *Topology {
	const n = 7
	neighbors := make([][]int, n)
	// Mid cell borders every outer cell.
	neighbors[MidCell] = []int{1, 2, 3, 4, 5, 6}
	for i := 1; i <= 6; i++ {
		left := i - 1
		if left == 0 {
			left = 6
		}
		right := i + 1
		if right == 7 {
			right = 1
		}
		opposite := i + 3
		if opposite > 6 {
			opposite -= 6
		}
		// Mid cell, two ring neighbours, and the wrap-around cell standing in
		// for the three outward directions.
		neighbors[i] = []int{MidCell, left, right, opposite}
	}
	// Hex embedding: the outer ring cells 1..6 walk the six lattice
	// directions around the mid cell in ring order, so consecutive indices
	// are lattice neighbours, matching the neighbour lists above.
	coords := []axial{{0, 0}, {1, 0}, {1, -1}, {0, -1}, {-1, 0}, {-1, 1}, {0, 1}}
	return &Topology{numCells: n, neighbors: neighbors, coords: coords}
}

// NewHexRing returns the wrap-around hexagonal cluster with r rings of cells
// around the mid cell: 3r(r+1)+1 cells (7, 19, 37 for r = 1, 2, 3), cell 0
// being the mid cell. The cluster is the hexagonal ball of radius r on the
// triangular lattice, closed toroidally: the ball tiles the plane under the
// period lattice spanned by the axial vector (r+1, r) and its 60-degree
// rotation, so a user leaving the cluster re-enters on the far side. Every
// cell therefore has exactly six neighbours and the topology is
// vertex-transitive, which makes handover flows balanced in every cell — the
// generated generalization of the seed seven-cell cluster's wrap-around
// closure.
func NewHexRing(r int) (*Topology, error) {
	if r < 1 {
		return nil, fmt.Errorf("%w: hex ring needs at least 1 ring, got %d", ErrInvalidTopology, r)
	}
	dist := func(a axial) int {
		d := abs(a.q)
		if abs(a.r) > d {
			d = abs(a.r)
		}
		if abs(a.q+a.r) > d {
			d = abs(a.q + a.r)
		}
		return d
	}
	// Enumerate the ball ring by ring so the mid cell gets index MidCell and
	// ring k occupies a contiguous index range — the same layout convention as
	// the seed cluster.
	var coords []axial
	for ring := 0; ring <= r; ring++ {
		for q := -ring; q <= ring; q++ {
			for rr := -ring; rr <= ring; rr++ {
				if c := (axial{q, rr}); dist(c) == ring {
					coords = append(coords, c)
				}
			}
		}
	}
	index := make(map[axial]int, len(coords))
	for i, c := range coords {
		index[c] = i
	}
	// Period lattice: a = (r+1, r) and b = rot60(a) = (-r, 2r+1). Both have
	// squared hex norm q^2 + qr + r^2 = 3r^2+3r+1 = |ball|, the signature of a
	// perfect toroidal closure.
	a := axial{r + 1, r}
	b := axial{-r, 2*r + 1}
	canonical := func(c axial) (int, bool) {
		for m := -2; m <= 2; m++ {
			for k := -2; k <= 2; k++ {
				p := axial{c.q - m*a.q - k*b.q, c.r - m*a.r - k*b.r}
				if dist(p) <= r {
					return index[p], true
				}
			}
		}
		return 0, false
	}
	directions := []axial{{1, 0}, {1, -1}, {0, -1}, {-1, 0}, {-1, 1}, {0, 1}}
	neighbors := make([][]int, len(coords))
	for i, c := range coords {
		for _, d := range directions {
			nb, ok := canonical(axial{c.q + d.q, c.r + d.r})
			if !ok {
				return nil, fmt.Errorf("%w: no wrap-around image for neighbour of cell %d", ErrInvalidTopology, i)
			}
			neighbors[i] = append(neighbors[i], nb)
		}
	}
	t := &Topology{numCells: len(coords), neighbors: neighbors, coords: coords}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// NewCityGrid returns a rectangular wrap-around city lattice of width x
// height hexagonal cells: the cells tile a parallelogram-shaped patch of the
// triangular lattice (axial coordinates q in [0, width), r in [0, height)),
// closed toroidally along both axial directions so every cell has exactly six
// neighbours and the topology is vertex-transitive — the metro-scale
// counterpart of the wrap-around hex rings, shaped for street-grid scenarios
// rather than radial ones. Cell 0 sits at the origin and doubles as the mid
// cell; indices advance row-major (index = r*width + q). Both dimensions must
// be at least 3 so the six wrap-around neighbours stay distinct.
func NewCityGrid(width, height int) (*Topology, error) {
	if width < 3 || height < 3 {
		return nil, fmt.Errorf("%w: city grid needs width and height of at least 3, got %dx%d",
			ErrInvalidTopology, width, height)
	}
	n := width * height
	coords := make([]axial, 0, n)
	for r := 0; r < height; r++ {
		for q := 0; q < width; q++ {
			coords = append(coords, axial{q, r})
		}
	}
	mod := func(v, m int) int { return ((v % m) + m) % m }
	directions := []axial{{1, 0}, {1, -1}, {0, -1}, {-1, 0}, {-1, 1}, {0, 1}}
	neighbors := make([][]int, n)
	for i, c := range coords {
		for _, d := range directions {
			q := mod(c.q+d.q, width)
			r := mod(c.r+d.r, height)
			neighbors[i] = append(neighbors[i], r*width+q)
		}
	}
	t := &Topology{numCells: n, neighbors: neighbors, coords: coords}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// maxPresetRing bounds the hex-ring sizes Preset enumerates: rings 1..10
// cover 7 through 331 cells. NewHexRing itself accepts arbitrary radii; the
// preset list exists so CLIs and tests can name city-scale sizes by cell
// count alone.
const maxPresetRing = 10

// PresetSizes returns the cluster sizes Preset accepts, in ascending order:
// the hexagonal ball sizes 3r(r+1)+1 for r = 1..10 (7, 19, 37, 61, 91, 127,
// 169, 217, 271, 331 cells). The list is derived, not hard-coded, so it stays
// in sync with the supported lattice generators — and so does the Preset
// error message.
func PresetSizes() []int {
	sizes := make([]int, 0, maxPresetRing)
	for r := 1; r <= maxPresetRing; r++ {
		sizes = append(sizes, 3*r*(r+1)+1)
	}
	return sizes
}

// Preset returns the topology for a supported cluster size: 7 is the paper's
// seven-cell hexagonal cluster, every other size of PresetSizes is the
// generated wrap-around hex-ring cluster of the matching radius (19, 37, 61,
// ... 331 cells for NewHexRing with 2..10 rings). For lattice shapes the size
// list cannot name, call NewHexRing or NewCityGrid directly.
func Preset(cells int) (*Topology, error) {
	if cells == 7 {
		return NewHexCluster(), nil
	}
	for r := 2; r <= maxPresetRing; r++ {
		if 3*r*(r+1)+1 == cells {
			return NewHexRing(r)
		}
	}
	return nil, fmt.Errorf("%w: unsupported cluster size %d (supported: %v)",
		ErrInvalidTopology, cells, PresetSizes())
}

// NewRing returns a ring of n cells (each cell has two neighbours). It is
// used in tests and for experiments with smaller clusters.
func NewRing(n int) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: ring needs at least 2 cells, got %d", ErrInvalidTopology, n)
	}
	neighbors := make([][]int, n)
	for i := 0; i < n; i++ {
		neighbors[i] = []int{(i + n - 1) % n, (i + 1) % n}
	}
	return &Topology{numCells: n, neighbors: neighbors}, nil
}

// NumCells returns the number of cells in the cluster.
func (t *Topology) NumCells() int { return t.numCells }

// Neighbors returns a copy of the neighbour list of a cell. It returns nil
// for out-of-range cells.
func (t *Topology) Neighbors(cell int) []int {
	if cell < 0 || cell >= t.numCells {
		return nil
	}
	out := make([]int, len(t.neighbors[cell]))
	copy(out, t.neighbors[cell])
	return out
}

// NeighborAt returns the i-th neighbour of a cell without copying the
// neighbour list — the allocation-free accessor the simulator's hot path
// uses (Neighbors returns a fresh slice per call). It returns -1 for
// out-of-range cells or indices. Together with Degree it exposes the
// deterministic neighbour order HandoverTarget picks from, which the
// directed-retry handover policy relies on for its "next neighbour" rule.
func (t *Topology) NeighborAt(cell, i int) int {
	if cell < 0 || cell >= t.numCells || i < 0 || i >= len(t.neighbors[cell]) {
		return -1
	}
	return t.neighbors[cell][i]
}

// Degree returns the number of neighbours of a cell.
func (t *Topology) Degree(cell int) int {
	if cell < 0 || cell >= t.numCells {
		return 0
	}
	return len(t.neighbors[cell])
}

// AreNeighbors reports whether two cells share a border.
func (t *Topology) AreNeighbors(a, b int) bool {
	if a < 0 || a >= t.numCells || b < 0 || b >= t.numCells {
		return false
	}
	for _, nb := range t.neighbors[a] {
		if nb == b {
			return true
		}
	}
	return false
}

// Validate checks that the neighbour relation is symmetric and free of
// self-loops.
func (t *Topology) Validate() error {
	for c := 0; c < t.numCells; c++ {
		for _, nb := range t.neighbors[c] {
			if nb == c {
				return fmt.Errorf("%w: cell %d lists itself as neighbour", ErrInvalidTopology, c)
			}
			if nb < 0 || nb >= t.numCells {
				return fmt.Errorf("%w: cell %d lists out-of-range neighbour %d", ErrInvalidTopology, c, nb)
			}
			if !t.AreNeighbors(nb, c) {
				return fmt.Errorf("%w: neighbour relation %d -> %d is not symmetric", ErrInvalidTopology, c, nb)
			}
		}
	}
	return nil
}

// Distances returns the hop distance from the given cell to every cell of
// the cluster, computed by breadth-first search over the neighbour relation.
// On the wrap-around hex rings this is the hexagonal (toroidal) cell
// distance. It returns nil for out-of-range cells.
func (t *Topology) Distances(from int) []int {
	if from < 0 || from >= t.numCells {
		return nil
	}
	dist := make([]int, t.numCells)
	for i := range dist {
		dist[i] = -1
	}
	dist[from] = 0
	queue := []int{from}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, nb := range t.neighbors[c] {
			if dist[nb] < 0 {
				dist[nb] = dist[c] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// Distance returns the hop distance between two cells, or -1 when either
// cell is out of range or no path connects them.
func (t *Topology) Distance(a, b int) int {
	d := t.Distances(a)
	if d == nil || b < 0 || b >= t.numCells {
		return -1
	}
	return d[b]
}

// Eccentricity returns the largest hop distance from the given cell to any
// cell of the cluster, or -1 when the cell is out of range or the cluster is
// disconnected.
func (t *Topology) Eccentricity(from int) int {
	max := -1
	for _, d := range t.Distances(from) {
		if d < 0 {
			return -1
		}
		if d > max {
			max = d
		}
	}
	return max
}

// AxisDistances returns, for every cell of the cluster, the hex distance from
// the lattice line through the given cell along one of the three hexagonal
// axes (axis in [0, NumHexAxes)) — the "corridor" of a highway scenario. The
// distance is measured in the flat hex embedding of the layout, not through
// the wrap-around closure, so the corridor is a single straight row of cells
// and the contrast between corridor and off-corridor cells is preserved on
// the toroidal rings. It returns nil when the topology carries no hex
// embedding (plain rings) or the cell or axis is out of range.
func (t *Topology) AxisDistances(through, axis int) []int {
	if t.coords == nil || through < 0 || through >= t.numCells || axis < 0 || axis >= NumHexAxes {
		return nil
	}
	center := t.coords[through]
	out := make([]int, t.numCells)
	for i, c := range t.coords {
		q, r := c.q-center.q, c.r-center.r
		// The perpendicular hex distance from the line through the origin
		// along lattice direction d is the absolute value of the cube
		// coordinate d leaves unchanged: axis 0 runs along (1, 0) (constant
		// r), axis 1 along (0, 1) (constant q), axis 2 along (1, -1)
		// (constant q+r).
		switch axis {
		case 0:
			out[i] = abs(r)
		case 1:
			out[i] = abs(q)
		default:
			out[i] = abs(q + r)
		}
	}
	return out
}

// HandoverTarget returns the cell a user in the given cell hands over to,
// selected by the provided picker function (typically a uniform random index
// in [0, Degree(cell))). It returns -1 for out-of-range cells.
func (t *Topology) HandoverTarget(cell int, pick func(n int) int) int {
	if cell < 0 || cell >= t.numCells || len(t.neighbors[cell]) == 0 {
		return -1
	}
	idx := pick(len(t.neighbors[cell]))
	if idx < 0 || idx >= len(t.neighbors[cell]) {
		idx = 0
	}
	return t.neighbors[cell][idx]
}
