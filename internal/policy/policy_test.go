package policy

import (
	"errors"
	"strings"
	"testing"
)

// TestValidateErrorPaths sweeps the configuration error paths with one table
// entry per defect, asserting both that the error wraps ErrInvalidPolicy (so
// callers can errors.Is it) and that the message names the specific defect —
// mirroring the scenario JSON error-path suite.
func TestValidateErrorPaths(t *testing.T) {
	const channels = 19 // the default plan's 20 channels minus 1 reserved PDCH
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the specific wrapped error
	}{
		{"unknown kind", Config{Kind: Kind(42)}, "unknown policy kind 42"},
		{"negative guard", Config{Kind: GuardChannels, Guard: -1}, "negative guard channels -1"},
		{"guard equals channels", Config{Kind: GuardChannels, Guard: channels},
			"guard channels 19 must leave a channel"},
		{"guard above channels", Config{Kind: GuardChannels, Guard: channels + 5},
			"guard channels 24 must leave a channel"},
		{"zero queue capacity", Config{Kind: QueuedHandovers, QueueDeadlineSec: 5},
			"queue capacity 0"},
		{"negative queue capacity", Config{Kind: QueuedHandovers, QueueCapacity: -3, QueueDeadlineSec: 5},
			"queue capacity -3"},
		{"zero deadline", Config{Kind: QueuedHandovers, QueueCapacity: 4},
			"queue deadline 0 s"},
		{"negative deadline", Config{Kind: QueuedHandovers, QueueCapacity: 4, QueueDeadlineSec: -1},
			"queue deadline -1 s"},
		{"guard set on none", Config{Kind: None, Guard: 2}, `guard channels 2 set for policy "none"`},
		{"guard set on retry", Config{Kind: DirectedRetry, Guard: 2}, `guard channels 2 set for policy "retry"`},
		{"queue capacity set on guard", Config{Kind: GuardChannels, Guard: 1, QueueCapacity: 4},
			`queue capacity 4 set for policy "guard"`},
		{"deadline set on retry", Config{Kind: DirectedRetry, QueueDeadlineSec: 5},
			`queue deadline 5 s set for policy "retry"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate(channels)
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.cfg)
			}
			if !errors.Is(err, ErrInvalidPolicy) {
				t.Errorf("error does not wrap ErrInvalidPolicy: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the defect (want substring %q)", err, tc.want)
			}
		})
	}
}

// TestValidateAccepts pins the valid configurations, including the
// channel-count-unknown form (gsmChannels = 0) the scenario layer uses.
func TestValidateAccepts(t *testing.T) {
	cases := []struct {
		name     string
		cfg      Config
		channels int
	}{
		{"zero value", Config{}, 19},
		{"none", Config{Kind: None}, 19},
		{"guard", Config{Kind: GuardChannels, Guard: 2}, 19},
		{"zero guard", Config{Kind: GuardChannels}, 19},
		{"guard without channel bound", Config{Kind: GuardChannels, Guard: 100}, 0},
		{"queue", Config{Kind: QueuedHandovers, QueueCapacity: 4, QueueDeadlineSec: 5}, 19},
		{"retry", Config{Kind: DirectedRetry}, 19},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(tc.channels); err != nil {
				t.Errorf("Validate rejected %+v: %v", tc.cfg, err)
			}
		})
	}
}

// TestParseRoundTrip checks Parse against every canonical name and pins the
// unknown-name error.
func TestParseRoundTrip(t *testing.T) {
	for _, k := range []Kind{None, GuardChannels, QueuedHandovers, DirectedRetry} {
		got, err := Parse(k.String())
		if err != nil {
			t.Errorf("Parse(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("Parse(%q) = %v, want %v", k.String(), got, k)
		}
	}
	_, err := Parse("roundrobin")
	if err == nil {
		t.Fatal("Parse accepted an unknown policy name")
	}
	if !errors.Is(err, ErrInvalidPolicy) {
		t.Errorf("error does not wrap ErrInvalidPolicy: %v", err)
	}
	if !strings.Contains(err.Error(), `unknown policy name "roundrobin"`) {
		t.Errorf("error %q does not name the defect", err)
	}
	if got := len(Names()); got != 4 {
		t.Errorf("Names() lists %d policies, want 4", got)
	}
}
