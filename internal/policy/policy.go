// Package policy defines the pluggable admission/handover policies of the
// multi-cell GPRS simulator. The paper's model admits every fresh call and
// every handover alike whenever a traffic channel is free; classic GSM
// network design asks sharper questions — should handovers be protected from
// fresh-call load, and what happens to a handover that finds the target cell
// full? This package names the three textbook answers:
//
//   - GuardChannels reserves g of the C voice channels for handover
//     arrivals: fresh calls are blocked once C-g channels are busy, while
//     handovers may fill the cell completely. The scheme has a closed-form
//     birth-death solution (erlang.GuardB), which the test suite uses as a
//     correctness oracle against the simulator.
//
//   - QueuedHandovers parks a voice handover that finds the target cell full
//     in a bounded per-cell FIFO instead of dropping it. The head of the
//     queue is served as soon as a channel frees; an entry whose deadline
//     passes — or whose call would have completed anyway — expires and counts
//     as a handover failure.
//
//   - DirectedRetry forwards a failed handover (voice or session) once
//     towards the source cell's next neighbour in deterministic order; a
//     second failure drops the user.
//
// # Determinism contract
//
// Policies are pure admission rules: no policy consumes a random draw, so a
// nil policy configuration is bit-identical to the historic engines (pinned
// by the golden-digest suite of internal/sim), and every policy is
// implemented identically in the serial and the sharded engine — the
// directed-retry forward travels as an ordinary handover message under the
// same conservative-window lookahead, so cross-engine bit-identity holds for
// every policy.
package policy

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidPolicy is returned for malformed policy configurations.
var ErrInvalidPolicy = errors.New("policy: invalid policy")

// Kind selects the admission/handover policy of a run.
type Kind int

const (
	// None is the paper's default: fresh calls and handovers share the C
	// voice channels and a handover finding the cell full is dropped.
	None Kind = iota
	// GuardChannels reserves Config.Guard voice channels for handovers.
	GuardChannels
	// QueuedHandovers queues blocked voice handovers per cell, bounded by
	// Config.QueueCapacity and Config.QueueDeadlineSec.
	QueuedHandovers
	// DirectedRetry retries a failed handover once towards the source cell's
	// next neighbour in deterministic order.
	DirectedRetry
)

// String returns the canonical policy name, the inverse of Parse.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case GuardChannels:
		return "guard"
	case QueuedHandovers:
		return "queue"
	case DirectedRetry:
		return "retry"
	default:
		return fmt.Sprintf("policy(%d)", int(k))
	}
}

// Names returns the policy names Parse accepts, in Kind order.
func Names() []string {
	return []string{None.String(), GuardChannels.String(), QueuedHandovers.String(), DirectedRetry.String()}
}

// Parse resolves a policy name (as accepted by the -policy CLI flag and the
// scenario JSON form) to its Kind.
func Parse(name string) (Kind, error) {
	for _, k := range []Kind{None, GuardChannels, QueuedHandovers, DirectedRetry} {
		if name == k.String() {
			return k, nil
		}
	}
	return None, fmt.Errorf("%w: unknown policy name %q (known: %v)", ErrInvalidPolicy, name, Names())
}

// Config parameterizes the admission/handover policy of a run. The zero
// value is the None policy; parameters of the other kinds must be zero
// unless that kind is selected, so a typo'd configuration fails validation
// instead of being silently ignored.
type Config struct {
	// Kind selects the policy.
	Kind Kind
	// Guard is the number of voice channels reserved for handover arrivals
	// (GuardChannels only). It must be non-negative and leave at least one
	// channel for fresh calls.
	Guard int
	// QueueCapacity bounds the per-cell handover queue (QueuedHandovers
	// only). It must be at least 1.
	QueueCapacity int
	// QueueDeadlineSec is the maximum time a queued handover waits for a
	// channel before expiring as a failure (QueuedHandovers only). It must be
	// positive and finite.
	QueueDeadlineSec float64
}

// Validate reports whether the configuration is well formed. gsmChannels is
// the number of voice channels of the cell the policy applies to (used to
// bound the guard reservation); callers that cannot know it yet — the
// scenario layer validates specs before a channel plan exists — pass 0 to
// skip the channel-dependent check.
func (c Config) Validate(gsmChannels int) error {
	switch c.Kind {
	case None, GuardChannels, QueuedHandovers, DirectedRetry:
	default:
		return fmt.Errorf("%w: unknown policy kind %d", ErrInvalidPolicy, int(c.Kind))
	}
	if c.Kind != GuardChannels && c.Guard != 0 {
		return fmt.Errorf("%w: guard channels %d set for policy %q", ErrInvalidPolicy, c.Guard, c.Kind)
	}
	if c.Kind != QueuedHandovers {
		if c.QueueCapacity != 0 {
			return fmt.Errorf("%w: queue capacity %d set for policy %q", ErrInvalidPolicy, c.QueueCapacity, c.Kind)
		}
		if c.QueueDeadlineSec != 0 {
			return fmt.Errorf("%w: queue deadline %v s set for policy %q", ErrInvalidPolicy, c.QueueDeadlineSec, c.Kind)
		}
	}
	switch c.Kind {
	case GuardChannels:
		if c.Guard < 0 {
			return fmt.Errorf("%w: negative guard channels %d", ErrInvalidPolicy, c.Guard)
		}
		if gsmChannels > 0 && c.Guard >= gsmChannels {
			return fmt.Errorf("%w: guard channels %d must leave a channel for fresh calls (cell has %d voice channels)",
				ErrInvalidPolicy, c.Guard, gsmChannels)
		}
	case QueuedHandovers:
		if c.QueueCapacity < 1 {
			return fmt.Errorf("%w: queue capacity %d (want >= 1)", ErrInvalidPolicy, c.QueueCapacity)
		}
		if c.QueueDeadlineSec <= 0 || math.IsNaN(c.QueueDeadlineSec) || math.IsInf(c.QueueDeadlineSec, 0) {
			return fmt.Errorf("%w: queue deadline %v s (want positive and finite)", ErrInvalidPolicy, c.QueueDeadlineSec)
		}
	}
	return nil
}
