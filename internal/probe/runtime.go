package probe

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Runtime is the wall-clock metrics registry of the process: monotonic
// counters and gauges every layer of the engine stack publishes while work
// is in flight — events executed, shard windows and barrier cost, event-pool
// reuse, replication progress and adaptive-stop state. All fields are
// atomics, updated at coarse boundaries (batch ends, window barriers,
// replication completions) so the event hot path never touches them, and
// publishing never allocates. The package-level Default registry feeds the
// expvar snapshot served by ServeTelemetry.
type Runtime struct {
	// EventsProcessed counts simulation events executed across all runs,
	// published at batch and probe-window boundaries.
	EventsProcessed atomic.Uint64
	// RunsStarted and RunsCompleted count single simulator runs (one
	// replication is one run).
	RunsStarted, RunsCompleted atomic.Uint64

	// ReplicationsPlanned and ReplicationsDone track the replication
	// runner's progress; Planned grows with adaptive batches.
	ReplicationsPlanned, ReplicationsDone atomic.Uint64
	// AdaptiveRelHW holds the latest realized relative confidence
	// half-width of an adaptive run's target measure, as math.Float64bits.
	AdaptiveRelHW atomic.Uint64
	// AdaptiveConverged is 1 when the latest adaptive run met its precision
	// target, 0 otherwise.
	AdaptiveConverged atomic.Uint64

	// WindowsAdvanced and MessagesMerged count the sharded engine's
	// synchronization windows and barrier-merged messages.
	WindowsAdvanced, MessagesMerged atomic.Uint64
	// WindowNanos, AdvanceNanos and BarrierWaitNanos decompose the sharded
	// engine's wall time: WindowNanos is total wall time per window
	// (dispatch through barrier), AdvanceNanos the sum of per-shard advance
	// work, and BarrierWaitNanos the sum over shards of (window wall time -
	// that shard's advance time) — the idle-plus-merge cost the lookahead
	// barrier imposes.
	WindowNanos, AdvanceNanos, BarrierWaitNanos atomic.Uint64

	// PoolHits and PoolMisses count event-record freelist reuse versus
	// fresh allocations across all calendars, published at run end.
	PoolHits, PoolMisses atomic.Uint64
	// FreeEvents is a gauge: the pooled (recycled, reusable) event records
	// of the most recently completed run's calendars.
	FreeEvents atomic.Uint64

	// mu guards groupEvents, the registry's only non-scalar field; it is
	// written once per completed sharded run, never on the event hot path.
	mu sync.Mutex
	// groupEvents is a latest-run gauge like FreeEvents: the per-group
	// processed-event counts of the most recently completed sharded run,
	// indexed by partition group. Empty until a sharded run completes.
	groupEvents []uint64

	start time.Time
}

// Default is the process-wide registry the engine layers publish into and
// the telemetry endpoint serves.
var Default = NewRuntime()

// NewRuntime returns a registry with its rate origin set to now.
func NewRuntime() *Runtime {
	return &Runtime{start: time.Now()}
}

// SetAdaptive records the outcome of an adaptive-replication evaluation.
func (r *Runtime) SetAdaptive(relHalfWidth float64, converged bool) {
	r.AdaptiveRelHW.Store(math.Float64bits(relHalfWidth))
	var c uint64
	if converged {
		c = 1
	}
	r.AdaptiveConverged.Store(c)
}

// SetGroupEvents records the per-group processed-event counts of the most
// recently completed sharded run (a latest-run gauge, like FreeEvents). The
// slice is copied.
func (r *Runtime) SetGroupEvents(counts []uint64) {
	copied := append([]uint64(nil), counts...)
	r.mu.Lock()
	r.groupEvents = copied
	r.mu.Unlock()
}

// GroupEvents returns a copy of the latest sharded run's per-group event
// counts, or nil when no sharded run has completed.
func (r *Runtime) GroupEvents() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.groupEvents == nil {
		return nil
	}
	return append([]uint64(nil), r.groupEvents...)
}

// Snapshot is a point-in-time copy of a Runtime registry with derived rates,
// shaped for JSON (the expvar endpoint serves one per scrape).
type Snapshot struct {
	UptimeSec           float64 `json:"uptime_sec"`
	EventsProcessed     uint64  `json:"events_processed"`
	EventsPerSec        float64 `json:"events_per_sec"`
	RunsStarted         uint64  `json:"runs_started"`
	RunsCompleted       uint64  `json:"runs_completed"`
	ReplicationsPlanned uint64  `json:"replications_planned"`
	ReplicationsDone    uint64  `json:"replications_done"`
	AdaptiveRelHW       float64 `json:"adaptive_rel_half_width"`
	AdaptiveConverged   bool    `json:"adaptive_converged"`
	WindowsAdvanced     uint64  `json:"windows_advanced"`
	MessagesMerged      uint64  `json:"messages_merged"`
	WindowNanos         uint64  `json:"window_nanos"`
	AdvanceNanos        uint64  `json:"advance_nanos"`
	BarrierWaitNanos    uint64  `json:"barrier_wait_nanos"`
	// BarrierWaitFrac is BarrierWaitNanos relative to the total per-shard
	// window time — the fraction of shard wall time lost to the barrier.
	BarrierWaitFrac float64 `json:"barrier_wait_frac"`
	PoolHits        uint64  `json:"pool_hits"`
	PoolMisses      uint64  `json:"pool_misses"`
	// PoolHitRate is PoolHits / (PoolHits + PoolMisses).
	PoolHitRate float64 `json:"pool_hit_rate"`
	FreeEvents  uint64  `json:"free_events"`
	// GroupEvents is the per-partition-group event breakdown of the most
	// recently completed sharded run; absent until one completes.
	GroupEvents []uint64 `json:"group_events,omitempty"`
}

// Snapshot captures the registry with derived rates.
func (r *Runtime) Snapshot() Snapshot {
	s := Snapshot{
		UptimeSec:           time.Since(r.start).Seconds(),
		EventsProcessed:     r.EventsProcessed.Load(),
		RunsStarted:         r.RunsStarted.Load(),
		RunsCompleted:       r.RunsCompleted.Load(),
		ReplicationsPlanned: r.ReplicationsPlanned.Load(),
		ReplicationsDone:    r.ReplicationsDone.Load(),
		AdaptiveRelHW:       math.Float64frombits(r.AdaptiveRelHW.Load()),
		AdaptiveConverged:   r.AdaptiveConverged.Load() == 1,
		WindowsAdvanced:     r.WindowsAdvanced.Load(),
		MessagesMerged:      r.MessagesMerged.Load(),
		WindowNanos:         r.WindowNanos.Load(),
		AdvanceNanos:        r.AdvanceNanos.Load(),
		BarrierWaitNanos:    r.BarrierWaitNanos.Load(),
		PoolHits:            r.PoolHits.Load(),
		PoolMisses:          r.PoolMisses.Load(),
		FreeEvents:          r.FreeEvents.Load(),
		GroupEvents:         r.GroupEvents(),
	}
	if s.UptimeSec > 0 {
		s.EventsPerSec = float64(s.EventsProcessed) / s.UptimeSec
	}
	if total := s.AdvanceNanos + s.BarrierWaitNanos; total > 0 {
		s.BarrierWaitFrac = float64(s.BarrierWaitNanos) / float64(total)
	}
	if total := s.PoolHits + s.PoolMisses; total > 0 {
		s.PoolHitRate = float64(s.PoolHits) / float64(total)
	}
	return s
}
