package probe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/traffic"
)

// CSVHeader is the column layout of WriteCSV: one row per (window, cell).
// Columns named *_cum are cumulative since the measurement start (counters
// telescope exactly back to the terminal PerCell totals; the mean gauges are
// cumulative time-weighted averages, so the last row reproduces the terminal
// aggregates). Columns named window_* are per-window: deltas of the
// cumulative counters, the packet loss fraction of the window, and the
// delivered bit rate over the window length.
const CSVHeader = "time_sec,cell," +
	"offered_cum,lost_cum,delivered_cum,delay_sum_cum_sec," +
	"gsm_arrivals_cum,gsm_blocked_cum,gprs_arrivals_cum,gprs_blocked_cum," +
	"ho_in_cum,ho_out_cum,ho_arrivals_cum,ho_failures_cum," +
	"ho_guard_blocked_cum,ho_queued_cum,ho_queue_served_cum,ho_queue_expired_cum,ho_retries_cum,ho_transit_ends_cum," +
	"queue_len,voice_calls,sessions," +
	"carried_data_cum,mean_queue_cum,carried_voice_cum,avg_sessions_cum," +
	"window_offered,window_lost,window_delivered,window_plp,window_throughput_bits"

// fmtFloat renders a float through its shortest representation that parses
// back to exactly the same bits, so CSV round-trips are lossless.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// windowRates derives the per-window packet loss fraction and delivered bit
// rate of cell c at window k from the cumulative counters.
func windowRates(s *Series, c *CellSeries, k int) (offered, lost, delivered int64, plp, throughput float64) {
	offered, lost, delivered = c.PacketsOffered[k], c.PacketsLost[k], c.PacketsDelivered[k]
	start := s.StartSec
	if k > 0 {
		offered -= c.PacketsOffered[k-1]
		lost -= c.PacketsLost[k-1]
		delivered -= c.PacketsDelivered[k-1]
		start = s.Times[k-1]
	}
	if offered > 0 {
		plp = float64(lost) / float64(offered)
	}
	if dt := s.Times[k] - start; dt > 0 {
		throughput = float64(delivered) * float64(traffic.PacketSizeBits) / dt
	}
	return offered, lost, delivered, plp, throughput
}

// WriteCSV renders the series as CSV (see CSVHeader), one row per
// (window, cell), windows outermost.
func WriteCSV(w io.Writer, s *Series) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, CSVHeader)
	for k := range s.Times {
		for i := range s.Cells {
			c := &s.Cells[i]
			wOff, wLost, wDel, plp, tput := windowRates(s, c, k)
			fmt.Fprintf(bw, "%s,%d,%d,%d,%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%s,%s,%s,%d,%d,%d,%s,%s\n",
				fmtFloat(s.Times[k]), c.Cell,
				c.PacketsOffered[k], c.PacketsLost[k], c.PacketsDelivered[k], fmtFloat(c.DelaySumSec[k]),
				c.GSMArrivals[k], c.GSMBlocked[k], c.GPRSArrivals[k], c.GPRSBlocked[k],
				c.HandoversIn[k], c.HandoversOut[k], c.HandoverArrivals[k], c.HandoverFailures[k],
				c.GuardBlocked[k], c.Queued[k], c.QueueServed[k], c.QueueExpired[k], c.Retries[k], c.TransitEnds[k],
				c.QueueLen[k], c.VoiceCalls[k], c.Sessions[k],
				fmtFloat(c.CarriedData[k]), fmtFloat(c.MeanQueueLen[k]),
				fmtFloat(c.CarriedVoice[k]), fmtFloat(c.AvgSessions[k]),
				wOff, wLost, wDel, fmtFloat(plp), fmtFloat(tput))
		}
	}
	return bw.Flush()
}

// jsonCell is the per-cell payload of one WriteJSONL record.
type jsonCell struct {
	Cell             int     `json:"cell"`
	Offered          int64   `json:"offered_cum"`
	Lost             int64   `json:"lost_cum"`
	Delivered        int64   `json:"delivered_cum"`
	DelaySumSec      float64 `json:"delay_sum_cum_sec"`
	GSMArrivals      int64   `json:"gsm_arrivals_cum"`
	GSMBlocked       int64   `json:"gsm_blocked_cum"`
	GPRSArrivals     int64   `json:"gprs_arrivals_cum"`
	GPRSBlocked      int64   `json:"gprs_blocked_cum"`
	HandoversIn      int64   `json:"ho_in_cum"`
	HandoversOut     int64   `json:"ho_out_cum"`
	HandoverArrivals int64   `json:"ho_arrivals_cum"`
	HandoverFailures int64   `json:"ho_failures_cum"`
	GuardBlocked     int64   `json:"ho_guard_blocked_cum"`
	Queued           int64   `json:"ho_queued_cum"`
	QueueServed      int64   `json:"ho_queue_served_cum"`
	QueueExpired     int64   `json:"ho_queue_expired_cum"`
	Retries          int64   `json:"ho_retries_cum"`
	TransitEnds      int64   `json:"ho_transit_ends_cum"`
	QueueLen         int     `json:"queue_len"`
	VoiceCalls       int     `json:"voice_calls"`
	Sessions         int     `json:"sessions"`
	CarriedData      float64 `json:"carried_data_cum"`
	MeanQueueLen     float64 `json:"mean_queue_cum"`
	CarriedVoice     float64 `json:"carried_voice_cum"`
	AvgSessions      float64 `json:"avg_sessions_cum"`
	WindowPLP        float64 `json:"window_plp"`
	WindowThroughput float64 `json:"window_throughput_bits"`
}

// jsonWindow is one WriteJSONL record: a window-end timestamp plus every
// cell's sample.
type jsonWindow struct {
	TimeSec float64    `json:"time_sec"`
	Cells   []jsonCell `json:"cells"`
}

// WriteJSONL renders the series as JSON Lines: one object per window
// carrying every cell's sample, with the same cumulative/window semantics as
// the CSV columns.
func WriteJSONL(w io.Writer, s *Series) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	cells := make([]jsonCell, len(s.Cells))
	for k := range s.Times {
		for i := range s.Cells {
			c := &s.Cells[i]
			_, _, _, plp, tput := windowRates(s, c, k)
			cells[i] = jsonCell{
				Cell:             c.Cell,
				Offered:          c.PacketsOffered[k],
				Lost:             c.PacketsLost[k],
				Delivered:        c.PacketsDelivered[k],
				DelaySumSec:      c.DelaySumSec[k],
				GSMArrivals:      c.GSMArrivals[k],
				GSMBlocked:       c.GSMBlocked[k],
				GPRSArrivals:     c.GPRSArrivals[k],
				GPRSBlocked:      c.GPRSBlocked[k],
				HandoversIn:      c.HandoversIn[k],
				HandoversOut:     c.HandoversOut[k],
				HandoverArrivals: c.HandoverArrivals[k],
				HandoverFailures: c.HandoverFailures[k],
				GuardBlocked:     c.GuardBlocked[k],
				Queued:           c.Queued[k],
				QueueServed:      c.QueueServed[k],
				QueueExpired:     c.QueueExpired[k],
				Retries:          c.Retries[k],
				TransitEnds:      c.TransitEnds[k],
				QueueLen:         c.QueueLen[k],
				VoiceCalls:       c.VoiceCalls[k],
				Sessions:         c.Sessions[k],
				CarriedData:      c.CarriedData[k],
				MeanQueueLen:     c.MeanQueueLen[k],
				CarriedVoice:     c.CarriedVoice[k],
				AvgSessions:      c.AvgSessions[k],
				WindowPLP:        plp,
				WindowThroughput: tput,
			}
		}
		if err := enc.Encode(jsonWindow{TimeSec: s.Times[k], Cells: cells}); err != nil {
			return err
		}
	}
	return bw.Flush()
}
