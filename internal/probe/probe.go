// Package probe is the in-run instrumentation layer of the repository: it
// defines the deterministic sim-time series the engines can record while a
// run is in flight (Spec, Series), the wall-clock runtime metrics every
// layer publishes through atomic counters (Runtime), and the live telemetry
// endpoint serving net/http/pprof and expvar snapshots (ServeTelemetry).
//
// # Determinism contract
//
// Arming a probe must never change a single bit of any simulation result.
// Three mechanisms combine to guarantee this, mirroring the engine
// contracts of internal/shard and internal/des:
//
//   - No model events, no model draws: sampling schedules nothing on any
//     event calendar and draws nothing from any random variate stream. The
//     measurement loop of internal/sim advances the engines to the probe
//     window boundaries between batch boundaries — a pure repartitioning of
//     the advance targets, which both engines execute identically (the
//     serial calendar pops the same total order either way; the sharded
//     engine's conservative windows deliver the same messages in the same
//     merged order).
//
//   - Shadow accumulators: the windowed time averages come from probe-owned
//     copies of the per-cell time-weighted statistics, updated alongside
//     the model's own accumulators. The model accumulators are never read
//     mid-run — reading them would advance their internal integrals and
//     change the float accumulation sequence of the terminal aggregates by
//     ulps (stats.TimeWeighted.Mean mutates; the probes use the
//     non-mutating MeanAt on their shadows instead).
//
//   - Out-of-band results: the recorded Series travels next to sim.Results,
//     never inside it, so golden result digests are bit-identical with
//     probes armed or disarmed. TestGoldenResultDigests pins this for every
//     scenario preset x engine x event-queue x shard-count combination.
//
// The armed sampler path is allocation-free: every series buffer is
// preallocated to its full window capacity when the probe is armed (once per
// run), and sampling appends into that capacity. The allocation pins of
// internal/sim hold the armed path to the same <= 0.001 allocs/event budget
// as the bare engines.
package probe

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidSpec is returned for malformed probe specifications.
var ErrInvalidSpec = errors.New("probe: invalid spec")

// maxWindows bounds the preallocated series capacity per run; a spec whose
// interval would produce more windows is rejected at validation time rather
// than silently truncated or allowed to exhaust memory.
const maxWindows = 1 << 20

// Spec configures the sim-time series probe of one run: the engines sample
// every cell at fixed sim-time window boundaries of IntervalSec, recording
// counters cumulative since the measurement start plus instantaneous and
// time-averaged gauges. The final window is clamped to the measurement end,
// so the last sample always coincides with the terminal aggregates.
type Spec struct {
	// IntervalSec is the sampling window length in simulated seconds. It
	// must be positive and finite.
	IntervalSec float64
}

// Validate reports whether the spec is well formed for a run measuring
// measurementSec simulated seconds.
func (s Spec) Validate(measurementSec float64) error {
	if s.IntervalSec <= 0 || math.IsNaN(s.IntervalSec) || math.IsInf(s.IntervalSec, 0) {
		return fmt.Errorf("%w: interval %v s", ErrInvalidSpec, s.IntervalSec)
	}
	if measurementSec > 0 && measurementSec/s.IntervalSec > maxWindows {
		return fmt.Errorf("%w: interval %v s over %v s yields more than %d windows",
			ErrInvalidSpec, s.IntervalSec, measurementSec, maxWindows)
	}
	return nil
}

// Windows returns the preallocation capacity for a run measuring
// measurementSec simulated seconds: the regular windows plus one clamped
// final window.
func (s Spec) Windows(measurementSec float64) int {
	return int(measurementSec/s.IntervalSec) + 2
}

// Series is the recorded sim-time series of one run: one sample per window
// boundary, for every cell of the cluster. Counters are cumulative since the
// measurement start (per-window deltas telescope exactly back to the
// terminal totals); the time-averaged gauges are cumulative means over
// [StartSec, Times[k]], so the final sample of every counter and (non-mid)
// gauge reproduces the corresponding terminal PerCell aggregate bit for bit.
type Series struct {
	// IntervalSec is the nominal window length the series was sampled at.
	IntervalSec float64
	// StartSec is the measurement start (end of the warm-up) in simulated
	// seconds; the first window covers [StartSec, Times[0]].
	StartSec float64
	// Times holds the window-end sample times in simulated seconds. The last
	// entry is the measurement end exactly.
	Times []float64
	// Cells holds one series per cell, indexed by cell id.
	Cells []CellSeries
}

// Windows returns the number of recorded windows.
func (s *Series) Windows() int { return len(s.Times) }

// CellSeries is the per-cell slice of a Series: every field is indexed like
// Series.Times. Counter fields are cumulative since the measurement start;
// QueueLen, VoiceCalls and Sessions are instantaneous values at the window
// end; the four mean gauges are cumulative time-weighted averages over
// [Series.StartSec, window end].
type CellSeries struct {
	// Cell is the cell id.
	Cell int

	// PacketsOffered, PacketsLost and PacketsDelivered are the cumulative
	// BSC buffer counters.
	PacketsOffered, PacketsLost, PacketsDelivered []int64
	// DelaySumSec is the cumulative queueing delay of delivered packets.
	DelaySumSec []float64
	// GSMArrivals, GSMBlocked, GPRSArrivals and GPRSBlocked are the
	// cumulative fresh-arrival and blocking counters.
	GSMArrivals, GSMBlocked, GPRSArrivals, GPRSBlocked []int64
	// HandoversIn, HandoversOut, HandoverArrivals and HandoverFailures are
	// the cumulative handover-flow counters.
	HandoversIn, HandoversOut, HandoverArrivals, HandoverFailures []int64
	// GuardBlocked, Queued, QueueServed, QueueExpired, Retries and
	// TransitEnds are the cumulative admission-policy counters (see
	// sim.CellMeasures: GuardBlockedCalls, HandoversQueued,
	// HandoverQueueServed, HandoverQueueExpired, HandoverRetries,
	// HandoverTransitEnds).
	GuardBlocked, Queued, QueueServed, QueueExpired, Retries, TransitEnds []int64

	// QueueLen, VoiceCalls and Sessions are instantaneous occupancy gauges
	// at the window end.
	QueueLen, VoiceCalls, Sessions []int

	// CarriedData, MeanQueueLen, CarriedVoice and AvgSessions are the
	// cumulative time-weighted means of PDCH usage, buffer occupancy, busy
	// voice channels and active sessions.
	CarriedData, MeanQueueLen, CarriedVoice, AvgSessions []float64
}

// NewSeries allocates a series for the given cell count with every buffer
// preallocated to capacity windows, so recording samples never allocates.
func NewSeries(cells int, intervalSec, startSec float64, capacity int) *Series {
	s := &Series{
		IntervalSec: intervalSec,
		StartSec:    startSec,
		Times:       make([]float64, 0, capacity),
		Cells:       make([]CellSeries, cells),
	}
	for i := range s.Cells {
		c := &s.Cells[i]
		c.Cell = i
		c.PacketsOffered = make([]int64, 0, capacity)
		c.PacketsLost = make([]int64, 0, capacity)
		c.PacketsDelivered = make([]int64, 0, capacity)
		c.DelaySumSec = make([]float64, 0, capacity)
		c.GSMArrivals = make([]int64, 0, capacity)
		c.GSMBlocked = make([]int64, 0, capacity)
		c.GPRSArrivals = make([]int64, 0, capacity)
		c.GPRSBlocked = make([]int64, 0, capacity)
		c.HandoversIn = make([]int64, 0, capacity)
		c.HandoversOut = make([]int64, 0, capacity)
		c.HandoverArrivals = make([]int64, 0, capacity)
		c.HandoverFailures = make([]int64, 0, capacity)
		c.GuardBlocked = make([]int64, 0, capacity)
		c.Queued = make([]int64, 0, capacity)
		c.QueueServed = make([]int64, 0, capacity)
		c.QueueExpired = make([]int64, 0, capacity)
		c.Retries = make([]int64, 0, capacity)
		c.TransitEnds = make([]int64, 0, capacity)
		c.QueueLen = make([]int, 0, capacity)
		c.VoiceCalls = make([]int, 0, capacity)
		c.Sessions = make([]int, 0, capacity)
		c.CarriedData = make([]float64, 0, capacity)
		c.MeanQueueLen = make([]float64, 0, capacity)
		c.CarriedVoice = make([]float64, 0, capacity)
		c.AvgSessions = make([]float64, 0, capacity)
	}
	return s
}
