package probe

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/internal/traffic"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name        string
		interval    float64
		measurement float64
		wantErr     bool
	}{
		{"valid", 10, 20000, false},
		{"valid without horizon", 10, 0, false},
		{"zero interval", 0, 20000, true},
		{"negative interval", -1, 20000, true},
		{"NaN interval", math.NaN(), 20000, true},
		{"infinite interval", math.Inf(1), 20000, true},
		{"too many windows", 1e-6, 20000, true},
		{"largest allowed window count", 20000.0 / maxWindows, 20000, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Spec{IntervalSec: c.interval}.Validate(c.measurement)
			if (err != nil) != c.wantErr {
				t.Fatalf("Validate(%v over %v) = %v, wantErr %v", c.interval, c.measurement, err, c.wantErr)
			}
			if err != nil && !strings.Contains(err.Error(), ErrInvalidSpec.Error()) {
				t.Errorf("error %v does not wrap ErrInvalidSpec", err)
			}
		})
	}
}

func TestNewSeriesPreallocation(t *testing.T) {
	spec := Spec{IntervalSec: 37.5}
	capacity := spec.Windows(600)
	if capacity < 17 {
		t.Fatalf("600 s at 37.5 s needs at least 16+1 windows of capacity, got %d", capacity)
	}
	s := NewSeries(3, spec.IntervalSec, 200, capacity)
	if s.Windows() != 0 || len(s.Cells) != 3 {
		t.Fatalf("fresh series: %d windows, %d cells", s.Windows(), len(s.Cells))
	}
	for i, c := range s.Cells {
		if c.Cell != i {
			t.Errorf("cell %d mislabeled as %d", i, c.Cell)
		}
		if cap(c.PacketsOffered) != capacity || cap(c.AvgSessions) != capacity || cap(c.QueueLen) != capacity {
			t.Errorf("cell %d: buffers not preallocated to %d", i, capacity)
		}
	}
}

func TestRuntimeSnapshotDerivedRates(t *testing.T) {
	r := NewRuntime()
	r.EventsProcessed.Add(1000)
	r.PoolHits.Add(3)
	r.PoolMisses.Add(1)
	r.AdvanceNanos.Add(60)
	r.BarrierWaitNanos.Add(40)
	r.SetAdaptive(0.042, true)
	s := r.Snapshot()
	if s.EventsProcessed != 1000 || s.UptimeSec <= 0 || s.EventsPerSec <= 0 {
		t.Errorf("throughput snapshot wrong: %+v", s)
	}
	if s.PoolHitRate != 0.75 {
		t.Errorf("pool hit rate %v, want 0.75", s.PoolHitRate)
	}
	if s.BarrierWaitFrac != 0.4 {
		t.Errorf("barrier wait fraction %v, want 0.4", s.BarrierWaitFrac)
	}
	if s.AdaptiveRelHW != 0.042 || !s.AdaptiveConverged {
		t.Errorf("adaptive state wrong: %+v", s)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot must be JSON-encodable: %v", err)
	}

	// A fresh registry must not divide by zero anywhere.
	z := NewRuntime().Snapshot()
	if z.PoolHitRate != 0 || z.BarrierWaitFrac != 0 {
		t.Errorf("zero registry produced nonzero rates: %+v", z)
	}
}

// sampleSeries builds a two-window, one-cell series with hand-picked values.
func sampleSeries() *Series {
	s := NewSeries(1, 10, 100, 4)
	s.Times = append(s.Times, 110, 120)
	c := &s.Cells[0]
	c.PacketsOffered = append(c.PacketsOffered, 4, 10)
	c.PacketsLost = append(c.PacketsLost, 0, 3)
	c.PacketsDelivered = append(c.PacketsDelivered, 2, 6)
	c.DelaySumSec = append(c.DelaySumSec, 0.5, 1.25)
	c.GSMArrivals = append(c.GSMArrivals, 1, 2)
	c.GSMBlocked = append(c.GSMBlocked, 0, 1)
	c.GPRSArrivals = append(c.GPRSArrivals, 1, 1)
	c.GPRSBlocked = append(c.GPRSBlocked, 0, 0)
	c.HandoversIn = append(c.HandoversIn, 0, 2)
	c.HandoversOut = append(c.HandoversOut, 1, 1)
	c.HandoverArrivals = append(c.HandoverArrivals, 0, 2)
	c.HandoverFailures = append(c.HandoverFailures, 0, 0)
	c.GuardBlocked = append(c.GuardBlocked, 0, 1)
	c.Queued = append(c.Queued, 0, 2)
	c.QueueServed = append(c.QueueServed, 0, 1)
	c.QueueExpired = append(c.QueueExpired, 0, 1)
	c.Retries = append(c.Retries, 0, 1)
	c.TransitEnds = append(c.TransitEnds, 0, 1)
	c.QueueLen = append(c.QueueLen, 3, 0)
	c.VoiceCalls = append(c.VoiceCalls, 5, 4)
	c.Sessions = append(c.Sessions, 1, 2)
	c.CarriedData = append(c.CarriedData, 0.5, 0.625)
	c.MeanQueueLen = append(c.MeanQueueLen, 2.5, 2.25)
	c.CarriedVoice = append(c.CarriedVoice, 5.5, 5.125)
	c.AvgSessions = append(c.AvgSessions, 1, 1.5)
	return s
}

func TestWriteCSVWindowDerivation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleSeries()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows", len(lines))
	}
	if lines[0] != CSVHeader {
		t.Errorf("header mismatch:\n%s", lines[0])
	}
	// Second window: deltas 6 offered, 3 lost, 4 delivered over 10 s.
	fields := strings.Split(lines[2], ",")
	header := strings.Split(CSVHeader, ",")
	got := map[string]string{}
	for i, name := range header {
		got[name] = fields[i]
	}
	wantTput := fmt.Sprint(4 * float64(traffic.PacketSizeBits) / 10)
	for name, want := range map[string]string{
		"time_sec":               "120",
		"cell":                   "0",
		"offered_cum":            "10",
		"window_offered":         "6",
		"window_lost":            "3",
		"window_delivered":       "4",
		"window_plp":             "0.5",
		"window_throughput_bits": wantTput,
		"carried_voice_cum":      "5.125",
		"ho_guard_blocked_cum":   "1",
		"ho_queued_cum":          "2",
		"ho_queue_served_cum":    "1",
		"ho_queue_expired_cum":   "1",
		"ho_retries_cum":         "1",
		"ho_transit_ends_cum":    "1",
	} {
		if got[name] != want {
			t.Errorf("column %s = %q, want %q", name, got[name], want)
		}
	}
}

func TestWriteJSONLWindowDerivation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleSeries()); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	var records []jsonWindow
	for {
		var w jsonWindow
		if err := dec.Decode(&w); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		records = append(records, w)
	}
	if len(records) != 2 {
		t.Fatalf("got %d records, want 2", len(records))
	}
	last := records[1]
	if last.TimeSec != 120 || len(last.Cells) != 1 {
		t.Fatalf("last record wrong: %+v", last)
	}
	c := last.Cells[0]
	if c.Offered != 10 || c.WindowPLP != 0.5 {
		t.Errorf("cumulative/window fields wrong: %+v", c)
	}
	if c.GuardBlocked != 1 || c.Queued != 2 || c.QueueServed != 1 || c.QueueExpired != 1 || c.Retries != 1 || c.TransitEnds != 1 {
		t.Errorf("policy counter fields wrong: %+v", c)
	}
	if want := 4 * float64(traffic.PacketSizeBits) / 10; c.WindowThroughput != want {
		t.Errorf("window throughput %v, want %v", c.WindowThroughput, want)
	}
}

func TestServeTelemetry(t *testing.T) {
	addr, err := ServeTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars returned %d", resp.StatusCode)
	}
	var vars struct {
		GPRS *Snapshot `json:"gprs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.GPRS == nil {
		t.Fatal("expvar page is missing the gprs snapshot")
	}
	if vars.GPRS.UptimeSec <= 0 {
		t.Errorf("snapshot looks unpopulated: %+v", vars.GPRS)
	}
	// The pprof mux must be mounted on the same endpoint.
	pp, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline returned %d", pp.StatusCode)
	}
}
