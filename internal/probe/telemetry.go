package probe

import (
	"expvar" // registers /debug/vars on http.DefaultServeMux
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on http.DefaultServeMux
	"sync"
)

var publishOnce sync.Once

// PublishExpvar registers the Default registry's snapshot under the expvar
// name "gprs". It is idempotent; ServeTelemetry calls it for you.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("gprs", expvar.Func(func() any { return Default.Snapshot() }))
	})
}

// ServeTelemetry starts the live telemetry endpoint on addr (e.g. ":6060",
// or ":0" for an ephemeral port) and returns the bound address. The endpoint
// serves the standard net/http/pprof handlers under /debug/pprof/ and the
// expvar handler under /debug/vars, whose "gprs" variable is a Snapshot of
// the Default runtime registry. The server runs on a background goroutine
// for the life of the process; telemetry is read-only observability, so
// there is no shutdown handshake.
func ServeTelemetry(addr string) (string, error) {
	PublishExpvar()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		// Serve exits only when the listener closes at process end; the
		// error is deliberately dropped — telemetry must never take the
		// simulation down.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
