package tcp

import (
	"errors"
	"math"
	"testing"
)

func newTestSender(t *testing.T) *Sender {
	t.Helper()
	s, err := NewSender(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInitialState(t *testing.T) {
	s := newTestSender(t)
	if s.Window() != 1 {
		t.Errorf("initial window = %v, want 1", s.Window())
	}
	if !s.InSlowStart() {
		t.Error("sender should start in slow start")
	}
	if s.InFlight() != 0 || s.InFastRecovery() {
		t.Error("unexpected initial state")
	}
	if s.RTO() != 3 {
		t.Errorf("initial RTO = %v, want 3", s.RTO())
	}
	if !s.CanSend() {
		t.Error("initial window of 1 should allow one segment")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSender(Config{InitialWindow: 10, MaxWindow: 2}); !errors.Is(err, ErrInvalidConfig) {
		t.Error("max window below initial window should be rejected")
	}
	if _, err := NewSender(Config{MinRTOSec: 10, MaxRTOSec: 5}); !errors.Is(err, ErrInvalidConfig) {
		t.Error("max RTO below min RTO should be rejected")
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("defaults should validate: %v", err)
	}
}

func TestSlowStartDoublesPerRTT(t *testing.T) {
	s := newTestSender(t)
	// Simulate several loss-free RTTs: send the full window, then ACK it all.
	window := 1
	for rtt := 0; rtt < 4; rtt++ {
		sent := 0
		for s.CanSend() {
			s.OnSend()
			sent++
		}
		if sent != window {
			t.Fatalf("rtt %d: sent %d segments, want %d", rtt, sent, window)
		}
		res := s.OnAck(s.NextSequence(), 0.5)
		if res.NewlyAcked != sent {
			t.Fatalf("acked %d, want %d", res.NewlyAcked, sent)
		}
		window *= 2
	}
	if got := s.Window(); got != 16 {
		t.Errorf("window after 4 loss-free RTTs = %v, want 16", got)
	}
	if !s.InSlowStart() {
		t.Error("still below ssthresh, should remain in slow start")
	}
}

func TestCongestionAvoidanceGrowsLinearly(t *testing.T) {
	s, err := NewSender(Config{InitialSSThresh: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Grow past the threshold.
	for rtt := 0; rtt < 6; rtt++ {
		sent := 0
		for s.CanSend() {
			s.OnSend()
			sent++
		}
		s.OnAck(s.NextSequence(), 0.5)
	}
	// In congestion avoidance the window grows by about one segment per RTT.
	w1 := s.Window()
	for s.CanSend() {
		s.OnSend()
	}
	s.OnAck(s.NextSequence(), 0.5)
	w2 := s.Window()
	if w2 <= w1 || w2 > w1+1.5 {
		t.Errorf("congestion avoidance growth per RTT = %v, want about 1", w2-w1)
	}
	if s.InSlowStart() {
		t.Error("should be in congestion avoidance")
	}
}

func TestWindowCap(t *testing.T) {
	s, err := NewSender(Config{MaxWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	for rtt := 0; rtt < 10; rtt++ {
		for s.CanSend() {
			s.OnSend()
		}
		s.OnAck(s.NextSequence(), 0.2)
	}
	if s.Window() > 8 {
		t.Errorf("window = %v exceeds cap 8", s.Window())
	}
}

func TestFastRetransmitOnThreeDupAcks(t *testing.T) {
	s := newTestSender(t)
	// Build up a window of 8 and fill it.
	for rtt := 0; rtt < 3; rtt++ {
		for s.CanSend() {
			s.OnSend()
		}
		s.OnAck(s.NextSequence(), 0.5)
	}
	for s.CanSend() {
		s.OnSend()
	}
	before := s.Window()
	ackPoint := s.highestAcked

	// Three duplicate ACKs (segment ackPoint lost, later segments delivered).
	var triggered bool
	for i := 0; i < 3; i++ {
		res := s.OnAck(ackPoint, 0)
		if res.FastRetransmit {
			triggered = true
			if i != 2 {
				t.Errorf("fast retransmit on dup ACK %d, want the 3rd", i+1)
			}
		}
	}
	if !triggered {
		t.Fatal("three duplicate ACKs should trigger fast retransmit")
	}
	if !s.InFastRecovery() {
		t.Error("sender should be in fast recovery")
	}
	if s.FastRecoveries() != 1 {
		t.Errorf("fast recoveries = %d, want 1", s.FastRecoveries())
	}
	if s.SlowStartThreshold() >= before {
		t.Errorf("ssthresh %v should be halved from %v", s.SlowStartThreshold(), before)
	}

	// A full cumulative ACK ends recovery and deflates the window to ssthresh.
	res := s.OnAck(s.NextSequence(), 0)
	if !res.RecoveryComplete {
		t.Error("full ACK should complete recovery")
	}
	if s.InFastRecovery() {
		t.Error("recovery should have ended")
	}
	if math.Abs(s.Window()-s.SlowStartThreshold()) > 1e-9 {
		t.Errorf("window after recovery = %v, want ssthresh %v", s.Window(), s.SlowStartThreshold())
	}
}

func TestDupAcksBelowThresholdDoNothing(t *testing.T) {
	s := newTestSender(t)
	for s.CanSend() {
		s.OnSend()
	}
	res := s.OnAck(0, 0)
	if res.FastRetransmit || res.NewlyAcked != 0 {
		t.Error("single dup ACK should not trigger anything")
	}
	if s.InFastRecovery() {
		t.Error("not yet in recovery")
	}
}

func TestTimeoutCollapsesWindowAndBacksOff(t *testing.T) {
	s := newTestSender(t)
	for rtt := 0; rtt < 4; rtt++ {
		for s.CanSend() {
			s.OnSend()
		}
		s.OnAck(s.NextSequence(), 0.5)
	}
	before := s.Window()
	rtoBefore := s.RTO()
	s.OnTimeout()
	if s.Window() != 1 {
		t.Errorf("window after timeout = %v, want 1", s.Window())
	}
	if s.SlowStartThreshold() < 2 || s.SlowStartThreshold() > before {
		t.Errorf("ssthresh after timeout = %v", s.SlowStartThreshold())
	}
	if s.RTO() <= rtoBefore {
		t.Errorf("RTO should back off exponentially: %v -> %v", rtoBefore, s.RTO())
	}
	if s.Timeouts() != 1 {
		t.Errorf("timeouts = %d, want 1", s.Timeouts())
	}
	if s.InFlight() != 0 {
		t.Errorf("in flight after timeout = %d, want 0 (go-back-N)", s.InFlight())
	}
	if !s.InSlowStart() {
		t.Error("after a timeout the sender restarts in slow start")
	}
}

func TestRTOBoundedByMinAndMax(t *testing.T) {
	s, err := NewSender(Config{MinRTOSec: 1, MaxRTOSec: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny RTT samples: RTO must not fall below the minimum.
	s.OnSend()
	s.OnAck(1, 0.01)
	if s.RTO() < 1 {
		t.Errorf("RTO = %v below minimum", s.RTO())
	}
	// Repeated timeouts: RTO must not exceed the maximum.
	for i := 0; i < 10; i++ {
		s.OnTimeout()
	}
	if s.RTO() > 8 {
		t.Errorf("RTO = %v above maximum", s.RTO())
	}
}

func TestRTTEstimation(t *testing.T) {
	s := newTestSender(t)
	s.OnSend()
	s.OnAck(1, 2.0)
	if math.Abs(s.SRTT()-2.0) > 1e-9 {
		t.Errorf("first SRTT = %v, want the sample 2.0", s.SRTT())
	}
	// Further samples move the estimate smoothly.
	s.OnSend()
	s.OnAck(2, 4.0)
	if s.SRTT() <= 2.0 || s.SRTT() >= 4.0 {
		t.Errorf("SRTT = %v, want between the samples", s.SRTT())
	}
	// RTO = SRTT + 4*RTTVAR is at least the minimum of 1 s.
	if s.RTO() < 1 {
		t.Errorf("RTO = %v", s.RTO())
	}
}

func TestOnRetransmitCountsAndReturnsOldest(t *testing.T) {
	s := newTestSender(t)
	s.OnSend()
	seq := s.OnRetransmit()
	if seq != 0 {
		t.Errorf("retransmit sequence = %d, want 0", seq)
	}
	if s.Retransmits() != 1 {
		t.Errorf("retransmits = %d, want 1", s.Retransmits())
	}
}

func TestWindowInflationDuringRecovery(t *testing.T) {
	s := newTestSender(t)
	for rtt := 0; rtt < 4; rtt++ {
		for s.CanSend() {
			s.OnSend()
		}
		s.OnAck(s.NextSequence(), 0.5)
	}
	for s.CanSend() {
		s.OnSend()
	}
	ackPoint := s.highestAcked
	for i := 0; i < 3; i++ {
		s.OnAck(ackPoint, 0)
	}
	wAfterEntry := s.Window()
	// Additional dup ACKs inflate the window by one segment each.
	s.OnAck(ackPoint, 0)
	s.OnAck(ackPoint, 0)
	if s.Window() != wAfterEntry+2 {
		t.Errorf("window inflation: %v -> %v, want +2", wAfterEntry, s.Window())
	}
}
