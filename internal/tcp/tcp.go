// Package tcp implements the sender-side TCP Reno congestion-control state
// machine used by the detailed GPRS simulator: slow start, congestion
// avoidance, fast retransmit after three duplicate acknowledgements, and
// retransmission timeouts with exponential backoff and Jacobson/Karels RTT
// estimation. The paper's simulator includes exactly these mechanisms to
// model how TCP sources react to BSC buffer overflow (Section 5.2).
//
// The model is expressed in packets (segments), matching the paper's
// network-layer abstraction of 480-byte packets.
package tcp

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidConfig is returned for out-of-range sender parameters.
var ErrInvalidConfig = errors.New("tcp: invalid configuration")

// Config parameterizes a Sender.
type Config struct {
	// InitialWindow is the initial congestion window in segments (default 1).
	InitialWindow float64
	// InitialSSThresh is the initial slow-start threshold in segments
	// (default 64).
	InitialSSThresh float64
	// MaxWindow caps the congestion window (receiver window), in segments
	// (default 64).
	MaxWindow float64
	// MinRTOSec is the lower bound of the retransmission timeout (default 1s,
	// as in common TCP implementations).
	MinRTOSec float64
	// MaxRTOSec is the upper bound of the retransmission timeout
	// (default 64 s).
	MaxRTOSec float64
	// InitialRTOSec is the RTO before the first RTT measurement (default 3s).
	InitialRTOSec float64
	// DupAckThreshold is the number of duplicate ACKs that triggers fast
	// retransmit (default 3).
	DupAckThreshold int
}

func (c Config) withDefaults() Config {
	if c.InitialWindow <= 0 {
		c.InitialWindow = 1
	}
	if c.InitialSSThresh <= 0 {
		c.InitialSSThresh = 64
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 64
	}
	if c.MinRTOSec <= 0 {
		c.MinRTOSec = 1
	}
	if c.MaxRTOSec <= 0 {
		c.MaxRTOSec = 64
	}
	if c.InitialRTOSec <= 0 {
		c.InitialRTOSec = 3
	}
	if c.DupAckThreshold <= 0 {
		c.DupAckThreshold = 3
	}
	return c
}

// Validate reports whether the configuration is consistent.
func (c Config) Validate() error {
	d := c.withDefaults()
	if d.MaxWindow < d.InitialWindow {
		return fmt.Errorf("%w: max window %v below initial window %v", ErrInvalidConfig, d.MaxWindow, d.InitialWindow)
	}
	if d.MaxRTOSec < d.MinRTOSec {
		return fmt.Errorf("%w: max RTO %v below min RTO %v", ErrInvalidConfig, d.MaxRTOSec, d.MinRTOSec)
	}
	return nil
}

// Sender is the congestion-control state of one TCP connection (one packet
// call / document download in the 3GPP traffic model).
type Sender struct {
	cfg Config

	cwnd     float64
	ssthresh float64

	// Sequence-number state (in whole segments). nextSeq is the next new
	// segment to send; highestAcked is the highest cumulative ACK received.
	nextSeq      int
	highestAcked int
	inFlight     int

	dupAcks        int
	inFastRecovery bool
	recoverSeq     int

	// RTT estimation (Jacobson/Karels).
	srtt       float64
	rttvar     float64
	rto        float64
	hasRTTMeas bool
	backoffs   int

	// Counters.
	retransmits  int
	timeouts     int
	fastRecovers int
}

// NewSender returns a sender in slow start with the configured initial
// window.
func NewSender(cfg Config) (*Sender, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	return &Sender{
		cfg:      c,
		cwnd:     c.InitialWindow,
		ssthresh: c.InitialSSThresh,
		rto:      c.InitialRTOSec,
	}, nil
}

// Reset returns the sender to the initial slow-start state NewSender would
// produce for its configuration, reusing the record. The detailed simulator
// pools connection records per cell, so a recycled sender must start its next
// transfer from exactly the state a freshly constructed one would.
func (s *Sender) Reset() {
	c := s.cfg
	*s = Sender{cfg: c, cwnd: c.InitialWindow, ssthresh: c.InitialSSThresh, rto: c.InitialRTOSec}
}

// Window returns the current congestion window in segments (at least 1).
func (s *Sender) Window() float64 { return math.Max(1, math.Min(s.cwnd, s.cfg.MaxWindow)) }

// SlowStartThreshold returns the current slow-start threshold in segments.
func (s *Sender) SlowStartThreshold() float64 { return s.ssthresh }

// InSlowStart reports whether the sender is in the slow-start phase.
func (s *Sender) InSlowStart() bool { return s.cwnd < s.ssthresh && !s.inFastRecovery }

// InFastRecovery reports whether the sender is recovering from a fast
// retransmit.
func (s *Sender) InFastRecovery() bool { return s.inFastRecovery }

// InFlight returns the number of unacknowledged segments outstanding.
func (s *Sender) InFlight() int { return s.inFlight }

// RTO returns the current retransmission timeout in seconds.
func (s *Sender) RTO() float64 { return s.rto }

// SRTT returns the smoothed round-trip time estimate (0 before the first
// measurement).
func (s *Sender) SRTT() float64 { return s.srtt }

// Retransmits returns the total number of retransmitted segments.
func (s *Sender) Retransmits() int { return s.retransmits }

// Timeouts returns the number of retransmission timeouts taken.
func (s *Sender) Timeouts() int { return s.timeouts }

// FastRecoveries returns the number of fast-retransmit episodes.
func (s *Sender) FastRecoveries() int { return s.fastRecovers }

// CanSend reports whether the window permits transmitting a new segment.
func (s *Sender) CanSend() bool {
	return float64(s.inFlight) < s.Window()
}

// NextSequence returns the sequence number the next new segment will carry.
func (s *Sender) NextSequence() int { return s.nextSeq }

// OnSend records the transmission of a new segment and returns its sequence
// number.
func (s *Sender) OnSend() int {
	seq := s.nextSeq
	s.nextSeq++
	s.inFlight++
	return seq
}

// OnRetransmit records the retransmission of the oldest unacknowledged
// segment and returns its sequence number.
func (s *Sender) OnRetransmit() int {
	s.retransmits++
	return s.highestAcked
}

// AckResult describes the sender's reaction to an acknowledgement.
type AckResult struct {
	// NewlyAcked is the number of segments cumulatively acknowledged by this
	// ACK.
	NewlyAcked int
	// FastRetransmit is true when the third duplicate ACK was received and
	// the oldest outstanding segment should be retransmitted immediately.
	FastRetransmit bool
	// RecoveryComplete is true when this ACK ended a fast-recovery episode.
	RecoveryComplete bool
}

// OnAck processes a cumulative acknowledgement for all segments below ackSeq.
// rttSample is the measured round-trip time of the newest acknowledged
// segment in seconds, or zero if the sample is invalid (e.g. for
// retransmitted segments, per Karn's algorithm).
func (s *Sender) OnAck(ackSeq int, rttSample float64) AckResult {
	var res AckResult
	if ackSeq <= s.highestAcked {
		// Duplicate ACK.
		s.dupAcks++
		if s.inFastRecovery {
			// Inflate the window by one segment per additional dup ACK.
			s.cwnd++
			return res
		}
		if s.dupAcks == s.cfg.DupAckThreshold && s.inFlight > 0 {
			// Fast retransmit / fast recovery (Reno).
			s.ssthresh = math.Max(2, s.cwnd/2)
			s.cwnd = s.ssthresh + float64(s.cfg.DupAckThreshold)
			s.inFastRecovery = true
			s.recoverSeq = s.nextSeq
			s.fastRecovers++
			res.FastRetransmit = true
		}
		return res
	}

	// New cumulative ACK.
	res.NewlyAcked = ackSeq - s.highestAcked
	s.highestAcked = ackSeq
	s.inFlight -= res.NewlyAcked
	if s.inFlight < 0 {
		s.inFlight = 0
	}
	s.dupAcks = 0
	s.backoffs = 0

	if rttSample > 0 {
		s.updateRTT(rttSample)
	}

	if s.inFastRecovery {
		if ackSeq >= s.recoverSeq {
			// Full recovery: deflate to ssthresh and resume congestion
			// avoidance.
			s.inFastRecovery = false
			s.cwnd = s.ssthresh
			res.RecoveryComplete = true
		} else {
			// Partial ACK (NewReno-style): stay in recovery.
			res.FastRetransmit = true
		}
		return res
	}

	// Window growth.
	for i := 0; i < res.NewlyAcked; i++ {
		if s.cwnd < s.ssthresh {
			s.cwnd++ // slow start: one segment per ACK
		} else {
			s.cwnd += 1 / s.cwnd // congestion avoidance: ~one segment per RTT
		}
	}
	if s.cwnd > s.cfg.MaxWindow {
		s.cwnd = s.cfg.MaxWindow
	}
	return res
}

// OnTimeout reacts to a retransmission timeout: the slow-start threshold is
// halved, the window collapses to one segment, and the RTO is doubled
// (exponential backoff). The caller should retransmit the oldest
// unacknowledged segment.
func (s *Sender) OnTimeout() {
	s.timeouts++
	s.ssthresh = math.Max(2, s.cwnd/2)
	s.cwnd = 1
	s.dupAcks = 0
	s.inFastRecovery = false
	s.backoffs++
	s.rto = math.Min(s.rto*2, s.cfg.MaxRTOSec)
	// Outstanding segments are considered lost; the simulator retransmits
	// go-back-N style from the last cumulative ACK.
	s.inFlight = 0
	s.nextSeq = s.highestAcked
}

// updateRTT applies the Jacobson/Karels estimator.
func (s *Sender) updateRTT(sample float64) {
	if !s.hasRTTMeas {
		s.srtt = sample
		s.rttvar = sample / 2
		s.hasRTTMeas = true
	} else {
		const (
			alpha = 0.125
			beta  = 0.25
		)
		s.rttvar = (1-beta)*s.rttvar + beta*math.Abs(s.srtt-sample)
		s.srtt = (1-alpha)*s.srtt + alpha*sample
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.MinRTOSec {
		s.rto = s.cfg.MinRTOSec
	}
	if s.rto > s.cfg.MaxRTOSec {
		s.rto = s.cfg.MaxRTOSec
	}
}
