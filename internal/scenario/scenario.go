// Package scenario is the declarative workload layer of the multi-cell GPRS
// simulator. The paper validates its Markov model only under a symmetric
// load — every cell of the seven-cell cluster sees the same constant
// voice-call and GPRS-session arrival rates. Real cellular load is spatially
// and temporally non-uniform, and the 19/37-cell hex-ring topologies plus the
// sharded engine exist precisely to go beyond the symmetric case; this
// package describes how.
//
// A Spec names a spatial load shape (uniform, radial hotspot with exponential
// decay by hex distance, linear gradient, corridor along a hex axis) and a
// temporal profile (constant, or a piecewise-constant step schedule such as a
// busy-hour ramp, optionally periodic). Compiling a Spec against a cluster
// topology and the baseline per-cell arrival rates yields a Profile — an
// immutable, pure per-cell rate function satisfying the sim.RateProfile
// contract, so the serial and the sharded engine remain bit-identical under
// every scenario. The uniform scenario compiles to weight 1 and scale 1
// everywhere and therefore reproduces the paper's symmetric load bit for bit.
//
// A Spec can additionally declare a mobility profile (Spec.Mobility): the
// same spatial-shape vocabulary crossed with the same temporal profiles, but
// multiplying the mean GSM/GPRS dwell times instead of the arrival rates.
// Multipliers above 1 model slow users (pedestrians lingering in a hotspot),
// below 1 fast ones (vehicles on a highway corridor); skewed dwell times skew
// the handover flow itself, which the paper's single-dwell-time model cannot
// express. Mobility compiles into a DwellProfile satisfying the
// sim.MobilityProfile contract; a uniform mobility shape with multiplier 1
// reproduces the symmetric handover flow bit for bit.
//
// A Spec can finally declare a handover admission policy (Spec.Policy):
// guard channels, queued handovers, or directed retry (see package policy).
// The policy is not compiled — it installs verbatim as sim.Config.Policy —
// but declaring it in the Spec lets a single JSON document or preset name
// carry the complete workload: load shape, mobility, and admission rule.
//
// Specs serialize to a small JSON format (see Parse and Load) and a handful
// of named presets are built in (see Preset and Names).
//
// # Determinism contract
//
// A compiled Profile is an immutable pure function: Weights is fixed at
// compile time, and Rates/NextChange depend only on (cell, t) — no hidden
// state, no randomness, no mutation after Compile returns. Profiles are
// therefore safe for unsynchronized concurrent readers, which is exactly
// what the layers above assume:
//
//   - the sharded engine queries one profile from several shard workers at
//     once, and stays bit-identical to the serial engine under every
//     scenario (the engines' own contract plus profile purity);
//
//   - the replication runner shares one profile across all replications, so
//     replication i sees the same rates regardless of scheduling, keeping
//     the runner's (base seed, replication count) bit-identity — and the
//     adaptive stopping rule built on it — intact under every scenario;
//
//   - the uniform scenario compiles to weight 1 and scale 1 everywhere and
//     reproduces the paper's symmetric load bit for bit, which the test
//     suite pins on both engines.
//
// Rates are piecewise constant in time by construction (Steps schedules,
// optionally periodic), which the simulator's boundary-re-arming arrival
// generator relies on for exactness: a rate holds on [t, NextChange(t)), so
// exponential gaps drawn within a segment are exact, not an approximation.
package scenario

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/policy"
	"repro/internal/sim"
)

// ErrInvalidScenario is returned for malformed scenario specifications.
var ErrInvalidScenario = errors.New("scenario: invalid scenario")

// Spatial load-shape kinds.
const (
	// Uniform gives every cell weight 1 — the paper's symmetric baseline.
	Uniform = "uniform"
	// Hotspot peaks at a center cell and decays exponentially with hex
	// distance: weight(d) = 1 + (Peak-1) * exp(-d/Decay).
	Hotspot = "hotspot"
	// Gradient interpolates linearly in hex distance from the center cell:
	// weight(d) = Low + (High-Low) * d / eccentricity(center).
	Gradient = "gradient"
	// Corridor peaks along a hexagonal lattice axis through the center cell
	// (a highway) and decays exponentially with the perpendicular hex
	// distance from that axis: weight(d) = 1 + (Peak-1) * exp(-d/Decay) with
	// d = cluster.Topology.AxisDistances. It requires a hexagonal topology.
	Corridor = "corridor"
)

// Temporal profile kinds.
const (
	// Constant holds scale 1 forever.
	Constant = "constant"
	// Steps follows a piecewise-constant step schedule, optionally periodic.
	Steps = "steps"
	// Trace replays a measured arrival series (CSV file or inline rows),
	// normalized to time-weighted mean scale 1 — the empirical counterpart of
	// the synthetic Steps schedules. See trace.go.
	Trace = "trace"
	// MMPP modulates the rates by a Markov-modulated Poisson process: the
	// superposition of Sources independent exponential on/off sources,
	// pre-sampled into a deterministic step schedule at compile time.
	MMPP = "mmpp"
	// OnOff modulates the rates by a single on/off source with heavy-tailed
	// Pareto sojourns — the classic self-similar traffic construction.
	OnOff = "onoff"
)

// Spec declares one workload scenario: a spatial load shape crossed with a
// temporal profile. The zero value (empty kinds) means the uniform constant
// load. Specs are plain data — compile one with Compile or Apply to obtain
// the per-cell rate function.
type Spec struct {
	// Name labels the scenario in output files and progress messages.
	Name string `json:"name,omitempty"`
	// Spatial selects the per-cell weight shape.
	Spatial Spatial `json:"spatial"`
	// Temporal selects the time-varying scale profile.
	Temporal Temporal `json:"temporal,omitempty"`
	// Mobility, when non-nil, shapes the per-cell dwell-time multipliers
	// alongside the arrival rates; nil means multiplier 1 everywhere (the
	// paper's single dwell time per service).
	Mobility *Mobility `json:"mobility,omitempty"`
	// Policy, when non-nil, selects the handover admission policy of the
	// scenario; nil means the paper's default (fresh calls and handovers
	// share the channels, a blocked handover is dropped).
	Policy *PolicySpec `json:"policy,omitempty"`
}

// PolicySpec declares the handover admission policy of a scenario in the
// JSON form: a policy name as accepted by policy.Parse plus the kind's
// parameters. It mirrors policy.Config field for field; Spec validation
// enforces the same no-parameter-mixing rules.
type PolicySpec struct {
	// Kind is the policy name: "guard", "queue", "retry", or "none".
	Kind string `json:"kind"`
	// Guard is the number of voice channels reserved for handovers
	// (guard policy only).
	Guard int `json:"guard,omitempty"`
	// QueueCapacity bounds the per-cell handover queue (queue policy only).
	QueueCapacity int `json:"queue_capacity,omitempty"`
	// QueueDeadlineSec is the maximum wait of a queued handover (queue
	// policy only).
	QueueDeadlineSec float64 `json:"queue_deadline_sec,omitempty"`
}

// compile resolves the declaration to the simulator's policy configuration.
// The channel-plan-dependent guard bound is checked later, by
// sim.Config.Validate, where the plan is known.
func (p PolicySpec) compile() (*policy.Config, error) {
	kind, err := policy.Parse(p.Kind)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidScenario, err)
	}
	cfg := &policy.Config{
		Kind:             kind,
		Guard:            p.Guard,
		QueueCapacity:    p.QueueCapacity,
		QueueDeadlineSec: p.QueueDeadlineSec,
	}
	if err := cfg.Validate(0); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidScenario, err)
	}
	return cfg, nil
}

// Mobility declares the dwell-time shaping of a scenario: a spatial shape
// crossed with a temporal profile, exactly like the rate shaping, but the
// compiled value multiplies the mean GSM and GPRS dwell times of the
// session's current cell instead of the arrival rates. Because dwell times
// must stay positive, every compiled multiplier has to be strictly positive:
// shapes with zero weights and schedules with zero scales are rejected at
// compile time.
type Mobility struct {
	// Spatial selects the per-cell dwell-time weight shape.
	Spatial Spatial `json:"spatial"`
	// Temporal selects the time-varying dwell scale profile.
	Temporal Temporal `json:"temporal,omitempty"`
}

// Spatial describes the per-cell weight shape of a scenario. Weights
// multiply the baseline arrival rates (voice and data alike), so weight 1
// means the configured per-cell load.
type Spatial struct {
	// Kind is Uniform, Hotspot, or Gradient. Empty means Uniform.
	Kind string `json:"kind"`
	// Center is the reference cell of Hotspot and Gradient shapes (the peak
	// cell; default 0, the measured mid cell).
	Center int `json:"center,omitempty"`
	// Peak is the Hotspot weight at the center cell. Values above 1 create a
	// hotspot, values in [0, 1) a coldspot.
	Peak float64 `json:"peak,omitempty"`
	// Decay is the Hotspot e-folding distance in hex hops (> 0).
	Decay float64 `json:"decay,omitempty"`
	// Low and High are the Gradient weights at the center cell and at the
	// cells farthest from it.
	Low  float64 `json:"low,omitempty"`
	High float64 `json:"high,omitempty"`
	// Axis selects the lattice axis of a Corridor shape (0, 1, or 2 — see
	// cluster.NumHexAxes); the corridor runs through Center along it. Peak
	// and Decay have their Hotspot meaning, with the distance measured
	// perpendicular to the axis instead of radially.
	Axis int `json:"axis,omitempty"`
	// Normalize rescales the weights to mean 1, so the cluster-aggregate
	// load matches the uniform scenario and only its spatial distribution
	// changes.
	Normalize bool `json:"normalize,omitempty"`
}

// Step is one segment boundary of a piecewise-constant temporal profile: from
// AtSec on (until the next step), the baseline rates are multiplied by Scale.
type Step struct {
	AtSec float64 `json:"at_sec"`
	Scale float64 `json:"scale"`
}

// Temporal describes the time-varying scale profile of a scenario. The scale
// multiplies every cell's rates, so spatial shape and temporal profile
// compose.
type Temporal struct {
	// Kind is Constant, Steps, Trace, MMPP, or OnOff. Empty means Constant.
	Kind string `json:"kind,omitempty"`
	// Steps is the schedule of a Steps profile: strictly increasing AtSec
	// starting at 0, each holding Scale until the next step.
	Steps []Step `json:"steps,omitempty"`
	// PeriodSec, when > 0, repeats the schedule with this period (all AtSec
	// must lie inside [0, PeriodSec)). Zero means the last step's scale holds
	// forever. Steps and Trace profiles only.
	PeriodSec float64 `json:"period_sec,omitempty"`

	// CSV names the trace file of a Trace profile (see ParseTraceCSV for the
	// format). Load resolves the path relative to the scenario file and fills
	// Rows; Compile refuses a spec whose CSV was never loaded.
	CSV string `json:"csv,omitempty"`
	// Rows is the measured series of a Trace profile in rate form: strictly
	// increasing AtSec starting at 0, each row's rate holding until the next.
	Rows []TraceRow `json:"rows,omitempty"`

	// Sources is the number of on/off sources superposed by an MMPP profile.
	Sources int `json:"sources,omitempty"`
	// MeanOnSec and MeanOffSec are the mean sojourn times of the MMPP and
	// OnOff modulators' on and off phases.
	MeanOnSec  float64 `json:"mean_on_sec,omitempty"`
	MeanOffSec float64 `json:"mean_off_sec,omitempty"`
	// ParetoAlpha is the tail index of the OnOff sojourn distribution, in
	// (1, 2): finite mean, infinite variance — the self-similar regime.
	ParetoAlpha float64 `json:"pareto_alpha,omitempty"`
	// HorizonSec bounds the pre-sampled MMPP/OnOff trajectory; the last
	// state's scale holds beyond it, so it should cover warm-up plus
	// measurement.
	HorizonSec float64 `json:"horizon_sec,omitempty"`
	// Seed selects the deterministic substream the MMPP/OnOff trajectory is
	// sampled from, independently of the simulator's seed.
	Seed int64 `json:"seed,omitempty"`
}

// Validate reports whether the scenario specification is well formed.
// Topology-dependent checks (the center cell being in range) happen at
// Compile time.
func (s Spec) Validate() error {
	if err := s.Spatial.validate(); err != nil {
		return err
	}
	if err := s.Temporal.validate(); err != nil {
		return err
	}
	if s.Mobility != nil {
		if err := s.Mobility.validate(); err != nil {
			return fmt.Errorf("%w (in mobility profile)", err)
		}
	}
	if s.Policy != nil {
		if _, err := s.Policy.compile(); err != nil {
			return err
		}
	}
	return nil
}

// validate checks the mobility declaration: the shared spatial/temporal rules
// plus strict positivity of every temporal scale (a zero scale would mean a
// zero dwell time — an infinite handover rate). Zero spatial weights can only
// be detected against a topology and are rejected by Compile.
func (m Mobility) validate() error {
	if err := m.Spatial.validate(); err != nil {
		return err
	}
	switch m.Temporal.Kind {
	case "", Constant, Steps:
	default:
		// Dwell multipliers must be strictly positive and hand-auditable; the
		// empirical/stochastic profiles (trace, mmpp, onoff) can reach scale 0
		// and are defined for arrival rates only.
		return fmt.Errorf("%w: mobility temporal profile must be constant or steps, got %q",
			ErrInvalidScenario, m.Temporal.Kind)
	}
	if err := m.Temporal.validate(); err != nil {
		return err
	}
	for _, st := range m.Temporal.Steps {
		if st.Scale <= 0 {
			return fmt.Errorf("%w: dwell scale %v at %v s must be positive", ErrInvalidScenario, st.Scale, st.AtSec)
		}
	}
	return nil
}

func finitePos(v float64) bool { return v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) }

func finiteNonNeg(v float64) bool { return v >= 0 && !math.IsInf(v, 0) && !math.IsNaN(v) }

func (sp Spatial) validate() error {
	switch sp.Kind {
	case "", Uniform:
	case Hotspot:
		if !finiteNonNeg(sp.Peak) {
			return fmt.Errorf("%w: hotspot peak %v", ErrInvalidScenario, sp.Peak)
		}
		if !finitePos(sp.Decay) {
			return fmt.Errorf("%w: hotspot decay %v", ErrInvalidScenario, sp.Decay)
		}
	case Gradient:
		if !finiteNonNeg(sp.Low) || !finiteNonNeg(sp.High) {
			return fmt.Errorf("%w: gradient endpoints low=%v high=%v", ErrInvalidScenario, sp.Low, sp.High)
		}
	case Corridor:
		if !finiteNonNeg(sp.Peak) {
			return fmt.Errorf("%w: corridor peak %v", ErrInvalidScenario, sp.Peak)
		}
		if !finitePos(sp.Decay) {
			return fmt.Errorf("%w: corridor decay %v", ErrInvalidScenario, sp.Decay)
		}
		if sp.Axis < 0 || sp.Axis >= cluster.NumHexAxes {
			return fmt.Errorf("%w: corridor axis %d (want 0..%d)", ErrInvalidScenario, sp.Axis, cluster.NumHexAxes-1)
		}
	default:
		return fmt.Errorf("%w: unknown spatial kind %q", ErrInvalidScenario, sp.Kind)
	}
	if sp.Center < 0 {
		return fmt.Errorf("%w: negative center cell %d", ErrInvalidScenario, sp.Center)
	}
	return nil
}

func (tp Temporal) validate() error {
	if len(tp.Steps) > 0 && tp.Kind != Steps {
		return fmt.Errorf("%w: %s temporal profile with steps", ErrInvalidScenario, tp.kindName())
	}
	if (tp.CSV != "" || len(tp.Rows) > 0) && tp.Kind != Trace {
		return fmt.Errorf("%w: %s temporal profile with trace data", ErrInvalidScenario, tp.kindName())
	}
	switch tp.Kind {
	case "", Constant:
		return nil
	case Steps:
		return tp.validateSteps()
	case Trace:
		return tp.validateTrace()
	case MMPP:
		return tp.validateMMPP()
	case OnOff:
		return tp.validateOnOff()
	default:
		return fmt.Errorf("%w: unknown temporal kind %q", ErrInvalidScenario, tp.Kind)
	}
}

// kindName renders the kind for error messages, naming the implicit default.
func (tp Temporal) kindName() string {
	if tp.Kind == "" {
		return Constant
	}
	return tp.Kind
}

func (tp Temporal) validateSteps() error {
	if len(tp.Steps) == 0 {
		return fmt.Errorf("%w: steps temporal profile without steps", ErrInvalidScenario)
	}
	times := make([]float64, len(tp.Steps))
	for i, st := range tp.Steps {
		times[i] = st.AtSec
	}
	if err := validateTimeline("step", times); err != nil {
		return err
	}
	for _, st := range tp.Steps {
		if !finiteNonNeg(st.Scale) {
			return fmt.Errorf("%w: step scale %v at %v s", ErrInvalidScenario, st.Scale, st.AtSec)
		}
	}
	return validatePeriod("step", tp.PeriodSec, tp.Steps[len(tp.Steps)-1].AtSec)
}

// Profile is a compiled scenario: per-cell weights, a step schedule, and the
// baseline rates, evaluating to absolute per-cell arrival rates. It is
// immutable after Compile and safe for concurrent use, and it satisfies the
// sim.RateProfile contract (piecewise constant, pure).
type Profile struct {
	name    string
	weights []float64
	voice   float64
	data    float64
	sched   schedule
	// payload is the arrival-weighted mean payload size of a trace profile
	// with payload annotations, in bytes (0 otherwise). Reporting only: the
	// simulator's packet model stays at the paper's fixed 480-byte packets.
	payload float64
}

// Compile resolves the scenario against a cluster topology and the baseline
// per-cell arrival rates (the rates a weight-1 cell sees; typically
// sim.Config.BaseRates). Hex distances come from the topology's neighbour
// relation, so any cluster — the paper's seven-cell one, the generated hex
// rings, or a plain ring — can carry any scenario.
func (s Spec) Compile(topo *cluster.Topology, voiceRate, dataRate float64) (*Profile, error) {
	if topo == nil {
		return nil, fmt.Errorf("%w: nil topology", ErrInvalidScenario)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !finiteNonNeg(voiceRate) || !finiteNonNeg(dataRate) {
		return nil, fmt.Errorf("%w: baseline rates voice=%v data=%v", ErrInvalidScenario, voiceRate, dataRate)
	}
	weights, err := s.Spatial.weights(topo)
	if err != nil {
		return nil, err
	}
	sched, payload, err := s.Temporal.compile()
	if err != nil {
		return nil, err
	}
	return &Profile{name: s.Name, weights: weights, voice: voiceRate, data: dataRate,
		sched: sched, payload: payload}, nil
}

// Apply compiles the scenario against the simulator configuration — its
// topology (the paper's seven-cell cluster when nil) and baseline rates — and
// installs the compiled rate profile as cfg.Rates and, when the spec declares
// one, the compiled mobility profile as cfg.Mobility. It returns the rate
// profile for reporting (per-cell weights, scenario name).
func Apply(cfg *sim.Config, s Spec) (*Profile, error) {
	topo := cfg.Topology
	if topo == nil {
		topo = cluster.NewHexCluster()
	}
	voice, data := cfg.BaseRates()
	p, err := s.Compile(topo, voice, data)
	if err != nil {
		return nil, err
	}
	// Always overwrite the mobility profile, like the rate profile below: a
	// spec without mobility must clear any profile a previous Apply on the
	// same Config installed, or the old dwell skew would silently leak into
	// the new scenario's runs.
	cfg.Mobility = nil
	if s.Mobility != nil {
		dp, err := s.Mobility.Compile(topo)
		if err != nil {
			return nil, err
		}
		cfg.Mobility = dp
	}
	// Same clear-then-install discipline for the admission policy: a spec
	// without one must restore the paper's default admission rule.
	cfg.Policy = nil
	if s.Policy != nil {
		pc, err := s.Policy.compile()
		if err != nil {
			return nil, err
		}
		cfg.Policy = pc
	}
	cfg.Rates = p
	return p, nil
}

// weights computes the per-cell weight vector of a spatial shape.
func (sp Spatial) weights(topo *cluster.Topology) ([]float64, error) {
	n := topo.NumCells()
	w := make([]float64, n)
	kind := sp.Kind
	if kind == "" {
		kind = Uniform
	}
	if kind == Uniform {
		for i := range w {
			w[i] = 1
		}
		return w, nil
	}
	if sp.Center >= n {
		return nil, fmt.Errorf("%w: center cell %d outside the %d-cell cluster", ErrInvalidScenario, sp.Center, n)
	}
	switch kind {
	case Hotspot:
		for i, d := range topo.Distances(sp.Center) {
			if d < 0 {
				return nil, fmt.Errorf("%w: cell %d unreachable from center %d", ErrInvalidScenario, i, sp.Center)
			}
			w[i] = 1 + (sp.Peak-1)*math.Exp(-float64(d)/sp.Decay)
		}
	case Gradient:
		ecc := topo.Eccentricity(sp.Center)
		if ecc < 0 {
			return nil, fmt.Errorf("%w: cluster disconnected from center %d", ErrInvalidScenario, sp.Center)
		}
		for i, d := range topo.Distances(sp.Center) {
			if ecc == 0 {
				w[i] = sp.Low
				continue
			}
			w[i] = sp.Low + (sp.High-sp.Low)*float64(d)/float64(ecc)
		}
	case Corridor:
		dist := topo.AxisDistances(sp.Center, sp.Axis)
		if dist == nil {
			return nil, fmt.Errorf("%w: corridor shape needs a hexagonal topology with lattice coordinates", ErrInvalidScenario)
		}
		for i, d := range dist {
			w[i] = 1 + (sp.Peak-1)*math.Exp(-float64(d)/sp.Decay)
		}
	}
	if sp.Normalize {
		var sum float64
		for _, v := range w {
			sum += v
		}
		if sum <= 0 {
			return nil, fmt.Errorf("%w: weights sum to %v, cannot normalize", ErrInvalidScenario, sum)
		}
		f := float64(n) / sum
		for i := range w {
			w[i] *= f
		}
	}
	return w, nil
}

// Name returns the scenario label the profile was compiled from.
func (p *Profile) Name() string { return p.name }

// NumCells returns the number of cells the profile was compiled for.
func (p *Profile) NumCells() int { return len(p.weights) }

// Weights returns a copy of the per-cell weight vector.
func (p *Profile) Weights() []float64 { return append([]float64(nil), p.weights...) }

// MeanPayloadBytes returns the arrival-weighted mean payload size of a trace
// profile carrying payload annotations, or 0 when the profile has none. It is
// reporting metadata: the simulator's packet model keeps the paper's fixed
// 480-byte packets regardless.
func (p *Profile) MeanPayloadBytes() float64 { return p.payload }

// Rates returns the cell's voice and data arrival rates at time t:
// baseline * weight(cell) * scale(t). Out-of-range cells see rate 0.
func (p *Profile) Rates(cell int, t float64) (float64, float64) {
	if cell < 0 || cell >= len(p.weights) {
		return 0, 0
	}
	f := p.weights[cell] * p.scale(t)
	return p.voice * f, p.data * f
}

// NextChange returns the earliest time strictly after t at which the scale —
// and with it every cell's rates — changes, or +Inf for constant profiles.
func (p *Profile) NextChange(t float64) float64 { return p.sched.next(t) }

// scale returns the temporal multiplier at time t.
func (p *Profile) scale(t float64) float64 { return p.sched.scale(t) }

// schedule is the compiled piecewise-constant temporal profile shared by rate
// and mobility profiles: a step schedule, optionally periodic. The zero value
// is the constant scale 1.
type schedule struct {
	steps  []Step // nil means constant scale 1
	period float64
}

// compile resolves a validated temporal declaration into its piecewise-
// constant schedule. The second return value is the arrival-weighted mean
// payload of a trace profile with payload annotations (0 otherwise). It can
// fail only for the generated kinds: a trace whose CSV was never loaded or
// whose rows cannot be normalized.
func (tp Temporal) compile() (schedule, float64, error) {
	switch tp.Kind {
	case Steps:
		return schedule{steps: append([]Step(nil), tp.Steps...), period: tp.PeriodSec}, 0, nil
	case Trace:
		return tp.compileTrace()
	case MMPP:
		return tp.compileMMPP(), 0, nil
	case OnOff:
		return tp.compileOnOff(), 0, nil
	default:
		return schedule{}, 0, nil
	}
}

// next returns the earliest time strictly after t at which the scale changes,
// or +Inf for constant schedules. Like scale it binary-searches the step
// boundaries: generated schedules (trace replays, MMPP trajectories) carry
// thousands of steps, far too many for the linear scan the hand-written ramps
// got away with.
func (s schedule) next(t float64) float64 {
	if len(s.steps) == 0 {
		return math.Inf(1)
	}
	if s.period > 0 {
		base := math.Floor(t/s.period) * s.period
		i := sort.Search(len(s.steps), func(i int) bool { return base+s.steps[i].AtSec > t })
		if i < len(s.steps) {
			return base + s.steps[i].AtSec
		}
		// Wrap: the next boundary is the first step of the following period
		// (step times start at 0, so it is the period boundary itself).
		return base + s.period + s.steps[0].AtSec
	}
	i := sort.Search(len(s.steps), func(i int) bool { return s.steps[i].AtSec > t })
	if i < len(s.steps) {
		return s.steps[i].AtSec
	}
	return math.Inf(1)
}

// scale returns the temporal multiplier at time t: the Scale of the last step
// at or before t (periodic schedules fold t into one period first). Times
// before the schedule — possible only for negative t — scale by 1.
func (s schedule) scale(t float64) float64 {
	if len(s.steps) == 0 {
		return 1
	}
	if s.period > 0 {
		t = t - math.Floor(t/s.period)*s.period
	}
	i := sort.Search(len(s.steps), func(i int) bool { return s.steps[i].AtSec > t })
	if i == 0 {
		return 1
	}
	return s.steps[i-1].Scale
}

// DwellProfile is a compiled mobility declaration: per-cell dwell-time
// weights crossed with a piecewise-constant temporal scale, evaluating to the
// multiplier applied to the mean GSM/GPRS dwell times of a cell. It is
// immutable after Compile, safe for concurrent use, and satisfies the
// sim.MobilityProfile contract (piecewise constant, pure, strictly positive).
type DwellProfile struct {
	weights []float64
	sched   schedule
}

// Compile resolves the mobility declaration against a cluster topology. On
// top of the syntactic rules shared with the rate shapes it enforces strict
// positivity: every compiled per-cell weight must be positive and finite,
// because the weights multiply dwell-time means.
func (m Mobility) Compile(topo *cluster.Topology) (*DwellProfile, error) {
	if topo == nil {
		return nil, fmt.Errorf("%w: nil topology", ErrInvalidScenario)
	}
	if err := m.validate(); err != nil {
		return nil, fmt.Errorf("%w (in mobility profile)", err)
	}
	weights, err := m.Spatial.weights(topo)
	if err != nil {
		return nil, err
	}
	for i, w := range weights {
		if !finitePos(w) {
			return nil, fmt.Errorf("%w: dwell weight %v in cell %d must be positive", ErrInvalidScenario, w, i)
		}
	}
	sched, _, err := m.Temporal.compile()
	if err != nil {
		return nil, err
	}
	return &DwellProfile{weights: weights, sched: sched}, nil
}

// NumCells returns the number of cells the profile was compiled for.
func (p *DwellProfile) NumCells() int { return len(p.weights) }

// Weights returns a copy of the per-cell dwell weight vector.
func (p *DwellProfile) Weights() []float64 { return append([]float64(nil), p.weights...) }

// Multiplier returns the dwell-time multiplier of the cell at time t:
// weight(cell) * scale(t), constant on [t, NextChange(t)). Out-of-range cells
// see the neutral multiplier 1.
func (p *DwellProfile) Multiplier(cell int, t float64) float64 {
	if cell < 0 || cell >= len(p.weights) {
		return 1
	}
	return p.weights[cell] * p.sched.scale(t)
}

// NextChange returns the earliest time strictly after t at which any cell's
// multiplier changes, or +Inf for constant profiles.
func (p *DwellProfile) NextChange(t float64) float64 { return p.sched.next(t) }
