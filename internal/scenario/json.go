package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Parse decodes and validates a scenario from its JSON form. Unknown fields
// are rejected so that typos in hand-written scenario files surface as errors
// instead of silently falling back to defaults. The format mirrors Spec:
//
//	{
//	  "name": "rush19",
//	  "spatial": {"kind": "hotspot", "center": 0, "peak": 4, "decay": 1.5},
//	  "temporal": {"kind": "steps", "period_sec": 3600,
//	               "steps": [{"at_sec": 0, "scale": 1}, {"at_sec": 1800, "scale": 2}]}
//	}
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrInvalidScenario, err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Load reads and parses a scenario file written in the JSON format of Parse.
// A trace temporal block referencing a CSV file ("csv") is resolved relative
// to the scenario file's directory and loaded into Spec.Temporal.Rows, so the
// returned spec is self-contained and ready to Compile.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%w (in %s)", err, path)
	}
	if s.Temporal.Kind == Trace && s.Temporal.CSV != "" {
		csvPath := s.Temporal.CSV
		if !filepath.IsAbs(csvPath) {
			csvPath = filepath.Join(filepath.Dir(path), csvPath)
		}
		rows, err := LoadTraceCSV(csvPath)
		if err != nil {
			return Spec{}, fmt.Errorf("%w (referenced by %s)", err, path)
		}
		s.Temporal.Rows = rows
		s.Temporal.CSV = ""
		if err := s.Validate(); err != nil {
			return Spec{}, fmt.Errorf("%w (in %s)", err, path)
		}
	}
	return s, nil
}
