package scenario

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// compileTemporal compiles a uniform-spatial spec around the given temporal
// profile, returning the rate profile.
func compileTemporal(t *testing.T, tp Temporal) *Profile {
	t.Helper()
	p, err := Spec{Temporal: tp}.Compile(cluster.NewHexCluster(), 0.475, 0.025)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestParseTraceCSVCountMode pins the count-mode conversion on the committed
// sample trace: window counts become rates (arrivals / window length), and
// the final horizon row holds the trace's overall mean rate.
func TestParseTraceCSVCountMode(t *testing.T) {
	data, err := os.ReadFile("testdata/trace.csv")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ParseTraceCSV(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	wantRates := []float64{180.0 / 300, 540.0 / 300, 720.0 / 300, 480.0 / 300, 240.0 / 300, 150.0 / 300,
		2310.0 / 1800}
	for i, want := range wantRates {
		if rows[i].RatePerSec != want {
			t.Errorf("row %d: rate %v, want %v", i, rows[i].RatePerSec, want)
		}
	}
	if rows[2].PayloadBytes != 510 {
		t.Errorf("row 2 payload %v, want 510", rows[2].PayloadBytes)
	}
	// The loaded rows must compile: normalized scales hold their
	// time-weighted mean at 1 over the measured span.
	prof := compileTemporal(t, Temporal{Kind: Trace, Rows: rows})
	var integral float64
	boundaries := []float64{0, 300, 600, 900, 1200, 1500, 1800}
	for i := 0; i+1 < len(boundaries); i++ {
		v, _ := prof.Rates(0, boundaries[i])
		integral += v / 0.475 * (boundaries[i+1] - boundaries[i])
	}
	if mean := integral / 1800; math.Abs(mean-1) > 1e-12 {
		t.Errorf("normalized time-weighted mean scale %v, want 1", mean)
	}
	if p := prof.MeanPayloadBytes(); p <= 400 || p >= 520 {
		t.Errorf("mean payload %v outside the sample's plausible range", p)
	}
}

// TestParseTraceCSVRateMode covers the rate-mode header and payload-less
// two-column form.
func TestParseTraceCSVRateMode(t *testing.T) {
	rows, err := ParseTraceCSV([]byte("time_sec,rate_per_s\n0,1.5\n60,3.0\n120,0.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[1].RatePerSec != 3.0 || rows[2].AtSec != 120 {
		t.Fatalf("unexpected rows %+v", rows)
	}
	if rows[0].PayloadBytes != 0 {
		t.Errorf("two-column trace should have zero payloads, got %v", rows[0].PayloadBytes)
	}
}

// TestParseTraceCSVErrors sweeps the parser's rejection paths; every error
// must wrap both sentinels so callers can match the broad scenario class or
// specifically the schedule shape.
func TestParseTraceCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"empty", "", "empty input"},
		{"bad header", "seconds,rate\n0,1\n", "header"},
		{"bad second column", "time_sec,bananas\n0,1\n", `second column "bananas"`},
		{"bad third column", "time_sec,rate_per_s,kilos\n0,1,2\n", `third column "kilos"`},
		{"non-numeric", "time_sec,rate_per_s\n0,fast\n60,1\n", `"fast" is not a finite number`},
		{"NaN rate", "time_sec,rate_per_s\n0,NaN\n60,1\n", "not a finite number"},
		{"negative time", "time_sec,rate_per_s\n-5,1\n60,2\n", "first trace row must start at 0"},
		{"not at zero", "time_sec,rate_per_s\n10,1\n60,2\n", "first trace row must start at 0"},
		{"non-monotone", "time_sec,rate_per_s\n0,1\n60,2\n30,3\n", "strictly increasing"},
		{"duplicate time", "time_sec,rate_per_s\n0,1\n60,2\n60,3\n", "strictly increasing"},
		{"single row", "time_sec,rate_per_s\n0,1\n", "at least 2 rows"},
		{"negative rate", "time_sec,rate_per_s\n0,1\n60,-2\n", "trace rate -2"},
		{"all zero", "time_sec,rate_per_s\n0,0\n60,0\n", "all zero"},
		{"nonzero horizon count", "time_sec,arrivals\n0,10\n60,5\n", "final count-mode row must carry 0 arrivals"},
		{"negative payload", "time_sec,rate_per_s,payload_bytes\n0,1,480\n60,2,-1\n", "trace payload -1"},
		{"ragged record", "time_sec,rate_per_s,payload_bytes\n0,1\n60,2,480\n", "record"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTraceCSV([]byte(tc.in))
			if err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
			if !errors.Is(err, ErrInvalidScenario) {
				t.Errorf("error does not wrap ErrInvalidScenario: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the defect (want substring %q)", err, tc.want)
			}
		})
	}
}

// TestConstantRateTraceCoalesces pins the bit-identity contract: a trace
// whose rates are all bitwise equal compiles to the constant schedule —
// scale exactly 1, no change points — indistinguishable from the uniform
// scenario.
func TestConstantRateTraceCoalesces(t *testing.T) {
	prof := compileTemporal(t, Temporal{Kind: Trace, Rows: []TraceRow{
		{AtSec: 0, RatePerSec: 2.5}, {AtSec: 600, RatePerSec: 2.5}, {AtSec: 1200, RatePerSec: 2.5},
	}})
	uniform := compileTemporal(t, Temporal{})
	for _, at := range []float64{0, 1, 599.5, 600, 1200, 1e6} {
		gv, gd := prof.Rates(0, at)
		wv, wd := uniform.Rates(0, at)
		if gv != wv || gd != wd {
			t.Errorf("at %v: trace rates (%v, %v) differ from uniform (%v, %v)", at, gv, gd, wv, wd)
		}
		if next := prof.NextChange(at); !math.IsInf(next, 1) {
			t.Errorf("constant-rate trace should have no change points, NextChange(%v) = %v", at, next)
		}
	}
}

// TestTraceNormalizationAndPeriodicity checks the trace preset end to end:
// time-weighted mean scale 1 over one period, and the periodic schedule
// wrapping its change points past the period boundary.
func TestTraceNormalizationAndPeriodicity(t *testing.T) {
	spec, err := Preset(Trace)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := spec.Compile(cluster.NewHexCluster(), 0.475, 0.025)
	if err != nil {
		t.Fatal(err)
	}
	var integral float64
	for at := 0.0; at < 1800; at += 300 {
		v, _ := prof.Rates(0, at)
		integral += v / 0.475 * 300
	}
	if mean := integral / 1800; math.Abs(mean-1) > 1e-12 {
		t.Errorf("preset trace mean scale %v over one period, want 1", mean)
	}
	if next := prof.NextChange(1700); next != 1800 {
		t.Errorf("NextChange(1700) = %v, want the period boundary 1800", next)
	}
	v1, _ := prof.Rates(0, 150)
	v2, _ := prof.Rates(0, 1800+150)
	if v1 != v2 {
		t.Errorf("periodic replay differs across periods: %v vs %v", v1, v2)
	}
}

// TestCompileRejectsUnloadedCSV pins the load discipline: a spec that still
// references a CSV file must not silently compile as constant.
func TestCompileRejectsUnloadedCSV(t *testing.T) {
	_, err := Spec{Temporal: Temporal{Kind: Trace, CSV: "trace.csv"}}.
		Compile(cluster.NewHexCluster(), 0.475, 0.025)
	if err == nil || !errors.Is(err, ErrInvalidScenario) {
		t.Fatalf("unloaded CSV should fail compilation, got %v", err)
	}
	if !strings.Contains(err.Error(), "not loaded") {
		t.Errorf("error %q should point at the missing load step", err)
	}
}

// TestLoadResolvesTraceCSV checks the file plumbing: a scenario document
// referencing a CSV by relative path loads rows resolved against the
// document's own directory.
func TestLoadResolvesTraceCSV(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "load.csv"),
		[]byte("time_sec,rate_per_s\n0,1\n300,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := filepath.Join(dir, "scenario.json")
	if err := os.WriteFile(doc,
		[]byte(`{"name": "replay", "spatial": {"kind": "uniform"}, "temporal": {"kind": "trace", "csv": "load.csv"}}`),
		0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Temporal.Rows) != 2 || s.Temporal.Rows[1].RatePerSec != 2 {
		t.Fatalf("rows not loaded: %+v", s.Temporal.Rows)
	}
	if _, err := s.Compile(cluster.NewHexCluster(), 0.475, 0.025); err != nil {
		t.Fatalf("loaded spec should compile: %v", err)
	}
	// A missing CSV must be attributed to both files.
	bad := filepath.Join(dir, "missing.json")
	if err := os.WriteFile(bad,
		[]byte(`{"temporal": {"kind": "trace", "csv": "nope.csv"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil || !strings.Contains(err.Error(), "missing.json") {
		t.Errorf("missing CSV error should name the scenario file, got %v", err)
	}
}

// TestMMPPDeterministicAndStationary checks the MMPP modulator: identical
// specs compile to identical trajectories, distinct seeds to distinct ones,
// every scale is one of the process's discrete levels, and the stationary
// mean over the horizon is near 1.
func TestMMPPDeterministicAndStationary(t *testing.T) {
	tp := Temporal{Kind: MMPP, Sources: 8, MeanOnSec: 120, MeanOffSec: 240, HorizonSec: 30000, Seed: 17}
	a := compileTemporal(t, tp)
	b := compileTemporal(t, tp)
	tp2 := tp
	tp2.Seed = 18
	c := compileTemporal(t, tp2)
	sawDiff := false
	var integral float64
	levels := map[float64]bool{}
	for at := 0.0; at < 30000; {
		av, _ := a.Rates(0, at)
		bv, _ := b.Rates(0, at)
		cv, _ := c.Rates(0, at)
		if av != bv {
			t.Fatalf("same spec, different trajectories at %v: %v vs %v", at, av, bv)
		}
		if av != cv {
			sawDiff = true
		}
		next := math.Min(a.NextChange(at), 30000)
		integral += av / 0.475 * (next - at)
		levels[av/0.475] = true
		at = next
	}
	if !sawDiff {
		t.Error("distinct seeds should modulate differently")
	}
	// Scales live on the lattice k/(M*pOn), k = 0..M, with pOn = 1/3.
	for lv := range levels {
		k := lv * 8.0 / 3.0
		if math.Abs(k-math.Round(k)) > 1e-9 || k < -1e-9 || k > 8+1e-9 {
			t.Errorf("scale %v is not a valid MMPP level", lv)
		}
	}
	if len(levels) < 3 {
		t.Errorf("only %d distinct levels over the horizon; the modulator looks stuck", len(levels))
	}
	if mean := integral / 30000; math.Abs(mean-1) > 0.25 {
		t.Errorf("stationary mean scale %v strays far from 1", mean)
	}
}

// TestOnOffAlternatesHeavyTailed checks the self-similar on/off modulator:
// scales alternate between 0 and (on+off)/on, deterministically in the seed.
func TestOnOffAlternatesHeavyTailed(t *testing.T) {
	tp := Temporal{Kind: OnOff, MeanOnSec: 100, MeanOffSec: 200, ParetoAlpha: 1.4, HorizonSec: 20000, Seed: 5}
	a := compileTemporal(t, tp)
	b := compileTemporal(t, tp)
	scaleOn := 3.0
	var prev float64 = -1
	changes := 0
	for at := 0.0; at < 20000; {
		av, _ := a.Rates(0, at)
		bv, _ := b.Rates(0, at)
		if av != bv {
			t.Fatalf("same spec, different trajectories at %v", at)
		}
		s := av / 0.475
		if s != 0 && math.Abs(s-scaleOn) > 1e-12 {
			t.Fatalf("scale %v at %v; want 0 or %v", s, at, scaleOn)
		}
		if prev >= 0 && s == prev {
			t.Fatalf("consecutive sojourns with the same scale %v at %v", s, at)
		}
		prev = s
		changes++
		at = a.NextChange(at)
	}
	if changes < 10 {
		t.Errorf("only %d sojourns over the horizon; heavy tails should still alternate more", changes)
	}
}

// TestMobilityRejectsGeneratedTemporals pins the restriction: dwell-time
// shaping accepts only the hand-auditable constant/steps profiles.
func TestMobilityRejectsGeneratedTemporals(t *testing.T) {
	for _, kind := range []string{Trace, MMPP, OnOff} {
		m := Mobility{Temporal: Temporal{Kind: kind}}
		if err := m.validate(); err == nil || !strings.Contains(err.Error(), "must be constant or steps") {
			t.Errorf("mobility with %s temporal should be rejected, got %v", kind, err)
		}
	}
}
