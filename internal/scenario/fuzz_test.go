package scenario

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"testing"

	"repro/internal/cluster"
)

// FuzzScenarioParse checks the scenario JSON parser never panics and that
// every spec it accepts re-validates, round-trips through its own JSON
// encoding, and compiles against a small topology without panicking. The
// corpus is seeded from every built-in preset (their canonical JSON forms)
// plus hand-picked malformed inputs. Run continuously with:
//
//	go test -run '^$' -fuzz FuzzScenarioParse ./internal/scenario -fuzztime 30s
func FuzzScenarioParse(f *testing.F) {
	for _, name := range Names() {
		spec, err := Preset(name)
		if err != nil {
			f.Fatalf("preset %s: %v", name, err)
		}
		data, err := json.Marshal(spec)
		if err != nil {
			f.Fatalf("preset %s: %v", name, err)
		}
		f.Add(data)
	}
	seeds := []string{
		`{}`,
		`{"spatial":{"kind":"uniform"}}`,
		`{"spatial":{"kind":"hotspot","center":0,"peak":4,"decay":1.5}}`,
		`{"spatial":{"kind":"uniform"},"temporal":{"kind":"steps","steps":[{"at_sec":0,"scale":1}]}}`,
		`{"spatial":{"kind":"corridor","axis":1},"mobility":{"spatial":{"kind":"uniform"}}}`,
		`{"spatial":{"kind":"uniform"},"policy":{"kind":"guard","guard":2}}`,
		`{"spatial":{"kind":"bogus"}}`,
		`{"spatial":{"kind":"hotspot","peak":-1}}`,
		`{"typo":1}`,
		`{"spatial":`,
		``,
		`null`,
		`[1,2,3]`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	topo := cluster.NewHexCluster()
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data)
		if err != nil {
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted spec failing Validate: %v", data, err)
		}
		// A parsed spec must survive its own JSON round trip.
		enc, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("Parse(%q) produced unmarshalable spec: %v", data, err)
		}
		again, err := Parse(enc)
		if err != nil {
			t.Fatalf("re-parsing %q (from %q) failed: %v", enc, data, err)
		}
		if err := again.Validate(); err != nil {
			t.Fatalf("round-tripped spec fails Validate: %v", err)
		}
		// Compiling may legitimately fail (e.g. a center outside the 7-cell
		// topology) but must not panic, and a successful compile must yield
		// sane rates at time zero.
		prof, err := spec.Compile(topo, 0.475, 0.025)
		if err != nil {
			return
		}
		for c := 0; c < topo.NumCells(); c++ {
			v, d := prof.Rates(c, 0)
			if v < 0 || d < 0 || v != v || d != d {
				t.Fatalf("Parse(%q): compiled profile yields bad rates (%v, %v) in cell %d", data, v, d, c)
			}
		}
	})
}

// FuzzTraceParse checks the trace-CSV parser never panics and that every
// series it accepts re-validates and compiles into a profile with finite,
// non-negative, piecewise-constant rates. The corpus is seeded from the
// committed sample trace plus adversarial shapes: non-monotone and negative
// timestamps, NaN/Inf fields, truncated records, wrong headers, ragged rows.
// Run continuously with:
//
//	go test -run '^$' -fuzz FuzzTraceParse ./internal/scenario -fuzztime 30s
func FuzzTraceParse(f *testing.F) {
	sample, err := os.ReadFile("testdata/trace.csv")
	if err != nil {
		f.Fatal(err)
	}
	seeds := [][]byte{
		sample,
		[]byte("time_sec,rate_per_s\n0,1.5\n60,3.0\n120,0.5\n"),
		[]byte("time_sec,rate_per_s,payload_bytes\n0,1,480\n300,2,512\n"),
		[]byte("time_sec,arrivals\n0,10\n60,20\n120,0\n"),
		[]byte("time_sec,arrivals\n0,10\n60,5\n"),                    // nonzero horizon count
		[]byte("time_sec,rate_per_s\n0,1\n60,2\n30,3"),               // out of order
		[]byte("time_sec,rate_per_s\n-5,1\n60,2\n"),                  // negative timestamp
		[]byte("time_sec,rate_per_s\n0,NaN\n60,1\n"),                 // NaN rate
		[]byte("time_sec,rate_per_s\n0,+Inf\n60,1\n"),                // infinite rate
		[]byte("time_sec,rate_per_s\n0,1"),                           // truncated final line
		[]byte("time_sec,rate_per_s,payload_bytes\n0,1\n60,2,480\n"), // ragged
		[]byte("seconds,rate\n0,1\n"),                                // wrong header
		[]byte("time_sec,rate_per_s\n"),                              // header only
		[]byte(""),
		[]byte("\xff\xfe"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	topo := cluster.NewHexCluster()
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := ParseTraceCSV(data)
		if err != nil {
			return
		}
		if err := validateTraceRows(rows); err != nil {
			t.Fatalf("ParseTraceCSV accepted rows failing validation: %v", err)
		}
		prof, err := Spec{Temporal: Temporal{Kind: Trace, Rows: rows}}.Compile(topo, 0.475, 0.025)
		if err != nil {
			// Compilation may still reject a parseable series — e.g. one whose
			// only positive rate sits on the zero-duration horizon row, so the
			// measured span cannot be normalized — but only with the typed
			// scenario error, never a panic or an untyped failure.
			if !errors.Is(err, ErrInvalidScenario) {
				t.Fatalf("trace compile failed with an untyped error: %v", err)
			}
			return
		}
		// Sweep the compiled schedule across its change points: rates must
		// stay finite and non-negative, and change points must advance.
		at := 0.0
		for i := 0; i < len(rows)+2; i++ {
			v, d := prof.Rates(0, at)
			if v < 0 || d < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("bad compiled rates (%v, %v) at %v", v, d, at)
			}
			next := prof.NextChange(at)
			if next <= at {
				t.Fatalf("NextChange(%v) = %v does not advance", at, next)
			}
			if math.IsInf(next, 1) {
				break
			}
			at = next
		}
	})
}
