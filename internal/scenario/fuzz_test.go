package scenario

import (
	"encoding/json"
	"testing"

	"repro/internal/cluster"
)

// FuzzScenarioParse checks the scenario JSON parser never panics and that
// every spec it accepts re-validates, round-trips through its own JSON
// encoding, and compiles against a small topology without panicking. The
// corpus is seeded from every built-in preset (their canonical JSON forms)
// plus hand-picked malformed inputs. Run continuously with:
//
//	go test -run '^$' -fuzz FuzzScenarioParse ./internal/scenario -fuzztime 30s
func FuzzScenarioParse(f *testing.F) {
	for _, name := range Names() {
		spec, err := Preset(name)
		if err != nil {
			f.Fatalf("preset %s: %v", name, err)
		}
		data, err := json.Marshal(spec)
		if err != nil {
			f.Fatalf("preset %s: %v", name, err)
		}
		f.Add(data)
	}
	seeds := []string{
		`{}`,
		`{"spatial":{"kind":"uniform"}}`,
		`{"spatial":{"kind":"hotspot","center":0,"peak":4,"decay":1.5}}`,
		`{"spatial":{"kind":"uniform"},"temporal":{"kind":"steps","steps":[{"at_sec":0,"scale":1}]}}`,
		`{"spatial":{"kind":"corridor","axis":1},"mobility":{"spatial":{"kind":"uniform"}}}`,
		`{"spatial":{"kind":"uniform"},"policy":{"kind":"guard","guard":2}}`,
		`{"spatial":{"kind":"bogus"}}`,
		`{"spatial":{"kind":"hotspot","peak":-1}}`,
		`{"typo":1}`,
		`{"spatial":`,
		``,
		`null`,
		`[1,2,3]`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	topo := cluster.NewHexCluster()
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data)
		if err != nil {
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted spec failing Validate: %v", data, err)
		}
		// A parsed spec must survive its own JSON round trip.
		enc, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("Parse(%q) produced unmarshalable spec: %v", data, err)
		}
		again, err := Parse(enc)
		if err != nil {
			t.Fatalf("re-parsing %q (from %q) failed: %v", enc, data, err)
		}
		if err := again.Validate(); err != nil {
			t.Fatalf("round-tripped spec fails Validate: %v", err)
		}
		// Compiling may legitimately fail (e.g. a center outside the 7-cell
		// topology) but must not panic, and a successful compile must yield
		// sane rates at time zero.
		prof, err := spec.Compile(topo, 0.475, 0.025)
		if err != nil {
			return
		}
		for c := 0; c < topo.NumCells(); c++ {
			v, d := prof.Rates(c, 0)
			if v < 0 || d < 0 || v != v || d != d {
				t.Fatalf("Parse(%q): compiled profile yields bad rates (%v, %v) in cell %d", data, v, d, c)
			}
		}
	})
}
