package scenario

import (
	"errors"
	"os"
	"strings"
	"testing"
)

// TestParseErrorPaths sweeps the JSON parsing and validation error paths with
// one table entry per malformed document, asserting both that the error
// wraps ErrInvalidScenario (so callers can errors.Is it) and that the message
// names the specific defect — a parse failure that collapses every mistake
// into one generic error would make hand-written scenario files miserable to
// debug.
func TestParseErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the specific wrapped error
	}{
		{"empty input", ``, "EOF"},
		{"negative hotspot peak", `{"spatial": {"kind": "hotspot", "peak": -1, "decay": 1}}`,
			"hotspot peak -1"},
		{"NaN peak is not JSON", `{"spatial": {"kind": "hotspot", "peak": NaN, "decay": 1}}`,
			"invalid character"},
		{"negative gradient endpoint", `{"spatial": {"kind": "gradient", "low": -0.5, "high": 1}}`,
			"gradient endpoints low=-0.5"},
		{"unknown shape name", `{"spatial": {"kind": "volcano"}}`,
			`unknown spatial kind "volcano"`},
		{"unknown temporal kind", `{"temporal": {"kind": "sine"}}`,
			`unknown temporal kind "sine"`},
		{"unknown field", `{"spatial": {"kind": "uniform", "sigma": 2}}`,
			`unknown field "sigma"`},
		{"overlapping temporal steps",
			`{"temporal": {"kind": "steps", "steps": [{"at_sec": 0, "scale": 1}, {"at_sec": 10, "scale": 2}, {"at_sec": 10, "scale": 3}]}}`,
			"strictly increasing"},
		{"first step not at zero",
			`{"temporal": {"kind": "steps", "steps": [{"at_sec": 5, "scale": 1}]}}`,
			"first step must start at 0"},
		{"empty steps schedule", `{"temporal": {"kind": "steps"}}`,
			"steps temporal profile without steps"},
		{"negative step scale",
			`{"temporal": {"kind": "steps", "steps": [{"at_sec": 0, "scale": -2}]}}`,
			"step scale -2"},
		{"step beyond the period",
			`{"temporal": {"kind": "steps", "steps": [{"at_sec": 0, "scale": 1}, {"at_sec": 50, "scale": 2}], "period_sec": 40}}`,
			"beyond the period"},
		{"corridor axis out of range",
			`{"spatial": {"kind": "corridor", "peak": 3, "decay": 1, "axis": 5}}`,
			"corridor axis 5"},
		{"corridor without decay", `{"spatial": {"kind": "corridor", "peak": 3}}`,
			"corridor decay 0"},
		{"negative mobility multiplier",
			`{"mobility": {"spatial": {"kind": "hotspot", "peak": -0.5, "decay": 1}}}`,
			"hotspot peak -0.5"},
		{"zero mobility dwell scale",
			`{"mobility": {"spatial": {"kind": "uniform"}, "temporal": {"kind": "steps", "steps": [{"at_sec": 0, "scale": 0}]}}}`,
			"dwell scale 0"},
		{"mobility error is attributed",
			`{"mobility": {"spatial": {"kind": "volcano"}}}`,
			"in mobility profile"},
		{"unknown policy name", `{"policy": {"kind": "priority"}}`,
			`unknown policy name "priority"`},
		{"guard parameter on the queue policy",
			`{"policy": {"kind": "queue", "guard": 2, "queue_capacity": 4, "queue_deadline_sec": 5}}`,
			`guard channels 2 set for policy "queue"`},
		{"queue policy without capacity", `{"policy": {"kind": "queue", "queue_deadline_sec": 5}}`,
			"queue capacity 0"},
		{"queue policy without deadline", `{"policy": {"kind": "queue", "queue_capacity": 4}}`,
			"queue deadline 0"},
		{"negative guard reservation", `{"policy": {"kind": "guard", "guard": -1}}`,
			"negative guard channels -1"},
		{"retry policy with queue parameters",
			`{"policy": {"kind": "retry", "queue_capacity": 4}}`,
			`queue capacity 4 set for policy "retry"`},
		{"trace without data", `{"temporal": {"kind": "trace"}}`,
			"without csv or rows"},
		{"trace with both csv and rows",
			`{"temporal": {"kind": "trace", "csv": "t.csv", "rows": [{"at_sec": 0, "rate_per_s": 1}, {"at_sec": 10, "rate_per_s": 2}]}}`,
			"both csv and inline rows"},
		{"trace rows not at zero",
			`{"temporal": {"kind": "trace", "rows": [{"at_sec": 5, "rate_per_s": 1}, {"at_sec": 10, "rate_per_s": 2}]}}`,
			"first trace row must start at 0"},
		{"trace rows not monotone",
			`{"temporal": {"kind": "trace", "rows": [{"at_sec": 0, "rate_per_s": 1}, {"at_sec": 10, "rate_per_s": 2}, {"at_sec": 10, "rate_per_s": 3}]}}`,
			"strictly increasing"},
		{"trace row beyond period",
			`{"temporal": {"kind": "trace", "period_sec": 8, "rows": [{"at_sec": 0, "rate_per_s": 1}, {"at_sec": 10, "rate_per_s": 2}]}}`,
			"beyond the period"},
		{"trace data on a steps profile",
			`{"temporal": {"kind": "steps", "steps": [{"at_sec": 0, "scale": 1}], "csv": "t.csv"}}`,
			"steps temporal profile with trace data"},
		{"steps on a constant profile",
			`{"temporal": {"steps": [{"at_sec": 0, "scale": 1}]}}`,
			"constant temporal profile with steps"},
		{"mmpp without sources", `{"temporal": {"kind": "mmpp", "mean_on_sec": 10, "mean_off_sec": 20, "horizon_sec": 100}}`,
			"at least 1 source"},
		{"mmpp without horizon", `{"temporal": {"kind": "mmpp", "sources": 4, "mean_on_sec": 10, "mean_off_sec": 20}}`,
			"horizon 0"},
		{"mmpp trajectory too long",
			`{"temporal": {"kind": "mmpp", "sources": 1000, "mean_on_sec": 0.001, "mean_off_sec": 0.001, "horizon_sec": 1e6}}`,
			"too long"},
		{"onoff alpha outside the self-similar regime",
			`{"temporal": {"kind": "onoff", "mean_on_sec": 10, "mean_off_sec": 20, "pareto_alpha": 2.5, "horizon_sec": 100}}`,
			"outside (1, 2)"},
		{"mobility trace profile",
			`{"mobility": {"spatial": {"kind": "uniform"}, "temporal": {"kind": "trace", "rows": [{"at_sec": 0, "rate_per_s": 1}, {"at_sec": 10, "rate_per_s": 2}]}}}`,
			"must be constant or steps"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.in))
			if err == nil {
				t.Fatalf("Parse accepted %q", tc.in)
			}
			if !errors.Is(err, ErrInvalidScenario) {
				t.Errorf("error does not wrap ErrInvalidScenario: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the defect (want substring %q)", err, tc.want)
			}
		})
	}
}

// TestScheduleErrorsAreTyped pins the shared timeline sentinel: every
// schedule-shape defect — in synthetic step schedules and in trace
// timestamps alike — wraps ErrInvalidSchedule on top of ErrInvalidScenario,
// so tooling can distinguish "your timeline is broken" from every other
// scenario mistake. Value errors (a negative scale, a bad policy) stay
// outside the sentinel.
func TestScheduleErrorsAreTyped(t *testing.T) {
	scheduleErrs := []struct {
		name string
		in   string
	}{
		{"steps with a gap before zero", `{"temporal": {"kind": "steps", "steps": [{"at_sec": 5, "scale": 1}]}}`},
		{"steps not monotone", `{"temporal": {"kind": "steps", "steps": [{"at_sec": 0, "scale": 1}, {"at_sec": 10, "scale": 2}, {"at_sec": 7, "scale": 3}]}}`},
		{"steps beyond period", `{"temporal": {"kind": "steps", "steps": [{"at_sec": 0, "scale": 1}, {"at_sec": 50, "scale": 2}], "period_sec": 40}}`},
		{"steps with negative period", `{"temporal": {"kind": "steps", "steps": [{"at_sec": 0, "scale": 1}], "period_sec": -5}}`},
		{"trace rows not at zero", `{"temporal": {"kind": "trace", "rows": [{"at_sec": 5, "rate_per_s": 1}, {"at_sec": 10, "rate_per_s": 2}]}}`},
		{"trace rows not monotone", `{"temporal": {"kind": "trace", "rows": [{"at_sec": 0, "rate_per_s": 1}, {"at_sec": 10, "rate_per_s": 2}, {"at_sec": 4, "rate_per_s": 3}]}}`},
		{"trace row beyond period", `{"temporal": {"kind": "trace", "period_sec": 8, "rows": [{"at_sec": 0, "rate_per_s": 1}, {"at_sec": 10, "rate_per_s": 2}]}}`},
	}
	for _, tc := range scheduleErrs {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.in))
			if err == nil {
				t.Fatalf("Parse accepted %q", tc.in)
			}
			if !errors.Is(err, ErrInvalidSchedule) {
				t.Errorf("schedule defect should wrap ErrInvalidSchedule: %v", err)
			}
			if !errors.Is(err, ErrInvalidScenario) {
				t.Errorf("schedule defect should still wrap ErrInvalidScenario: %v", err)
			}
		})
	}
	valueErrs := []string{
		`{"temporal": {"kind": "steps", "steps": [{"at_sec": 0, "scale": -2}]}}`,
		`{"temporal": {"kind": "trace", "rows": [{"at_sec": 0, "rate_per_s": -1}, {"at_sec": 10, "rate_per_s": 2}]}}`,
	}
	for _, in := range valueErrs {
		_, err := Parse([]byte(in))
		if err == nil {
			t.Fatalf("Parse accepted %q", in)
		}
		if errors.Is(err, ErrInvalidSchedule) {
			t.Errorf("value defect should not claim the schedule sentinel: %v", err)
		}
	}
}

// TestLoadAttributesFileErrors checks that Load reports the offending path
// for both unreadable files and invalid contents.
func TestLoadAttributesFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(dir + "/missing.json"); err == nil || errors.Is(err, ErrInvalidScenario) {
		t.Errorf("missing file should be an I/O error, got %v", err)
	}
	bad := dir + "/bad.json"
	if err := os.WriteFile(bad, []byte(`{"spatial": {"kind": "volcano"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(bad)
	if err == nil || !errors.Is(err, ErrInvalidScenario) {
		t.Fatalf("invalid contents should wrap ErrInvalidScenario, got %v", err)
	}
	if !strings.Contains(err.Error(), bad) {
		t.Errorf("error %q does not name the file", err)
	}
}

// TestParseMobilityRoundTrip pins the JSON form of the mobility extension:
// spatial and temporal blocks under "mobility" decode into Spec.Mobility.
func TestParseMobilityRoundTrip(t *testing.T) {
	doc := []byte(`{
		"name": "commute",
		"spatial": {"kind": "corridor", "peak": 3, "decay": 1, "axis": 1},
		"mobility": {
			"spatial": {"kind": "corridor", "peak": 0.25, "decay": 1, "axis": 1},
			"temporal": {"kind": "steps", "steps": [{"at_sec": 0, "scale": 1}, {"at_sec": 900, "scale": 0.5}]}
		}
	}`)
	s, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mobility == nil {
		t.Fatal("mobility block not decoded")
	}
	if s.Mobility.Spatial.Kind != Corridor || s.Mobility.Spatial.Peak != 0.25 || s.Mobility.Spatial.Axis != 1 {
		t.Errorf("mobility spatial mismatch: %+v", s.Mobility.Spatial)
	}
	if len(s.Mobility.Temporal.Steps) != 2 || s.Mobility.Temporal.Steps[1].Scale != 0.5 {
		t.Errorf("mobility temporal mismatch: %+v", s.Mobility.Temporal)
	}
}

// TestParsePolicyRoundTrip pins the JSON form of the policy extension: a
// "policy" block decodes into Spec.Policy and compiles to the simulator's
// policy configuration.
func TestParsePolicyRoundTrip(t *testing.T) {
	doc := []byte(`{
		"name": "rush",
		"spatial": {"kind": "hotspot", "peak": 4, "decay": 1.5},
		"policy": {"kind": "queue", "queue_capacity": 4, "queue_deadline_sec": 5}
	}`)
	s, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	if s.Policy == nil {
		t.Fatal("policy block not decoded")
	}
	if s.Policy.Kind != "queue" || s.Policy.QueueCapacity != 4 || s.Policy.QueueDeadlineSec != 5 {
		t.Errorf("policy mismatch: %+v", s.Policy)
	}
	pc, err := s.Policy.compile()
	if err != nil {
		t.Fatal(err)
	}
	if pc.Kind.String() != "queue" || pc.QueueCapacity != 4 || pc.QueueDeadlineSec != 5 {
		t.Errorf("compiled policy mismatch: %+v", pc)
	}
}
