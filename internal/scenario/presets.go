package scenario

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
)

// busyHourSteps is a busy-hour ramp sized for the default measurement setup
// (2000 s warm-up + 20000 s measurement): the load climbs to twice the
// baseline mid-run and falls back off, all within the measured window.
func busyHourSteps() []Step {
	return []Step{
		{AtSec: 0, Scale: 1.0},
		{AtSec: 6000, Scale: 1.4},
		{AtSec: 10000, Scale: 2.0},
		{AtSec: 14000, Scale: 1.4},
		{AtSec: 18000, Scale: 1.0},
	}
}

// presets returns the built-in scenarios, keyed by name.
func presets() map[string]Spec {
	hotspot := Spatial{Kind: Hotspot, Center: cluster.MidCell, Peak: 4, Decay: 1.5}
	return map[string]Spec{
		// The paper's symmetric baseline: weight 1 and scale 1 everywhere,
		// bit-identical to running without a scenario.
		Uniform: {Name: Uniform, Spatial: Spatial{Kind: Uniform}},
		// A radial hotspot: the mid cell carries four times the baseline
		// load, decaying by e every 1.5 hex hops towards the cluster edge.
		Hotspot: {Name: Hotspot, Spatial: hotspot},
		// A linear gradient from half the baseline load at the mid cell to
		// one-and-a-half times at the cells farthest from it.
		Gradient: {Name: Gradient, Spatial: Spatial{Kind: Gradient, Center: cluster.MidCell, Low: 0.5, High: 1.5}},
		// A uniform cluster through a busy-hour ramp peaking at twice the
		// baseline load.
		"busyhour": {Name: "busyhour", Temporal: Temporal{Kind: Steps, Steps: busyHourSteps()}},
		// The hotspot shape riding the busy-hour ramp: spatial and temporal
		// generators compose multiplicatively.
		"hotspot-busyhour": {Name: "hotspot-busyhour", Spatial: hotspot,
			Temporal: Temporal{Kind: Steps, Steps: busyHourSteps()}},
		// A highway corridor along hex axis 0 through the mid cell: the
		// corridor cells carry three times the baseline load, and the fast
		// vehicles on it dwell only a quarter of the baseline time, so the
		// handover flow is strongly skewed along the axis.
		"highway": {Name: "highway",
			Spatial: Spatial{Kind: Corridor, Center: cluster.MidCell, Peak: 3, Decay: 1},
			Mobility: &Mobility{
				Spatial: Spatial{Kind: Corridor, Center: cluster.MidCell, Peak: 0.25, Decay: 1}}},
		// The radial hotspot populated by slow pedestrians: the center cell
		// carries four times the load but its users dwell three times longer,
		// so the heavier load hands over less often — the opposite skew of
		// the highway.
		"hotspot-pedestrian": {Name: "hotspot-pedestrian", Spatial: hotspot,
			Mobility: &Mobility{
				Spatial: Spatial{Kind: Hotspot, Center: cluster.MidCell, Peak: 3, Decay: 1.5}}},
		// The hotspot under a guard-channel policy: two voice channels are
		// reserved for handovers, trading fresh-call blocking in the hot
		// center for fewer dropped handovers.
		"hotspot-guard": {Name: "hotspot-guard", Spatial: hotspot,
			Policy: &PolicySpec{Kind: "guard", Guard: 2}},
		// The hotspot with queued handovers: a blocked voice handover waits
		// up to five seconds in a four-deep per-cell queue for a channel to
		// free instead of dropping immediately.
		"hotspot-hoqueue": {Name: "hotspot-hoqueue", Spatial: hotspot,
			Policy: &PolicySpec{Kind: "queue", QueueCapacity: 4, QueueDeadlineSec: 5}},
		// The highway corridor with directed retry: a handover refused by a
		// saturated corridor cell is forwarded once to the source's next
		// neighbour — off the corridor, where channels are free.
		"highway-retry": {Name: "highway-retry",
			Spatial: Spatial{Kind: Corridor, Center: cluster.MidCell, Peak: 3, Decay: 1},
			Mobility: &Mobility{
				Spatial: Spatial{Kind: Corridor, Center: cluster.MidCell, Peak: 0.25, Decay: 1}},
			Policy: &PolicySpec{Kind: "retry"}},
		// A measured-style diurnal trace replayed periodically: half-hour
		// cycles through a morning ramp, a peak, and a quiet tail, normalized
		// to the same aggregate load as the uniform scenario. The inline rows
		// stand in for a CSV export (see ParseTraceCSV); the fine 300 s
		// granularity makes even short runs cross several rate changes.
		Trace: {Name: Trace, Temporal: Temporal{Kind: Trace, PeriodSec: 1800,
			Rows: []TraceRow{
				{AtSec: 0, RatePerSec: 1.0},
				{AtSec: 300, RatePerSec: 1.8},
				{AtSec: 600, RatePerSec: 2.4},
				{AtSec: 900, RatePerSec: 1.6},
				{AtSec: 1200, RatePerSec: 0.8},
				{AtSec: 1500, RatePerSec: 0.5},
			}}},
		// Eight exponential on/off sources superposed into an MMPP: the
		// aggregate load bursts between silence (all sources off) and three
		// times the baseline, with stationary mean exactly the baseline. The
		// trajectory is pre-sampled from the spec seed, so every engine
		// layout replays the identical burst pattern.
		"mmpp-bursty": {Name: "mmpp-bursty", Temporal: Temporal{Kind: MMPP,
			Sources: 8, MeanOnSec: 120, MeanOffSec: 240, HorizonSec: 30000, Seed: 17}},
	}
}

// Names returns the built-in scenario names in sorted order.
func Names() []string {
	m := presets()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Preset returns the built-in scenario with the given name.
func Preset(name string) (Spec, error) {
	if s, ok := presets()[name]; ok {
		return s, nil
	}
	return Spec{}, fmt.Errorf("%w: unknown preset %q (built in: %v)", ErrInvalidScenario, name, Names())
}
