package scenario

import (
	"math"
	"os"
	"testing"

	"repro/internal/cluster"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/traffic"
)

func topo19(t *testing.T) *cluster.Topology {
	t.Helper()
	topo, err := cluster.Preset(19)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestUniformIsExactlyBaseline pins the bit-exactness contract: the uniform
// scenario must return the baseline rates unchanged (weight and scale exactly
// 1), so a uniform run reproduces the profile-less simulator bit for bit.
func TestUniformIsExactlyBaseline(t *testing.T) {
	spec, err := Preset(Uniform)
	if err != nil {
		t.Fatal(err)
	}
	p, err := spec.Compile(topo19(t), 0.475, 0.025)
	if err != nil {
		t.Fatal(err)
	}
	for cell := 0; cell < p.NumCells(); cell++ {
		for _, at := range []float64{0, 123.456, 1e6} {
			v, d := p.Rates(cell, at)
			if v != 0.475 || d != 0.025 {
				t.Fatalf("cell %d at %v: rates (%v, %v), want baseline exactly", cell, at, v, d)
			}
		}
	}
	if !math.IsInf(p.NextChange(0), 1) {
		t.Error("uniform scenario should never change rates")
	}
}

// TestHotspotDecaysWithHexDistance checks the radial shape: the center cell
// carries the peak weight and weights fall off monotonically in hex distance.
func TestHotspotDecaysWithHexDistance(t *testing.T) {
	topo := topo19(t)
	spec := Spec{Spatial: Spatial{Kind: Hotspot, Center: 0, Peak: 4, Decay: 1.5}}
	p, err := spec.Compile(topo, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Weights()
	if w[0] != 4 {
		t.Errorf("center weight %v, want the peak 4", w[0])
	}
	dist := topo.Distances(0)
	for i := 1; i < len(w); i++ {
		if w[i] >= w[0] {
			t.Errorf("cell %d (distance %d) weight %v not below the peak", i, dist[i], w[i])
		}
		for j := range w {
			if dist[j] > dist[i] && w[j] >= w[i] {
				t.Errorf("weight must decay with distance: cell %d (d=%d, w=%v) vs cell %d (d=%d, w=%v)",
					i, dist[i], w[i], j, dist[j], w[j])
			}
		}
		if w[i] < 1 {
			t.Errorf("hotspot weights stay above the baseline, got %v", w[i])
		}
	}
}

// TestGradientInterpolatesByDistance checks the linear shape between the
// center cell and the cells at the cluster's eccentricity.
func TestGradientInterpolatesByDistance(t *testing.T) {
	topo := topo19(t)
	spec := Spec{Spatial: Spatial{Kind: Gradient, Center: 0, Low: 0.5, High: 1.5}}
	p, err := spec.Compile(topo, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Weights()
	dist := topo.Distances(0)
	ecc := topo.Eccentricity(0)
	for i := range w {
		want := 0.5 + 1.0*float64(dist[i])/float64(ecc)
		if math.Abs(w[i]-want) > 1e-12 {
			t.Errorf("cell %d: weight %v, want %v", i, w[i], want)
		}
	}
}

// TestCorridorShapesAlongAxis checks the highway shape: cells on the lattice
// axis through the center carry the peak weight, weights decay with the
// perpendicular distance, and the shape needs a hex topology.
func TestCorridorShapesAlongAxis(t *testing.T) {
	topo := topo19(t)
	spec := Spec{Spatial: Spatial{Kind: Corridor, Center: 0, Peak: 3, Decay: 1, Axis: 0}}
	p, err := spec.Compile(topo, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Weights()
	dist := topo.AxisDistances(0, 0)
	var onAxis int
	for i, d := range dist {
		want := 1 + 2*math.Exp(-float64(d))
		if math.Abs(w[i]-want) > 1e-12 {
			t.Errorf("cell %d (axis distance %d): weight %v, want %v", i, d, w[i], want)
		}
		if d == 0 {
			onAxis++
			if w[i] != 3 {
				t.Errorf("corridor cell %d weight %v, want the peak 3", i, w[i])
			}
		}
	}
	if onAxis != 5 {
		t.Errorf("19-cell ring should have 5 corridor cells on an axis, found %d", onAxis)
	}

	ring, err := cluster.NewRing(6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Compile(ring, 1, 1); err == nil {
		t.Error("corridor on a plain ring (no hex embedding) should be rejected")
	}
}

// TestMobilityCompilePositivity checks the mobility-specific compile rules:
// multipliers must be strictly positive everywhere, and valid shapes produce
// the weight-times-scale multiplier with correct change boundaries.
func TestMobilityCompilePositivity(t *testing.T) {
	topo := topo19(t)

	// A hotspot with peak 0 zeroes the center cell's dwell — rejected.
	zeroCenter := Mobility{Spatial: Spatial{Kind: Hotspot, Peak: 0, Decay: 100}}
	if _, err := zeroCenter.Compile(topo); err == nil {
		t.Error("near-zero dwell weight at the center should be rejected")
	}
	// A gradient reaching 0 at the center — rejected.
	zeroLow := Mobility{Spatial: Spatial{Kind: Gradient, Low: 0, High: 2}}
	if _, err := zeroLow.Compile(topo); err == nil {
		t.Error("zero dwell weight should be rejected")
	}
	if _, err := (Mobility{}).Compile(nil); err == nil {
		t.Error("nil topology should be rejected")
	}

	mob := Mobility{
		Spatial: Spatial{Kind: Hotspot, Peak: 3, Decay: 1.5},
		Temporal: Temporal{Kind: Steps, Steps: []Step{
			{AtSec: 0, Scale: 1}, {AtSec: 100, Scale: 0.5}}},
	}
	p, err := mob.Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCells() != 19 {
		t.Fatalf("compiled for %d cells", p.NumCells())
	}
	if got := p.Multiplier(0, 0); got != 3 {
		t.Errorf("center multiplier at t=0: %v, want 3", got)
	}
	if got := p.Multiplier(0, 100); got != 1.5 {
		t.Errorf("center multiplier at t=100: %v, want 3*0.5", got)
	}
	if got := p.NextChange(0); got != 100 {
		t.Errorf("NextChange(0) = %v, want 100", got)
	}
	if !math.IsInf(p.NextChange(100), 1) {
		t.Errorf("NextChange(100) = %v, want +Inf", p.NextChange(100))
	}
	if got := p.Multiplier(99, 0); got != 1 {
		t.Errorf("out-of-range cells must see the neutral multiplier, got %v", got)
	}
}

// TestNormalizePreservesAggregateLoad checks that a normalized shape keeps
// the cluster-aggregate load of the uniform scenario: the weights average 1.
func TestNormalizePreservesAggregateLoad(t *testing.T) {
	topo := topo19(t)
	for _, spec := range []Spec{
		{Spatial: Spatial{Kind: Hotspot, Center: 0, Peak: 6, Decay: 2, Normalize: true}},
		{Spatial: Spatial{Kind: Gradient, Center: 0, Low: 0.2, High: 3, Normalize: true}},
	} {
		p, err := spec.Compile(topo, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range p.Weights() {
			sum += v
		}
		if mean := sum / float64(p.NumCells()); math.Abs(mean-1) > 1e-12 {
			t.Errorf("%s: normalized weights average %v, want 1", spec.Spatial.Kind, mean)
		}
	}
}

// TestTemporalStepsAndNextChange checks the piecewise-constant schedule and
// its boundary iterator, non-periodic and periodic.
func TestTemporalStepsAndNextChange(t *testing.T) {
	topo := cluster.NewHexCluster()
	steps := []Step{{AtSec: 0, Scale: 1}, {AtSec: 100, Scale: 2}, {AtSec: 300, Scale: 0.5}}
	spec := Spec{Temporal: Temporal{Kind: Steps, Steps: steps}}
	p, err := spec.Compile(topo, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ at, scale, next float64 }{
		{0, 1, 100},
		{99.9, 1, 100},
		{100, 2, 300},
		{250, 2, 300},
		{300, 0.5, math.Inf(1)},
		{1e9, 0.5, math.Inf(1)},
	} {
		if v, _ := p.Rates(0, tc.at); v != tc.scale {
			t.Errorf("scale at %v: got %v, want %v", tc.at, v, tc.scale)
		}
		if next := p.NextChange(tc.at); next != tc.next {
			t.Errorf("NextChange(%v): got %v, want %v", tc.at, next, tc.next)
		}
	}

	periodic := Spec{Temporal: Temporal{Kind: Steps, Steps: steps[:2], PeriodSec: 200}}
	p2, err := periodic.Compile(topo, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ at, scale, next float64 }{
		{0, 1, 100},
		{100, 2, 200},
		{200, 1, 300},
		{350, 2, 400},
	} {
		if v, _ := p2.Rates(0, tc.at); v != tc.scale {
			t.Errorf("periodic scale at %v: got %v, want %v", tc.at, v, tc.scale)
		}
		if next := p2.NextChange(tc.at); next != tc.next {
			t.Errorf("periodic NextChange(%v): got %v, want %v", tc.at, next, tc.next)
		}
	}
}

// TestValidateRejectsMalformedSpecs sweeps the validation error paths.
func TestValidateRejectsMalformedSpecs(t *testing.T) {
	bad := []Spec{
		{Spatial: Spatial{Kind: "volcano"}},
		{Spatial: Spatial{Kind: Hotspot, Peak: 4}},                                       // missing decay
		{Spatial: Spatial{Kind: Hotspot, Peak: math.Inf(1), Decay: 1}},                   // non-finite peak
		{Spatial: Spatial{Kind: Gradient, Low: -1, High: 1}},                             // negative endpoint
		{Spatial: Spatial{Kind: Hotspot, Peak: 2, Decay: 1, Center: -3}},                 // negative center
		{Temporal: Temporal{Kind: "sine"}},                                               // unknown temporal kind
		{Temporal: Temporal{Kind: Steps}},                                                // no steps
		{Temporal: Temporal{Kind: Steps, Steps: []Step{{AtSec: 5, Scale: 1}}}},           // first step not at 0
		{Temporal: Temporal{Kind: Steps, Steps: []Step{{0, 1}, {10, 2}, {10, 3}}}},       // not increasing
		{Temporal: Temporal{Kind: Steps, Steps: []Step{{0, -1}}}},                        // negative scale
		{Temporal: Temporal{Kind: Steps, Steps: []Step{{0, 1}, {50, 2}}, PeriodSec: 40}}, // step beyond period
		{Temporal: Temporal{Kind: Constant, Steps: []Step{{0, 1}}}},                      // steps on constant
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("spec %d should be rejected: %+v", i, spec)
		}
	}
	if err := (Spec{}).Validate(); err != nil {
		t.Errorf("zero spec (uniform constant) should validate, got %v", err)
	}
}

// TestCompileRejectsBadTargets checks the topology- and rate-dependent error
// paths that Validate cannot see.
func TestCompileRejectsBadTargets(t *testing.T) {
	topo := cluster.NewHexCluster()
	if _, err := (Spec{}).Compile(nil, 1, 1); err == nil {
		t.Error("nil topology should be rejected")
	}
	out := Spec{Spatial: Spatial{Kind: Hotspot, Center: 7, Peak: 2, Decay: 1}}
	if _, err := out.Compile(topo, 1, 1); err == nil {
		t.Error("center cell outside the cluster should be rejected")
	}
	if _, err := (Spec{}).Compile(topo, math.NaN(), 1); err == nil {
		t.Error("NaN baseline rate should be rejected")
	}
	allZero := Spec{Spatial: Spatial{Kind: Gradient, Low: 0, High: 0, Normalize: true}}
	if _, err := allZero.Compile(topo, 1, 1); err == nil {
		t.Error("normalizing all-zero weights should be rejected")
	}
}

// TestParseAndLoad round-trips the JSON format and rejects unknown fields.
func TestParseAndLoad(t *testing.T) {
	good := []byte(`{
		"name": "rush",
		"spatial": {"kind": "hotspot", "center": 0, "peak": 4, "decay": 1.5},
		"temporal": {"kind": "steps", "steps": [{"at_sec": 0, "scale": 1}, {"at_sec": 900, "scale": 2}]}
	}`)
	s, err := Parse(good)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "rush" || s.Spatial.Peak != 4 || len(s.Temporal.Steps) != 2 {
		t.Errorf("parsed spec mismatch: %+v", s)
	}
	if _, err := Parse([]byte(`{"spatial": {"kind": "uniform", "sigma": 2}}`)); err == nil {
		t.Error("unknown fields should be rejected")
	}
	if _, err := Parse([]byte(`{"spatial": {"kind": "hotspot"}}`)); err == nil {
		t.Error("invalid parsed specs should be rejected")
	}
	if _, err := Load(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing files should be reported")
	}
	path := t.TempDir() + "/s.json"
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Errorf("loading a valid file failed: %v", err)
	}
}

// TestPresetsCompileEverywhere ensures every built-in scenario compiles on
// every preset cluster size.
func TestPresetsCompileEverywhere(t *testing.T) {
	for _, name := range Names() {
		spec, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, cells := range []int{7, 19, 37} {
			topo, err := cluster.Preset(cells)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := spec.Compile(topo, 0.475, 0.025); err != nil {
				t.Errorf("preset %q on %d cells: %v", name, cells, err)
			}
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Error("unknown preset should be rejected")
	}
}

// TestApplyInstallsProfile checks the sim.Config integration: Apply splits
// the configured aggregate rate via BaseRates and installs the profile.
func TestApplyInstallsProfile(t *testing.T) {
	cfg := sim.DefaultConfig(traffic.Model3, 0.5)
	spec, err := Preset(Hotspot)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Apply(&cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Rates == nil {
		t.Fatal("Apply should install cfg.Rates")
	}
	if p.NumCells() != 7 {
		t.Errorf("nil topology should compile against the seven-cell cluster, got %d cells", p.NumCells())
	}
	voice, data := cfg.BaseRates()
	v, d := p.Rates(0, 0)
	if v != voice*4 || d != data*4 {
		t.Errorf("center rates (%v, %v), want baseline * peak (%v, %v)", v, d, voice*4, data*4)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("configuration with scenario profile should validate: %v", err)
	}
	if cfg.Mobility != nil {
		t.Error("a spec without mobility must not install a mobility profile")
	}
}

// TestApplyInstallsMobility checks the dwell-profile side of Apply: mobility
// presets install cfg.Mobility alongside cfg.Rates, the result validates,
// and the compiled multipliers carry the declared skew.
func TestApplyInstallsMobility(t *testing.T) {
	cfg := sim.DefaultConfig(traffic.Model3, 0.5)
	spec, err := Preset("highway")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(&cfg, spec); err != nil {
		t.Fatal(err)
	}
	if cfg.Mobility == nil {
		t.Fatal("highway preset should install a mobility profile")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("configuration with mobility profile should validate: %v", err)
	}
	dp, ok := cfg.Mobility.(*DwellProfile)
	if !ok {
		t.Fatalf("installed mobility profile has type %T", cfg.Mobility)
	}
	if got := dp.Multiplier(0, 0); got != 0.25 {
		t.Errorf("corridor dwell multiplier %v, want 0.25", got)
	}
	if dp.NumCells() != 7 {
		t.Errorf("nil topology should compile against the seven-cell cluster, got %d cells", dp.NumCells())
	}

	// Re-applying a mobility-less spec on the same Config must clear the
	// profile — a stale dwell skew leaking into the next scenario's runs
	// would silently misattribute results.
	plain, err := Preset(Hotspot)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(&cfg, plain); err != nil {
		t.Fatal(err)
	}
	if cfg.Mobility != nil {
		t.Error("Apply must clear a previously installed mobility profile")
	}
}

// TestApplyInstallsPolicy checks the admission-policy side of Apply: policy
// presets install cfg.Policy alongside cfg.Rates, the result validates
// against the default channel plan, and re-applying a policy-less spec
// clears the installed policy again.
func TestApplyInstallsPolicy(t *testing.T) {
	cfg := sim.DefaultConfig(traffic.Model3, 0.5)
	spec, err := Preset("hotspot-guard")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(&cfg, spec); err != nil {
		t.Fatal(err)
	}
	if cfg.Policy == nil {
		t.Fatal("hotspot-guard preset should install a policy")
	}
	if cfg.Policy.Kind != policy.GuardChannels || cfg.Policy.Guard != 2 {
		t.Errorf("installed policy %+v, want guard channels with reservation 2", cfg.Policy)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("configuration with policy should validate: %v", err)
	}

	plain, err := Preset(Hotspot)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(&cfg, plain); err != nil {
		t.Fatal(err)
	}
	if cfg.Policy != nil {
		t.Error("Apply must clear a previously installed policy")
	}
}

// TestPolicyPresetsCompile pins the policy parameterization of every policy
// preset: the spec validates, and the compiled policy matches the kind the
// preset name promises.
func TestPolicyPresetsCompile(t *testing.T) {
	wants := map[string]policy.Kind{
		"hotspot-guard":   policy.GuardChannels,
		"hotspot-hoqueue": policy.QueuedHandovers,
		"highway-retry":   policy.DirectedRetry,
	}
	for name, kind := range wants {
		spec, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if spec.Policy == nil {
			t.Fatalf("%s: preset has no policy block", name)
		}
		pc, err := spec.Policy.compile()
		if err != nil {
			t.Fatal(err)
		}
		if pc.Kind != kind {
			t.Errorf("%s: policy kind %v, want %v", name, pc.Kind, kind)
		}
	}
}
