package scenario

import (
	"encoding/csv"
	"errors"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/des"
)

// ErrInvalidSchedule marks a malformed piecewise-constant timeline: step
// boundaries or trace timestamps that are non-finite, not strictly
// increasing, not anchored at 0, or lying beyond the declared period. It is
// always wrapped together with ErrInvalidScenario, so callers can match
// either the broad class (any scenario defect) or specifically a broken
// schedule shape — the step-schedule and trace validators share the exact
// same timeline rules through validateTimeline and validatePeriod.
var ErrInvalidSchedule = errors.New("invalid schedule")

// validateTimeline enforces the shared shape rules of every piecewise-
// constant timeline, synthetic step schedules and measured trace timestamps
// alike: finite, non-negative, strictly increasing times anchored at 0. what
// names the boundary in error messages ("step", "trace row").
func validateTimeline(what string, times []float64) error {
	if len(times) == 0 {
		return fmt.Errorf("%w: %w: empty %s timeline", ErrInvalidScenario, ErrInvalidSchedule, what)
	}
	if times[0] != 0 {
		return fmt.Errorf("%w: %w: first %s must start at 0, got %v",
			ErrInvalidScenario, ErrInvalidSchedule, what, times[0])
	}
	prev := math.Inf(-1)
	for _, t := range times {
		if !finiteNonNeg(t) || t <= prev {
			return fmt.Errorf("%w: %w: %s times must be finite and strictly increasing, got %v after %v",
				ErrInvalidScenario, ErrInvalidSchedule, what, t, prev)
		}
		prev = t
	}
	return nil
}

// validatePeriod enforces the shared periodicity rule: a positive finite
// period strictly beyond the last boundary (period 0 means non-periodic).
func validatePeriod(what string, period, last float64) error {
	if period == 0 {
		return nil
	}
	if !finitePos(period) {
		return fmt.Errorf("%w: %w: period %v", ErrInvalidScenario, ErrInvalidSchedule, period)
	}
	if last >= period {
		return fmt.Errorf("%w: %w: %s at %v s lies beyond the period %v s",
			ErrInvalidScenario, ErrInvalidSchedule, what, last, period)
	}
	return nil
}

// TraceRow is one segment of a measured arrival series in rate form: from
// AtSec until the next row, arrivals occur at RatePerSec (in the trace's own
// units — compilation normalizes the series to time-weighted mean 1, so only
// the shape matters). PayloadBytes optionally annotates the mean payload
// size observed in the window; it is surfaced as reporting metadata
// (Profile.MeanPayloadBytes) and does not change the packet model.
type TraceRow struct {
	AtSec        float64 `json:"at_sec"`
	RatePerSec   float64 `json:"rate_per_s"`
	PayloadBytes float64 `json:"payload_bytes,omitempty"`
}

// validateTrace checks the trace declaration. A spec carrying only a CSV
// path passes validation — reading the file is Load's job, and Compile
// rejects a spec whose CSV was never loaded — but inline or loaded rows are
// checked in full here.
func (tp Temporal) validateTrace() error {
	if tp.CSV == "" && len(tp.Rows) == 0 {
		return fmt.Errorf("%w: trace temporal profile without csv or rows", ErrInvalidScenario)
	}
	if tp.CSV != "" && len(tp.Rows) > 0 {
		return fmt.Errorf("%w: trace temporal profile with both csv and inline rows", ErrInvalidScenario)
	}
	if len(tp.Rows) == 0 {
		return nil
	}
	if err := validateTraceRows(tp.Rows); err != nil {
		return err
	}
	return validatePeriod("trace row", tp.PeriodSec, tp.Rows[len(tp.Rows)-1].AtSec)
}

// validateTraceRows checks a series in rate form: the shared timeline rules
// on the timestamps, finite non-negative rates with at least one positive
// (an all-zero series cannot be normalized), and finite non-negative payload
// annotations. At least two rows are required — a single row carries no
// temporal information and should be the constant profile instead.
func validateTraceRows(rows []TraceRow) error {
	if len(rows) < 2 {
		return fmt.Errorf("%w: trace needs at least 2 rows, got %d", ErrInvalidScenario, len(rows))
	}
	times := make([]float64, len(rows))
	for i, r := range rows {
		times[i] = r.AtSec
	}
	if err := validateTimeline("trace row", times); err != nil {
		return err
	}
	anyPositive := false
	for _, r := range rows {
		if !finiteNonNeg(r.RatePerSec) {
			return fmt.Errorf("%w: trace rate %v at %v s", ErrInvalidScenario, r.RatePerSec, r.AtSec)
		}
		if !finiteNonNeg(r.PayloadBytes) {
			return fmt.Errorf("%w: trace payload %v at %v s", ErrInvalidScenario, r.PayloadBytes, r.AtSec)
		}
		if r.RatePerSec > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		return fmt.Errorf("%w: trace rates are all zero, cannot normalize", ErrInvalidScenario)
	}
	return nil
}

// compileTrace normalizes the series to time-weighted mean scale 1 and
// returns it as a step schedule plus the arrival-weighted mean payload.
//
// The mean is taken over one period for periodic traces and over the
// measured span [0, last) otherwise — in the non-periodic case the final
// row's rate is excluded from the mean (it holds from the last timestamp on,
// beyond the measurement) but still compiles to a step, so the replay is
// defined for the whole run.
//
// A series whose rates are all bitwise equal normalizes to scale exactly 1
// everywhere and coalesces to the constant schedule, so a constant-rate
// trace reproduces the uniform profile — and with it the paper's symmetric
// load — bit for bit.
func (tp Temporal) compileTrace() (schedule, float64, error) {
	rows := tp.Rows
	if len(rows) == 0 {
		if tp.CSV != "" {
			return schedule{}, 0, fmt.Errorf("%w: trace csv %q not loaded (Load resolves and reads it; ParseTraceCSV parses raw data)",
				ErrInvalidScenario, tp.CSV)
		}
		return schedule{}, 0, fmt.Errorf("%w: trace temporal profile without csv or rows", ErrInvalidScenario)
	}

	allEqual := true
	for _, r := range rows[1:] {
		if r.RatePerSec != rows[0].RatePerSec {
			allEqual = false
			break
		}
	}

	// Time-weighted mean rate and arrival-weighted mean payload over the
	// trace span (one period when periodic).
	var rateDur, span, payloadArr, arr float64
	for i, r := range rows {
		var dur float64
		switch {
		case i+1 < len(rows):
			dur = rows[i+1].AtSec - r.AtSec
		case tp.PeriodSec > 0:
			dur = tp.PeriodSec - r.AtSec
		default:
			dur = 0 // final row of a non-periodic trace: horizon marker
		}
		rateDur += r.RatePerSec * dur
		span += dur
		payloadArr += r.PayloadBytes * r.RatePerSec * dur
		arr += r.RatePerSec * dur
	}
	var payload float64
	if arr > 0 {
		payload = payloadArr / arr
	}
	if allEqual {
		return schedule{}, payload, nil
	}
	mean := rateDur / span
	if mean <= 0 || math.IsInf(mean, 0) || math.IsNaN(mean) {
		return schedule{}, 0, fmt.Errorf("%w: trace mean rate %v, cannot normalize", ErrInvalidScenario, mean)
	}
	steps := make([]Step, len(rows))
	for i, r := range rows {
		steps[i] = Step{AtSec: r.AtSec, Scale: r.RatePerSec / mean}
	}
	return schedule{steps: steps, period: tp.PeriodSec}, payload, nil
}

// Trace CSV column headers. The second column selects the mode: rate_per_s
// rows hold their rate until the next row; arrivals rows count arrivals in
// the window [this row, next row), with the final row a pure horizon marker
// (arrivals 0) closing the last window.
const (
	traceColTime     = "time_sec"
	traceColRate     = "rate_per_s"
	traceColArrivals = "arrivals"
	traceColPayload  = "payload_bytes"
)

// ParseTraceCSV parses a measured arrival series. The format is a header
// line followed by numeric records:
//
//	time_sec,rate_per_s[,payload_bytes]   — rate mode
//	time_sec,arrivals[,payload_bytes]     — count mode
//
// Timestamps must be finite, strictly increasing, and start at 0 (shift a
// wall-clock trace before exporting it — silent re-anchoring would hide unit
// mistakes). Rates and counts must be finite and non-negative; in count
// mode the final record closes the last window and must carry 0 arrivals.
// Count-mode windows convert to rates (arrivals / window length), with the
// final horizon row holding the trace's overall mean rate — scale 1 after
// normalization — so a replay outliving its trace settles at the mean load.
func ParseTraceCSV(data []byte) ([]TraceRow, error) {
	r := csv.NewReader(strings.NewReader(string(data)))
	r.TrimLeadingSpace = true
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%w: %w: trace csv: %v", ErrInvalidScenario, ErrInvalidSchedule, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("%w: %w: trace csv: empty input", ErrInvalidScenario, ErrInvalidSchedule)
	}
	header := records[0]
	counts := false
	switch {
	case len(header) < 2 || len(header) > 3 || strings.TrimSpace(header[0]) != traceColTime:
		return nil, fmt.Errorf("%w: %w: trace csv: header %v, want %s,{%s|%s}[,%s]",
			ErrInvalidScenario, ErrInvalidSchedule, header,
			traceColTime, traceColRate, traceColArrivals, traceColPayload)
	case strings.TrimSpace(header[1]) == traceColRate:
	case strings.TrimSpace(header[1]) == traceColArrivals:
		counts = true
	default:
		return nil, fmt.Errorf("%w: %w: trace csv: second column %q, want %s or %s",
			ErrInvalidScenario, ErrInvalidSchedule, header[1], traceColRate, traceColArrivals)
	}
	hasPayload := len(header) == 3
	if hasPayload && strings.TrimSpace(header[2]) != traceColPayload {
		return nil, fmt.Errorf("%w: %w: trace csv: third column %q, want %s",
			ErrInvalidScenario, ErrInvalidSchedule, header[2], traceColPayload)
	}

	rows := make([]TraceRow, 0, len(records)-1)
	for line, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("%w: %w: trace csv line %d: %d fields, want %d",
				ErrInvalidScenario, ErrInvalidSchedule, line+2, len(rec), len(header))
		}
		var row TraceRow
		fields := []struct {
			name string
			dst  *float64
		}{{traceColTime, &row.AtSec}, {header[1], &row.RatePerSec}}
		if hasPayload {
			fields = append(fields, struct {
				name string
				dst  *float64
			}{traceColPayload, &row.PayloadBytes})
		}
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[i]), 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: %w: trace csv line %d: %s %q is not a finite number",
					ErrInvalidScenario, ErrInvalidSchedule, line+2, f.name, rec[i])
			}
			*f.dst = v
		}
		rows = append(rows, row)
	}
	if counts {
		if rows, err = countsToRates(rows); err != nil {
			return nil, err
		}
	}
	if err := validateTraceRows(rows); err != nil {
		return nil, err
	}
	return rows, nil
}

// countsToRates converts count-mode records (arrivals per window, final row
// a horizon marker) into rate form. It needs the timestamps ordered to form
// windows, so it enforces the timeline rules on the raw records first.
func countsToRates(rows []TraceRow) ([]TraceRow, error) {
	times := make([]float64, len(rows))
	for i, r := range rows {
		times[i] = r.AtSec
	}
	if err := validateTimeline("trace row", times); err != nil {
		return nil, err
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("%w: trace needs at least 2 rows, got %d", ErrInvalidScenario, len(rows))
	}
	last := rows[len(rows)-1]
	if last.RatePerSec != 0 {
		return nil, fmt.Errorf("%w: %w: final count-mode row must carry 0 arrivals (horizon marker), got %v",
			ErrInvalidScenario, ErrInvalidSchedule, last.RatePerSec)
	}
	var total float64
	for i := range rows[:len(rows)-1] {
		if !finiteNonNeg(rows[i].RatePerSec) {
			return nil, fmt.Errorf("%w: trace arrivals %v at %v s", ErrInvalidScenario, rows[i].RatePerSec, rows[i].AtSec)
		}
		total += rows[i].RatePerSec
		rows[i].RatePerSec /= rows[i+1].AtSec - rows[i].AtSec
	}
	// The horizon row holds the trace's overall mean rate, which normalizes
	// to scale ~1: a replay outliving its trace settles at the mean load.
	rows[len(rows)-1].RatePerSec = total / (last.AtSec - rows[0].AtSec)
	return rows, nil
}

// LoadTraceCSV reads and parses a trace file in the format of ParseTraceCSV.
func LoadTraceCSV(path string) ([]TraceRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	rows, err := ParseTraceCSV(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return rows, nil
}

// Substream tags of the modulator trajectories, fed through des.SubstreamSeed
// so a spec seed never collides with the simulator's own cell substreams.
const (
	mmppSubstream  = 0x4d4d5050 // "MMPP"
	onoffSubstream = 0x4f4e4f46 // "ONOF"
)

func (tp Temporal) validateMMPP() error {
	if tp.Sources < 1 {
		return fmt.Errorf("%w: mmpp needs at least 1 source, got %d", ErrInvalidScenario, tp.Sources)
	}
	if !finitePos(tp.MeanOnSec) || !finitePos(tp.MeanOffSec) {
		return fmt.Errorf("%w: mmpp mean sojourns on=%v off=%v must be positive",
			ErrInvalidScenario, tp.MeanOnSec, tp.MeanOffSec)
	}
	if !finitePos(tp.HorizonSec) {
		return fmt.Errorf("%w: mmpp horizon %v must be positive", ErrInvalidScenario, tp.HorizonSec)
	}
	if tp.PeriodSec != 0 {
		return fmt.Errorf("%w: mmpp temporal profile cannot be periodic", ErrInvalidScenario)
	}
	if tp.ParetoAlpha != 0 {
		return fmt.Errorf("%w: pareto_alpha is an onoff parameter, not mmpp", ErrInvalidScenario)
	}
	// Bound the pre-sampled trajectory: expected transitions are at most
	// horizon * sources * max(1/on, 1/off).
	if jumps := tp.HorizonSec * float64(tp.Sources) * math.Max(1/tp.MeanOnSec, 1/tp.MeanOffSec); jumps > 4e6 {
		return fmt.Errorf("%w: mmpp trajectory of ~%.0f transitions is too long (max 4e6); shorten the horizon or slow the sources",
			ErrInvalidScenario, jumps)
	}
	return nil
}

// compileMMPP pre-samples the superposition of Sources independent
// exponential on/off sources into a deterministic step schedule. With r
// sources off, the aggregate rate scale is (M-r)/(M*pOn) where pOn is the
// stationary on-probability, so the stationary mean scale is exactly 1 and
// the modulated load fluctuates around the configured baseline. The
// trajectory depends only on (Seed, Sources, MeanOnSec, MeanOffSec,
// HorizonSec) — never on the simulator's seed or engine layout — so serial
// and sharded runs see the same compiled schedule and stay bit-identical.
func (tp Temporal) compileMMPP() schedule {
	m := float64(tp.Sources)
	alpha := 1 / tp.MeanOnSec // on -> off rate per source
	beta := 1 / tp.MeanOffSec // off -> on rate per source
	pOn := tp.MeanOnSec / (tp.MeanOnSec + tp.MeanOffSec)
	str := des.NewStream(des.SubstreamSeed(tp.Seed, mmppSubstream))

	// Stationary initial state: each source independently on with pOn.
	off := 0
	for i := 0; i < tp.Sources; i++ {
		if !str.Bernoulli(pOn) {
			off++
		}
	}
	scale := func(off int) float64 { return (m - float64(off)) / (m * pOn) }
	steps := []Step{{AtSec: 0, Scale: scale(off)}}
	t := 0.0
	for {
		onToOff := (m - float64(off)) * alpha
		total := onToOff + float64(off)*beta
		t += str.Exponential(1 / total)
		if t >= tp.HorizonSec {
			break
		}
		if str.Bernoulli(onToOff / total) {
			off++
		} else {
			off--
		}
		steps = append(steps, Step{AtSec: t, Scale: scale(off)})
	}
	return schedule{steps: steps}
}

func (tp Temporal) validateOnOff() error {
	if tp.Sources != 0 {
		return fmt.Errorf("%w: sources is an mmpp parameter, not onoff", ErrInvalidScenario)
	}
	if !finitePos(tp.MeanOnSec) || !finitePos(tp.MeanOffSec) {
		return fmt.Errorf("%w: onoff mean sojourns on=%v off=%v must be positive",
			ErrInvalidScenario, tp.MeanOnSec, tp.MeanOffSec)
	}
	if !(tp.ParetoAlpha > 1 && tp.ParetoAlpha < 2) {
		return fmt.Errorf("%w: onoff pareto alpha %v outside (1, 2), the finite-mean self-similar regime",
			ErrInvalidScenario, tp.ParetoAlpha)
	}
	if !finitePos(tp.HorizonSec) {
		return fmt.Errorf("%w: onoff horizon %v must be positive", ErrInvalidScenario, tp.HorizonSec)
	}
	if tp.PeriodSec != 0 {
		return fmt.Errorf("%w: onoff temporal profile cannot be periodic", ErrInvalidScenario)
	}
	if jumps := tp.HorizonSec * (1/tp.MeanOnSec + 1/tp.MeanOffSec); jumps > 4e6 {
		return fmt.Errorf("%w: onoff trajectory of ~%.0f transitions is too long (max 4e6); shorten the horizon or slow the source",
			ErrInvalidScenario, jumps)
	}
	return nil
}

// compileOnOff pre-samples a single on/off source with Pareto sojourns
// (tail index in (1, 2): finite mean, infinite variance — the construction
// whose aggregate is self-similar). During on phases the scale is
// (on+off)/on so the stationary mean scale is 1; off phases carry scale 0.
// Deterministic in the spec seed, exactly like the MMPP trajectory.
func (tp Temporal) compileOnOff() schedule {
	a := tp.ParetoAlpha
	// Pareto scale parameters matching the declared mean sojourns:
	// E[X] = xm * a/(a-1)  =>  xm = mean * (a-1)/a.
	xmOn := tp.MeanOnSec * (a - 1) / a
	xmOff := tp.MeanOffSec * (a - 1) / a
	scaleOn := (tp.MeanOnSec + tp.MeanOffSec) / tp.MeanOnSec
	str := des.NewStream(des.SubstreamSeed(tp.Seed, onoffSubstream))

	on := str.Bernoulli(tp.MeanOnSec / (tp.MeanOnSec + tp.MeanOffSec))
	t := 0.0
	var steps []Step
	for t < tp.HorizonSec {
		s := 0.0
		xm := xmOff
		if on {
			s = scaleOn
			xm = xmOn
		}
		steps = append(steps, Step{AtSec: t, Scale: s})
		// Pareto by inversion: X = xm * U^(-1/a) with U on (0, 1].
		t += xm * math.Pow(1-str.Uniform(), -1/a)
		on = !on
	}
	return schedule{steps: steps}
}
