package shard

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/des"
)

// ringProc is a test process: a private calendar plus a token-passing rule.
// When a token arrives, the process logs it and forwards an incremented copy
// to the next process on the ring after `delay` seconds.
type ringProc struct {
	id, n  int
	delay  float64
	eng    *des.Simulation
	outbox []Message
	seq    uint64
	log    []string
}

func newRing(n int, delay float64) []*ringProc {
	procs := make([]*ringProc, n)
	for i := range procs {
		procs[i] = &ringProc{id: i, n: n, delay: delay, eng: des.NewSimulation()}
	}
	return procs
}

func (p *ringProc) send(value int) {
	p.seq++
	p.outbox = append(p.outbox, Message{
		At:      p.eng.Now() + p.delay,
		Src:     p.id,
		Dst:     (p.id + 1) % p.n,
		Seq:     p.seq,
		Payload: value,
	})
}

func (p *ringProc) receive(m Message) {
	v := m.Payload.(int)
	p.log = append(p.log, fmt.Sprintf("%.3f:%d", p.eng.Now(), v))
	if v < 40 {
		p.send(v + 1)
	}
}

func (p *ringProc) Advance(t float64) []Message {
	p.eng.RunUntil(t)
	out := append([]Message(nil), p.outbox...)
	p.outbox = p.outbox[:0]
	return out
}

func (p *ringProc) Deliver(m Message) {
	p.eng.Schedule(m.At, func() { p.receive(m) })
}

// runRing advances a fresh token ring to time 100 under the given options and
// returns the concatenated per-process logs.
func runRing(t *testing.T, n int, delay float64, opt Options) [][]string {
	t.Helper()
	procs := newRing(n, delay)
	// Seed one token per process so every shard has work.
	for _, p := range procs {
		p.eng.Schedule(0.25+0.1*float64(p.id), func() { p.send(0) })
	}
	ifaces := make([]Process, n)
	for i, p := range procs {
		ifaces[i] = p
	}
	eng, err := New(ifaces, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Advance in uneven steps so windows get clipped at odd boundaries.
	for _, until := range []float64{0.4, 7.31, 55.5, 100} {
		if err := eng.AdvanceTo(until); err != nil {
			t.Fatal(err)
		}
		if eng.Now() != until {
			t.Fatalf("Now = %v after AdvanceTo(%v)", eng.Now(), until)
		}
	}
	logs := make([][]string, n)
	for i, p := range procs {
		logs[i] = p.log
	}
	return logs
}

func TestEngineValidation(t *testing.T) {
	if _, err := New(nil, Options{Lookahead: 1}); !errors.Is(err, ErrInvalidEngine) {
		t.Error("empty process list should be rejected")
	}
	procs := []Process{newRing(1, 1)[0]}
	for _, la := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := New(procs, Options{Lookahead: la}); !errors.Is(err, ErrInvalidEngine) {
			t.Errorf("lookahead %v should be rejected", la)
		}
	}
	eng, err := New(procs, Options{Lookahead: 1, Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Shards() != 1 {
		t.Errorf("shards should be capped at the process count, got %d", eng.Shards())
	}
}

func TestExplicitGroupValidation(t *testing.T) {
	ring := newRing(4, 1)
	procs := make([]Process, len(ring))
	for i, p := range ring {
		procs[i] = p
	}
	bad := [][][]int{
		{{0, 1}, {}},        // empty group
		{{0, 1}, {2, 4}},    // out of range
		{{0, 1}, {2, -1}},   // negative index
		{{0, 1}, {1, 2, 3}}, // duplicate
		{{0, 1}, {2}},       // uncovered process
	}
	for _, groups := range bad {
		if _, err := New(procs, Options{Lookahead: 1, Groups: groups}); !errors.Is(err, ErrInvalidEngine) {
			t.Errorf("groups %v should be rejected, got err %v", groups, err)
		}
	}
	eng, err := New(procs, Options{Lookahead: 1, Shards: 3, Groups: [][]int{{0, 2}, {1, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	// Explicit groups override Shards.
	if eng.Shards() != 2 {
		t.Errorf("Shards() = %d with 2 explicit groups", eng.Shards())
	}
}

func TestDeterministicAcrossExplicitGroups(t *testing.T) {
	const n, delay = 9, 0.5
	base := runRing(t, n, delay, Options{Lookahead: delay, Shards: 1})
	layouts := [][][]int{
		{{0, 1, 2, 3, 4, 5, 6, 7, 8}},                 // 1 group
		{{0, 2, 4, 6, 8}, {1, 3, 5, 7}},               // interleaved
		{{8, 7, 6}, {5, 4, 3}, {2, 1, 0}},             // reversed blocks
		{{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}, // one per process
		{{4}, {0, 8}, {1, 2, 3, 5, 6, 7}},             // lopsided
	}
	for _, groups := range layouts {
		got := runRing(t, n, delay, Options{Lookahead: delay, Groups: groups})
		if !reflect.DeepEqual(got, base) {
			t.Errorf("explicit groups %v produced different logs than shards=1", groups)
		}
	}
}

func TestDeterministicAcrossShardLayouts(t *testing.T) {
	const n, delay = 9, 0.5
	base := runRing(t, n, delay, Options{Lookahead: delay, Shards: 1})
	var tokens int
	for _, log := range base {
		tokens += len(log)
	}
	if tokens == 0 {
		t.Fatal("no tokens travelled the ring")
	}
	for _, shards := range []int{2, 3, 4, 9} {
		got := runRing(t, n, delay, Options{Lookahead: delay, Shards: shards})
		if !reflect.DeepEqual(got, base) {
			t.Errorf("shards=%d produced different logs than shards=1", shards)
		}
	}
	// A shorter lookahead (more windows) must not change results either.
	if got := runRing(t, n, delay, Options{Lookahead: delay / 3, Shards: 3}); !reflect.DeepEqual(got, base) {
		t.Error("smaller lookahead changed the results")
	}
}

func TestLookaheadViolationDetected(t *testing.T) {
	procs := newRing(4, 0.25)
	for _, p := range procs {
		p.eng.Schedule(0.1, func() { p.send(0) })
	}
	ifaces := make([]Process, len(procs))
	for i, p := range procs {
		ifaces[i] = p
	}
	// Lookahead larger than the actual message delay: messages arrive inside
	// the producing window.
	eng, err := New(ifaces, Options{Lookahead: 1.0, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AdvanceTo(10); !errors.Is(err, ErrLookaheadViolated) {
		t.Fatalf("expected lookahead violation, got %v", err)
	}
	if err := eng.AdvanceTo(20); !errors.Is(err, ErrLookaheadViolated) {
		t.Error("engine should keep reporting the synchronization error")
	}
}

// countingLimiter records the peak number of concurrent holders.
type countingLimiter struct {
	mu     sync.Mutex
	tokens chan struct{}
	active int32
	peak   int32
}

func (l *countingLimiter) Acquire() {
	l.tokens <- struct{}{}
	n := atomic.AddInt32(&l.active, 1)
	l.mu.Lock()
	if n > l.peak {
		l.peak = n
	}
	l.mu.Unlock()
}

func (l *countingLimiter) Release() {
	atomic.AddInt32(&l.active, -1)
	<-l.tokens
}

func TestLimiterBoundsShardConcurrency(t *testing.T) {
	lim := &countingLimiter{tokens: make(chan struct{}, 2)}
	got := runRing(t, 8, 0.5, Options{Lookahead: 0.5, Shards: 8, Limiter: lim})
	want := runRing(t, 8, 0.5, Options{Lookahead: 0.5, Shards: 1})
	if !reflect.DeepEqual(got, want) {
		t.Error("limited run produced different results")
	}
	if lim.peak > 2 {
		t.Errorf("observed %d concurrent shards, limiter cap is 2", lim.peak)
	}
}
