// Package shard is a conservative parallel discrete-event engine. A
// simulation is partitioned into logical processes, each owning a private
// event calendar; processes interact only through timestamped messages whose
// delivery delay is bounded below by a known lookahead. The engine advances
// all processes in bounded time windows no longer than the lookahead: inside
// a window every process runs independently (processes are grouped into
// shards, one worker per shard), and at the window barrier the messages
// produced by the window are merged and handed to their destination
// processes.
//
// # Determinism contract
//
// For a fixed (model, lookahead) the engine produces bit-identical results
// across every shard layout and worker count — including Shards = 1, the
// serial special case. Three mechanisms combine to guarantee this:
//
//   - Lookahead window: the window length never exceeds the minimum
//     cross-process message delay (for internal/sim, the handover latency
//     HandoverLatencySec). A message sent at time t arrives no earlier than
//     t + lookahead, so no message can arrive inside the window that
//     produced it, and every process's intra-window execution is
//     independent of all concurrent processes.
//
//   - Deterministic merge order: at the window barrier, the messages of the
//     finished window are sorted by (timestamp, source process id,
//     per-source sequence number) before delivery. Every source numbers its
//     messages with a strictly increasing counter, so the sort key is a
//     total order and the delivery sequence never depends on which worker
//     finished first.
//
//   - Process-private state: Advance and Deliver are never invoked
//     concurrently for one process, and processes share no mutable state
//     (in internal/sim, every cell also draws from its own random variate
//     substreams), so a process's sample path depends only on its own
//     calendar and the merged message sequence.
//
// Violations of the lookahead bound are detected at the barrier and
// reported as ErrLookaheadViolated rather than silently reordering events.
//
// The package is model-agnostic: internal/sim builds its multi-cell GPRS
// simulator on top of it with one process per cell and handovers as the
// cross-process messages, the minimum handover latency serving as lookahead.
// The contract holds for every workload the model expresses — internal/sim
// exercises it under uniform, hotspot, gradient, and time-varying arrival
// scenarios (internal/scenario), whose rate profiles are pure functions and
// therefore shard-invariant.
package shard

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"time"

	"repro/internal/probe"
)

// ErrInvalidEngine is returned for malformed engine configurations.
var ErrInvalidEngine = errors.New("shard: invalid engine configuration")

// ErrLookaheadViolated is returned when a process emits a message that would
// arrive inside the window that produced it, breaking the conservative
// synchronization contract.
var ErrLookaheadViolated = errors.New("shard: lookahead violated")

// Message is a timestamped payload travelling between processes.
type Message struct {
	// At is the absolute simulation time the message takes effect at the
	// destination. It must be no earlier than the end of the window in which
	// the message was produced (guaranteed when the sender applies a delay
	// of at least the engine lookahead; rounding may land At exactly on the
	// window end, where delivery is still safe).
	At float64
	// Src and Dst are the producing and receiving process indices.
	Src, Dst int
	// Seq orders messages of one source: sources number their messages with a
	// strictly increasing counter so ties in (At, Src) break deterministically.
	Seq uint64
	// Payload is the model-defined content.
	Payload any
}

// Process is one logical process of the partitioned simulation: a private
// event calendar plus the model state driven by it. Advance and Deliver are
// never called concurrently for the same process, but distinct processes are
// advanced in parallel, so processes must not share mutable state.
type Process interface {
	// Advance executes the process's calendar up to and including time t and
	// returns the messages produced while doing so. The returned slice is
	// consumed before the next Advance call.
	Advance(t float64) []Message
	// Deliver hands the process an inbound message; the process schedules it
	// on its calendar for time m.At (which is at or beyond its current
	// clock).
	Deliver(m Message)
}

// Limiter bounds how many shards of this engine (or of several engines
// sharing the limiter, e.g. the replications of one experiment) advance
// concurrently. runner.Limiter satisfies the interface.
type Limiter interface {
	Acquire()
	Release()
}

// Options configures an Engine.
type Options struct {
	// Lookahead is the window length: the minimum cross-process message
	// delay. It must be positive.
	Lookahead float64
	// Shards is the number of process groups advanced in parallel; the zero
	// value means min(runtime.NumCPU(), number of processes). 1 advances all
	// processes on the calling goroutine. The grouping never affects results,
	// only the available parallelism.
	Shards int
	// Groups, when non-nil, assigns processes to shards explicitly: Groups[s]
	// lists the process indices shard s advances. Every process must appear
	// in exactly one group and every group must be non-empty; Shards is
	// ignored and the worker count is len(Groups). Like the automatic split,
	// the grouping never affects results — it only decides which processes
	// share a worker (for internal/sim, internal/partition computes
	// locality-aware groupings).
	Groups [][]int
	// Limiter, when non-nil, is acquired by each shard for the duration of
	// one window's work, so shard-level parallelism composes with outer
	// fan-outs (replications, sweep points) under one shared bound. Shards
	// never hold a token while waiting at the window barrier, so sharing a
	// limiter cannot deadlock.
	Limiter Limiter
	// Metrics, when non-nil, receives wall-clock window timings: windows
	// advanced, messages merged, total window wall time, summed per-shard
	// advance time, and the barrier wait (the sum over shards of window wall
	// time minus that shard's own advance time — idle-plus-merge cost). The
	// engine reads the clock only when Metrics is set, so a disarmed engine
	// pays nothing. Simulation results are unaffected either way.
	Metrics *probe.Runtime
}

// Stats are the cumulative synchronization counters of one engine, tracked
// unconditionally (they are two integer increments per window): the windows
// advanced and the cross-process messages merged at their barriers. Together
// with the models' own flow counters they make the barrier traffic auditable —
// for internal/sim, MergedMessages must equal the cells' summed handover
// departures.
type Stats struct {
	// Windows is the number of synchronization windows completed.
	Windows uint64
	// MergedMessages is the number of cross-process messages merged and
	// delivered at window barriers.
	MergedMessages uint64
}

// Engine advances a set of processes in conservative time windows.
type Engine struct {
	procs  []Process
	opt    Options
	groups [][]int // shard index -> process indices
	now    float64
	err    error
	stats  Stats

	merged []Message // reusable barrier buffer
}

// New validates the options and builds an engine over the given processes.
func New(procs []Process, opt Options) (*Engine, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("%w: no processes", ErrInvalidEngine)
	}
	if opt.Lookahead <= 0 || math.IsNaN(opt.Lookahead) || math.IsInf(opt.Lookahead, 0) {
		return nil, fmt.Errorf("%w: lookahead %v", ErrInvalidEngine, opt.Lookahead)
	}
	var groups [][]int
	if opt.Groups != nil {
		seen := make([]bool, len(procs))
		groups = make([][]int, len(opt.Groups))
		for s, group := range opt.Groups {
			if len(group) == 0 {
				return nil, fmt.Errorf("%w: group %d is empty", ErrInvalidEngine, s)
			}
			groups[s] = append([]int(nil), group...)
			for _, pi := range group {
				if pi < 0 || pi >= len(procs) {
					return nil, fmt.Errorf("%w: group %d lists out-of-range process %d", ErrInvalidEngine, s, pi)
				}
				if seen[pi] {
					return nil, fmt.Errorf("%w: process %d assigned to two groups", ErrInvalidEngine, pi)
				}
				seen[pi] = true
			}
		}
		for pi, ok := range seen {
			if !ok {
				return nil, fmt.Errorf("%w: process %d not assigned to any group", ErrInvalidEngine, pi)
			}
		}
		opt.Shards = len(groups)
	} else {
		if opt.Shards <= 0 {
			opt.Shards = runtime.NumCPU()
		}
		if opt.Shards > len(procs) {
			opt.Shards = len(procs)
		}
		// Contiguous blocks of near-equal size; the split is cosmetic for
		// results (any grouping yields identical output) but balances work.
		groups = make([][]int, opt.Shards)
		for i := range procs {
			g := i * opt.Shards / len(procs)
			groups[g] = append(groups[g], i)
		}
	}
	return &Engine{procs: procs, opt: opt, groups: groups}, nil
}

// Now returns the engine clock: every process has been advanced to this time.
func (e *Engine) Now() float64 { return e.now }

// Shards returns the number of process groups advanced in parallel.
func (e *Engine) Shards() int { return len(e.groups) }

// Stats returns the engine's cumulative synchronization counters.
func (e *Engine) Stats() Stats { return e.stats }

// AdvanceTo runs windows of at most Lookahead until the engine clock reaches
// t, exchanging messages at every window barrier. It returns the first
// synchronization error encountered (and keeps returning it on later calls).
func (e *Engine) AdvanceTo(t float64) error {
	if e.err != nil {
		return e.err
	}
	if len(e.groups) == 1 {
		e.advanceSerial(t)
		return e.err
	}
	e.advanceParallel(t)
	return e.err
}

func (e *Engine) advanceSerial(t float64) {
	out := make([][]Message, 1)
	adv := make([]time.Duration, 1)
	// One persistent window buffer: the barrier copies messages into its own
	// merge buffer before the next window reuses this one.
	var msgs []Message
	for e.now < t && e.err == nil {
		next := math.Min(e.now+e.opt.Lookahead, t)
		var windowStart, advStart time.Time
		if e.opt.Metrics != nil {
			windowStart = time.Now()
		}
		if e.opt.Limiter != nil {
			e.opt.Limiter.Acquire()
		}
		if e.opt.Metrics != nil {
			advStart = time.Now()
		}
		msgs = msgs[:0]
		for _, p := range e.procs {
			msgs = append(msgs, p.Advance(next)...)
		}
		if e.opt.Metrics != nil {
			adv[0] = time.Since(advStart)
		}
		if e.opt.Limiter != nil {
			e.opt.Limiter.Release()
		}
		out[0] = msgs
		e.barrier(next, out)
		e.publishWindow(windowStart, adv)
	}
}

func (e *Engine) advanceParallel(t float64) {
	n := len(e.groups)
	cmds := make([]chan float64, n)
	type result struct {
		shard int
		msgs  []Message
		adv   time.Duration
	}
	results := make(chan result, n)
	for i, group := range e.groups {
		cmds[i] = make(chan float64, 1)
		go func(shard int, group []int, cmd <-chan float64) {
			// One persistent buffer per shard worker: the barrier finishes
			// with it (copies into the merge buffer) before the main loop
			// dispatches the next window command.
			var msgs []Message
			for next := range cmd {
				if e.opt.Limiter != nil {
					e.opt.Limiter.Acquire()
				}
				var advStart time.Time
				if e.opt.Metrics != nil {
					advStart = time.Now()
				}
				msgs = msgs[:0]
				for _, pi := range group {
					msgs = append(msgs, e.procs[pi].Advance(next)...)
				}
				var adv time.Duration
				if e.opt.Metrics != nil {
					adv = time.Since(advStart)
				}
				if e.opt.Limiter != nil {
					e.opt.Limiter.Release()
				}
				results <- result{shard, msgs, adv}
			}
		}(i, group, cmds[i])
	}
	defer func() {
		for _, cmd := range cmds {
			close(cmd)
		}
	}()

	out := make([][]Message, n)
	adv := make([]time.Duration, n)
	for e.now < t && e.err == nil {
		next := math.Min(e.now+e.opt.Lookahead, t)
		var windowStart time.Time
		if e.opt.Metrics != nil {
			windowStart = time.Now()
		}
		for _, cmd := range cmds {
			cmd <- next
		}
		for i := 0; i < n; i++ {
			r := <-results
			out[r.shard] = r.msgs
			adv[r.shard] = r.adv
		}
		e.barrier(next, out)
		e.publishWindow(windowStart, adv)
	}
}

// publishWindow pushes one finished window's wall timings into the metrics
// registry: total window wall time, the summed per-shard advance time, and
// the barrier wait — for every shard, the window wall time minus that shard's
// own advance work (time spent idle at the barrier, waiting on slower shards
// and the merge). No-op without an armed Metrics registry.
func (e *Engine) publishWindow(windowStart time.Time, adv []time.Duration) {
	m := e.opt.Metrics
	if m == nil {
		return
	}
	window := time.Since(windowStart)
	var advSum, wait time.Duration
	for _, a := range adv {
		advSum += a
		if w := window - a; w > 0 {
			wait += w
		}
	}
	m.WindowNanos.Add(uint64(window.Nanoseconds()))
	m.AdvanceNanos.Add(uint64(advSum.Nanoseconds()))
	m.BarrierWaitNanos.Add(uint64(wait.Nanoseconds()))
}

// barrier merges the messages of one finished window in deterministic order
// and delivers them, then advances the engine clock to the window end.
func (e *Engine) barrier(windowEnd float64, out [][]Message) {
	e.merged = e.merged[:0]
	for _, msgs := range out {
		e.merged = append(e.merged, msgs...)
	}
	e.stats.Windows++
	e.stats.MergedMessages += uint64(len(e.merged))
	if m := e.opt.Metrics; m != nil {
		m.WindowsAdvanced.Add(1)
		m.MessagesMerged.Add(uint64(len(e.merged)))
	}
	// slices.SortFunc rather than sort.Slice: the latter goes through
	// reflection and allocates per call, which would put the barrier on the
	// allocator once per window.
	slices.SortFunc(e.merged, func(a, b Message) int {
		if a.At != b.At {
			if a.At < b.At {
				return -1
			}
			return 1
		}
		if a.Src != b.Src {
			return a.Src - b.Src
		}
		if a.Seq != b.Seq {
			if a.Seq < b.Seq {
				return -1
			}
			return 1
		}
		return 0
	})
	for _, m := range e.merged {
		// Equality is allowed: a sender one ulp past the window start can
		// have its fl(send time + lookahead) round down to exactly the
		// window end, and delivering at the barrier time is still safe —
		// every process clock is pinned to windowEnd, so the message fires
		// first thing in the next window.
		if m.At < windowEnd {
			e.err = fmt.Errorf("%w: message from %d to %d at %v produced in window ending %v",
				ErrLookaheadViolated, m.Src, m.Dst, m.At, windowEnd)
			return
		}
		if m.Dst < 0 || m.Dst >= len(e.procs) {
			e.err = fmt.Errorf("%w: message from %d to out-of-range process %d", ErrInvalidEngine, m.Src, m.Dst)
			return
		}
		e.procs[m.Dst].Deliver(m)
	}
	e.now = windowEnd
}
