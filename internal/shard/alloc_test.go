// Allocation-budget pin for the conservative engine's window machinery.
// Excluded from race builds: race instrumentation allocates on its own.
//
//go:build !race

package shard

import "testing"

// allocRingProc is a synthetic allocation-free process: every window it emits one
// message to the next process in the ring, reusing a persistent outbox and a
// pooled payload record, mirroring how internal/sim's cellProc behaves after
// the pooling refactor.
type allocRingProc struct {
	id, n  int
	now    float64
	seq    uint64
	outbox []Message
	recv   int
}

func (p *allocRingProc) Advance(t float64) []Message {
	p.outbox = p.outbox[:0]
	p.now = t
	p.seq++
	p.outbox = append(p.outbox, Message{
		At:  t + 1, // exactly one lookahead ahead
		Src: p.id,
		Dst: (p.id + 1) % p.n,
		Seq: p.seq,
	})
	return p.outbox
}

func (p *allocRingProc) Deliver(Message) { p.recv++ }

// TestWindowSteadyStateAllocs pins that the serial window loop — Advance
// fan-in, barrier merge sort, delivery — stays off the allocator once its
// persistent buffers have grown: thousands of windows amortize the few
// per-AdvanceTo-call setup allocations to well under one per window.
func TestWindowSteadyStateAllocs(t *testing.T) {
	procs := make([]Process, 8)
	rings := make([]*allocRingProc, 8)
	for i := range procs {
		rings[i] = &allocRingProc{id: i, n: len(procs)}
		procs[i] = rings[i]
	}
	e, err := New(procs, Options{Lookahead: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AdvanceTo(100); err != nil { // grow merge + window buffers
		t.Fatal(err)
	}
	now := 100.0
	const windowsPerRun = 1000
	avg := testing.AllocsPerRun(5, func() {
		now += windowsPerRun
		if err := e.AdvanceTo(now); err != nil {
			t.Fatal(err)
		}
	})
	if perWindow := avg / windowsPerRun; perWindow > 0.01 {
		t.Errorf("window loop allocates %.4f allocs/window, want ~0", perWindow)
	}
	for _, r := range rings {
		if r.recv == 0 {
			t.Fatalf("ring process %d received no messages; the pin would be vacuous", r.id)
		}
	}
}
