// Command doccheck enforces the repository's doc-comment convention, in the
// spirit of the (deprecated) golint exported-comment check: every exported
// identifier in non-test files — functions, types, constants, variables, and
// methods on exported receiver types — must carry a doc comment, and every
// package must carry a package comment — library packages a godoc package
// comment, main packages (the commands of cmd/ and the programs of
// examples/) a command comment describing what the program does. CI runs it
// over internal/, cmd/, and examples/; it exits non-zero listing the
// offenders.
//
// Usage:
//
//	go run ./tools/doccheck [dir ...]   (default: ./internal ./cmd ./examples)
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"./internal", "./cmd", "./examples"}
	}
	var problems []string
	pkgs := map[string]*pkgDoc{} // directory -> package-comment state
	for _, root := range dirs {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			problems = append(problems, checkFile(path, pkgs)...)
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
	}
	dirsSeen := make([]string, 0, len(pkgs))
	for dir := range pkgs {
		dirsSeen = append(dirsSeen, dir)
	}
	sort.Strings(dirsSeen)
	for _, dir := range dirsSeen {
		p := pkgs[dir]
		if p.documented {
			continue
		}
		// Main packages are held to the same bar as libraries: a command
		// without a command comment is undocumented in godoc exactly like a
		// library package without a package comment.
		kind := "package " + p.name
		if p.name == "main" {
			kind = "command (package main)"
		}
		problems = append(problems, fmt.Sprintf("%s: %s lacks a package comment", dir, kind))
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// pkgDoc tracks whether any file of a package carries the package comment.
type pkgDoc struct {
	name       string
	documented bool
}

// checkFile parses one source file, records the package-comment state of its
// directory, and returns one message per undocumented exported identifier.
func checkFile(path string, pkgs map[string]*pkgDoc) []string {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: parse error: %v", path, err)}
	}
	dir := filepath.Dir(path)
	if pkgs[dir] == nil {
		pkgs[dir] = &pkgDoc{name: f.Name.Name}
	}
	if f.Doc != nil {
		pkgs[dir].documented = true
	}
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		problems = append(problems, fmt.Sprintf("%s: %s %s lacks a doc comment", fset.Position(pos), kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue // method on an unexported type: not part of the API
			}
			report(d.Pos(), "func", d.Name.Name)
		case *ast.GenDecl:
			// A doc comment on the grouped declaration covers its specs
			// (the const-block idiom); individual doc or line comments also
			// count.
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(n.Pos(), "value", n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedReceiver reports whether a method receiver names an exported type.
func exportedReceiver(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
