// Benchmarks regenerating every table and figure of the paper's evaluation
// section (Section 5). Each benchmark runs the corresponding experiment at
// quick fidelity (scaled-down cell, coarse arrival-rate sweep) so the whole
// suite completes in minutes; cmd/gprs-experiments -full reproduces the
// paper-resolution figures. The reported metrics include the number of model
// solutions ("solves") per figure.
package repro_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ctmc"
	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// benchOptions are the quick-fidelity options used by every figure benchmark.
func benchOptions() experiments.Options {
	return experiments.Options{
		Fidelity:          experiments.Quick,
		Tolerance:         1e-6,
		WithSimulation:    false,
		SimMeasurementSec: 600,
	}
}

func reportSolves(b *testing.B, figs []experiments.Figure) {
	b.Helper()
	var solves int
	for _, f := range figs {
		for _, s := range f.Series {
			solves += len(s.X)
		}
	}
	b.ReportMetric(float64(solves), "solves/op")
}

// BenchmarkTable2BaseParameters regenerates Table 2 (base parameter setting).
func BenchmarkTable2BaseParameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.TableBaseParameters()
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable3TrafficModels regenerates Table 3 (traffic models).
func BenchmarkTable3TrafficModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.TableTrafficModels()
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig5ThresholdCalibration regenerates Fig. 5 (PLP vs eta, including
// a short detailed-simulator run with TCP).
func BenchmarkFig5ThresholdCalibration(b *testing.B) {
	opts := benchOptions()
	opts.WithSimulation = true
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig5ThresholdCalibration(opts)
		if err != nil {
			b.Fatal(err)
		}
		reportSolves(b, []experiments.Figure{fig})
	}
}

// BenchmarkFig6Validation regenerates Fig. 6 (model vs simulator, CDT and
// ATU).
func BenchmarkFig6Validation(b *testing.B) {
	opts := benchOptions()
	opts.WithSimulation = true
	for i := 0; i < b.N; i++ {
		figs, err := experiments.Fig6Validation(opts)
		if err != nil {
			b.Fatal(err)
		}
		reportSolves(b, figs)
	}
}

// BenchmarkFig7CDT regenerates Fig. 7 (CDT, traffic models 1 and 2).
func BenchmarkFig7CDT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := experiments.Fig7CDT(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSolves(b, figs)
	}
}

// BenchmarkFig8PLP regenerates Fig. 8 (PLP, traffic models 1 and 2).
func BenchmarkFig8PLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := experiments.Fig8PLP(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSolves(b, figs)
	}
}

// BenchmarkFig9QD regenerates Fig. 9 (queueing delay, traffic models 1 and 2).
func BenchmarkFig9QD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := experiments.Fig9QD(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSolves(b, figs)
	}
}

// BenchmarkFig10SessionLimit regenerates Fig. 10 (CDT and GPRS session
// blocking for different session limits M).
func BenchmarkFig10SessionLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := experiments.Fig10SessionLimit(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSolves(b, figs)
	}
}

// BenchmarkFig11TwoPercent regenerates Fig. 11 (CDT and ATU, 2% GPRS users).
func BenchmarkFig11TwoPercent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := experiments.Fig11TwoPercent(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSolves(b, figs)
	}
}

// BenchmarkFig12FivePercent regenerates Fig. 12 (CDT and ATU, 5% GPRS users).
func BenchmarkFig12FivePercent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := experiments.Fig12FivePercent(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSolves(b, figs)
	}
}

// BenchmarkFig13TenPercent regenerates Fig. 13 (CDT and ATU, 10% GPRS users).
func BenchmarkFig13TenPercent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := experiments.Fig13TenPercent(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSolves(b, figs)
	}
}

// BenchmarkFig14VoiceImpact regenerates Fig. 14 (CVT and voice blocking).
func BenchmarkFig14VoiceImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := experiments.Fig14VoiceImpact(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSolves(b, figs)
	}
}

// BenchmarkFig15GPRSPopulation regenerates Fig. 15 (average GPRS users and
// session blocking).
func BenchmarkFig15GPRSPopulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := experiments.Fig15GPRSPopulation(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSolves(b, figs)
	}
}

// BenchmarkSolverAblation compares Gauss-Seidel, Jacobi, and power iteration
// on the same model (the solver design choice called out in DESIGN.md).
func BenchmarkSolverAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		got, err := experiments.SolverAblation(experiments.Options{Tolerance: 1e-6})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(got[0].Iterations), "gs-iters")
		b.ReportMetric(float64(got[2].Iterations), "power-iters")
	}
}

// BenchmarkHandoverBalancing measures the handover-flow fixed point iteration
// (Eqs. 4-5) in isolation.
func BenchmarkHandoverBalancing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.HandoverBalancingAblation(traffic.Model1, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Iterations), "fixedpoint-iters")
	}
}

// BenchmarkModelSolveSingle measures one steady-state solution of the
// quick-fidelity model of traffic model 3 at 0.5 calls/s (the building block
// of every figure).
func BenchmarkModelSolveSingle(b *testing.B) {
	cfg := core.BaseConfig(traffic.Model3, 0.5)
	cfg.Channels.TotalChannels = 10
	cfg.BufferSize = 30
	cfg.MaxSessions = 10
	model, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Solve(ctmc.SolveOptions{Tolerance: 1e-6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneratorConstruction measures building the sparse generator of
// the quick-fidelity state space.
func BenchmarkGeneratorConstruction(b *testing.B) {
	cfg := core.BaseConfig(traffic.Model3, 0.5)
	cfg.Channels.TotalChannels = 10
	cfg.BufferSize = 30
	cfg.MaxSessions = 10
	model, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.BuildGenerator(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicatedSimulator measures the replication engine: 8
// independent replications of a short quick-fidelity run fanned out across
// all CPUs and merged into cross-replication confidence intervals.
func BenchmarkReplicatedSimulator(b *testing.B) {
	cfg := sim.DefaultConfig(traffic.Model3, 0.5)
	cfg.Channels.TotalChannels = 10
	cfg.BufferSize = 30
	cfg.MaxSessions = 10
	cfg.WarmupSec = 200
	cfg.MeasurementSec = 1000
	cfg.Batches = 5
	for i := 0; i < b.N; i++ {
		sum, err := runner.Run(cfg, runner.Options{Replications: 8, BaseSeed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(sum.Merged.Events)/float64(sum.Merged.SimulatedSec), "events/simulated-s")
	}
}

// shardedBenchConfig is the 19-cell quick-fidelity configuration shared by
// the serial and sharded variants of BenchmarkShardedSimulator.
func shardedBenchConfig(b *testing.B, seed int64) sim.Config {
	b.Helper()
	topo, err := cluster.Preset(19)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig(traffic.Model3, 0.5)
	cfg.Topology = topo
	cfg.Channels.TotalChannels = 10
	cfg.BufferSize = 30
	cfg.MaxSessions = 10
	cfg.WarmupSec = 200
	cfg.MeasurementSec = 1000
	cfg.Batches = 5
	cfg.Seed = seed
	return cfg
}

// BenchmarkShardedSimulator compares one replication of the 19-cell cluster
// on the serial single-calendar engine against the sharded engine with 4 cell
// groups advanced in parallel. Both produce bit-identical results; the
// sub-benchmark ratio is the shard-level speedup.
func BenchmarkShardedSimulator(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := sim.New(shardedBenchConfig(b, int64(i+1)))
			if err != nil {
				b.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Events)/float64(res.SimulatedSec), "events/simulated-s")
		}
	})
	b.Run("shards=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := sim.NewSharded(shardedBenchConfig(b, int64(i+1)), sim.ShardedOptions{Shards: 4})
			if err != nil {
				b.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Events)/float64(res.SimulatedSec), "events/simulated-s")
		}
	})
}

// BenchmarkDetailedSimulator measures a short detailed-simulator run with TCP
// at the quick-fidelity cell size.
func BenchmarkDetailedSimulator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(traffic.Model3, 0.5)
		cfg.Channels.TotalChannels = 10
		cfg.BufferSize = 30
		cfg.MaxSessions = 10
		cfg.WarmupSec = 200
		cfg.MeasurementSec = 1000
		cfg.Batches = 5
		cfg.Seed = int64(i + 1)
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events)/float64(res.SimulatedSec), "events/simulated-s")
	}
}
