// Command gprs-bench is the performance harness of the repository: it runs a
// pinned set of simulator workloads — the paper's base seven-cell Model 3
// configuration on the serial engine, the 19-cell hotspot scenario on the
// serial and the 4-shard engine, the city-scale 169-cell hotspot scenario on
// the 8-group locality-partitioned engine, and an 8-replication runner
// fan-out — and
// emits one schema-versioned BENCH_<date>.json report (events/sec, ns/event,
// allocs/event, B/event, host metadata) into -out.
//
// When the trajectory directory (-baseline) holds earlier reports, the fresh
// numbers are compared against the newest report from an equal host at the
// same fidelity and the run exits non-zero if any workload's events/sec
// regressed by more than -tol (default 15%). Reports from a different host
// class are advisory: the deltas are printed but never fail the run, so a
// trajectory committed from one machine does not spuriously gate another.
//
// -quick shrinks the simulated horizons for CI (quick and full reports are
// never compared against each other). The configurations are pinned: editing
// them breaks comparability of the trajectory, so changes must start a new
// baseline (delete or archive the old BENCH_*.json points).
//
// Examples:
//
//	gprs-bench                      # full run, gate + append under benchdata/
//	gprs-bench -quick               # CI fidelity
//	gprs-bench -out /tmp/bench -baseline benchdata -tol 0.15
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/probe"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/traffic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gprs-bench:", err)
		os.Exit(1)
	}
}

// workload is one pinned benchmark: a closure returning the number of
// simulation events it executed.
type workload struct {
	name string
	run  func() (uint64, error)
}

func run(args []string) error {
	fs := flag.NewFlagSet("gprs-bench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced-fidelity run (CI setting)")
	out := fs.String("out", "benchdata", "directory the BENCH_<date>.json report is written to")
	baselineDir := fs.String("baseline", "benchdata", "trajectory directory compared against (empty disables the gate)")
	tol := fs.Float64("tol", 0.15, "relative events/sec regression tolerance")
	date := fs.String("date", "", "report date override (YYYY-MM-DD; default today)")
	telemetry := fs.String("telemetry", "", "serve live pprof/expvar telemetry on this address (e.g. :6060) for the duration of the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *date == "" {
		*date = time.Now().Format("2006-01-02")
	}
	if *telemetry != "" {
		addr, err := probe.ServeTelemetry(*telemetry)
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		fmt.Fprintf(os.Stderr, "telemetry on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}

	report := bench.Report{
		SchemaVersion: bench.SchemaVersion,
		Date:          *date,
		Quick:         *quick,
		Host:          bench.CurrentHost(),
	}
	harnessStart := time.Now()
	for _, w := range workloads(*quick) {
		res, err := measure(w)
		if err != nil {
			return fmt.Errorf("%s: %w", w.name, err)
		}
		report.Results = append(report.Results, res)
		fmt.Printf("%-28s %12.0f ev/s  %8.1f ns/ev  %8.4f allocs/ev  %8.1f B/ev  %6.1f ms GC  %6.1f MiB heap  (%d events)\n",
			res.Name, res.EventsPerSec, res.NsPerEvent, res.AllocsPerEvent, res.BytesPerEvent,
			res.GCPauseTotalSec*1e3, float64(res.PeakHeapBytes)/(1<<20), res.Events)
	}
	report.WallSec = time.Since(harnessStart).Seconds()

	path, err := bench.WriteFile(*out, report)
	if err != nil {
		return err
	}
	fmt.Printf("\nreport written to %s\n", path)

	if *baselineDir == "" {
		return nil
	}
	trajectory, err := bench.LoadDir(*baselineDir)
	if err != nil {
		return err
	}
	// Never gate against the file this run just wrote (out and baseline
	// default to the same directory, and filenames are canonical per
	// date+fidelity, so the overwritten point would always compare as 0%).
	sameDir := filepath.Clean(*out) == filepath.Clean(*baselineDir)
	kept := trajectory[:0]
	for _, r := range trajectory {
		if sameDir && r.Filename() == report.Filename() {
			continue
		}
		kept = append(kept, r)
	}
	base, gated := bench.LatestBaseline(kept, report.Host, report.Quick)
	if base == nil {
		fmt.Println("no baseline in trajectory; nothing to gate against")
		return nil
	}
	cmp := bench.Compare(base, report, *tol, gated)
	fmt.Printf("\nbaseline %s (host match: %v, tolerance %.0f%%):\n", base.Date, gated, 100**tol)
	for _, d := range cmp.Deltas {
		fmt.Println(" ", d)
	}
	if cmp.Failed() {
		return fmt.Errorf("events/sec regression beyond %.0f%% tolerance", 100**tol)
	}
	return nil
}

// measure runs one workload and derives its metrics from wall time and
// runtime.MemStats deltas. A GC round before the run keeps previously
// retained garbage out of the allocation deltas.
func measure(w workload) (bench.Result, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	events, err := w.run()
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	if err != nil {
		return bench.Result{}, err
	}
	if events == 0 {
		return bench.Result{}, fmt.Errorf("workload executed no events")
	}
	ev := float64(events)
	return bench.Result{
		Name:            w.name,
		Events:          events,
		WallSec:         wall,
		EventsPerSec:    ev / wall,
		NsPerEvent:      wall * 1e9 / ev,
		AllocsPerEvent:  float64(after.Mallocs-before.Mallocs) / ev,
		BytesPerEvent:   float64(after.TotalAlloc-before.TotalAlloc) / ev,
		GCPauseTotalSec: float64(after.PauseTotalNs-before.PauseTotalNs) / 1e9,
		PeakHeapBytes:   after.HeapSys,
	}, nil
}

// baseConfig is the pinned base workload configuration: the paper's Model 3
// base parameter setting at 0.5 calls/s per cell.
func baseConfig(cells int, quick bool) (sim.Config, error) {
	topo, err := cluster.Preset(cells)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.DefaultConfig(traffic.Model3, 0.5)
	cfg.Topology = topo
	cfg.Seed = 1
	cfg.WarmupSec = 500
	cfg.MeasurementSec = 4000
	cfg.Batches = 5
	if quick {
		cfg.WarmupSec = 200
		cfg.MeasurementSec = 1000
	}
	return cfg, nil
}

// hotspotConfig is the pinned heterogeneous workload: the hotspot scenario
// preset on a wrap-around hex-ring cluster of the given size.
func hotspotConfig(cells int, quick bool) (sim.Config, error) {
	cfg, err := baseConfig(cells, quick)
	if err != nil {
		return sim.Config{}, err
	}
	spec, err := scenario.Preset(scenario.Hotspot)
	if err != nil {
		return sim.Config{}, err
	}
	if _, err := scenario.Apply(&cfg, spec); err != nil {
		return sim.Config{}, err
	}
	return cfg, nil
}

func simEvents(cfg sim.Config, shards int) (uint64, error) {
	res, err := sim.RunOnce(cfg, sim.ShardedOptions{Shards: shards})
	if err != nil {
		return 0, err
	}
	return res.Events, nil
}

// workloads returns the pinned benchmark set.
func workloads(quick bool) []workload {
	return []workload{
		{"serial/base-7cell", func() (uint64, error) {
			cfg, err := baseConfig(7, quick)
			if err != nil {
				return 0, err
			}
			return simEvents(cfg, 1)
		}},
		{"serial/hotspot-19cell", func() (uint64, error) {
			cfg, err := hotspotConfig(19, quick)
			if err != nil {
				return 0, err
			}
			return simEvents(cfg, 1)
		}},
		{"sharded4/hotspot-19cell", func() (uint64, error) {
			cfg, err := hotspotConfig(19, quick)
			if err != nil {
				return 0, err
			}
			return simEvents(cfg, 4)
		}},
		{"sharded8/hotspot-169cell", func() (uint64, error) {
			// City-scale point: the hotspot scenario on the 169-cell
			// hex-ring preset, locality-partitioned into 8 cell groups. The
			// horizon is halved against the small workloads to keep the
			// harness wall time bounded at ~9x the cell count.
			cfg, err := hotspotConfig(169, quick)
			if err != nil {
				return 0, err
			}
			cfg.WarmupSec /= 2
			cfg.MeasurementSec /= 2
			return simEvents(cfg, 8)
		}},
		{"runner/8rep-base-7cell", func() (uint64, error) {
			cfg, err := baseConfig(7, quick)
			if err != nil {
				return 0, err
			}
			cfg.MeasurementSec /= 2 // 8 replications: keep total work bounded
			sum, err := runner.Run(cfg, runner.Options{Replications: 8, BaseSeed: 1})
			if err != nil {
				return 0, err
			}
			return sum.Merged.Events, nil
		}},
	}
}
