// Command gprs-experiments regenerates the tables and figures of the paper's
// evaluation section and writes one CSV file per figure. Figures, sweep
// points, and simulator replications all run concurrently under one global
// -workers bound; simulator series carry cross-replication confidence
// intervals from -replications independent runs seeded from -seed. Overlapping
// model solutions are memoized across figures. -cells selects the simulated
// cluster size (7 is the paper's cluster; 19 and 37 are generated wrap-around
// hex rings) and -shards > 1 runs each simulator replication on the sharded
// multi-cell engine without changing the results. Progress is reported on
// stderr.
//
// -scenario/-scenario-file install a heterogeneous-load workload scenario
// (internal/scenario) on every simulator run; `-figure hotspot` regenerates
// the per-cell hotspot figures — the spatial response of the cluster by hex
// distance from the scenario center (or from the corridor axis for corridor
// scenarios such as the highway preset), the first workload the analytical
// model cannot express. Scenarios with a mobility profile (highway,
// hotspot-pedestrian) additionally skew the per-cell handover flow, reported
// by the hsp05 figure. -trace replays a measured arrival series from a CSV
// file (header time_sec,{rate_per_s|arrivals}[,payload_bytes]), replacing the
// temporal profile of whatever scenario is selected.
//
// -policy (with -guard/-ho-queue/-ho-deadline) installs a handover admission
// policy (internal/policy) on every simulator run, overriding any policy the
// scenario declares; the policy presets (hotspot-guard, hotspot-hoqueue,
// highway-retry) bundle a policy with a matching load shape. The hsp06
// figure reports where in the cluster the policy intervenes.
//
// Progress is human-readable by default; -progress-json switches the stderr
// stream to structured JSON lines (one event per completed sweep point or
// figure group, with wall-clock elapsed and a remaining-work estimate), for
// driving dashboards or CI annotations. -telemetry serves live pprof and
// expvar runtime metrics over HTTP for the duration of the run.
//
// Examples:
//
//	gprs-experiments                      # quick fidelity, every figure
//	gprs-experiments -full -out results   # paper-resolution sweep
//	gprs-experiments -figure fig12        # a single figure
//	gprs-experiments -figure fig6 -replications 8 -workers 4
//	gprs-experiments -figure fig6 -cells 19 -shards 4
//	gprs-experiments -figure hotspot -cells 19 -replications 5
//	gprs-experiments -figure hotspot -scenario gradient
//	gprs-experiments -figure hotspot -scenario highway -cells 19
//	gprs-experiments -figure hotspot -scenario hotspot-guard
//	gprs-experiments -figure hotspot -scenario hotspot -policy guard -guard 2
//	gprs-experiments -full -progress-json 2>progress.jsonl
//	gprs-experiments -full -telemetry :6060
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/partition"
	"repro/internal/policy"
	"repro/internal/probe"
	"repro/internal/runner"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gprs-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gprs-experiments", flag.ContinueOnError)
	var (
		full    = fs.Bool("full", false, "run the paper-resolution parameter setting (slow)")
		figure  = fs.String("figure", "all", "figure to regenerate: all, tables, fig5 ... fig15")
		outDir  = fs.String("out", "results", "directory for CSV output")
		workers = fs.Int("workers", 0, "concurrent model solutions and simulator runs (0 = NumCPU); also sizes adaptive growth batches — pin it to reproduce -precision runs across machines")
		noSim   = fs.Bool("no-sim", false, "skip the detailed-simulator series of figs 5 and 6")
		tol     = fs.Float64("tol", 0, "steady-state solver tolerance (0 = default)")
		reps    = fs.Int("replications", 0, "independent simulator replications per point (0 = fidelity default; ignored with -precision)")
		prec    = fs.Float64("precision", 0, "adaptive stopping: relative CI half-width target for -target (0 = fixed -replications)")
		minReps = fs.Int("min-reps", 0, "adaptive mode: replications in the first batch (0 = 4)")
		maxReps = fs.Int("max-reps", 0, "adaptive mode: replication cap (0 = 64)")
		vrName  = fs.String("vr", "none", "variance reduction for simulator points: none, antithetic, control")
		target  = fs.String("target", "throughput", "measure watched by -precision: "+strings.Join(runner.MeasureNames(), ", "))
		seed    = fs.Int64("seed", 1, "base seed of the simulator replications")
		cells   = fs.Int("cells", 0, "simulated cluster size: 0/7 (paper) or a wrap-around hex-ring preset (cluster.PresetSizes)")
		shards  = fs.Int("shards", 1, "cell groups advanced in parallel per simulator replication (1 = serial engine)")
		partFlg = fs.String("partition", "", "cell→group partitioning of -shards > 1 runs: kind[:groups] with kinds "+strings.Join(partition.Kinds(), ", ")+", or explicit JSON (default: locality); never affects results")
		scnName = fs.String("scenario", "", "built-in workload scenario for all simulator runs: "+strings.Join(scenario.Names(), ", "))
		scnFile = fs.String("scenario-file", "", "JSON workload-scenario file (overrides -scenario)")
		trcFile = fs.String("trace", "", "replay a measured arrival trace from this CSV file (header time_sec,{rate_per_s|arrivals}[,payload_bytes]); replaces the scenario's temporal profile")
		polName = fs.String("policy", "", "handover admission policy for all simulator runs (overrides the scenario's): "+strings.Join(policy.Names(), ", "))
		guard   = fs.Int("guard", 0, "voice channels reserved for handovers (-policy guard)")
		hoQueue = fs.Int("ho-queue", 0, "per-cell handover queue capacity (-policy queue)")
		hoDead  = fs.Float64("ho-deadline", 0, "queued-handover deadline in seconds (-policy queue)")
		quiet   = fs.Bool("quiet", false, "suppress progress output on stderr")
		pjson   = fs.Bool("progress-json", false, "emit structured JSON-lines progress events on stderr instead of human-readable lines")
		telem   = fs.String("telemetry", "", "serve live pprof/expvar telemetry on this address (e.g. :6060) for the duration of the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *telem != "" {
		addr, err := probe.ServeTelemetry(*telem)
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		fmt.Fprintf(os.Stderr, "telemetry on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}
	vr, err := runner.ParseVR(*vrName)
	if err != nil {
		return err
	}
	targetMeasure, err := runner.ParseMeasure(*target)
	if err != nil {
		return err
	}
	if *cells != 0 {
		// Validate up front: figures solve their full analytical sweeps
		// before the simulator runs, so a bad cluster size must not surface
		// only after minutes of wasted model solutions.
		if _, err := cluster.Preset(*cells); err != nil {
			return err
		}
	}

	start := time.Now()
	opts := experiments.Options{
		Fidelity:        experiments.Quick,
		Workers:         *workers,
		WithSimulation:  !*noSim,
		Tolerance:       *tol,
		Replications:    *reps,
		Precision:       *prec,
		Target:          targetMeasure,
		MinReplications: *minReps,
		MaxReplications: *maxReps,
		VR:              vr,
		SimSeed:         *seed,
		Cells:           *cells,
		Shards:          *shards,
	}
	if *partFlg != "" {
		spec, err := partition.ParseSpec(*partFlg)
		if err != nil {
			return fmt.Errorf("-partition: %w", err)
		}
		opts.Partition = spec
	}
	if *full {
		opts.Fidelity = experiments.Full
	}
	switch {
	case *scnFile != "":
		spec, err := scenario.Load(*scnFile)
		if err != nil {
			return err
		}
		opts.Scenario = &spec
	case *scnName != "":
		spec, err := scenario.Preset(*scnName)
		if err != nil {
			return err
		}
		opts.Scenario = &spec
	}
	if *trcFile != "" {
		// -trace replaces the temporal profile of whatever scenario the other
		// flags selected (the uniform baseline when they selected none), so a
		// measured arrival series can modulate any spatial shape.
		rows, err := scenario.LoadTraceCSV(*trcFile)
		if err != nil {
			return err
		}
		spec := scenario.Spec{Name: "trace"}
		if opts.Scenario != nil {
			spec = *opts.Scenario
		}
		spec.Temporal = scenario.Temporal{Kind: scenario.Trace, Rows: rows}
		if err := spec.Validate(); err != nil {
			return err
		}
		opts.Scenario = &spec
	}
	pol, err := resolvePolicyFlags(*polName, *guard, *hoQueue, *hoDead)
	if err != nil {
		return err
	}
	opts.Policy = pol
	switch {
	case *quiet:
		// No progress stream at all.
	case *pjson:
		opts.ProgressRecord = jsonProgress(os.Stderr, start)
	default:
		opts.Progress = func(msg string) {
			fmt.Fprintf(os.Stderr, "[%7.1fs] %s\n", time.Since(start).Seconds(), msg)
		}
	}

	if *figure == "tables" || *figure == "all" {
		fmt.Print(experiments.TableBaseParameters().String())
		fmt.Println()
		fmt.Print(experiments.TableTrafficModels().String())
		fmt.Println()
		if *figure == "tables" {
			return nil
		}
	}

	figs, err := selectFigures(*figure, opts)
	if err != nil {
		return err
	}
	for _, fig := range figs {
		fmt.Print(experiments.FormatFigure(fig))
		fmt.Println()
	}
	paths, err := experiments.WriteAllCSV(figs, *outDir)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d CSV files to %s in %.1fs\n", len(paths), *outDir, time.Since(start).Seconds())
	return nil
}

// resolvePolicyFlags turns the -policy flag family into the policy override
// of experiments.Options. An empty -policy returns nil (the scenario's
// declaration, if any, stands) but rejects orphaned policy parameters;
// "none" returns a None-kind configuration, which the experiments layer
// treats as an explicit reset to the paper's default admission rule. The
// guard reservation is bounded against the channel plan per run
// (sim.Config.Validate), not here, where no plan exists yet.
func resolvePolicyFlags(name string, guard, queueCap int, deadline float64) (*policy.Config, error) {
	if name == "" {
		if guard != 0 || queueCap != 0 || deadline != 0 {
			return nil, fmt.Errorf("-guard/-ho-queue/-ho-deadline need -policy (known: %s)", strings.Join(policy.Names(), ", "))
		}
		return nil, nil
	}
	kind, err := policy.Parse(name)
	if err != nil {
		return nil, err
	}
	p := policy.Config{Kind: kind, Guard: guard, QueueCapacity: queueCap, QueueDeadlineSec: deadline}
	if err := p.Validate(0); err != nil {
		return nil, err
	}
	return &p, nil
}

// progressLine is one JSON-lines record of -progress-json: the structured
// experiments event plus wall-clock pacing derived from it.
type progressLine struct {
	experiments.ProgressEvent
	// ElapsedSec is the wall-clock time since the run started.
	ElapsedSec float64 `json:"elapsed_sec"`
	// ETASec estimates the remaining wall-clock time of the event's figure
	// from its completed-point fraction; omitted on group events and on the
	// run's first point (no pace yet).
	ETASec float64 `json:"eta_sec,omitempty"`
}

// jsonProgress returns an experiments.ProgressRecord callback that streams
// one JSON line per completion event to w. Calls are serialized by the
// experiments package, so the encoder needs no extra locking.
func jsonProgress(w *os.File, start time.Time) func(experiments.ProgressEvent) {
	enc := json.NewEncoder(w)
	return func(ev experiments.ProgressEvent) {
		line := progressLine{ProgressEvent: ev, ElapsedSec: time.Since(start).Seconds()}
		if ev.Kind == "point" && ev.Done > 0 && ev.Total > ev.Done {
			line.ETASec = line.ElapsedSec / float64(ev.Done) * float64(ev.Total-ev.Done)
		}
		if err := enc.Encode(line); err != nil {
			fmt.Fprintf(os.Stderr, "progress-json: %v\n", err)
		}
	}
}

func selectFigures(name string, opts experiments.Options) ([]experiments.Figure, error) {
	single := func(fig experiments.Figure, err error) ([]experiments.Figure, error) {
		if err != nil {
			return nil, err
		}
		return []experiments.Figure{fig}, nil
	}
	switch strings.ToLower(name) {
	case "all":
		return experiments.AllFigures(opts)
	case "fig5":
		return single(experiments.Fig5ThresholdCalibration(opts))
	case "fig6":
		return experiments.Fig6Validation(opts)
	case "fig7":
		return experiments.Fig7CDT(opts)
	case "fig8":
		return experiments.Fig8PLP(opts)
	case "fig9":
		return experiments.Fig9QD(opts)
	case "fig10":
		return experiments.Fig10SessionLimit(opts)
	case "fig11":
		return experiments.Fig11TwoPercent(opts)
	case "fig12":
		return experiments.Fig12FivePercent(opts)
	case "fig13":
		return experiments.Fig13TenPercent(opts)
	case "fig14":
		return experiments.Fig14VoiceImpact(opts)
	case "fig15":
		return experiments.Fig15GPRSPopulation(opts)
	case "hotspot":
		return experiments.HotspotFigures(opts)
	default:
		return nil, fmt.Errorf("unknown figure %q (use all, tables, fig5 ... fig15, hotspot)", name)
	}
}
