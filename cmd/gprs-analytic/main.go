// Command gprs-analytic solves the analytical GPRS Markov model for one
// configuration and prints every performance measure of Section 4.2 of the
// paper.
//
// Example:
//
//	gprs-analytic -model 3 -rate 0.5 -pdch 2 -gprs 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/ctmc"
	"repro/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gprs-analytic:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("gprs-analytic", flag.ContinueOnError)
	var (
		modelID  = fs.Int("model", 3, "traffic model (1, 2, or 3; Table 3 of the paper)")
		rate     = fs.Float64("rate", 0.5, "total GSM+GPRS call arrival rate (calls/s)")
		pdch     = fs.Int("pdch", 1, "number of PDCHs permanently reserved for GPRS")
		channels = fs.Int("channels", 20, "total number of physical channels in the cell")
		buffer   = fs.Int("buffer", 100, "BSC buffer size K (packets)")
		gprsPct  = fs.Float64("gprs", 0.05, "fraction of arriving calls that are GPRS sessions")
		eta      = fs.Float64("eta", 0.7, "TCP flow-control threshold")
		maxSess  = fs.Int("sessions", 0, "session admission limit M (0 = traffic model default)")
		tol      = fs.Float64("tol", 1e-6, "steady-state solver tolerance")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	model := traffic.Model(*modelID)
	cfg := core.BaseConfig(model, *rate)
	cfg.Channels.TotalChannels = *channels
	cfg.Channels.ReservedPDCH = *pdch
	cfg.BufferSize = *buffer
	cfg.GPRSFraction = *gprsPct
	cfg.FlowControlThreshold = *eta
	if *maxSess > 0 {
		cfg.MaxSessions = *maxSess
	}

	m, err := core.New(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "solving %s, rate %.3g calls/s, %d/%d reserved PDCHs, %d states...\n",
		model, *rate, *pdch, *channels, cfg.NumStates())
	res, err := m.Solve(ctmc.SolveOptions{Tolerance: *tol})
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(out, 0, 4, 2, ' ', 0)
	meas := res.Measures
	fmt.Fprintf(w, "carried data traffic (CDT)\t%.4f PDCHs\n", meas.CarriedDataTraffic)
	fmt.Fprintf(w, "packet loss probability (PLP)\t%.6g\n", meas.PacketLossProbability)
	fmt.Fprintf(w, "queueing delay (QD)\t%.4f s\n", meas.QueueingDelay)
	fmt.Fprintf(w, "throughput\t%.1f bit/s\n", meas.ThroughputBits)
	fmt.Fprintf(w, "throughput per user (ATU)\t%.1f bit/s\n", meas.ThroughputPerUserBits)
	fmt.Fprintf(w, "average GPRS sessions (AGS)\t%.4f\n", meas.AverageSessions)
	fmt.Fprintf(w, "carried voice traffic (CVT)\t%.4f channels\n", meas.CarriedVoiceTraffic)
	fmt.Fprintf(w, "GSM blocking probability\t%.6g\n", meas.GSMBlockingProbability)
	fmt.Fprintf(w, "GPRS blocking probability\t%.6g\n", meas.GPRSBlockingProbability)
	fmt.Fprintf(w, "balanced GSM handover rate\t%.6g 1/s\n", meas.GSMHandoverRate)
	fmt.Fprintf(w, "balanced GPRS handover rate\t%.6g 1/s\n", meas.GPRSHandoverRate)
	fmt.Fprintf(w, "solver\t%v, %d iterations, residual %.3g, converged %v\n",
		res.Solver.Method, res.Solver.Iterations, res.Solver.Residual, res.Solver.Converged)
	return w.Flush()
}
