// Command gprs-sim runs the detailed network-level GPRS simulator (hexagonal
// cluster, TDMA-block transmission, TCP flow control) and prints the mid-cell
// measures with 95% confidence intervals. With -replications R > 1 the run
// fans R independent replications (seeded from disjoint substreams of -seed)
// out across -workers CPUs and reports cross-replication intervals; the
// merged results are bit-identical for a given (seed, replications) pair
// regardless of the worker count. -cells selects the cluster size (7 is the
// paper's cluster; the larger presets up to city scale — 19, 37, 61, ...,
// 331 — are generated wrap-around hex rings) and -shards > 1 advances cell
// groups of each replication in parallel conservative time windows — again
// without changing the results. -partition pins the cell→group assignment
// (kind[:groups] — locality, index-range — or an explicit JSON spec); the
// default is the locality-aware grouping of internal/partition, and no
// partitioning ever changes the results.
//
// -scenario installs a built-in heterogeneous-load workload scenario
// (hotspot cells, load gradients, busy-hour ramps, highway corridors) and
// -scenario-file loads one from a JSON file. Scenarios can shape mobility as
// well as load: dwell-time multipliers per cell (fast vehicles on a highway
// corridor, slow pedestrians in a hotspot — presets highway and
// hotspot-pedestrian) skew the handover flow itself. Serial and sharded
// engines stay bit-identical under every scenario, and -percell prints the
// per-cell report that makes the spatial response visible — including the
// handover-flow columns (HO in/out/fail), the signature of mobility
// scenarios — with cross-replication confidence half-widths when more than
// one replication ran. -trace replays a measured arrival series from a CSV
// file (header time_sec,{rate_per_s|arrivals}[,payload_bytes]): the series is
// normalized to mean rate 1 and replaces the temporal profile of whatever
// scenario is selected, so empirical traffic can modulate any spatial shape.
//
// -policy selects the handover admission policy (internal/policy): "guard"
// reserves -guard voice channels for handovers, "queue" parks blocked voice
// handovers in a per-cell queue bounded by -ho-queue entries and -ho-deadline
// seconds, and "retry" forwards a failed handover once to the source cell's
// next neighbour. Scenarios can carry a policy of their own (presets
// hotspot-guard, hotspot-hoqueue, highway-retry); an explicit -policy
// overrides it, and -policy none restores the paper's default admission rule.
// When a policy engaged, -percell appends its counters — guard-blocked fresh
// calls, handovers queued/served/expired, retry forwards, and calls that
// completed during the handover interruption.
//
// -precision enables the adaptive stopping rule: instead of a fixed
// -replications count, replications are added in batches until the relative
// confidence half-width of the -target measure drops below the threshold,
// within [-min-reps, -max-reps]. -vr selects a variance-reduction scheme
// (antithetic replication pairs, or the Erlang-B control-variate estimator).
// See the README's "Statistical methodology" section for the estimators.
//
// -series arms the deterministic time-series probes (internal/probe) and
// writes one record per probe window and cell — queue depth, voice calls,
// sessions, cumulative packet/blocking/handover counters, and per-window PLP
// and throughput — without perturbing the simulation: results stay
// bit-identical with probes on or off. The format is JSONL when the path ends
// in .jsonl, CSV otherwise; -series-dt sets the window width in simulated
// seconds. Replicated runs emit the cross-replication merge (mean ± CI
// half-width per window and cell). -telemetry serves live pprof and expvar
// runtime metrics (events/sec, shard barrier waits, replication progress)
// over HTTP for the duration of the run.
//
// Examples:
//
//	gprs-sim -model 3 -rate 0.5 -pdch 1 -measure 20000
//	gprs-sim -rate 0.5 -replications 8 -workers 4
//	gprs-sim -rate 0.5 -precision 0.05 -max-reps 32
//	gprs-sim -rate 0.5 -precision 0.05 -vr antithetic
//	gprs-sim -rate 0.5 -cells 19 -shards 4
//	gprs-sim -rate 0.5 -cells 61 -shards 4 -partition locality:4
//	gprs-sim -rate 0.5 -cells 19 -scenario hotspot -percell
//	gprs-sim -rate 0.5 -cells 19 -scenario highway -percell
//	gprs-sim -rate 0.5 -scenario-file rush.json
//	gprs-sim -rate 0.5 -trace measured.csv -percell
//	gprs-sim -rate 0.5 -series out.csv -series-dt 10
//	gprs-sim -rate 0.5 -replications 8 -series merged.jsonl
//	gprs-sim -rate 0.5 -measure 100000 -telemetry :6060
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/partition"
	"repro/internal/policy"
	"repro/internal/probe"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gprs-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gprs-sim", flag.ContinueOnError)
	var (
		modelID = fs.Int("model", 3, "traffic model (1, 2, or 3)")
		rate    = fs.Float64("rate", 0.5, "total GSM+GPRS call arrival rate per cell (calls/s)")
		pdch    = fs.Int("pdch", 1, "number of PDCHs permanently reserved for GPRS")
		gprsPct = fs.Float64("gprs", 0.05, "fraction of arriving calls that are GPRS sessions")
		tcpOff  = fs.Bool("no-tcp", false, "disable TCP flow control (open-loop IPP sources)")
		warmup  = fs.Float64("warmup", 2000, "warm-up time discarded before measuring (s)")
		measure = fs.Float64("measure", 20000, "measured simulation time (s)")
		batches = fs.Int("batches", 10, "number of batch-means batches")
		seed    = fs.Int64("seed", 1, "base random seed")
		reps    = fs.Int("replications", 1, "independent replications to run and merge")
		workers = fs.Int("workers", 0, "concurrent replications (0 = NumCPU); also sizes adaptive growth batches — pin it to reproduce -precision runs across machines")
		cells   = fs.Int("cells", 7, "cluster size, one of "+intsLabel(cluster.PresetSizes())+" (7 is the paper's cluster, larger sizes are wrap-around hex rings)")
		shards  = fs.Int("shards", 1, "cell groups advanced in parallel per replication (1 = serial engine)")
		partFlg = fs.String("partition", "", "cell→group partitioning of -shards > 1 runs: kind[:groups] with kinds "+strings.Join(partition.Kinds(), ", ")+", or explicit JSON (default: locality, one group per shard); never affects results")
		scnName = fs.String("scenario", "", "built-in workload scenario: "+strings.Join(scenario.Names(), ", "))
		scnFile = fs.String("scenario-file", "", "JSON workload-scenario file (overrides -scenario)")
		trcFile = fs.String("trace", "", "replay a measured arrival trace from this CSV file (header time_sec,{rate_per_s|arrivals}[,payload_bytes]); replaces the scenario's temporal profile")
		polName = fs.String("policy", "", "handover admission policy (overrides the scenario's): "+strings.Join(policy.Names(), ", "))
		guard   = fs.Int("guard", 0, "voice channels reserved for handovers (-policy guard)")
		hoQueue = fs.Int("ho-queue", 0, "per-cell handover queue capacity (-policy queue)")
		hoDead  = fs.Float64("ho-deadline", 0, "maximum wait of a queued handover in seconds (-policy queue)")
		perCell = fs.Bool("percell", false, "print the per-cell report after the mid-cell measures")
		prec    = fs.Float64("precision", 0, "adaptive stopping: relative CI half-width target for -target (0 = fixed -replications)")
		minReps = fs.Int("min-reps", 0, "adaptive mode: replications in the first batch (0 = 4)")
		maxReps = fs.Int("max-reps", 0, "adaptive mode: replication cap (0 = 64)")
		vrName  = fs.String("vr", "none", "variance reduction: none, antithetic, control")
		target  = fs.String("target", "throughput", "measure watched by -precision: "+strings.Join(runner.MeasureNames(), ", "))
		series  = fs.String("series", "", "write per-window per-cell time series to this file (.jsonl = JSON lines, otherwise CSV)")
		serieDT = fs.Float64("series-dt", 10, "probe window width of -series in simulated seconds")
		telem   = fs.String("telemetry", "", "serve live pprof/expvar telemetry on this address (e.g. :6060) for the duration of the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *telem != "" {
		addr, err := probe.ServeTelemetry(*telem)
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		fmt.Fprintf(os.Stderr, "telemetry on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}
	vr, err := runner.ParseVR(*vrName)
	if err != nil {
		return err
	}
	targetMeasure, err := runner.ParseMeasure(*target)
	if err != nil {
		return err
	}

	topo, err := cluster.Preset(*cells)
	if err != nil {
		return err
	}
	cfg := sim.DefaultConfig(traffic.Model(*modelID), *rate)
	cfg.Topology = topo
	cfg.Channels.ReservedPDCH = *pdch
	cfg.GPRSFraction = *gprsPct
	cfg.EnableTCP = !*tcpOff
	cfg.WarmupSec = *warmup
	cfg.MeasurementSec = *measure
	cfg.Batches = *batches
	cfg.Seed = *seed
	if *series != "" {
		cfg.Probe = &probe.Spec{IntervalSec: *serieDT}
	}
	if *partFlg != "" {
		spec, err := partition.ParseSpec(*partFlg)
		if err != nil {
			return fmt.Errorf("-partition: %w", err)
		}
		cfg.Partition = spec
	}

	scenarioLabel := "uniform (paper baseline)"
	if spec, ok, err := resolveScenario(*scnName, *scnFile, *trcFile); err != nil {
		return err
	} else if ok {
		prof, err := scenario.Apply(&cfg, spec)
		if err != nil {
			return err
		}
		scenarioLabel = describeProfile(spec, prof, cfg.Mobility)
	}
	if err := applyPolicyFlags(&cfg, *polName, *guard, *hoQueue, *hoDead); err != nil {
		return err
	}
	policyLabel := "default admission (paper)"
	if cfg.Policy != nil {
		policyLabel = describePolicy(cfg.Policy)
	}

	if *reps < 1 {
		*reps = 1
	}
	repsLabel := fmt.Sprintf("%d replication(s)", *reps)
	if *prec > 0 {
		repsLabel = fmt.Sprintf("adaptive replications (%.3g relative half-width on %s)", *prec, targetMeasure)
	}
	fmt.Printf("simulating %s, rate %.3g calls/s per cell, %d cells, %d reserved PDCHs, TCP %v, %s, scenario %s, policy %s...\n",
		traffic.Model(*modelID), *rate, *cells, *pdch, cfg.EnableTCP, repsLabel, scenarioLabel, policyLabel)

	if *reps <= 1 && *prec <= 0 && vr == runner.VRNone {
		// A single run bypasses runner.Run deliberately: it uses cfg.Seed
		// directly (not the SeedFor substream of a base seed) and reports
		// batch-means intervals, matching the pre-replication-engine
		// behaviour of this command.
		res, ser, err := sim.RunOnceSeries(cfg, sim.ShardedOptions{Shards: *shards})
		if err != nil {
			return err
		}
		fmt.Print(res.String())
		if *perCell {
			printPerCell(res.PerCell, nil)
		}
		if *series != "" {
			if err := writeRunSeries(*series, ser); err != nil {
				return err
			}
			fmt.Printf("series written to %s (%d windows of %gs)\n", *series, ser.Windows(), ser.IntervalSec)
		}
		return nil
	}

	sum, err := runner.Run(cfg, runner.Options{
		Replications:    *reps,
		Workers:         *workers,
		BaseSeed:        *seed,
		Shards:          *shards,
		Precision:       *prec,
		Target:          targetMeasure,
		MinReplications: *minReps,
		MaxReplications: *maxReps,
		VR:              vr,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "replication %d/%d done\n", done, total)
		},
	})
	if err != nil {
		return err
	}
	fmt.Print(sum.String())
	if *perCell {
		printPerCell(sum.Merged.PerCell, sum.Merged.PerCellCI)
	}
	if *series != "" {
		if sum.Series == nil {
			return fmt.Errorf("series: replications produced no mergeable time series")
		}
		if err := writeMergedSeries(*series, sum.Series); err != nil {
			return err
		}
		fmt.Printf("merged series written to %s (%d windows of %gs, %d replications)\n",
			*series, len(sum.Series.Times), sum.Series.IntervalSec, sum.Series.Replications)
	}
	return nil
}

// intsLabel joins integer preset sizes into a "7, 19, 37, ..." flag label.
func intsLabel(ns []int) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ", ")
}

// writeRunSeries writes a single-run probe series to path: JSON lines when
// the path ends in .jsonl, CSV otherwise.
func writeRunSeries(path string, s *probe.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = probe.WriteJSONL(f, s)
	} else {
		err = probe.WriteCSV(f, s)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeMergedSeries writes the cross-replication series merge to path: JSON
// lines when the path ends in .jsonl, CSV otherwise.
func writeMergedSeries(path string, s *runner.SeriesSummary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = runner.WriteSeriesJSONL(f, s)
	} else {
		err = runner.WriteSeriesCSV(f, s)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// applyPolicyFlags installs the -policy flag family on the configuration. An
// empty -policy leaves whatever the scenario installed (or the paper's
// default) untouched, but rejects orphaned policy parameters; "none"
// explicitly restores the default admission rule. Parameter-mixing errors
// (a -guard with -policy queue, say) surface here, before the run starts.
func applyPolicyFlags(cfg *sim.Config, name string, guard, queueCap int, deadline float64) error {
	if name == "" {
		if guard != 0 || queueCap != 0 || deadline != 0 {
			return fmt.Errorf("-guard/-ho-queue/-ho-deadline need -policy (known: %s)", strings.Join(policy.Names(), ", "))
		}
		return nil
	}
	kind, err := policy.Parse(name)
	if err != nil {
		return err
	}
	p := policy.Config{Kind: kind, Guard: guard, QueueCapacity: queueCap, QueueDeadlineSec: deadline}
	if err := p.Validate(cfg.Channels.GSMChannels()); err != nil {
		return err
	}
	cfg.Policy = nil
	if kind != policy.None {
		cfg.Policy = &p
	}
	return nil
}

// describePolicy labels the installed policy for the run header.
func describePolicy(p *policy.Config) string {
	switch p.Kind {
	case policy.GuardChannels:
		return fmt.Sprintf("guard (%d reserved)", p.Guard)
	case policy.QueuedHandovers:
		return fmt.Sprintf("queue (capacity %d, deadline %gs)", p.QueueCapacity, p.QueueDeadlineSec)
	case policy.DirectedRetry:
		return "retry (one forward)"
	default:
		return p.Kind.String()
	}
}

// resolveScenario turns the -scenario/-scenario-file/-trace flags into a
// scenario spec; ok is false when none is set. A -trace CSV replaces the
// temporal profile of whatever scenario the other flags selected (or rides on
// the uniform spatial baseline when it is the only flag), so a measured
// arrival series can modulate any spatial shape.
func resolveScenario(name, file, trace string) (spec scenario.Spec, ok bool, err error) {
	switch {
	case file != "":
		spec, err = scenario.Load(file)
	case name != "":
		spec, err = scenario.Preset(name)
	case trace == "":
		return scenario.Spec{}, false, nil
	}
	if err != nil {
		return spec, false, err
	}
	if trace != "" {
		rows, err := scenario.LoadTraceCSV(trace)
		if err != nil {
			return spec, false, err
		}
		if spec.Name == "" {
			spec.Name = "trace"
		}
		spec.Temporal = scenario.Temporal{Kind: scenario.Trace, Rows: rows}
		if err := spec.Validate(); err != nil {
			return spec, false, err
		}
	}
	return spec, true, nil
}

// describeProfile labels a compiled scenario for the run header, including
// the dwell-multiplier range when the scenario shapes mobility.
func describeProfile(spec scenario.Spec, prof *scenario.Profile, mob sim.MobilityProfile) string {
	name := spec.Name
	if name == "" {
		name = "custom"
	}
	lo, hi := weightRange(prof.Weights())
	label := fmt.Sprintf("%q (cell weights %.3g..%.3g)", name, lo, hi)
	if dp, ok := mob.(*scenario.DwellProfile); ok && dp != nil {
		mlo, mhi := weightRange(dp.Weights())
		label += fmt.Sprintf(", dwell multipliers %.3g..%.3g", mlo, mhi)
	}
	return label
}

// weightRange returns the smallest and largest entry of a weight vector.
func weightRange(weights []float64) (lo, hi float64) {
	lo, hi = weights[0], weights[0]
	for _, w := range weights {
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	return lo, hi
}

// printPerCell renders the per-cell report as a small table. When the
// cross-replication intervals are available (replicated runs; see
// sim.Results.PerCellCI), every point estimate carries its confidence
// half-width; a single run prints bare point estimates.
func printPerCell(cells []sim.CellMeasures, cis []sim.CellIntervals) {
	// policyActive gates the six admission-policy columns: under the paper's
	// default policy they are identically zero and would only widen the table.
	policyActive := false
	for _, m := range cells {
		if m.GuardBlockedCalls != 0 || m.HandoversQueued != 0 || m.HandoverQueueServed != 0 ||
			m.HandoverQueueExpired != 0 || m.HandoverRetries != 0 || m.HandoverTransitEnds != 0 {
			policyActive = true
			break
		}
	}
	policyHeader, policyRow := "", func(sim.CellMeasures) string { return "" }
	if policyActive {
		policyHeader = fmt.Sprintf(" %9s %8s %8s %8s %8s %8s",
			"guard blk", "HO qd", "HO srv", "HO exp", "HO rty", "HO end")
		policyRow = func(m sim.CellMeasures) string {
			return fmt.Sprintf(" %9d %8d %8d %8d %8d %8d",
				m.GuardBlockedCalls, m.HandoversQueued, m.HandoverQueueServed,
				m.HandoverQueueExpired, m.HandoverRetries, m.HandoverTransitEnds)
		}
	}
	if len(cis) != len(cells) {
		fmt.Printf("per-cell measures:\n")
		fmt.Printf("  %4s %8s %8s %8s %8s %10s %12s %8s %8s %8s%s\n",
			"cell", "CVT", "AGS", "CDT", "queue", "GSM block", "tput (bit/s)", "HO in", "HO out", "HO fail", policyHeader)
		for _, m := range cells {
			fmt.Printf("  %4d %8.3f %8.3f %8.3f %8.3f %10.4f %12.0f %8d %8d %8d%s\n",
				m.Cell, m.CarriedVoiceTraffic, m.AverageSessions, m.CarriedDataTraffic,
				m.MeanQueueLength, m.GSMBlocking, m.ThroughputBits,
				m.HandoversIn, m.HandoversOut, m.HandoverFailures, policyRow(m))
		}
		return
	}
	fmt.Printf("per-cell measures (± cross-replication CI half-width):\n")
	fmt.Printf("  %4s %16s %16s %16s %16s %18s %20s %8s %8s %8s%s\n",
		"cell", "CVT", "AGS", "CDT", "queue", "GSM block", "tput (bit/s)", "HO in", "HO out", "HO fail", policyHeader)
	pm := func(v float64, iv stats.Interval) string {
		return fmt.Sprintf("%.3f ±%.3f", v, iv.HalfWidth)
	}
	for i, m := range cells {
		iv := cis[i]
		fmt.Printf("  %4d %16s %16s %16s %16s %18s %20s %8d %8d %8d%s\n",
			m.Cell,
			pm(m.CarriedVoiceTraffic, iv.CarriedVoiceTraffic),
			pm(m.AverageSessions, iv.AverageSessions),
			pm(m.CarriedDataTraffic, iv.CarriedDataTraffic),
			pm(m.MeanQueueLength, iv.MeanQueueLength),
			fmt.Sprintf("%.4f ±%.4f", m.GSMBlocking, iv.GSMBlocking.HalfWidth),
			fmt.Sprintf("%.0f ±%.0f", m.ThroughputBits, iv.ThroughputBits.HalfWidth),
			m.HandoversIn, m.HandoversOut, m.HandoverFailures, policyRow(m))
	}
}
