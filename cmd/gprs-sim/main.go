// Command gprs-sim runs the detailed network-level GPRS simulator (seven-cell
// cluster, TDMA-block transmission, TCP flow control) and prints the mid-cell
// measures with 95% confidence intervals. With -replications R > 1 the run
// fans R independent replications (seeded from disjoint substreams of -seed)
// out across -workers CPUs and reports cross-replication intervals; the
// merged results are bit-identical for a given (seed, replications) pair
// regardless of the worker count.
//
// Examples:
//
//	gprs-sim -model 3 -rate 0.5 -pdch 1 -measure 20000
//	gprs-sim -rate 0.5 -replications 8 -workers 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/traffic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gprs-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gprs-sim", flag.ContinueOnError)
	var (
		modelID = fs.Int("model", 3, "traffic model (1, 2, or 3)")
		rate    = fs.Float64("rate", 0.5, "total GSM+GPRS call arrival rate per cell (calls/s)")
		pdch    = fs.Int("pdch", 1, "number of PDCHs permanently reserved for GPRS")
		gprsPct = fs.Float64("gprs", 0.05, "fraction of arriving calls that are GPRS sessions")
		tcpOff  = fs.Bool("no-tcp", false, "disable TCP flow control (open-loop IPP sources)")
		warmup  = fs.Float64("warmup", 2000, "warm-up time discarded before measuring (s)")
		measure = fs.Float64("measure", 20000, "measured simulation time (s)")
		batches = fs.Int("batches", 10, "number of batch-means batches")
		seed    = fs.Int64("seed", 1, "base random seed")
		reps    = fs.Int("replications", 1, "independent replications to run and merge")
		workers = fs.Int("workers", 0, "concurrent replications (0 = NumCPU)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := sim.DefaultConfig(traffic.Model(*modelID), *rate)
	cfg.Channels.ReservedPDCH = *pdch
	cfg.GPRSFraction = *gprsPct
	cfg.EnableTCP = !*tcpOff
	cfg.WarmupSec = *warmup
	cfg.MeasurementSec = *measure
	cfg.Batches = *batches
	cfg.Seed = *seed

	if *reps < 1 {
		*reps = 1
	}
	fmt.Printf("simulating %s, rate %.3g calls/s per cell, %d reserved PDCHs, TCP %v, %d replication(s)...\n",
		traffic.Model(*modelID), *rate, *pdch, cfg.EnableTCP, *reps)

	if *reps <= 1 {
		s, err := sim.New(cfg)
		if err != nil {
			return err
		}
		res, err := s.Run()
		if err != nil {
			return err
		}
		fmt.Print(res.String())
		return nil
	}

	sum, err := runner.Run(cfg, runner.Options{
		Replications: *reps,
		Workers:      *workers,
		BaseSeed:     *seed,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "replication %d/%d done\n", done, total)
		},
	})
	if err != nil {
		return err
	}
	fmt.Print(sum.String())
	return nil
}
