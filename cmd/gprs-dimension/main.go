// Command gprs-dimension answers the paper's engineering question: how many
// PDCHs must be reserved for GPRS so that a QoS profile (a maximum relative
// throughput degradation per user) holds up to a target call arrival rate?
// It mirrors the discussion of Figs. 11-13 in Section 5.3.
//
// Example:
//
//	gprs-dimension -gprs 0.05 -rate 0.5 -degradation 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ctmc"
	"repro/internal/traffic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gprs-dimension:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gprs-dimension", flag.ContinueOnError)
	var (
		modelID     = fs.Int("model", 3, "traffic model (1, 2, or 3)")
		rate        = fs.Float64("rate", 0.5, "target GSM+GPRS call arrival rate (calls/s)")
		gprsPct     = fs.Float64("gprs", 0.05, "fraction of arriving calls that are GPRS sessions")
		degradation = fs.Float64("degradation", 0.5, "maximum tolerated relative throughput degradation per user")
		maxPDCH     = fs.Int("max-pdch", 8, "largest number of reserved PDCHs to consider")
		tol         = fs.Float64("tol", 1e-6, "steady-state solver tolerance")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *degradation <= 0 || *degradation >= 1 {
		return fmt.Errorf("degradation must lie in (0, 1), got %v", *degradation)
	}

	model := traffic.Model(*modelID)
	solve := func(pdch int, callRate float64) (core.Measures, error) {
		cfg := core.BaseConfig(model, callRate)
		cfg.GPRSFraction = *gprsPct
		cfg.Channels.ReservedPDCH = pdch
		m, err := core.New(cfg)
		if err != nil {
			return core.Measures{}, err
		}
		res, err := m.Solve(ctmc.SolveOptions{Tolerance: *tol})
		if err != nil {
			return core.Measures{}, err
		}
		return res.Measures, nil
	}

	fmt.Printf("QoS profile: per-user throughput degradation at most %.0f%% at %.3g calls/s, %.0f%% GPRS users, %s\n",
		*degradation*100, *rate, *gprsPct*100, model)

	for pdch := 0; pdch <= *maxPDCH; pdch++ {
		// Reference throughput: the same configuration under negligible load.
		ref, err := solve(pdch, 0.01)
		if err != nil {
			return err
		}
		loaded, err := solve(pdch, *rate)
		if err != nil {
			return err
		}
		if ref.ThroughputPerUserBits <= 0 {
			fmt.Printf("  %d PDCH: no reference throughput (no GPRS traffic?)\n", pdch)
			continue
		}
		drop := 1 - loaded.ThroughputPerUserBits/ref.ThroughputPerUserBits
		ok := drop <= *degradation
		fmt.Printf("  %d reserved PDCH: throughput %.0f -> %.0f bit/s per user (degradation %.0f%%) %s\n",
			pdch, ref.ThroughputPerUserBits, loaded.ThroughputPerUserBits, drop*100, verdict(ok))
		if ok {
			fmt.Printf("=> reserving %d PDCH(s) meets the QoS profile\n", pdch)
			return nil
		}
	}
	fmt.Printf("=> the QoS profile cannot be met with up to %d reserved PDCHs; use stricter admission control\n", *maxPDCH)
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "OK"
	}
	return "violated"
}
